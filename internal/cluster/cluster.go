// Package cluster assembles a complete simulated deployment — N metadata
// servers, M client hosts with P processes each, one network — for any of
// the four protocols, mirroring the paper's testbed (§IV.B: clients are 4x
// the servers, 8 processes per client).
//
// It also provides the pieces every experiment needs: per-process operation
// sessions with ID and inode allocation, a quiesce step that forces all
// pending commitments, and a cross-server invariant checker that verifies
// the paper's correctness goal — atomicity of every cross-server operation
// — after a run.
package cluster

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"cxfs/internal/baseline"
	"cxfs/internal/core"
	"cxfs/internal/namespace"
	"cxfs/internal/node"
	"cxfs/internal/obs"
	"cxfs/internal/simrt"
	"cxfs/internal/transport"
	"cxfs/internal/types"
)

// Protocol selects the cross-server operation protocol.
type Protocol string

// The four protocols of the paper: Cx plus the §II.B baselines.
const (
	ProtoCx        Protocol = "cx"         // the paper's contribution (OFS-Cx)
	ProtoSE        Protocol = "se"         // Serial Execution, sync writes (OFS)
	ProtoSEBatched Protocol = "se-batched" // Serial Execution + batched write-back (OFS-batched)
	Proto2PC       Protocol = "2pc"        // two-phase commit (Slice/Farsite/DCFS)
	ProtoCE        Protocol = "ce"         // central execution (Ursa Minor)
)

// Protocols lists every protocol, in the order benchmarks report them.
var Protocols = []Protocol{ProtoSE, ProtoSEBatched, ProtoCx, Proto2PC, ProtoCE}

// Valid reports whether p names a known protocol.
func (p Protocol) Valid() bool {
	for _, known := range Protocols {
		if p == known {
			return true
		}
	}
	return false
}

// Driver is the client-side face of a protocol.
type Driver interface {
	Do(p *simrt.Proc, op types.Op) (types.Inode, error)
}

// Options configures a cluster.
type Options struct {
	Servers      int
	ClientHosts  int // 0 = paper default (4x servers)
	ProcsPerHost int // 0 = paper default (8)
	Protocol     Protocol
	Seed         int64

	Hardware node.HardwareParams
	Net      transport.Params
	Cx       core.Config
	// SEFlush paces the OFS-batched flush daemon.
	SEFlush time.Duration
	// GroupLinger enables cross-proc WAL group commit on every server:
	// concurrent appends park in a flush window for up to this long and one
	// flusher writes the coalesced window as a single sequential disk
	// request. 0 (the default) keeps the direct per-batch write path. The
	// linger applies to every protocol — SE/CE/2PC share the same WAL — so
	// benchmark comparisons stay fair.
	GroupLinger time.Duration
	// Retry is the client-side per-RPC timeout/retry policy, applied to
	// every driver. The zero value (the default) keeps the historical
	// behavior: a client blocks forever on a lost reply. Fault-injection
	// runs must set it; the servers' duplicate suppression makes the
	// retransmissions at-most-once.
	Retry types.RetryPolicy
	// Obs attaches the observability layer to the servers, drivers, and
	// WALs. Nil (the default) disables all recording.
	Obs *obs.Observer
	// CacheTTL enables the leased client metadata cache: servers grant
	// leases of this TTL on lookup responses, and every driver resolves
	// cached paths locally until the lease lapses, a revocation lands, or
	// the grantor's boot epoch moves. 0 (the default) disables caching and
	// leasing entirely. Applies to ProtoCx and the SE baselines (2PC/CE
	// have no lookup fast path).
	CacheTTL time.Duration
	// CacheCap bounds each driver's cache (0 = core.DefaultCacheCap).
	CacheCap int
}

// DefaultOptions mirrors the paper's setup for n servers.
func DefaultOptions(n int, proto Protocol) Options {
	return Options{
		Servers:      n,
		ClientHosts:  4 * n,
		ProcsPerHost: 8,
		Protocol:     proto,
		Seed:         1,
		Hardware:     node.DefaultHardware(),
		Net:          transport.DefaultParams(),
		Cx:           core.DefaultConfig(),
		SEFlush:      10 * time.Second,
	}
}

// Cluster is one assembled deployment.
type Cluster struct {
	Opts      Options
	Sim       *simrt.Sim
	Net       *transport.Net
	Placement namespace.Placement

	Bases   []*node.Base
	CxSrv   []*core.Server       // non-nil only under ProtoCx
	SESrv   []*baseline.SEServer // non-nil only under ProtoSE / ProtoSEBatched
	Hosts   []*node.Host
	drivers []Driver      // one per host
	caches  []*core.Cache // one per host when Opts.CacheTTL > 0
	procs   []*Process
}

// hostID computes the node ID of client host i (servers occupy [0,N)).
func (c *Cluster) hostID(i int) types.NodeID {
	return types.NodeID(c.Opts.Servers + i)
}

// Size bounds on Options: a cluster build allocates goroutines and buffers
// proportional to these, and Options can arrive from a network request
// (cxd), so absurd values must fail cleanly instead of exhausting memory.
const (
	maxServers      = 1024
	maxClientHosts  = 1 << 14
	maxProcsPerHost = 1024
)

// New builds and starts a cluster inside a fresh simulation. It validates
// the topology and protocol so a caller fed untrusted options (the cxd
// daemon) gets an error instead of a panic.
func New(opts Options) (*Cluster, error) {
	if opts.Servers <= 0 || opts.Servers > maxServers {
		return nil, fmt.Errorf("cluster: servers must be in [1,%d], got %d", maxServers, opts.Servers)
	}
	if opts.ClientHosts < 0 || opts.ClientHosts > maxClientHosts {
		return nil, fmt.Errorf("cluster: client hosts must be in [0,%d], got %d", maxClientHosts, opts.ClientHosts)
	}
	if opts.ProcsPerHost < 0 || opts.ProcsPerHost > maxProcsPerHost {
		return nil, fmt.Errorf("cluster: procs per host must be in [0,%d], got %d", maxProcsPerHost, opts.ProcsPerHost)
	}
	if !opts.Protocol.Valid() {
		return nil, fmt.Errorf("cluster: unknown protocol %q", opts.Protocol)
	}
	if opts.ClientHosts == 0 {
		opts.ClientHosts = 4 * opts.Servers
	}
	if opts.ProcsPerHost == 0 {
		opts.ProcsPerHost = 8
	}
	opts.Cx.Obs = opts.Obs
	opts.Cx.LeaseTTL = opts.CacheTTL
	opts.Obs.BeginRun(string(opts.Protocol))
	sim := simrt.New(opts.Seed)
	net := transport.New(sim, opts.Net)
	pl := namespace.Placement{Servers: opts.Servers}
	c := &Cluster{Opts: opts, Sim: sim, Net: net, Placement: pl}

	for i := 0; i < opts.Servers; i++ {
		base := node.NewBase(sim, net, types.NodeID(i), opts.Hardware)
		c.Bases = append(c.Bases, base)
		if opts.GroupLinger > 0 {
			base.WAL.SetGroupCommit(opts.GroupLinger)
			if opts.Obs != nil {
				o := opts.Obs
				base.WAL.SetFlushHook(func(batches, records int, bytes int64) {
					o.RecordFlush(batches, records, bytes)
				})
			}
		}
		if opts.Obs.TraceOn() {
			nodeID := int(base.ID)
			base.WAL.SetPruneHook(func(op types.OpID, bytes int64) {
				opts.Obs.Emit(sim.Now(), nodeID, op, obs.PhasePrune,
					fmt.Sprintf("%dB", bytes))
			})
		}
		switch opts.Protocol {
		case ProtoCx:
			srv := core.NewServer(base, pl, opts.Cx)
			srv.Start()
			c.CxSrv = append(c.CxSrv, srv)
		case ProtoSE:
			srv := baseline.NewSEServer(base, pl, false, opts.SEFlush)
			srv.SetLeaseTTL(opts.CacheTTL)
			srv.Start()
			c.SESrv = append(c.SESrv, srv)
		case ProtoSEBatched:
			srv := baseline.NewSEServer(base, pl, true, opts.SEFlush)
			srv.SetLeaseTTL(opts.CacheTTL)
			srv.Start()
			c.SESrv = append(c.SESrv, srv)
		case Proto2PC:
			baseline.NewTwoPCServer(base, pl).Start()
		case ProtoCE:
			baseline.NewCEServer(base, pl).Start()
		}
	}
	// The root directory inode lives on its placement server; a bootstrap
	// Proc settles it into the durable image before the workload starts.
	rootSrv := pl.ParticipantFor(types.RootInode)
	c.Bases[rootSrv].Shard.InitRoot()
	sim.Spawn("bootstrap", func(p *simrt.Proc) {
		c.Bases[rootSrv].KV.FlushDirty(p)
	})

	for i := 0; i < opts.ClientHosts; i++ {
		host := node.NewHost(sim, net, c.hostID(i))
		c.Hosts = append(c.Hosts, host)
		newCache := func() *core.Cache {
			cc := core.NewCache(opts.CacheCap)
			cc.SetObserver(opts.Obs)
			c.caches = append(c.caches, cc)
			return cc
		}
		switch opts.Protocol {
		case ProtoCx:
			d := core.NewDriver(host, pl)
			d.SetObserver(opts.Obs, string(opts.Protocol))
			d.SetRetry(opts.Retry)
			if opts.CacheTTL > 0 {
				d.SetCache(newCache())
			}
			c.drivers = append(c.drivers, d)
		case ProtoSE, ProtoSEBatched:
			d := baseline.NewSEDriver(host, pl)
			d.SetObserver(opts.Obs, string(opts.Protocol))
			d.SetRetry(opts.Retry)
			if opts.CacheTTL > 0 {
				d.SetCache(newCache())
			}
			c.drivers = append(c.drivers, d)
		case Proto2PC:
			d := baseline.NewTwoPCDriver(host, pl)
			d.SetObserver(opts.Obs, string(opts.Protocol))
			d.SetRetry(opts.Retry)
			c.drivers = append(c.drivers, d)
		case ProtoCE:
			d := baseline.NewCEDriver(host, pl)
			d.SetObserver(opts.Obs, string(opts.Protocol))
			d.SetRetry(opts.Retry)
			c.drivers = append(c.drivers, d)
		}
	}
	for h := 0; h < opts.ClientHosts; h++ {
		for i := 0; i < opts.ProcsPerHost; i++ {
			pid := types.ProcID{Client: c.hostID(h), Index: int32(i)}
			idx := len(c.procs)
			c.procs = append(c.procs, &Process{
				ID: pid, cluster: c, driver: c.drivers[h],
				alloc: namespace.NewInodeAlloc(pl, uint64(1+idx)<<32),
			})
		}
	}
	return c, nil
}

// MustNew is New for callers with known-good options (benchmarks, tests,
// the public API); it panics on validation failure.
func MustNew(opts Options) *Cluster {
	c, err := New(opts)
	if err != nil {
		panic(err)
	}
	return c
}

// SamplerProc returns a Proc body that periodically samples cluster-wide
// resource series into Opts.Obs: pending operations awaiting commitment,
// WAL live bytes, and cumulative disk busy time. It generalizes the
// valid-records sampling of the paper's Figure 7b. The caller spawns it
// (the trace replayer does so automatically when sampling is on); it runs
// until the simulation shuts down.
func (c *Cluster) SamplerProc() func(*simrt.Proc) {
	return func(p *simrt.Proc) {
		o := c.Opts.Obs
		interval := o.SampleInterval()
		if interval <= 0 {
			return
		}
		for {
			p.Sleep(interval)
			now := c.Sim.Now()
			pending := 0
			for _, srv := range c.CxSrv {
				pending += srv.PendingOps()
			}
			var walLive int64
			var busy time.Duration
			for _, b := range c.Bases {
				walLive += b.WAL.LiveBytes()
				busy += b.Disk.Stats().BusyTime
			}
			o.Sample("pending-ops", now, float64(pending))
			o.Sample("wal-live-bytes", now, float64(walLive))
			o.Sample("disk-busy-seconds", now, busy.Seconds())
		}
	}
}

// NumProcs returns the total application process count.
func (c *Cluster) NumProcs() int { return len(c.procs) }

// Proc returns process i.
func (c *Cluster) Proc(i int) *Process { return c.procs[i] }

// Shutdown tears the simulation down; the cluster is unusable afterwards.
func (c *Cluster) Shutdown() { c.Sim.Shutdown() }

// Process is one application process: it issues operations sequentially
// (the paper's process-centric model) with its own ID sequence and inode
// allocator.
type Process struct {
	ID      types.ProcID
	cluster *Cluster
	driver  Driver
	alloc   *namespace.InodeAlloc
	seq     uint64
	rngInit bool
	rngLane uint64
}

// NextID mints the next operation ID.
func (pr *Process) NextID() types.OpID {
	pr.seq++
	return types.OpID{Proc: pr.ID, Seq: pr.seq}
}

// AllocInode picks a pseudo-random placement server and mints an inode
// there, emulating OrangeFS's random inode placement.
func (pr *Process) AllocInode() types.InodeID {
	// Cheap deterministic lane per process: splitmix-style step.
	if !pr.rngInit {
		pr.rngLane = uint64(pr.ID.Client)<<32 ^ uint64(uint32(pr.ID.Index))<<8 ^ 0x9e3779b97f4a7c15
		pr.rngInit = true
	}
	pr.rngLane ^= pr.rngLane << 13
	pr.rngLane ^= pr.rngLane >> 7
	pr.rngLane ^= pr.rngLane << 17
	srv := types.NodeID(pr.rngLane % uint64(pr.cluster.Opts.Servers))
	return pr.alloc.Next(srv)
}

// Do issues a fully-formed operation.
func (pr *Process) Do(p *simrt.Proc, op types.Op) (types.Inode, error) {
	return pr.driver.Do(p, op)
}

// NewPipeline builds a pipelined dispatcher of the given depth over this
// process's protocol driver: up to depth operations in flight at once, each
// with the driver's full per-op retry/timeout behavior. Works for every
// protocol (the baselines satisfy the same Doer contract as Cx).
func (pr *Process) NewPipeline(depth int) *core.Pipeline {
	return core.NewPipeline(pr.cluster.Sim, pr.driver, depth)
}

// Create makes a regular file and returns its inode number.
func (pr *Process) Create(p *simrt.Proc, dir types.InodeID, name string) (types.InodeID, error) {
	ino := pr.AllocInode()
	_, err := pr.driver.Do(p, types.Op{ID: pr.NextID(), Kind: types.OpCreate,
		Parent: dir, Name: name, Ino: ino, Type: types.FileRegular})
	return ino, err
}

// Mkdir makes a directory and returns its inode number.
func (pr *Process) Mkdir(p *simrt.Proc, dir types.InodeID, name string) (types.InodeID, error) {
	ino := pr.AllocInode()
	_, err := pr.driver.Do(p, types.Op{ID: pr.NextID(), Kind: types.OpMkdir,
		Parent: dir, Name: name, Ino: ino, Type: types.FileDir})
	return ino, err
}

// Remove unlinks a file by (dir, name, ino).
func (pr *Process) Remove(p *simrt.Proc, dir types.InodeID, name string, ino types.InodeID) error {
	_, err := pr.driver.Do(p, types.Op{ID: pr.NextID(), Kind: types.OpRemove,
		Parent: dir, Name: name, Ino: ino})
	return err
}

// Rmdir removes a directory.
func (pr *Process) Rmdir(p *simrt.Proc, dir types.InodeID, name string, ino types.InodeID) error {
	_, err := pr.driver.Do(p, types.Op{ID: pr.NextID(), Kind: types.OpRmdir,
		Parent: dir, Name: name, Ino: ino})
	return err
}

// Link adds a hard link to ino at (dir, name).
func (pr *Process) Link(p *simrt.Proc, dir types.InodeID, name string, ino types.InodeID) error {
	_, err := pr.driver.Do(p, types.Op{ID: pr.NextID(), Kind: types.OpLink,
		Parent: dir, Name: name, Ino: ino})
	return err
}

// Unlink removes a hard link.
func (pr *Process) Unlink(p *simrt.Proc, dir types.InodeID, name string, ino types.InodeID) error {
	_, err := pr.driver.Do(p, types.Op{ID: pr.NextID(), Kind: types.OpUnlink,
		Parent: dir, Name: name, Ino: ino})
	return err
}

// Readdir lists directory dir by querying every server's partition.
func (pr *Process) Readdir(p *simrt.Proc, dir types.InodeID) ([]namespace.DirEntry, error) {
	host := pr.cluster.Hosts[int(pr.ID.Client)-pr.cluster.Opts.Servers]
	return baseline.Readdir(p, host, pr.cluster.Opts.Servers, pr.NextID(), dir)
}

// Rename moves (dir, name, ino) to (newDir, newName). Under Cx this runs
// as the eager two-server transaction of the rename extension; the
// baselines route it through their coordinator paths.
func (pr *Process) Rename(p *simrt.Proc, dir types.InodeID, name string, ino types.InodeID, newDir types.InodeID, newName string) error {
	_, err := pr.driver.Do(p, types.Op{ID: pr.NextID(), Kind: types.OpRename,
		Parent: dir, Name: name, Ino: ino, NewParent: newDir, NewName: newName})
	return err
}

// Stat reads inode attributes.
func (pr *Process) Stat(p *simrt.Proc, ino types.InodeID) (types.Inode, error) {
	return pr.driver.Do(p, types.Op{ID: pr.NextID(), Kind: types.OpStat, Ino: ino})
}

// Lookup resolves (dir, name).
func (pr *Process) Lookup(p *simrt.Proc, dir types.InodeID, name string) (types.Inode, error) {
	return pr.driver.Do(p, types.Op{ID: pr.NextID(), Kind: types.OpLookup, Parent: dir, Name: name})
}

// SetAttr touches inode attributes (single-server update).
func (pr *Process) SetAttr(p *simrt.Proc, ino types.InodeID) error {
	_, err := pr.driver.Do(p, types.Op{ID: pr.NextID(), Kind: types.OpSetAttr, Ino: ino})
	return err
}

// MsgStats snapshots the network counters.
func (c *Cluster) MsgStats() transport.Stats { return c.Net.Stats() }

// Driver returns the protocol driver backing this process (chaos harnesses
// type-assert it for cache introspection such as LastLookup).
func (pr *Process) Driver() Driver { return pr.driver }

// FlushCaches drops every driver's cached entries (counters survive), so a
// verification pass reads settled server state instead of leases.
func (c *Cluster) FlushCaches() {
	for _, cc := range c.caches {
		cc.Flush()
	}
}

// CacheStats sums cache counters across every driver.
func (c *Cluster) CacheStats() core.CacheStats {
	var total core.CacheStats
	for _, cc := range c.caches {
		s := cc.Stats()
		total.Hits += s.Hits
		total.Misses += s.Misses
		total.Invalidations += s.Invalidations
		total.Revocations += s.Revocations
		total.Expirations += s.Expirations
		total.EpochFences += s.EpochFences
		total.Evictions += s.Evictions
	}
	return total
}

// LeasesOutstanding reports how many unexpired leases server i currently
// tracks (0 for protocols without leasing). The lease-aware nemesis targets
// the server holding the most.
func (c *Cluster) LeasesOutstanding(i int) int {
	switch {
	case i < len(c.CxSrv):
		return c.CxSrv[i].LeasesOutstanding()
	case i < len(c.SESrv):
		return c.SESrv[i].LeasesOutstanding()
	}
	return 0
}

// LeaseStats sums lease-side counters (grants, revocations) across servers.
func (c *Cluster) LeaseStats() (granted, revoked uint64) {
	for _, srv := range c.CxSrv {
		st := srv.Stats()
		granted += st.LeasesGranted
		revoked += st.LeaseRevocations
	}
	for _, srv := range c.SESrv {
		g, r := srv.LeaseStats()
		granted += g
		revoked += r
	}
	return granted, revoked
}

// Quiesce drives every pending Cx commitment to completion and flushes all
// servers, so invariant checks compare settled state. For the baselines it
// just flushes. Call from a Proc after the workload drains.
func (c *Cluster) Quiesce(p *simrt.Proc) {
	if c.Opts.Protocol == ProtoCx {
		for tries := 0; tries < 1000; tries++ {
			pending := 0
			for _, srv := range c.CxSrv {
				pending += srv.PendingOps()
			}
			if pending == 0 {
				break
			}
			for _, srv := range c.CxSrv {
				if srv.PendingOps() > 0 {
					srv.KickCommit()
				}
			}
			p.Sleep(50 * time.Millisecond)
		}
	}
	// Let in-flight batches and flush daemons settle.
	p.Sleep(200 * time.Millisecond)
	for _, b := range c.Bases {
		b.KV.FlushDirty(p)
	}
}

// CheckInvariants verifies cross-server atomicity and namespace coherence
// after quiescence:
//
//  1. every dentry points at an inode that exists with nlink >= 1,
//  2. every regular file's nlink equals the number of dentries referencing
//     it (directories are checked for existence only), and
//  3. no server still marks objects active (Cx only).
//
// It returns a list of violations (empty = consistent).
func (c *Cluster) CheckInvariants() []string {
	var bad []string
	// Gather all dentries and inodes cluster-wide.
	type dent struct {
		dir  types.InodeID
		name string
		ino  types.InodeID
	}
	var dents []dent
	inodes := make(map[types.InodeID]types.Inode)
	for _, b := range c.Bases {
		b.KV.Range(func(key string, val []byte) bool {
			// Dentry rows are "d/<dir>/<name>". Split on the first two
			// slashes only: a name may itself contain spaces or slashes, so
			// token-based parsing (Sscanf's %s stops at whitespace) would
			// truncate it and mask real violations.
			if rest, ok := strings.CutPrefix(key, "d/"); ok {
				dirStr, name, found := strings.Cut(rest, "/")
				dir, err := strconv.ParseUint(dirStr, 10, 64)
				if !found || err != nil {
					return true
				}
				if len(val) == 8 {
					var v uint64
					for i := 7; i >= 0; i-- {
						v = v<<8 | uint64(val[i])
					}
					dents = append(dents, dent{types.InodeID(dir), name, types.InodeID(v)})
				}
				return true
			}
			if inoStr, ok := strings.CutPrefix(key, "i/"); ok {
				ino, err := strconv.ParseUint(inoStr, 10, 64)
				if err != nil {
					return true
				}
				sh := c.Bases[c.Placement.ParticipantFor(types.InodeID(ino))].Shard
				if in, ok := sh.GetInode(types.InodeID(ino)); ok {
					inodes[in.Ino] = in
				}
			}
			return true
		})
	}
	// KV.Range iterates a map; sort the gathered dentries so violation
	// output is deterministic.
	sort.Slice(dents, func(i, j int) bool {
		if dents[i].dir != dents[j].dir {
			return dents[i].dir < dents[j].dir
		}
		if dents[i].name != dents[j].name {
			return dents[i].name < dents[j].name
		}
		return dents[i].ino < dents[j].ino
	})
	refs := make(map[types.InodeID]uint32)
	for _, d := range dents {
		refs[d.ino]++
		in, ok := inodes[d.ino]
		if !ok {
			bad = append(bad, fmt.Sprintf("dentry (%d,%q) -> missing inode %d", d.dir, d.name, d.ino))
			continue
		}
		if in.Nlink < 1 {
			bad = append(bad, fmt.Sprintf("dentry (%d,%q) -> dead inode %d", d.dir, d.name, d.ino))
		}
	}
	// Report in sorted inode order so a run's violation list is
	// deterministic (chaos replay compares reports bit-for-bit).
	inos := make([]types.InodeID, 0, len(inodes))
	for ino := range inodes {
		inos = append(inos, ino)
	}
	sort.Slice(inos, func(i, j int) bool { return inos[i] < inos[j] })
	for _, ino := range inos {
		in := inodes[ino]
		if in.Type == types.FileRegular && in.Nlink != refs[ino] {
			bad = append(bad, fmt.Sprintf("inode %d nlink=%d but %d dentries reference it", ino, in.Nlink, refs[ino]))
		}
		if in.Type == types.FileRegular && refs[ino] == 0 {
			bad = append(bad, fmt.Sprintf("orphan inode %d (nlink=%d, no dentry)", ino, in.Nlink))
		}
	}
	for i, srv := range c.CxSrv {
		if n := srv.ActiveObjects(); n != 0 {
			bad = append(bad, fmt.Sprintf("server %d still holds %d active objects", i, n))
		}
	}
	return bad
}

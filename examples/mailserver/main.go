// Mailserver: the network-server workload family of the paper's evaluation
// (home2/deasna2/lair62b are Harvard home, research, and email traces).
// Users mostly work in their own maildirs — the exclusive-dominated access
// pattern §II.C describes — but a shared spool directory sees deliveries
// from many agents, so a small fraction of operations touch files another
// process created moments ago. Those are exactly the accesses that raise Cx
// conflicts and force immediate commitments.
//
// The example reports how the conflict machinery behaved: how many
// operations conflicted, how many commitments went immediate instead of
// batched, and what it cost relative to a conflict-free run.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	cxfs "cxfs"
)

const (
	servers = 4
	users   = 16
	actions = 60 // per user
)

// run executes the mail workload; polling controls whether users stat
// freshly delivered mail immediately (touching inodes another process
// created moments ago — the conflict-raising pattern) or only ever touch
// their own files (the exclusive-dominated pattern of §II.C).
func run(polling bool) (elapsed time.Duration, stats struct {
	conflicts, immediate, lazy uint64
}) {
	fs := cxfs.New(cxfs.Options{Servers: servers, Protocol: cxfs.Cx, Seed: 99,
		CommitTimeout: 300 * time.Millisecond})
	defer fs.Close()

	userDirs := make([]cxfs.InodeID, users)
	fs.Run(func(ctx *cxfs.Ctx) {
		for u := range userDirs {
			d, err := ctx.Mkdir(cxfs.Root, fmt.Sprintf("home-%02d", u))
			if err != nil {
				log.Fatal(err)
			}
			userDirs[u] = d
		}
	})

	// Track recent deliveries per mailbox so readers poll fresh messages.
	type msg struct {
		dir  cxfs.InodeID
		name string
		ino  cxfs.InodeID
	}
	recent := make([][]msg, users)

	fs.RunN(users, func(ctx *cxfs.Ctx, u int) {
		rng := rand.New(rand.NewSource(int64(u) + 1))
		seq := 0
		for a := 0; a < actions; a++ {
			switch r := rng.Float64(); {
			case r < 0.35:
				// Deliver mail to a random OTHER user's box.
				to := (u + 1 + rng.Intn(users-1)) % users
				dir := userDirs[to]
				name := fmt.Sprintf("msg-%02d-%04d", u, seq)
				seq++
				ino, err := ctx.Create(dir, name)
				if err != nil {
					continue
				}
				recent[to] = append(recent[to], msg{dir, name, ino})
				if len(recent[to]) > 8 {
					recent[to] = recent[to][1:]
				}
			case r < 0.55 && polling && len(recent[u]) > 0:
				// Poll fresh mail — created by another process moments
				// ago, quite possibly still awaiting its lazy commitment:
				// this is what raises conflicts.
				m := recent[u][rng.Intn(len(recent[u]))]
				ctx.Stat(m.ino)
			case r < 0.7 && polling && len(recent[u]) > 0:
				// Read and delete a fresh message (also conflict-prone).
				m := recent[u][0]
				recent[u] = recent[u][1:]
				ctx.Remove(m.dir, m.name, m.ino)
			default:
				// Work in the private home directory.
				name := fmt.Sprintf("draft-%02d-%04d", u, seq)
				seq++
				if ino, err := ctx.Create(userDirs[u], name); err == nil {
					ctx.SetAttr(ino)
					ctx.Remove(userDirs[u], name, ino)
				}
			}
		}
	})

	if bad := fs.CheckConsistency(); len(bad) != 0 {
		log.Fatalf("inconsistent: %v", bad)
	}
	st := fs.CxStats()
	stats.conflicts = st.Conflicts
	stats.immediate = st.ImmediateCommits
	stats.lazy = st.LazyBatches
	return fs.Elapsed(), stats
}

func main() {
	fmt.Printf("mail server: %d users x %d actions on %d servers (Cx protocol)\n\n", users, actions, servers)
	ePoll, sPoll := run(true)
	eExcl, sExcl := run(false)
	fmt.Printf("polling fresh mail: time=%-12v conflicts=%-4d immediate-commits=%-4d lazy-batches=%d\n",
		ePoll.Round(time.Millisecond), sPoll.conflicts, sPoll.immediate, sPoll.lazy)
	fmt.Printf("exclusive access:   time=%-12v conflicts=%-4d immediate-commits=%-4d lazy-batches=%d\n",
		eExcl.Round(time.Millisecond), sExcl.conflicts, sExcl.immediate, sExcl.lazy)
	fmt.Printf("\nreading another process's uncommitted files forced %d immediate commitments;\n", sPoll.immediate)
	fmt.Println("with exclusive access everything rides the lazy batches — the §II.C pattern")
	fmt.Println("that makes Cx's deferred commitment safe in practice.")
}

package wire

import (
	"testing"

	"cxfs/internal/types"
)

// benchMsgs is the codec benchmark mix: the three frame shapes that
// dominate replay traffic (single sub-op request, YES/NO response, and a
// lazy-commitment batch).
func benchMsgs() []Msg {
	sub := sampleMsg()
	batch := Msg{Type: MsgVote, From: 0, To: 1,
		Ops: make([]types.OpID, 64), Enforce: []types.OpID{{Seq: 9}}}
	for i := range batch.Ops {
		batch.Ops[i] = types.OpID{Proc: types.ProcID{Client: 101, Index: 1}, Seq: uint64(i)}
	}
	resp := Msg{Type: MsgVoteResp, From: 1, To: 0, Votes: make([]Vote, 64)}
	for i := range resp.Votes {
		resp.Votes[i] = Vote{Op: types.OpID{Seq: uint64(i)}, OK: i%7 != 0}
	}
	return []Msg{sub, batch, resp}
}

// BenchmarkEncode measures the allocating encode path (fresh buffer per
// frame) — what the transport paid before EncodeTo existed.
func BenchmarkEncode(b *testing.B) {
	msgs := benchMsgs()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(&msgs[i%len(msgs)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEncodeTo measures the zero-alloc encode path: append into a
// reused buffer, as MsgConn.WriteMsg does with the frame pool.
func BenchmarkEncodeTo(b *testing.B) {
	msgs := benchMsgs()
	buf := make([]byte, 0, 4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out, err := EncodeTo(buf[:0], &msgs[i%len(msgs)])
		if err != nil {
			b.Fatal(err)
		}
		buf = out[:0]
	}
}

// BenchmarkEncodeToPooled measures the pooled variant including pool
// round-trips, the exact WriteMsg discipline.
func BenchmarkEncodeToPooled(b *testing.B) {
	msgs := benchMsgs()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fb := GetBuffer()
		out, err := EncodeTo(fb.B, &msgs[i%len(msgs)])
		if err != nil {
			b.Fatal(err)
		}
		fb.B = out
		PutBuffer(fb)
	}
}

// BenchmarkDecodeBody measures the receive path over the same mix.
func BenchmarkDecodeBody(b *testing.B) {
	var bodies [][]byte
	for _, m := range benchMsgs() {
		m := m
		buf, err := Encode(&m)
		if err != nil {
			b.Fatal(err)
		}
		bodies = append(bodies, buf[4:])
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeBody(bodies[i%len(bodies)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSize measures the size accounting the simulated network charges
// per message without materializing bytes.
func BenchmarkSize(b *testing.B) {
	msgs := benchMsgs()
	b.ReportAllocs()
	var sink int64
	for i := 0; i < b.N; i++ {
		sink += Size(&msgs[i%len(msgs)])
	}
	_ = sink
}

package core_test

import (
	"errors"
	"testing"
	"time"

	"cxfs/internal/core"
	"cxfs/internal/simrt"
	"cxfs/internal/types"
)

// fakeDoer is a Doer whose per-op latency and error are table-driven, with
// an in-flight high-water mark to verify the pipeline's depth bound.
type fakeDoer struct {
	delay    func(op types.Op) time.Duration
	err      func(op types.Op) error
	inflight int
	peak     int
}

func (d *fakeDoer) Do(p *simrt.Proc, op types.Op) (types.Inode, error) {
	d.inflight++
	if d.inflight > d.peak {
		d.peak = d.inflight
	}
	if d.delay != nil {
		if dl := d.delay(op); dl > 0 {
			p.Sleep(dl)
		}
	}
	d.inflight--
	if d.err != nil {
		if e := d.err(op); e != nil {
			return types.Inode{}, e
		}
	}
	return types.Inode{Ino: op.Ino}, nil
}

func pipeOp(seq uint64) types.Op {
	return types.Op{ID: types.OpID{Proc: types.ProcID{Client: 9}, Seq: seq},
		Kind: types.OpStat, Ino: types.InodeID(seq)}
}

// withPipeline runs fn inside a simulation with a pipeline over the doer.
func withPipeline(t *testing.T, seed int64, d core.Doer, depth int, fn func(p *simrt.Proc, pl *core.Pipeline)) {
	t.Helper()
	s := simrt.New(seed)
	pl := core.NewPipeline(s, d, depth)
	s.Spawn("driver", func(p *simrt.Proc) {
		fn(p, pl)
		s.Stop()
	})
	s.RunUntil(time.Hour)
	if !s.Stopped() {
		t.Fatal("pipeline run hung")
	}
	s.Shutdown()
}

func TestPipelineDepthBoundsInFlight(t *testing.T) {
	d := &fakeDoer{delay: func(types.Op) time.Duration { return time.Millisecond }}
	withPipeline(t, 1, d, 4, func(p *simrt.Proc, pl *core.Pipeline) {
		var pends []*core.Pending
		for i := 0; i < 20; i++ {
			pends = append(pends, pl.Submit(p, pipeOp(uint64(i+1))))
		}
		pl.Drain(p)
		for i, pe := range pends {
			if !pe.Done() {
				t.Errorf("op %d not done after Drain", i)
			}
			if pe.Err != nil {
				t.Errorf("op %d: %v", i, pe.Err)
			}
		}
	})
	if d.peak > 4 {
		t.Errorf("in-flight peaked at %d, depth is 4", d.peak)
	}
	if d.peak < 4 {
		t.Errorf("in-flight peaked at %d; the pipeline never filled", d.peak)
	}
}

func TestPipelineCompletionOrderFollowsLatency(t *testing.T) {
	// Ops 1..3 with latencies 3ms, 1ms, 2ms: completion (and therefore
	// Drain) order must be 2, 3, 1.
	lat := map[uint64]time.Duration{1: 3 * time.Millisecond, 2: time.Millisecond, 3: 2 * time.Millisecond}
	d := &fakeDoer{delay: func(op types.Op) time.Duration { return lat[op.ID.Seq] }}
	withPipeline(t, 1, d, 3, func(p *simrt.Proc, pl *core.Pipeline) {
		for seq := uint64(1); seq <= 3; seq++ {
			pl.Submit(p, pipeOp(seq))
		}
		done := pl.Drain(p)
		var got []uint64
		for _, pe := range done {
			got = append(got, pe.Op.ID.Seq)
		}
		want := []uint64{2, 3, 1}
		for i := range want {
			if i >= len(got) || got[i] != want[i] {
				t.Fatalf("completion order %v, want %v", got, want)
			}
		}
	})
}

func TestPipelineDepthClampedToOne(t *testing.T) {
	d := &fakeDoer{delay: func(types.Op) time.Duration { return time.Millisecond }}
	withPipeline(t, 1, d, 0, func(p *simrt.Proc, pl *core.Pipeline) {
		if pl.Depth() != 1 {
			t.Errorf("depth %d, want clamp to 1", pl.Depth())
		}
		for i := 0; i < 5; i++ {
			pl.Submit(p, pipeOp(uint64(i+1)))
		}
		pl.Drain(p)
	})
	if d.peak != 1 {
		t.Errorf("in-flight peaked at %d with depth 1", d.peak)
	}
}

func TestPipelinePollIsNonBlocking(t *testing.T) {
	d := &fakeDoer{delay: func(types.Op) time.Duration { return time.Second }}
	withPipeline(t, 1, d, 2, func(p *simrt.Proc, pl *core.Pipeline) {
		pl.Submit(p, pipeOp(1))
		if got := pl.Poll(); len(got) != 0 {
			t.Errorf("Poll returned %d results with the op still in flight", len(got))
		}
		if pl.InFlight() != 1 {
			t.Errorf("InFlight=%d, want 1", pl.InFlight())
		}
		pl.Drain(p)
	})
}

func TestPipelineErrorsStayPerOp(t *testing.T) {
	boom := errors.New("boom")
	d := &fakeDoer{
		delay: func(types.Op) time.Duration { return time.Millisecond },
		err: func(op types.Op) error {
			if op.ID.Seq%2 == 0 {
				return boom
			}
			return nil
		},
	}
	withPipeline(t, 1, d, 4, func(p *simrt.Proc, pl *core.Pipeline) {
		var pends []*core.Pending
		for seq := uint64(1); seq <= 8; seq++ {
			pends = append(pends, pl.Submit(p, pipeOp(seq)))
		}
		pl.Drain(p)
		for _, pe := range pends {
			wantErr := pe.Op.ID.Seq%2 == 0
			if (pe.Err != nil) != wantErr {
				t.Errorf("op %d: err=%v, wantErr=%v", pe.Op.ID.Seq, pe.Err, wantErr)
			}
			if pe.Err == nil && pe.Attr.Ino != pe.Op.Ino {
				t.Errorf("op %d: attr ino %d, want %d", pe.Op.ID.Seq, pe.Attr.Ino, pe.Op.Ino)
			}
		}
	})
}

func TestPipelineDeterministicCompletionOrder(t *testing.T) {
	run := func() []uint64 {
		// Latency varies with seq so completions genuinely reorder.
		d := &fakeDoer{delay: func(op types.Op) time.Duration {
			return time.Duration(1+op.ID.Seq%5) * time.Millisecond
		}}
		var order []uint64
		withPipeline(t, 7, d, 6, func(p *simrt.Proc, pl *core.Pipeline) {
			for seq := uint64(1); seq <= 24; seq++ {
				pl.Submit(p, pipeOp(seq))
				for _, pe := range pl.Poll() {
					order = append(order, pe.Op.ID.Seq)
				}
			}
			for _, pe := range pl.Drain(p) {
				order = append(order, pe.Op.ID.Seq)
			}
		})
		return order
	}
	a, b := run(), run()
	if len(a) != 24 || len(b) != 24 {
		t.Fatalf("lost completions: %d and %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("completion order diverged at %d: %v vs %v", i, a, b)
		}
	}
}

package harness

import (
	"strings"
	"testing"
	"time"
)

// tiny keeps harness tests fast; the full-shape assertions run in the
// top-level benchmarks.
func tiny() Config {
	return Config{Scale: 0.0012, Servers: 4, Seed: 1}
}

func TestTable2ShapesAndOrdering(t *testing.T) {
	cfg := tiny()
	rows, tbl := Table2(cfg)
	if len(rows) != 6 {
		t.Fatalf("want 6 workloads, got %d", len(rows))
	}
	byName := map[string]Table2Row{}
	for _, r := range rows {
		byName[r.Workload] = r
		if r.TotalOps <= 0 {
			t.Errorf("%s: no ops", r.Workload)
		}
		if r.ConflictRatio > 0.10 {
			t.Errorf("%s: conflict ratio %.3f implausibly high", r.Workload, r.ConflictRatio)
		}
	}
	// Table II ordering: supercomputing traces conflict less than deasna2.
	if byName["CTH"].ConflictRatio >= byName["deasna2"].ConflictRatio {
		t.Errorf("CTH (%.4f) should conflict less than deasna2 (%.4f)",
			byName["CTH"].ConflictRatio, byName["deasna2"].ConflictRatio)
	}
	if !strings.Contains(tbl.String(), "deasna2") {
		t.Error("table missing workloads")
	}
}

func TestTable4OverheadSmall(t *testing.T) {
	cfg := tiny()
	rows, _ := Table4(cfg)
	for _, r := range rows {
		if r.MsgsCx == 0 || r.MsgsOFS == 0 {
			t.Errorf("%s: zero messages", r.Workload)
		}
		// Paper: <= ~3.1% at their scale; batching keeps it single-digit
		// even on tiny replays where lazy batches are small.
		if r.Overhead > 0.15 {
			t.Errorf("%s: message overhead %.1f%% too high", r.Workload, r.Overhead*100)
		}
		if r.Overhead < -0.05 {
			t.Errorf("%s: Cx sent notably fewer messages (%.1f%%) — accounting bug?", r.Workload, r.Overhead*100)
		}
	}
}

func TestTable5MonotoneSublinear(t *testing.T) {
	cfg := tiny()
	rows, _ := Table5(cfg)
	if len(rows) != 6 {
		t.Fatalf("rows=%d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].RecoveryTime < rows[i-1].RecoveryTime {
			t.Errorf("recovery time not monotone: %v@%dKB < %v@%dKB",
				rows[i].RecoveryTime, rows[i].ValidKB, rows[i-1].RecoveryTime, rows[i-1].ValidKB)
		}
	}
	// Paper shape: 100x backlog (10KB->1000KB) grows recovery <3x thanks to
	// the fixed freeze phase; allow modest slack for the simulator's
	// different fixed/variable balance.
	t10, t1000 := rows[1].RecoveryTime, rows[5].RecoveryTime
	if t10 > 0 && float64(t1000) > 4*float64(t10) {
		t.Errorf("recovery growth superlinear: %v -> %v for 100x backlog", t10, t1000)
	}
}

func TestFig4AllWorkloadsPresent(t *testing.T) {
	tbl := Fig4(tiny())
	out := tbl.String()
	for _, w := range []string{"CTH", "s3d", "alegra", "home2", "deasna2", "lair62b"} {
		if !strings.Contains(out, w) {
			t.Errorf("missing %s", w)
		}
	}
}

func TestFig5PaperInequalities(t *testing.T) {
	cfg := tiny()
	cfg.Scale = 0.003
	rows, _ := Fig5(cfg, []string{"CTH", "s3d"})
	for _, r := range rows {
		if r.CxOverOFS < 0.30 {
			t.Errorf("%s: Cx improvement over OFS %.0f%%, paper reports >=38%%",
				r.Workload, r.CxOverOFS*100)
		}
		if r.CxOverBatch <= 0 {
			t.Errorf("%s: Cx not ahead of OFS-batched (%.0f%%)", r.Workload, r.CxOverBatch*100)
		}
	}
}

func TestFig6GainAndScaling(t *testing.T) {
	cfg := tiny()
	rows, _ := Fig6(cfg, []int{2, 4}, 25)
	byKey := map[string]Fig6Row{}
	for _, r := range rows {
		byKey[r.Mix+string(rune(r.Servers))] = r
		if r.CxGain <= 0 {
			t.Errorf("%s@%d servers: Cx gain %.2f, must be positive", r.Mix, r.Servers, r.CxGain)
		}
		if r.OFSCx <= r.OFS {
			t.Errorf("%s@%d: Cx throughput below OFS", r.Mix, r.Servers)
		}
	}
	// Scaling: 4 servers beat 2 for every system.
	for _, mix := range []string{"update-dominated", "read-dominated"} {
		r2, r4 := byKey[mix+string(rune(2))], byKey[mix+string(rune(4))]
		if r4.OFSCx <= r2.OFSCx {
			t.Errorf("%s: Cx did not scale 2->4 servers (%.0f -> %.0f)", mix, r2.OFSCx, r4.OFSCx)
		}
	}
}

func TestFig7aSmallerLogSlower(t *testing.T) {
	cfg := tiny()
	rows, _ := Fig7a(cfg, []int64{8 << 10, 0})
	if len(rows) != 2 {
		t.Fatal("want 2 rows")
	}
	if rows[0].ReplayTime <= rows[1].ReplayTime {
		t.Errorf("8KB log (%v) should replay slower than unlimited (%v)",
			rows[0].ReplayTime, rows[1].ReplayTime)
	}
}

func TestFig7bSeriesHasPeakAndDrops(t *testing.T) {
	cfg := tiny()
	cfg.Scale = 0.002
	series, _ := Fig7b(cfg, 50*time.Millisecond)
	if len(series.Points) < 5 {
		t.Fatalf("too few samples: %d", len(series.Points))
	}
	if series.Peak() <= 0 {
		t.Error("valid-record size never rose")
	}
	if series.Drops(0.3) == 0 {
		t.Error("no pruning drops observed; timeout trigger not visible in the series")
	}
}

func TestFig8ConflictsDegradeCx(t *testing.T) {
	cfg := tiny()
	rows, ofs, _ := Fig8(cfg, []float64{0, 0.9})
	if len(rows) != 2 {
		t.Fatal("want 2 rows")
	}
	if rows[1].ConflictRatio <= rows[0].ConflictRatio {
		t.Errorf("injection did not raise conflicts: %.4f -> %.4f",
			rows[0].ConflictRatio, rows[1].ConflictRatio)
	}
	if rows[1].CxReplay <= rows[0].CxReplay {
		t.Errorf("higher conflicts should slow Cx: %v -> %v", rows[0].CxReplay, rows[1].CxReplay)
	}
	if rows[0].CxReplay >= ofs {
		t.Errorf("at base conflicts Cx (%v) must beat OFS (%v)", rows[0].CxReplay, ofs)
	}
}

func TestFig9LongerTimeoutFaster(t *testing.T) {
	cfg := tiny()
	rows, _ := Fig9a(cfg, []time.Duration{20 * time.Millisecond, 10 * time.Second})
	if rows[1].ReplayTime >= rows[0].ReplayTime {
		t.Errorf("long timeout (%v) should be faster than short (%v)",
			rows[1].ReplayTime, rows[0].ReplayTime)
	}
	rowsB, _ := Fig9b(cfg, []int{2, 4096})
	if rowsB[1].ReplayTime >= rowsB[0].ReplayTime {
		t.Errorf("large threshold (%v) should be faster than tiny (%v)",
			rowsB[1].ReplayTime, rowsB[0].ReplayTime)
	}
}

func TestLatencyExtensionShape(t *testing.T) {
	cfg := tiny()
	rows, tbl := Latency(cfg, "CTH")
	if len(rows) != 3 {
		t.Fatalf("rows=%d", len(rows))
	}
	byProto := map[string]LatencyRow{}
	for _, r := range rows {
		byProto[string(r.Protocol)] = r
		if r.Mean <= 0 || r.P99 < r.P50 {
			t.Errorf("%s: implausible distribution %+v", r.Protocol, r)
		}
	}
	// Concurrent execution must cut the median against serial execution.
	if byProto["cx"].P50 >= byProto["se"].P50 {
		t.Errorf("Cx p50 (%v) not below SE p50 (%v)", byProto["cx"].P50, byProto["se"].P50)
	}
	if !strings.Contains(tbl.String(), "p99") {
		t.Error("table malformed")
	}
}

func TestTriggersExtension(t *testing.T) {
	cfg := tiny()
	rows, _ := Triggers(cfg)
	if len(rows) != 5 {
		t.Fatalf("rows=%d", len(rows))
	}
	byName := map[string]TriggerRow{}
	for _, r := range rows {
		byName[r.Name] = r
		if r.ReplayTime <= 0 {
			t.Errorf("%s: no replay time", r.Name)
		}
	}
	// A fast timeout forces many small batches and must be slower than the
	// long-timeout optimum; the idle trigger should land near the optimum
	// (the replay has no long quiet periods, so it rarely fires mid-run).
	if byName["timeout-100ms"].ReplayTime < byName["timeout-10s"].ReplayTime {
		t.Errorf("fast timeout (%v) beat slow (%v)", byName["timeout-100ms"].ReplayTime, byName["timeout-10s"].ReplayTime)
	}
	slack := byName["timeout-10s"].ReplayTime + byName["timeout-10s"].ReplayTime/4
	if byName["idle-200ms"].ReplayTime > slack {
		t.Errorf("idle trigger (%v) far off the optimum (%v)", byName["idle-200ms"].ReplayTime, byName["timeout-10s"].ReplayTime)
	}
}

// Flush-window observability: the WAL's group-commit scheduler reports each
// coalesced flush through a hook the cluster wires to RecordFlush, and this
// file aggregates the window-size histogram and coalesce ratio — the two
// numbers that show whether cross-proc group commit is actually earning its
// linger.
package obs

import (
	"math/bits"

	"cxfs/internal/stats"
)

// flushBuckets is the log2-scaled window-size bucket count: bucket i covers
// window sizes [2^i, 2^(i+1)) caller batches, topping out above 2^15.
const flushBuckets = 16

// FlushStats aggregates WAL group-commit activity across every node of a
// run.
type FlushStats struct {
	Flushes uint64 // coalesced disk writes
	Batches uint64 // caller append requests absorbed into those writes
	Records uint64 // records those requests carried
	Bytes   int64  // bytes of the coalesced writes
	// Window is the histogram of flush-window sizes (caller batches per
	// flush), log2-bucketed: Window[i] counts flushes that coalesced
	// [2^i, 2^(i+1)) batches.
	Window [flushBuckets]uint64
}

// CoalesceRatio returns the mean flush-window size — caller append requests
// per disk write. 1.0 means group commit never coalesced anything; the
// paper's batching argument (§III.D) needs it well above that under load.
func (f FlushStats) CoalesceRatio() float64 {
	if f.Flushes == 0 {
		return 0
	}
	return float64(f.Batches) / float64(f.Flushes)
}

func flushBucketOf(batches int) int {
	if batches < 1 {
		batches = 1
	}
	b := bits.Len64(uint64(batches)) - 1 // size 1 -> 0, 2..3 -> 1, ...
	if b >= flushBuckets {
		b = flushBuckets - 1
	}
	return b
}

// RecordFlush folds one group-commit flush into the aggregate: batches
// caller requests, carrying records records, written as one bytes-sized
// disk request. Nil-safe.
func (o *Observer) RecordFlush(batches, records int, bytes int64) {
	if o == nil {
		return
	}
	o.flush.Flushes++
	o.flush.Batches += uint64(batches)
	o.flush.Records += uint64(records)
	o.flush.Bytes += bytes
	o.flush.Window[flushBucketOf(batches)]++
}

// FlushStats returns the aggregated group-commit activity. Nil-safe.
func (o *Observer) FlushStats() FlushStats {
	if o == nil {
		return FlushStats{}
	}
	return o.flush
}

// FlushTable renders the flush-window size histogram and coalesce ratio.
func (o *Observer) FlushTable() *stats.Table {
	tbl := stats.NewTable("WAL group-commit flush windows",
		"window (batches)", "flushes")
	if o == nil || o.flush.Flushes == 0 {
		return tbl
	}
	for i, n := range o.flush.Window {
		if n == 0 {
			continue
		}
		lo := 1 << i
		hi := 1<<(i+1) - 1
		label := ""
		if lo == hi {
			label = itoa(lo)
		} else {
			label = itoa(lo) + "-" + itoa(hi)
		}
		tbl.Add(label, n)
	}
	tbl.Add("coalesce ratio", o.flush.CoalesceRatio())
	return tbl
}

// itoa is a dependency-free positive-int formatter (this file keeps obs
// free of fmt on the hot path).
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

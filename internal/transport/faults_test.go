package transport

import (
	"testing"
	"time"

	"cxfs/internal/simrt"
	"cxfs/internal/types"
	"cxfs/internal/wire"
)

// runLossy sends count messages 0->1 over a link with the given faults and
// returns the sequence numbers delivered (in arrival order) plus the final
// stats. The receiver drains until the simulation goes quiet.
func runLossy(seed int64, f Faults, count int) ([]uint64, Stats) {
	s := simrt.New(seed)
	n := New(s, DefaultParams())
	box := n.Register(1)
	n.Register(0)
	n.SetLinkFaults(0, 1, f)
	var seqs []uint64
	s.Spawn("recv", func(p *simrt.Proc) {
		for {
			m, ok := box.RecvTimeout(p, time.Second)
			if !ok {
				s.Stop()
				return
			}
			seqs = append(seqs, m.Op.Seq)
		}
	})
	s.Spawn("send", func(p *simrt.Proc) {
		for i := 0; i < count; i++ {
			n.Send(wire.Msg{Type: wire.MsgAck, From: 0, To: 1, Op: types.OpID{Seq: uint64(i)}})
			p.Sleep(10 * time.Microsecond)
		}
	})
	s.RunUntil(time.Hour)
	st := n.Stats()
	s.Shutdown()
	return seqs, st
}

func TestLinkDropFaultLosesMessagesAndCounts(t *testing.T) {
	seqs, st := runLossy(7, Faults{DropProb: 0.3}, 200)
	if st.DroppedFault == 0 {
		t.Fatalf("no messages dropped at DropProb=0.3")
	}
	if uint64(len(seqs))+st.DroppedFault != 200 {
		t.Errorf("delivered %d + dropped %d != sent 200", len(seqs), st.DroppedFault)
	}
	if st.Messages != 200 {
		t.Errorf("Messages=%d, want 200 (drops still count as sent)", st.Messages)
	}
}

func TestLinkDupFaultDeliversExtraCopies(t *testing.T) {
	seqs, st := runLossy(7, Faults{DupProb: 0.5}, 100)
	if st.Duplicated == 0 {
		t.Fatalf("no duplicates at DupProb=0.5")
	}
	if uint64(len(seqs)) != 100+st.Duplicated {
		t.Errorf("delivered %d, want 100 sent + %d duplicated", len(seqs), st.Duplicated)
	}
	if st.Messages != 100 {
		t.Errorf("Messages=%d, want 100 (copies are not counted as sends)", st.Messages)
	}
}

func TestLinkDelayFaultReordersSameSender(t *testing.T) {
	// A large injected delay relative to the send spacing must reorder some
	// messages from a single sender — the weakened-FIFO property the Cx
	// protocol layer is required to tolerate.
	seqs, st := runLossy(7, Faults{DelayProb: 0.5, DelayMax: time.Millisecond}, 200)
	if st.Delayed == 0 {
		t.Fatalf("no messages delayed at DelayProb=0.5")
	}
	if len(seqs) != 200 {
		t.Fatalf("delivered %d, want all 200 (delay never drops)", len(seqs))
	}
	reordered := false
	for i := 1; i < len(seqs); i++ {
		if seqs[i] < seqs[i-1] {
			reordered = true
			break
		}
	}
	if !reordered {
		t.Errorf("no reordering observed despite %d injected delays", st.Delayed)
	}
}

func TestDirectedPartitionDropsOneDirectionOnly(t *testing.T) {
	s := simrt.New(1)
	n := New(s, DefaultParams())
	box0 := n.Register(0)
	box1 := n.Register(1)
	n.Partition(0, 1) // cut 0->1 only
	var got01, got10 int
	s.Spawn("recv0", func(p *simrt.Proc) {
		for {
			if _, ok := box0.RecvTimeout(p, time.Second); !ok {
				return
			}
			got10++
		}
	})
	s.Spawn("recv1", func(p *simrt.Proc) {
		for {
			if _, ok := box1.RecvTimeout(p, time.Second); !ok {
				s.Stop()
				return
			}
			got01++
		}
	})
	s.Spawn("send", func(p *simrt.Proc) {
		for i := 0; i < 10; i++ {
			n.Send(wire.Msg{Type: wire.MsgAck, From: 0, To: 1})
			n.Send(wire.Msg{Type: wire.MsgAck, From: 1, To: 0})
		}
		if !n.Partitioned(0, 1) || n.Partitioned(1, 0) {
			t.Errorf("partition state wrong: 0->1=%v 1->0=%v", n.Partitioned(0, 1), n.Partitioned(1, 0))
		}
		n.Heal(0, 1)
		n.Send(wire.Msg{Type: wire.MsgAck, From: 0, To: 1})
	})
	s.RunUntil(time.Hour)
	st := n.Stats()
	s.Shutdown()
	if got01 != 1 {
		t.Errorf("0->1 delivered %d, want only the 1 post-heal message", got01)
	}
	if got10 != 10 {
		t.Errorf("1->0 delivered %d, want all 10 (reverse direction unaffected)", got10)
	}
	if st.DroppedPartition != 10 {
		t.Errorf("DroppedPartition=%d, want 10", st.DroppedPartition)
	}
}

func TestFaultPatternDeterministicPerSeed(t *testing.T) {
	f := Faults{DropProb: 0.2, DupProb: 0.2, DelayProb: 0.2, DelayMax: 500 * time.Microsecond}
	a, sa := runLossy(42, f, 300)
	b, sb := runLossy(42, f, 300)
	if len(a) != len(b) {
		t.Fatalf("same seed delivered %d vs %d messages", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at delivery %d: %d vs %d", i, a[i], b[i])
		}
	}
	if sa != sb {
		t.Errorf("same seed produced different stats:\n%+v\n%+v", sa, sb)
	}
	c, _ := runLossy(43, f, 300)
	if len(c) == len(a) {
		same := true
		for i := range c {
			if c[i] != a[i] {
				same = false
				break
			}
		}
		if same {
			t.Errorf("different seeds produced the identical delivery schedule")
		}
	}
}

func TestClearFaultsRestoresLossless(t *testing.T) {
	s := simrt.New(1)
	n := New(s, DefaultParams())
	box := n.Register(1)
	n.Register(0)
	n.SetDefaultFaults(Faults{DropProb: 1.0})
	n.SetLinkFaults(0, 1, Faults{DropProb: 1.0})
	var got int
	s.Spawn("recv", func(p *simrt.Proc) {
		for {
			if _, ok := box.RecvTimeout(p, time.Second); !ok {
				s.Stop()
				return
			}
			got++
		}
	})
	s.Spawn("send", func(p *simrt.Proc) {
		n.Send(wire.Msg{Type: wire.MsgAck, From: 0, To: 1})
		n.ClearFaults()
		n.Send(wire.Msg{Type: wire.MsgAck, From: 0, To: 1})
	})
	s.RunUntil(time.Hour)
	st := n.Stats()
	s.Shutdown()
	if got != 1 || st.DroppedFault != 1 {
		t.Errorf("delivered=%d droppedFault=%d, want 1 and 1", got, st.DroppedFault)
	}
}

package wal

import (
	"testing"
	"time"

	"cxfs/internal/disk"
	"cxfs/internal/simrt"
	"cxfs/internal/types"
)

// TestRebootDoesNotResurrectInFlightAppend pins down the incarnation rule:
// an append whose disk write was in flight when the server crashed must stay
// discarded even when the server reboots BEFORE the write completes. Without
// the generation guard the write wakes after Reboot cleared the crashed flag
// and admits a dead incarnation's record into the post-reboot log — after
// recovery has already scanned it, so the record lies invisible until a
// LATER crash resurrects it (observed as an orphan inode in the chaos
// matrix: an aborted op's before-image undid a newer committed delete).
func TestRebootDoesNotResurrectInFlightAppend(t *testing.T) {
	s := simrt.New(1)
	d := disk.New(s, "d", disk.DefaultParams())
	w := New(s, d, 0, 0)
	var scanned []Record
	s.Spawn("appender", func(p *simrt.Proc) {
		w.Append(p, procRec(3, 1)) // write needs ≥2ms to settle
	})
	s.Spawn("crash-reboot", func(p *simrt.Proc) {
		p.Sleep(500 * time.Microsecond) // write is on the platter
		w.Crash()
		p.Sleep(200 * time.Microsecond) // reboot while it is STILL in flight
		w.Reboot()
		scanned = w.RecoverScan(p)
		// Recovery is done; let the zombie write complete, then make sure
		// the log did not grow behind recovery's back.
		p.Sleep(20 * time.Millisecond)
	})
	s.Run()
	s.Shutdown()
	if len(scanned) != 0 {
		t.Fatalf("recovery scanned %d records, want 0", len(scanned))
	}
	if w.Has(procOp(3, 1), RecResult) {
		t.Error("dead incarnation's in-flight append materialized after reboot")
	}
	if w.LiveBytes() != 0 {
		t.Errorf("log holds %d live bytes after discard, want 0", w.LiveBytes())
	}
}

// TestRebootDoesNotResurrectInFlightGroupFlush is the same race through the
// group-commit flusher: the coalesced write is mid-flight across a crash and
// a fast reboot, and none of its records may be admitted afterwards. A
// post-reboot append must still flush normally.
func TestRebootDoesNotResurrectInFlightGroupFlush(t *testing.T) {
	s := simrt.New(1)
	d := disk.New(s, "d", disk.DefaultParams())
	w := New(s, d, 0, 0)
	w.SetGroupCommit(100 * time.Microsecond)
	for i := 0; i < 3; i++ {
		client := types.NodeID(i)
		s.Spawn("appender", func(p *simrt.Proc) {
			w.Append(p, procRec(client, 1))
		})
	}
	s.Spawn("crash-reboot", func(p *simrt.Proc) {
		p.Sleep(500 * time.Microsecond) // linger expired, flush on the platter
		w.Crash()
		p.Sleep(200 * time.Microsecond)
		w.Reboot()
		p.Sleep(20 * time.Millisecond) // let the zombie flush complete
		w.Append(p, procRec(9, 9))
	})
	s.Run()
	s.Shutdown()
	for i := 0; i < 3; i++ {
		if w.Has(procOp(types.NodeID(i), 1), RecResult) {
			t.Errorf("appender %d's in-flight record materialized after reboot", i)
		}
	}
	if !w.Has(procOp(9, 9), RecResult) {
		t.Error("post-reboot group append lost")
	}
	if got := w.Stats().Records; got != 1 {
		t.Errorf("Records=%d, want 1 (only the post-reboot append)", got)
	}
}

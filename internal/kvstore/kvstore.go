// Package kvstore is the embedded metadata database of one server — the
// stand-in for the Berkeley DB instance each OrangeFS metadata server keeps
// on its local ext3 disk.
//
// It supports the two write disciplines the paper compares:
//
//   - synchronous: every Put/Delete pays a page write to the disk model
//     before returning (plain OFS: "synchronously writing the updated
//     objects into BDB for every sub-op"), and
//   - batched write-back: mutations dirty in-memory pages; Flush later
//     submits all dirty pages to the disk in one burst, where the elevator
//     merges adjacent pages (OFS-batched and OFS-Cx).
//
// Page placement models OrangeFS's observation that metadata objects of a
// single directory are "sequentially placed on disk": pages are allocated in
// first-write order, so a stream of creates into one directory lands on
// adjacent pages and batched flushes merge into long sequential passes.
//
// The store tracks two images of the data: the volatile image that requests
// read and write, and the durable image that reflects completed page writes.
// Crash discards the volatile image; Recover reloads it from the durable
// one. The protocol layers use this to verify crash-consistency invariants.
package kvstore

import (
	"fmt"
	"sort"
	"time"

	"cxfs/internal/disk"
	"cxfs/internal/simrt"
)

// PageSize is the database page size charged per dirtied key (BDB default
// is 4KB; metadata rows are small so one row maps to one page here).
const PageSize = 4096

// Stats aggregates store activity.
type Stats struct {
	Puts       uint64
	Deletes    uint64
	Gets       uint64
	SyncWrites uint64 // pages written synchronously
	Flushes    uint64 // batched flush calls
	FlushPages uint64 // pages written by batched flushes
}

// JournalRecBytes is the database-journal cost charged per synchronously
// written row: the row image plus BDB-style log headers (first
// write after a checkpoint logs the whole page, later writes log deltas;
// this is the blended average).
const JournalRecBytes = 1024

// SyncCommitCPU is the serialized commit-path cost of one synchronous
// database transaction: OrangeFS's Trove layer funnels every BDB operation
// through a single DB thread, so B-tree update + txn bookkeeping + commit
// syscalls serialize per server even when the journal writes themselves
// group-commit. This is the structural reason OFS-batched beats plain OFS
// by ~15% in the paper despite both paying one sync log write per sub-op.
const SyncCommitCPU = 300 * time.Microsecond

// NumShards is the fan-out of the row images. Rows hash over the shards by
// key (FNV-1a), so the dentry and inode maps of a busy server stop funneling
// every access through one big map: each map stays small (better probe
// behavior, cheaper growth) and concurrent MDS handler procs touch disjoint
// shards for disjoint key ranges.
const NumShards = 16

// kvShard holds one shard of the row images.
type kvShard struct {
	mem     map[string][]byte // volatile image
	durable map[string][]byte // image implied by completed page writes
	dirty   map[string]bool   // keys with volatile changes not yet written
}

// shardOf hashes a row key onto a shard (inlined FNV-1a, no allocation).
func shardOf(key string) int {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= prime32
	}
	return int(h & (NumShards - 1))
}

// Store is one server's metadata database.
type Store struct {
	sim  *simrt.Sim
	dsk  *disk.Disk
	base int64 // disk offset of the database region

	shards [NumShards]kvShard
	slots  map[string]int64 // key -> page slot, assigned at first write
	next   int64            // next free page slot

	// Synchronous-mode machinery: BDB-style transaction journal plus a
	// periodic checkpointer writing journaled pages in place. syncMu is
	// the Trove-style single DB thread.
	journalBase int64
	journalTail int64
	ckptPending map[string]bool
	syncMu      *simrt.Mutex

	stats Stats
}

// New creates a store whose pages live at disk offset base and whose
// transaction journal (used only by the synchronous write path) lives at
// journalBase.
func New(s *simrt.Sim, d *disk.Disk, base int64) *Store {
	return NewWithJournal(s, d, base, base/2)
}

// NewWithJournal places the journal region explicitly.
func NewWithJournal(s *simrt.Sim, d *disk.Disk, base, journalBase int64) *Store {
	st := &Store{
		sim: s, dsk: d, base: base, journalBase: journalBase,
		slots:       make(map[string]int64),
		ckptPending: make(map[string]bool),
		syncMu:      simrt.NewMutex(s),
	}
	for i := range st.shards {
		st.shards[i] = kvShard{
			mem:     make(map[string][]byte),
			durable: make(map[string][]byte),
			dirty:   make(map[string]bool),
		}
	}
	return st
}

// Stats returns a snapshot of accumulated counters.
func (st *Store) Stats() Stats { return st.stats }

// Get returns the volatile value for key. The database cache is assumed
// warm (the paper sizes workloads so metadata fits server memory), so reads
// cost no disk time.
func (st *Store) Get(key string) ([]byte, bool) {
	st.stats.Gets++
	v, ok := st.shards[shardOf(key)].mem[key]
	return v, ok
}

// Put stores key=val in the volatile image and marks the page dirty.
func (st *Store) Put(key string, val []byte) {
	st.stats.Puts++
	cp := make([]byte, len(val))
	copy(cp, val)
	sh := &st.shards[shardOf(key)]
	sh.mem[key] = cp
	sh.dirty[key] = true
	st.slot(key)
}

// Delete removes key from the volatile image and marks the page dirty (a
// deletion still rewrites the page holding the row).
func (st *Store) Delete(key string) {
	st.stats.Deletes++
	sh := &st.shards[shardOf(key)]
	delete(sh.mem, key)
	sh.dirty[key] = true
	st.slot(key)
}

// slot returns the page slot for key, allocating in first-write order.
func (st *Store) slot(key string) int64 {
	if s, ok := st.slots[key]; ok {
		return s
	}
	s := st.next
	st.next++
	st.slots[key] = s
	return s
}

// SyncKeys makes the given rows durable synchronously, the way a BDB
// transactional put does: one sequential append to the database's
// transaction journal (group-committable in the elevator with concurrent
// puts), with the in-place page write deferred to the periodic
// checkpointer. This is the per-sub-op synchronous path of plain OFS, 2PC,
// and CE. Callers that rely on it must run a checkpointer
// (StartCheckpointer) so the in-place traffic is actually paid.
func (st *Store) SyncKeys(p *simrt.Proc, keys []string) {
	if len(keys) == 0 {
		return
	}
	// The single DB thread: commit-path work serializes per server.
	st.syncMu.Lock(p)
	p.Sleep(time.Duration(len(keys)) * SyncCommitCPU)
	st.syncMu.Unlock()
	size := int64(len(keys)) * JournalRecBytes
	off := st.journalBase + st.journalTail
	st.journalTail += size
	st.dsk.Access(p, off, size, true)
	for _, k := range keys {
		st.stats.SyncWrites++
		st.settle(k)
		st.ckptPending[k] = true
	}
}

// StartCheckpointer launches the periodic checkpoint daemon: every interval
// it writes the in-place pages of journaled rows back in one merged burst,
// like BDB's trickle/checkpoint threads. Call at most once per store.
func (st *Store) StartCheckpointer(interval time.Duration) {
	st.sim.Spawn("kv/checkpoint", func(p *simrt.Proc) {
		for {
			p.Sleep(interval)
			st.Checkpoint(p)
		}
	})
}

// Checkpoint writes all journaled-but-not-checkpointed pages in place.
func (st *Store) Checkpoint(p *simrt.Proc) int {
	if len(st.ckptPending) == 0 {
		return 0
	}
	keys := make([]string, 0, len(st.ckptPending))
	for k := range st.ckptPending {
		keys = append(keys, k)
	}
	st.ckptPending = make(map[string]bool)
	sort.Slice(keys, func(i, j int) bool { return st.slots[keys[i]] < st.slots[keys[j]] })
	chans := make([]*simrt.Chan[struct{}], len(keys))
	for i, k := range keys {
		chans[i] = st.dsk.Submit(st.pageOffset(k), PageSize, true)
	}
	for _, c := range chans {
		c.Recv(p)
	}
	st.stats.FlushPages += uint64(len(keys))
	return len(keys)
}

// DirtyCount returns the number of dirty pages awaiting flush.
func (st *Store) DirtyCount() int {
	n := 0
	for i := range st.shards {
		n += len(st.shards[i].dirty)
	}
	return n
}

// FlushDirty submits every dirty page to the disk in one burst and waits
// for all of them; the elevator merges adjacent pages. This is the batched
// write-back path of OFS-batched and OFS-Cx.
func (st *Store) FlushDirty(p *simrt.Proc) int {
	n := st.DirtyCount()
	if n == 0 {
		return 0
	}
	keys := make([]string, 0, n)
	for i := range st.shards {
		for k := range st.shards[i].dirty {
			keys = append(keys, k)
		}
	}
	// Deterministic submission order (ascending slot = disk layout order).
	sort.Slice(keys, func(i, j int) bool { return st.slots[keys[i]] < st.slots[keys[j]] })
	chans := make([]*simrt.Chan[struct{}], len(keys))
	for i, k := range keys {
		chans[i] = st.dsk.Submit(st.pageOffset(k), PageSize, true)
	}
	for _, c := range chans {
		c.Recv(p)
	}
	for _, k := range keys {
		st.settle(k)
	}
	st.stats.Flushes++
	st.stats.FlushPages += uint64(len(keys))
	return len(keys)
}

// FlushKeys flushes only the named keys (used when a commitment flushes the
// objects of its batch rather than the whole cache).
func (st *Store) FlushKeys(p *simrt.Proc, keys []string) {
	pending := keys[:0]
	for _, k := range keys {
		if st.shards[shardOf(k)].dirty[k] {
			pending = append(pending, k)
		}
	}
	if len(pending) == 0 {
		return
	}
	sort.Slice(pending, func(i, j int) bool { return st.slots[pending[i]] < st.slots[pending[j]] })
	chans := make([]*simrt.Chan[struct{}], len(pending))
	for i, k := range pending {
		chans[i] = st.dsk.Submit(st.pageOffset(k), PageSize, true)
	}
	for _, c := range chans {
		c.Recv(p)
	}
	for _, k := range pending {
		st.settle(k)
	}
	st.stats.Flushes++
	st.stats.FlushPages += uint64(len(pending))
}

// settle moves key's volatile value into the durable image and clears its
// dirty mark.
func (st *Store) settle(key string) {
	sh := &st.shards[shardOf(key)]
	delete(sh.dirty, key)
	if v, ok := sh.mem[key]; ok {
		cp := make([]byte, len(v))
		copy(cp, v)
		sh.durable[key] = cp
	} else {
		delete(sh.durable, key)
	}
}

func (st *Store) pageOffset(key string) int64 {
	return st.base + st.slot(key)*PageSize
}

// Crash discards the volatile image, simulating a server power loss: the
// store's contents revert to the durable image on the next Recover.
func (st *Store) Crash() {
	for i := range st.shards {
		st.shards[i].mem = nil
		st.shards[i].dirty = make(map[string]bool)
	}
}

// Recover reloads the volatile image from the durable one after a crash.
func (st *Store) Recover() {
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mem = make(map[string][]byte, len(sh.durable))
		for k, v := range sh.durable {
			cp := make([]byte, len(v))
			copy(cp, v)
			sh.mem[k] = cp
		}
	}
}

// Snapshot returns a copy of the volatile image; invariant checkers use it
// to compare cross-server state after quiescence.
func (st *Store) Snapshot() map[string][]byte {
	out := make(map[string][]byte, st.Len())
	for i := range st.shards {
		for k, v := range st.shards[i].mem {
			cp := make([]byte, len(v))
			copy(cp, v)
			out[k] = cp
		}
	}
	return out
}

// DurableSnapshot returns a copy of the durable image.
func (st *Store) DurableSnapshot() map[string][]byte {
	out := make(map[string][]byte)
	for i := range st.shards {
		for k, v := range st.shards[i].durable {
			cp := make([]byte, len(v))
			copy(cp, v)
			out[k] = cp
		}
	}
	return out
}

// Forget drops a key from the volatile image without scheduling a disk
// write — used by CE when a migrated row returns to its home server and the
// temporary local copy must vanish without becoming durable here.
func (st *Store) Forget(key string) {
	sh := &st.shards[shardOf(key)]
	delete(sh.mem, key)
	delete(sh.dirty, key)
	delete(sh.durable, key)
}

// Range calls fn for every volatile row until fn returns false. Iteration
// order is unspecified; callers needing determinism must sort.
func (st *Store) Range(fn func(key string, val []byte) bool) {
	for i := range st.shards {
		for k, v := range st.shards[i].mem {
			if !fn(k, v) {
				return
			}
		}
	}
}

// Len returns the number of volatile rows.
func (st *Store) Len() int {
	n := 0
	for i := range st.shards {
		n += len(st.shards[i].mem)
	}
	return n
}

// String renders store state for debugging.
func (st *Store) String() string {
	return fmt.Sprintf("kv{rows=%d dirty=%d shards=%d}", st.Len(), st.DirtyCount(), NumShards)
}

package trace

import (
	"fmt"
	"time"

	"cxfs/internal/cluster"
	"cxfs/internal/simrt"
	"cxfs/internal/types"
)

// Result summarizes one trace replay.
type Result struct {
	Workload   string
	Protocol   cluster.Protocol
	Ops        int
	ReplayTime time.Duration // virtual time from first op to last completion
	Errors     int           // tolerated races (shared read of a gone file)
	HardErrors int           // anything else — must be zero
	Messages   uint64
	Bytes      int64
	Conflicts  uint64 // Cx only: sub-ops blocked on active objects

	// Resource deltas measured across the replay window only (setup and
	// quiesce excluded), for the harness's breakdowns.
	DiskBusy   time.Duration
	DiskPasses uint64
	WALAppends uint64
	KVSyncs    uint64
	KVFlushed  uint64
}

// ConflictRatio is conflicts over total operations (Table II's metric).
func (r Result) ConflictRatio() float64 {
	if r.Ops == 0 {
		return 0
	}
	return float64(r.Conflicts) / float64(r.Ops)
}

// fileBinding maps a symbolic file to its runtime identity.
type fileBinding struct {
	dir  types.InodeID
	name string
	ino  types.InodeID
}

// Replayer drives one trace against one cluster.
type Replayer struct {
	Trace *Trace
	C     *cluster.Cluster
	// ExtraSharedReads injects additional shared lookups per op with the
	// given probability — the Figure 8 conflict-ratio knob ("we injected
	// some lookup requests to add some immediate commitments").
	ExtraSharedReads float64

	// KindLat, when non-nil, collects per-kind operation latencies for
	// diagnostics and the harness's latency breakdowns.
	KindLat map[Kind][]time.Duration
	// Background procs are spawned alongside the workload — samplers for
	// the Figure 7b valid-record series run here. They are killed when the
	// simulation shuts down.
	Background []func(p *simrt.Proc)

	dirs   map[int]types.InodeID
	files  map[int]fileBinding
	recent []recentCreate // ring of the newest creations, for injection
}

// recentCreate remembers who created a file, so injected reads target
// *other* processes' files (same-process access never conflicts).
type recentCreate struct {
	id   int
	proc int
}

// fileName renders the stable name of a symbolic file.
func fileName(id int) string { return fmt.Sprintf("f%08d", id) }

// dirName renders the stable name of a symbolic directory.
func dirName(id int) string { return fmt.Sprintf("dir%05d", id) }

// Run replays the trace and returns its result. It must be called from
// outside the simulation; it spawns the replay processes, runs the
// simulation to completion, quiesces, and checks nothing leaked.
func (r *Replayer) Run() Result {
	t, c := r.Trace, r.C
	if t.Profile.Procs > c.NumProcs() {
		panic(fmt.Sprintf("trace: %s needs %d processes, cluster has %d",
			t.Profile.Name, t.Profile.Procs, c.NumProcs()))
	}
	r.dirs = make(map[int]types.InodeID)
	r.files = make(map[int]fileBinding)

	res := Result{Workload: t.Profile.Name, Protocol: c.Opts.Protocol, Ops: t.Total}
	// Static directories are those referenced before any MkdirOwn could
	// create them: the first Profile.CommonDirs (+ one per proc when
	// private), matching the generator's numbering.
	static := t.Profile.CommonDirs
	if t.Profile.PrivateDirPerProc {
		static += t.Profile.Procs
	}

	var start, end time.Duration
	var msgStart = c.Net.Stats()
	snapshot := func() (busy time.Duration, passes, appends, syncs, flushed uint64) {
		for _, b := range c.Bases {
			ds := b.Disk.Stats()
			busy += ds.BusyTime
			passes += ds.MechOps
			appends += b.WAL.Stats().Appends
			syncs += b.KV.Stats().SyncWrites
			flushed += b.KV.Stats().FlushPages
		}
		return
	}
	var busy0 time.Duration
	var passes0, app0, sync0, flush0 uint64

	g := simrt.NewGroup(c.Sim)
	g.Add(t.Profile.Procs)

	if c.Opts.Obs.SamplingOn() {
		c.Sim.Spawn("replay/sampler", c.SamplerProc())
	}

	setup := simrt.NewChan[struct{}](c.Sim)
	c.Sim.Spawn("replay/setup", func(p *simrt.Proc) {
		pr := c.Proc(0)
		for d := 0; d < static; d++ {
			ino, err := pr.Mkdir(p, types.RootInode, dirName(d))
			if err != nil {
				panic(fmt.Sprintf("trace setup mkdir: %v", err))
			}
			r.dirs[d] = ino
		}
		c.Quiesce(p) // settle setup so it does not pollute measurements
		start = p.Now()
		msgStart = c.Net.Stats()
		busy0, passes0, app0, sync0, flush0 = snapshot()
		for i := 0; i < t.Profile.Procs; i++ {
			setup.Send(struct{}{})
		}
	})

	for pi := 0; pi < t.Profile.Procs; pi++ {
		pi := pi
		pr := c.Proc(pi)
		c.Sim.Spawn(fmt.Sprintf("replay/p%d", pi), func(p *simrt.Proc) {
			setup.Recv(p)
			for _, rec := range t.PerProc[pi] {
				opStart := p.Now()
				r.playOne(p, pr, rec, &res)
				if r.KindLat != nil {
					r.KindLat[rec.Kind] = append(r.KindLat[rec.Kind], p.Now()-opStart)
				}
				if r.ExtraSharedReads > 0 {
					// Deterministic per-op injection using the sim RNG.
					if c.Sim.Rand().Float64() < r.ExtraSharedReads {
						r.injectSharedRead(p, pr, pi, &res)
					}
				}
			}
			g.Done()
		})
	}
	for i, bg := range r.Background {
		c.Sim.Spawn(fmt.Sprintf("replay/bg%d", i), bg)
	}
	c.Sim.Spawn("replay/controller", func(p *simrt.Proc) {
		g.Wait(p)
		end = p.Now()
		busy1, passes1, app1, sync1, flush1 := snapshot()
		res.DiskBusy = busy1 - busy0
		res.DiskPasses = passes1 - passes0
		res.WALAppends = app1 - app0
		res.KVSyncs = sync1 - sync0
		res.KVFlushed = flush1 - flush0
		c.Quiesce(p)
		c.Sim.Stop()
	})
	c.Sim.Run()

	res.ReplayTime = end - start
	st := c.Net.Stats().Sub(msgStart)
	res.Messages = st.Messages
	res.Bytes = st.Bytes
	for _, srv := range c.CxSrv {
		res.Conflicts += srv.Stats().Conflicts
	}
	return res
}

// playOne issues one trace record.
func (r *Replayer) playOne(p *simrt.Proc, pr *cluster.Process, rec Rec, res *Result) {
	dir, ok := r.dirs[rec.Dir]
	if !ok {
		res.Errors++ // directory never materialized (tolerated slip)
		return
	}
	var err error
	switch rec.Kind {
	case CreateOwn:
		var ino types.InodeID
		ino, err = pr.Create(p, dir, fileName(rec.File))
		if err == nil {
			r.files[rec.File] = fileBinding{dir: dir, name: fileName(rec.File), ino: ino}
			r.recent = append(r.recent, recentCreate{id: rec.File, proc: rec.Proc})
			if len(r.recent) > 64 {
				r.recent = r.recent[1:]
			}
		}
	case RemoveOwn:
		if fb, have := r.files[rec.File]; have {
			err = pr.Remove(p, fb.dir, fb.name, fb.ino)
			delete(r.files, rec.File)
		}
	case MkdirOwn:
		var ino types.InodeID
		ino, err = pr.Mkdir(p, dir, dirName(rec.File))
		if err == nil {
			r.dirs[rec.File] = ino
		}
	case RmdirOwn:
		if ino, have := r.dirs[rec.File]; have {
			err = pr.Rmdir(p, dir, dirName(rec.File), ino)
			delete(r.dirs, rec.File)
		}
	case LinkOwn:
		if fb, have := r.files[rec.File]; have {
			err = pr.Link(p, fb.dir, fb.name+".ln", fb.ino)
		}
	case UnlinkOwn:
		if fb, have := r.files[rec.File]; have {
			err = pr.Unlink(p, fb.dir, fb.name+".ln", fb.ino)
		}
	case StatOwn, SetAttrOwn:
		if fb, have := r.files[rec.File]; have {
			if rec.Kind == StatOwn {
				_, err = pr.Stat(p, fb.ino)
			} else {
				err = pr.SetAttr(p, fb.ino)
			}
		}
	case LookupOwn:
		if fb, have := r.files[rec.File]; have {
			_, err = pr.Lookup(p, fb.dir, fb.name)
		}
	case StatShared:
		if fb, have := r.files[rec.File]; have {
			if _, e := pr.Stat(p, fb.ino); e != nil {
				res.Errors++ // the owner may have removed it; tolerated
			}
		}
		return
	case LookupShared:
		if fb, have := r.files[rec.File]; have {
			if _, e := pr.Lookup(p, fb.dir, fb.name); e != nil {
				res.Errors++
			}
		}
		return
	}
	if err != nil {
		res.HardErrors++
	}
}

// injectSharedRead issues one extra stat of another process's most recent
// file — the Figure 8 conflict injector ("we injected some lookup requests
// to add some immediate commitments").
func (r *Replayer) injectSharedRead(p *simrt.Proc, pr *cluster.Process, self int, res *Result) {
	for i := len(r.recent) - 1; i >= 0; i-- {
		rc := r.recent[i]
		if rc.proc == self {
			continue
		}
		fb, ok := r.files[rc.id]
		if !ok {
			continue
		}
		if _, err := pr.Stat(p, fb.ino); err != nil {
			res.Errors++
		}
		res.Ops++
		return
	}
}

// Package node provides the chassis shared by every protocol's metadata
// server — the simulated hardware (disk, log, database, namespace shard),
// the inbox loop, crash/reboot plumbing — and the client-side host that
// routes server responses back to the issuing process.
//
// A protocol (internal/core for Cx, internal/baseline for SE/2PC/CE) embeds
// Base and registers a message handler. The inbox loop spawns a Proc per
// message so a handler blocked on the disk or on a peer never stalls the
// server; the simulation runtime serializes all state access between
// blocking points, which mirrors a coarse-grained-locked multithreaded
// server.
package node

import (
	"encoding/binary"
	"fmt"
	"time"

	"cxfs/internal/disk"
	"cxfs/internal/kvstore"
	"cxfs/internal/namespace"
	"cxfs/internal/simrt"
	"cxfs/internal/transport"
	"cxfs/internal/types"
	"cxfs/internal/wal"
	"cxfs/internal/wire"
)

// HardwareParams sizes one server's simulated hardware.
type HardwareParams struct {
	Disk disk.Params
	// LogBase/JournalBase/DBBase are the disk offsets of the operation
	// log, the database's transaction journal, and the database page
	// regions; spreading them apart models the separate on-disk layout
	// (and the seeks between them).
	LogBase     int64
	JournalBase int64
	DBBase      int64
	// LogMaxBytes is the operation-log upper limit (paper default 1MB);
	// 0 = unlimited.
	LogMaxBytes int64
	// CPUPerSubOp is the compute charge for executing one sub-operation.
	CPUPerSubOp time.Duration
	// CPUPerMsg is the receive-side processing charge per message.
	CPUPerMsg time.Duration
}

// DefaultHardware mirrors the paper's testbed servers.
func DefaultHardware() HardwareParams {
	return HardwareParams{
		Disk:        disk.DefaultParams(),
		LogBase:     0,
		JournalBase: 32 << 20, // BDB txn journal between log and pages
		DBBase:      64 << 20, // DB page region
		LogMaxBytes: 1 << 20,  // 1MB log, the paper's default
		CPUPerSubOp: 15 * time.Microsecond,
		CPUPerMsg:   3 * time.Microsecond,
	}
}

// Handler processes one inbound message in its own Proc.
type Handler func(p *simrt.Proc, m wire.Msg)

// Stats aggregates chassis-level activity.
type Stats struct {
	MsgsHandled uint64
	SubOpsRun   uint64
}

// Base is the protocol-independent part of a metadata server.
type Base struct {
	ID  types.NodeID
	Sim *simrt.Sim
	Net *transport.Net

	Disk  *disk.Disk
	WAL   *wal.WAL
	KV    *kvstore.Store
	Shard *namespace.Shard

	HW            HardwareParams
	inbox         *simrt.Chan[wire.Msg]
	handler       Handler
	crashed       bool
	boot          uint64 // incarnation number, bumped at every Reboot
	needsRecovery bool
	crashFn       CrashPointFn

	stats Stats
}

// CrashPointFn decides whether the server should crash at a named protocol
// step. It is consulted on every CrashPoint call with the point's name and
// the operation being processed; returning true crashes the server at
// exactly that step. Tests install one with SetCrashPoint to reproduce
// partial-failure states deterministically.
type CrashPointFn func(point string, op types.OpID) bool

// SetCrashPoint installs (or, with nil, removes) the crash-point hook.
func (b *Base) SetCrashPoint(fn CrashPointFn) { b.crashFn = fn }

// CrashPoint gives the installed hook a chance to crash the server at the
// named protocol step, then reports whether the server is (now) crashed.
// Protocol code calls it at each phase boundary:
//
//	if s.CrashPoint("exec:after-append", op) {
//	    return // crashed mid-protocol; recovery takes over after reboot
//	}
//
// With no hook installed it reduces to the plain Crashed() check, so the
// call sites double as the "silence in-flight handlers after a concurrent
// whole-node crash" guards.
func (b *Base) CrashPoint(point string, op types.OpID) bool {
	if b.crashFn != nil && !b.crashed && b.crashFn(point, op) {
		b.Crash()
	}
	return b.crashed
}

// NewBase builds a server's hardware and registers its inbox.
func NewBase(s *simrt.Sim, net *transport.Net, id types.NodeID, hw HardwareParams) *Base {
	d := disk.New(s, fmt.Sprintf("srv%d", id), hw.Disk)
	kv := kvstore.NewWithJournal(s, d, hw.DBBase, hw.JournalBase)
	b := &Base{
		ID: id, Sim: s, Net: net,
		Disk:  d,
		WAL:   wal.New(s, d, hw.LogBase, hw.LogMaxBytes),
		KV:    kv,
		Shard: namespace.NewShard(kv),
		HW:    hw,
		inbox: net.Register(id),
	}
	return b
}

// Stats returns chassis counters.
func (b *Base) Stats() Stats { return b.stats }

// Start begins the inbox loop with the given handler. Call once.
func (b *Base) Start(h Handler) {
	b.handler = h
	b.Sim.Spawn(fmt.Sprintf("server%d/loop", b.ID), b.loop)
}

func (b *Base) loop(p *simrt.Proc) {
	for {
		m, ok := b.inbox.RecvOK(p)
		if !ok {
			return
		}
		if b.crashed {
			continue // dead servers drop traffic that raced past the NIC
		}
		if b.HW.CPUPerMsg > 0 {
			p.Sleep(b.HW.CPUPerMsg)
		}
		b.stats.MsgsHandled++
		if m.Type == wire.MsgPing {
			// Liveness is answered by the chassis so the failure detector
			// works identically under every protocol.
			b.Send(wire.Msg{Type: wire.MsgPong, To: m.From, Op: m.Op})
			continue
		}
		msg := m
		b.Sim.Spawn(fmt.Sprintf("server%d/%v", b.ID, m.Type), func(hp *simrt.Proc) {
			if b.crashed {
				return
			}
			b.handler(hp, msg)
		})
	}
}

// Send transmits m with From filled in; crashed servers send nothing.
func (b *Base) Send(m wire.Msg) {
	if b.crashed {
		return
	}
	m.From = b.ID
	b.Net.Send(m)
}

// NowNanos returns the virtual clock as the uint64 the namespace timestamps
// use.
func (b *Base) NowNanos() uint64 { return uint64(b.Sim.Now()) }

// ExecCPU charges the sub-op execution cost.
func (b *Base) ExecCPU(p *simrt.Proc) {
	b.stats.SubOpsRun++
	if b.HW.CPUPerSubOp > 0 {
		p.Sleep(b.HW.CPUPerSubOp)
	}
}

// Crashed reports whether the server is down.
func (b *Base) Crashed() bool { return b.crashed }

// Crash takes the server down: the network drops its traffic, in-flight
// handlers are silenced (they can no longer send or persist), and the
// volatile database image is discarded. Durable state — the log index and
// the database's durable image — survives for Reboot.
func (b *Base) Crash() {
	b.crashed = true
	b.needsRecovery = true
	b.Net.SetDown(b.ID, true)
	b.KV.Crash()
	b.WAL.Crash()
}

// NeedsRecovery reports whether the server crashed and has not yet
// completed protocol recovery; protocol layers drop traffic while it is
// set (§V: the rebooted node serves no requests until recovery finishes —
// peers retry).
func (b *Base) NeedsRecovery() bool { return b.needsRecovery }

// RecoveryDone clears the recovery latch; called by the protocol layer at
// the end of its recovery procedure.
func (b *Base) RecoveryDone() { b.needsRecovery = false }

// Reboot brings the hardware back: the volatile database image is reloaded
// from the durable one and the network forwards traffic again. Protocol
// recovery (log scan, commitment resumption) is the embedding server's job;
// until it completes, NeedsRecovery stays set.
func (b *Base) Reboot() {
	b.boot++
	b.KV.Recover()
	b.WAL.Reboot()
	b.crashed = false
	b.Net.SetDown(b.ID, false)
}

// Boot returns the server's incarnation number.
func (b *Base) Boot() uint64 { return b.boot }

// Gone reports whether the server has crashed, or has rebooted into a new
// incarnation since boot was captured. A crash does not kill in-flight
// protocol procs — ones parked on timers or reply channels wake after the
// reboot, when Crashed() is false again — so any proc that can sleep across
// a crash must check Gone(boot) instead of Crashed(): acting on (or
// registering reply routes over) state from a previous incarnation corrupts
// the rebuilt one.
func (b *Base) Gone(boot uint64) bool { return b.crashed || b.boot != boot }

// ServeReaddir answers a readdir request against this server's namespace
// partition: directories are striped by entry hash, so each server returns
// its slice and the client unions them. Readdir is weakly consistent by
// design (it reflects the volatile image, including this server's
// uncommitted executions), matching OrangeFS semantics; the paper's
// conflict machinery covers only per-object accesses.
func (b *Base) ServeReaddir(m wire.Msg) {
	entries := b.Shard.ListDir(m.FullOp.Parent)
	rows := make([]wire.Row, 0, len(entries))
	for _, e := range entries {
		var v [8]byte
		binary.LittleEndian.PutUint64(v[:], uint64(e.Ino))
		rows = append(rows, wire.Row{Key: e.Name, Val: v[:]})
	}
	b.Send(wire.Msg{Type: wire.MsgOpResp, To: m.From, Op: m.Op, OK: true, Rows: rows})
}

// Host is a client machine: it owns the inbox for its node ID and routes
// each inbound message to the process waiting on that operation. One Host
// carries many application processes (the paper runs 8 per client).
type Host struct {
	ID  types.NodeID
	Sim *simrt.Sim
	Net *transport.Net

	inbox  *simrt.Chan[wire.Msg]
	routes map[types.OpID]*simrt.Chan[wire.Msg]
	notify func(wire.Msg) bool
}

// NewHost builds a client host and starts its dispatcher.
func NewHost(s *simrt.Sim, net *transport.Net, id types.NodeID) *Host {
	h := &Host{ID: id, Sim: s, Net: net, inbox: net.Register(id), routes: make(map[types.OpID]*simrt.Chan[wire.Msg])}
	s.Spawn(fmt.Sprintf("host%d/dispatch", id), h.dispatch)
	return h
}

func (h *Host) dispatch(p *simrt.Proc) {
	for {
		m, ok := h.inbox.RecvOK(p)
		if !ok {
			return
		}
		if h.notify != nil && h.notify(m) {
			continue
		}
		if ch, ok := h.routes[m.Op]; ok {
			ch.Send(m)
		}
		// Responses for unrouted ops are stale (the op already completed,
		// e.g. a superseded pre-invalidation reply) and are dropped.
	}
}

// SetNotify installs an out-of-band inbound-message hook, consulted before
// the per-op routes. Returning true consumes the message. Unsolicited
// server-to-client traffic — lease revocations piggybacked on C-NOTIFY —
// arrives with no open route and would otherwise be dropped; it must also
// never leak into an op's reply channel when its ID collides with an open
// route.
func (h *Host) SetNotify(fn func(wire.Msg) bool) { h.notify = fn }

// Open registers a response route for op and returns the channel its
// messages arrive on. Close it with Done when the op completes.
func (h *Host) Open(op types.OpID) *simrt.Chan[wire.Msg] {
	ch := simrt.NewChan[wire.Msg](h.Sim)
	h.routes[op] = ch
	return ch
}

// Done removes the route for op.
func (h *Host) Done(op types.OpID) {
	delete(h.routes, op)
}

// Send transmits m with From filled in.
func (h *Host) Send(m wire.Msg) {
	m.From = h.ID
	h.Net.Send(m)
}

// Protocol-behavior tests for Cx, exercising the scenarios of the paper's
// Figures 2 and 3 and the §V recovery protocol through a real simulated
// cluster (package core_test to use the cluster assembly without a cycle).
package core_test

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"cxfs/internal/cluster"
	"cxfs/internal/simrt"
	"cxfs/internal/types"
	"cxfs/internal/wire"
)

// build constructs a Cx cluster with the lazy timeout effectively disabled
// so tests control commitment timing.
func build(servers int, mutate func(*cluster.Options)) *cluster.Cluster {
	o := cluster.DefaultOptions(servers, cluster.ProtoCx)
	o.ClientHosts = 4
	o.ProcsPerHost = 2
	o.Cx.Timeout = time.Hour
	if mutate != nil {
		mutate(&o)
	}
	return cluster.MustNew(o)
}

// crossCreate issues a create guaranteed to be cross-server with a chosen
// coordinator!=participant, returning its ino.
func crossCreate(t *testing.T, p *simrt.Proc, c *cluster.Cluster, pr *cluster.Process, dir types.InodeID, prefix string) (types.InodeID, string) {
	t.Helper()
	for try := 0; try < 1000; try++ {
		name := fmt.Sprintf("%s-%d", prefix, try)
		ino := pr.AllocInode()
		if c.Placement.CoordinatorFor(dir, name) == c.Placement.ParticipantFor(ino) {
			continue
		}
		if _, err := pr.Do(p, types.Op{ID: pr.NextID(), Kind: types.OpCreate,
			Parent: dir, Name: name, Ino: ino, Type: types.FileRegular}); err != nil {
			t.Errorf("crossCreate: %v", err)
		}
		return ino, name
	}
	t.Fatal("no cross-server placement found")
	return 0, ""
}

// --- Figure 2: basic protocol without conflict ---------------------------

func TestGraciousExecutionLeavesPendingCommitment(t *testing.T) {
	// Fig 2a: both YES -> process done; commitment deferred.
	c := build(4, nil)
	defer c.Shutdown()
	c.Sim.Spawn("t", func(p *simrt.Proc) {
		pr := c.Proc(0)
		crossCreate(t, p, c, pr, types.RootInode, "g")
		pending := 0
		for _, srv := range c.CxSrv {
			pending += srv.PendingOps()
		}
		if pending != 1 {
			t.Errorf("pending=%d, want 1 (lazy commitment deferred)", pending)
		}
		c.Sim.Stop()
	})
	c.Sim.Run()
}

func TestDisagreementTriggersLComAndAllNo(t *testing.T) {
	// Fig 2b: one sub-op fails -> L-COM -> immediate commitment -> ALL-NO.
	// Build the disagreement by pre-placing a conflicting dentry directly
	// on the coordinator's shard, so the insert fails while the inode add
	// succeeds.
	c := build(4, nil)
	defer c.Shutdown()
	c.Sim.Spawn("t", func(p *simrt.Proc) {
		pr := c.Proc(0)
		var name string
		var ino types.InodeID
		for try := 0; ; try++ {
			name = fmt.Sprintf("dis-%d", try)
			ino = pr.AllocInode()
			coord := c.Placement.CoordinatorFor(types.RootInode, name)
			if coord != c.Placement.ParticipantFor(ino) {
				// Sabotage: dentry already present on the coordinator.
				c.Bases[coord].Shard.SeedDentry(types.RootInode, name, 99999)
				break
			}
		}
		_, err := pr.Do(p, types.Op{ID: pr.NextID(), Kind: types.OpCreate,
			Parent: types.RootInode, Name: name, Ino: ino, Type: types.FileRegular})
		if err == nil {
			t.Error("create should have failed")
		}
		if !errors.Is(err, types.ErrExists) && !errors.Is(err, types.ErrAborted) {
			t.Errorf("unexpected error: %v", err)
		}
		// The immediate commitment must have aborted the participant's
		// inode add: the inode must not exist anywhere.
		part := c.Placement.ParticipantFor(ino)
		if _, ok := c.Bases[part].Shard.GetInode(ino); ok {
			t.Error("participant's successful sub-op was not aborted (ALL-NO semantics violated)")
		}
		var aborted uint64
		for _, srv := range c.CxSrv {
			aborted += srv.Stats().OpsAborted
		}
		if aborted == 0 {
			t.Error("no abort recorded")
		}
		c.Sim.Stop()
	})
	c.Sim.Run()
}

func TestAllNoAgreementCompletesAsFailure(t *testing.T) {
	// Both sub-ops fail (remove of a nonexistent file): agreement on NO,
	// process completes immediately; the lazy commitment later aborts.
	c := build(4, nil)
	defer c.Shutdown()
	c.Sim.Spawn("t", func(p *simrt.Proc) {
		pr := c.Proc(0)
		err := pr.Remove(p, types.RootInode, "ghost-file", 123456789)
		if err == nil {
			t.Error("remove of nonexistent file succeeded")
		}
		c.Sim.Stop()
	})
	c.Sim.Run()
}

// --- Figure 3: conflicts --------------------------------------------------

// orderedConflictScenario: ProA creates a file; before its commitment, ProB
// links the same inode. ProB must block and then succeed with ProA's
// outcome visible.
func TestOrderedConflictWaitsForCommitment(t *testing.T) {
	c := build(4, nil)
	defer c.Shutdown()
	done := make(chan struct{}, 1)
	c.Sim.Spawn("t", func(p *simrt.Proc) {
		prA, prB := c.Proc(0), c.Proc(c.NumProcs()-1)
		ino, _ := crossCreate(t, p, c, prA, types.RootInode, "oc")
		start := p.Now()
		if err := prB.Link(p, types.RootInode, "oc-link", ino); err != nil {
			t.Errorf("link: %v", err)
		}
		if p.Now() == start {
			t.Error("link returned instantly; it must wait for A's immediate commitment")
		}
		part := c.Placement.ParticipantFor(ino)
		if in, ok := c.Bases[part].Shard.GetInode(ino); !ok || in.Nlink != 2 {
			t.Errorf("inode after link: %+v %v", in, ok)
		}
		done <- struct{}{}
		c.Sim.Stop()
	})
	c.Sim.RunUntil(time.Hour)
	select {
	case <-done:
	default:
		t.Fatal("scenario hung")
	}
}

func TestConflictHintCarriedInResponses(t *testing.T) {
	// The blocked op's responses carry the pending op as hint ([A] in
	// Fig 3). Observe at the wire level via a tapped host.
	c := build(4, nil)
	defer c.Shutdown()
	c.Sim.Spawn("t", func(p *simrt.Proc) {
		prA, prB := c.Proc(0), c.Proc(c.NumProcs()-1)
		ino, _ := crossCreate(t, p, c, prA, types.RootInode, "h")
		// B stats A's pending inode: blocked, then answered with hint=A.
		idB := prB.NextID()
		host := c.Hosts[len(c.Hosts)-1]
		route := host.Open(idB)
		defer host.Done(idB)
		host.Send(wire.Msg{Type: wire.MsgSubOpReq, To: c.Placement.ParticipantFor(ino),
			Op: idB, Sub: types.SingleSubOp(types.Op{ID: idB, Kind: types.OpStat, Ino: ino}),
			ReplyProc: idB.Proc})
		m := route.Recv(p)
		if m.Hint.IsNil() {
			t.Error("blocked read's response carries [null] hint; want the pending op")
		}
		if m.Hint.Proc != prA.ID {
			t.Errorf("hint names %v, want an op of %v", m.Hint, prA.ID)
		}
		c.Sim.Stop()
	})
	c.Sim.RunUntil(time.Hour)
	if !c.Sim.Stopped() {
		t.Fatal("scenario hung")
	}
}

func TestConcurrentContendersOnOneObjectSerialize(t *testing.T) {
	// Several processes link/unlink the same inode concurrently; every op
	// must complete, and the final nlink must be consistent.
	c := build(4, nil)
	defer c.Shutdown()
	var ino types.InodeID
	g := simrt.NewGroup(c.Sim)
	const workers = 4
	g.Add(workers)
	gate := simrt.NewChan[struct{}](c.Sim)
	c.Sim.Spawn("setup", func(p *simrt.Proc) {
		pr := c.Proc(0)
		ino, _ = crossCreate(t, p, c, pr, types.RootInode, "ser")
		for i := 0; i < workers; i++ {
			gate.Send(struct{}{})
		}
	})
	for w := 0; w < workers; w++ {
		w := w
		pr := c.Proc(w*2 + 1) // distinct processes
		c.Sim.Spawn("linker", func(p *simrt.Proc) {
			gate.Recv(p)
			name := fmt.Sprintf("ln-%d", w)
			if err := pr.Link(p, types.RootInode, name, ino); err != nil {
				t.Errorf("link %d: %v", w, err)
			}
			if err := pr.Unlink(p, types.RootInode, name, ino); err != nil {
				t.Errorf("unlink %d: %v", w, err)
			}
			g.Done()
		})
	}
	c.Sim.Spawn("ctl", func(p *simrt.Proc) {
		g.Wait(p)
		c.Quiesce(p)
		part := c.Placement.ParticipantFor(ino)
		if in, ok := c.Bases[part].Shard.GetInode(ino); !ok || in.Nlink != 1 {
			t.Errorf("final inode: %+v ok=%v, want nlink=1", in, ok)
		}
		c.Sim.Stop()
	})
	c.Sim.RunUntil(time.Hour)
	if !c.Sim.Stopped() {
		t.Fatal("scenario hung")
	}
	if bad := c.CheckInvariants(); len(bad) != 0 {
		t.Errorf("invariants: %v", bad)
	}
}

// --- Client failure -------------------------------------------------------

func TestClientCrashBeforeLComStillConverges(t *testing.T) {
	// SE's known flaw: a client that dies before sending CLEAR leaves
	// orphans. Cx converges anyway: the lazy trigger commits (aborting the
	// disagreement) without any client involvement.
	o := func(opt *cluster.Options) { opt.Cx.Timeout = 300 * time.Millisecond }
	c := build(4, o)
	defer c.Shutdown()
	c.Sim.Spawn("t", func(p *simrt.Proc) {
		pr := c.Proc(0)
		// Sabotage a disagreement, then "crash" the client by sending the
		// sub-ops raw and never following up with L-COM.
		var name string
		var ino types.InodeID
		var coord, part types.NodeID
		for try := 0; ; try++ {
			name = fmt.Sprintf("dead-%d", try)
			ino = pr.AllocInode()
			coord = c.Placement.CoordinatorFor(types.RootInode, name)
			part = c.Placement.ParticipantFor(ino)
			if coord != part {
				c.Bases[coord].Shard.SeedDentry(types.RootInode, name, 99999)
				break
			}
		}
		id := pr.NextID()
		op := types.Op{ID: id, Kind: types.OpCreate, Parent: types.RootInode,
			Name: name, Ino: ino, Type: types.FileRegular}
		cSub, pSub := types.Split(op)
		host := c.Hosts[0]
		host.Send(wire.Msg{Type: wire.MsgSubOpReq, To: coord, Op: id, Sub: cSub, Peer: part, ReplyProc: id.Proc})
		host.Send(wire.Msg{Type: wire.MsgSubOpReq, To: part, Op: id, Sub: pSub, Peer: coord, ReplyProc: id.Proc})
		// Client dies here: no response collection, no L-COM.
		p.Sleep(2 * time.Second) // several lazy trigger periods
		if _, ok := c.Bases[part].Shard.GetInode(ino); ok {
			t.Error("orphan inode survived: lazy commitment did not abort the half-executed op")
		}
		pending := 0
		for _, srv := range c.CxSrv {
			pending += srv.PendingOps()
		}
		if pending != 0 {
			t.Errorf("%d ops still pending after lazy trigger", pending)
		}
		c.Sim.Stop()
	})
	c.Sim.RunUntil(time.Hour)
	if !c.Sim.Stopped() {
		t.Fatal("scenario hung")
	}
}

// --- Recovery (§V) ----------------------------------------------------------

func TestRecoveryResumesPendingCommitments(t *testing.T) {
	c := build(4, func(o *cluster.Options) { o.Hardware.LogMaxBytes = 0 })
	defer c.Shutdown()
	c.Sim.Spawn("t", func(p *simrt.Proc) {
		pr := c.Proc(0)
		type created struct {
			ino  types.InodeID
			name string
		}
		var files []created
		for i := 0; i < 10; i++ {
			ino, name := crossCreate(t, p, c, pr, types.RootInode, fmt.Sprintf("rc%d", i))
			files = append(files, created{ino, name})
		}
		p.Sleep(50 * time.Millisecond)
		// Crash the server with the most pending coordinator ops.
		victim := 0
		for i, srv := range c.CxSrv {
			if srv.PendingOps() > c.CxSrv[victim].PendingOps() {
				victim = i
			}
		}
		if c.CxSrv[victim].PendingOps() == 0 {
			t.Fatal("no pending ops to recover")
		}
		c.Bases[victim].Crash()
		p.Sleep(20 * time.Millisecond)
		c.Bases[victim].Reboot()
		d := c.CxSrv[victim].Recover(p)
		if d <= 0 {
			t.Error("recovery took no time")
		}
		if c.CxSrv[victim].PendingOps() != 0 {
			t.Errorf("%d ops still pending after recovery", c.CxSrv[victim].PendingOps())
		}
		// Every created file must still resolve.
		for _, f := range files {
			if got, err := pr.Lookup(p, types.RootInode, f.name); err != nil || got.Ino != f.ino {
				t.Errorf("lookup %s after recovery: ino=%d err=%v", f.name, got.Ino, err)
			}
		}
		c.Quiesce(p)
		c.Sim.Stop()
	})
	c.Sim.RunUntil(time.Hour)
	if !c.Sim.Stopped() {
		t.Fatal("recovery hung")
	}
	if bad := c.CheckInvariants(); len(bad) != 0 {
		t.Errorf("invariants: %v", bad)
	}
}

func TestRecoveryAfterCrashMidCommitment(t *testing.T) {
	// Crash the coordinator immediately after kicking commitments so some
	// operations die between VOTE and Complete; recovery must finish them
	// exactly once.
	c := build(4, func(o *cluster.Options) { o.Hardware.LogMaxBytes = 0 })
	defer c.Shutdown()
	c.Sim.Spawn("t", func(p *simrt.Proc) {
		pr := c.Proc(0)
		var names []string
		var inos []types.InodeID
		for i := 0; i < 8; i++ {
			ino, name := crossCreate(t, p, c, pr, types.RootInode, fmt.Sprintf("mid%d", i))
			names = append(names, name)
			inos = append(inos, ino)
		}
		victim := -1
		for i, srv := range c.CxSrv {
			if srv.PendingOps() > 0 {
				victim = i
				break
			}
		}
		if victim < 0 {
			t.Fatal("nothing pending")
		}
		c.CxSrv[victim].KickCommit()
		// Crash mid-flight: after the VOTE goes out, before completion.
		p.Sleep(100 * time.Microsecond)
		c.Bases[victim].Crash()
		p.Sleep(20 * time.Millisecond)
		c.Bases[victim].Reboot()
		c.CxSrv[victim].Recover(p)
		c.Quiesce(p)
		for i, name := range names {
			if got, err := pr.Lookup(p, types.RootInode, name); err != nil || got.Ino != inos[i] {
				t.Errorf("lookup %s: ino=%d err=%v", name, got.Ino, err)
			}
		}
		c.Sim.Stop()
	})
	c.Sim.RunUntil(time.Hour)
	if !c.Sim.Stopped() {
		t.Fatal("hung")
	}
	if bad := c.CheckInvariants(); len(bad) != 0 {
		t.Errorf("invariants: %v", bad)
	}
}

func TestParticipantCrashDuringCommitmentRetries(t *testing.T) {
	// Crash a PARTICIPANT while the coordinator commits; the coordinator
	// must retry until the participant reboots and answers.
	c := build(4, func(o *cluster.Options) {
		o.Hardware.LogMaxBytes = 0
		o.Cx.RetryInterval = 100 * time.Millisecond
		o.Cx.VoteWait = 100 * time.Millisecond
	})
	defer c.Shutdown()
	c.Sim.Spawn("t", func(p *simrt.Proc) {
		pr := c.Proc(0)
		ino, name := crossCreate(t, p, c, pr, types.RootInode, "pc")
		part := c.Placement.ParticipantFor(ino)
		coord := c.Placement.CoordinatorFor(types.RootInode, name)
		c.Bases[part].Crash()
		// Kick the coordinator's commitment while the participant is down.
		c.CxSrv[coord].KickCommit()
		p.Sleep(300 * time.Millisecond)
		c.Bases[part].Reboot()
		c.CxSrv[part].Recover(p)
		c.Quiesce(p)
		if got, err := pr.Lookup(p, types.RootInode, name); err != nil || got.Ino != ino {
			t.Errorf("lookup after participant crash: %v %v", got.Ino, err)
		}
		c.Sim.Stop()
	})
	c.Sim.RunUntil(time.Hour)
	if !c.Sim.Stopped() {
		t.Fatal("hung — coordinator retry or participant recovery stuck")
	}
}

// --- Log-full behavior ------------------------------------------------------

func TestLogFullForcesCommitmentAndUnblocks(t *testing.T) {
	c := build(4, func(o *cluster.Options) {
		o.Hardware.LogMaxBytes = 2 << 10 // tiny: a handful of records
	})
	defer c.Shutdown()
	c.Sim.Spawn("t", func(p *simrt.Proc) {
		pr := c.Proc(0)
		for i := 0; i < 40; i++ {
			if _, err := pr.Create(p, types.RootInode, fmt.Sprintf("lf-%d", i)); err != nil {
				t.Errorf("create %d: %v", i, err)
			}
		}
		var stalls, imm uint64
		for _, b := range c.Bases {
			stalls += b.WAL.Stats().FullStalls
		}
		for _, srv := range c.CxSrv {
			imm += srv.Stats().ImmediateCommits
		}
		if stalls == 0 {
			t.Error("2KB log never filled across 40 creates")
		}
		if imm == 0 {
			t.Error("log-full handler never launched a commitment")
		}
		c.Sim.Stop()
	})
	c.Sim.RunUntil(time.Hour)
	if !c.Sim.Stopped() {
		t.Fatal("log-full path deadlocked")
	}
}

// --- Late sub-op of an aborted op -----------------------------------------

func TestTombstoneRejectsLateSubOp(t *testing.T) {
	c := build(4, nil)
	defer c.Shutdown()
	c.Sim.Spawn("t", func(p *simrt.Proc) {
		pr := c.Proc(0)
		// Abort an op via disagreement, then replay its participant sub-op
		// manually (simulating an extreme network delay).
		var name string
		var ino types.InodeID
		var coord, part types.NodeID
		for try := 0; ; try++ {
			name = fmt.Sprintf("late-%d", try)
			ino = pr.AllocInode()
			coord = c.Placement.CoordinatorFor(types.RootInode, name)
			part = c.Placement.ParticipantFor(ino)
			if coord != part {
				c.Bases[coord].Shard.SeedDentry(types.RootInode, name, 99999)
				break
			}
		}
		id := pr.NextID()
		op := types.Op{ID: id, Kind: types.OpCreate, Parent: types.RootInode, Name: name, Ino: ino, Type: types.FileRegular}
		if _, err := pr.Do(p, op); err == nil {
			t.Error("sabotaged create succeeded")
		}
		// Replay the participant's sub-op after the abort.
		_, pSub := types.Split(op)
		host := c.Hosts[0]
		route := host.Open(id)
		defer host.Done(id)
		host.Send(wire.Msg{Type: wire.MsgSubOpReq, To: part, Op: id, Sub: pSub, Peer: coord, ReplyProc: id.Proc})
		m := route.Recv(p)
		if m.OK {
			t.Error("late sub-op of an aborted op executed")
		}
		if _, ok := c.Bases[part].Shard.GetInode(ino); ok {
			t.Error("aborted op's inode exists after late replay")
		}
		c.Sim.Stop()
	})
	c.Sim.RunUntil(time.Hour)
	if !c.Sim.Stopped() {
		t.Fatal("hung")
	}
}

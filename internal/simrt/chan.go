package simrt

import "time"

// waiter is one Proc parked on a Chan receive.
type waiter[T any] struct {
	proc      *Proc
	val       T
	delivered bool
	timedOut  bool
}

// Chan is an unbounded FIFO message queue inside a simulation. Send never
// blocks; Recv parks the calling Proc until a value arrives. It is the
// building block for server mailboxes, RPC reply futures, and disk queues.
//
// Chans must only be touched from inside the simulation (Proc bodies or
// scheduled event functions); the scheduler serializes all access, so no
// locking is needed or provided.
type Chan[T any] struct {
	sim *Sim
	// buf[head:] holds the queued values. Consuming advances head instead of
	// re-slicing, so the backing array's capacity is reused across
	// drain/refill cycles — a server mailbox processes millions of messages
	// through one allocation instead of reallocating per burst.
	buf     []T
	head    int
	waiters []*waiter[T]
	whead   int
	closed  bool
}

// NewChan creates a Chan bound to s.
func NewChan[T any](s *Sim) *Chan[T] {
	return &Chan[T]{sim: s}
}

// Len returns the number of buffered values.
func (c *Chan[T]) Len() int { return len(c.buf) - c.head }

// popBuf removes and returns the oldest buffered value, reclaiming the
// backing array when the queue drains (the common mailbox rhythm) or when
// the dead prefix dominates a long-lived queue.
func (c *Chan[T]) popBuf() T {
	v := c.buf[c.head]
	var zero T
	c.buf[c.head] = zero // release for GC
	c.head++
	if c.head == len(c.buf) {
		c.buf = c.buf[:0]
		c.head = 0
	} else if c.head > 1024 && c.head*2 >= len(c.buf) {
		n := copy(c.buf, c.buf[c.head:])
		c.buf = c.buf[:n]
		c.head = 0
	}
	return v
}

// Send enqueues v, waking the oldest parked receiver if any. The woken
// receiver resumes at the current virtual time, after the sender's event
// completes.
func (c *Chan[T]) Send(v T) {
	if c.closed {
		panic("simrt: send on closed Chan")
	}
	for c.whead < len(c.waiters) {
		w := c.waiters[c.whead]
		c.waiters[c.whead] = nil
		c.whead++
		if c.whead == len(c.waiters) {
			c.waiters = c.waiters[:0]
			c.whead = 0
		}
		if w.timedOut {
			continue
		}
		w.val = v
		w.delivered = true
		s := c.sim
		s.schedule(s.now, func() { s.resume(w.proc, wakeMsg{}) })
		return
	}
	c.buf = append(c.buf, v)
}

// Close marks the channel closed; parked and future receivers return the
// zero value with ok=false from RecvOK. Recv panics on a closed empty Chan.
func (c *Chan[T]) Close() {
	if c.closed {
		return
	}
	c.closed = true
	s := c.sim
	for _, w := range c.waiters[c.whead:] {
		if w.timedOut {
			continue
		}
		w := w
		s.schedule(s.now, func() { s.resume(w.proc, wakeMsg{}) })
	}
	c.waiters, c.whead = nil, 0
}

// Recv returns the next value, parking p until one is available. It panics
// if the Chan is closed while empty; use RecvOK when closure is expected.
func (c *Chan[T]) Recv(p *Proc) T {
	v, ok := c.RecvOK(p)
	if !ok {
		panic("simrt: receive on closed Chan")
	}
	return v
}

// RecvOK returns the next value and true, or the zero value and false if the
// Chan is closed and drained.
func (c *Chan[T]) RecvOK(p *Proc) (T, bool) {
	if c.Len() > 0 {
		return c.popBuf(), true
	}
	if c.closed {
		var zero T
		return zero, false
	}
	w := &waiter[T]{proc: p}
	c.waiters = append(c.waiters, w)
	p.park()
	if !w.delivered {
		var zero T
		return zero, false // closed while parked
	}
	return w.val, true
}

// TryRecv returns the next value without blocking, or ok=false if none is
// buffered.
func (c *Chan[T]) TryRecv() (T, bool) {
	if c.Len() > 0 {
		return c.popBuf(), true
	}
	var zero T
	return zero, false
}

// RecvTimeout is Recv with a deadline: it returns ok=false if no value
// arrives within d of virtual time.
func (c *Chan[T]) RecvTimeout(p *Proc, d time.Duration) (T, bool) {
	if c.Len() > 0 {
		return c.popBuf(), true
	}
	if c.closed {
		var zero T
		return zero, false
	}
	w := &waiter[T]{proc: p}
	c.waiters = append(c.waiters, w)
	s := c.sim
	s.schedule(s.now+d, func() {
		if w.delivered || w.timedOut {
			return
		}
		w.timedOut = true
		s.resume(w.proc, wakeMsg{})
	})
	p.park()
	if w.timedOut {
		var zero T
		return zero, false
	}
	if !w.delivered {
		var zero T
		return zero, false // closed while parked
	}
	// Delivered before the timeout fired; the stale timeout event will see
	// delivered==true and do nothing.
	return w.val, true
}

// Group counts outstanding work, like sync.WaitGroup but for Procs. The
// harness uses it to wait for a fleet of client processes to drain.
type Group struct {
	sim     *Sim
	count   int
	waiters []*Proc
}

// NewGroup creates a Group bound to s.
func NewGroup(s *Sim) *Group { return &Group{sim: s} }

// Add increments the counter by n.
func (g *Group) Add(n int) { g.count += n }

// Count returns the current counter value.
func (g *Group) Count() int { return g.count }

// Done decrements the counter, waking all waiters when it reaches zero.
func (g *Group) Done() {
	g.count--
	if g.count < 0 {
		panic("simrt: Group counter went negative")
	}
	if g.count == 0 {
		s := g.sim
		ws := g.waiters
		g.waiters = nil
		for _, p := range ws {
			p := p
			s.schedule(s.now, func() { s.resume(p, wakeMsg{}) })
		}
	}
}

// Wait parks p until the counter reaches zero. Returns immediately if it is
// already zero.
func (g *Group) Wait(p *Proc) {
	if g.count == 0 {
		return
	}
	g.waiters = append(g.waiters, p)
	p.park()
}

// Mutex is a simulated mutual-exclusion lock. Because the scheduler runs one
// Proc at a time, a Mutex is only needed to protect invariants across
// *blocking* calls (a critical section containing a Sleep, Recv, or disk
// write). Lock parks the Proc if the mutex is held.
type Mutex struct {
	sim     *Sim
	held    bool
	waiters []*Proc
}

// NewMutex creates a Mutex bound to s.
func NewMutex(s *Sim) *Mutex { return &Mutex{sim: s} }

// Lock acquires the mutex, parking p until it is free.
func (m *Mutex) Lock(p *Proc) {
	if !m.held {
		m.held = true
		return
	}
	m.waiters = append(m.waiters, p)
	p.park()
	// Ownership was transferred by Unlock before we were woken.
}

// TryLock acquires the mutex if free.
func (m *Mutex) TryLock() bool {
	if m.held {
		return false
	}
	m.held = true
	return true
}

// Unlock releases the mutex, handing it to the oldest waiter if any.
func (m *Mutex) Unlock() {
	if !m.held {
		panic("simrt: Unlock of unlocked Mutex")
	}
	if len(m.waiters) == 0 {
		m.held = false
		return
	}
	p := m.waiters[0]
	m.waiters = m.waiters[1:]
	s := m.sim
	s.schedule(s.now, func() { s.resume(p, wakeMsg{}) })
}

package chaos

import (
	"flag"
	"testing"
	"time"
)

var seedFlag = flag.Int64("chaos.seed", 0, "run the chaos smoke matrix starting at this extra seed")

// TestChaosSeedMatrix runs the full harness across a set of fixed seeds:
// every run must drain, recover, and verify clean. A failure prints the
// complete report (seed + schedule), which replays the run exactly.
func TestChaosSeedMatrix(t *testing.T) {
	seeds := []int64{1, 2, 3, 5, 8, 13, 21, 34}
	if *seedFlag != 0 {
		seeds = append(seeds, *seedFlag)
	}
	for _, seed := range seeds {
		rep := Run(Config{Seed: seed})
		if !rep.Consistent() {
			t.Errorf("seed %d inconsistent:\n%s", seed, rep)
		}
		if rep.Ops == 0 {
			t.Errorf("seed %d: workload issued no operations", seed)
		}
	}
}

// TestChaosDeterministic runs the same seed twice and demands bit-identical
// reports — the property that makes a printed seed a complete repro.
func TestChaosDeterministic(t *testing.T) {
	a := Run(Config{Seed: 42})
	b := Run(Config{Seed: 42})
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("same seed diverged:\n--- run 1 ---\n%s--- run 2 ---\n%s", a, b)
	}
	if a.String() != b.String() {
		t.Fatal("fingerprints matched but reports differ (hash collision?)")
	}
}

// TestChaosInjectsRealFaults guards against the harness silently degrading
// into a fault-free run: across the matrix seeds, every fault class must
// fire somewhere.
func TestChaosInjectsRealFaults(t *testing.T) {
	var crashes, points, parts, windows, dropped int
	for _, seed := range []int64{1, 2, 3, 5, 8} {
		rep := Run(Config{Seed: seed, Duration: 2 * time.Second})
		crashes += rep.Crashes
		points += rep.CrashPointsFired
		parts += rep.Partitions
		windows += rep.FaultWindows
		dropped += int(rep.Net.DroppedFault + rep.Net.DroppedPartition)
	}
	if crashes == 0 {
		t.Error("no direct crashes fired across the seed matrix")
	}
	if points == 0 {
		t.Error("no crash-points fired across the seed matrix")
	}
	if parts == 0 {
		t.Error("no partitions fired across the seed matrix")
	}
	if windows == 0 {
		t.Error("no lossy-link windows fired across the seed matrix")
	}
	if dropped == 0 {
		t.Error("no messages were dropped by faults across the seed matrix")
	}
}

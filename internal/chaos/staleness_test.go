package chaos

import (
	"testing"
	"time"

	"cxfs/internal/model"
)

// cacheTTL is the lease TTL every staleness suite runs with: long enough
// that leases outlive most nemesis windows (so cached reads actually happen
// across failovers), short enough that TTL expiry also gets exercised.
const cacheTTL = 40 * time.Millisecond

// TestStalenessBoundMatrix replays the full 8-seed × pipeline on/off chaos
// matrix with the leased client cache enabled. Every cell must stay
// consistent under the classic oracle AND show zero staleness-bound
// violations: no cached read may return a value older than its lease grant.
func TestStalenessBoundMatrix(t *testing.T) {
	var cachedReads uint64
	for _, pipeline := range []int{0, 4} {
		for _, seed := range matrixSeeds {
			rep := Run(Config{Seed: seed, Pipeline: pipeline, CacheTTL: cacheTTL})
			if !rep.Consistent() {
				t.Errorf("pipeline=%d seed %d inconsistent with cache on:\n%s", pipeline, seed, rep)
				continue
			}
			if bad := model.Check(rep.History, rep.Final); len(bad) != 0 {
				t.Errorf("pipeline=%d seed %d: model oracle rejects the run:\n  %v", pipeline, seed, bad)
			}
			if bad := model.CheckStalenessBound(rep.History); len(bad) != 0 {
				t.Errorf("pipeline=%d seed %d: staleness bound violated:\n  %v\nreport:\n%s",
					pipeline, seed, bad, rep)
			}
			cachedReads += rep.CacheHits
			if rep.LeaseGrants == 0 {
				t.Errorf("pipeline=%d seed %d: cache on but no leases granted", pipeline, seed)
			}
		}
	}
	if cachedReads == 0 {
		t.Error("matrix completed without a single cached read; the suite is vacuous")
	}
}

// TestStatStormChaos runs the read-dominant stat-storm mix across the seed
// matrix while the nemesis preferentially kills the server holding the most
// leases mid-grant. Zero stale reads are allowed across the failovers, and
// revocations must actually fire (the mutating trickle hits leased names).
func TestStatStormChaos(t *testing.T) {
	var hits, revocations uint64
	for _, seed := range matrixSeeds {
		rep := Run(Config{Seed: seed, StatStorm: true, CacheTTL: cacheTTL})
		if !rep.Consistent() {
			t.Errorf("seed %d inconsistent under stat-storm:\n%s", seed, rep)
			continue
		}
		if bad := model.Check(rep.History, rep.Final); len(bad) != 0 {
			t.Errorf("seed %d: model oracle rejects the stat-storm run:\n  %v", seed, bad)
		}
		if bad := model.CheckStalenessBound(rep.History); len(bad) != 0 {
			t.Errorf("seed %d: stale read under stat-storm:\n  %v\nreport:\n%s", seed, bad, rep)
		}
		hits += rep.CacheHits
		revocations += rep.LeaseRevocations
	}
	if hits == 0 {
		t.Error("stat-storm produced no cache hits")
	}
	if revocations == 0 {
		t.Error("stat-storm produced no lease revocations; the mutating trickle never hit a leased name")
	}
}

// TestStatStormDeterminism locks in bit-deterministic replay of the
// stat-storm configuration: the same seed must reproduce the identical
// report fingerprint (covering the history hash, every cached-read stamp,
// and the lease counters), so a failing seed replays exactly.
func TestStatStormDeterminism(t *testing.T) {
	cfg := Config{Seed: 13, StatStorm: true, CacheTTL: cacheTTL}
	a := Run(cfg)
	b := Run(cfg)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("same stat-storm seed diverged:\n--- run 1 ---\n%s--- run 2 ---\n%s", a, b)
	}
	if a.CacheHits != b.CacheHits || a.LeaseGrants != b.LeaseGrants {
		t.Errorf("cache counters diverged: hits %d vs %d, grants %d vs %d",
			a.CacheHits, b.CacheHits, a.LeaseGrants, b.LeaseGrants)
	}
}

package harness

import (
	"fmt"
	"time"

	"cxfs/internal/cluster"
	"cxfs/internal/metarates"
	"cxfs/internal/obs"
	"cxfs/internal/stats"
)

// MetaratesGCRow is one configuration's Metarates measurement in the
// group-commit/pipelining comparison.
type MetaratesGCRow struct {
	Setting    string        `json:"setting"`
	Mix        string        `json:"mix"`
	Pipeline   int           `json:"pipeline"`
	Linger     time.Duration `json:"linger_ns"`
	Adaptive   bool          `json:"adaptive"`
	Ops        int           `json:"ops"`
	Throughput float64       `json:"ops_per_sec"`
	WALAppends uint64        `json:"wal_appends"`
	WALRecords uint64        `json:"wal_records"`
	Coalesce   float64       `json:"coalesce_ratio"`
	Errors     int           `json:"errors"`
}

// MetaratesGCOpts sizes the comparison. Zero fields take defaults.
type MetaratesGCOpts struct {
	OpsPerProc int           // per-process operations (default 40)
	Pipeline   int           // depth for the pipelined rows (default 8)
	Linger     time.Duration // group-commit linger (default 1ms)
	Adaptive   bool          // add an adaptive-lazy-period row
}

func (o MetaratesGCOpts) withDefaults() MetaratesGCOpts {
	if o.OpsPerProc <= 0 {
		o.OpsPerProc = 40
	}
	if o.Pipeline <= 0 {
		o.Pipeline = 8
	}
	if o.Linger <= 0 {
		o.Linger = time.Millisecond
	}
	return o
}

// MetaratesGroupCommit runs the Metarates update-dominated mix on Cx across
// the commitment/dispatch configurations this repo adds over the paper:
// eager commitment (threshold 1), the paper's lazy commitment, lazy with
// cross-proc WAL group commit, and group commit plus pipelined client
// dispatch. The geometry is fixed at 4 servers with 8 concurrent client
// processes per server, so every row faces identical load; ops/s,
// WAL-issued disk requests, and the coalesce ratio expose where each
// mechanism earns its keep.
func MetaratesGroupCommit(cfg Config, o MetaratesGCOpts) ([]MetaratesGCRow, *stats.Table) {
	o = o.withDefaults()

	type variant struct {
		name     string
		linger   time.Duration
		pipeline int
		eager    bool
		adaptive bool
	}
	variants := []variant{
		{name: "eager", eager: true},
		{name: "lazy"},
		{name: "lazy+group-commit", linger: o.Linger},
		{name: "lazy+group-commit+pipeline", linger: o.Linger, pipeline: o.Pipeline},
	}
	if o.Adaptive {
		variants = append(variants, variant{name: "lazy+gc+pipe+adaptive",
			linger: o.Linger, pipeline: o.Pipeline, adaptive: true})
	}

	var rows []MetaratesGCRow
	tbl := stats.NewTable("Metarates: group commit and pipelined dispatch (update-dominated, 4 servers)",
		"Setting", "ops/s", "WAL appends", "WAL records", "Coalesce", "Errors")
	for _, v := range variants {
		obsv := obs.New(obs.Options{})
		co := cluster.DefaultOptions(4, cluster.ProtoCx)
		co.ClientHosts = 16
		co.ProcsPerHost = 2
		co.Seed = cfg.Seed
		co.Obs = obsv
		co.GroupLinger = v.linger
		if v.eager {
			co.Cx.Threshold = 1
		}
		co.Cx.AdaptiveLazy = v.adaptive
		c := cluster.MustNew(co)
		res := metarates.Run(c, metarates.Config{
			Mix: metarates.UpdateDominated, OpsPerProc: o.OpsPerProc, Pipeline: v.pipeline})
		var appends, records uint64
		for _, b := range c.Bases {
			ws := b.WAL.Stats()
			appends += ws.Appends
			records += ws.Records
		}
		coalesce := obsv.FlushStats().CoalesceRatio()
		c.Shutdown()

		row := MetaratesGCRow{
			Setting: v.name, Mix: metarates.UpdateDominated.Name,
			Pipeline: v.pipeline, Linger: v.linger, Adaptive: v.adaptive,
			Ops: res.Ops, Throughput: res.Throughput,
			WALAppends: appends, WALRecords: records,
			Coalesce: coalesce, Errors: res.Errors,
		}
		rows = append(rows, row)
		tbl.Add(v.name, fmt.Sprintf("%.0f", row.Throughput), row.WALAppends,
			row.WALRecords, fmt.Sprintf("%.2f", row.Coalesce), row.Errors)
	}
	return rows, tbl
}

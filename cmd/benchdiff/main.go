// Command benchdiff compares a candidate replay-bench artifact (a fresh
// `cxbench -exp replay -json` run) against the committed BENCH_*.json
// baseline, enforcing the perf-trajectory gates:
//
//   - allocs/op is machine-independent: a regression beyond the threshold
//     (default 20%) is a hard failure (exit 1);
//   - ops/s depends on the runner: a regression beyond its threshold
//     (default 10%) only annotates, unless -strict makes it fatal too.
//
// Output uses GitHub workflow commands (::error / ::warning) so regressions
// surface as PR annotations; run locally they are just greppable lines.
//
// Usage:
//
//	benchdiff -base BENCH_6.json -cand /tmp/candidate.json
//	benchdiff -base BENCH_6.json -cand /tmp/candidate.json -strict
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"cxfs/internal/harness"
)

func main() {
	var (
		basePath  = flag.String("base", "", "committed baseline BENCH_*.json")
		candPath  = flag.String("cand", "", "candidate artifact from this run")
		allocsTol = flag.Float64("allocs-tol", 0.20, "fractional allocs/op regression that fails the build")
		opsTol    = flag.Float64("ops-tol", 0.10, "fractional ops/s regression that annotates (or fails with -strict)")
		strict    = flag.Bool("strict", false, "treat an ops/s regression as fatal (same-machine comparisons only)")
	)
	flag.Parse()
	if *basePath == "" || *candPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -base and -cand are required")
		os.Exit(2)
	}
	base, err := load(*basePath)
	if err != nil {
		fatal(err)
	}
	cand, err := load(*candPath)
	if err != nil {
		fatal(err)
	}
	if base.Workload != cand.Workload || base.Scale != cand.Scale || base.Servers != cand.Servers {
		fatal(fmt.Errorf("artifacts are not comparable: base is %s@%g/%d servers, candidate is %s@%g/%d",
			base.Workload, base.Scale, base.Servers, cand.Workload, cand.Scale, cand.Servers))
	}

	fmt.Printf("benchdiff: %s@%g  allocs/op %.1f -> %.1f  ops/s %.0f -> %.0f\n",
		base.Workload, base.Scale,
		base.MeanAllocsPerOp, cand.MeanAllocsPerOp,
		base.MeanOpsPerSec, cand.MeanOpsPerSec)

	failed := false
	if d := frac(cand.MeanAllocsPerOp, base.MeanAllocsPerOp); d > *allocsTol {
		fmt.Printf("::error::allocs/op regressed %.1f%% (%.1f -> %.1f), tolerance %.0f%%\n",
			d*100, base.MeanAllocsPerOp, cand.MeanAllocsPerOp, *allocsTol*100)
		failed = true
	}
	// ops/s regresses when the candidate is SLOWER, i.e. the rate drops.
	if d := frac(base.MeanOpsPerSec, cand.MeanOpsPerSec); d > *opsTol {
		sev := "warning"
		if *strict {
			sev = "error"
			failed = true
		}
		fmt.Printf("::%s::ops/s regressed %.1f%% (%.0f -> %.0f), tolerance %.0f%% "+
			"(wall-clock is host-dependent; committed baseline is from the reference machine)\n",
			sev, d*100, base.MeanOpsPerSec, cand.MeanOpsPerSec, *opsTol*100)
	}
	if failed {
		os.Exit(1)
	}
	fmt.Println("benchdiff: within tolerance")
}

// frac returns how much worse `worse` is than `better` as a fraction of
// `better` (positive = regression), guarding the zero baseline.
func frac(worse, better float64) float64 {
	if better <= 0 {
		return 0
	}
	return (worse - better) / better
}

func load(path string) (harness.BenchResult, error) {
	var out harness.BenchResult
	b, err := os.ReadFile(path)
	if err != nil {
		return out, err
	}
	if err := json.Unmarshal(b, &out); err != nil {
		return out, fmt.Errorf("%s: %w", path, err)
	}
	if len(out.Seeds) == 0 {
		return out, fmt.Errorf("%s: no seed rows", path)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
	os.Exit(2)
}

package wal

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"

	"cxfs/internal/types"
)

// Log record wire format (little endian):
//
//	u16  total length (excluding this field)
//	u8   record type
//	u8   role
//	u8   flags (bit0 = OK, bit1 = has-peer)
//	i32  op client
//	i32  op proc index
//	u64  op seq
//	i32  peer node (when has-peer)
//	-- Result records only --
//	u8   sub action
//	u8   sub op kind
//	u64  parent inode
//	u64  target inode
//	u8   file type
//	u16  name length, then name bytes
//	u8   before-image count, then images (u16 key len, key, u32 val len+1, val)
//	u8   after-image count, then images
//	-- all records --
//	u32  FNV-1a checksum of everything after the length field
//
// The sizes matter twice: they are the disk-write sizes that the cost model
// charges, and they are the paper's "valid-records size" unit (Figure 7b,
// Table V).

const (
	headerSize   = 2 + 1 + 1 + 1 + 4 + 4 + 8
	resultFixed  = 1 + 1 + 8 + 8 + 1 + 2
	checksumSize = 4
)

// encodedSize returns the full on-disk size of rec.
func encodedSize(rec *Record) int64 {
	n := headerSize + checksumSize
	if rec.HasPeer {
		n += 4
	}
	if rec.Type == RecResult {
		n += resultFixed + len(rec.Sub.Name)
		n += 2 // image counts
		for _, img := range rec.Before {
			n += 2 + len(img.Key) + 4 + len(img.Val)
		}
		for _, img := range rec.After {
			n += 2 + len(img.Key) + 4 + len(img.Val)
		}
	}
	return int64(n)
}

// putImages appends an image list: count byte, then per image a u16 key
// length, the key, a u32 value length+1 (0 encodes the nil/absent image),
// and the value bytes.
func putImages(buf []byte, imgs []types.RowImage) []byte {
	buf = append(buf, byte(len(imgs)))
	for _, img := range imgs {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(img.Key)))
		buf = append(buf, img.Key...)
		if img.Val == nil {
			buf = binary.LittleEndian.AppendUint32(buf, 0)
			continue
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(img.Val))+1)
		buf = append(buf, img.Val...)
	}
	return buf
}

// takeImages parses an image list written by putImages.
func takeImages(buf []byte, pos int) ([]types.RowImage, int, error) {
	if pos >= len(buf) {
		return nil, pos, fmt.Errorf("wal: image count truncated")
	}
	n := int(buf[pos])
	pos++
	if n == 0 {
		return nil, pos, nil
	}
	imgs := make([]types.RowImage, 0, n)
	for i := 0; i < n; i++ {
		if pos+2 > len(buf) {
			return nil, pos, fmt.Errorf("wal: image key length truncated")
		}
		kl := int(binary.LittleEndian.Uint16(buf[pos:]))
		pos += 2
		if pos+kl+4 > len(buf) {
			return nil, pos, fmt.Errorf("wal: image key truncated")
		}
		key := string(buf[pos : pos+kl])
		pos += kl
		vl := int(binary.LittleEndian.Uint32(buf[pos:]))
		pos += 4
		var val []byte
		if vl > 0 {
			vl--
			if pos+vl > len(buf) {
				return nil, pos, fmt.Errorf("wal: image value truncated")
			}
			val = make([]byte, vl)
			copy(val, buf[pos:pos+vl])
			pos += vl
		}
		imgs = append(imgs, types.RowImage{Key: key, Val: val})
	}
	return imgs, pos, nil
}

// encode serializes rec.
func encode(rec *Record) []byte {
	size := encodedSize(rec)
	buf := make([]byte, 0, size)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(size-2))
	buf = append(buf, byte(rec.Type), byte(rec.Role))
	var flags byte
	if rec.OK {
		flags |= 1
	}
	if rec.HasPeer {
		flags |= 2
	}
	buf = append(buf, flags)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(rec.Op.Proc.Client))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(rec.Op.Proc.Index))
	buf = binary.LittleEndian.AppendUint64(buf, rec.Op.Seq)
	if rec.HasPeer {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(rec.Peer))
	}
	if rec.Type == RecResult {
		buf = append(buf, byte(rec.Sub.Action), byte(rec.Sub.Kind))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(rec.Sub.Parent))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(rec.Sub.Ino))
		buf = append(buf, byte(rec.Sub.Type))
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(rec.Sub.Name)))
		buf = append(buf, rec.Sub.Name...)
		buf = putImages(buf, rec.Before)
		buf = putImages(buf, rec.After)
	}
	h := fnv.New32a()
	h.Write(buf[2:])
	buf = binary.LittleEndian.AppendUint32(buf, h.Sum32())
	return buf
}

// decode parses one record, verifying length and checksum.
func decode(buf []byte) (Record, error) {
	var rec Record
	if len(buf) < headerSize+checksumSize {
		return rec, fmt.Errorf("wal: record too short (%d bytes)", len(buf))
	}
	total := int(binary.LittleEndian.Uint16(buf[0:2])) + 2
	if total != len(buf) {
		return rec, fmt.Errorf("wal: length mismatch: header says %d, have %d", total, len(buf))
	}
	body := buf[2 : len(buf)-checksumSize]
	want := binary.LittleEndian.Uint32(buf[len(buf)-checksumSize:])
	h := fnv.New32a()
	h.Write(body)
	if h.Sum32() != want {
		return rec, fmt.Errorf("wal: checksum mismatch")
	}
	rec.Type = RecType(buf[2])
	rec.Role = types.Role(buf[3])
	rec.OK = buf[4]&1 != 0
	rec.HasPeer = buf[4]&2 != 0
	rec.Op.Proc.Client = types.NodeID(binary.LittleEndian.Uint32(buf[5:9]))
	rec.Op.Proc.Index = int32(binary.LittleEndian.Uint32(buf[9:13]))
	rec.Op.Seq = binary.LittleEndian.Uint64(buf[13:21])
	p := 21
	if rec.HasPeer {
		if len(buf) < p+4+checksumSize {
			return rec, fmt.Errorf("wal: peer truncated")
		}
		rec.Peer = types.NodeID(binary.LittleEndian.Uint32(buf[p : p+4]))
		p += 4
	}
	if rec.Type == RecResult {
		if len(buf) < p+resultFixed+checksumSize {
			return rec, fmt.Errorf("wal: result record truncated")
		}
		rec.Sub.Action = types.SubOpAction(buf[p])
		rec.Sub.Kind = types.OpKind(buf[p+1])
		rec.Sub.Parent = types.InodeID(binary.LittleEndian.Uint64(buf[p+2 : p+10]))
		rec.Sub.Ino = types.InodeID(binary.LittleEndian.Uint64(buf[p+10 : p+18]))
		rec.Sub.Type = types.FileType(buf[p+18])
		nameLen := int(binary.LittleEndian.Uint16(buf[p+19 : p+21]))
		nameStart := p + 21
		if len(buf) < nameStart+nameLen+checksumSize {
			return rec, fmt.Errorf("wal: name truncated")
		}
		rec.Sub.Name = string(buf[nameStart : nameStart+nameLen])
		rec.Sub.Op = rec.Op
		rec.Sub.Role = rec.Role
		pos := nameStart + nameLen
		var err error
		if rec.Before, pos, err = takeImages(buf, pos); err != nil {
			return rec, err
		}
		if rec.After, pos, err = takeImages(buf, pos); err != nil {
			return rec, err
		}
		if pos != len(buf)-checksumSize {
			return rec, fmt.Errorf("wal: %d stray bytes before checksum", len(buf)-checksumSize-pos)
		}
	}
	return rec, nil
}

package metarates

import (
	"testing"

	"cxfs/internal/cluster"
)

func TestRunPhasedProducesAllFourPhases(t *testing.T) {
	c := smallCluster(4, cluster.ProtoCx)
	defer c.Shutdown()
	res := RunPhased(c, 10)
	if len(res) != 4 {
		t.Fatalf("phases=%d, want 4", len(res))
	}
	names := []string{"create", "utime", "stat", "delete"}
	for i, r := range res {
		if r.Name != names[i] {
			t.Errorf("phase %d = %s, want %s", i, r.Name, names[i])
		}
		if r.Rate <= 0 {
			t.Errorf("phase %s has no rate", r.Name)
		}
	}
	// Stats are reads: the stat phase must be the fastest.
	if res[2].Rate <= res[0].Rate {
		t.Errorf("stat rate (%.0f) should exceed create rate (%.0f)", res[2].Rate, res[0].Rate)
	}
	if bad := c.CheckInvariants(); len(bad) != 0 {
		t.Errorf("invariants: %v", bad)
	}
}

func TestPhasedCxBeatsSEOnCreatePhase(t *testing.T) {
	rate := func(proto cluster.Protocol) float64 {
		c := smallCluster(4, proto)
		defer c.Shutdown()
		return RunPhased(c, 12)[0].Rate
	}
	cx, se := rate(cluster.ProtoCx), rate(cluster.ProtoSE)
	if cx <= se {
		t.Errorf("Cx create phase (%.0f ops/s) not faster than SE (%.0f)", cx, se)
	}
}

func TestPhasedDeleteCleansNamespace(t *testing.T) {
	c := smallCluster(2, cluster.ProtoCx)
	defer c.Shutdown()
	RunPhased(c, 8)
	// After the delete phase and settling, only the benchmark directory
	// remains; every file is gone.
	if bad := c.CheckInvariants(); len(bad) != 0 {
		t.Errorf("invariants: %v", bad)
	}
}

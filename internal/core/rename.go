package core

import (
	"fmt"

	"cxfs/internal/simrt"
	"cxfs/internal/types"
	"cxfs/internal/wal"
	"cxfs/internal/wire"
)

// Rename support — an extension beyond the paper, which excludes rename
// from Cx ("Operation that may require more than two metadata servers is
// rename", §II.A footnote) without saying how a real system should run it.
//
// We run rename as an *eager* two-phase transaction between the two entry
// servers: the source entry's owner coordinates, removes its entry
// provisionally, and drives a per-operation VOTE / COMMIT-REQ / ACK round
// against the destination entry's owner, which inserts provisionally. No
// lazy commitment: the client's response waits for the full commit, exactly
// the conservative fallback the footnote implies.
//
// Both provisional entries are held active for the duration, so ordinary
// Cx operations conflict-block against an in-flight rename and vice versa.
// The destination side registers in the same pendingPart table as a normal
// participant execution, which makes crash recovery compose: a crashed
// destination rebuilds the pending insert from its Result-Record and nudges
// the coordinator; a crashed coordinator rebuilds the pending remove and
// re-drives the commitment through the standard batch machinery, whose
// VOTE the destination answers from the same table.

// renameVoteCh/renameAckCh route per-operation replies (batch commitment
// replies route per-peer instead).
func (s *Server) renameRoutes() (map[types.OpID]*simrt.Chan[wire.Msg], map[types.OpID]*simrt.Chan[wire.Msg]) {
	if s.renameVote == nil {
		s.renameVote = make(map[types.OpID]*simrt.Chan[wire.Msg])
		s.renameAck = make(map[types.OpID]*simrt.Chan[wire.Msg])
	}
	return s.renameVote, s.renameAck
}

// handleRename coordinates one rename transaction; m.FullOp carries the
// operation, and this server owns the source entry.
func (s *Server) handleRename(p *simrt.Proc, m wire.Msg) {
	boot := s.Boot()
	op := m.FullOp
	reply := wire.Msg{Type: wire.MsgOpResp, To: m.From, Op: op.ID, OK: true}
	if s.tombstones[op.ID] {
		reply.OK, reply.Err = false, types.ErrAborted.Error()
		s.Send(reply)
		return
	}

	srcSub := types.SubOp{Op: op.ID, Kind: types.OpRename, Role: types.RoleCoordinator,
		Action: types.ActRemoveEntry, Parent: op.Parent, Name: op.Name, Ino: op.Ino}
	dstSub := types.SubOp{Op: op.ID, Kind: types.OpRename, Role: types.RoleParticipant,
		Action: types.ActInsertEntry, Parent: op.NewParent, Name: op.NewName, Ino: op.Ino}
	dst := s.pl.CoordinatorFor(op.NewParent, op.NewName)
	local := dst == s.ID

	// Conflict check on the source entry: block behind a pending operation
	// like any sub-op would.
	if key, ok := conflictKey(srcSub); ok {
		if holder, held := s.active[key]; held && holder.Proc != op.ID.Proc {
			s.block(wire.Msg{Type: wire.MsgOpReq, From: m.From, To: s.ID, Op: op.ID,
				FullOp: op, Sub: srcSub, ReplyProc: m.ReplyProc}, holder, 1)
			return
		}
	}

	// Provisional source removal.
	s.ExecCPU(p)
	if s.Gone(boot) {
		return
	}
	resSrc := s.Shard.Exec(srcSub, s.NowNanos())
	if !resSrc.OK {
		reply.OK, reply.Err = false, resSrc.Err.Error()
		s.Send(reply)
		return
	}
	s.hold(srcSub)
	s.WAL.Append(p, wal.Record{Type: wal.RecResult, Op: op.ID, Role: types.RoleCoordinator,
		OK: true, Sub: srcSub, Before: resSrc.Before, After: resSrc.After, Peer: dst, HasPeer: true})
	if s.Gone(boot) {
		return
	}
	// Register as a committing coordinator op so C-NOTIFY/L-COM find it and
	// the lazy daemon leaves it alone.
	co := &coordOp{id: op.ID, sub: srcSub, ok: true, undo: resSrc.Undo, rows: resSrc.Rows,
		participant: dst, client: m.From, epoch: 1, committing: true, reqMsg: m}
	s.pendingCoord[op.ID] = co

	var dstOK bool
	var dstErr string
	if local {
		dstOK, dstErr = s.renameLocalInsert(p, boot, op, dstSub)
	} else {
		dstOK, dstErr = s.renameRemoteInsert(p, boot, op, dstSub, dst)
	}
	if s.Gone(boot) {
		return
	}

	commit := dstOK
	decType := wal.RecAbort
	if commit {
		decType = wal.RecCommit
	}
	s.WAL.AppendBatchPriority(p, []wal.Record{{Type: decType, Op: op.ID, Role: types.RoleCoordinator}})
	if s.Gone(boot) {
		return
	}
	var flushRows []string
	if commit {
		flushRows = co.rows
	} else {
		flushRows = s.rollback(co.undo, co.beforeImgs)
		s.tombstone(op.ID)
	}

	if !local {
		// Deliver the decision until acknowledged.
		s.renameDecision(p, boot, op.ID, dst, commit)
		if s.Gone(boot) {
			return
		}
	}

	s.WAL.AppendBatchPriority(p, []wal.Record{{Type: wal.RecComplete, Op: op.ID, Role: types.RoleCoordinator}})
	if s.Gone(boot) {
		return
	}
	delete(s.pendingCoord, op.ID)
	s.completeOp(op.ID, srcSub)
	s.flushQ = append(s.flushQ, flushEntry{id: op.ID, rows: flushRows})
	if commit {
		s.stats.OpsCommitted++
		s.stats.Renames++
	} else {
		s.stats.OpsAborted++
		reply.OK = false
		if dstErr != "" {
			reply.Err = dstErr
		} else {
			reply.Err = types.ErrAborted.Error()
		}
	}
	// The outcome is sealed: retried requests must see this reply, never a
	// re-execution.
	s.cacheReply(op.ID, reply)
	s.Send(reply)
}

// renameLocalInsert executes the destination insert on this same server.
func (s *Server) renameLocalInsert(p *simrt.Proc, boot uint64, op types.Op, dstSub types.SubOp) (bool, string) {
	ok, err, _ := s.renameExecInsert(p, boot, op, dstSub, s.ID)
	return ok, err
}

// renameRemoteInsert drives the VOTE round against the destination server,
// retrying across its crashes.
func (s *Server) renameRemoteInsert(p *simrt.Proc, boot uint64, op types.Op, dstSub types.SubOp, dst types.NodeID) (bool, string) {
	votes, _ := s.renameRoutes()
	ch := simrt.NewChan[wire.Msg](s.Sim)
	votes[op.ID] = ch
	defer func() {
		if votes[op.ID] == ch {
			delete(votes, op.ID)
		}
	}()
	for {
		s.Send(wire.Msg{Type: wire.MsgVote, To: dst, Op: op.ID, Sub: dstSub,
			Peer: s.ID, ReplyProc: op.ID.Proc})
		if m, got := ch.RecvTimeout(p, s.cfg.RetryInterval+s.cfg.VoteWait); got {
			return m.OK, m.Err
		}
		if s.Gone(boot) {
			return false, ""
		}
	}
}

// renameDecision delivers the commit/abort to the destination until acked.
func (s *Server) renameDecision(p *simrt.Proc, boot uint64, id types.OpID, dst types.NodeID, commit bool) {
	_, acks := s.renameRoutes()
	ch := simrt.NewChan[wire.Msg](s.Sim)
	acks[id] = ch
	defer func() {
		if acks[id] == ch {
			delete(acks, id)
		}
	}()
	for {
		s.Send(wire.Msg{Type: wire.MsgCommitReq, To: dst, Op: id,
			Decisions: []wire.Decision{{Op: id, Commit: commit}}})
		if _, got := ch.RecvTimeout(p, s.cfg.RetryInterval); got || s.Gone(boot) {
			return
		}
	}
}

// handleRenameVote is the destination side: execute the insert (resolving
// conflicts like any sub-op) and vote. Registered in pendingPart so the
// standard decision and recovery paths finish the job.
func (s *Server) handleRenameVote(p *simrt.Proc, m wire.Msg) {
	id := m.Op
	if po := s.pendingPart[id]; po != nil {
		// Retransmitted vote: answer from the existing execution.
		s.Send(wire.Msg{Type: wire.MsgVoteResp, To: m.From, Op: id, OK: po.ok})
		return
	}
	if s.tombstones[id] {
		s.Send(wire.Msg{Type: wire.MsgVoteResp, To: m.From, Op: id, OK: false, Err: types.ErrAborted.Error()})
		return
	}
	boot := s.Boot()
	op := types.Op{ID: id, Kind: types.OpRename}
	ok, errStr, registered := s.renameExecInsert(p, boot, op, m.Sub, m.From)
	if s.Gone(boot) {
		return
	}
	resp := wire.Msg{Type: wire.MsgVoteResp, To: m.From, Op: id, OK: ok, Err: errStr}
	_ = registered
	s.Send(resp)
}

// renameExecInsert performs the destination insert with conflict
// resolution; on success the execution registers in pendingPart (remote
// coordinator case) so COMMIT-REQ/recovery complete it.
func (s *Server) renameExecInsert(p *simrt.Proc, boot uint64, op types.Op, dstSub types.SubOp, coordNode types.NodeID) (bool, string, bool) {
	deadline := s.Sim.Now() + s.cfg.VoteWait
	for {
		key, _ := conflictKey(dstSub)
		holder, held := s.active[key]
		if !held || holder.Proc == dstSub.Op.Proc {
			break
		}
		s.requestCommit(holder, false)
		remaining := deadline - s.Sim.Now()
		if remaining <= 0 {
			return false, fmt.Sprintf("rename destination busy: %v", types.ErrAborted), false
		}
		ch := s.waitChan(s.completeSig, holder)
		ch.RecvTimeout(p, remaining)
		if s.Gone(boot) {
			return false, "", false
		}
	}
	s.ExecCPU(p)
	if s.Gone(boot) {
		return false, "", false
	}
	res := s.Shard.Exec(dstSub, s.NowNanos())
	if !res.OK {
		return false, res.Err.Error(), false
	}
	s.hold(dstSub)
	s.WAL.Append(p, wal.Record{Type: wal.RecResult, Op: dstSub.Op, Role: types.RoleParticipant,
		OK: true, Sub: dstSub, Before: res.Before, After: res.After, Peer: coordNode, HasPeer: true})
	if s.Gone(boot) {
		return false, "", false
	}
	if coordNode != s.ID {
		s.pendingPart[dstSub.Op] = &partOp{id: dstSub.Op, sub: dstSub, ok: true,
			undo: res.Undo, rows: res.Rows, coordinator: coordNode,
			client: dstSub.Op.Proc.Client, epoch: 1, committing: true,
			since: s.Sim.Now()}
		return true, "", true
	}
	// Local: the caller owns completion; stage rows directly.
	s.flushQ = append(s.flushQ, flushEntry{id: dstSub.Op, rows: res.Rows})
	defer s.completeOp(dstSub.Op, dstSub)
	return true, "", false
}

package cluster

import (
	"testing"
	"time"

	"cxfs/internal/simrt"
	"cxfs/internal/transport"
	"cxfs/internal/types"
)

// TestDetectorLatencyBoundUnderMessageLoss crashes a server while every
// link (including the detector's ping/pong traffic) drops messages, and
// asserts the documented detection-latency bound still holds: suspicion
// fires within (Timeout, Timeout+Interval] of the last heartbeat the
// detector actually received. Under loss that last heartbeat is the
// detector's only evidence — a dropped pong is indistinguishable from a
// dead server — so the bound is stated against it; the test additionally
// requires that the evidence is at most one heartbeat round stale at the
// crash, which pins the crash-relative latency too.
func TestDetectorLatencyBoundUnderMessageLoss(t *testing.T) {
	o := smallOptions(ProtoCx)
	o.Seed = 5
	c := MustNew(o)
	defer c.Shutdown()
	c.Net.SetDefaultFaults(transport.Faults{DropProb: 0.15})
	d := NewFailureDetector(c, 10*time.Millisecond, 40*time.Millisecond)

	var suspectedAt, evidenceAt time.Duration
	var who types.NodeID = -1
	d.OnSuspect = func(srv types.NodeID, at time.Duration) {
		if who < 0 {
			who, suspectedAt = srv, at
			evidenceAt = d.lastPong[srv] // last pong that got through
		}
	}
	var crashAt time.Duration
	c.Sim.Spawn("t", func(p *simrt.Proc) {
		p.Sleep(300 * time.Millisecond) // steady state under loss first
		crashAt = p.Now()
		c.Bases[2].Crash()
		p.Sleep(300 * time.Millisecond)
		c.Sim.Stop()
	})
	c.Sim.RunUntil(time.Hour)

	if st := c.Net.Stats(); st.DroppedFault == 0 {
		t.Fatal("no message was lost; the test is not exercising the lossy path")
	}
	if who != 2 {
		t.Fatalf("first suspicion was of server %v, want the crashed server 2", who)
	}
	if suspectedAt <= crashAt {
		t.Fatalf("server 2 suspected at %v, before its crash at %v (false positive)", suspectedAt, crashAt)
	}
	// The heartbeat evidence must be fresh at the crash: at most one ping
	// round was lost immediately before it. (A seed that loses more would
	// legitimately stretch the crash-relative latency; this one does not.)
	if crashAt-evidenceAt > 2*d.Interval {
		t.Fatalf("last pong at %v is %v stale at the crash — pick a different seed", evidenceAt, crashAt-evidenceAt)
	}
	latency := suspectedAt - evidenceAt
	if latency <= d.Timeout || latency > d.Timeout+d.Interval {
		t.Errorf("detection latency %v from last heartbeat outside (%v, %v]",
			latency, d.Timeout, d.Timeout+d.Interval)
	}
}

package cluster

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"cxfs/internal/simrt"
	"cxfs/internal/types"
)

// oracleFile is the client-side model of one file it owns.
type oracleFile struct {
	name   string
	ino    types.InodeID
	exists bool
	links  []string // extra link names currently live
}

// TestRandomWorkloadMatchesClientOracle drives randomized multi-process
// workloads under every protocol and checks, after quiescence, that the
// settled namespace matches exactly what each client observed succeed:
// every file a client saw created (and not removed) resolves to its inode;
// every file it saw removed is gone; link counts match. Several seeds per
// protocol; each run is deterministic.
func TestRandomWorkloadMatchesClientOracle(t *testing.T) {
	for _, proto := range Protocols {
		for seed := int64(1); seed <= 3; seed++ {
			proto, seed := proto, seed
			t.Run(fmt.Sprintf("%s/seed%d", proto, seed), func(t *testing.T) {
				runOracle(t, proto, seed)
			})
		}
	}
}

func runOracle(t *testing.T, proto Protocol, seed int64) {
	o := DefaultOptions(4, proto)
	o.ClientHosts = 4
	o.ProcsPerHost = 2
	o.Seed = seed
	o.Cx.Timeout = 200 * time.Millisecond
	c := MustNew(o)
	defer c.Shutdown()

	models := make([]map[string]*oracleFile, c.NumProcs())
	dirs := make([]types.InodeID, c.NumProcs())

	runWorkload(t, c, func(p *simrt.Proc, pr *Process, idx int) {
		rng := rand.New(rand.NewSource(seed*1000 + int64(idx)))
		model := map[string]*oracleFile{}
		models[idx] = model
		dir, err := pr.Mkdir(p, types.RootInode, fmt.Sprintf("o%d", idx))
		if err != nil {
			t.Errorf("mkdir: %v", err)
			return
		}
		dirs[idx] = dir
		var live []*oracleFile
		for step := 0; step < 40; step++ {
			switch r := rng.Float64(); {
			case r < 0.4 || len(live) == 0:
				name := fmt.Sprintf("f%03d", step)
				ino, err := pr.Create(p, dir, name)
				if err != nil {
					t.Errorf("create %s: %v", name, err)
					continue
				}
				f := &oracleFile{name: name, ino: ino, exists: true}
				model[name] = f
				live = append(live, f)
			case r < 0.55:
				f := live[rng.Intn(len(live))]
				// Remove only when no extra links remain (keeps the model
				// simple: the dentry disappears, inode freed at nlink 0).
				if len(f.links) > 0 {
					continue
				}
				if err := pr.Remove(p, dir, f.name, f.ino); err != nil {
					t.Errorf("remove %s: %v", f.name, err)
					continue
				}
				f.exists = false
				for i, lf := range live {
					if lf == f {
						live = append(live[:i], live[i+1:]...)
						break
					}
				}
			case r < 0.7:
				f := live[rng.Intn(len(live))]
				lname := fmt.Sprintf("%s.l%d", f.name, len(f.links))
				if err := pr.Link(p, dir, lname, f.ino); err != nil {
					t.Errorf("link %s: %v", lname, err)
					continue
				}
				f.links = append(f.links, lname)
			case r < 0.8 && len(live) > 0:
				f := live[rng.Intn(len(live))]
				if len(f.links) == 0 {
					continue
				}
				lname := f.links[len(f.links)-1]
				if err := pr.Unlink(p, dir, lname, f.ino); err != nil {
					t.Errorf("unlink %s: %v", lname, err)
					continue
				}
				f.links = f.links[:len(f.links)-1]
			default:
				f := live[rng.Intn(len(live))]
				if _, err := pr.Stat(p, f.ino); err != nil {
					t.Errorf("stat %s: %v", f.name, err)
				}
			}
		}
	})

	// Verify the settled state against every process's model.
	verifyDone := false
	c.Sim.Rearm()
	c.Sim.Spawn("verify", func(p *simrt.Proc) {
		pr := c.Proc(0)
		for idx, model := range models {
			if model == nil {
				continue
			}
			dir := dirs[idx]
			for _, f := range model {
				got, err := pr.Lookup(p, dir, f.name)
				if f.exists {
					if err != nil || got.Ino != f.ino {
						t.Errorf("%s/seed: %s should exist as %d (got %d, %v)", proto, f.name, f.ino, got.Ino, err)
					}
					in, err := pr.Stat(p, f.ino)
					if err != nil || int(in.Nlink) != 1+len(f.links) {
						t.Errorf("%s: %s nlink=%d, want %d", proto, f.name, in.Nlink, 1+len(f.links))
					}
				} else if !errors.Is(err, types.ErrNotFound) {
					t.Errorf("%s: removed %s still resolves (%v)", proto, f.name, err)
				}
				for _, lname := range f.links {
					if got, err := pr.Lookup(p, dir, lname); err != nil || got.Ino != f.ino {
						t.Errorf("%s: link %s lost (%v)", proto, lname, err)
					}
				}
			}
			// Readdir agrees with the model's live entry count.
			wantEntries := 0
			for _, f := range model {
				if f.exists {
					wantEntries += 1 + len(f.links)
				}
			}
			entries, err := pr.Readdir(p, dir)
			if err != nil || len(entries) != wantEntries {
				t.Errorf("%s: readdir o%d -> %d entries, want %d (%v)", proto, idx, len(entries), wantEntries, err)
			}
		}
		verifyDone = true
		c.Sim.Stop()
	})
	c.Sim.RunUntil(time.Hour)
	if !verifyDone {
		t.Fatal("verification hung")
	}
	if bad := c.CheckInvariants(); len(bad) != 0 {
		t.Errorf("invariants: %v", bad)
	}
}

package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"

	"cxfs/internal/wire"
)

// Real-network transport for the wire codec: the same frames the simulated
// network accounts for, written to actual TCP sockets. The simulation
// remains the substrate for all protocol experiments (virtual time cannot
// span real sockets); this transport is the deployment-facing half — it is
// what a non-simulated metadata service would speak, and the tests prove
// the codec round-trips over real connections with partial reads, large
// batches, and concurrent senders.

// MsgConn frames wire messages over a byte stream. Safe for one concurrent
// reader and one concurrent writer; WriteMsg serializes multiple writers.
type MsgConn struct {
	conn io.ReadWriteCloser
	r    *bufio.Reader
	wmu  sync.Mutex
	w    *bufio.Writer
}

// NewMsgConn wraps a stream (normally a *net.TCPConn).
func NewMsgConn(c io.ReadWriteCloser) *MsgConn {
	return &MsgConn{conn: c, r: bufio.NewReaderSize(c, 64<<10), w: bufio.NewWriterSize(c, 64<<10)}
}

// WriteMsg encodes and sends one message, flushing the frame.
func (mc *MsgConn) WriteMsg(m *wire.Msg) error {
	buf := wire.Encode(m)
	mc.wmu.Lock()
	defer mc.wmu.Unlock()
	if _, err := mc.w.Write(buf); err != nil {
		return fmt.Errorf("transport: write: %w", err)
	}
	return mc.w.Flush()
}

// maxFrame bounds a frame so a corrupt length prefix cannot allocate
// unboundedly (CE migrations are the largest legitimate payloads).
const maxFrame = 16 << 20

// ReadMsg reads and decodes one message.
func (mc *MsgConn) ReadMsg() (wire.Msg, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(mc.r, hdr[:]); err != nil {
		return wire.Msg{}, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > maxFrame {
		return wire.Msg{}, fmt.Errorf("transport: frame of %d bytes exceeds limit", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(mc.r, buf); err != nil {
		return wire.Msg{}, fmt.Errorf("transport: short frame: %w", err)
	}
	return wire.DecodeBody(buf)
}

// Close closes the underlying stream.
func (mc *MsgConn) Close() error { return mc.conn.Close() }

// MsgHandler processes one inbound message and may return a reply to send
// back on the same connection (nil = no reply).
type MsgHandler func(m wire.Msg) *wire.Msg

// MsgServer accepts connections and dispatches frames to a handler — the
// skeleton a real (non-simulated) metadata server would hang its protocol
// logic on.
type MsgServer struct {
	ln      net.Listener
	handler MsgHandler
	wg      sync.WaitGroup

	mu     sync.Mutex
	closed bool
	conns  map[*MsgConn]struct{}
}

// ListenMsg starts a message server on addr (e.g. "127.0.0.1:0").
func ListenMsg(addr string, h MsgHandler) (*MsgServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen: %w", err)
	}
	s := &MsgServer{ln: ln, handler: h, conns: make(map[*MsgConn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound address.
func (s *MsgServer) Addr() string { return s.ln.Addr().String() }

func (s *MsgServer) acceptLoop() {
	defer s.wg.Done()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		mc := NewMsgConn(c)
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			mc.Close()
			return
		}
		s.conns[mc] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serve(mc)
	}
}

func (s *MsgServer) serve(mc *MsgConn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, mc)
		s.mu.Unlock()
		mc.Close()
	}()
	for {
		m, err := mc.ReadMsg()
		if err != nil {
			return
		}
		if reply := s.handler(m); reply != nil {
			if err := mc.WriteMsg(reply); err != nil {
				return
			}
		}
	}
}

// Close stops accepting, closes every connection, and waits for the
// handler goroutines to drain.
func (s *MsgServer) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	conns := make([]*MsgConn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	s.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
}

// DialMsg connects to a message server.
func DialMsg(addr string) (*MsgConn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial: %w", err)
	}
	return NewMsgConn(c), nil
}

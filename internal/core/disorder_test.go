// Disordered-conflict tests: the Figure 3b scenario, where the participant
// executed the later arrival first and must invalidate it when the
// coordinator's VOTE enforces its order.
package core_test

import (
	"fmt"
	"testing"
	"time"

	"cxfs/internal/cluster"
	"cxfs/internal/core"
	"cxfs/internal/simrt"
	"cxfs/internal/types"
	"cxfs/internal/wire"
)

// findSharedPlacement hunts for a (name, ino) whose unlink and link
// operations share BOTH servers: the dentry partition (coordinator) and the
// inode home (participant), with coordinator != participant.
func findSharedPlacement(c *cluster.Cluster, pr *cluster.Process) (name string, ino types.InodeID, coord, part types.NodeID) {
	for try := 0; ; try++ {
		name = fmt.Sprintf("disordered-%d", try)
		ino = pr.AllocInode()
		coord = c.Placement.CoordinatorFor(types.RootInode, name)
		part = c.Placement.ParticipantFor(ino)
		if coord != part {
			return
		}
	}
}

// collectCross emulates one client process's response collection for a
// cross-server op issued raw: returns ok and the number of responses seen.
type collector struct {
	route      *simrt.Chan[wire.Msg]
	coord      types.NodeID
	haveC      bool
	haveP      bool
	okC, okP   bool
	voidP      bool
	epochP     uint32
	supersedes int
}

func (cl *collector) run(p *simrt.Proc, deadline time.Duration) (bool, bool) {
	for {
		m, got := cl.route.RecvTimeout(p, deadline)
		if !got {
			return false, false // timed out incomplete
		}
		if m.Type == wire.MsgAllNo {
			return true, false
		}
		if m.Type != wire.MsgSubOpResp {
			continue
		}
		invalid := m.Err == types.ErrInvalidated.Error()
		if m.From == cl.coord {
			cl.haveC, cl.okC = true, m.OK
		} else {
			if m.Epoch < cl.epochP {
				continue
			}
			if m.Epoch > cl.epochP && cl.haveP {
				cl.supersedes++
			}
			cl.epochP = m.Epoch
			if invalid {
				cl.voidP = true
				continue
			}
			cl.haveP, cl.okP = true, m.OK
			cl.voidP = false
		}
		if cl.haveC && cl.haveP && !cl.voidP {
			if cl.okC && cl.okP {
				return true, true
			}
			if !cl.okC && !cl.okP {
				return true, false
			}
			// Mixed: a real client would L-COM here; the tests that need
			// that path drive it explicitly.
			return true, false
		}
	}
}

// TestDisorderedConflictInvalidatesAndReexecutes reproduces Figure 3b:
// ProA's unlink and ProB's link of the same (entry, inode) arrive in
// opposite orders at the two servers. The coordinator's immediate
// commitment must carry B in its Enforce set; the participant invalidates
// B's execution, executes A, and re-executes B after A commits, with B's
// client seeing the superseding epoch.
func TestDisorderedConflictInvalidatesAndReexecutes(t *testing.T) {
	o := cluster.DefaultOptions(4, cluster.ProtoCx)
	o.ClientHosts = 4
	o.ProcsPerHost = 2
	o.Cx.Timeout = time.Hour
	c := cluster.MustNew(o)
	defer c.Shutdown()

	var invalidations, supersedes uint64
	var aDone, bDone bool

	c.Sim.Spawn("scenario", func(p *simrt.Proc) {
		prSetup := c.Proc(1)
		prA, prB := c.Proc(0), c.Proc(c.NumProcs()-1)
		hostA, hostB := c.Hosts[0], c.Hosts[len(c.Hosts)-1]

		// Seed: an existing file reachable by two names (nlink 2, both
		// dentries present) so A's unlink and B's extra link both succeed
		// in isolation and the invariant checker stays satisfied.
		name, ino, coord, part := findSharedPlacement(c, prSetup)
		c.Bases[coord].Shard.SeedDentry(types.RootInode, name, ino)
		second := name + ".alt"
		c.Bases[c.Placement.CoordinatorFor(types.RootInode, second)].Shard.SeedDentry(types.RootInode, second, ino)
		c.Bases[part].Shard.SeedInode(types.Inode{Ino: ino, Type: types.FileRegular, Nlink: 2})

		// A = unlink(root, name, ino) from ProA; B = link(root, name2 ...
		// no: B must touch the SAME dentry to conflict at the coordinator.
		// B re-links the same name after A's unlink: link(root, name, ino).
		idA, idB := prA.NextID(), prB.NextID()
		opA := types.Op{ID: idA, Kind: types.OpUnlink, Parent: types.RootInode, Name: name, Ino: ino}
		opB := types.Op{ID: idB, Kind: types.OpLink, Parent: types.RootInode, Name: name, Ino: ino}
		cA, pA := types.Split(opA)
		cB, pB := types.Split(opB)

		routeA := hostA.Open(idA)
		routeB := hostB.Open(idB)
		defer hostA.Done(idA)
		defer hostB.Done(idB)

		// Force the disorder: coordinator sees A then B; participant sees
		// B then A. Equal network latency preserves send order.
		hostA.Send(wire.Msg{Type: wire.MsgSubOpReq, To: coord, Op: idA, Sub: cA, Peer: part, ReplyProc: idA.Proc})
		hostB.Send(wire.Msg{Type: wire.MsgSubOpReq, To: part, Op: idB, Sub: pB, Peer: coord, ReplyProc: idB.Proc})
		p.Sleep(time.Millisecond)
		hostB.Send(wire.Msg{Type: wire.MsgSubOpReq, To: coord, Op: idB, Sub: cB, Peer: part, ReplyProc: idB.Proc})
		hostA.Send(wire.Msg{Type: wire.MsgSubOpReq, To: part, Op: idA, Sub: pA, Peer: coord, ReplyProc: idA.Proc})

		// Collect both clients concurrently.
		g := simrt.NewGroup(c.Sim)
		g.Add(2)
		c.Sim.Spawn("clientA", func(pa *simrt.Proc) {
			defer g.Done()
			colA := &collector{route: routeA, coord: coord}
			done, _ := colA.run(pa, 30*time.Second)
			aDone = done
		})
		c.Sim.Spawn("clientB", func(pb *simrt.Proc) {
			defer g.Done()
			colB := &collector{route: routeB, coord: coord}
			done, _ := colB.run(pb, 30*time.Second)
			bDone = done
			supersedes += uint64(colB.supersedes)
			if colB.epochP < 2 {
				t.Errorf("B's participant response never superseded (epoch=%d); invalidation path not exercised", colB.epochP)
			}
		})
		g.Wait(p)
		c.Quiesce(p)
		for _, srv := range c.CxSrv {
			invalidations += srv.Stats().Invalidations
		}
		c.Sim.Stop()
	})
	c.Sim.RunUntil(time.Hour)
	if !c.Sim.Stopped() {
		t.Fatal("disordered scenario hung")
	}
	if !aDone || !bDone {
		t.Errorf("clients incomplete: A=%v B=%v", aDone, bDone)
	}
	if invalidations == 0 {
		t.Error("no invalidation recorded; the disordered path did not trigger")
	}
	if bad := c.CheckInvariants(); len(bad) != 0 {
		t.Errorf("invariants: %v", bad)
	}
}

// TestDisorderedStressManyRounds hammers the same (dentry, inode) pair from
// two processes with alternating link/unlink so ordered and disordered
// conflicts interleave; everything must converge with clean invariants.
func TestDisorderedStressManyRounds(t *testing.T) {
	o := cluster.DefaultOptions(4, cluster.ProtoCx)
	o.ClientHosts = 4
	o.ProcsPerHost = 2
	o.Cx.Timeout = 500 * time.Millisecond
	c := cluster.MustNew(o)
	defer c.Shutdown()

	c.Sim.Spawn("scenario", func(p *simrt.Proc) {
		pr0 := c.Proc(0)
		name, ino, coord, part := findSharedPlacement(c, pr0)
		c.Bases[coord].Shard.SeedDentry(types.RootInode, name, ino)
		c.Bases[part].Shard.SeedInode(types.Inode{Ino: ino, Type: types.FileRegular, Nlink: 1})

		g := simrt.NewGroup(c.Sim)
		g.Add(2)
		worker := func(pr *cluster.Process, alt string) func(*simrt.Proc) {
			return func(wp *simrt.Proc) {
				defer g.Done()
				for i := 0; i < 15; i++ {
					// Each worker links its own alternate name to the hot
					// inode and unlinks it again: constant conflicts on the
					// inode object from two processes.
					n := fmt.Sprintf("%s-%d", alt, i)
					if err := pr.Link(wp, types.RootInode, n, ino); err != nil {
						continue
					}
					pr.Unlink(wp, types.RootInode, n, ino)
				}
			}
		}
		c.Sim.Spawn("w1", worker(c.Proc(0), "a"))
		c.Sim.Spawn("w2", worker(c.Proc(c.NumProcs()-1), "b"))
		g.Wait(p)
		c.Quiesce(p)
		// The hot inode must survive with exactly its original link.
		if in, ok := c.Bases[part].Shard.GetInode(ino); !ok || in.Nlink != 1 {
			t.Errorf("hot inode after stress: %+v ok=%v", in, ok)
		}
		c.Sim.Stop()
	})
	c.Sim.RunUntil(time.Hour)
	if !c.Sim.Stopped() {
		t.Fatal("stress hung")
	}
	if bad := c.CheckInvariants(); len(bad) != 0 {
		t.Errorf("invariants: %v", bad)
	}
	var lateInv uint64
	for _, srv := range c.CxSrv {
		lateInv += srv.Stats().LateInvalidations
	}
	if lateInv != 0 {
		t.Errorf("%d late invalidations (op completed then invalidated)", lateInv)
	}
}

// Silence unused-import linters if the core package reference shifts.
var _ = core.DefaultConfig

// Behavioral tests of the baseline protocols' distinctive paths: SE's
// CLEAR compensation (and its documented client-crash flaw), 2PC's abort
// round, and CE's migration bracket.
package baseline_test

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"cxfs/internal/cluster"
	"cxfs/internal/simrt"
	"cxfs/internal/types"
	"cxfs/internal/wire"
)

func buildProto(proto cluster.Protocol) *cluster.Cluster {
	o := cluster.DefaultOptions(4, proto)
	o.ClientHosts = 2
	o.ProcsPerHost = 1
	return cluster.MustNew(o)
}

// crossPlacement finds a (name, ino) pair with distinct coordinator and
// participant.
func crossPlacement(c *cluster.Cluster, pr *cluster.Process, prefix string) (string, types.InodeID, types.NodeID, types.NodeID) {
	for try := 0; ; try++ {
		name := fmt.Sprintf("%s-%d", prefix, try)
		ino := pr.AllocInode()
		coord := c.Placement.CoordinatorFor(types.RootInode, name)
		part := c.Placement.ParticipantFor(ino)
		if coord != part {
			return name, ino, coord, part
		}
	}
}

func TestSEClearCompensatesParticipant(t *testing.T) {
	c := buildProto(cluster.ProtoSE)
	defer c.Shutdown()
	done := false
	c.Sim.Spawn("t", func(p *simrt.Proc) {
		pr := c.Proc(0)
		name, ino, coord, part := crossPlacement(c, pr, "clear")
		// Sabotage the coordinator so the second (entry) sub-op fails
		// after the participant's inode add succeeded.
		c.Bases[coord].Shard.SeedDentry(types.RootInode, name, 99999)
		_, err := pr.Do(p, types.Op{ID: pr.NextID(), Kind: types.OpCreate,
			Parent: types.RootInode, Name: name, Ino: ino, Type: types.FileRegular})
		if !errors.Is(err, types.ErrExists) {
			t.Errorf("expected EEXIST, got %v", err)
		}
		// CLEAR must have removed the participant's provisional inode.
		if _, ok := c.Bases[part].Shard.GetInode(ino); ok {
			t.Error("participant inode survived; CLEAR did not compensate")
		}
		done = true
		c.Sim.Stop()
	})
	c.Sim.RunUntil(time.Hour)
	if !done {
		t.Fatal("hung")
	}
}

func TestSEClientCrashLeavesOrphan(t *testing.T) {
	// §II.B: "if the client itself fails before sending the CLEAR message
	// out, metadata across servers may be inconsistent, leaving orphan
	// objects". This is SE's documented flaw — assert it exists, because
	// it is precisely what Cx's lazy commitment repairs (see
	// TestClientCrashBeforeLComStillConverges in internal/core).
	c := buildProto(cluster.ProtoSE)
	defer c.Shutdown()
	done := false
	c.Sim.Spawn("t", func(p *simrt.Proc) {
		pr := c.Proc(0)
		name, ino, coord, part := crossPlacement(c, pr, "orphan")
		c.Bases[coord].Shard.SeedDentry(types.RootInode, name, 99999)
		op := types.Op{ID: pr.NextID(), Kind: types.OpCreate,
			Parent: types.RootInode, Name: name, Ino: ino, Type: types.FileRegular}
		_, pSub := types.Split(op)
		host := c.Hosts[0]
		// The client executes only the participant step, then "crashes"
		// (never contacts the coordinator, never sends CLEAR).
		route := host.Open(op.ID)
		host.Send(wire.Msg{Type: wire.MsgSubOpReq, To: part, Op: op.ID, Sub: pSub, Peer: coord, ReplyProc: op.ID.Proc})
		if m := route.Recv(p); !m.OK {
			t.Fatalf("participant step failed: %s", m.Err)
		}
		host.Done(op.ID)
		p.Sleep(2 * time.Second) // nothing in SE will ever clean this up
		if _, ok := c.Bases[part].Shard.GetInode(ino); !ok {
			t.Error("orphan vanished: SE should have no mechanism to clean it")
		}
		done = true
		c.Sim.Stop()
	})
	c.Sim.RunUntil(time.Hour)
	if !done {
		t.Fatal("hung")
	}
}

func TestTwoPCAbortRollsBackParticipant(t *testing.T) {
	c := buildProto(cluster.Proto2PC)
	defer c.Shutdown()
	done := false
	c.Sim.Spawn("t", func(p *simrt.Proc) {
		pr := c.Proc(0)
		name, ino, coord, part := crossPlacement(c, pr, "abort")
		c.Bases[coord].Shard.SeedDentry(types.RootInode, name, 99999)
		_, err := pr.Do(p, types.Op{ID: pr.NextID(), Kind: types.OpCreate,
			Parent: types.RootInode, Name: name, Ino: ino, Type: types.FileRegular})
		if err == nil {
			t.Error("sabotaged create succeeded")
		}
		if _, ok := c.Bases[part].Shard.GetInode(ino); ok {
			t.Error("participant execution not rolled back by ABORT-REQ")
		}
		// Locks must be free: the same name must be usable immediately.
		ino2 := pr.AllocInode()
		if _, err := pr.Do(p, types.Op{ID: pr.NextID(), Kind: types.OpCreate,
			Parent: types.RootInode, Name: name + "x", Ino: ino2, Type: types.FileRegular}); err != nil {
			t.Errorf("follow-up create: %v", err)
		}
		done = true
		c.Sim.Stop()
	})
	c.Sim.RunUntil(time.Hour)
	if !done {
		t.Fatal("hung — 2PC locks leaked")
	}
}

func TestCEMigrationBracketsExecution(t *testing.T) {
	c := buildProto(cluster.ProtoCE)
	defer c.Shutdown()
	done := false
	c.Sim.Spawn("t", func(p *simrt.Proc) {
		pr := c.Proc(0)
		name, ino, coord, part := crossPlacement(c, pr, "mig")
		if _, err := pr.Do(p, types.Op{ID: pr.NextID(), Kind: types.OpCreate,
			Parent: types.RootInode, Name: name, Ino: ino, Type: types.FileRegular}); err != nil {
			t.Fatalf("create: %v", err)
		}
		// The inode row must live at its home (participant) after the
		// migration bracket, not at the coordinator.
		if _, ok := c.Bases[part].Shard.GetInode(ino); !ok {
			t.Error("inode not reinstalled at its home server")
		}
		if _, ok := c.Bases[coord].Shard.GetInode(ino); ok {
			t.Error("coordinator kept a copy of the migrated inode")
		}
		done = true
		c.Sim.Stop()
	})
	c.Sim.RunUntil(time.Hour)
	if !done {
		t.Fatal("hung")
	}
}

func TestCEConcurrentOpsOnSameInodeSerialize(t *testing.T) {
	c := buildProto(cluster.ProtoCE)
	defer c.Shutdown()
	done := false
	c.Sim.Spawn("t", func(p *simrt.Proc) {
		prA, prB := c.Proc(0), c.Proc(1)
		ino, err := prA.Create(p, types.RootInode, "ce-hot")
		if err != nil {
			t.Fatal(err)
		}
		g := simrt.NewGroup(c.Sim)
		g.Add(2)
		c.Sim.Spawn("a", func(pp *simrt.Proc) {
			defer g.Done()
			if err := prA.Link(pp, types.RootInode, "ce-l1", ino); err != nil {
				t.Errorf("link a: %v", err)
			}
		})
		c.Sim.Spawn("b", func(pp *simrt.Proc) {
			defer g.Done()
			if err := prB.Link(pp, types.RootInode, "ce-l2", ino); err != nil {
				t.Errorf("link b: %v", err)
			}
		})
		g.Wait(p)
		part := c.Placement.ParticipantFor(ino)
		if in, ok := c.Bases[part].Shard.GetInode(ino); !ok || in.Nlink != 3 {
			t.Errorf("nlink=%d, want 3 (both links applied exactly once)", in.Nlink)
		}
		done = true
		c.Sim.Stop()
	})
	c.Sim.RunUntil(time.Hour)
	if !done {
		t.Fatal("hung — CE migration locks leaked")
	}
	if bad := c.CheckInvariants(); len(bad) != 0 {
		t.Errorf("invariants: %v", bad)
	}
}

func TestSEBatchedFlushDaemonDrains(t *testing.T) {
	o := cluster.DefaultOptions(2, cluster.ProtoSEBatched)
	o.ClientHosts = 1
	o.ProcsPerHost = 1
	o.SEFlush = 100 * time.Millisecond
	c := cluster.MustNew(o)
	defer c.Shutdown()
	done := false
	c.Sim.Spawn("t", func(p *simrt.Proc) {
		pr := c.Proc(0)
		for j := 0; j < 10; j++ {
			if _, err := pr.Create(p, types.RootInode, fmt.Sprintf("fl-%d", j)); err != nil {
				t.Errorf("create: %v", err)
			}
		}
		dirtyBefore := 0
		for _, b := range c.Bases {
			dirtyBefore += b.KV.DirtyCount()
		}
		if dirtyBefore == 0 {
			t.Error("no dirty pages right after batched writes")
		}
		p.Sleep(400 * time.Millisecond) // several flush periods
		for i, b := range c.Bases {
			if n := b.KV.DirtyCount(); n != 0 {
				t.Errorf("server %d still has %d dirty pages", i, n)
			}
			if b.WAL.LiveBytes() != 0 {
				t.Errorf("server %d log not pruned after flush", i)
			}
		}
		done = true
		c.Sim.Stop()
	})
	c.Sim.RunUntil(time.Hour)
	if !done {
		t.Fatal("hung")
	}
}

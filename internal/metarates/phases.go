package metarates

import (
	"fmt"
	"time"

	"cxfs/internal/cluster"
	"cxfs/internal/simrt"
	"cxfs/internal/types"
)

// Phased mode mirrors the real Metarates binary more literally than the
// mixed run: MPI ranks proceed through barriered phases — create all files,
// utime them, stat them, delete them — and the tool reports an aggregate
// transaction rate per phase. The create and delete phases are the
// cross-server stress; utime and stat isolate single-server update and
// read paths.

// PhaseResult is one phase's aggregate rate.
type PhaseResult struct {
	Name    string
	Ops     int
	Elapsed time.Duration
	Rate    float64 // operations per second, aggregated over all processes
}

// RunPhased executes the four Metarates phases with barriers and returns
// per-phase results. filesPerProc sizes every phase.
func RunPhased(c *cluster.Cluster, filesPerProc int) []PhaseResult {
	nProcs := c.NumProcs()
	type fileRef struct {
		name string
		ino  types.InodeID
	}
	files := make([][]fileRef, nProcs)

	var dirIno types.InodeID
	results := make([]PhaseResult, 0, 4)

	// barrierRun executes one phase body on every process between
	// barriers and measures the span.
	barrierRun := func(name string, body func(p *simrt.Proc, pr *cluster.Process, rank int)) {
		g := simrt.NewGroup(c.Sim)
		g.Add(nProcs)
		var start, end time.Duration
		c.Sim.Rearm()
		start = c.Sim.Now()
		for i := 0; i < nProcs; i++ {
			i := i
			pr := c.Proc(i)
			c.Sim.Spawn(fmt.Sprintf("metarates/%s/%d", name, i), func(p *simrt.Proc) {
				body(p, pr, i)
				g.Done()
			})
		}
		c.Sim.Spawn("metarates/barrier", func(p *simrt.Proc) {
			g.Wait(p)
			end = p.Now()
			c.Sim.Stop()
		})
		c.Sim.Run()
		ops := nProcs * filesPerProc
		res := PhaseResult{Name: name, Ops: ops, Elapsed: end - start}
		if res.Elapsed > 0 {
			res.Rate = float64(ops) / res.Elapsed.Seconds()
		}
		results = append(results, res)
	}

	// Setup (unmeasured).
	c.Sim.Rearm()
	c.Sim.Spawn("metarates/setup", func(p *simrt.Proc) {
		ino, err := c.Proc(0).Mkdir(p, types.RootInode, "metarates-phased")
		if err != nil {
			panic(fmt.Sprintf("metarates: %v", err))
		}
		dirIno = ino
		c.Sim.Stop()
	})
	c.Sim.Run()

	barrierRun("create", func(p *simrt.Proc, pr *cluster.Process, rank int) {
		for j := 0; j < filesPerProc; j++ {
			name := fmt.Sprintf("ph.%d.%d", rank, j)
			ino, err := pr.Create(p, dirIno, name)
			if err != nil {
				continue
			}
			files[rank] = append(files[rank], fileRef{name, ino})
		}
	})
	barrierRun("utime", func(p *simrt.Proc, pr *cluster.Process, rank int) {
		for _, f := range files[rank] {
			pr.SetAttr(p, f.ino)
		}
	})
	barrierRun("stat", func(p *simrt.Proc, pr *cluster.Process, rank int) {
		for _, f := range files[rank] {
			pr.Stat(p, f.ino)
		}
	})
	barrierRun("delete", func(p *simrt.Proc, pr *cluster.Process, rank int) {
		for _, f := range files[rank] {
			pr.Remove(p, dirIno, f.name, f.ino)
		}
	})

	// Settle commitments after the measured phases.
	c.Sim.Rearm()
	c.Sim.Spawn("metarates/settle", func(p *simrt.Proc) {
		c.Quiesce(p)
		c.Sim.Stop()
	})
	c.Sim.Run()
	return results
}

package disk

import (
	"testing"
	"time"

	"cxfs/internal/simrt"
)

// runDisk executes fn inside a fresh simulation with one disk and returns
// the disk and the virtual end time.
func runDisk(t *testing.T, params Params, fn func(p *simrt.Proc, d *Disk)) (*Disk, time.Duration) {
	t.Helper()
	s := simrt.New(1)
	d := New(s, "t", params)
	s.Spawn("driver", func(p *simrt.Proc) {
		fn(p, d)
		s.Stop()
	})
	end := s.Run()
	s.Shutdown()
	return d, end
}

func TestSingleRandomWriteCost(t *testing.T) {
	pp := DefaultParams()
	d, end := runDisk(t, pp, func(p *simrt.Proc, d *Disk) {
		d.Access(p, pp.Capacity/2, 4096, true)
	})
	// Half-stroke seek + rotational + transfer.
	wantSeek := pp.MinSeek + (pp.MaxSeek-pp.MinSeek)/2
	transfer := time.Duration(4096 * int64(time.Second) / pp.TransferBps)
	want := wantSeek + pp.RotLatency + transfer
	if diff := end - want; diff < -time.Microsecond || diff > time.Microsecond {
		t.Errorf("end=%v, want ~%v", end, want)
	}
	st := d.Stats()
	if st.Requests != 1 || st.MechOps != 1 || st.Merged != 0 {
		t.Errorf("stats=%+v", st)
	}
}

func TestSequentialAppendsAreCheap(t *testing.T) {
	pp := DefaultParams()
	_, end := runDisk(t, pp, func(p *simrt.Proc, d *Disk) {
		off := int64(0)
		for i := 0; i < 10; i++ {
			d.Access(p, off, 512, true)
			off += 512
		}
	})
	// First access seeks from head 0 to 0: sequential. All ten sequential.
	perOp := pp.SettleTime + time.Duration(512*int64(time.Second)/pp.TransferBps)
	want := 10 * perOp
	if end > want+time.Millisecond {
		t.Errorf("10 sequential appends took %v, want ~%v", end, want)
	}
}

func TestElevatorMergesAdjacentQueuedWrites(t *testing.T) {
	pp := DefaultParams()
	const n = 32
	var batched time.Duration
	d, _ := runDisk(t, pp, func(p *simrt.Proc, d *Disk) {
		base := pp.Capacity / 4
		start := p.Now()
		chans := make([]*simrt.Chan[struct{}], n)
		for i := 0; i < n; i++ {
			chans[i] = d.Submit(base+int64(i)*4096, 4096, true)
		}
		for _, c := range chans {
			c.Recv(p)
		}
		batched = p.Now() - start
	})
	st := d.Stats()
	if st.Merged == 0 {
		t.Fatalf("no merging happened: %+v", st)
	}
	// Compare against serial random writes at scattered offsets.
	var serial time.Duration
	runDisk(t, pp, func(p *simrt.Proc, d *Disk) {
		start := p.Now()
		for i := 0; i < n; i++ {
			// Alternate ends of the disk to force seeks.
			off := int64(i%2)*pp.Capacity/2 + int64(i)*1_000_000
			d.Access(p, off, 4096, true)
		}
		serial = p.Now() - start
	})
	if batched*4 > serial {
		t.Errorf("batched adjacent writes (%v) should be >4x faster than scattered serial (%v)", batched, serial)
	}
}

func TestMergeWindowRespected(t *testing.T) {
	pp := DefaultParams()
	pp.MergeWindow = 1024
	d, _ := runDisk(t, pp, func(p *simrt.Proc, d *Disk) {
		a := d.Submit(0, 512, true)
		b := d.Submit(600, 512, true)           // gap 88 bytes -> merges
		c := d.Submit(1_000_000_000, 512, true) // far away -> separate pass
		a.Recv(p)
		b.Recv(p)
		c.Recv(p)
	})
	st := d.Stats()
	if st.MechOps != 2 {
		t.Errorf("mech ops=%d, want 2 (one merged pair + one lone)", st.MechOps)
	}
	if st.Merged != 1 {
		t.Errorf("merged=%d, want 1", st.Merged)
	}
}

func TestZeroSizeAccessIsFree(t *testing.T) {
	_, end := runDisk(t, DefaultParams(), func(p *simrt.Proc, d *Disk) {
		d.Access(p, 100, 0, true)
	})
	if end != 0 {
		t.Errorf("zero-size access advanced time to %v", end)
	}
}

func TestSubmitZeroSizeCompletesImmediately(t *testing.T) {
	runDisk(t, DefaultParams(), func(p *simrt.Proc, d *Disk) {
		c := d.Submit(0, 0, false)
		if _, ok := c.TryRecv(); !ok {
			t.Error("zero-size Submit did not complete immediately")
		}
	})
}

func TestReadsAndWritesShareQueue(t *testing.T) {
	pp := DefaultParams()
	d, _ := runDisk(t, pp, func(p *simrt.Proc, d *Disk) {
		w := d.Submit(4096, 4096, true)
		r := d.Submit(0, 4096, false)
		w.Recv(p)
		r.Recv(p)
	})
	st := d.Stats()
	if st.Requests != 2 {
		t.Errorf("requests=%d, want 2", st.Requests)
	}
	if st.MechOps != 1 {
		t.Errorf("mech ops=%d, want 1 (adjacent read+write merge)", st.MechOps)
	}
}

func TestConcurrentAccessorsAllComplete(t *testing.T) {
	s := simrt.New(2)
	pp := DefaultParams()
	d := New(s, "t", pp)
	g := simrt.NewGroup(s)
	const n = 100
	g.Add(n)
	for i := 0; i < n; i++ {
		i := i
		s.Spawn("w", func(p *simrt.Proc) {
			d.Access(p, int64(i)*1_000_000, 4096, true)
			g.Done()
		})
	}
	done := false
	s.Spawn("wait", func(p *simrt.Proc) {
		g.Wait(p)
		done = true
		s.Stop()
	})
	s.Run()
	s.Shutdown()
	if !done {
		t.Fatal("not all accesses completed")
	}
	if d.Stats().Requests != n {
		t.Errorf("requests=%d, want %d", d.Stats().Requests, n)
	}
}

func TestBusyTimeAccounting(t *testing.T) {
	pp := DefaultParams()
	d, end := runDisk(t, pp, func(p *simrt.Proc, d *Disk) {
		d.Access(p, pp.Capacity/2, 8192, true)
		d.Access(p, pp.Capacity/4, 8192, false)
	})
	if d.Stats().BusyTime != end {
		t.Errorf("busy=%v end=%v; serial accesses should keep disk 100%% busy", d.Stats().BusyTime, end)
	}
	if d.Stats().BytesMoved != 16384 {
		t.Errorf("bytes=%d, want 16384", d.Stats().BytesMoved)
	}
}

func TestInvalidParamsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on zero capacity")
		}
	}()
	s := simrt.New(1)
	defer s.Shutdown()
	New(s, "bad", Params{})
}

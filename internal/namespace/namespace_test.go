package namespace

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"cxfs/internal/disk"
	"cxfs/internal/kvstore"
	"cxfs/internal/simrt"
	"cxfs/internal/types"
)

// newShard builds a shard on a throwaway simulation (Exec never blocks, so
// the sim is only needed to construct the store).
func newShard(t *testing.T) (*Shard, func()) {
	t.Helper()
	s := simrt.New(1)
	d := disk.New(s, "d", disk.DefaultParams())
	sh := NewShard(kvstore.New(s, d, 0))
	return sh, func() { s.Shutdown() }
}

func sub(kind types.OpKind, action types.SubOpAction, parent types.InodeID, name string, ino types.InodeID, ft types.FileType) types.SubOp {
	return types.SubOp{Kind: kind, Action: action, Parent: parent, Name: name, Ino: ino, Type: ft}
}

func TestCreateFlow(t *testing.T) {
	sh, done := newShard(t)
	defer done()
	sh.InitRoot()

	res := sh.Exec(sub(types.OpCreate, types.ActInsertEntry, types.RootInode, "f", 10, 0), 5)
	if !res.OK {
		t.Fatalf("insert: %v", res.Err)
	}
	res2 := sh.Exec(sub(types.OpCreate, types.ActAddInode, types.RootInode, "f", 10, types.FileRegular), 5)
	if !res2.OK {
		t.Fatalf("add inode: %v", res2.Err)
	}
	ino, ok := sh.LookupEntry(types.RootInode, "f")
	if !ok || ino != 10 {
		t.Errorf("lookup: %d %v", ino, ok)
	}
	in, ok := sh.GetInode(10)
	if !ok || in.Type != types.FileRegular || in.Nlink != 1 {
		t.Errorf("inode: %+v %v", in, ok)
	}
	root, _ := sh.GetInode(types.RootInode)
	if root.Size != 1 || root.Mtime != 5 {
		t.Errorf("parent not updated: %+v", root)
	}
}

func TestInsertDuplicateFails(t *testing.T) {
	sh, done := newShard(t)
	defer done()
	sh.InitRoot()
	if res := sh.Exec(sub(types.OpCreate, types.ActInsertEntry, 1, "f", 10, 0), 0); !res.OK {
		t.Fatal(res.Err)
	}
	res := sh.Exec(sub(types.OpCreate, types.ActInsertEntry, 1, "f", 11, 0), 0)
	if res.OK || !errors.Is(res.Err, types.ErrExists) {
		t.Errorf("duplicate insert: %v", res.Err)
	}
}

func TestRemoveMissingFails(t *testing.T) {
	sh, done := newShard(t)
	defer done()
	res := sh.Exec(sub(types.OpRemove, types.ActRemoveEntry, 1, "ghost", 0, 0), 0)
	if res.OK || !errors.Is(res.Err, types.ErrNotFound) {
		t.Errorf("remove missing: %v", res.Err)
	}
}

func TestUndoRestoresExactState(t *testing.T) {
	sh, done := newShard(t)
	defer done()
	sh.InitRoot()
	before := sh.Store().Snapshot()

	res := sh.Exec(sub(types.OpCreate, types.ActInsertEntry, types.RootInode, "f", 10, 0), 7)
	if !res.OK {
		t.Fatal(res.Err)
	}
	sh.ApplyUndo(res.Undo)
	after := sh.Store().Snapshot()
	if len(after) != len(before) {
		t.Fatalf("row count changed: %d -> %d", len(before), len(after))
	}
	if _, ok := sh.LookupEntry(types.RootInode, "f"); ok {
		t.Error("dentry survived undo")
	}
	// The parent size counter is compensated back; mtime intentionally is
	// not (commutative compensation does not roll back timestamps).
	root, _ := sh.GetInode(types.RootInode)
	if root.Size != 0 {
		t.Errorf("parent size=%d after undo, want 0", root.Size)
	}
}

func TestUndoCompensationPreservesConcurrentParentUpdates(t *testing.T) {
	// Two inserts into the same directory; undoing the FIRST must not
	// clobber the second's effect on the parent counter — this is why the
	// parent update is compensated rather than restored from before-image.
	sh, done := newShard(t)
	defer done()
	sh.InitRoot()
	res1 := sh.Exec(sub(types.OpCreate, types.ActInsertEntry, types.RootInode, "a", 10, 0), 1)
	res2 := sh.Exec(sub(types.OpCreate, types.ActInsertEntry, types.RootInode, "b", 11, 0), 2)
	if !res1.OK || !res2.OK {
		t.Fatal(res1.Err, res2.Err)
	}
	sh.ApplyUndo(res1.Undo)
	root, _ := sh.GetInode(types.RootInode)
	if root.Size != 1 {
		t.Errorf("parent size=%d after undoing first insert, want 1 (second insert preserved)", root.Size)
	}
	if _, ok := sh.LookupEntry(types.RootInode, "b"); !ok {
		t.Error("second entry lost")
	}
	if _, ok := sh.LookupEntry(types.RootInode, "a"); ok {
		t.Error("first entry survived undo")
	}
}

func TestUndoRestoresDeletedRow(t *testing.T) {
	sh, done := newShard(t)
	defer done()
	sh.SeedInode(Inode{Ino: 10, Type: types.FileRegular, Nlink: 1})
	res := sh.Exec(sub(types.OpRemove, types.ActDecLink, 0, "", 10, 0), 0)
	if !res.OK || !res.Freed {
		t.Fatalf("declink: %+v", res)
	}
	if _, ok := sh.GetInode(10); ok {
		t.Fatal("inode not freed")
	}
	sh.ApplyUndo(res.Undo)
	in, ok := sh.GetInode(10)
	if !ok || in.Nlink != 1 {
		t.Errorf("undo did not restore inode: %+v %v", in, ok)
	}
}

func TestDecLinkOnDirUsesTwoLinks(t *testing.T) {
	sh, done := newShard(t)
	defer done()
	sh.SeedInode(Inode{Ino: 20, Type: types.FileDir, Nlink: 2})
	res := sh.Exec(sub(types.OpRmdir, types.ActDecLink, 0, "", 20, 0), 0)
	if !res.OK || !res.Freed {
		t.Errorf("rmdir declink should free dir with nlink=2: %+v", res)
	}
}

func TestRmdirNonEmptyFails(t *testing.T) {
	sh, done := newShard(t)
	defer done()
	sh.SeedInode(Inode{Ino: 20, Type: types.FileDir, Nlink: 2, Size: 3})
	res := sh.Exec(sub(types.OpRmdir, types.ActDecLink, 0, "", 20, 0), 0)
	if res.OK || !errors.Is(res.Err, types.ErrNotEmpty) {
		t.Errorf("rmdir non-empty: %+v", res)
	}
}

func TestLinkCycle(t *testing.T) {
	sh, done := newShard(t)
	defer done()
	sh.SeedInode(Inode{Ino: 10, Type: types.FileRegular, Nlink: 1})
	if res := sh.Exec(sub(types.OpLink, types.ActIncLink, 0, "", 10, 0), 0); !res.OK {
		t.Fatal(res.Err)
	}
	in, _ := sh.GetInode(10)
	if in.Nlink != 2 {
		t.Errorf("nlink=%d, want 2", in.Nlink)
	}
	if res := sh.Exec(sub(types.OpUnlink, types.ActDecLink, 0, "", 10, 0), 0); !res.OK || res.Freed {
		t.Errorf("unlink at nlink=2 must not free: %+v", res)
	}
	if res := sh.Exec(sub(types.OpUnlink, types.ActDecLink, 0, "", 10, 0), 0); !res.OK || !res.Freed {
		t.Errorf("unlink at nlink=1 must free: %+v", res)
	}
}

func TestIncLinkOnDirFails(t *testing.T) {
	sh, done := newShard(t)
	defer done()
	sh.SeedInode(Inode{Ino: 20, Type: types.FileDir, Nlink: 2})
	res := sh.Exec(sub(types.OpLink, types.ActIncLink, 0, "", 20, 0), 0)
	if res.OK || !errors.Is(res.Err, types.ErrIsDir) {
		t.Errorf("link on dir: %+v", res)
	}
}

func TestStatAndLookup(t *testing.T) {
	sh, done := newShard(t)
	defer done()
	sh.SeedInode(Inode{Ino: 10, Type: types.FileRegular, Nlink: 1, Size: 99})
	sh.SeedDentry(1, "f", 10)

	res := sh.Exec(sub(types.OpStat, types.ActReadInode, 0, "", 10, 0), 0)
	if !res.OK || res.Inode.Size != 99 {
		t.Errorf("stat: %+v", res)
	}
	res = sh.Exec(sub(types.OpLookup, types.ActReadEntry, 1, "f", 0, 0), 0)
	if !res.OK || res.Inode.Ino != 10 {
		t.Errorf("lookup: %+v", res)
	}
	if res.Undo != nil && !res.Undo.Empty() {
		t.Error("read produced an undo")
	}
}

func TestTouchInode(t *testing.T) {
	sh, done := newShard(t)
	defer done()
	sh.SeedInode(Inode{Ino: 10, Type: types.FileRegular, Nlink: 1})
	res := sh.Exec(sub(types.OpSetAttr, types.ActTouchInode, 0, "", 10, 0), 1234)
	if !res.OK {
		t.Fatal(res.Err)
	}
	in, _ := sh.GetInode(10)
	if in.Mtime != 1234 {
		t.Errorf("mtime=%d", in.Mtime)
	}
}

func TestInodeCodecRoundTrip(t *testing.T) {
	f := func(ino uint64, nlink uint32, size, ct, mt uint64, isDir bool) bool {
		ft := types.FileRegular
		if isDir {
			ft = types.FileDir
		}
		in := Inode{Ino: types.InodeID(ino), Type: ft, Nlink: nlink, Size: size, Ctime: ct, Mtime: mt}
		got, err := decodeInode(encodeInode(in))
		return err == nil && got == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPlacementDeterministicAndInRange(t *testing.T) {
	pl := Placement{Servers: 8}
	f := func(parent uint64, name string) bool {
		a := pl.CoordinatorFor(types.InodeID(parent), name)
		b := pl.CoordinatorFor(types.InodeID(parent), name)
		return a == b && a >= 0 && int(a) < pl.Servers
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPlacementSpreadsEntries(t *testing.T) {
	pl := Placement{Servers: 8}
	counts := make(map[types.NodeID]int)
	for i := 0; i < 8000; i++ {
		counts[pl.CoordinatorFor(types.RootInode, fmt.Sprintf("file%06d", i))]++
	}
	for srv := 0; srv < pl.Servers; srv++ {
		c := counts[types.NodeID(srv)]
		if c < 500 || c > 1500 {
			t.Errorf("server %d got %d/8000 entries; placement badly skewed", srv, c)
		}
	}
}

func TestInodeAllocTargetsServer(t *testing.T) {
	pl := Placement{Servers: 5}
	al := NewInodeAlloc(pl, 1000)
	seen := make(map[types.InodeID]bool)
	for srv := 0; srv < pl.Servers; srv++ {
		for i := 0; i < 20; i++ {
			ino := al.Next(types.NodeID(srv))
			if pl.ParticipantFor(ino) != types.NodeID(srv) {
				t.Fatalf("ino %d placed on %v, want %d", ino, pl.ParticipantFor(ino), srv)
			}
			if seen[ino] {
				t.Fatalf("duplicate inode %d", ino)
			}
			seen[ino] = true
		}
	}
}

func TestRowKeyMatchesExecRows(t *testing.T) {
	sh, done := newShard(t)
	defer done()
	s := sub(types.OpCreate, types.ActAddInode, 0, "", 77, types.FileRegular)
	res := sh.Exec(s, 0)
	if !res.OK {
		t.Fatal(res.Err)
	}
	want := RowKey(types.InodeKey(77))
	if len(res.Rows) != 1 || res.Rows[0] != want {
		t.Errorf("rows=%v, want [%s]", res.Rows, want)
	}
}

func TestListDirScansOnlyTargetDirectory(t *testing.T) {
	sh, done := newShard(t)
	defer done()
	sh.SeedDentry(1, "a", 10)
	sh.SeedDentry(1, "b", 11)
	sh.SeedDentry(2, "c", 12)
	sh.SeedInode(Inode{Ino: 10, Type: types.FileRegular, Nlink: 1})
	entries := sh.ListDir(1)
	if len(entries) != 2 {
		t.Fatalf("entries=%v", entries)
	}
	if entries[0].Name != "a" || entries[1].Name != "b" {
		t.Errorf("not sorted: %v", entries)
	}
	if entries[0].Ino != 10 || entries[1].Ino != 11 {
		t.Errorf("inos wrong: %v", entries)
	}
	if got := sh.ListDir(99); len(got) != 0 {
		t.Errorf("empty dir listed %v", got)
	}
}

func TestFsckRecomputesDirSizes(t *testing.T) {
	sh, done := newShard(t)
	defer done()
	sh.SeedInode(Inode{Ino: 5, Type: types.FileDir, Nlink: 2, Size: 99}) // wrong count
	sh.SeedDentry(5, "x", 10)
	sh.SeedDentry(5, "y", 11)
	sh.SeedInode(Inode{Ino: 10, Type: types.FileRegular, Nlink: 1})
	fixed := sh.Fsck()
	if fixed != 1 {
		t.Errorf("fixed=%d, want 1", fixed)
	}
	in, _ := sh.GetInode(5)
	if in.Size != 2 {
		t.Errorf("dir size=%d, want 2", in.Size)
	}
	if sh.Fsck() != 0 {
		t.Error("second fsck found drift")
	}
}

func TestInstallImagesRedoAndUndo(t *testing.T) {
	sh, done := newShard(t)
	defer done()
	sh.InitRoot()
	res := sh.Exec(sub(types.OpCreate, types.ActInsertEntry, types.RootInode, "img", 10, 0), 3)
	if !res.OK || len(res.Before) != 1 || len(res.After) != 1 {
		t.Fatalf("images missing: %+v", res)
	}
	// Undo via before-image.
	sh.InstallImages(res.Before)
	if _, ok := sh.LookupEntry(types.RootInode, "img"); ok {
		t.Error("before-image install did not remove the entry")
	}
	// Redo via after-image (idempotent).
	sh.InstallImages(res.After)
	sh.InstallImages(res.After)
	if ino, ok := sh.LookupEntry(types.RootInode, "img"); !ok || ino != 10 {
		t.Errorf("after-image install: %d %v", ino, ok)
	}
	// Empty keys are skipped.
	sh.InstallImages([]types.RowImage{{Key: "", Val: []byte("junk")}})
}

func TestUndoHelpers(t *testing.T) {
	var nilUndo *Undo
	if !nilUndo.Empty() {
		t.Error("nil undo not empty")
	}
	if nilUndo.Keys() != nil {
		t.Error("nil undo has keys")
	}
	sh, done := newShard(t)
	defer done()
	sh.InitRoot()
	res := sh.Exec(sub(types.OpCreate, types.ActInsertEntry, types.RootInode, "u", 10, 0), 0)
	if res.Undo.Empty() {
		t.Error("mutating op produced empty undo")
	}
	keys := res.Undo.Keys()
	if len(keys) < 2 { // dentry row + parent adjust row
		t.Errorf("undo keys=%v", keys)
	}
}

func TestRowKeyBothKinds(t *testing.T) {
	if RowKey(types.DentryKey(7, "f")) != "d/7/f" {
		t.Errorf("dentry row key: %s", RowKey(types.DentryKey(7, "f")))
	}
	if RowKey(types.InodeKey(42)) != "i/42" {
		t.Errorf("inode row key: %s", RowKey(types.InodeKey(42)))
	}
	defer func() {
		if recover() == nil {
			t.Error("invalid ObjKey did not panic")
		}
	}()
	RowKey(types.ObjKey{})
}

func TestExecFailurePathsProduceNoImages(t *testing.T) {
	sh, done := newShard(t)
	defer done()
	res := sh.Exec(sub(types.OpRemove, types.ActRemoveEntry, 1, "nope", 0, 0), 0)
	if res.OK || len(res.Before) != 0 || len(res.After) != 0 {
		t.Errorf("failed op produced images: %+v", res)
	}
	res = sh.Exec(types.SubOp{Action: types.SubOpAction(99)}, 0)
	if res.OK {
		t.Error("unknown action succeeded")
	}
}

// TestRowKeyBuilders pins the strconv-based key builders to the historical
// Sprintf format: durable stores written by earlier versions must keep
// resolving, so the key layout is a compatibility surface, not a detail.
func TestRowKeyBuilders(t *testing.T) {
	cases := []struct {
		dir  types.InodeID
		name string
	}{
		{0, ""}, {1, "f"}, {types.RootInode, "a b/c"}, {1<<63 + 7, "x"},
	}
	for _, c := range cases {
		if got, want := dentryRow(c.dir, c.name), fmt.Sprintf("d/%d/%s", uint64(c.dir), c.name); got != want {
			t.Errorf("dentryRow(%d,%q) = %q, want %q", c.dir, c.name, got, want)
		}
	}
	for _, ino := range []types.InodeID{0, 1, types.RootInode, 1<<64 - 1} {
		if got, want := inodeRow(ino), fmt.Sprintf("i/%d", uint64(ino)); got != want {
			t.Errorf("inodeRow(%d) = %q, want %q", ino, got, want)
		}
	}
}

// TestRowKeySingleAlloc keeps the builders honest: the inode key is one
// string allocation; the dentry key pays at most a scratch buffer plus the
// string (its capacity depends on len(name), so the buffer can't live on
// the stack). Sprintf paid double that plus interface boxing.
func TestRowKeySingleAlloc(t *testing.T) {
	if a := testing.AllocsPerRun(200, func() { _ = dentryRow(12345, "file-0001") }); a > 2 {
		t.Errorf("dentryRow allocates %.1f objects, want <=2", a)
	}
	if a := testing.AllocsPerRun(200, func() { _ = inodeRow(12345) }); a > 1 {
		t.Errorf("inodeRow allocates %.1f objects, want <=1", a)
	}
}

package harness

import (
	"fmt"
	"runtime"
	"time"

	"cxfs/internal/cluster"
	"cxfs/internal/stats"
	"cxfs/internal/trace"
)

// The BENCH trajectory: each PR that touches a hot path commits a
// BENCH_<n>.json produced by ReplayBench, and CI diffs the candidate run
// against the committed artifact. Two metrics with different trust levels:
//
//   - allocs/op is a property of the code, not the machine — it is stable
//     across runners and regressions in it are hard CI failures;
//   - ops/s (wall-clock) depends on the host, so CI only annotates when it
//     moves; the committed values still chart the trajectory on the
//     reference machine.

// BenchSeed is one seed's replay measurement.
type BenchSeed struct {
	Seed        int64         `json:"seed"`
	Ops         int           `json:"ops"`
	WallMS      float64       `json:"wall_ms"`
	OpsPerSec   float64       `json:"ops_per_sec"`
	AllocsPerOp float64       `json:"allocs_per_op"`
	VirtualTime time.Duration `json:"virtual_ns"`
	Messages    uint64        `json:"messages"`
}

// BenchResult is the committed BENCH_*.json payload.
type BenchResult struct {
	Workload        string      `json:"workload"`
	Scale           float64     `json:"scale"`
	Servers         int         `json:"servers"`
	Protocol        string      `json:"protocol"`
	GoVersion       string      `json:"go_version"`
	Seeds           []BenchSeed `json:"seeds"`
	MeanOpsPerSec   float64     `json:"mean_ops_per_sec"`
	MeanAllocsPerOp float64     `json:"mean_allocs_per_op"`
}

// DefaultBenchSeeds is the fixed seed matrix of the trajectory. Committed
// artifacts and CI candidates must use the same matrix or the comparison is
// meaningless.
var DefaultBenchSeeds = []int64{1, 2, 3, 5, 8}

// ReplayBench replays one workload once per seed on the Cx cluster and
// measures wall-clock throughput and allocations per operation. The
// simulation's virtual-time results (latency, messages) are deterministic
// per seed; the wall-clock and allocation numbers measure the simulator
// itself — the thing the hot-path work optimizes.
func ReplayBench(cfg Config, workload string, seeds []int64) BenchResult {
	out := BenchResult{
		Workload:  workload,
		Scale:     cfg.Scale,
		Servers:   cfg.Servers,
		Protocol:  string(cluster.ProtoCx),
		GoVersion: runtime.Version(),
	}
	p, err := trace.ProfileByName(workload)
	if err != nil {
		panic(err)
	}
	var sumOps, sumAllocs float64
	for _, seed := range seeds {
		tr := trace.Generate(p, cfg.Scale, seed)
		o := cluster.DefaultOptions(cfg.Servers, cluster.ProtoCx)
		o.ClientHosts = 16
		o.ProcsPerHost = 8
		o.Seed = seed
		o.Obs = cfg.Obs
		c := cluster.MustNew(o)

		var m0, m1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&m0)
		t0 := time.Now()
		res := (&trace.Replayer{Trace: tr, C: c}).Run()
		wall := time.Since(t0)
		runtime.ReadMemStats(&m1)
		c.Shutdown()

		row := BenchSeed{
			Seed:        seed,
			Ops:         res.Ops,
			WallMS:      float64(wall.Microseconds()) / 1e3,
			OpsPerSec:   float64(res.Ops) / wall.Seconds(),
			AllocsPerOp: float64(m1.Mallocs-m0.Mallocs) / float64(res.Ops),
			VirtualTime: res.ReplayTime,
			Messages:    res.Messages,
		}
		out.Seeds = append(out.Seeds, row)
		sumOps += row.OpsPerSec
		sumAllocs += row.AllocsPerOp
	}
	n := float64(len(seeds))
	out.MeanOpsPerSec = sumOps / n
	out.MeanAllocsPerOp = sumAllocs / n
	return out
}

// Table renders the bench result for terminal output.
func (b BenchResult) Table() *stats.Table {
	tbl := stats.NewTable(
		fmt.Sprintf("Replay bench: %s @ scale %g, %d servers, %s",
			b.Workload, b.Scale, b.Servers, b.Protocol),
		"Seed", "Ops", "Wall", "Ops/s", "Allocs/op", "Virtual", "Msgs")
	for _, s := range b.Seeds {
		tbl.Add(fmt.Sprint(s.Seed), s.Ops,
			time.Duration(s.WallMS*1e6).Round(time.Millisecond),
			fmt.Sprintf("%.0f", s.OpsPerSec),
			fmt.Sprintf("%.1f", s.AllocsPerOp),
			s.VirtualTime.Round(time.Millisecond), s.Messages)
	}
	tbl.Add("mean", "", "", fmt.Sprintf("%.0f", b.MeanOpsPerSec),
		fmt.Sprintf("%.1f", b.MeanAllocsPerOp), "", "")
	return tbl
}

package cxfs_test

import (
	"fmt"

	cxfs "cxfs"
)

// The quickstart: a 4-server Cx cluster, a few metadata operations, and the
// consistency check. Simulated time is deterministic, so the output is
// stable.
func ExampleNew() {
	fs := cxfs.New(cxfs.Options{Servers: 4, Protocol: cxfs.Cx, Seed: 1})
	defer fs.Close()

	fs.Run(func(ctx *cxfs.Ctx) {
		dir, _ := ctx.Mkdir(cxfs.Root, "project")
		ino, _ := ctx.Create(dir, "main.go")
		attr, _ := ctx.Stat(ino)
		fmt.Printf("nlink=%d\n", attr.Nlink)
		entries, _ := ctx.Readdir(dir)
		fmt.Printf("entries=%d\n", len(entries))
	})
	fmt.Printf("consistent=%v\n", len(fs.CheckConsistency()) == 0)
	// Output:
	// nlink=1
	// entries=1
	// consistent=true
}

// Running the same workload under the paper's baseline protocols needs only
// a different Options.Protocol; here serial execution (plain OrangeFS).
func ExampleOptions() {
	fs := cxfs.New(cxfs.Options{Servers: 2, Protocol: cxfs.SE, Seed: 1})
	defer fs.Close()
	fs.Run(func(ctx *cxfs.Ctx) {
		ino, err := ctx.Create(cxfs.Root, "se-file")
		fmt.Printf("created=%v err=%v\n", ino != 0, err)
	})
	// Output:
	// created=true err=<nil>
}

// RunN drives many concurrent application processes; CxStats exposes what
// the protocol did underneath.
func ExampleFS_RunN() {
	fs := cxfs.New(cxfs.Options{Servers: 4, Protocol: cxfs.Cx, Seed: 1})
	defer fs.Close()
	fs.RunN(4, func(ctx *cxfs.Ctx, i int) {
		for j := 0; j < 5; j++ {
			ctx.Create(cxfs.Root, fmt.Sprintf("f-%d-%d", i, j))
		}
	})
	st := fs.CxStats()
	// 15 of the 20 creates were cross-server (the rest landed colocated
	// and committed locally); determinism makes the count stable.
	fmt.Printf("committed=%d aborted=%d\n", st.OpsCommitted, st.OpsAborted)
	// Output:
	// committed=15 aborted=0
}

package kvstore

import (
	"fmt"
	"testing"
	"testing/quick"

	"cxfs/internal/simrt"
)

// TestShardOfStableAndBounded pins the shard hash: in range, and a fixed
// function of the key (sharding must not drift between runs, or durable
// snapshots taken across versions would disagree on layout assumptions).
func TestShardOfStableAndBounded(t *testing.T) {
	if err := quick.Check(func(key string) bool {
		s := shardOf(key)
		return s >= 0 && s < NumShards && s == shardOf(key)
	}, nil); err != nil {
		t.Error(err)
	}
}

// TestShardDistribution feeds the two real row-key shapes (d/<dir>/<name>
// and i/<ino>) through the hash and checks no shard hoards the keys: a
// degenerate hash would quietly recreate the single-map bottleneck.
func TestShardDistribution(t *testing.T) {
	var counts [NumShards]int
	n := 0
	for dir := 0; dir < 8; dir++ {
		for f := 0; f < 256; f++ {
			counts[shardOf(fmt.Sprintf("d/%d/f%04d", dir, f))]++
			counts[shardOf(fmt.Sprintf("i/%d", dir*1000+f))]++
			n += 2
		}
	}
	want := n / NumShards
	for s, c := range counts {
		if c > 3*want {
			t.Errorf("shard %d holds %d of %d keys (mean %d): pathological skew", s, c, n, want)
		}
		if c == 0 {
			t.Errorf("shard %d received no keys", s)
		}
	}
}

// TestShardedImagesBehaveAsOneStore drives the full volatile/durable life
// cycle across keys that land on different shards and checks the Store's
// observable behavior is exactly what the single-map version gave.
func TestShardedImagesBehaveAsOneStore(t *testing.T) {
	withStore(t, func(p *simrt.Proc, st *Store) {
		testShardedImages(t, p, st)
	})
}

func testShardedImages(t *testing.T, p *simrt.Proc, st *Store) {
	keys := make([]string, 64)
	for i := range keys {
		keys[i] = fmt.Sprintf("d/%d/f%02d", i%4, i)
		st.Put(keys[i], []byte{byte(i)})
	}
	if st.Len() != 64 || st.DirtyCount() != 64 {
		t.Fatalf("Len=%d Dirty=%d, want 64/64", st.Len(), st.DirtyCount())
	}
	if n := st.FlushDirty(p); n != 64 {
		t.Fatalf("flushed %d pages, want 64", n)
	}
	if st.DirtyCount() != 0 {
		t.Fatalf("dirty after flush: %d", st.DirtyCount())
	}
	// Post-flush mutations must vanish on crash, then recover durably.
	st.Put(keys[0], []byte{0xFF})
	st.Delete(keys[1])
	st.Crash()
	st.Recover()
	if v, ok := st.Get(keys[0]); !ok || v[0] != 0 {
		t.Errorf("key %q after crash = %v,%v; want durable image {0}", keys[0], v, ok)
	}
	if _, ok := st.Get(keys[1]); !ok {
		t.Errorf("key %q lost: delete was volatile and must not survive crash", keys[1])
	}
	snap := st.Snapshot()
	dur := st.DurableSnapshot()
	if len(snap) != 64 || len(dur) != 64 {
		t.Errorf("snapshots sized %d/%d, want 64/64", len(snap), len(dur))
	}
	for k, v := range snap {
		if string(dur[k]) != string(v) {
			t.Errorf("volatile and durable disagree on %q after recover", k)
		}
	}
}

package core

import (
	"cxfs/internal/namespace"
	"cxfs/internal/obs"
	"cxfs/internal/simrt"
	"cxfs/internal/types"
	"cxfs/internal/wal"
	"cxfs/internal/wire"
)

// handleSubOp is step 2 of the basic protocol: check for conflicts, execute,
// log the Result-Record, and answer YES/NO immediately.

func (s *Server) handleSubOp(p *simrt.Proc, m wire.Msg) {
	s.lastArrive = s.Sim.Now()
	sub := m.Sub
	// Duplicate suppression: a retried request for an operation still
	// pending here (or recently completed) is answered from the recorded
	// response, never re-executed.
	if cached, ok := s.replyCache[sub.Op]; ok {
		cached.To = m.From
		s.Send(cached)
		return
	}
	if co := s.pendingCoord[sub.Op]; co != nil && sub.Role == types.RoleCoordinator {
		if co.lastResp.Type != 0 { // recovery-rebuilt entries have no response yet
			s.Send(co.lastResp)
		}
		return
	}
	if po := s.pendingPart[sub.Op]; po != nil && sub.Role == types.RoleParticipant {
		if po.lastResp.Type != 0 {
			s.Send(po.lastResp)
		}
		return
	}
	if s.blockedOf[sub.Op] != nil {
		return // original request is parked; its response will come
	}
	if s.localInflight[sub.Op] {
		// A duplicate delivery (network dup, or a retransmission racing the
		// original) while the first copy is still executing: the pending
		// entry registers only after the Result-Record append, so none of
		// the guards above catch this window, and the active-object check
		// below exempts same-process ops. Re-executing would double-apply
		// the sub-op; drop the copy — the original answers, and later
		// retries hit the pending entry or the reply cache.
		return
	}
	if s.tombstones[sub.Op] {
		// The operation was aborted before this sub-op arrived (immediate
		// commitment raced the request). Refuse execution.
		s.Send(wire.Msg{Type: wire.MsgSubOpResp, To: m.From, Op: sub.Op, OK: false,
			Err: types.ErrAborted.Error(), Epoch: 1})
		return
	}
	if key, ok := conflictKey(sub); ok {
		if holder, held := s.active[key]; held && holder.Proc != sub.Op.Proc {
			s.block(m, holder, 1)
			return
		}
	}
	s.execSubOp(p, m, types.NilOp, 1)
}

// block parks a sub-op behind the pending operation holding its object and
// launches an immediate commitment for that operation (§III.C step 2).
func (s *Server) block(m wire.Msg, holder types.OpID, epoch uint32) {
	s.stats.Conflicts++
	if s.cfg.Obs.TraceOn() {
		s.cfg.Obs.Emit(s.Sim.Now(), int(s.ID), m.Sub.Op, obs.PhaseConflictOrdered,
			"behind "+holder.String())
	}
	br := &blockedReq{msg: m, holder: holder, epoch: epoch}
	s.waiters[holder] = append(s.waiters[holder], br)
	if m.Sub.Kind.CrossServer() {
		s.blockedOf[m.Sub.Op] = br
		// A vote handler may be parked waiting for this sub-op to arrive;
		// wake it so it can see the blocked state and apply the conflict
		// rules instead of timing out.
		s.fire(s.arrivalSig, m.Sub.Op)
	}
	s.requestCommit(holder, false)
}

// unblock removes a parked request from its queues.
func (s *Server) unblock(br *blockedReq) {
	ws := s.waiters[br.holder]
	for i, w := range ws {
		if w == br {
			s.waiters[br.holder] = append(ws[:i:i], ws[i+1:]...)
			break
		}
	}
	if br.msg.Sub.Kind.CrossServer() {
		if s.blockedOf[br.msg.Sub.Op] == br {
			delete(s.blockedOf, br.msg.Sub.Op)
		}
	}
}

// execSubOp executes one sub-op, logs it, registers pending state, and
// replies with the conflict hint and execution epoch.
func (s *Server) execSubOp(p *simrt.Proc, m wire.Msg, hint types.OpID, epoch uint32) {
	sub := m.Sub
	if s.localInflight[sub.Op] {
		return // a copy of this sub-op is already mid-execution
	}
	s.localInflight[sub.Op] = true
	defer delete(s.localInflight, sub.Op)
	boot := s.Boot()
	execStart := s.Sim.Now()
	s.ExecCPU(p)
	if s.Gone(boot) {
		// Crashed (or crashed and rebooted) during the CPU charge: the
		// volatile image this execution would write to is gone.
		return
	}
	res := s.Shard.Exec(sub, s.NowNanos())
	if s.cfg.Obs.TraceOn() {
		s.cfg.Obs.Span(execStart, s.Sim.Now()-execStart, int(s.ID), sub.Op,
			obs.PhaseExec, sub.Kind.String()+"/"+sub.Role.String())
	}
	cross := sub.Kind.CrossServer()

	// The object becomes active the moment the execution lands in memory —
	// BEFORE the synchronous Result-Record append — so a sub-op arriving
	// during the (milliseconds-long) log write still sees the conflict.
	// The pending entry itself registers only after the record is durable,
	// because votes must never report a result that could vanish in a
	// crash.
	if cross && res.OK {
		s.hold(sub)
	}
	if s.CrashPoint(CPExecProvisional, sub.Op) {
		return
	}

	if cross || sub.Action.Mutating() {
		rec := wal.Record{Type: wal.RecResult, Op: sub.Op, Role: sub.Role,
			OK: res.OK, Sub: sub, Before: res.Before, After: res.After}
		if cross {
			rec.Peer, rec.HasPeer = m.Peer, true
		}
		appendStart := s.Sim.Now()
		s.WAL.Append(p, rec)
		if s.CrashPoint(CPExecAppend, sub.Op) || s.Gone(boot) {
			return
		}
		if s.cfg.Obs.TraceOn() {
			s.cfg.Obs.Span(appendStart, s.Sim.Now()-appendStart, int(s.ID), sub.Op,
				obs.PhaseAppend, "result-record")
		}
	}

	if cross && s.tombstones[sub.Op] {
		// The operation was aborted while this execution was in flight —
		// typically a vote handler timed out waiting for this very sub-op
		// (mid-append, arrivalSig not yet fired) and promised NO to the
		// coordinator. Honor that promise: the execution must not become
		// visible, or the client could complete an operation the cluster
		// has already aborted. Undo the effects, seal the abort in the log
		// so recovery agrees, and answer aborted.
		if res.OK {
			rows := s.rollback(res.Undo, res.Before)
			s.releaseKeys(sub, sub.Op)
			s.WAL.AppendBatchPriority(p, []wal.Record{{Type: wal.RecAbort, Op: sub.Op, Role: sub.Role}})
			s.flushQ = append(s.flushQ, flushEntry{id: sub.Op, rows: rows})
			if s.Crashed() {
				return
			}
		}
		s.Send(wire.Msg{Type: wire.MsgSubOpResp, To: m.From, Op: sub.Op,
			OK: false, Err: types.ErrAborted.Error(), Epoch: epoch})
		return
	}

	switch {
	case cross && sub.Role == types.RoleCoordinator:
		co := &coordOp{
			id: sub.Op, sub: sub, ok: res.OK, undo: res.Undo, rows: res.Rows,
			participant: m.Peer, client: m.From, epoch: epoch, reqMsg: m,
		}
		s.pendingCoord[sub.Op] = co
		if we, want := s.wantCommit[sub.Op]; want {
			delete(s.wantCommit, sub.Op)
			s.requestCommit(sub.Op, we.lcom)
		} else if s.cfg.Threshold > 0 && len(s.pendingCoord) >= s.cfg.Threshold {
			s.stats.LazyBatches++ // threshold trigger counts as a lazy batch
			s.kick.Send(kickReq{lazy: true})
		}
	case cross && sub.Role == types.RoleParticipant:
		po := &partOp{
			id: sub.Op, sub: sub, ok: res.OK, undo: res.Undo, rows: res.Rows,
			coordinator: m.Peer, client: m.From, epoch: epoch, reqMsg: m,
			since: s.Sim.Now(),
		}
		s.pendingPart[sub.Op] = po
		// A conflicting request may have demanded this op's commitment
		// while the Result-Record append was in flight (the object was
		// already active); replay the remembered demand now that the
		// pending entry exists, so the C-NOTIFY reaches the coordinator.
		if we, want := s.wantCommit[sub.Op]; want {
			delete(s.wantCommit, sub.Op)
			s.requestCommit(sub.Op, we.lcom)
		}
		s.fire(s.arrivalSig, sub.Op)
	case sub.Action.Mutating():
		// Single-server update: logged above, flushed by the next batch.
		s.flushQ = append(s.flushQ, flushEntry{id: sub.Op, rows: res.Rows})
	}

	reply := wire.Msg{Type: wire.MsgSubOpResp, To: m.From, Op: sub.Op,
		OK: res.OK, Hint: hint, Epoch: epoch, Attr: res.Inode}
	if res.Err != nil {
		reply.Err = res.Err.Error()
	}
	// Record the response for duplicate suppression while pending.
	if cross {
		if sub.Role == types.RoleCoordinator {
			if co := s.pendingCoord[sub.Op]; co != nil {
				co.lastResp = reply
			}
		} else if po := s.pendingPart[sub.Op]; po != nil {
			po.lastResp = reply
		}
	}
	if s.cfg.Obs.TraceOn() {
		detail := "yes"
		if !res.OK {
			detail = "no"
		}
		s.cfg.Obs.Emit(s.Sim.Now(), int(s.ID), sub.Op, obs.PhaseReply, detail)
	}
	if s.CrashPoint(CPExecBeforeReply, sub.Op) {
		return
	}
	s.Send(reply)
	s.CrashPoint(CPExecAfterReply, sub.Op)
}

// hold marks the sub-op's conflict key active. A dentry becoming active
// also revokes any read leases on it: the cached value may be stale the
// moment this execution commits.
func (s *Server) hold(sub types.SubOp) {
	if key, ok := conflictKey(sub); ok {
		s.active[key] = sub.Op
	}
	switch sub.Action {
	case types.ActInsertEntry, types.ActRemoveEntry:
		s.revokeLeases(sub.Parent, sub.Name, sub.Op)
	}
}

// releaseKeys clears every active entry held by op.
func (s *Server) releaseKeys(sub types.SubOp, op types.OpID) {
	if key, ok := conflictKey(sub); ok {
		if s.active[key] == op {
			delete(s.active, key)
		}
	}
}

// completeOp finishes one operation on this server: the object becomes
// inactive, blocked followers re-dispatch with this op as their conflict
// hint, and vote handlers parked on the completion are woken.
func (s *Server) completeOp(op types.OpID, sub types.SubOp) {
	s.releaseKeys(sub, op)
	ws := s.waiters[op]
	delete(s.waiters, op)
	for _, br := range ws {
		br := br
		if br.msg.Sub.Kind.CrossServer() {
			if s.blockedOf[br.msg.Sub.Op] == br {
				delete(s.blockedOf, br.msg.Sub.Op)
			}
		}
		s.Sim.Spawn("cx/redispatch", func(p *simrt.Proc) {
			s.redispatch(p, br, op)
		})
	}
	s.fire(s.completeSig, op)
	delete(s.wantCommit, op)
}

// redispatch re-runs a released sub-op: it may conflict again with a newer
// holder, be dead (tombstoned by an abort), or execute with the released
// operation as its hint.
func (s *Server) redispatch(p *simrt.Proc, br *blockedReq, released types.OpID) {
	if s.Crashed() {
		return
	}
	sub := br.msg.Sub
	if s.tombstones[sub.Op] {
		return // its operation was aborted while it was parked
	}
	if key, ok := conflictKey(sub); ok {
		if holder, held := s.active[key]; held && holder.Proc != sub.Op.Proc {
			br.holder = holder
			s.waiters[holder] = append(s.waiters[holder], br)
			if sub.Kind.CrossServer() {
				s.blockedOf[sub.Op] = br
				s.fire(s.arrivalSig, sub.Op)
			}
			s.requestCommit(holder, false)
			return
		}
	}
	if br.msg.Type == wire.MsgOpReq {
		// A blocked colocated compound op re-runs through the local path.
		s.handleLocalOp(p, br.msg)
		return
	}
	if br.msg.Type == wire.MsgLookupReq {
		// A parked leased read re-resolves now that the holder committed.
		s.handleLookup(p, br.msg)
		return
	}
	s.execSubOp(p, br.msg, released, br.epoch)
}

// invalidate undoes an executed-but-uncommitted operation at this server
// (§III.C step 4): its effects roll back, an Invalidate-Record is logged,
// its client is notified that the earlier response is void, and the sub-op
// re-queues behind afterOp with a bumped epoch.
func (s *Server) invalidate(p *simrt.Proc, victim types.OpID, afterOp types.OpID) bool {
	var sub types.SubOp
	var undo *undoRef
	if po := s.pendingPart[victim]; po != nil && !po.committing {
		sub = po.sub
		undo = &undoRef{u: po.undo, imgs: po.beforeImgs, ok: po.ok, epoch: po.epoch, req: po.reqMsg, client: po.client}
		delete(s.pendingPart, victim)
	} else if co := s.pendingCoord[victim]; co != nil && !co.committing {
		sub = co.sub
		undo = &undoRef{u: co.undo, imgs: co.beforeImgs, ok: co.ok, epoch: co.epoch, req: co.reqMsg, client: co.client}
		delete(s.pendingCoord, victim)
	} else {
		return false
	}
	s.stats.Invalidations++
	if s.cfg.Obs.TraceOn() {
		// invalidate is only reached from the Enforce branch of vote
		// resolution, so it marks the disordered-conflict path of §III.C.
		now := s.Sim.Now()
		s.cfg.Obs.Emit(now, int(s.ID), victim, obs.PhaseConflictDisordered,
			"enforced after "+afterOp.String())
		s.cfg.Obs.Emit(now, int(s.ID), victim, obs.PhaseInvalidate, sub.Kind.String())
	}
	if undo.ok {
		s.rollback(undo.u, undo.imgs)
	}
	s.releaseKeys(sub, victim)
	s.WAL.AppendBatchPriority(p, []wal.Record{{Type: wal.RecInvalidate, Op: victim, Role: sub.Role}})
	if s.CrashPoint(CPInvalidateMid, victim) {
		return false
	}
	newEpoch := undo.epoch + 1
	// Invalidation notice: the client must not complete the operation on the
	// superseded response; a fresh response follows after re-execution.
	s.Send(wire.Msg{Type: wire.MsgSubOpResp, To: undo.client, Op: victim,
		OK: false, Err: types.ErrInvalidated.Error(), Hint: afterOp, Epoch: newEpoch})
	br := &blockedReq{msg: undo.req, holder: afterOp, epoch: newEpoch}
	s.waiters[afterOp] = append(s.waiters[afterOp], br)
	s.blockedOf[victim] = br
	return true
}

// undoRef carries what invalidate needs from either pending table.
type undoRef struct {
	u      *namespace.Undo
	imgs   []types.RowImage
	ok     bool
	epoch  uint32
	req    wire.Msg
	client types.NodeID
}

// handleLocalOp executes an operation whose coordinator and participant
// placements landed on the same server (or a single-server compound). Both
// sub-ops run locally as one transaction: Result-Records and a Commit-Record
// land in one batched append, the rows flush with the next lazy batch.
//
// At-most-once for retrying clients: a completed operation answers from the
// reply cache; a duplicate of one still executing (inflight) or parked
// behind a conflict (blockedOf) or being re-driven by recovery
// (pendingCoord) is dropped — the original owns the eventual reply.
func (s *Server) handleLocalOp(p *simrt.Proc, m wire.Msg) {
	op := m.FullOp
	if op.Kind == types.OpReaddir {
		s.ServeReaddir(m)
		return
	}
	if op.Kind.Mutating() {
		if cached, ok := s.replyCache[op.ID]; ok {
			cached.To = m.From
			s.Send(cached)
			return
		}
		if s.localInflight[op.ID] || s.blockedOf[op.ID] != nil || s.pendingCoord[op.ID] != nil {
			return
		}
	}
	s.runLocalOp(p, m)
}

// runLocalOp is handleLocalOp past the duplicate gate; redispatch of a
// previously parked OpReq re-enters here through handleLocalOp (its gate
// entries were cleared on release).
func (s *Server) runLocalOp(p *simrt.Proc, m wire.Msg) {
	boot := s.Boot()
	op := m.FullOp
	if op.Kind.Mutating() {
		s.localInflight[op.ID] = true
		defer delete(s.localInflight, op.ID)
	}
	if op.Kind == types.OpRename {
		s.handleRename(p, m)
		return
	}
	var recs []wal.Record
	var rows []string
	reply := wire.Msg{Type: wire.MsgOpResp, To: m.From, Op: op.ID, OK: true}

	if op.Kind.CrossServer() {
		cSub, pSub := types.Split(op)
		// Local conflict check still applies: this op must not read or
		// overwrite another process's uncommitted objects.
		for _, sub := range []types.SubOp{cSub, pSub} {
			if key, ok := conflictKey(sub); ok {
				if holder, held := s.active[key]; held && holder.Proc != op.ID.Proc {
					s.block(wire.Msg{Type: wire.MsgOpReq, From: m.From, To: s.ID, Op: op.ID, FullOp: op, Sub: sub}, holder, 1)
					return
				}
			}
		}
		s.ExecCPU(p)
		if s.Gone(boot) {
			return
		}
		resC := s.Shard.Exec(cSub, s.NowNanos())
		var resP namespaceResult
		if resC.OK {
			r := s.Shard.Exec(pSub, s.NowNanos())
			resP = namespaceResult{ok: r.OK, err: r.Err, rows: r.Rows, before: r.Before, after: r.After}
			if !r.OK {
				s.Shard.ApplyUndo(resC.Undo)
			}
		}
		if !resC.OK || !resP.ok {
			reply.OK = false
			if resC.Err != nil {
				reply.Err = resC.Err.Error()
			} else if resP.err != nil {
				reply.Err = resP.err.Error()
			}
			s.Send(reply)
			return
		}
		// The colocated path never marks objects active (it commits in one
		// batched append below), but the dentry mutation still voids leases.
		switch cSub.Action {
		case types.ActInsertEntry, types.ActRemoveEntry:
			s.revokeLeases(cSub.Parent, cSub.Name, op.ID)
		}
		recs = append(recs,
			wal.Record{Type: wal.RecResult, Op: op.ID, Role: types.RoleCoordinator, OK: true, Sub: cSub, Before: resC.Before, After: resC.After},
			wal.Record{Type: wal.RecResult, Op: op.ID, Role: types.RoleParticipant, OK: true, Sub: pSub, Before: resP.before, After: resP.after},
			wal.Record{Type: wal.RecCommit, Op: op.ID, Role: types.RoleCoordinator},
		)
		rows = append(append(rows, resC.Rows...), resP.rows...)
	} else {
		// Single-server simple op routed as OpReq (reads use SubOpReq).
		sub := types.SingleSubOp(op)
		s.ExecCPU(p)
		if s.Gone(boot) {
			return
		}
		res := s.Shard.Exec(sub, s.NowNanos())
		reply.OK = res.OK
		reply.Attr = res.Inode
		if res.Err != nil {
			reply.Err = res.Err.Error()
		}
		if res.OK && sub.Action.Mutating() {
			recs = append(recs, wal.Record{Type: wal.RecResult, Op: op.ID, Role: types.RoleCoordinator, OK: true, Sub: sub, Before: res.Before, After: res.After})
			rows = res.Rows
		}
	}

	if len(recs) > 0 {
		s.WAL.AppendBatch(p, recs)
		if s.Gone(boot) {
			return
		}
		s.flushQ = append(s.flushQ, flushEntry{id: op.ID, rows: rows})
		// Durable state was created: retries must get this reply back, not
		// a re-execution (which would wrongly fail, e.g. with ErrExists).
		s.cacheReply(op.ID, reply)
	}
	s.Send(reply)
}

// namespaceResult mirrors the fields of namespace.Result used locally.
type namespaceResult struct {
	ok     bool
	err    error
	rows   []string
	before []types.RowImage
	after  []types.RowImage
}

package wal

import (
	"strings"
	"testing"
	"time"

	"cxfs/internal/disk"
	"cxfs/internal/simrt"
	"cxfs/internal/types"
)

// logImage builds the byte stream a coalesced group-commit write puts on the
// platter for three Result records plus a Commit record.
func logImage() ([]Record, []byte) {
	recs := []Record{
		resultRec(1, "alpha"),
		resultRec(2, "beta"),
		{Type: RecCommit, Op: opID(2), Role: types.RoleParticipant},
		resultRec(3, "gamma"),
	}
	return recs, EncodeAll(recs)
}

func TestScanBytesCleanStream(t *testing.T) {
	recs, buf := logImage()
	got, err := ScanBytes(buf)
	if err != nil {
		t.Fatalf("clean stream: %v", err)
	}
	if len(got) != len(recs) {
		t.Fatalf("got %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i].Type != recs[i].Type || got[i].Op != recs[i].Op {
			t.Errorf("record %d mangled: %v vs %v", i, got[i], recs[i])
		}
	}
}

func TestScanBytesTornFinalRecord(t *testing.T) {
	recs, buf := logImage()
	last := len(Encode(recs[len(recs)-1]))
	// Tear the batch tail at every truncation point inside the final record:
	// the intact prefix must always survive, the torn record never.
	for cut := 1; cut < last; cut++ {
		torn := buf[:len(buf)-cut]
		got, err := ScanBytes(torn)
		if err == nil {
			t.Fatalf("cut=%d: torn tail scanned without error", cut)
		}
		if len(got) != len(recs)-1 {
			t.Fatalf("cut=%d: got %d records, want %d (all but the torn one)", cut, len(got), len(recs)-1)
		}
	}
}

func TestScanBytesCorruptedChecksum(t *testing.T) {
	recs, buf := logImage()
	// Flip one byte inside the second record's payload.
	off := len(Encode(recs[0])) + 10
	corrupt := append([]byte(nil), buf...)
	corrupt[off] ^= 0xFF
	got, err := ScanBytes(corrupt)
	if err == nil {
		t.Fatal("corrupted record scanned without error")
	}
	if !strings.Contains(err.Error(), "checksum") && !strings.Contains(err.Error(), "truncated") && !strings.Contains(err.Error(), "stray") {
		t.Errorf("unexpected error kind: %v", err)
	}
	if len(got) != 1 {
		t.Errorf("got %d records before the corruption, want 1", len(got))
	}
	if got[0].Op != recs[0].Op {
		t.Errorf("surviving record mangled: %v", got[0])
	}
}

func TestScanBytesZeroFilledTail(t *testing.T) {
	_, buf := logImage()
	// A crash can leave preallocated zeros after the last durable record. A
	// zero length prefix decodes as a short record and must stop the scan
	// without dropping the durable prefix.
	padded := append(append([]byte(nil), buf...), make([]byte, 64)...)
	got, err := ScanBytes(padded)
	if err == nil {
		t.Fatal("zero tail scanned without error")
	}
	if len(got) != 4 {
		t.Errorf("durable prefix lost: got %d records, want 4", len(got))
	}
}

// TestRecoverAfterCrashMidGroupCommit drives the full WAL: a group-commit
// flush is cut down by a crash, the server reboots, and the recovery scan
// must return exactly the records that were durable before the crash —
// nothing from the in-flight window.
func TestRecoverAfterCrashMidGroupCommit(t *testing.T) {
	s := simrt.New(3)
	d := disk.New(s, "d", disk.DefaultParams())
	w := New(s, d, 0, 0)
	w.SetGroupCommit(100 * time.Microsecond)
	var recovered []Record
	// Wave 1 lands durably; wave 2 is mid-flush when the server dies.
	for i := 0; i < 3; i++ {
		client := types.NodeID(i)
		s.Spawn("wave1", func(p *simrt.Proc) {
			w.Append(p, procRec(client, 1))
		})
	}
	s.SpawnAfter(20*time.Millisecond, "wave2", func(p *simrt.Proc) {
		w.Append(p, procRec(7, 2))
	})
	s.SpawnAfter(20*time.Millisecond+200*time.Microsecond, "crash-reboot", func(p *simrt.Proc) {
		// 200µs in: wave 2's linger has expired and its write is on the
		// platter (a write needs ≥2ms to settle).
		w.Crash()
		p.Sleep(5 * time.Millisecond)
		w.Reboot()
		recovered = w.RecoverScan(p)
	})
	s.Run()
	s.Shutdown()
	if len(recovered) != 3 {
		t.Fatalf("recovered %d records, want the 3 durable ones", len(recovered))
	}
	for _, r := range recovered {
		if r.Op.Seq != 1 {
			t.Errorf("in-flight record resurrected by recovery: %v", r)
		}
	}
}

// TestRecoveryScanAllOrNothingPerRecord ties the byte-level guarantee to the
// coalesced write: tearing a multi-record group-commit image at any byte
// never yields a partially-decoded record, only whole records up to the tear.
func TestRecoveryScanAllOrNothingPerRecord(t *testing.T) {
	recs, buf := logImage()
	bounds := make(map[int]int) // byte offset of each record boundary -> records before it
	off := 0
	for i, r := range recs {
		bounds[off] = i
		off += len(Encode(r))
	}
	bounds[off] = len(recs)
	for cut := 0; cut <= len(buf); cut++ {
		got, err := ScanBytes(buf[:cut])
		if n, isBoundary := bounds[cut]; isBoundary {
			if err != nil || len(got) != n {
				t.Fatalf("cut at boundary %d: got %d records, err=%v", cut, len(got), err)
			}
			continue
		}
		if err == nil {
			t.Fatalf("cut=%d mid-record scanned without error", cut)
		}
		// Whole records only: every returned record must round-trip equal.
		for i, g := range got {
			if g.Type != recs[i].Type || g.Op != recs[i].Op {
				t.Fatalf("cut=%d returned a partial record at %d: %v", cut, i, g)
			}
		}
	}
}

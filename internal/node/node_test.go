package node

import (
	"testing"
	"time"

	"cxfs/internal/simrt"
	"cxfs/internal/transport"
	"cxfs/internal/types"
	"cxfs/internal/wire"
)

func build(t *testing.T) (*simrt.Sim, *transport.Net, *Base, *Host) {
	t.Helper()
	s := simrt.New(1)
	net := transport.New(s, transport.DefaultParams())
	b := NewBase(s, net, 0, DefaultHardware())
	h := NewHost(s, net, 100)
	return s, net, b, h
}

func TestInboxDispatchesToHandlerProc(t *testing.T) {
	s, _, b, h := build(t)
	var got []wire.MsgType
	b.Start(func(p *simrt.Proc, m wire.Msg) {
		got = append(got, m.Type)
		b.Send(wire.Msg{Type: wire.MsgOpResp, To: m.From, Op: m.Op})
	})
	var replied bool
	s.Spawn("client", func(p *simrt.Proc) {
		id := types.OpID{Proc: types.ProcID{Client: 100}, Seq: 1}
		route := h.Open(id)
		defer h.Done(id)
		h.Send(wire.Msg{Type: wire.MsgOpReq, To: 0, Op: id})
		route.Recv(p)
		replied = true
		s.Stop()
	})
	s.RunUntil(time.Minute)
	s.Shutdown()
	if !replied {
		t.Fatal("no reply")
	}
	if len(got) != 1 || got[0] != wire.MsgOpReq {
		t.Errorf("handler saw %v", got)
	}
}

func TestHandlersRunConcurrently(t *testing.T) {
	// Two slow handlers must overlap in virtual time: the inbox loop spawns
	// a Proc per message rather than serializing.
	s, _, b, h := build(t)
	b.Start(func(p *simrt.Proc, m wire.Msg) {
		p.Sleep(10 * time.Millisecond)
		b.Send(wire.Msg{Type: wire.MsgOpResp, To: m.From, Op: m.Op})
	})
	var elapsed time.Duration
	s.Spawn("client", func(p *simrt.Proc) {
		start := p.Now()
		id1 := types.OpID{Proc: types.ProcID{Client: 100}, Seq: 1}
		id2 := types.OpID{Proc: types.ProcID{Client: 100}, Seq: 2}
		r1, r2 := h.Open(id1), h.Open(id2)
		defer h.Done(id1)
		defer h.Done(id2)
		h.Send(wire.Msg{Type: wire.MsgOpReq, To: 0, Op: id1})
		h.Send(wire.Msg{Type: wire.MsgOpReq, To: 0, Op: id2})
		r1.Recv(p)
		r2.Recv(p)
		elapsed = p.Now() - start
		s.Stop()
	})
	s.RunUntil(time.Minute)
	s.Shutdown()
	if elapsed >= 20*time.Millisecond {
		t.Errorf("two 10ms handlers took %v; they serialized", elapsed)
	}
}

func TestCrashSilencesSendsAndDropsInbox(t *testing.T) {
	s, _, b, h := build(t)
	b.Start(func(p *simrt.Proc, m wire.Msg) {
		b.Send(wire.Msg{Type: wire.MsgOpResp, To: m.From, Op: m.Op})
	})
	var got int
	s.Spawn("client", func(p *simrt.Proc) {
		id := types.OpID{Proc: types.ProcID{Client: 100}, Seq: 1}
		route := h.Open(id)
		defer h.Done(id)
		b.Crash()
		h.Send(wire.Msg{Type: wire.MsgOpReq, To: 0, Op: id})
		if _, ok := route.RecvTimeout(p, 100*time.Millisecond); ok {
			got++
		}
		// Reboot and retry: service resumes.
		b.Reboot()
		h.Send(wire.Msg{Type: wire.MsgOpReq, To: 0, Op: id})
		if _, ok := route.RecvTimeout(p, 100*time.Millisecond); ok {
			got += 10
		}
		s.Stop()
	})
	s.RunUntil(time.Minute)
	s.Shutdown()
	if got != 10 {
		t.Errorf("got=%d, want 10 (no reply while crashed, reply after reboot)", got)
	}
}

func TestCrashDiscardsVolatileState(t *testing.T) {
	s, _, b, _ := build(t)
	done := false
	s.Spawn("driver", func(p *simrt.Proc) {
		b.KV.Put("k", []byte("v"))
		b.KV.FlushDirty(p)
		b.KV.Put("lost", []byte("x"))
		b.Crash()
		b.Reboot()
		if _, ok := b.KV.Get("lost"); ok {
			t.Error("unflushed key survived crash")
		}
		if v, ok := b.KV.Get("k"); !ok || string(v) != "v" {
			t.Error("durable key lost")
		}
		done = true
		s.Stop()
	})
	s.RunUntil(time.Minute)
	s.Shutdown()
	if !done {
		t.Fatal("driver did not finish")
	}
}

func TestHostDropsUnroutedResponses(t *testing.T) {
	s, _, b, h := build(t)
	b.Start(func(p *simrt.Proc, m wire.Msg) {
		b.Send(wire.Msg{Type: wire.MsgOpResp, To: m.From, Op: m.Op})
	})
	finished := false
	s.Spawn("client", func(p *simrt.Proc) {
		// Send with no route registered: the response must be dropped
		// silently, not crash the dispatcher.
		h.Send(wire.Msg{Type: wire.MsgOpReq, To: 0, Op: types.OpID{Seq: 77}})
		p.Sleep(50 * time.Millisecond)
		// Dispatcher still alive for routed traffic.
		id := types.OpID{Proc: types.ProcID{Client: 100}, Seq: 78}
		route := h.Open(id)
		defer h.Done(id)
		h.Send(wire.Msg{Type: wire.MsgOpReq, To: 0, Op: id})
		route.Recv(p)
		finished = true
		s.Stop()
	})
	s.RunUntil(time.Minute)
	s.Shutdown()
	if !finished {
		t.Fatal("dispatcher died on unrouted response")
	}
}

func TestExecCPUAdvancesTimeAndCounts(t *testing.T) {
	s, _, b, _ := build(t)
	s.Spawn("p", func(p *simrt.Proc) {
		start := p.Now()
		b.ExecCPU(p)
		if p.Now()-start != b.HW.CPUPerSubOp {
			t.Errorf("ExecCPU advanced %v, want %v", p.Now()-start, b.HW.CPUPerSubOp)
		}
		s.Stop()
	})
	s.RunUntil(time.Minute)
	s.Shutdown()
	if b.Stats().SubOpsRun != 1 {
		t.Errorf("SubOpsRun=%d", b.Stats().SubOpsRun)
	}
}

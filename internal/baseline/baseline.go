// Package baseline implements the three existing approaches the paper
// compares Cx against (§II.B, Figure 1), plus the batched variant used in
// the evaluation:
//
//   - SE — Serial Execution, the PVFS2/OrangeFS protocol: the client
//     executes the participant's sub-op first, then the coordinator's, each
//     synchronously written into the database; a failure of the second
//     sub-op is compensated with a CLEAR message. This is the paper's
//     "OFS" baseline.
//   - SE-batched — the same serial protocol, but updated objects are logged
//     and batched modifications are lazily flushed into the database. This
//     is the paper's "OFS-batched" baseline, isolating the write-back
//     batching gain from the concurrency gain.
//   - 2PC — the Slice/Farsite/DCFS-style two-phase commit: VOTE, execute,
//     YES/NO, COMMIT-REQ/ABORT-REQ, ACK, then the client response; every
//     server logs before sending.
//   - CE — Central Execution, the Ursa Minor approach: the objects of the
//     participant sub-op migrate to the coordinator, the whole operation
//     executes locally under journaling, and the updated objects migrate
//     back.
//
// Each protocol provides a Server (embedding node.Base) and a Driver with
// the same Do signature as the Cx driver, so the cluster layer and the
// harness treat all four interchangeably.
package baseline

import (
	"sort"

	"cxfs/internal/node"
	"cxfs/internal/simrt"
	"cxfs/internal/types"
	"cxfs/internal/wire"
)

// dupGuard gives a baseline server at-most-once semantics for retried
// client requests: a completed operation answers from a bounded reply
// cache, and a duplicate of one still executing is dropped (the original
// owns the eventual reply). Cx has richer pending-state to consult; the
// baselines just need this.
type dupGuard struct {
	inflight map[types.OpID]bool
	replies  map[types.OpID]wire.Msg
	order    []types.OpID
}

const dupCacheCap = 8192

func newDupGuard() *dupGuard {
	return &dupGuard{inflight: make(map[types.OpID]bool), replies: make(map[types.OpID]wire.Msg)}
}

// cached returns the recorded reply of a completed operation.
func (g *dupGuard) cached(op types.OpID) (wire.Msg, bool) {
	m, ok := g.replies[op]
	return m, ok
}

// begin marks op executing; false means a duplicate (already inflight).
func (g *dupGuard) begin(op types.OpID) bool {
	if g.inflight[op] {
		return false
	}
	g.inflight[op] = true
	return true
}

// finish records the final reply and clears the inflight mark.
func (g *dupGuard) finish(op types.OpID, reply wire.Msg) {
	delete(g.inflight, op)
	if _, exists := g.replies[op]; !exists {
		if len(g.order) >= dupCacheCap {
			drop := g.order[0]
			g.order = g.order[1:]
			delete(g.replies, drop)
		}
		g.order = append(g.order, op)
	}
	g.replies[op] = reply
}

// abandon clears the inflight mark without caching (crash mid-execution);
// a retry after recovery re-executes. Safe to call after finish.
func (g *dupGuard) abandon(op types.OpID) { delete(g.inflight, op) }

// reset drops all volatile guard state (server reboot).
func (g *dupGuard) reset() {
	g.inflight = make(map[types.OpID]bool)
	g.replies = make(map[types.OpID]wire.Msg)
	g.order = nil
}

// rpcCall sends req and waits for a reply on route, retransmitting per the
// retry policy; false means the attempt budget ran out (outcome unknown).
func rpcCall(p *simrt.Proc, host *node.Host, rp types.RetryPolicy, route *simrt.Chan[wire.Msg], req wire.Msg) (wire.Msg, bool) {
	if !rp.Enabled() {
		host.Send(req)
		return route.Recv(p), true
	}
	for attempt := 0; attempt < rp.MaxAttempts(); attempt++ {
		host.Send(req)
		if m, ok := route.RecvTimeout(p, rp.WaitFor(attempt)); ok {
			return m, true
		}
	}
	return wire.Msg{}, false
}

// lockTable serializes conflicting operations inside the 2PC and CE
// servers (their correctness depends on exclusive access for the duration
// of the transaction; Cx instead uses the active-object table).
type lockTable struct {
	sim  *simrt.Sim
	held map[types.ObjKey]bool
	q    map[types.ObjKey][]*simrt.Chan[struct{}]
}

func newLockTable(s *simrt.Sim) *lockTable {
	return &lockTable{sim: s, held: make(map[types.ObjKey]bool), q: make(map[types.ObjKey][]*simrt.Chan[struct{}])}
}

// acquire takes all keys in a canonical order (avoiding deadlock between
// two multi-key acquirers).
func (lt *lockTable) acquire(p *simrt.Proc, keys []types.ObjKey) {
	ordered := append([]types.ObjKey(nil), keys...)
	sort.Slice(ordered, func(i, j int) bool { return objKeyLess(ordered[i], ordered[j]) })
	for _, k := range ordered {
		for lt.held[k] {
			ch := simrt.NewChan[struct{}](lt.sim)
			lt.q[k] = append(lt.q[k], ch)
			ch.Recv(p)
		}
		lt.held[k] = true
	}
}

// release frees the keys, waking one waiter per key.
func (lt *lockTable) release(keys []types.ObjKey) {
	for _, k := range keys {
		if !lt.held[k] {
			continue
		}
		lt.held[k] = false
		if ws := lt.q[k]; len(ws) > 0 {
			lt.q[k] = ws[1:]
			ws[0].Send(struct{}{})
		}
	}
}

func objKeyLess(a, b types.ObjKey) bool {
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	if a.Dir != b.Dir {
		return a.Dir < b.Dir
	}
	if a.Name != b.Name {
		return a.Name < b.Name
	}
	return a.Ino < b.Ino
}

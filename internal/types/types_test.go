package types

import (
	"testing"
	"testing/quick"
)

func TestOpKindStringAndParseRoundTrip(t *testing.T) {
	for k := OpCreate; int(k) <= NumOpKinds; k++ {
		got, err := ParseOpKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseOpKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseOpKind("bogus"); err == nil {
		t.Error("bogus kind parsed")
	}
}

func TestCrossServerClassification(t *testing.T) {
	cross := []OpKind{OpCreate, OpRemove, OpMkdir, OpRmdir, OpLink, OpUnlink, OpRename}
	single := []OpKind{OpStat, OpLookup, OpSetAttr}
	for _, k := range cross {
		if !k.CrossServer() {
			t.Errorf("%v should be cross-server", k)
		}
	}
	for _, k := range single {
		if k.CrossServer() {
			t.Errorf("%v should be single-server", k)
		}
	}
	if OpStat.Mutating() || !OpSetAttr.Mutating() || !OpCreate.Mutating() {
		t.Error("Mutating classification wrong")
	}
}

func TestSplitMatchesTableI(t *testing.T) {
	base := Op{ID: OpID{Seq: 1}, Parent: 7, Name: "f", Ino: 42}
	cases := []struct {
		kind        OpKind
		coordAction SubOpAction
		partAction  SubOpAction
	}{
		{OpCreate, ActInsertEntry, ActAddInode},
		{OpMkdir, ActInsertEntry, ActAddInode},
		{OpRemove, ActRemoveEntry, ActDecLink},
		{OpRmdir, ActRemoveEntry, ActDecLink},
		{OpUnlink, ActRemoveEntry, ActDecLink},
		{OpLink, ActInsertEntry, ActIncLink},
	}
	for _, c := range cases {
		op := base
		op.Kind = c.kind
		coord, part := Split(op)
		if coord.Action != c.coordAction || coord.Role != RoleCoordinator {
			t.Errorf("%v coord: %v/%v", c.kind, coord.Action, coord.Role)
		}
		if part.Action != c.partAction || part.Role != RoleParticipant {
			t.Errorf("%v part: %v/%v", c.kind, part.Action, part.Role)
		}
		if coord.Op != op.ID || part.Op != op.ID {
			t.Errorf("%v: op IDs not propagated", c.kind)
		}
	}
	// mkdir's participant creates a directory inode; create's a file.
	mk := base
	mk.Kind = OpMkdir
	if _, part := Split(mk); part.Type != FileDir {
		t.Error("mkdir participant type != dir")
	}
	cr := base
	cr.Kind = OpCreate
	if _, part := Split(cr); part.Type != FileRegular {
		t.Error("create participant type != regular")
	}
}

func TestSplitPanicsOnSingleServerKinds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Split(stat) should panic")
		}
	}()
	Split(Op{Kind: OpStat})
}

func TestSingleSubOp(t *testing.T) {
	for kind, action := range map[OpKind]SubOpAction{
		OpStat:    ActReadInode,
		OpLookup:  ActReadEntry,
		OpSetAttr: ActTouchInode,
	} {
		s := SingleSubOp(Op{ID: OpID{Seq: 2}, Kind: kind, Parent: 1, Name: "x", Ino: 9})
		if s.Action != action {
			t.Errorf("%v action = %v, want %v", kind, s.Action, action)
		}
	}
}

func TestConflictKeysExcludeParentInode(t *testing.T) {
	op := Op{ID: OpID{Seq: 3}, Kind: OpCreate, Parent: 7, Name: "f", Ino: 42}
	coord, part := Split(op)
	ck := coord.Keys()
	if len(ck) != 1 || ck[0] != DentryKey(7, "f") {
		t.Errorf("coord keys = %v; the parent-inode counter must not be a conflict key", ck)
	}
	pk := part.Keys()
	if len(pk) != 1 || pk[0] != InodeKey(42) {
		t.Errorf("part keys = %v", pk)
	}
}

func TestOpIDStringNullHint(t *testing.T) {
	if NilOp.String() != "[null]" {
		t.Errorf("nil hint renders %q", NilOp.String())
	}
	id := OpID{Proc: ProcID{Client: 5, Index: 2}, Seq: 9}
	if id.IsNil() {
		t.Error("non-nil id IsNil")
	}
}

func TestObjKeyEqualityQuick(t *testing.T) {
	// ObjKeys must behave as map keys: equal content = equal key.
	f := func(dir uint64, name string, ino uint64) bool {
		a := DentryKey(InodeID(dir), name)
		b := DentryKey(InodeID(dir), name)
		c := InodeKey(InodeID(ino))
		m := map[ObjKey]int{a: 1}
		m[c] = 2
		return m[b] == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStringersDoNotPanic(t *testing.T) {
	_ = OpKind(200).String()
	_ = SubOpAction(200).String()
	_ = ObjKind(200).String()
	_ = FileType(200).String()
	_ = Role(200).String()
	_ = RecFmtSmoke()
}

// RecFmtSmoke exercises the remaining Stringers.
func RecFmtSmoke() string {
	op := Op{ID: OpID{Seq: 1}, Kind: OpCreate, Parent: 1, Name: "n", Ino: 2}
	sub, _ := Split(op)
	return op.String() + sub.String() + DentryKey(1, "n").String() + InodeKey(2).String()
}

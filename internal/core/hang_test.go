// Client-liveness acceptance test: a reply dropped by the network must not
// wedge a client forever. The zero RetryPolicy (the pre-fault-injection
// driver behavior) blocks on route.Recv with no timeout, so one lost
// SubOpResp hangs the process permanently; the retry policy bounds every
// wait and retransmits, and server-side duplicate suppression makes the
// retransmission safe. Both halves are asserted against the same fault
// schedule, so this test fails if the retry path regresses to the old
// blocking behavior.
package core_test

import (
	"fmt"
	"testing"
	"time"

	"cxfs/internal/cluster"
	"cxfs/internal/simrt"
	"cxfs/internal/transport"
	"cxfs/internal/types"
)

// droppedReplyRun issues one cross-server create whose participant->client
// replies are all dropped until healAt. It reports whether the operation
// completed within the 10s horizon, and the error it completed with.
func droppedReplyRun(t *testing.T, retry types.RetryPolicy, healAt time.Duration) (completed bool, opErr error) {
	t.Helper()
	c := build(4, func(o *cluster.Options) { o.Retry = retry })
	defer c.Shutdown()
	c.Sim.Spawn("t", func(p *simrt.Proc) {
		pr := c.Proc(0)
		host := c.Hosts[0]
		var name string
		var ino types.InodeID
		for try := 0; ; try++ {
			name = fmt.Sprintf("hang-%d", try)
			ino = pr.AllocInode()
			if c.Placement.CoordinatorFor(types.RootInode, name) != c.Placement.ParticipantFor(ino) {
				break
			}
		}
		part := c.Placement.ParticipantFor(ino)
		c.Net.SetLinkFaults(part, host.ID, transport.Faults{DropProb: 1.0})
		c.Sim.SpawnAfter(healAt, "heal", func(*simrt.Proc) { c.Net.ClearFaults() })
		_, opErr = pr.Do(p, types.Op{ID: pr.NextID(), Kind: types.OpCreate,
			Parent: types.RootInode, Name: name, Ino: ino, Type: types.FileRegular})
		completed = true
		c.Sim.Stop()
	})
	c.Sim.RunUntil(10 * time.Second)
	return completed, opErr
}

func TestDroppedReplyHangsWithoutRetryPolicy(t *testing.T) {
	// The old driver behavior: no retry policy, so the lost participant
	// reply leaves the client blocked past any horizon. This documents the
	// hang the retry policy exists to fix — if a future change makes the
	// zero policy complete this run, the companion test below is the one
	// guarding the actual requirement and this one should be updated.
	completed, _ := droppedReplyRun(t, types.RetryPolicy{}, 120*time.Millisecond)
	if completed {
		t.Fatal("zero retry policy completed despite the dropped reply; the documented hang no longer reproduces")
	}
}

func TestDroppedReplyRecoversWithRetryPolicy(t *testing.T) {
	// Same fault schedule, retry enabled: the client retransmits after its
	// per-RPC timeout, the post-heal duplicate is answered from the
	// participant's pending state, and the operation completes successfully.
	rp := types.RetryPolicy{Timeout: 50 * time.Millisecond, Attempts: 6}
	completed, err := droppedReplyRun(t, rp, 120*time.Millisecond)
	if !completed {
		t.Fatal("client hung despite the retry policy: dropped reply was never recovered")
	}
	if err != nil {
		t.Fatalf("operation failed after retries: %v", err)
	}
}

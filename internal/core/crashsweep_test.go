// Crash-sweep failure injection: crash a server at many different virtual
// instants while a workload runs — landing in every phase of the protocol
// (execution, logging, voting, decision, write-back) — then recover and
// require that every operation a client saw complete still resolves and
// the cross-server invariants hold.
package core_test

import (
	"fmt"
	"testing"
	"time"

	"cxfs/internal/cluster"
	"cxfs/internal/simrt"
	"cxfs/internal/types"
)

type completedOp struct {
	name string
	ino  types.InodeID
	gone bool // true if the last completed action removed it
}

func TestCrashSweepAcrossProtocolPhases(t *testing.T) {
	// Sweep crash instants from "almost immediately" to "after the
	// workload likely drained"; a fixed seed keeps every run reproducible,
	// so each offset deterministically lands in one protocol phase.
	offsets := []time.Duration{
		500 * time.Microsecond,
		2 * time.Millisecond,
		5 * time.Millisecond,
		9 * time.Millisecond,
		15 * time.Millisecond,
		25 * time.Millisecond,
		40 * time.Millisecond,
		70 * time.Millisecond,
		120 * time.Millisecond,
		250 * time.Millisecond,
	}
	for _, crashAt := range offsets {
		crashAt := crashAt
		t.Run(crashAt.String(), func(t *testing.T) {
			runCrashSweep(t, crashAt)
		})
	}
}

func runCrashSweep(t *testing.T, crashAt time.Duration) {
	o := cluster.DefaultOptions(4, cluster.ProtoCx)
	o.ClientHosts = 4
	o.ProcsPerHost = 2
	o.Cx.Timeout = 30 * time.Millisecond // commitments fire during the sweep window
	o.Cx.RetryInterval = 20 * time.Millisecond
	o.Cx.VoteWait = 20 * time.Millisecond
	o.Cx.RecoveryFreeze = 5 * time.Millisecond
	o.Hardware.LogMaxBytes = 0
	c := cluster.MustNew(o)
	defer c.Shutdown()

	const workers = 4
	completed := make([][]completedOp, workers)

	// Workers create (and sometimes remove) files, recording only the
	// operations whose success the client observed. A worker stuck on the
	// crashed server simply stops contributing; its in-flight op is
	// allowed to be lost (the client never saw it complete).
	for w := 0; w < workers; w++ {
		w := w
		pr := c.Proc(w * 2)
		c.Sim.Spawn("sweep-worker", func(p *simrt.Proc) {
			for j := 0; j < 12; j++ {
				name := fmt.Sprintf("sw-%d-%d", w, j)
				ino, err := pr.Create(p, types.RootInode, name)
				if err != nil {
					continue
				}
				completed[w] = append(completed[w], completedOp{name: name, ino: ino})
				if j%4 == 3 {
					if err := pr.Remove(p, types.RootInode, name, ino); err == nil {
						completed[w][len(completed[w])-1].gone = true
					}
				}
			}
		})
	}

	c.Sim.Spawn("crasher", func(p *simrt.Proc) {
		p.Sleep(crashAt)
		victim := 1 // fixed victim: deterministic per offset
		c.Bases[victim].Crash()
		p.Sleep(10 * time.Millisecond)
		c.Bases[victim].Reboot()
		c.CxSrv[victim].Recover(p)
		// Give survivors' retries and stragglers time to settle.
		p.Sleep(200 * time.Millisecond)
		c.Quiesce(p)

		// Verify every client-completed op from a verifier process that
		// was not a workload worker.
		pr := c.Proc(1)
		for w := range completed {
			for _, op := range completed[w] {
				got, err := pr.Lookup(p, types.RootInode, op.name)
				if op.gone {
					if err == nil {
						t.Errorf("crash@%v: removed op %s still resolves", crashAt, op.name)
					}
					continue
				}
				if err != nil || got.Ino != op.ino {
					t.Errorf("crash@%v: completed op %s lost (ino=%d err=%v)", crashAt, op.name, got.Ino, err)
				}
			}
		}
		if bad := c.CheckInvariants(); len(bad) != 0 {
			for _, b := range bad {
				t.Errorf("crash@%v invariant: %s", crashAt, b)
			}
		}
		c.Sim.Stop()
	})

	c.Sim.RunUntil(time.Hour)
	if !c.Sim.Stopped() {
		t.Fatalf("crash@%v: verification never ran (deadlock)", crashAt)
	}
}

// Package transport delivers wire messages between simulated nodes,
// substituting for the paper's 10GigE network and Catalyst switches.
//
// Net charges each message a fixed one-way latency plus size/bandwidth
// transfer time, then deposits it in the destination node's inbox. It also
// keeps the per-message-type counters behind Table IV of the paper (message
// overhead of OFS-Cx vs OFS): the harness snapshots Stats before and after a
// trace replay.
//
// Delivery preserves per-sender-pair FIFO order (all messages see the same
// latency function, and simultaneous deliveries dispatch in send order),
// which the Cx disordered-conflict machinery does NOT rely on across
// *different* senders: two processes' sub-ops may arrive at the two servers
// in opposite orders, which is exactly the disordered case of §III.C.
package transport

import (
	"time"

	"cxfs/internal/simrt"
	"cxfs/internal/types"
	"cxfs/internal/wire"
)

// Params is the network cost model.
type Params struct {
	// Latency is the one-way propagation plus switching delay.
	Latency time.Duration
	// Bandwidth is the per-link bandwidth in bytes/second.
	Bandwidth int64
	// CPUOverhead is the per-message sender-side processing charge; the
	// receiver pays its own service time in the server loop.
	CPUOverhead time.Duration
}

// DefaultParams models the paper's 10GigE fabric.
func DefaultParams() Params {
	return Params{
		Latency:     60 * time.Microsecond,
		Bandwidth:   1250 << 20, // 10 Gb/s ≈ 1.25 GB/s
		CPUOverhead: 5 * time.Microsecond,
	}
}

// Stats counts traffic. Indexing by message type feeds Table IV.
type Stats struct {
	Messages uint64
	Bytes    int64
	ByType   [wire.NumMsgTypes]uint64
	// DroppedDown counts messages lost because the destination was crashed
	// at delivery time (the failure model of §III.D: the network loses
	// them, senders discover the crash by timeout).
	DroppedDown uint64
	// DroppedUnroutable counts messages addressed to a node that was never
	// registered — a stale route, not a fatal simulation error.
	DroppedUnroutable uint64
}

// Total returns the total message count (convenience for Table IV).
func (s Stats) Total() uint64 { return s.Messages }

// Sub returns s minus earlier, for before/after snapshots.
func (s Stats) Sub(earlier Stats) Stats {
	out := Stats{
		Messages:          s.Messages - earlier.Messages,
		Bytes:             s.Bytes - earlier.Bytes,
		DroppedDown:       s.DroppedDown - earlier.DroppedDown,
		DroppedUnroutable: s.DroppedUnroutable - earlier.DroppedUnroutable,
	}
	for i := range s.ByType {
		out.ByType[i] = s.ByType[i] - earlier.ByType[i]
	}
	return out
}

// Net is the simulated network.
type Net struct {
	sim    *simrt.Sim
	params Params
	boxes  map[types.NodeID]*simrt.Chan[wire.Msg]
	down   map[types.NodeID]bool
	stats  Stats
	tap    func(wire.Msg)
}

// SetTap installs an observer invoked (synchronously, in simulation
// context) for every message sent — the message-sequence fidelity tests
// use it to assert the exact communication patterns of the paper's
// Figures 1 and 2. Pass nil to remove.
func (n *Net) SetTap(fn func(wire.Msg)) { n.tap = fn }

// New creates a network on s.
func New(s *simrt.Sim, p Params) *Net {
	return &Net{sim: s, params: p, boxes: make(map[types.NodeID]*simrt.Chan[wire.Msg]), down: make(map[types.NodeID]bool)}
}

// Register creates (or returns) the inbox for node. Servers and client
// hosts each own one inbox and service it from their own Procs.
func (n *Net) Register(node types.NodeID) *simrt.Chan[wire.Msg] {
	if b, ok := n.boxes[node]; ok {
		return b
	}
	b := simrt.NewChan[wire.Msg](n.sim)
	n.boxes[node] = b
	return b
}

// Stats returns a snapshot of traffic counters.
func (n *Net) Stats() Stats { return n.stats }

// SetDown marks a node crashed (true) or rebooted (false). Messages to a
// down node are dropped, as on a real network; senders discover the crash
// by timeout.
func (n *Net) SetDown(node types.NodeID, down bool) { n.down[node] = down }

// Down reports whether a node is marked crashed.
func (n *Net) Down(node types.NodeID) bool { return n.down[node] }

// Send transmits msg to msg.To after the modeled delay. It must be called
// from inside the simulation. The sender's Proc is not blocked (the NIC
// DMA's asynchronously); the CPU overhead is charged as added latency.
func (n *Net) Send(msg wire.Msg) {
	box, ok := n.boxes[msg.To]
	if !ok {
		// A stale route (e.g. a retry addressed to a node that never came
		// up) is a lost message, not a simulation bug: count and drop.
		n.stats.DroppedUnroutable++
		return
	}
	n.stats.Messages++
	if n.tap != nil {
		n.tap(msg)
	}
	size := wire.Size(&msg)
	n.stats.Bytes += size
	if int(msg.Type) < len(n.stats.ByType) {
		n.stats.ByType[msg.Type]++
	}
	delay := n.params.CPUOverhead + n.params.Latency +
		time.Duration(size*int64(time.Second)/n.params.Bandwidth)
	n.sim.After(delay, func() {
		if n.down[msg.To] {
			n.stats.DroppedDown++ // dropped at the dead NIC
			return
		}
		box.Send(msg)
	})
}

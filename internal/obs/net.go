package obs

import "sync/atomic"

// NetCounters tracks connection-level events on the real-network transport.
//
// Unlike Observer — which is single-threaded by the simulation's scheduler
// handshake — the TCP transport runs one goroutine per connection, so these
// counters are atomics. Every method is nil-safe: a nil *NetCounters is the
// disabled default and costs one nil check.
type NetCounters struct {
	accepted      atomic.Uint64
	cleanCloses   atomic.Uint64
	corruptFrames atomic.Uint64
	abruptCloses  atomic.Uint64
	writeErrors   atomic.Uint64
}

// ConnAccepted records a connection admitted by the accept loop.
func (n *NetCounters) ConnAccepted() {
	if n != nil {
		n.accepted.Add(1)
	}
}

// CleanClose records a peer that finished with an orderly EOF.
func (n *NetCounters) CleanClose() {
	if n != nil {
		n.cleanCloses.Add(1)
	}
}

// CorruptFrame records a connection dropped because a frame failed to
// decode (bad length prefix, truncated body layout, unknown trailing data).
func (n *NetCounters) CorruptFrame() {
	if n != nil {
		n.corruptFrames.Add(1)
	}
}

// AbruptClose records a connection that died mid-frame or with a transport
// I/O error — the peer vanished rather than framing a goodbye.
func (n *NetCounters) AbruptClose() {
	if n != nil {
		n.abruptCloses.Add(1)
	}
}

// WriteError records a reply that could not be written back.
func (n *NetCounters) WriteError() {
	if n != nil {
		n.writeErrors.Add(1)
	}
}

// NetSnapshot is a point-in-time copy of the counters.
type NetSnapshot struct {
	Accepted      uint64
	CleanCloses   uint64
	CorruptFrames uint64
	AbruptCloses  uint64
	WriteErrors   uint64
}

// Snapshot reads all counters. Safe on nil (returns zeros).
func (n *NetCounters) Snapshot() NetSnapshot {
	if n == nil {
		return NetSnapshot{}
	}
	return NetSnapshot{
		Accepted:      n.accepted.Load(),
		CleanCloses:   n.cleanCloses.Load(),
		CorruptFrames: n.corruptFrames.Load(),
		AbruptCloses:  n.abruptCloses.Load(),
		WriteErrors:   n.writeErrors.Load(),
	}
}

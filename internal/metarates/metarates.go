// Package metarates reimplements the Metarates benchmark the paper uses for
// its benchmark-driven evaluation (§IV.B): an MPI-style closed-loop load
// generator in which every process hammers metadata operations against one
// large shared directory.
//
// Two mixes are modeled, as in the paper:
//
//   - update-dominated: 80% updates / 20% stats (PLFS-style checkpoint
//     pressure), where updates concurrently create and remove zero-byte
//     files in a common directory; and
//   - read-dominated: 20% updates / 80% stats (Vogels/Roselli: ~79% of file
//     accesses are read-only).
//
// The shared directory is striped across every server by the entry-hash
// placement, so updates are overwhelmingly cross-server — exactly the
// stress the paper designed the benchmark runs around. Each process stats
// only files it created itself, matching the paper's observation that the
// benchmark raises essentially no conflicts while still driving every
// server.
package metarates

import (
	"fmt"
	"time"

	"cxfs/internal/cluster"
	"cxfs/internal/core"
	"cxfs/internal/simrt"
	"cxfs/internal/types"
)

// Mix selects the workload blend.
type Mix struct {
	Name        string
	UpdateShare float64 // fraction of operations that are create/remove
}

// The paper's two mixes.
var (
	UpdateDominated = Mix{Name: "update-dominated", UpdateShare: 0.80}
	ReadDominated   = Mix{Name: "read-dominated", UpdateShare: 0.20}
)

// Config sizes one run.
type Config struct {
	Mix        Mix
	OpsPerProc int
	// Prepopulate creates this many files per process before measurement
	// starts (the paper fills 40,000 files per server so servers run at
	// steady state; scale to taste).
	Prepopulate int
	// Pipeline is the per-process in-flight operation limit. Values <= 1
	// keep the classic closed loop (one op at a time per process); higher
	// values dispatch up to Pipeline operations concurrently through
	// core.Pipeline, with per-op ordering preserved on every file a process
	// owns (a file is only stat'd or removed after its create completed,
	// and never removed while a stat on it is in flight).
	Pipeline int
}

// Result is one run's outcome.
type Result struct {
	Mix        string
	Protocol   cluster.Protocol
	Servers    int
	Procs      int
	Ops        int
	Elapsed    time.Duration
	Throughput float64 // file operations per second (the Figure 6 y-axis)
	Errors     int
	Messages   uint64
}

// Run executes the benchmark on an existing cluster and returns the result.
// The cluster must be freshly built (Run drives the simulation itself).
func Run(c *cluster.Cluster, cfg Config) Result {
	nProcs := c.NumProcs()
	res := Result{
		Mix: cfg.Mix.Name, Protocol: c.Opts.Protocol,
		Servers: c.Opts.Servers, Procs: nProcs, Ops: nProcs * cfg.OpsPerProc,
	}

	var dirIno types.InodeID
	var start, end time.Duration
	var msgs0 uint64

	gate := simrt.NewChan[struct{}](c.Sim)
	g := simrt.NewGroup(c.Sim)
	g.Add(nProcs)

	c.Sim.Spawn("metarates/setup", func(p *simrt.Proc) {
		pr := c.Proc(0)
		ino, err := pr.Mkdir(p, types.RootInode, "metarates")
		if err != nil {
			panic(fmt.Sprintf("metarates: mkdir: %v", err))
		}
		dirIno = ino
		// Prepopulation happens before the measured window.
		if cfg.Prepopulate > 0 {
			pg := simrt.NewGroup(c.Sim)
			pg.Add(nProcs)
			for i := 0; i < nProcs; i++ {
				i := i
				ppr := c.Proc(i)
				c.Sim.Spawn("metarates/prefill", func(pp *simrt.Proc) {
					for j := 0; j < cfg.Prepopulate; j++ {
						ppr.Create(pp, dirIno, fmt.Sprintf("pre.%d.%d", i, j))
					}
					pg.Done()
				})
			}
			pg.Wait(p)
		}
		c.Quiesce(p)
		start = p.Now()
		msgs0 = c.Net.Stats().Messages
		for i := 0; i < nProcs; i++ {
			gate.Send(struct{}{})
		}
	})

	for i := 0; i < nProcs; i++ {
		i := i
		pr := c.Proc(i)
		c.Sim.Spawn(fmt.Sprintf("metarates/p%d", i), func(p *simrt.Proc) {
			gate.Recv(p)
			if cfg.Pipeline > 1 {
				res.Errors += pipelinedWorker(p, c, pr, &dirIno, cfg, i)
			} else {
				res.Errors += sequentialWorker(p, c, pr, &dirIno, cfg, i)
			}
			g.Done()
		})
	}
	c.Sim.Spawn("metarates/controller", func(p *simrt.Proc) {
		g.Wait(p)
		end = p.Now()
		c.Quiesce(p)
		c.Sim.Stop()
	})
	c.Sim.Run()

	res.Elapsed = end - start
	if res.Elapsed > 0 {
		res.Throughput = float64(res.Ops) / res.Elapsed.Seconds()
	}
	res.Messages = c.Net.Stats().Messages - msgs0
	return res
}

// ownFile is one file in a process's working set.
type ownFile struct {
	name string
	ino  types.InodeID
}

// sequentialWorker is the classic closed loop: one op at a time. Returns the
// error count.
func sequentialWorker(p *simrt.Proc, c *cluster.Cluster, pr *cluster.Process, dirIno *types.InodeID, cfg Config, id int) int {
	errors := 0
	var files []ownFile
	next := 0
	rng := c.Sim.Rand()
	for op := 0; op < cfg.OpsPerProc; op++ {
		if rng.Float64() < cfg.Mix.UpdateShare || len(files) == 0 {
			// Update: alternate create and remove to hold the working set
			// steady, like Metarates' create/utime phases.
			if len(files) < 8 || rng.Intn(2) == 0 {
				name := fmt.Sprintf("m.%d.%d", id, next)
				next++
				ino, err := pr.Create(p, *dirIno, name)
				if err != nil {
					errors++
					continue
				}
				files = append(files, ownFile{name, ino})
			} else {
				f := files[0]
				files = files[1:]
				if err := pr.Remove(p, *dirIno, f.name, f.ino); err != nil {
					errors++
				}
			}
		} else {
			f := files[rng.Intn(len(files))]
			if _, err := pr.Stat(p, f.ino); err != nil {
				errors++
			}
		}
	}
	return errors
}

// pipelinedWorker keeps up to cfg.Pipeline operations in flight. The
// working set only admits files whose create has completed, a file with a
// stat in flight is never removed, and removed files leave the set at
// submission — so each file still sees a sequential create → (stats) →
// remove history and the op stream stays oracle-checkable.
func pipelinedWorker(p *simrt.Proc, c *cluster.Cluster, pr *cluster.Process, dirIno *types.InodeID, cfg Config, id int) int {
	errors := 0
	pipe := pr.NewPipeline(cfg.Pipeline)
	var files []ownFile
	statsIn := make(map[types.InodeID]int) // in-flight stats per inode
	next := 0
	rng := c.Sim.Rand()
	harvest := func(done []*core.Pending) {
		for _, pe := range done {
			switch pe.Op.Kind {
			case types.OpCreate:
				if pe.Err != nil {
					errors++
				} else {
					files = append(files, ownFile{pe.Op.Name, pe.Op.Ino})
				}
			case types.OpStat:
				if statsIn[pe.Op.Ino]--; statsIn[pe.Op.Ino] <= 0 {
					delete(statsIn, pe.Op.Ino)
				}
				if pe.Err != nil {
					errors++
				}
			default:
				if pe.Err != nil {
					errors++
				}
			}
		}
	}
	submitCreate := func() {
		name := fmt.Sprintf("m.%d.%d", id, next)
		next++
		pipe.Submit(p, types.Op{ID: pr.NextID(), Kind: types.OpCreate,
			Parent: *dirIno, Name: name, Ino: pr.AllocInode(), Type: types.FileRegular})
	}
	for op := 0; op < cfg.OpsPerProc; op++ {
		harvest(pipe.Poll())
		if rng.Float64() < cfg.Mix.UpdateShare || len(files) == 0 {
			if len(files) < 8 || rng.Intn(2) == 0 {
				submitCreate()
				continue
			}
			// Remove the oldest file with no stat in flight on it.
			victim := -1
			for k := range files {
				if statsIn[files[k].ino] == 0 {
					victim = k
					break
				}
			}
			if victim < 0 {
				submitCreate() // everything is stat-busy; keep the op count
				continue
			}
			f := files[victim]
			files = append(files[:victim], files[victim+1:]...)
			pipe.Submit(p, types.Op{ID: pr.NextID(), Kind: types.OpRemove,
				Parent: *dirIno, Name: f.name, Ino: f.ino})
		} else {
			f := files[rng.Intn(len(files))]
			statsIn[f.ino]++
			pipe.Submit(p, types.Op{ID: pr.NextID(), Kind: types.OpStat, Ino: f.ino})
		}
	}
	harvest(pipe.Drain(p))
	return errors
}

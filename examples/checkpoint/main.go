// Checkpoint: the workload that motivates the paper's introduction — a
// supercomputing application periodically checkpointing, where every
// process creates its own state file in a largely common directory that is
// striped across all metadata servers. Nearly every create is cross-server,
// and because state files are exclusively accessed by their creator, the
// conflict ratio stays near zero — exactly the regime where Cx's concurrent
// execution and lazy batched commitment shine.
//
// The example runs the same checkpoint storm under OFS (serial execution),
// OFS-batched, and OFS-Cx, and prints the comparison.
package main

import (
	"fmt"
	"log"
	"time"

	cxfs "cxfs"
)

const (
	servers       = 8
	procs         = 32
	checkpointNum = 3  // checkpoint rounds
	filesPerRound = 10 // state files per process per round
)

func main() {
	type outcome struct {
		elapsed  time.Duration
		messages uint64
	}
	results := map[cxfs.Protocol]outcome{}

	for _, proto := range []cxfs.Protocol{cxfs.SE, cxfs.SEBatched, cxfs.Cx} {
		fs := cxfs.New(cxfs.Options{Servers: servers, Protocol: proto, Seed: 1})

		var ckptDir cxfs.InodeID
		fs.Run(func(ctx *cxfs.Ctx) {
			d, err := ctx.Mkdir(cxfs.Root, "checkpoints")
			if err != nil {
				log.Fatalf("mkdir: %v", err)
			}
			ckptDir = d
		})

		fs.RunN(procs, func(ctx *cxfs.Ctx, rank int) {
			for round := 0; round < checkpointNum; round++ {
				// Each process writes its own state files, then removes
				// the previous round's (rolling checkpoints).
				for f := 0; f < filesPerRound; f++ {
					name := fmt.Sprintf("ckpt.r%02d.rank%03d.%02d", round, rank, f)
					if _, err := ctx.Create(ckptDir, name); err != nil {
						log.Fatalf("%v create %s: %v", proto, name, err)
					}
				}
				if round > 0 {
					for f := 0; f < filesPerRound; f++ {
						name := fmt.Sprintf("ckpt.r%02d.rank%03d.%02d", round-1, rank, f)
						old, err := ctx.Lookup(ckptDir, name)
						if err != nil {
							continue
						}
						if err := ctx.Remove(ckptDir, name, old.Ino); err != nil {
							log.Fatalf("%v remove: %v", proto, err)
						}
					}
				}
				// Compute phase between checkpoints.
				ctx.Sleep(50 * time.Millisecond)
			}
		})

		if bad := fs.CheckConsistency(); len(bad) != 0 {
			log.Fatalf("%v left inconsistent state: %v", proto, bad)
		}
		results[proto] = outcome{fs.Elapsed(), fs.Messages()}
		fs.Close()
	}

	fmt.Printf("checkpoint storm: %d processes x %d rounds x %d files on %d servers\n\n",
		procs, checkpointNum, filesPerRound, servers)
	base := results[cxfs.SE].elapsed
	for _, proto := range []cxfs.Protocol{cxfs.SE, cxfs.SEBatched, cxfs.Cx} {
		r := results[proto]
		fmt.Printf("%-12s time=%-12v messages=%-7d improvement over OFS: %5.1f%%\n",
			proto, r.elapsed.Round(time.Millisecond), r.messages,
			100*float64(base-r.elapsed)/float64(base))
	}
}

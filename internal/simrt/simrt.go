// Package simrt is a process-model discrete-event simulation runtime.
//
// It substitutes for the paper's 32-node cluster: every simulated entity (an
// application process, a metadata-server request handler, a disk, a
// commitment trigger daemon) is a real goroutine — a Proc — that blocks only
// on simulated primitives: virtual Sleep, receive on a virtual Chan, waits on
// a Group. A single scheduler runs exactly one Proc at a time and advances a
// virtual clock between events, so:
//
//   - protocol code is ordinary blocking Go (no callback inversion), and
//   - every run is fully deterministic for a given seed, because there is no
//     true parallelism and event ties break by insertion order.
//
// The handshake: the scheduler pops the next event, resumes the target Proc
// by sending on its wake channel, then blocks until that Proc either parks
// (in a blocking primitive) or finishes. Shutdown kills all parked Procs by
// waking them with a kill flag; blocking primitives then panic with an
// internal sentinel that the Proc wrapper recovers, so no goroutines leak
// across the thousands of simulations a test run performs.
package simrt

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// errKilled is the sentinel panic value used to unwind a Proc's stack when
// the simulation shuts down while the Proc is parked.
type killedError struct{}

func (killedError) Error() string { return "simrt: proc killed by Shutdown" }

var errKilled = killedError{}

type event struct {
	at  time.Duration
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}
func (h eventHeap) peek() *event { return h[0] }

type wakeMsg struct {
	kill bool
}

// Sim is one simulation instance. It is not safe for concurrent use from
// multiple OS threads except as documented: all API calls must come either
// from the goroutine that calls Run, before/after Run, or from within a Proc
// or scheduled event (which the scheduler serializes).
type Sim struct {
	now     time.Duration
	seq     uint64
	events  eventHeap
	free    []*event // recycled event structs; chaos/replay runs schedule millions
	cur     *Proc
	parkCh  chan struct{}
	stopped bool
	killed  bool
	rng     *rand.Rand
	wg      sync.WaitGroup

	mu    sync.Mutex // guards procs (touched from exiting proc goroutines)
	procs map[*Proc]struct{}

	// Stats counters maintained by the runtime for harness reporting.
	eventsRun uint64
}

// New creates a simulation with the given random seed. The same seed yields
// the same event trace.
func New(seed int64) *Sim {
	return &Sim{
		parkCh: make(chan struct{}),
		rng:    rand.New(rand.NewSource(seed)),
		procs:  make(map[*Proc]struct{}),
	}
}

// Now returns the current virtual time (elapsed since simulation start).
func (s *Sim) Now() time.Duration { return s.now }

// Rand returns the simulation's seeded random source. Use it for every
// random decision inside the simulation to keep runs reproducible.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// EventsRun returns how many events the scheduler has dispatched.
func (s *Sim) EventsRun() uint64 { return s.eventsRun }

// schedule enqueues fn to run at absolute virtual time at. Event structs
// come from the freelist when available, so steady-state scheduling does not
// allocate beyond the caller's closure.
func (s *Sim) schedule(at time.Duration, fn func()) {
	if at < s.now {
		at = s.now
	}
	s.seq++
	var e *event
	if n := len(s.free); n > 0 {
		e = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		e.at, e.seq, e.fn = at, s.seq, fn
	} else {
		e = &event{at: at, seq: s.seq, fn: fn}
	}
	heap.Push(&s.events, e)
}

// maxFreeEvents bounds the freelist so a burst does not pin memory forever.
const maxFreeEvents = 4096

// recycle returns a dispatched event to the freelist, dropping the closure
// reference so the GC can collect captured state.
func (s *Sim) recycle(e *event) {
	e.fn = nil
	if len(s.free) < maxFreeEvents {
		s.free = append(s.free, e)
	}
}

// After schedules fn to run in scheduler context d from now. fn must not
// block; it may send on Chans, spawn Procs, and schedule further events.
func (s *Sim) After(d time.Duration, fn func()) {
	s.schedule(s.now+d, fn)
}

// Proc is one simulated process. All blocking primitives take the Proc so
// the runtime knows which goroutine to park.
type Proc struct {
	sim  *Sim
	name string
	wake chan wakeMsg
}

// Name returns the Proc's debug name.
func (p *Proc) Name() string { return p.name }

// Sim returns the simulation the Proc belongs to.
func (p *Proc) Sim() *Sim { return p.sim }

// Now returns the current virtual time.
func (p *Proc) Now() time.Duration { return p.sim.now }

// Spawn starts fn as a new Proc scheduled to begin at the current virtual
// time. It may be called before Run or from inside the simulation.
func (s *Sim) Spawn(name string, fn func(p *Proc)) *Proc {
	return s.SpawnAfter(0, name, fn)
}

// SpawnAfter starts fn as a new Proc whose first instruction runs d after
// the current virtual time.
func (s *Sim) SpawnAfter(d time.Duration, name string, fn func(p *Proc)) *Proc {
	p := &Proc{sim: s, name: name, wake: make(chan wakeMsg)}
	s.mu.Lock()
	s.procs[p] = struct{}{}
	s.mu.Unlock()
	s.wg.Add(1)
	go p.main(fn)
	s.schedule(s.now+d, func() { s.resume(p, wakeMsg{}) })
	return p
}

// main is the Proc goroutine body: wait for first wake, run fn, and notify
// the scheduler on exit.
func (p *Proc) main(fn func(*Proc)) {
	s := p.sim
	defer s.wg.Done()
	first := <-p.wake
	if first.kill {
		s.dropProc(p)
		return
	}
	killed := false
	func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(killedError); ok {
					killed = true
					return
				}
				panic(r)
			}
		}()
		fn(p)
	}()
	s.dropProc(p)
	if !killed {
		// Normal completion during a live run: hand control back to the
		// scheduler exactly like a park.
		s.parkCh <- struct{}{}
	}
}

func (s *Sim) dropProc(p *Proc) {
	s.mu.Lock()
	delete(s.procs, p)
	s.mu.Unlock()
}

// resume hands control to p and blocks until p parks or exits. Called only
// from scheduler context.
func (s *Sim) resume(p *Proc, m wakeMsg) {
	prev := s.cur
	s.cur = p
	p.wake <- m
	<-s.parkCh
	s.cur = prev
}

// park blocks the calling Proc until resumed. Must be called from p's own
// goroutine. Panics with the kill sentinel if the simulation is shutting
// down.
func (p *Proc) park() {
	p.sim.parkCh <- struct{}{}
	m := <-p.wake
	if m.kill {
		panic(errKilled)
	}
}

// Sleep suspends the Proc for d of virtual time.
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	s := p.sim
	s.schedule(s.now+d, func() { s.resume(p, wakeMsg{}) })
	p.park()
}

// Yield reschedules the Proc at the current virtual time, letting every
// other runnable entity at this instant proceed first.
func (p *Proc) Yield() { p.Sleep(0) }

// Run dispatches events until the queue is empty or Stop is called. It
// returns the virtual time at which it stopped.
func (s *Sim) Run() time.Duration {
	return s.RunUntil(-1)
}

// RunUntil dispatches events until the queue is empty, Stop is called, or
// the next event would run after the horizon (horizon < 0 means no limit).
// It returns the current virtual time when it stops. Events exactly at the
// horizon still run.
func (s *Sim) RunUntil(horizon time.Duration) time.Duration {
	for !s.stopped && s.events.Len() > 0 {
		if horizon >= 0 && s.events.peek().at > horizon {
			s.now = horizon
			return s.now
		}
		e := heap.Pop(&s.events).(*event)
		s.now = e.at
		s.eventsRun++
		fn := e.fn
		s.recycle(e) // safe: e is unreferenced once popped, fn saved locally
		fn()
	}
	return s.now
}

// Stop makes Run return after the currently executing event completes. It
// must be called from inside the simulation (a Proc or event function).
func (s *Sim) Stop() { s.stopped = true }

// Stopped reports whether Stop has been called.
func (s *Sim) Stopped() bool { return s.stopped }

// Rearm clears the Stop latch so Run can dispatch again — used by harnesses
// that drive one simulation through several measured phases.
func (s *Sim) Rearm() { s.stopped = false }

// Shutdown kills every remaining Proc so their goroutines exit. Call it
// after Run returns; the Sim must not be used afterwards.
func (s *Sim) Shutdown() {
	s.killed = true
	s.mu.Lock()
	live := make([]*Proc, 0, len(s.procs))
	for p := range s.procs {
		live = append(live, p)
	}
	s.mu.Unlock()
	for _, p := range live {
		p.wake <- wakeMsg{kill: true}
	}
	s.wg.Wait()
}

// String summarizes scheduler state for debugging.
func (s *Sim) String() string {
	return fmt.Sprintf("sim{t=%v events=%d dispatched=%d}", s.now, s.events.Len(), s.eventsRun)
}

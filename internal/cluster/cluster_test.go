package cluster

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"cxfs/internal/simrt"
	"cxfs/internal/types"
)

// runWorkload spawns one simulated Proc per application process, runs body
// in each, waits for all to finish, quiesces, and returns the virtual time
// the workload took (excluding quiesce).
func runWorkload(t *testing.T, c *Cluster, body func(p *simrt.Proc, pr *Process, idx int)) time.Duration {
	t.Helper()
	g := simrt.NewGroup(c.Sim)
	g.Add(c.NumProcs())
	var workEnd time.Duration
	for i := 0; i < c.NumProcs(); i++ {
		i := i
		pr := c.Proc(i)
		c.Sim.Spawn(fmt.Sprintf("app/%v", pr.ID), func(p *simrt.Proc) {
			body(p, pr, i)
			g.Done()
		})
	}
	c.Sim.Spawn("controller", func(p *simrt.Proc) {
		g.Wait(p)
		workEnd = p.Now()
		c.Quiesce(p)
		c.Sim.Stop()
	})
	deadline := time.Duration(10) * time.Hour
	end := c.Sim.RunUntil(deadline)
	if end >= deadline {
		t.Fatal("workload did not finish within the virtual deadline (likely protocol hang)")
	}
	if !c.Sim.Stopped() {
		t.Fatal("simulation drained without the controller stopping it")
	}
	return workEnd
}

func checkClean(t *testing.T, c *Cluster) {
	t.Helper()
	if bad := c.CheckInvariants(); len(bad) != 0 {
		for _, b := range bad {
			t.Errorf("invariant: %s", b)
		}
	}
}

func smallOptions(proto Protocol) Options {
	o := DefaultOptions(4, proto)
	o.ClientHosts = 4
	o.ProcsPerHost = 2
	return o
}

// TestNewValidatesOptions covers the constructor's input validation: bad
// topologies and unknown protocols must come back as errors (the daemon
// feeds it network input), never as panics deep in construction.
func TestNewValidatesOptions(t *testing.T) {
	bad := []func(*Options){
		func(o *Options) { o.Servers = 0 },
		func(o *Options) { o.Servers = -3 },
		func(o *Options) { o.Servers = 100000 },
		func(o *Options) { o.ClientHosts = -1 },
		func(o *Options) { o.ProcsPerHost = -8 },
		func(o *Options) { o.Protocol = "paxos" },
		func(o *Options) { o.Protocol = "" },
	}
	for i, mutate := range bad {
		o := smallOptions(ProtoCx)
		mutate(&o)
		c, err := New(o)
		if err == nil {
			c.Shutdown()
			t.Errorf("case %d: options %+v accepted", i, o)
		}
	}
	// Zero client topology is a usable default, not an error.
	o := DefaultOptions(2, ProtoCx)
	o.ClientHosts, o.ProcsPerHost = 0, 0
	c, err := New(o)
	if err != nil {
		t.Fatalf("defaulted topology rejected: %v", err)
	}
	if c.NumProcs() == 0 {
		t.Error("zero ClientHosts/ProcsPerHost did not default")
	}
	c.Shutdown()
}

func TestCreateStatRemoveAllProtocols(t *testing.T) {
	for _, proto := range Protocols {
		proto := proto
		t.Run(string(proto), func(t *testing.T) {
			c := MustNew(smallOptions(proto))
			defer c.Shutdown()
			runWorkload(t, c, func(p *simrt.Proc, pr *Process, idx int) {
				for j := 0; j < 20; j++ {
					name := fmt.Sprintf("f-%d-%d", idx, j)
					ino, err := pr.Create(p, types.RootInode, name)
					if err != nil {
						t.Errorf("%v create %s: %v", proto, name, err)
						return
					}
					if _, err := pr.Stat(p, ino); err != nil {
						t.Errorf("%v stat %s: %v", proto, name, err)
					}
					if got, err := pr.Lookup(p, types.RootInode, name); err != nil || got.Ino != ino {
						t.Errorf("%v lookup %s: ino=%d err=%v", proto, name, got.Ino, err)
					}
					if j%3 == 0 {
						if err := pr.Remove(p, types.RootInode, name, ino); err != nil {
							t.Errorf("%v remove %s: %v", proto, name, err)
						}
					}
				}
			})
			checkClean(t, c)
		})
	}
}

func TestMkdirRmdirLinkUnlinkAllProtocols(t *testing.T) {
	for _, proto := range Protocols {
		proto := proto
		t.Run(string(proto), func(t *testing.T) {
			c := MustNew(smallOptions(proto))
			defer c.Shutdown()
			runWorkload(t, c, func(p *simrt.Proc, pr *Process, idx int) {
				dname := fmt.Sprintf("dir-%d", idx)
				dino, err := pr.Mkdir(p, types.RootInode, dname)
				if err != nil {
					t.Errorf("%v mkdir: %v", proto, err)
					return
				}
				fino, err := pr.Create(p, dino, "file")
				if err != nil {
					t.Errorf("%v create in dir: %v", proto, err)
					return
				}
				if err := pr.Link(p, dino, "hardlink", fino); err != nil {
					t.Errorf("%v link: %v", proto, err)
				}
				// rmdir of non-empty directory must fail on the participant.
				if err := pr.Rmdir(p, types.RootInode, dname, dino); err == nil {
					t.Errorf("%v rmdir non-empty succeeded", proto)
				}
				if err := pr.Unlink(p, dino, "hardlink", fino); err != nil {
					t.Errorf("%v unlink: %v", proto, err)
				}
				if err := pr.Remove(p, dino, "file", fino); err != nil {
					t.Errorf("%v remove: %v", proto, err)
				}
				if err := pr.Rmdir(p, types.RootInode, dname, dino); err != nil {
					t.Errorf("%v rmdir empty: %v", proto, err)
				}
			})
			checkClean(t, c)
		})
	}
}

func TestDuplicateCreateFailsConsistently(t *testing.T) {
	for _, proto := range Protocols {
		proto := proto
		t.Run(string(proto), func(t *testing.T) {
			c := MustNew(smallOptions(proto))
			defer c.Shutdown()
			failures := 0
			runWorkload(t, c, func(p *simrt.Proc, pr *Process, idx int) {
				// Every process races to create the same name.
				if _, err := pr.Create(p, types.RootInode, "contested"); err != nil {
					failures++
					if !errors.Is(err, types.ErrExists) && !errors.Is(err, types.ErrAborted) {
						t.Errorf("%v unexpected error class: %v", proto, err)
					}
				}
			})
			if want := c.NumProcs() - 1; failures != want {
				t.Errorf("%v: %d failures, want %d (exactly one winner)", proto, failures, want)
			}
			checkClean(t, c)
		})
	}
}

func TestCxLazyCommitmentDefersThenSettles(t *testing.T) {
	o := smallOptions(ProtoCx)
	o.Cx.Timeout = time.Hour // no trigger fires during the workload
	c := MustNew(o)
	defer c.Shutdown()
	var pendingAtEnd int
	g := simrt.NewGroup(c.Sim)
	g.Add(c.NumProcs())
	for i := 0; i < c.NumProcs(); i++ {
		i := i
		pr := c.Proc(i)
		c.Sim.Spawn("app", func(p *simrt.Proc) {
			for j := 0; j < 10; j++ {
				if _, err := pr.Create(p, types.RootInode, fmt.Sprintf("lazy-%d-%d", i, j)); err != nil {
					t.Errorf("create: %v", err)
				}
			}
			g.Done()
		})
	}
	c.Sim.Spawn("controller", func(p *simrt.Proc) {
		g.Wait(p)
		for _, srv := range c.CxSrv {
			pendingAtEnd += srv.PendingOps()
		}
		c.Quiesce(p)
		c.Sim.Stop()
	})
	c.Sim.Run()
	if pendingAtEnd == 0 {
		t.Error("no pending commitments right after the workload; lazy commitment is not deferring")
	}
	after := 0
	for _, srv := range c.CxSrv {
		after += srv.PendingOps()
	}
	if after != 0 {
		t.Errorf("%d commitments still pending after quiesce", after)
	}
	checkClean(t, c)
}

func TestCxTimeoutTriggerCommitsWithoutHelp(t *testing.T) {
	o := smallOptions(ProtoCx)
	o.Cx.Timeout = 500 * time.Millisecond
	c := MustNew(o)
	defer c.Shutdown()
	c.Sim.Spawn("app", func(p *simrt.Proc) {
		pr := c.Proc(0)
		for j := 0; j < 5; j++ {
			if _, err := pr.Create(p, types.RootInode, fmt.Sprintf("t-%d", j)); err != nil {
				t.Errorf("create: %v", err)
			}
		}
		// Wait out several trigger periods without quiescing manually.
		p.Sleep(3 * time.Second)
		total := 0
		for _, srv := range c.CxSrv {
			total += srv.PendingOps()
		}
		if total != 0 {
			t.Errorf("%d ops still pending; timeout trigger did not fire", total)
		}
		c.Sim.Stop()
	})
	c.Sim.Run()
}

func TestCxThresholdTrigger(t *testing.T) {
	o := smallOptions(ProtoCx)
	o.Cx.Timeout = time.Hour
	o.Cx.Threshold = 5
	c := MustNew(o)
	defer c.Shutdown()
	c.Sim.Spawn("app", func(p *simrt.Proc) {
		pr := c.Proc(0)
		for j := 0; j < 40; j++ {
			if _, err := pr.Create(p, types.RootInode, fmt.Sprintf("th-%d", j)); err != nil {
				t.Errorf("create: %v", err)
			}
		}
		p.Sleep(2 * time.Second)
		total := 0
		lazy := uint64(0)
		for _, srv := range c.CxSrv {
			total += srv.PendingOps()
			lazy += srv.Stats().LazyBatches
		}
		if lazy == 0 {
			t.Error("threshold trigger never fired")
		}
		if total >= 40 {
			t.Errorf("threshold trigger left %d pending", total)
		}
		c.Sim.Stop()
	})
	c.Sim.Run()
}

func TestCxConflictForcesImmediateCommit(t *testing.T) {
	o := smallOptions(ProtoCx)
	o.Cx.Timeout = time.Hour
	c := MustNew(o)
	defer c.Shutdown()
	var sharedIno types.InodeID
	ready := simrt.NewChan[struct{}](c.Sim)
	g := simrt.NewGroup(c.Sim)
	g.Add(2)
	// Process 0 creates a file (stays uncommitted); process from another
	// host links to the same inode -> conflict on the inode object.
	c.Sim.Spawn("creator", func(p *simrt.Proc) {
		pr := c.Proc(0)
		// Retry names until the create is genuinely cross-server (a
		// colocated create commits locally and leaves nothing active).
		for try := 0; ; try++ {
			name := fmt.Sprintf("shared-%d", try)
			ino := pr.AllocInode()
			if c.Placement.CoordinatorFor(types.RootInode, name) == c.Placement.ParticipantFor(ino) {
				continue
			}
			if _, err := pr.Do(p, types.Op{ID: pr.NextID(), Kind: types.OpCreate,
				Parent: types.RootInode, Name: name, Ino: ino, Type: types.FileRegular}); err != nil {
				t.Errorf("create: %v", err)
			}
			sharedIno = ino
			break
		}
		ready.Send(struct{}{})
		g.Done()
	})
	c.Sim.Spawn("linker", func(p *simrt.Proc) {
		ready.Recv(p)
		pr := c.Proc(c.NumProcs() - 1) // different host, different process
		if err := pr.Link(p, types.RootInode, "shared2", sharedIno); err != nil {
			t.Errorf("link: %v", err)
		}
		g.Done()
	})
	c.Sim.Spawn("controller", func(p *simrt.Proc) {
		g.Wait(p)
		c.Quiesce(p)
		c.Sim.Stop()
	})
	c.Sim.Run()
	var conflicts, immediates uint64
	for _, srv := range c.CxSrv {
		conflicts += srv.Stats().Conflicts
		immediates += srv.Stats().ImmediateCommits
	}
	if conflicts == 0 {
		t.Error("no conflict detected on the shared inode")
	}
	if immediates == 0 {
		t.Error("conflict did not launch an immediate commitment")
	}
	checkClean(t, c)
}

func TestCxReadOfActiveObjectBlocksUntilCommit(t *testing.T) {
	o := smallOptions(ProtoCx)
	o.Cx.Timeout = time.Hour
	c := MustNew(o)
	defer c.Shutdown()
	var created types.InodeID
	ready := simrt.NewChan[struct{}](c.Sim)
	c.Sim.Spawn("creator", func(p *simrt.Proc) {
		pr := c.Proc(0)
		ino, err := pr.Create(p, types.RootInode, "observed")
		if err != nil {
			t.Errorf("create: %v", err)
		}
		created = ino
		ready.Send(struct{}{})
	})
	c.Sim.Spawn("reader", func(p *simrt.Proc) {
		ready.Recv(p)
		pr := c.Proc(c.NumProcs() - 1)
		start := p.Now()
		in, err := pr.Stat(p, created)
		if err != nil {
			t.Errorf("stat: %v", err)
		}
		if in.Nlink < 1 {
			t.Errorf("stat observed uncommitted garbage: %+v", in)
		}
		if p.Now() == start {
			t.Error("stat of an active object returned instantly; conflict blocking is off")
		}
		c.Sim.Stop()
	})
	c.Sim.RunUntil(time.Hour)
	if !c.Sim.Stopped() {
		t.Fatal("reader never unblocked: immediate commitment for the conflict never ran")
	}
}

func TestSameProcessReadsItsOwnPendingWrite(t *testing.T) {
	o := smallOptions(ProtoCx)
	o.Cx.Timeout = time.Hour
	c := MustNew(o)
	defer c.Shutdown()
	c.Sim.Spawn("app", func(p *simrt.Proc) {
		pr := c.Proc(0)
		ino, err := pr.Create(p, types.RootInode, "mine")
		if err != nil {
			t.Errorf("create: %v", err)
		}
		start := p.Now()
		if _, err := pr.Stat(p, ino); err != nil {
			t.Errorf("stat own pending file: %v", err)
		}
		// Same process: no conflict, so no commitment wait (well under the
		// immediate-commitment round trip).
		if p.Now()-start > 5*time.Millisecond {
			t.Errorf("own-process stat took %v; it conflicted with itself", p.Now()-start)
		}
		c.Sim.Stop()
	})
	c.Sim.Run()
	var conflicts uint64
	for _, srv := range c.CxSrv {
		conflicts += srv.Stats().Conflicts
	}
	if conflicts != 0 {
		t.Errorf("own-process access counted %d conflicts; paper requires none", conflicts)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() (time.Duration, uint64) {
		c := MustNew(smallOptions(ProtoCx))
		defer c.Shutdown()
		d := runWorkload(t, c, func(p *simrt.Proc, pr *Process, idx int) {
			for j := 0; j < 10; j++ {
				pr.Create(p, types.RootInode, fmt.Sprintf("d-%d-%d", idx, j))
			}
		})
		return d, c.MsgStats().Messages
	}
	d1, m1 := run()
	d2, m2 := run()
	if d1 != d2 || m1 != m2 {
		t.Errorf("nondeterministic: (%v,%d) vs (%v,%d)", d1, m1, d2, m2)
	}
}

func TestColocatedOpsAreLocal(t *testing.T) {
	// With one server every op is colocated; the cluster must still work.
	for _, proto := range Protocols {
		proto := proto
		t.Run(string(proto), func(t *testing.T) {
			o := DefaultOptions(1, proto)
			o.ClientHosts = 2
			o.ProcsPerHost = 2
			c := MustNew(o)
			defer c.Shutdown()
			runWorkload(t, c, func(p *simrt.Proc, pr *Process, idx int) {
				for j := 0; j < 5; j++ {
					name := fmt.Sprintf("l-%d-%d", idx, j)
					if _, err := pr.Create(p, types.RootInode, name); err != nil {
						t.Errorf("%v create: %v", proto, err)
					}
				}
			})
			checkClean(t, c)
		})
	}
}

func TestCxFasterThanSEOnCreateStorm(t *testing.T) {
	// The headline effect: concurrent execution + batched commitment beats
	// serial execution with synchronous writes.
	times := make(map[Protocol]time.Duration)
	for _, proto := range []Protocol{ProtoSE, ProtoSEBatched, ProtoCx} {
		c := MustNew(smallOptions(proto))
		times[proto] = runWorkload(t, c, func(p *simrt.Proc, pr *Process, idx int) {
			for j := 0; j < 25; j++ {
				pr.Create(p, types.RootInode, fmt.Sprintf("s-%d-%d", idx, j))
			}
		})
		checkClean(t, c)
		c.Shutdown()
	}
	if times[ProtoCx] >= times[ProtoSE] {
		t.Errorf("Cx (%v) not faster than SE (%v)", times[ProtoCx], times[ProtoSE])
	}
	if times[ProtoSEBatched] >= times[ProtoSE] {
		t.Errorf("SE-batched (%v) not faster than SE (%v)", times[ProtoSEBatched], times[ProtoSE])
	}
	if times[ProtoCx] >= times[ProtoSEBatched] {
		t.Errorf("Cx (%v) not faster than SE-batched (%v)", times[ProtoCx], times[ProtoSEBatched])
	}
}

func TestMessageCountsSane(t *testing.T) {
	c := MustNew(smallOptions(ProtoCx))
	defer c.Shutdown()
	runWorkload(t, c, func(p *simrt.Proc, pr *Process, idx int) {
		for j := 0; j < 10; j++ {
			pr.Create(p, types.RootInode, fmt.Sprintf("m-%d-%d", idx, j))
		}
	})
	st := c.MsgStats()
	if st.Messages == 0 || st.Bytes == 0 {
		t.Fatalf("no traffic recorded: %+v", st)
	}
	// Each cross-server create needs >= 2 requests + 2 responses.
	if st.Messages < uint64(c.NumProcs()*10*2) {
		t.Errorf("implausibly few messages: %d", st.Messages)
	}
}

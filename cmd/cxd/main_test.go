package main

import (
	"bufio"
	"encoding/json"
	"net"
	"strings"
	"testing"
	"time"
)

func TestDispatchCommands(t *testing.T) {
	s := &server{}
	if out, err := s.dispatch(Request{Cmd: "ping"}); err != nil || out != "pong" {
		t.Errorf("ping: %q %v", out, err)
	}
	if out, err := s.dispatch(Request{Cmd: "experiments"}); err != nil || !strings.Contains(out, "fig5") {
		t.Errorf("experiments: %q %v", out, err)
	}
	if _, err := s.dispatch(Request{Cmd: "nope"}); err == nil {
		t.Error("unknown command accepted")
	}
	if _, err := s.dispatch(Request{Cmd: "run", Exp: "nope"}); err == nil {
		t.Error("unknown experiment accepted")
	}
	if _, err := s.dispatch(Request{Cmd: "replay", Trace: "nope"}); err == nil {
		t.Error("unknown trace accepted")
	}
}

// TestValidateRejectsBadInput covers the request validation the daemon used
// to lack: unknown protocols and out-of-range numeric knobs must come back
// as errors, never reach cluster construction, and never panic.
func TestValidateRejectsBadInput(t *testing.T) {
	s := &server{}
	bad := []Request{
		{Cmd: "replay", Trace: "CTH", Protocol: "bogus"},
		{Cmd: "metarates", Protocol: "paxos"},
		{Cmd: "replay", Trace: "CTH", Servers: -4},
		{Cmd: "replay", Trace: "CTH", Servers: 5000},
		{Cmd: "run", Exp: "table2", Scale: -0.5},
		{Cmd: "run", Exp: "table2", Scale: 1.5},
		{Cmd: "metarates", Ops: -1},
		{Cmd: "replay", Trace: "CTH", Seed: -7},
	}
	for _, req := range bad {
		if _, err := s.dispatch(req); err == nil {
			t.Errorf("accepted %+v", req)
		}
	}
	// handle() must convert the same failures into error responses, not
	// panics that would kill the daemon.
	for _, req := range bad {
		if resp := s.handle(req); resp.OK || resp.Error == "" {
			t.Errorf("handle(%+v) = %+v, want error response", req, resp)
		}
	}
}

func TestReportCommand(t *testing.T) {
	s := &server{}
	if _, err := s.dispatch(Request{Cmd: "report"}); err == nil {
		t.Error("report before any run should error")
	}
	if _, err := s.dispatch(Request{Cmd: "replay", Trace: "CTH", Scale: 0.0005, Servers: 2}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	out, err := s.dispatch(Request{Cmd: "report"})
	if err != nil {
		t.Fatalf("report: %v", err)
	}
	if !strings.Contains(out, "p50") || !strings.Contains(out, "protocol") {
		t.Errorf("report output missing histogram table:\n%s", out)
	}
}

func TestDispatchReplayAndMetarates(t *testing.T) {
	s := &server{}
	out, err := s.dispatch(Request{Cmd: "replay", Trace: "CTH", Protocol: "cx", Scale: 0.001, Servers: 2, Seed: 1})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if !strings.Contains(out, "workload=CTH") || !strings.Contains(out, "protocol=cx") {
		t.Errorf("replay output: %s", out)
	}
	out, err = s.dispatch(Request{Cmd: "metarates", Mix: "read-dominated", Servers: 2, Ops: 10, Seed: 1})
	if err != nil {
		t.Fatalf("metarates: %v", err)
	}
	if !strings.Contains(out, "mix=read-dominated") || !strings.Contains(out, "throughput=") {
		t.Errorf("metarates output: %s", out)
	}
}

func TestServeOverRealSocket(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	srv := &server{}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go srv.serve(c)
		}
	}()
	conn, err := net.DialTimeout("tcp", ln.Addr().String(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(30 * time.Second))
	enc := json.NewEncoder(conn)
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 64<<10), 1<<20)

	send := func(req Request) Response {
		t.Helper()
		if err := enc.Encode(req); err != nil {
			t.Fatal(err)
		}
		if !sc.Scan() {
			t.Fatal("no response")
		}
		var resp Response
		if err := json.Unmarshal(sc.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		return resp
	}

	if r := send(Request{Cmd: "ping"}); !r.OK || r.Output != "pong" {
		t.Errorf("ping: %+v", r)
	}
	if r := send(Request{Cmd: "bogus"}); r.OK || r.Error == "" {
		t.Errorf("bogus: %+v", r)
	}
	if r := send(Request{Cmd: "replay", Trace: "CTH", Scale: 0.0005, Servers: 2}); !r.OK {
		t.Errorf("replay over socket: %+v", r)
	}

	// Regression: these requests used to panic inside cluster construction
	// and kill the daemon. They must come back as error responses, and the
	// daemon must keep answering afterwards.
	if r := send(Request{Cmd: "replay", Trace: "CTH", Protocol: "bogus"}); r.OK || r.Error == "" {
		t.Errorf("bogus protocol: %+v", r)
	}
	if r := send(Request{Cmd: "replay", Trace: "CTH", Servers: -4}); r.OK || r.Error == "" {
		t.Errorf("negative servers: %+v", r)
	}
	if r := send(Request{Cmd: "ping"}); !r.OK || r.Output != "pong" {
		t.Errorf("daemon dead after malformed requests: %+v", r)
	}
}

// Package types defines the identifiers, operation vocabulary, and metadata
// object keys shared by every layer of the cxfs reproduction: the namespace
// shard, the wire protocol, the Cx core, and the baseline protocols.
//
// The definitions follow section III.A of the paper: an operation is uniquely
// identified by (client ID, process ID, sequence number); a cross-server
// operation splits into exactly two sub-operations, one on the coordinator
// (the server holding the parent directory entry partition) and one on the
// participant (the server holding the file inode), per Table I.
package types

import (
	"errors"
	"fmt"
	"time"
)

// NodeID identifies a node (metadata server or client host) in the cluster.
// Servers are numbered from 0; client hosts use a disjoint range assigned by
// the cluster builder.
type NodeID int32

// String renders a NodeID for logs and traces.
func (n NodeID) String() string { return fmt.Sprintf("node%d", int32(n)) }

// ProcID identifies one application process: the coalescence of a client
// host ID and a per-host process index, as in the paper's operation ID.
type ProcID struct {
	Client NodeID // client host the process runs on
	Index  int32  // process index within the host
}

// String renders a ProcID.
func (p ProcID) String() string { return fmt.Sprintf("p%d.%d", int32(p.Client), p.Index) }

// OpID uniquely identifies a metadata operation cluster-wide. Seq is assigned
// monotonically by the issuing process.
type OpID struct {
	Proc ProcID
	Seq  uint64
}

// NilOp is the zero OpID, used as the "[null]" conflict hint.
var NilOp = OpID{}

// IsNil reports whether the OpID is the null hint.
func (o OpID) IsNil() bool { return o == NilOp }

// String renders an OpID; the null hint prints as "[null]" to match the
// paper's notation.
func (o OpID) String() string {
	if o.IsNil() {
		return "[null]"
	}
	return fmt.Sprintf("%s#%d", o.Proc, o.Seq)
}

// OpKind enumerates the metadata operations handled by the system. The first
// six are the cross-server operations of Table I; Stat and Lookup are
// single-server reads; SetAttr is a single-server update; Rename is the
// >2-server operation the paper excludes from Cx (we route it through a 2PC
// fallback as a documented extension).
type OpKind uint8

const (
	OpInvalid OpKind = iota
	OpCreate
	OpRemove
	OpMkdir
	OpRmdir
	OpLink
	OpUnlink
	OpStat
	OpLookup
	OpSetAttr
	OpRename
	// OpReaddir lists a directory; because directories are striped, the
	// client fans it out to every server and unions the partitions.
	OpReaddir
	opKindCount // sentinel for validation and array sizing
)

// NumOpKinds is the number of valid operation kinds (excluding OpInvalid).
const NumOpKinds = int(opKindCount) - 1

var opKindNames = [...]string{
	OpInvalid: "invalid",
	OpCreate:  "create",
	OpRemove:  "remove",
	OpMkdir:   "mkdir",
	OpRmdir:   "rmdir",
	OpLink:    "link",
	OpUnlink:  "unlink",
	OpStat:    "stat",
	OpLookup:  "lookup",
	OpSetAttr: "setattr",
	OpRename:  "rename",
	OpReaddir: "readdir",
}

// String returns the lowercase name of the operation kind.
func (k OpKind) String() string {
	if int(k) < len(opKindNames) {
		return opKindNames[k]
	}
	return fmt.Sprintf("opkind(%d)", uint8(k))
}

// Valid reports whether k names a real operation.
func (k OpKind) Valid() bool { return k > OpInvalid && k < opKindCount }

// CrossServer reports whether the operation kind updates metadata on two
// servers (when the coordinator and participant placements differ).
func (k OpKind) CrossServer() bool {
	switch k {
	case OpCreate, OpRemove, OpMkdir, OpRmdir, OpLink, OpUnlink, OpRename:
		return true
	}
	return false
}

// Mutating reports whether the operation kind updates any metadata at all.
func (k OpKind) Mutating() bool {
	return k.CrossServer() || k == OpSetAttr
}

// ParseOpKind maps a lowercase name back to its OpKind.
func ParseOpKind(s string) (OpKind, error) {
	for k := OpCreate; k < opKindCount; k++ {
		if opKindNames[k] == s {
			return k, nil
		}
	}
	return OpInvalid, fmt.Errorf("types: unknown op kind %q", s)
}

// InodeID identifies a file or directory inode cluster-wide. Inode 1 is the
// filesystem root; 0 is invalid.
type InodeID uint64

// RootInode is the inode number of the filesystem root directory.
const RootInode InodeID = 1

// ObjKind distinguishes the two metadata object classes a sub-operation can
// touch: a directory entry (dentry) or an inode.
type ObjKind uint8

const (
	ObjDentry ObjKind = iota + 1
	ObjInode
)

// String renders an ObjKind.
func (k ObjKind) String() string {
	switch k {
	case ObjDentry:
		return "dentry"
	case ObjInode:
		return "inode"
	}
	return fmt.Sprintf("objkind(%d)", uint8(k))
}

// ObjKey names one metadata object. For a dentry, Dir and Name identify the
// entry and Ino is ignored; for an inode, Ino identifies it and Dir/Name are
// zero. ObjKey is comparable and is the unit of conflict detection: the
// active-object table in the Cx core maps ObjKey -> pending operation.
type ObjKey struct {
	Kind ObjKind
	Dir  InodeID // parent directory inode (dentry keys only)
	Name string  // entry name (dentry keys only)
	Ino  InodeID // inode number (inode keys only)
}

// DentryKey builds the key of the entry name in directory dir.
func DentryKey(dir InodeID, name string) ObjKey {
	return ObjKey{Kind: ObjDentry, Dir: dir, Name: name}
}

// InodeKey builds the key of inode ino.
func InodeKey(ino InodeID) ObjKey {
	return ObjKey{Kind: ObjInode, Ino: ino}
}

// String renders an ObjKey.
func (k ObjKey) String() string {
	switch k.Kind {
	case ObjDentry:
		return fmt.Sprintf("dentry(%d,%q)", k.Dir, k.Name)
	case ObjInode:
		return fmt.Sprintf("inode(%d)", k.Ino)
	}
	return "objkey(invalid)"
}

// FileType is the type bit stored in an inode.
type FileType uint8

const (
	FileRegular FileType = iota + 1
	FileDir
)

// String renders a FileType.
func (t FileType) String() string {
	switch t {
	case FileRegular:
		return "file"
	case FileDir:
		return "dir"
	}
	return fmt.Sprintf("filetype(%d)", uint8(t))
}

// Role distinguishes the two servers of a cross-server operation.
type Role uint8

const (
	RoleCoordinator Role = iota + 1
	RoleParticipant
)

// String renders a Role.
func (r Role) String() string {
	switch r {
	case RoleCoordinator:
		return "coordinator"
	case RoleParticipant:
		return "participant"
	}
	return fmt.Sprintf("role(%d)", uint8(r))
}

// Inode is the attribute block stored per file or directory, shared between
// the namespace shard (which persists it) and the wire layer (which carries
// it in stat/lookup responses and CE migrations).
type Inode struct {
	Ino   InodeID
	Type  FileType
	Nlink uint32
	Size  uint64
	Ctime uint64 // virtual nanoseconds
	Mtime uint64
}

// RowImage is a point-in-time image of one database row: Val == nil means
// the row is absent. Result-Records carry before/after images of the rows a
// sub-operation wrote, so crash recovery can redo a committed operation or
// undo an aborted one idempotently by installing images instead of
// re-running non-idempotent logic.
type RowImage struct {
	Key string
	Val []byte // nil = row absent
}

// Errors shared across layers. Protocol code wraps these with context; tests
// and the harness match them with errors.Is.
var (
	// ErrExists reports that a create/mkdir/link target entry already exists.
	ErrExists = errors.New("entry exists")
	// ErrNotFound reports a missing entry or inode.
	ErrNotFound = errors.New("not found")
	// ErrNotEmpty reports an rmdir of a non-empty directory.
	ErrNotEmpty = errors.New("directory not empty")
	// ErrNotDir reports a directory operation on a non-directory inode.
	ErrNotDir = errors.New("not a directory")
	// ErrIsDir reports a file operation on a directory inode.
	ErrIsDir = errors.New("is a directory")
	// ErrAborted reports that a cross-server operation was aborted because
	// one of its sub-operations failed (the paper's ALL-NO outcome).
	ErrAborted = errors.New("operation aborted")
	// ErrServerDown reports that a request reached a crashed server.
	ErrServerDown = errors.New("server down")
	// ErrLogFull reports that a server's operation log hit its upper limit
	// and the request had to wait for pruning (surfaced only by tests; the
	// protocol blocks rather than failing).
	ErrLogFull = errors.New("operation log full")
	// ErrInvalidated reports a sub-op response superseded by invalidation
	// during disordered-conflict handling.
	ErrInvalidated = errors.New("execution invalidated")
	// ErrTimeout reports that a client exhausted its retry budget without
	// receiving a reply. The operation's outcome is UNKNOWN: it may have
	// executed (and even committed) on the servers. Callers must not treat
	// it as a definite failure.
	ErrTimeout = errors.New("operation timed out (outcome unknown)")
)

// RetryPolicy governs client-side RPC timeouts and retries. The zero value
// disables retries entirely: the client blocks until a reply arrives, which
// is the correct behavior on a fault-free network (and what benchmarks use).
// With a non-zero Timeout the client retransmits after each timeout with
// exponential backoff, relying on server-side duplicate suppression for
// at-most-once effects, and gives up with ErrTimeout after Attempts tries.
type RetryPolicy struct {
	// Timeout is the wait for the first attempt's reply. Zero disables
	// timeouts and retries.
	Timeout time.Duration
	// MaxTimeout caps the exponential backoff. Zero means 8*Timeout.
	MaxTimeout time.Duration
	// Attempts is the total number of tries (first send included) before
	// the client gives up with ErrTimeout. Zero means 6.
	Attempts int
}

// Enabled reports whether the policy actually retries.
func (r RetryPolicy) Enabled() bool { return r.Timeout > 0 }

// MaxAttempts returns the effective attempt budget.
func (r RetryPolicy) MaxAttempts() int {
	if r.Attempts > 0 {
		return r.Attempts
	}
	return 6
}

// WaitFor returns the reply wait for the given zero-based attempt:
// Timeout doubled per attempt, capped at MaxTimeout.
func (r RetryPolicy) WaitFor(attempt int) time.Duration {
	d := r.Timeout
	for i := 0; i < attempt; i++ {
		d *= 2
		if d >= r.maxWait() {
			return r.maxWait()
		}
	}
	if m := r.maxWait(); d > m {
		return m
	}
	return d
}

func (r RetryPolicy) maxWait() time.Duration {
	if r.MaxTimeout > 0 {
		return r.MaxTimeout
	}
	return 8 * r.Timeout
}

package harness

import (
	"fmt"
	"time"

	"cxfs/internal/cluster"
	"cxfs/internal/metarates"
	"cxfs/internal/stats"
)

// StatStormRow is one (protocol, cache) cell of the stat-storm experiment:
// a read-only recursive walk storm over a deep tree, with the leased client
// metadata cache off and on.
type StatStormRow struct {
	Protocol      string
	Cache         string // "off" | "on"
	Lookups       uint64
	Messages      uint64
	MsgsPerLookup float64
	HitRate       float64 // cache hits / lookups (0 with the cache off)
	Elapsed       time.Duration
	Reduction     float64 // off/on message ratio; set on "on" rows
}

// statStormTTL keeps leases alive across the whole measured storm, so the
// experiment reads the cache's steady-state benefit, not TTL churn.
const statStormTTL = 30 * time.Second

// StatStorm measures the leased cache's round-trip reduction on Cx and the
// OFS (SE) baseline. The walk count scales with cfg.Scale; the tree shape
// is fixed. Returns the rows, the printable table, and the worst off/on
// message-reduction ratio across protocols — the CI gate value.
func StatStorm(cfg Config) ([]StatStormRow, *stats.Table, float64) {
	walks := int(cfg.Scale * 2500)
	if walks < 3 {
		walks = 3
	}
	if walks > 50 {
		walks = 50
	}
	storm := metarates.StormConfig{Depth: 4, Files: 6, Walks: walks}

	var rows []StatStormRow
	tbl := stats.NewTable(
		fmt.Sprintf("Stat-storm: %d-deep tree, %d files/level, %d walks/proc (client cache off vs on)",
			storm.Depth, storm.Files, storm.Walks),
		"Protocol", "Cache", "Lookups", "Messages", "Msgs/Lookup", "Hit rate", "Reduction")

	worst := 0.0
	for _, proto := range []cluster.Protocol{cluster.ProtoSE, cluster.ProtoCx} {
		var offMsgs uint64
		for _, ttl := range []time.Duration{0, statStormTTL} {
			o := cluster.DefaultOptions(cfg.Servers, proto)
			o.ClientHosts = 4
			o.ProcsPerHost = 2
			o.Seed = cfg.Seed
			o.Obs = cfg.Obs
			o.CacheTTL = ttl
			c := cluster.MustNew(o)
			res := metarates.RunStorm(c, storm)
			if bad := c.CheckInvariants(); len(bad) != 0 {
				panic(fmt.Sprintf("statstorm %s ttl=%v: invariants: %v", proto, ttl, bad))
			}
			c.Shutdown()

			row := StatStormRow{
				Protocol: string(proto), Cache: "off",
				Lookups: res.Lookups, Messages: res.Messages,
				MsgsPerLookup: res.MsgsPerLookup, Elapsed: res.Elapsed,
			}
			if ttl > 0 {
				row.Cache = "on"
				if res.Lookups > 0 {
					row.HitRate = float64(res.CacheHits) / float64(res.Lookups)
				}
				if res.Messages > 0 {
					row.Reduction = float64(offMsgs) / float64(res.Messages)
				}
				if worst == 0 || row.Reduction < worst {
					worst = row.Reduction
				}
			} else {
				offMsgs = res.Messages
			}
			rows = append(rows, row)
			red := "-"
			if row.Reduction > 0 {
				red = fmt.Sprintf("%.1fx", row.Reduction)
			}
			tbl.Add(row.Protocol, row.Cache, row.Lookups, row.Messages,
				fmt.Sprintf("%.2f", row.MsgsPerLookup), stats.Pct(row.HitRate), red)
		}
	}
	return rows, tbl, worst
}

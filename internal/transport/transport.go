// Package transport delivers wire messages between simulated nodes,
// substituting for the paper's 10GigE network and Catalyst switches.
//
// Net charges each message a fixed one-way latency plus size/bandwidth
// transfer time, then deposits it in the destination node's inbox. It also
// keeps the per-message-type counters behind Table IV of the paper (message
// overhead of OFS-Cx vs OFS): the harness snapshots Stats before and after a
// trace replay.
//
// Delivery preserves per-sender-pair FIFO order (all messages see the same
// latency function, and simultaneous deliveries dispatch in send order),
// which the Cx disordered-conflict machinery does NOT rely on across
// *different* senders: two processes' sub-ops may arrive at the two servers
// in opposite orders, which is exactly the disordered case of §III.C.
// Fault injection weakens this further: a link with a non-zero DelayProb
// may reorder messages from the same sender, and DupProb may deliver a
// message twice. Protocol code must tolerate both.
//
// Faults are configured per directed link (SetLinkFaults) or as a default
// for all links (SetDefaultFaults), and directed partitions cut a link
// entirely (Partition/Heal). All randomness comes from the simulation's
// seeded RNG, so a given seed reproduces the exact same loss pattern.
package transport

import (
	"time"

	"cxfs/internal/simrt"
	"cxfs/internal/types"
	"cxfs/internal/wire"
)

// Params is the network cost model.
type Params struct {
	// Latency is the one-way propagation plus switching delay.
	Latency time.Duration
	// Bandwidth is the per-link bandwidth in bytes/second.
	Bandwidth int64
	// CPUOverhead is the per-message sender-side processing charge; the
	// receiver pays its own service time in the server loop.
	CPUOverhead time.Duration
}

// DefaultParams models the paper's 10GigE fabric.
func DefaultParams() Params {
	return Params{
		Latency:     60 * time.Microsecond,
		Bandwidth:   1250 << 20, // 10 Gb/s ≈ 1.25 GB/s
		CPUOverhead: 5 * time.Microsecond,
	}
}

// Stats counts traffic. Indexing by message type feeds Table IV.
type Stats struct {
	Messages uint64
	Bytes    int64
	ByType   [wire.NumMsgTypes]uint64
	// DroppedDown counts messages lost because the destination was crashed
	// at delivery time (the failure model of §III.D: the network loses
	// them, senders discover the crash by timeout).
	DroppedDown uint64
	// DroppedUnroutable counts messages addressed to a node that was never
	// registered — a stale route, not a fatal simulation error.
	DroppedUnroutable uint64
	// DroppedInvalid counts messages that violate the wire limits
	// (wire.Validate) — a real NIC could not frame them, so the simulated
	// one refuses too rather than deliver something unencodable.
	DroppedInvalid uint64
	// DroppedFault counts messages lost to an injected link drop fault.
	DroppedFault uint64
	// DroppedPartition counts messages lost to a directed partition.
	DroppedPartition uint64
	// Duplicated counts extra copies delivered by a duplicate fault (the
	// copies themselves are not counted in Messages).
	Duplicated uint64
	// Delayed counts messages that drew an extra injected delay.
	Delayed uint64
}

// Total returns the total message count (convenience for Table IV).
func (s Stats) Total() uint64 { return s.Messages }

// Sub returns s minus earlier, for before/after snapshots.
func (s Stats) Sub(earlier Stats) Stats {
	out := Stats{
		Messages:          s.Messages - earlier.Messages,
		Bytes:             s.Bytes - earlier.Bytes,
		DroppedDown:       s.DroppedDown - earlier.DroppedDown,
		DroppedUnroutable: s.DroppedUnroutable - earlier.DroppedUnroutable,
		DroppedInvalid:    s.DroppedInvalid - earlier.DroppedInvalid,
		DroppedFault:      s.DroppedFault - earlier.DroppedFault,
		DroppedPartition:  s.DroppedPartition - earlier.DroppedPartition,
		Duplicated:        s.Duplicated - earlier.Duplicated,
		Delayed:           s.Delayed - earlier.Delayed,
	}
	for i := range s.ByType {
		out.ByType[i] = s.ByType[i] - earlier.ByType[i]
	}
	return out
}

// Faults is the per-link fault model. Probabilities are in [0,1] and are
// drawn independently per message in a fixed order (drop, then duplicate,
// then delay) from the simulation RNG, so a seed fully determines the
// fault pattern.
type Faults struct {
	// DropProb is the probability a message is silently lost.
	DropProb float64
	// DupProb is the probability a second copy of the message is delivered
	// (after its own independently-drawn extra delay, so the copies may
	// arrive in either order).
	DupProb float64
	// DelayProb is the probability a message is held for an extra uniform
	// [0, DelayMax) beyond the modeled network delay, which can reorder it
	// behind later messages from the same sender.
	DelayProb float64
	// DelayMax bounds the injected extra delay. Zero disables delays even
	// if DelayProb is set.
	DelayMax time.Duration
}

// Active reports whether the fault spec can affect any message.
func (f Faults) Active() bool {
	return f.DropProb > 0 || f.DupProb > 0 || (f.DelayProb > 0 && f.DelayMax > 0)
}

// link is a directed sender->receiver pair.
type link struct{ from, to types.NodeID }

// Net is the simulated network.
type Net struct {
	sim    *simrt.Sim
	params Params
	boxes  map[types.NodeID]*simrt.Chan[wire.Msg]
	down   map[types.NodeID]bool
	stats  Stats
	tap    func(wire.Msg)

	defaultFaults Faults
	linkFaults    map[link]Faults
	cuts          map[link]bool
}

// SetTap installs an observer invoked (synchronously, in simulation
// context) for every message sent — the message-sequence fidelity tests
// use it to assert the exact communication patterns of the paper's
// Figures 1 and 2. Pass nil to remove.
func (n *Net) SetTap(fn func(wire.Msg)) { n.tap = fn }

// New creates a network on s.
func New(s *simrt.Sim, p Params) *Net {
	return &Net{sim: s, params: p, boxes: make(map[types.NodeID]*simrt.Chan[wire.Msg]), down: make(map[types.NodeID]bool)}
}

// Register creates (or returns) the inbox for node. Servers and client
// hosts each own one inbox and service it from their own Procs.
func (n *Net) Register(node types.NodeID) *simrt.Chan[wire.Msg] {
	if b, ok := n.boxes[node]; ok {
		return b
	}
	b := simrt.NewChan[wire.Msg](n.sim)
	n.boxes[node] = b
	return b
}

// Stats returns a snapshot of traffic counters.
func (n *Net) Stats() Stats { return n.stats }

// SetDown marks a node crashed (true) or rebooted (false). Messages to a
// down node are dropped, as on a real network; senders discover the crash
// by timeout.
func (n *Net) SetDown(node types.NodeID, down bool) { n.down[node] = down }

// Down reports whether a node is marked crashed.
func (n *Net) Down(node types.NodeID) bool { return n.down[node] }

// SetDefaultFaults installs a fault spec applied to every link that has no
// per-link override. Pass the zero Faults to clear.
func (n *Net) SetDefaultFaults(f Faults) { n.defaultFaults = f }

// SetLinkFaults installs a fault spec for the directed link from->to,
// overriding the default. Pass the zero Faults to restore the default on
// that link (the override is removed).
func (n *Net) SetLinkFaults(from, to types.NodeID, f Faults) {
	if n.linkFaults == nil {
		n.linkFaults = make(map[link]Faults)
	}
	if !f.Active() {
		delete(n.linkFaults, link{from, to})
		return
	}
	n.linkFaults[link{from, to}] = f
}

// ClearFaults removes the default spec and every per-link override.
// Partitions are separate; see HealAll.
func (n *Net) ClearFaults() {
	n.defaultFaults = Faults{}
	n.linkFaults = nil
}

// Partition cuts the directed link a->b: every message from a to b is
// dropped until Heal. Call twice (both directions) for a full partition.
func (n *Net) Partition(a, b types.NodeID) {
	if n.cuts == nil {
		n.cuts = make(map[link]bool)
	}
	n.cuts[link{a, b}] = true
}

// Heal restores the directed link a->b.
func (n *Net) Heal(a, b types.NodeID) { delete(n.cuts, link{a, b}) }

// HealAll restores every partitioned link.
func (n *Net) HealAll() { n.cuts = nil }

// Partitioned reports whether the directed link a->b is cut.
func (n *Net) Partitioned(a, b types.NodeID) bool { return n.cuts[link{a, b}] }

// faultsFor returns the effective fault spec for one directed link.
func (n *Net) faultsFor(from, to types.NodeID) Faults {
	if f, ok := n.linkFaults[link{from, to}]; ok {
		return f
	}
	return n.defaultFaults
}

// Send transmits msg to msg.To after the modeled delay. It must be called
// from inside the simulation. The sender's Proc is not blocked (the NIC
// DMA's asynchronously); the CPU overhead is charged as added latency.
func (n *Net) Send(msg wire.Msg) {
	if err := wire.Validate(&msg); err != nil {
		// The message could not be framed on a real wire (name or batch over
		// the u16 limits). Dropping it here keeps the simulation honest with
		// the codec instead of delivering an unencodable message.
		n.stats.DroppedInvalid++
		return
	}
	box, ok := n.boxes[msg.To]
	if !ok {
		// A stale route (e.g. a retry addressed to a node that never came
		// up) is a lost message, not a simulation bug: count and drop.
		n.stats.DroppedUnroutable++
		return
	}
	n.stats.Messages++
	if n.tap != nil {
		n.tap(msg)
	}
	size := wire.Size(&msg)
	n.stats.Bytes += size
	if int(msg.Type) < len(n.stats.ByType) {
		n.stats.ByType[msg.Type]++
	}
	if n.cuts[link{msg.From, msg.To}] {
		n.stats.DroppedPartition++
		return
	}
	delay := n.params.CPUOverhead + n.params.Latency +
		time.Duration(size*int64(time.Second)/n.params.Bandwidth)
	// Draw faults in a fixed order so a seed reproduces the same pattern
	// regardless of which faults are enabled elsewhere on the link.
	if f := n.faultsFor(msg.From, msg.To); f.Active() {
		rng := n.sim.Rand()
		if f.DropProb > 0 && rng.Float64() < f.DropProb {
			n.stats.DroppedFault++
			return
		}
		if f.DupProb > 0 && rng.Float64() < f.DupProb {
			n.stats.Duplicated++
			extra := time.Duration(0)
			if f.DelayMax > 0 {
				extra = time.Duration(rng.Int63n(int64(f.DelayMax)))
			}
			n.deliver(box, msg, delay+extra)
		}
		if f.DelayProb > 0 && f.DelayMax > 0 && rng.Float64() < f.DelayProb {
			n.stats.Delayed++
			delay += time.Duration(rng.Int63n(int64(f.DelayMax)))
		}
	}
	n.deliver(box, msg, delay)
}

// deliver schedules one copy of msg after delay, dropping it if the
// destination is down at arrival time.
func (n *Net) deliver(box *simrt.Chan[wire.Msg], msg wire.Msg, delay time.Duration) {
	n.sim.After(delay, func() {
		if n.down[msg.To] {
			n.stats.DroppedDown++ // dropped at the dead NIC
			return
		}
		box.Send(msg)
	})
}

package wal

import (
	"testing"
	"time"

	"cxfs/internal/disk"
	"cxfs/internal/simrt"
	"cxfs/internal/types"
)

func procOp(client types.NodeID, seq uint64) types.OpID {
	return types.OpID{Proc: types.ProcID{Client: client, Index: 1}, Seq: seq}
}

func procRec(client types.NodeID, seq uint64) Record {
	r := resultRec(seq, "group")
	r.Op = procOp(client, seq)
	r.Sub.Op = r.Op
	return r
}

// runConcurrentAppends spawns one Proc per record, appending stagger apart
// (the arrival pattern of sub-op handlers reaching their logging point), and
// returns the WAL and the virtual time the last appender finished.
func runConcurrentAppends(seed int64, linger, stagger time.Duration, n int) (*WAL, time.Duration) {
	s := simrt.New(seed)
	d := disk.New(s, "d", disk.DefaultParams())
	w := New(s, d, 0, 0)
	w.SetGroupCommit(linger)
	var last time.Duration
	for i := 0; i < n; i++ {
		client := types.NodeID(i)
		s.SpawnAfter(time.Duration(i)*stagger, "appender", func(p *simrt.Proc) {
			w.Append(p, procRec(client, 1))
			if p.Now() > last {
				last = p.Now()
			}
		})
	}
	s.Run()
	s.Shutdown()
	return w, last
}

func TestGroupCommitCoalescesConcurrentAppends(t *testing.T) {
	const n = 8
	w, _ := runConcurrentAppends(1, 200*time.Microsecond, 0, n)
	st := w.Stats()
	if st.Records != n {
		t.Fatalf("Records=%d, want %d", st.Records, n)
	}
	if st.Appends != 1 {
		t.Errorf("Appends=%d, want 1: %d concurrent appends must coalesce into one disk write", st.Appends, n)
	}
	if st.GroupFlushes != 1 || st.GroupedReqs != n {
		t.Errorf("GroupFlushes=%d GroupedReqs=%d, want 1 and %d", st.GroupFlushes, st.GroupedReqs, n)
	}
	for i := 0; i < n; i++ {
		if !w.Has(procOp(types.NodeID(i), 1), RecResult) {
			t.Errorf("record of appender %d not admitted", i)
		}
	}
}

func TestGroupCommitCheaperThanSerializedAppends(t *testing.T) {
	// Appenders arrive 100µs apart, the way handlers reach their logging
	// points in a live server. Without group commit the first arrival buys
	// its own 2ms settle pass and the stragglers pile into a second pass;
	// with a linger covering the arrival spread, one coalesced write covers
	// everyone. The disk's own elevator must not be credited for this —
	// Stats.Appends counts WAL-issued requests, which is the acceptance
	// metric.
	const n = 8
	wg, grouped := runConcurrentAppends(1, time.Millisecond, 100*time.Microsecond, n)
	wd, direct := runConcurrentAppends(1, 0, 100*time.Microsecond, n)
	if ga, da := wg.Stats().Appends, wd.Stats().Appends; ga*2 > da {
		t.Errorf("grouped Appends=%d vs direct %d; want >=2x coalescing", ga, da)
	}
	if grouped >= direct {
		t.Errorf("group commit finished at %v, direct at %v; want an improvement", grouped, direct)
	}
}

func TestGroupCommitFlushHookAndLingerBound(t *testing.T) {
	s := simrt.New(1)
	d := disk.New(s, "d", disk.DefaultParams())
	w := New(s, d, 0, 0)
	const linger = 300 * time.Microsecond
	w.SetGroupCommit(linger)
	if w.GroupLinger() != linger {
		t.Fatalf("GroupLinger=%v", w.GroupLinger())
	}
	var hookBatches, hookRecords int
	var hookBytes int64
	w.SetFlushHook(func(b, r int, bytes int64) { hookBatches += b; hookRecords += r; hookBytes += bytes })
	var done time.Duration
	for i := 0; i < 4; i++ {
		client := types.NodeID(i)
		s.Spawn("appender", func(p *simrt.Proc) {
			w.Append(p, procRec(client, 1))
			if p.Now() > done {
				done = p.Now()
			}
		})
	}
	s.Run()
	s.Shutdown()
	if hookBatches != 4 || hookRecords != 4 {
		t.Errorf("flush hook saw batches=%d records=%d, want 4/4", hookBatches, hookRecords)
	}
	if hookBytes != w.Stats().BytesWritten {
		t.Errorf("flush hook bytes=%d, stats say %d", hookBytes, w.Stats().BytesWritten)
	}
	// The appenders must not park longer than linger + one disk write.
	if ceiling := linger + 4*SyncDelay(d); done > ceiling {
		t.Errorf("appenders finished at %v, ceiling %v", done, ceiling)
	}
}

func TestGroupCommitCrashMidFlushDiscardsWindow(t *testing.T) {
	s := simrt.New(1)
	d := disk.New(s, "d", disk.DefaultParams())
	w := New(s, d, 0, 0)
	w.SetGroupCommit(100 * time.Microsecond)
	released := 0
	for i := 0; i < 4; i++ {
		client := types.NodeID(i)
		s.Spawn("appender", func(p *simrt.Proc) {
			w.Append(p, procRec(client, 1))
			released++
		})
	}
	// Crash after the linger expired but before the disk write completes
	// (the settle alone is 2ms): the coalesced batch is on the platter but
	// not acknowledged, so none of it may become durable. Reboot afterwards
	// and confirm the log still group-commits.
	s.Spawn("crasher", func(p *simrt.Proc) {
		p.Sleep(500 * time.Microsecond)
		w.Crash()
		p.Sleep(10 * time.Millisecond)
		w.Reboot()
		w.Append(p, procRec(9, 9))
	})
	s.Run()
	s.Shutdown()
	if released != 4 {
		t.Fatalf("only %d/4 appenders released after crash", released)
	}
	for i := 0; i < 4; i++ {
		if w.Has(procOp(types.NodeID(i), 1), RecResult) {
			t.Errorf("appender %d's record survived the crash", i)
		}
	}
	st := w.Stats()
	if st.Records != 1 {
		t.Errorf("Records=%d, want 1 (only the post-reboot append)", st.Records)
	}
	if !w.Has(procOp(9, 9), RecResult) {
		t.Error("post-reboot group append lost")
	}
}

func TestGroupCommitCrashWhileLingeringDiscardsWindow(t *testing.T) {
	s := simrt.New(1)
	d := disk.New(s, "d", disk.DefaultParams())
	w := New(s, d, 0, 0)
	w.SetGroupCommit(time.Millisecond)
	released := false
	s.Spawn("appender", func(p *simrt.Proc) {
		w.Append(p, procRec(1, 1))
		released = true
	})
	s.Spawn("crasher", func(p *simrt.Proc) {
		p.Sleep(100 * time.Microsecond) // inside the linger window
		w.Crash()
	})
	s.Run()
	s.Shutdown()
	if !released {
		t.Fatal("appender stuck after crash during linger")
	}
	if w.Has(procOp(1, 1), RecResult) {
		t.Error("lingering record became durable across a crash")
	}
}

func TestGroupCommitLateArrivalsFlushWithoutFreshLinger(t *testing.T) {
	s := simrt.New(1)
	d := disk.New(s, "d", disk.DefaultParams())
	w := New(s, d, 0, 0)
	const linger = 100 * time.Microsecond
	w.SetGroupCommit(linger)
	var lateDone time.Duration
	s.Spawn("early", func(p *simrt.Proc) {
		w.Append(p, procRec(1, 1))
	})
	// Arrives while the first flush's disk write is in flight.
	s.SpawnAfter(linger+500*time.Microsecond, "late", func(p *simrt.Proc) {
		w.Append(p, procRec(2, 1))
		lateDone = p.Now()
	})
	s.Run()
	s.Shutdown()
	st := w.Stats()
	if st.Appends != 2 || st.Records != 2 {
		t.Fatalf("stats %+v, want 2 flushes / 2 records", st)
	}
	// The late batch flushes as soon as the first write lands — it must not
	// pay another full linger on top of the first flush's completion.
	firstFlush := linger + 2*SyncDelay(d)
	if ceiling := firstFlush + 2*SyncDelay(d); lateDone > ceiling {
		t.Errorf("late append finished at %v, ceiling %v", lateDone, ceiling)
	}
}

func TestGroupCommitDeterministicStats(t *testing.T) {
	run := func() Stats {
		s := simrt.New(7)
		d := disk.New(s, "d", disk.DefaultParams())
		w := New(s, d, 0, 0)
		w.SetGroupCommit(150 * time.Microsecond)
		for i := 0; i < 12; i++ {
			client := types.NodeID(i % 3)
			seq := uint64(i)
			s.SpawnAfter(time.Duration(i)*40*time.Microsecond, "appender", func(p *simrt.Proc) {
				w.Append(p, procRec(client, seq))
			})
		}
		s.Run()
		s.Shutdown()
		return w.Stats()
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("same seed, different stats:\n a=%+v\n b=%+v", a, b)
	}
	if a.GroupFlushes == 0 || a.GroupedReqs <= a.GroupFlushes {
		t.Errorf("no coalescing observed: %+v", a)
	}
}

func TestGroupCommitSpaceGateCountsWindowBytes(t *testing.T) {
	rec := procRec(1, 1)
	limit := 2*EncodedSize(rec) + 8 // room for two records, not three
	s := simrt.New(1)
	d := disk.New(s, "d", disk.DefaultParams())
	w := New(s, d, 0, limit)
	w.SetGroupCommit(time.Millisecond)
	order := make([]int, 0, 3)
	for i := 0; i < 3; i++ {
		i := i
		client := types.NodeID(i + 1)
		s.Spawn("appender", func(p *simrt.Proc) {
			w.Append(p, procRec(client, 1))
			order = append(order, i)
		})
	}
	s.Spawn("pruner", func(p *simrt.Proc) {
		p.Sleep(20 * time.Millisecond)
		w.Prune(procOp(1, 1))
		w.Prune(procOp(2, 1))
	})
	s.Run()
	s.Shutdown()
	if len(order) != 3 {
		t.Fatalf("only %d/3 appenders completed", len(order))
	}
	if w.Stats().FullStalls == 0 {
		t.Error("third append squeezed past the gate: window bytes not counted")
	}
}

package baseline

import (
	"cxfs/internal/node"
	"cxfs/internal/obs"
	"cxfs/internal/types"
)

// observed is the shared observability attachment for the baseline drivers
// (SE, 2PC, CE). The baselines have no conflict machinery visible to the
// client, so each operation is either complete or aborted.
type observed struct {
	obsv  *obs.Observer
	proto string
}

// SetObserver attaches the observability layer; client-observed latencies
// are recorded under proto. Nil (the default) records nothing.
func (od *observed) SetObserver(o *obs.Observer, proto string) {
	od.obsv, od.proto = o, proto
}

// record wraps one driver call with issue-event and latency recording.
func (od *observed) record(host *node.Host, op types.Op, inner func() (types.Inode, error)) (types.Inode, error) {
	if od.obsv == nil {
		return inner()
	}
	start := host.Sim.Now()
	if od.obsv.TraceOn() {
		od.obsv.Emit(start, int(host.ID), op.ID, obs.PhaseIssue, op.Kind.String())
	}
	ino, err := inner()
	out := obs.OutcomeComplete
	if err != nil {
		out = obs.OutcomeAborted
	}
	od.obsv.RecordOp(op.Kind, od.proto, out, op.ID, int(host.ID),
		start, host.Sim.Now()-start)
	return ino, err
}

package core

import (
	"time"

	"cxfs/internal/obs"
	"cxfs/internal/types"
	"cxfs/internal/wire"
)

// Cache is the client-side leased metadata cache: (dir, name) → inode
// bindings (including negative entries) filled by MsgLookupResp grants and
// served locally while the lease holds. An entry stops being servable when:
//
//   - its TTL lapses (the hard staleness bound when messages are lost);
//   - a revocation arrives (MsgConflictNotify with Path set) — the granting
//     server saw a mutation touch the entry;
//   - this client itself mutates the entry (read-your-writes: the Driver
//     invalidates before dispatching any mutation that names it);
//   - the granting server's lease epoch moves — any grant or revocation
//     carrying a higher epoch for that server proves a reboot, and entries
//     stamped by the old incarnation are fenced out lazily on access.
//
// The lookup fast path (Get) is allocation-free: struct map keys, no
// per-hit bookkeeping beyond counter increments.
type Cache struct {
	cap     int
	entries map[cacheKey]*cacheEntry
	order   []cacheKey              // FIFO for capacity eviction
	epochs  map[types.NodeID]uint64 // highest lease epoch seen per server

	stats CacheStats
	obsv  *obs.Observer
}

type cacheKey struct {
	dir  types.InodeID
	name string
}

type cacheEntry struct {
	attr   types.Inode
	found  bool // negative entry when false
	server types.NodeID
	epoch  uint64        // lease epoch of the grant
	expire time.Duration // grant receive time + TTL
	grant  time.Duration // issue time of the filling request (staleness oracle)
}

// CacheStats counts cache events.
type CacheStats struct {
	Hits          uint64 // lookups served locally (positive or negative)
	Misses        uint64 // lookups that went to the server
	Invalidations uint64 // entries dropped by this client's own mutations
	Revocations   uint64 // entries dropped by server revocation notices
	Expirations   uint64 // entries dropped at Get time by TTL lapse
	EpochFences   uint64 // entries dropped at Get time by a lease-epoch move
	Evictions     uint64 // entries dropped by the capacity bound
}

// DefaultCacheCap bounds the cache when the caller passes 0.
const DefaultCacheCap = 4096

// NewCache builds a leased metadata cache bounded at capacity entries
// (0 = DefaultCacheCap).
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCacheCap
	}
	return &Cache{
		cap:     capacity,
		entries: make(map[cacheKey]*cacheEntry),
		epochs:  make(map[types.NodeID]uint64),
	}
}

// SetObserver mirrors cache counters into the observability layer
// (cache.hit / cache.miss / cache.invalidate / ...). Nil disables.
func (c *Cache) SetObserver(o *obs.Observer) { c.obsv = o }

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() CacheStats { return c.stats }

// Len returns the live entry count (expired entries included until touched).
func (c *Cache) Len() int { return len(c.entries) }

// Get serves (dir, name) from the cache if a valid lease covers it. The
// third return is the entry's grant timestamp (for the staleness oracle);
// the last reports whether the cache answered at all. Expired and
// epoch-fenced entries are dropped on access.
func (c *Cache) Get(now time.Duration, dir types.InodeID, name string) (types.Inode, bool, time.Duration, bool) {
	e := c.entries[cacheKey{dir: dir, name: name}]
	if e == nil {
		c.stats.Misses++
		c.obsv.Inc("cache.miss", 1)
		return types.Inode{}, false, 0, false
	}
	if e.epoch < c.epochs[e.server] {
		// Granted by a previous incarnation of the server: recovery wiped
		// its lease table, so no revocation will ever arrive for this entry.
		c.drop(cacheKey{dir: dir, name: name})
		c.stats.EpochFences++
		c.stats.Misses++
		c.obsv.Inc("cache.fence", 1)
		c.obsv.Inc("cache.miss", 1)
		return types.Inode{}, false, 0, false
	}
	if now >= e.expire {
		c.drop(cacheKey{dir: dir, name: name})
		c.stats.Expirations++
		c.stats.Misses++
		c.obsv.Inc("cache.expire", 1)
		c.obsv.Inc("cache.miss", 1)
		return types.Inode{}, false, 0, false
	}
	c.stats.Hits++
	c.obsv.Inc("cache.hit", 1)
	return e.attr, e.found, e.grant, true
}

// Put installs a lookup response carrying a lease. issued is the request's
// issue time (recorded as the entry's grant stamp); now is the receive
// time, which anchors the TTL. Grants from an older incarnation of the
// server than one already seen are dropped.
func (c *Cache) Put(issued, now time.Duration, m wire.Msg) {
	if m.LeaseEpoch == 0 {
		return // no lease granted; nothing cachable
	}
	if m.LeaseEpoch < c.epochs[m.From] {
		return // stale grant from before the server's last observed reboot
	}
	c.noteEpoch(m.From, m.LeaseEpoch)
	k := cacheKey{dir: m.Dir, name: m.Path}
	e := c.entries[k]
	if e == nil {
		if len(c.order) >= c.cap {
			drop := c.order[0]
			c.order = c.order[1:]
			delete(c.entries, drop)
			c.stats.Evictions++
			c.obsv.Inc("cache.evict", 1)
		}
		e = &cacheEntry{}
		c.entries[k] = e
		c.order = append(c.order, k)
	}
	*e = cacheEntry{attr: m.Attr, found: m.OK, server: m.From,
		epoch: m.LeaseEpoch, expire: now + m.LeaseTTL, grant: issued}
}

// Invalidate drops the entry for (dir, name) — called by the Driver before
// it dispatches any of its own mutations naming the entry, preserving
// read-your-writes regardless of revocation delivery.
func (c *Cache) Invalidate(dir types.InodeID, name string) {
	k := cacheKey{dir: dir, name: name}
	if c.entries[k] != nil {
		c.drop(k)
		c.stats.Invalidations++
		c.obsv.Inc("cache.invalidate", 1)
	}
}

// Revoke handles a server revocation notice: the entry dies, and the
// notice's lease epoch advances the server's known incarnation so entries
// granted before a crash are fenced even if their own revocations were lost
// with the old lease table.
func (c *Cache) Revoke(dir types.InodeID, name string, server types.NodeID, epoch uint64) {
	c.noteEpoch(server, epoch)
	k := cacheKey{dir: dir, name: name}
	if c.entries[k] != nil {
		c.drop(k)
		c.stats.Revocations++
		c.obsv.Inc("cache.revoke", 1)
	}
}

// NoteEpoch records a server's lease epoch observed out of band (e.g. a
// grant on another code path); entries stamped with older epochs stop being
// servable.
func (c *Cache) NoteEpoch(server types.NodeID, epoch uint64) { c.noteEpoch(server, epoch) }

func (c *Cache) noteEpoch(server types.NodeID, epoch uint64) {
	if epoch > c.epochs[server] {
		c.epochs[server] = epoch
	}
}

// Flush drops every entry (verification harnesses call it so final reads
// hit the servers). Counters and known epochs survive.
func (c *Cache) Flush() {
	c.entries = make(map[cacheKey]*cacheEntry)
	c.order = nil
}

func (c *Cache) drop(k cacheKey) {
	delete(c.entries, k)
	for i, ok := range c.order {
		if ok == k {
			c.order = append(c.order[:i:i], c.order[i+1:]...)
			break
		}
	}
}

// Command cxd serves the Cx reproduction over TCP: a line-oriented JSON
// protocol for running experiments, trace replays, and Metarates benchmarks
// remotely. It is how the repository's simulated cluster is exposed as a
// long-lived service (the protocol runs themselves execute inside the
// deterministic simulator; cxd wraps them with a real network front end).
//
// Usage:
//
//	cxd -listen 127.0.0.1:7070
//
// Protocol: one JSON object per line in, one per line out.
//
//	{"cmd":"ping"}
//	{"cmd":"experiments"}
//	{"cmd":"run","exp":"table2","scale":0.002,"servers":4}
//	{"cmd":"replay","trace":"s3d","protocol":"cx","scale":0.002}
//	{"cmd":"metarates","mix":"update-dominated","servers":4,"ops":40}
//	{"cmd":"report"}
//
// Responses: {"ok":true,"output":...} or {"ok":false,"error":"..."}.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"strings"
	"sync"
	"time"

	"cxfs/internal/cluster"
	"cxfs/internal/harness"
	"cxfs/internal/metarates"
	"cxfs/internal/obs"
	"cxfs/internal/trace"
)

// Request is one client command.
type Request struct {
	Cmd      string  `json:"cmd"`
	Exp      string  `json:"exp,omitempty"`
	Trace    string  `json:"trace,omitempty"`
	Protocol string  `json:"protocol,omitempty"`
	Mix      string  `json:"mix,omitempty"`
	Scale    float64 `json:"scale,omitempty"`
	Servers  int     `json:"servers,omitempty"`
	Ops      int     `json:"ops,omitempty"`
	Seed     int64   `json:"seed,omitempty"`
}

// Response is one server answer.
type Response struct {
	OK     bool   `json:"ok"`
	Error  string `json:"error,omitempty"`
	Output string `json:"output,omitempty"`
	Millis int64  `json:"wall_ms,omitempty"`
}

// server serializes simulator runs: the simulations are CPU-bound and
// deterministic, so one at a time keeps results reproducible.
type server struct {
	mu sync.Mutex
	// obs is the observability session of the most recent run; the
	// "report" command renders it.
	obs *obs.Observer
}

func main() {
	listen := flag.String("listen", "127.0.0.1:7070", "listen address")
	flag.Parse()

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("cxd: %v", err)
	}
	log.Printf("cxd: serving on %s", ln.Addr())
	srv := &server{}
	for {
		conn, err := ln.Accept()
		if err != nil {
			log.Printf("cxd: accept: %v", err)
			continue
		}
		go srv.serve(conn)
	}
}

func (s *server) serve(conn net.Conn) {
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	enc := json.NewEncoder(conn)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var req Request
		var resp Response
		if err := json.Unmarshal([]byte(line), &req); err != nil {
			resp = Response{Error: fmt.Sprintf("bad request: %v", err)}
		} else {
			resp = s.handle(req)
		}
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

func (s *server) handle(req Request) (resp Response) {
	start := time.Now()
	// Defense in depth: no network-supplied request may kill the daemon.
	// Validation below should reject bad input first; a panic that slips
	// through becomes an error response.
	defer func() {
		if r := recover(); r != nil {
			resp = Response{Error: fmt.Sprintf("internal error: %v", r),
				Millis: time.Since(start).Milliseconds()}
		}
	}()
	out, err := s.dispatch(req)
	if err != nil {
		return Response{Error: err.Error(), Millis: time.Since(start).Milliseconds()}
	}
	return Response{OK: true, Output: out, Millis: time.Since(start).Milliseconds()}
}

// validate bounds the numeric knobs a request may set. Defaults apply only
// to zero values; anything negative or absurd is an error, never a panic.
func validate(req *Request) error {
	switch {
	case req.Scale < 0 || req.Scale > 1:
		return fmt.Errorf("scale must be in (0,1], got %v", req.Scale)
	case req.Servers < 0 || req.Servers > 1024:
		return fmt.Errorf("servers must be in [1,1024], got %d", req.Servers)
	case req.Ops < 0 || req.Ops > 1<<20:
		return fmt.Errorf("ops must be in [0,%d], got %d", 1<<20, req.Ops)
	case req.Seed < 0:
		return fmt.Errorf("seed must be non-negative, got %d", req.Seed)
	}
	if req.Protocol != "" && !cluster.Protocol(req.Protocol).Valid() {
		return fmt.Errorf("unknown protocol %q", req.Protocol)
	}
	if req.Scale == 0 {
		req.Scale = 0.002
	}
	if req.Servers == 0 {
		req.Servers = 4
	}
	if req.Seed == 0 {
		req.Seed = 1
	}
	return nil
}

func (s *server) dispatch(req Request) (string, error) {
	if err := validate(&req); err != nil {
		return "", err
	}
	switch req.Cmd {
	case "ping":
		return "pong", nil
	case "experiments":
		return "table2 table4 table5 fig4 fig5 fig6 fig7a fig7b fig8 fig9a fig9b", nil
	case "run":
		return s.runExperiment(req)
	case "replay":
		return s.runReplay(req)
	case "metarates":
		return s.runMetarates(req)
	case "report":
		return s.report()
	}
	return "", fmt.Errorf("unknown command %q", req.Cmd)
}

// beginObs opens a fresh observability session for one run; "report"
// renders the latest.
func (s *server) beginObs() *obs.Observer {
	s.obs = obs.New(obs.Options{Hist: true, Trace: true})
	return s.obs
}

// report renders the latency histograms and phase counts of the most
// recent run.
func (s *server) report() (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.obs == nil {
		return "", fmt.Errorf("no run to report on yet")
	}
	return s.obs.HistTable().String() + "\n" + s.obs.PhaseTable().String(), nil
}

func (s *server) runExperiment(req Request) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cfg := harness.Config{Scale: req.Scale, Servers: req.Servers, Seed: req.Seed, Obs: s.beginObs()}
	switch req.Exp {
	case "table2":
		_, tbl := harness.Table2(cfg)
		return tbl.String(), nil
	case "table4":
		_, tbl := harness.Table4(cfg)
		return tbl.String(), nil
	case "table5":
		_, tbl := harness.Table5(cfg)
		return tbl.String(), nil
	case "fig4":
		return harness.Fig4(cfg).String(), nil
	case "fig5":
		_, tbl := harness.Fig5(cfg, nil)
		return tbl.String(), nil
	case "fig6":
		_, tbl := harness.Fig6(cfg, []int{2, 4, 8}, 30)
		return tbl.String(), nil
	case "fig7a":
		_, tbl := harness.Fig7a(cfg, nil)
		return tbl.String(), nil
	case "fig7b":
		_, tbl := harness.Fig7b(cfg, 0)
		return tbl.String(), nil
	case "fig8":
		_, _, tbl := harness.Fig8(cfg, nil)
		return tbl.String(), nil
	case "fig9a":
		_, tbl := harness.Fig9a(cfg, nil)
		return tbl.String(), nil
	case "fig9b":
		_, tbl := harness.Fig9b(cfg, nil)
		return tbl.String(), nil
	}
	return "", fmt.Errorf("unknown experiment %q", req.Exp)
}

func (s *server) runReplay(req Request) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, err := trace.ProfileByName(req.Trace)
	if err != nil {
		return "", err
	}
	proto := cluster.Protocol(req.Protocol)
	if proto == "" {
		proto = cluster.ProtoCx
	}
	tr := trace.Generate(p, req.Scale, req.Seed)
	o := cluster.DefaultOptions(req.Servers, proto)
	o.ClientHosts = 16
	o.ProcsPerHost = 8
	o.Seed = req.Seed
	o.Obs = s.beginObs()
	c, err := cluster.New(o)
	if err != nil {
		return "", err
	}
	defer c.Shutdown()
	res := (&trace.Replayer{Trace: tr, C: c}).Run()
	return fmt.Sprintf("workload=%s protocol=%s ops=%d replay=%v messages=%d conflicts=%d (ratio %.3f%%)",
		res.Workload, res.Protocol, res.Ops, res.ReplayTime, res.Messages, res.Conflicts,
		res.ConflictRatio()*100), nil
}

func (s *server) runMetarates(req Request) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	mix := metarates.UpdateDominated
	if strings.HasPrefix(req.Mix, "read") {
		mix = metarates.ReadDominated
	}
	proto := cluster.Protocol(req.Protocol)
	if proto == "" {
		proto = cluster.ProtoCx
	}
	if req.Ops == 0 {
		req.Ops = 40
	}
	o := cluster.DefaultOptions(req.Servers, proto)
	o.Seed = req.Seed
	o.Obs = s.beginObs()
	c, err := cluster.New(o)
	if err != nil {
		return "", err
	}
	defer c.Shutdown()
	res := metarates.Run(c, metarates.Config{Mix: mix, OpsPerProc: req.Ops})
	return fmt.Sprintf("mix=%s protocol=%s servers=%d procs=%d ops=%d elapsed=%v throughput=%.0f ops/s",
		res.Mix, res.Protocol, res.Servers, res.Procs, res.Ops, res.Elapsed, res.Throughput), nil
}

package core_test

import (
	"fmt"
	"testing"
	"time"

	"cxfs/internal/cluster"
	"cxfs/internal/simrt"
	"cxfs/internal/types"
	"cxfs/internal/wal"
)

// TestRecoveryNeverResurrectsInvalidatedResult locks in the §V rule that a
// Result-Record followed by an Invalidate-Record with no newer Result means
// the execution was rolled back before the crash: recovery must treat the
// operation as never executed — no after-images installed, no pending
// entry rebuilt, the op tombstoned and its records pruned.
func TestRecoveryNeverResurrectsInvalidatedResult(t *testing.T) {
	c := build(2, func(o *cluster.Options) { o.Hardware.LogMaxBytes = 0 })
	defer c.Shutdown()
	c.Sim.Spawn("t", func(p *simrt.Proc) {
		srv := c.CxSrv[0]
		base := c.Bases[0]
		id := types.OpID{Proc: types.ProcID{Client: 100, Index: 1}, Seq: 77}
		sentinel := "i/424242"
		sub := types.SubOp{Op: id, Kind: types.OpCreate, Role: types.RoleParticipant,
			Action: types.ActAddInode, Ino: 424242, Type: types.FileRegular}

		// Forge the crash image directly in the WAL: a provisional execution
		// whose after-image would install the sentinel row, then its
		// invalidation (the disordered-conflict rollback of Fig 3b), then
		// the crash — before any re-execution.
		base.WAL.Append(p, wal.Record{Type: wal.RecResult, Op: id,
			Role: types.RoleParticipant, OK: true, Sub: sub,
			After: []types.RowImage{{Key: sentinel, Val: []byte{1}}}})
		base.WAL.Append(p, wal.Record{Type: wal.RecInvalidate, Op: id,
			Role: types.RoleParticipant})
		if base.WAL.LiveBytes() == 0 {
			t.Fatal("forged records not live")
		}

		base.Crash()
		p.Sleep(10 * time.Millisecond)
		base.Reboot()
		srv.Recover(p)

		if _, ok := base.KV.Get(sentinel); ok {
			t.Error("recovery installed the after-image of an invalidated result")
		}
		if srv.PendingOps() != 0 {
			t.Errorf("recovery rebuilt %d pending ops from an invalidated result", srv.PendingOps())
		}
		if got := srv.DebugOp(id); got != "tombstoned" {
			t.Errorf("op state %q after recovery, want tombstoned", got)
		}
		if base.WAL.LiveBytes() != 0 {
			t.Errorf("invalidated op's records not pruned: %d live bytes", base.WAL.LiveBytes())
		}
		c.Sim.Stop()
	})
	c.Sim.RunUntil(time.Hour)
	if !c.Sim.Stopped() {
		t.Fatal("hung")
	}
}

// TestRecoveryKeepsValidResultAlongsideTombstonePath is the counterpart
// guard: the invalidation-tombstone rule must not overreach. An op whose
// Result-Record was never invalidated — here a real local create caught
// pending by the crash — must be rebuilt and survive recovery.
func TestRecoveryKeepsValidResultAlongsideTombstonePath(t *testing.T) {
	c := build(2, func(o *cluster.Options) { o.Hardware.LogMaxBytes = 0 })
	defer c.Shutdown()
	c.Sim.Spawn("t", func(p *simrt.Proc) {
		pr := c.Proc(0)
		srv := c.CxSrv[0]
		base := c.Bases[0]

		// A real single-server create on server 0 produces a genuine
		// Result-Record with real images; then forge the
		// invalidate + re-execute tail before the crash.
		var name string
		var ino types.InodeID
		for try := 0; ; try++ {
			name = fmt.Sprintf("rz-%d", try)
			ino = pr.AllocInode()
			if c.Placement.CoordinatorFor(types.RootInode, name) == 0 &&
				c.Placement.ParticipantFor(ino) == 0 {
				break
			}
		}
		if _, err := pr.Do(p, types.Op{ID: pr.NextID(), Kind: types.OpCreate,
			Parent: types.RootInode, Name: name, Ino: ino, Type: types.FileRegular}); err != nil {
			t.Fatalf("create: %v", err)
		}
		p.Sleep(10 * time.Millisecond)

		base.Crash()
		p.Sleep(10 * time.Millisecond)
		base.Reboot()
		srv.Recover(p)
		c.Quiesce(p)

		if got, err := pr.Lookup(p, types.RootInode, name); err != nil || got.Ino != ino {
			t.Errorf("re-executed create lost: ino=%d err=%v", got.Ino, err)
		}
		c.Sim.Stop()
	})
	c.Sim.RunUntil(time.Hour)
	if !c.Sim.Stopped() {
		t.Fatal("hung")
	}
	if bad := c.CheckInvariants(); len(bad) != 0 {
		t.Errorf("invariants: %v", bad)
	}
}

package core

import (
	"fmt"
	"sort"
	"time"

	"cxfs/internal/namespace"
	"cxfs/internal/obs"
	"cxfs/internal/simrt"
	"cxfs/internal/types"
	"cxfs/internal/wal"
	"cxfs/internal/wire"
)

// requestCommit launches an immediate commitment for op (conflict detection,
// L-COM, or C-NOTIFY). If this server coordinates op, the commit daemon is
// kicked; if it participates, the coordinator is notified; if op is not yet
// known here (its sub-op is still in flight), the request is remembered and
// replayed when the sub-op executes.
func (s *Server) requestCommit(op types.OpID, lcom bool) {
	s.requestCommitFrom(op, lcom, -1)
}

// requestCommitFrom is requestCommit with the requester recorded, so a
// request for an operation this server never learns about can expire into
// a presumed abort answered back to the requester.
func (s *Server) requestCommitFrom(op types.OpID, lcom bool, from types.NodeID) {
	if co := s.pendingCoord[op]; co != nil {
		if lcom {
			co.lcom = true
		}
		if !co.committing {
			s.stats.ImmediateCommits++
			s.kick.Send(kickReq{ops: []types.OpID{op}})
		}
		return
	}
	if po := s.pendingPart[op]; po != nil {
		if !po.committing {
			s.Send(wire.Msg{Type: wire.MsgConflictNotify, To: po.coordinator, Op: op})
		}
		return
	}
	if s.tombstones[op] {
		if lcom {
			// Already aborted here: the L-COM's answer is ALL-NO, or the
			// client would retry until its attempt budget drains.
			s.Send(wire.Msg{Type: wire.MsgAllNo, To: op.Proc.Client, Op: op})
		} else if from >= 0 {
			// Answer the nudging participant so it can abort its side too.
			s.Send(wire.Msg{Type: wire.MsgCommitReq, To: from, Op: op,
				Decisions: []wire.Decision{{Op: op, Commit: false}}})
		}
		return
	}
	if len(s.wantCommit) > 4096 {
		s.wantCommit = make(map[types.OpID]wantEntry) // bounded backstop
	}
	e, ok := s.wantCommit[op]
	if !ok {
		e = wantEntry{at: s.Sim.Now(), from: from}
	}
	e.lcom = e.lcom || lcom
	if from >= 0 {
		e.from = from
	}
	s.wantCommit[op] = e
}

// expireWantCommit presumes-abort any remembered commitment request whose
// operation never materialized here within VoteWait: the coordinator-side
// execution died (with a crash or a dropped message), so the client cannot
// have completed the operation, and both the requester and any future
// arrival of the sub-op must see it aborted.
func (s *Server) expireWantCommit() {
	now := s.Sim.Now()
	// Deterministic expiry order: map iteration order must not leak into
	// the message sequence (seed-exact replay depends on it).
	var expired []types.OpID
	for op, e := range s.wantCommit {
		if now-e.at > s.cfg.VoteWait {
			expired = append(expired, op)
		}
	}
	sort.Slice(expired, func(i, j int) bool { return opLess(expired[i], expired[j]) })
	for _, op := range expired {
		e := s.wantCommit[op]
		delete(s.wantCommit, op)
		s.tombstone(op)
		s.stats.OpsAborted++
		if e.lcom {
			s.Send(wire.Msg{Type: wire.MsgAllNo, To: op.Proc.Client, Op: op})
		} else if e.from >= 0 {
			s.Send(wire.Msg{Type: wire.MsgCommitReq, To: e.from, Op: op,
				Decisions: []wire.Decision{{Op: op, Commit: false}}})
		}
	}
}

// commitDaemon serializes commitment batches: it wakes on immediate kicks,
// on the timeout trigger, and on log-full pressure.
func (s *Server) commitDaemon(p *simrt.Proc) {
	for {
		var req kickReq
		var got bool
		if s.cfg.Timeout > 0 {
			req, got = s.kick.RecvTimeout(p, s.adaptivePeriod())
			if !got {
				req = kickReq{lazy: true}
				s.stats.LazyBatches++
			}
		} else {
			var ok bool
			req, ok = s.kick.RecvOK(p)
			if !ok {
				return
			}
		}
		if s.Crashed() {
			continue
		}
		s.runCommit(p, req)
		if req.lazy {
			// Housekeeping that rides the lazy tick: presume-abort orphaned
			// commitment requests, and nudge coordinators of participant
			// executions that have waited a full trigger period (their
			// coordinator may have crashed before learning of the op).
			s.expireWantCommit()
			s.nudgeStaleParts(func(po *partOp) bool {
				return s.Sim.Now()-po.since > s.lazyPeriod()
			})
		}
	}
}

// lazyPeriod is the effective lazy-trigger interval used for staleness
// checks (falls back to VoteWait when the timeout trigger is disabled).
func (s *Server) lazyPeriod() time.Duration {
	if s.cfg.Timeout > 0 {
		return s.cfg.Timeout
	}
	return s.cfg.VoteWait
}

// adaptivePeriod is the commit daemon's wait for its next lazy tick. With
// AdaptiveLazy off it is the fixed Timeout of §IV.A. With it on, the period
// tracks log pressure: near the prune threshold the daemon shrinks toward an
// eager cadence, because the alternative is new-arrival appends stalling on
// a full log; with nothing pending and a quiet log it stretches, because a
// lazy batch over an empty table is pure wakeup overhead.
func (s *Server) adaptivePeriod() time.Duration {
	base := s.cfg.Timeout
	if !s.cfg.AdaptiveLazy {
		return base
	}
	if max := s.WAL.MaxBytes(); max > 0 {
		live := s.WAL.LiveBytes()
		switch {
		case live*4 >= max*3: // >= 75% of the prune threshold
			s.stats.AdaptiveShrinks++
			return base / 8
		case live*2 >= max: // >= 50%
			s.stats.AdaptiveShrinks++
			return base / 2
		}
	}
	if len(s.pendingCoord) == 0 && len(s.pendingPart) == 0 && len(s.flushQ) == 0 {
		s.stats.AdaptiveStretches++
		return base * 2
	}
	return base
}

// runCommit executes one commitment batch.
func (s *Server) runCommit(p *simrt.Proc, req kickReq) {
	var targets []*coordOp
	if req.ops != nil {
		seen := make(map[types.OpID]bool)
		parts := make(map[types.NodeID]bool)
		for _, id := range req.ops {
			if co := s.pendingCoord[id]; co != nil && !co.committing {
				targets = append(targets, co)
				seen[id] = true
				parts[co.participant] = true
			}
		}
		// Piggyback: an immediate commitment's VOTE/COMMIT-REQ/append can
		// carry every other pending operation bound for the same
		// participant at no extra message or log-write cost — they would
		// have needed their own batch later anyway, so conflicts stop
		// multiplying individual log writes.
		if !s.cfg.NoPiggyback {
			for _, co := range s.pendingCoord {
				if !co.committing && !seen[co.id] && parts[co.participant] {
					targets = append(targets, co)
					seen[co.id] = true
				}
			}
		}
	} else {
		for _, co := range s.pendingCoord {
			if !co.committing {
				targets = append(targets, co)
			}
		}
	}
	// The piggyback and lazy paths collect from map iteration; order the
	// batch deterministically so a seed replays to the same message trace.
	sort.Slice(targets, func(i, j int) bool { return opLess(targets[i].id, targets[j].id) })
	if s.cfg.Obs.TraceOn() {
		now := s.Sim.Now()
		if req.lazy && (len(targets) > 0 || len(s.flushQ) > 0) {
			s.cfg.Obs.Emit(now, int(s.ID), types.NilOp, obs.PhaseCommitLazy,
				fmt.Sprintf("batch=%d flush=%d", len(targets), len(s.flushQ)))
		} else if !req.lazy && len(targets) > 0 {
			s.cfg.Obs.Emit(now, int(s.ID), targets[0].id, obs.PhaseCommitImmediate,
				fmt.Sprintf("batch=%d", len(targets)))
		}
	}
	// Group by participant; each group is one VOTE / COMMIT-REQ / ACK round.
	groups := make(map[types.NodeID][]*coordOp)
	var order []types.NodeID
	for _, co := range targets {
		co.committing = true
		if _, seen := groups[co.participant]; !seen {
			order = append(order, co.participant)
		}
		groups[co.participant] = append(groups[co.participant], co)
	}
	boot := s.Boot()
	g := simrt.NewGroup(s.Sim)
	g.Add(len(order))
	for _, part := range order {
		part, cops := part, groups[part]
		s.Sim.Spawn("cx/commit-group", func(gp *simrt.Proc) {
			defer g.Done()
			s.groupCommit(gp, boot, part, cops)
		})
	}
	g.Wait(p)

	if req.lazy {
		s.drainFlushQ(p)
	}
}

// drainFlushQ writes back the database pages of every committed (or
// aborted-and-rolled-back) operation in one merged burst — "submitting
// batched modifications into BDB" (§IV.C.1) — and only then prunes their
// log records, so recovery can always redo from the log.
func (s *Server) drainFlushQ(p *simrt.Proc) {
	if len(s.flushQ) == 0 {
		return
	}
	ops := s.flushQ
	s.flushQ = nil
	var rows []string
	for _, fe := range ops {
		rows = append(rows, fe.rows...)
	}
	s.KV.FlushKeys(p, rows)
	if s.Crashed() {
		return
	}
	for _, fe := range ops {
		s.WAL.Prune(fe.id)
	}
}

// groupCommit runs the commitment phase (§III.B steps 3-7) for a batch of
// operations sharing one participant. boot is the coordinator incarnation
// this batch belongs to: a crash+reboot mid-phase orphans the proc, and it
// must stop touching the rebuilt state (recovery re-drives the batch).
func (s *Server) groupCommit(p *simrt.Proc, boot uint64, part types.NodeID, cops []*coordOp) {
	ids := make([]types.OpID, len(cops))
	var enforce []types.OpID
	for i, co := range cops {
		ids[i] = co.id
		// The coordinator's execution order: every cross-server sub-op
		// blocked here behind this operation follows it.
		for _, br := range s.waiters[co.id] {
			if br.msg.Sub.Kind.CrossServer() {
				enforce = append(enforce, br.msg.Sub.Op)
			}
		}
	}

	// Step 3: VOTE (retried until the participant answers — it may be
	// rebooting).
	votes := s.rpcVotes(p, boot, part, ids, enforce)
	if s.CrashPoint(CPCommitAfterVote, ids[0]) || s.Gone(boot) {
		return
	}

	// Step 5: decide, log Commit/Abort-Records in one batched append, roll
	// back aborted local executions, and flush this batch's rows together.
	recs := make([]wal.Record, 0, len(cops))
	decisions := make([]wire.Decision, 0, len(cops))
	flushRowsOf := make([][]string, len(cops))
	for i, co := range cops {
		commit := votes[co.id] && co.ok
		decisions = append(decisions, wire.Decision{Op: co.id, Commit: commit})
		if commit {
			recs = append(recs, wal.Record{Type: wal.RecCommit, Op: co.id, Role: types.RoleCoordinator})
			flushRowsOf[i] = co.rows
		} else {
			recs = append(recs, wal.Record{Type: wal.RecAbort, Op: co.id, Role: types.RoleCoordinator})
			if co.ok {
				flushRowsOf[i] = s.rollback(co.undo, co.beforeImgs)
			}
			s.tombstone(co.id)
		}
	}
	s.WAL.AppendBatchPriority(p, recs)
	if s.CrashPoint(CPCommitAfterDecision, ids[0]) || s.Gone(boot) {
		return
	}

	// Step 5-6: COMMIT-REQ/ABORT-REQ, await ACK (retried).
	s.rpcAck(p, boot, part, ids, decisions)
	if s.CrashPoint(CPCommitBeforeComplete, ids[0]) || s.Gone(boot) {
		return
	}

	// Step 7: Complete-Records, prune, release followers, answer ALL-NO for
	// aborted operations.
	comp := make([]wal.Record, 0, len(cops))
	for _, co := range cops {
		comp = append(comp, wal.Record{Type: wal.RecComplete, Op: co.id, Role: types.RoleCoordinator})
	}
	s.WAL.AppendBatchPriority(p, comp)
	if s.Gone(boot) {
		return
	}
	for i, co := range cops {
		delete(s.pendingCoord, co.id)
		s.cacheReply(co.id, finalReply(co.id, co.lastResp, decisions[i].Commit, co.client))
		s.completeOp(co.id, co.sub)
		// Database write-back is deferred: the decision records are
		// durable, so the pages join the flush queue and drain with the
		// next lazy batch; the log records prune only after that flush.
		s.flushQ = append(s.flushQ, flushEntry{id: co.id, rows: flushRowsOf[i]})
		if decisions[i].Commit {
			s.stats.OpsCommitted++
		} else {
			s.stats.OpsAborted++
			// 7b: ALL-NO tells the process every successful execution was
			// aborted. Sent on every abort so an L-COM racing a lazy batch
			// still gets its answer; completed clients drop it.
			s.Send(wire.Msg{Type: wire.MsgAllNo, To: co.client, Op: co.id})
		}
	}
}

// rpcVotes sends a batched VOTE and returns the participant's votes,
// retrying across participant crashes.
func (s *Server) rpcVotes(p *simrt.Proc, boot uint64, part types.NodeID, ids, enforce []types.OpID) map[types.OpID]bool {
	ch := simrt.NewChan[wire.Msg](s.Sim)
	s.voteResp[ids[0]] = ch
	defer func() {
		if s.voteResp[ids[0]] == ch {
			delete(s.voteResp, ids[0])
		}
	}()
	for {
		s.Send(wire.Msg{Type: wire.MsgVote, To: part, Ops: ids, Enforce: enforce})
		m, ok := ch.RecvTimeout(p, s.cfg.RetryInterval+s.cfg.VoteWait)
		if s.Gone(boot) {
			return nil
		}
		if ok {
			votes := make(map[types.OpID]bool, len(m.Votes))
			for _, v := range m.Votes {
				votes[v.Op] = v.OK
			}
			// Replies route by their first op only, so a straggler answer to
			// an earlier round that shared this round's head (a pre-crash
			// batch the recovery re-drove with extra ops, say) can land here.
			// Accept it only if it votes on this round's entire op set: a
			// missing vote would otherwise read as NO and abort an operation
			// the participant actually holds a YES execution for.
			complete := true
			for _, id := range ids {
				if _, voted := votes[id]; !voted {
					complete = false
					break
				}
			}
			if complete {
				return votes
			}
		}
	}
}

// rpcAck sends the batched COMMIT-REQ/ABORT-REQ and waits for the ACK,
// retrying across participant crashes. The participant's handler is
// idempotent.
func (s *Server) rpcAck(p *simrt.Proc, boot uint64, part types.NodeID, ids []types.OpID, decisions []wire.Decision) {
	ch := simrt.NewChan[wire.Msg](s.Sim)
	s.ackResp[ids[0]] = ch
	defer func() {
		if s.ackResp[ids[0]] == ch {
			delete(s.ackResp, ids[0])
		}
	}()
	for {
		s.Send(wire.Msg{Type: wire.MsgCommitReq, To: part, Ops: ids, Decisions: decisions})
		if len(ids) > 0 && s.CrashPoint(CPCommitMidFanout, ids[0]) {
			return // decision sent, ACK never collected
		}
		m, ok := ch.RecvTimeout(p, s.cfg.RetryInterval)
		if s.Gone(boot) {
			return
		}
		// Same head-op routing hazard as rpcVotes: only an ACK echoing this
		// round's exact op set confirms the participant applied these
		// decisions; a stale ACK from an earlier round must not.
		if ok && opSetEqual(m.Ops, ids) {
			return
		}
	}
}

// opSetEqual reports whether a reply's echoed op list matches the round's.
func opSetEqual(a, b []types.OpID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// handleVote answers a batched VOTE (§III.B step 4): each vote reflects the
// Result-Record of the corresponding sub-op, resolving blocked or in-flight
// sub-ops first per the conflict rules.
func (s *Server) handleVote(p *simrt.Proc, m wire.Msg) {
	boot := s.Boot()
	enforce := make(map[types.OpID]bool, len(m.Enforce))
	for _, id := range m.Enforce {
		enforce[id] = true
	}
	votes := make([]wire.Vote, len(m.Ops))
	for i, id := range m.Ops {
		votes[i] = wire.Vote{Op: id, OK: s.resolveVote(p, boot, id, enforce)}
		if s.Gone(boot) {
			return
		}
	}
	s.Send(wire.Msg{Type: wire.MsgVoteResp, To: m.From, Ops: m.Ops, Votes: votes})
}

// resolveVote produces this server's YES/NO for one operation. The sub-op
// may be executed (answer from its record), blocked behind another pending
// operation (apply the ordered/disordered conflict rules), or still in
// flight (wait for arrival). A bounded wait backstops pathological chains;
// timing out votes NO, which is safe because an operation that has not
// executed here cannot have been completed by its client.
func (s *Server) resolveVote(p *simrt.Proc, boot uint64, id types.OpID, enforce map[types.OpID]bool) bool {
	deadline := s.Sim.Now() + s.cfg.VoteWait
	for {
		if po := s.pendingPart[id]; po != nil {
			po.committing = true
			return po.ok
		}
		if s.tombstones[id] {
			return false
		}
		remaining := deadline - s.Sim.Now()
		if remaining <= 0 {
			s.stats.VoteTimeouts++
			s.tombstone(id) // the sub-op must not execute after this NO
			if br := s.blockedOf[id]; br != nil {
				s.unblock(br)
			}
			return false
		}
		if br := s.blockedOf[id]; br != nil {
			holder := br.holder
			if enforce[holder] && s.canInvalidate(holder) {
				// Disordered conflict: the coordinator ordered id before
				// holder, but we executed holder first. Invalidate it and
				// execute id now (§III.C step 4).
				if s.invalidate(p, holder, id) {
					if s.Gone(boot) {
						return false
					}
					s.unblock(br)
					s.execSubOp(p, br.msg, types.NilOp, br.epoch)
					if s.Gone(boot) {
						return false
					}
					continue
				}
			}
			// Ordered conflict: commit the holder first, then id executes
			// with holder as its hint (via the release path).
			s.requestCommit(holder, false)
			ch := s.waitChan(s.completeSig, holder)
			ch.RecvTimeout(p, remaining)
			if s.Gone(boot) {
				return false
			}
			continue
		}
		// Not arrived yet: wait for execution or timeout.
		ch := s.waitChan(s.arrivalSig, id)
		ch.RecvTimeout(p, remaining)
		if s.Gone(boot) {
			return false
		}
	}
}

// canInvalidate reports whether op is pending here and not yet committing.
func (s *Server) canInvalidate(op types.OpID) bool {
	if po := s.pendingPart[op]; po != nil {
		return !po.committing
	}
	if co := s.pendingCoord[op]; co != nil {
		return !co.committing
	}
	return false
}

// handleCommitReq applies the coordinator's decisions (§III.B step 6):
// Commit/Abort-Records land in one batched append, aborted executions roll
// back, the batch's rows flush together, and followers release. Idempotent:
// decisions for operations already finished here are re-ACKed blindly.
func (s *Server) handleCommitReq(p *simrt.Proc, m wire.Msg) {
	boot := s.Boot()
	recs := make([]wal.Record, 0, len(m.Decisions))
	done := make([]*partOp, 0, len(m.Decisions))
	doneRows := make([][]string, 0, len(m.Decisions))
	for _, d := range m.Decisions {
		po := s.pendingPart[d.Op]
		if po == nil {
			if !d.Commit {
				// Abort for an operation we never executed (vote timeout or
				// in-flight sub-op): poison it and cancel any blocked copy.
				s.tombstone(d.Op)
				if br := s.blockedOf[d.Op]; br != nil {
					s.unblock(br)
				}
			}
			continue
		}
		po.committing = true
		var rows []string
		if d.Commit {
			recs = append(recs, wal.Record{Type: wal.RecCommit, Op: d.Op, Role: types.RoleParticipant})
			rows = po.rows
		} else {
			recs = append(recs, wal.Record{Type: wal.RecAbort, Op: d.Op, Role: types.RoleParticipant})
			if po.ok {
				rows = s.rollback(po.undo, po.beforeImgs)
			}
			s.tombstone(d.Op)
		}
		done = append(done, po)
		doneRows = append(doneRows, rows)
	}
	s.WAL.AppendBatchPriority(p, recs)
	cpOp := m.Op
	if len(m.Decisions) > 0 {
		cpOp = m.Decisions[0].Op
	}
	if s.CrashPoint(CPPartBeforeAck, cpOp) || s.Gone(boot) {
		return
	}
	for i, po := range done {
		// A Commit/Abort-Record on the participant ends the operation
		// (§III.A); followers release immediately, and the page write-back
		// joins the flush queue for the next lazy batch.
		committed := false
		for _, d := range m.Decisions {
			if d.Op == po.id {
				committed = d.Commit
			}
		}
		delete(s.pendingPart, po.id)
		s.cacheReply(po.id, finalReply(po.id, po.lastResp, committed, po.client))
		s.completeOp(po.id, po.sub)
		s.flushQ = append(s.flushQ, flushEntry{id: po.id, rows: doneRows[i]})
	}
	s.Send(wire.Msg{Type: wire.MsgAck, To: m.From, Op: m.Op, Ops: m.Ops})
}

// finalReply picks the response a duplicate request should receive after
// the operation's fate is sealed: the recorded execution response when it
// committed, an aborted NO otherwise. A committed operation rebuilt by
// recovery has no recorded response (it died with the volatile state); a
// synthesized YES stands in — telling a retrying client "aborted" for an
// operation that committed would corrupt its view of the namespace.
func finalReply(id types.OpID, last wire.Msg, committed bool, client types.NodeID) wire.Msg {
	if committed {
		if last.Type != 0 {
			return last
		}
		return wire.Msg{Type: wire.MsgSubOpResp, To: client, Op: id, OK: true, Epoch: 1}
	}
	return wire.Msg{Type: wire.MsgSubOpResp, To: client, Op: id,
		OK: false, Err: types.ErrAborted.Error(), Epoch: last.Epoch + 1}
}

// rollback reverses an execution: live operations carry a compensating
// undo; recovery-rebuilt operations carry before-images instead. Returns
// the row keys to flush.
func (s *Server) rollback(undo *namespace.Undo, imgs []types.RowImage) []string {
	if undo != nil {
		s.Shard.ApplyUndo(undo)
		return undo.Keys()
	}
	s.Shard.InstallImages(imgs)
	return imageKeys(imgs)
}

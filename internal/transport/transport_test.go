package transport

import (
	"testing"
	"time"

	"cxfs/internal/simrt"
	"cxfs/internal/types"
	"cxfs/internal/wire"
)

func TestSendDeliversAfterModelDelay(t *testing.T) {
	s := simrt.New(1)
	n := New(s, DefaultParams())
	box := n.Register(1)
	n.Register(0)
	var at time.Duration
	s.Spawn("recv", func(p *simrt.Proc) {
		box.Recv(p)
		at = p.Now()
		s.Stop()
	})
	s.Spawn("send", func(p *simrt.Proc) {
		n.Send(wire.Msg{Type: wire.MsgAck, From: 0, To: 1})
	})
	s.Run()
	s.Shutdown()
	m := wire.Msg{Type: wire.MsgAck, From: 0, To: 1}
	pp := DefaultParams()
	want := pp.CPUOverhead + pp.Latency + time.Duration(wire.Size(&m)*int64(time.Second)/pp.Bandwidth)
	if at != want {
		t.Errorf("delivered at %v, want %v", at, want)
	}
}

func TestFIFOBetweenPair(t *testing.T) {
	s := simrt.New(1)
	n := New(s, DefaultParams())
	box := n.Register(1)
	n.Register(0)
	var seqs []uint64
	s.Spawn("recv", func(p *simrt.Proc) {
		for i := 0; i < 10; i++ {
			m := box.Recv(p)
			seqs = append(seqs, m.Op.Seq)
		}
		s.Stop()
	})
	s.Spawn("send", func(p *simrt.Proc) {
		for i := 0; i < 10; i++ {
			n.Send(wire.Msg{Type: wire.MsgAck, From: 0, To: 1, Op: types.OpID{Seq: uint64(i)}})
		}
	})
	s.Run()
	s.Shutdown()
	for i, v := range seqs {
		if v != uint64(i) {
			t.Fatalf("out of order: %v", seqs)
		}
	}
}

func TestStatsCountByType(t *testing.T) {
	s := simrt.New(1)
	n := New(s, DefaultParams())
	n.Register(0)
	n.Register(1)
	s.Spawn("send", func(p *simrt.Proc) {
		n.Send(wire.Msg{Type: wire.MsgVote, From: 0, To: 1})
		n.Send(wire.Msg{Type: wire.MsgVote, From: 0, To: 1})
		n.Send(wire.Msg{Type: wire.MsgAck, From: 1, To: 0})
	})
	s.Run()
	s.Shutdown()
	st := n.Stats()
	if st.Messages != 3 || st.ByType[wire.MsgVote] != 2 || st.ByType[wire.MsgAck] != 1 {
		t.Errorf("stats=%+v", st)
	}
	if st.Bytes == 0 {
		t.Error("no bytes counted")
	}
}

func TestStatsSub(t *testing.T) {
	a := Stats{Messages: 10, Bytes: 100}
	a.ByType[wire.MsgVote] = 4
	b := Stats{Messages: 3, Bytes: 30}
	b.ByType[wire.MsgVote] = 1
	d := a.Sub(b)
	if d.Messages != 7 || d.Bytes != 70 || d.ByType[wire.MsgVote] != 3 {
		t.Errorf("diff=%+v", d)
	}
}

func TestDownNodeDropsMessages(t *testing.T) {
	s := simrt.New(1)
	n := New(s, DefaultParams())
	box := n.Register(1)
	n.Register(0)
	got := 0
	s.Spawn("recv", func(p *simrt.Proc) {
		for {
			if _, ok := box.RecvTimeout(p, time.Second); !ok {
				s.Stop()
				return
			}
			got++
		}
	})
	s.Spawn("send", func(p *simrt.Proc) {
		n.SetDown(1, true)
		n.Send(wire.Msg{Type: wire.MsgAck, From: 0, To: 1})
		p.Sleep(10 * time.Millisecond)
		n.SetDown(1, false)
		n.Send(wire.Msg{Type: wire.MsgAck, From: 0, To: 1})
	})
	s.Run()
	s.Shutdown()
	if got != 1 {
		t.Errorf("delivered %d messages, want 1 (first dropped)", got)
	}
}

func TestSendToUnregisteredPanics(t *testing.T) {
	s := simrt.New(1)
	n := New(s, DefaultParams())
	n.Register(0)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
		s.Shutdown()
	}()
	n.Send(wire.Msg{From: 0, To: 99})
}

func TestRegisterIdempotent(t *testing.T) {
	s := simrt.New(1)
	n := New(s, DefaultParams())
	a := n.Register(5)
	b := n.Register(5)
	if a != b {
		t.Error("Register returned different inboxes for the same node")
	}
	s.Shutdown()
}

func TestBigMessagePaysTransferTime(t *testing.T) {
	s := simrt.New(1)
	n := New(s, DefaultParams())
	box := n.Register(1)
	n.Register(0)
	var small, big time.Duration
	s.Spawn("recv", func(p *simrt.Proc) {
		start := p.Now()
		box.Recv(p)
		small = p.Now() - start
		start = p.Now()
		box.Recv(p)
		big = p.Now() - start
		s.Stop()
	})
	s.Spawn("send", func(p *simrt.Proc) {
		n.Send(wire.Msg{Type: wire.MsgAck, From: 0, To: 1})
		p.Sleep(time.Second)
		rows := []wire.Row{{Key: "k", Val: make([]byte, 10<<20)}}
		n.Send(wire.Msg{Type: wire.MsgMigrateResp, From: 0, To: 1, Rows: rows})
	})
	s.Run()
	s.Shutdown()
	if big <= small {
		t.Errorf("10MB message (%v) not slower than small (%v)", big, small)
	}
}

package simrt

import (
	"testing"
	"time"
)

func TestSleepAdvancesVirtualTime(t *testing.T) {
	s := New(1)
	var woke time.Duration
	s.Spawn("sleeper", func(p *Proc) {
		p.Sleep(3 * time.Second)
		woke = p.Now()
	})
	end := s.Run()
	if woke != 3*time.Second {
		t.Errorf("woke at %v, want 3s", woke)
	}
	if end != 3*time.Second {
		t.Errorf("sim ended at %v, want 3s", end)
	}
	s.Shutdown()
}

func TestSleepZeroAndNegative(t *testing.T) {
	s := New(1)
	ran := 0
	s.Spawn("p", func(p *Proc) {
		p.Sleep(0)
		ran++
		p.Sleep(-time.Second)
		ran++
	})
	s.Run()
	if ran != 2 {
		t.Errorf("ran=%d, want 2", ran)
	}
	if s.Now() != 0 {
		t.Errorf("time advanced to %v on zero sleeps", s.Now())
	}
	s.Shutdown()
}

func TestEventOrderingIsFIFOAtSameTime(t *testing.T) {
	s := New(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.After(time.Second, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d]=%d, want %d (ties must dispatch FIFO)", i, v, i)
		}
	}
	s.Shutdown()
}

func TestInterleavingDeterministic(t *testing.T) {
	run := func() []string {
		s := New(42)
		var log []string
		for _, n := range []struct {
			name string
			d    time.Duration
		}{{"a", 2 * time.Millisecond}, {"b", 1 * time.Millisecond}, {"c", 2 * time.Millisecond}} {
			n := n
			s.Spawn(n.name, func(p *Proc) {
				for i := 0; i < 3; i++ {
					p.Sleep(n.d)
					log = append(log, n.name)
				}
			})
		}
		s.Run()
		s.Shutdown()
		return log
	}
	a, b := run(), run()
	if len(a) != 9 {
		t.Fatalf("got %d entries, want 9", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %v vs %v", i, a, b)
		}
	}
	// b sleeps 1ms so it must log first.
	if a[0] != "b" {
		t.Errorf("first logger = %q, want b", a[0])
	}
}

func TestChanSendBeforeRecv(t *testing.T) {
	s := New(1)
	c := NewChan[int](s)
	got := -1
	s.Spawn("sender", func(p *Proc) { c.Send(7) })
	s.Spawn("recv", func(p *Proc) {
		p.Sleep(time.Second)
		got = c.Recv(p)
	})
	s.Run()
	if got != 7 {
		t.Errorf("got %d, want 7", got)
	}
	s.Shutdown()
}

func TestChanRecvBlocksUntilSend(t *testing.T) {
	s := New(1)
	c := NewChan[string](s)
	var got string
	var at time.Duration
	s.Spawn("recv", func(p *Proc) {
		got = c.Recv(p)
		at = p.Now()
	})
	s.Spawn("sender", func(p *Proc) {
		p.Sleep(5 * time.Second)
		c.Send("hello")
	})
	s.Run()
	if got != "hello" || at != 5*time.Second {
		t.Errorf("got %q at %v, want hello at 5s", got, at)
	}
	s.Shutdown()
}

func TestChanFIFOOrderAcrossManyMessages(t *testing.T) {
	s := New(1)
	c := NewChan[int](s)
	var got []int
	s.Spawn("recv", func(p *Proc) {
		for i := 0; i < 100; i++ {
			got = append(got, c.Recv(p))
		}
	})
	s.Spawn("send", func(p *Proc) {
		for i := 0; i < 100; i++ {
			c.Send(i)
			if i%7 == 0 {
				p.Sleep(time.Millisecond)
			}
		}
	})
	s.Run()
	if len(got) != 100 {
		t.Fatalf("received %d, want 100", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("got[%d]=%d, want %d", i, v, i)
		}
	}
	s.Shutdown()
}

func TestChanMultipleReceiversWakeInOrder(t *testing.T) {
	s := New(1)
	c := NewChan[int](s)
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		s.Spawn("r", func(p *Proc) {
			v := c.Recv(p)
			order = append(order, i*100+v)
		})
	}
	s.Spawn("send", func(p *Proc) {
		p.Sleep(time.Second)
		c.Send(1)
		c.Send(2)
		c.Send(3)
	})
	s.Run()
	want := []int{1, 102, 203} // receiver 0 gets first value, etc.
	if len(order) != 3 {
		t.Fatalf("order=%v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Errorf("order=%v, want %v", order, want)
			break
		}
	}
	s.Shutdown()
}

func TestRecvTimeoutExpires(t *testing.T) {
	s := New(1)
	c := NewChan[int](s)
	var ok bool
	var at time.Duration
	s.Spawn("recv", func(p *Proc) {
		_, ok = c.RecvTimeout(p, 2*time.Second)
		at = p.Now()
	})
	s.Run()
	if ok {
		t.Error("expected timeout")
	}
	if at != 2*time.Second {
		t.Errorf("timed out at %v, want 2s", at)
	}
	s.Shutdown()
}

func TestRecvTimeoutDeliveredBeatsTimer(t *testing.T) {
	s := New(1)
	c := NewChan[int](s)
	var v int
	var ok bool
	s.Spawn("recv", func(p *Proc) { v, ok = c.RecvTimeout(p, 10*time.Second) })
	s.Spawn("send", func(p *Proc) {
		p.Sleep(time.Second)
		c.Send(9)
	})
	s.Run()
	if !ok || v != 9 {
		t.Errorf("got (%d,%v), want (9,true)", v, ok)
	}
	// The stale timer event must not disturb anything.
	if s.Now() != 10*time.Second {
		t.Errorf("end time %v, want 10s (stale timer still dispatched)", s.Now())
	}
	s.Shutdown()
}

func TestTimedOutWaiterDoesNotStealLaterSend(t *testing.T) {
	s := New(1)
	c := NewChan[int](s)
	var late int
	s.Spawn("victim", func(p *Proc) {
		if _, ok := c.RecvTimeout(p, time.Second); ok {
			t.Error("victim should have timed out")
		}
	})
	s.Spawn("winner", func(p *Proc) {
		p.Sleep(2 * time.Second)
		late = c.Recv(p)
	})
	s.Spawn("send", func(p *Proc) {
		p.Sleep(3 * time.Second)
		c.Send(42)
	})
	s.Run()
	if late != 42 {
		t.Errorf("winner got %d, want 42", late)
	}
	s.Shutdown()
}

func TestChanCloseWakesReceivers(t *testing.T) {
	s := New(1)
	c := NewChan[int](s)
	var oks []bool
	for i := 0; i < 2; i++ {
		s.Spawn("r", func(p *Proc) {
			_, ok := c.RecvOK(p)
			oks = append(oks, ok)
		})
	}
	s.Spawn("closer", func(p *Proc) {
		p.Sleep(time.Second)
		c.Close()
	})
	s.Run()
	if len(oks) != 2 || oks[0] || oks[1] {
		t.Errorf("oks=%v, want [false false]", oks)
	}
	s.Shutdown()
}

func TestChanCloseDrainsBufferFirst(t *testing.T) {
	s := New(1)
	c := NewChan[int](s)
	var got []int
	var lastOK bool
	s.Spawn("p", func(p *Proc) {
		c.Send(1)
		c.Send(2)
		c.Close()
		for {
			v, ok := c.RecvOK(p)
			if !ok {
				lastOK = false
				return
			}
			got = append(got, v)
		}
	})
	s.Run()
	if len(got) != 2 || got[0] != 1 || got[1] != 2 || lastOK {
		t.Errorf("got=%v lastOK=%v", got, lastOK)
	}
	s.Shutdown()
}

func TestTryRecv(t *testing.T) {
	s := New(1)
	c := NewChan[int](s)
	var empty, full bool
	var v int
	s.Spawn("p", func(p *Proc) {
		_, ok := c.TryRecv()
		empty = !ok
		c.Send(5)
		v, full = c.TryRecv()
	})
	s.Run()
	if !empty || !full || v != 5 {
		t.Errorf("empty=%v full=%v v=%d", empty, full, v)
	}
	s.Shutdown()
}

func TestGroupWait(t *testing.T) {
	s := New(1)
	g := NewGroup(s)
	g.Add(3)
	var doneAt time.Duration
	for i := 1; i <= 3; i++ {
		i := i
		s.Spawn("w", func(p *Proc) {
			p.Sleep(time.Duration(i) * time.Second)
			g.Done()
		})
	}
	s.Spawn("waiter", func(p *Proc) {
		g.Wait(p)
		doneAt = p.Now()
	})
	s.Run()
	if doneAt != 3*time.Second {
		t.Errorf("group released at %v, want 3s", doneAt)
	}
	s.Shutdown()
}

func TestGroupWaitOnZeroReturnsImmediately(t *testing.T) {
	s := New(1)
	g := NewGroup(s)
	ran := false
	s.Spawn("w", func(p *Proc) {
		g.Wait(p)
		ran = true
	})
	s.Run()
	if !ran {
		t.Error("Wait on zero Group blocked")
	}
	s.Shutdown()
}

func TestMutexExcludesAcrossBlockingSection(t *testing.T) {
	s := New(1)
	m := NewMutex(s)
	inside := 0
	maxInside := 0
	for i := 0; i < 5; i++ {
		s.Spawn("locker", func(p *Proc) {
			m.Lock(p)
			inside++
			if inside > maxInside {
				maxInside = inside
			}
			p.Sleep(time.Second) // blocking call inside critical section
			inside--
			m.Unlock()
		})
	}
	end := s.Run()
	if maxInside != 1 {
		t.Errorf("max concurrent holders = %d, want 1", maxInside)
	}
	if end != 5*time.Second {
		t.Errorf("end=%v, want 5s (serialized)", end)
	}
	s.Shutdown()
}

func TestMutexTryLock(t *testing.T) {
	s := New(1)
	m := NewMutex(s)
	var first, second bool
	s.Spawn("p", func(p *Proc) {
		first = m.TryLock()
		second = m.TryLock()
		m.Unlock()
	})
	s.Run()
	if !first || second {
		t.Errorf("first=%v second=%v, want true/false", first, second)
	}
	s.Shutdown()
}

func TestRunUntilHorizon(t *testing.T) {
	s := New(1)
	fired := 0
	s.After(time.Second, func() { fired++ })
	s.After(3*time.Second, func() { fired++ })
	at := s.RunUntil(2 * time.Second)
	if fired != 1 {
		t.Errorf("fired=%d, want 1", fired)
	}
	if at != 2*time.Second {
		t.Errorf("at=%v, want 2s", at)
	}
	at = s.RunUntil(10 * time.Second)
	if fired != 2 {
		t.Errorf("fired=%d after resume, want 2", fired)
	}
	if at != 3*time.Second {
		t.Errorf("at=%v, want 3s", at)
	}
	s.Shutdown()
}

func TestStopHaltsDispatch(t *testing.T) {
	s := New(1)
	fired := 0
	s.After(time.Second, func() { fired++; s.Stop() })
	s.After(2*time.Second, func() { fired++ })
	s.Run()
	if fired != 1 {
		t.Errorf("fired=%d, want 1 (Stop should halt)", fired)
	}
	if !s.Stopped() {
		t.Error("Stopped()=false after Stop")
	}
	s.Shutdown()
}

func TestShutdownKillsParkedProcs(t *testing.T) {
	s := New(1)
	c := NewChan[int](s)
	s.Spawn("stuck-recv", func(p *Proc) { c.Recv(p) })
	s.Spawn("stuck-sleep", func(p *Proc) { p.Sleep(time.Hour); p.Sleep(time.Hour) })
	s.Spawn("finisher", func(p *Proc) { p.Sleep(time.Second); s.Stop() })
	s.Run()
	// Shutdown must return (wg.Wait) — if a proc leaks this test hangs.
	s.Shutdown()
}

func TestShutdownKillsNeverStartedProc(t *testing.T) {
	s := New(1)
	s.Spawn("early-stop", func(p *Proc) { s.Stop() })
	s.SpawnAfter(time.Hour, "never-started", func(p *Proc) {
		t.Error("proc body should never run")
	})
	s.Run()
	s.Shutdown()
}

func TestSpawnFromInsideProc(t *testing.T) {
	s := New(1)
	var childAt time.Duration
	s.Spawn("parent", func(p *Proc) {
		p.Sleep(time.Second)
		s.Spawn("child", func(q *Proc) {
			q.Sleep(time.Second)
			childAt = q.Now()
		})
	})
	s.Run()
	if childAt != 2*time.Second {
		t.Errorf("child finished at %v, want 2s", childAt)
	}
	s.Shutdown()
}

func TestRandDeterministic(t *testing.T) {
	a := New(7).Rand().Int63()
	b := New(7).Rand().Int63()
	if a != b {
		t.Errorf("same seed produced %d and %d", a, b)
	}
}

func TestManyProcsStress(t *testing.T) {
	s := New(3)
	c := NewChan[int](s)
	g := NewGroup(s)
	const n = 500
	g.Add(n)
	sum := 0
	s.Spawn("collector", func(p *Proc) {
		for i := 0; i < n; i++ {
			sum += c.Recv(p)
		}
	})
	for i := 1; i <= n; i++ {
		i := i
		s.Spawn("worker", func(p *Proc) {
			p.Sleep(time.Duration(i%17) * time.Millisecond)
			c.Send(i)
			g.Done()
		})
	}
	s.Spawn("waiter", func(p *Proc) { g.Wait(p) })
	s.Run()
	if want := n * (n + 1) / 2; sum != want {
		t.Errorf("sum=%d, want %d", sum, want)
	}
	s.Shutdown()
}

func TestYieldLetsPeersRun(t *testing.T) {
	s := New(1)
	var order []string
	s.Spawn("a", func(p *Proc) {
		order = append(order, "a1")
		p.Yield()
		order = append(order, "a2")
	})
	s.Spawn("b", func(p *Proc) {
		order = append(order, "b1")
	})
	s.Run()
	want := []string{"a1", "b1", "a2"}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("order=%v, want %v", order, want)
		}
	}
	s.Shutdown()
}

package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"os"
)

// Binary trace file format, so generated workloads can be saved, diffed,
// and replayed exactly (the synthetic stand-ins for the Sandia/Harvard
// traces are deterministic, but a file pins a workload across versions of
// the generator):
//
//	magic   "CXTR\x01"
//	u16     profile-name length, name bytes
//	f64     scale
//	u32     total ops
//	u32     dirs
//	u32     procs
//	per proc: u32 record count, then records of
//	          u8 kind, varint file, varint dir
//	u32     FNV-1a checksum of everything after the magic
//
// Numbers are little endian; file/dir use unsigned varints since symbolic
// ids are small and dense.

var fileMagic = []byte("CXTR\x01")

// Save writes the trace to path.
func (t *Trace) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: save: %w", err)
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	h := fnv.New32a()
	out := io.MultiWriter(w, h)

	if _, err := w.Write(fileMagic); err != nil {
		return err
	}
	var scratch [binary.MaxVarintLen64]byte
	writeU16 := func(v uint16) error {
		binary.LittleEndian.PutUint16(scratch[:2], v)
		_, err := out.Write(scratch[:2])
		return err
	}
	writeU32 := func(v uint32) error {
		binary.LittleEndian.PutUint32(scratch[:4], v)
		_, err := out.Write(scratch[:4])
		return err
	}
	writeVarint := func(v uint64) error {
		n := binary.PutUvarint(scratch[:], v)
		_, err := out.Write(scratch[:n])
		return err
	}

	if err := writeU16(uint16(len(t.Profile.Name))); err != nil {
		return err
	}
	if _, err := io.WriteString(out, t.Profile.Name); err != nil {
		return err
	}
	binary.LittleEndian.PutUint64(scratch[:8], math.Float64bits(t.Scale))
	if _, err := out.Write(scratch[:8]); err != nil {
		return err
	}
	if err := writeU32(uint32(t.Total)); err != nil {
		return err
	}
	if err := writeU32(uint32(t.Dirs)); err != nil {
		return err
	}
	if err := writeU32(uint32(len(t.PerProc))); err != nil {
		return err
	}
	for _, recs := range t.PerProc {
		if err := writeU32(uint32(len(recs))); err != nil {
			return err
		}
		for _, r := range recs {
			if _, err := out.Write([]byte{byte(r.Kind)}); err != nil {
				return err
			}
			if err := writeVarint(uint64(r.File)); err != nil {
				return err
			}
			if err := writeVarint(uint64(r.Dir)); err != nil {
				return err
			}
		}
	}
	binary.LittleEndian.PutUint32(scratch[:4], h.Sum32())
	if _, err := w.Write(scratch[:4]); err != nil {
		return err
	}
	return w.Flush()
}

// Load reads a trace written by Save. The profile is re-resolved by name so
// replay parameters (process count, directories) match the generator's.
func Load(path string) (*Trace, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("trace: load: %w", err)
	}
	if len(raw) < len(fileMagic)+4 {
		return nil, fmt.Errorf("trace: %s: truncated", path)
	}
	if string(raw[:len(fileMagic)]) != string(fileMagic) {
		return nil, fmt.Errorf("trace: %s: bad magic", path)
	}
	body := raw[len(fileMagic) : len(raw)-4]
	want := binary.LittleEndian.Uint32(raw[len(raw)-4:])
	h := fnv.New32a()
	h.Write(body)
	if h.Sum32() != want {
		return nil, fmt.Errorf("trace: %s: checksum mismatch", path)
	}

	pos := 0
	fail := func(what string) error { return fmt.Errorf("trace: %s: truncated %s", path, what) }
	readU16 := func() (uint16, error) {
		if pos+2 > len(body) {
			return 0, fail("u16")
		}
		v := binary.LittleEndian.Uint16(body[pos:])
		pos += 2
		return v, nil
	}
	readU32 := func() (uint32, error) {
		if pos+4 > len(body) {
			return 0, fail("u32")
		}
		v := binary.LittleEndian.Uint32(body[pos:])
		pos += 4
		return v, nil
	}
	readVarint := func() (uint64, error) {
		v, n := binary.Uvarint(body[pos:])
		if n <= 0 {
			return 0, fail("varint")
		}
		pos += n
		return v, nil
	}

	nameLen, err := readU16()
	if err != nil {
		return nil, err
	}
	if pos+int(nameLen) > len(body) {
		return nil, fail("name")
	}
	name := string(body[pos : pos+int(nameLen)])
	pos += int(nameLen)
	profile, err := ProfileByName(name)
	if err != nil {
		return nil, err
	}
	if pos+8 > len(body) {
		return nil, fail("scale")
	}
	scale := math.Float64frombits(binary.LittleEndian.Uint64(body[pos:]))
	pos += 8
	total, err := readU32()
	if err != nil {
		return nil, err
	}
	dirs, err := readU32()
	if err != nil {
		return nil, err
	}
	procs, err := readU32()
	if err != nil {
		return nil, err
	}
	if int(procs) != profile.Procs {
		return nil, fmt.Errorf("trace: %s: %d processes but profile %s has %d",
			path, procs, name, profile.Procs)
	}
	perProc := make([][]Rec, procs)
	for pi := range perProc {
		n, err := readU32()
		if err != nil {
			return nil, err
		}
		recs := make([]Rec, n)
		for i := range recs {
			if pos >= len(body) {
				return nil, fail("record kind")
			}
			recs[i].Kind = Kind(body[pos])
			pos++
			file, err := readVarint()
			if err != nil {
				return nil, err
			}
			dir, err := readVarint()
			if err != nil {
				return nil, err
			}
			recs[i] = Rec{Proc: pi, Kind: recs[i].Kind, File: int(file), Dir: int(dir)}
		}
		perProc[pi] = recs
	}
	if pos != len(body) {
		return nil, fmt.Errorf("trace: %s: %d trailing bytes", path, len(body)-pos)
	}
	return &Trace{Profile: profile, Scale: scale, PerProc: perProc, Total: int(total), Dirs: int(dirs)}, nil
}

package cxfs_test

import (
	"errors"
	"fmt"
	"testing"
	"time"

	cxfs "cxfs"
	"cxfs/internal/types"
)

func TestQuickstartFlow(t *testing.T) {
	fs := cxfs.New(cxfs.Options{Servers: 4, Protocol: cxfs.Cx, Seed: 7})
	defer fs.Close()
	fs.Run(func(ctx *cxfs.Ctx) {
		dir, err := ctx.Mkdir(cxfs.Root, "project")
		if err != nil {
			t.Fatalf("mkdir: %v", err)
		}
		ino, err := ctx.Create(dir, "main.go")
		if err != nil {
			t.Fatalf("create: %v", err)
		}
		attr, err := ctx.Stat(ino)
		if err != nil || attr.Nlink != 1 {
			t.Fatalf("stat: %+v %v", attr, err)
		}
		if got, err := ctx.Lookup(dir, "main.go"); err != nil || got.Ino != ino {
			t.Fatalf("lookup: %v %v", got.Ino, err)
		}
		if err := ctx.Remove(dir, "main.go", ino); err != nil {
			t.Fatalf("remove: %v", err)
		}
		if _, err := ctx.Lookup(dir, "main.go"); !errors.Is(err, types.ErrNotFound) {
			t.Fatalf("lookup after remove: %v", err)
		}
	})
	if fs.Elapsed() <= 0 {
		t.Error("no virtual time elapsed")
	}
	if bad := fs.CheckConsistency(); len(bad) != 0 {
		t.Errorf("inconsistent: %v", bad)
	}
}

func TestRunNConcurrentProcesses(t *testing.T) {
	fs := cxfs.New(cxfs.Options{Servers: 4, Protocol: cxfs.Cx})
	defer fs.Close()
	fs.RunN(8, func(ctx *cxfs.Ctx, i int) {
		for j := 0; j < 10; j++ {
			if _, err := ctx.Create(cxfs.Root, fmt.Sprintf("f-%d-%d", i, j)); err != nil {
				t.Errorf("create: %v", err)
			}
		}
	})
	st := fs.CxStats()
	if st.OpsCommitted == 0 {
		t.Error("no operations committed")
	}
	if bad := fs.CheckConsistency(); len(bad) != 0 {
		t.Errorf("inconsistent: %v", bad)
	}
}

func TestRunTwicePhases(t *testing.T) {
	fs := cxfs.New(cxfs.Options{Servers: 2, Protocol: cxfs.Cx})
	defer fs.Close()
	var dir cxfs.InodeID
	fs.Run(func(ctx *cxfs.Ctx) {
		d, err := ctx.Mkdir(cxfs.Root, "phase1")
		if err != nil {
			t.Fatalf("mkdir: %v", err)
		}
		dir = d
	})
	fs.Run(func(ctx *cxfs.Ctx) {
		if _, err := ctx.Create(dir, "phase2-file"); err != nil {
			t.Fatalf("second phase create: %v", err)
		}
	})
	if bad := fs.CheckConsistency(); len(bad) != 0 {
		t.Errorf("inconsistent: %v", bad)
	}
}

func TestAllProtocolsThroughFacade(t *testing.T) {
	for _, proto := range []cxfs.Protocol{cxfs.Cx, cxfs.SE, cxfs.SEBatched, cxfs.TwoPC, cxfs.CE} {
		proto := proto
		t.Run(string(proto), func(t *testing.T) {
			fs := cxfs.New(cxfs.Options{Servers: 3, Protocol: proto})
			defer fs.Close()
			fs.RunN(4, func(ctx *cxfs.Ctx, i int) {
				ino, err := ctx.Create(cxfs.Root, fmt.Sprintf("p-%d", i))
				if err != nil {
					t.Errorf("%v create: %v", proto, err)
					return
				}
				if _, err := ctx.Stat(ino); err != nil {
					t.Errorf("%v stat: %v", proto, err)
				}
			})
			if bad := fs.CheckConsistency(); len(bad) != 0 {
				t.Errorf("%v inconsistent: %v", proto, bad)
			}
		})
	}
}

func TestOptionsKnobs(t *testing.T) {
	fs := cxfs.New(cxfs.Options{
		Servers:       2,
		Protocol:      cxfs.Cx,
		CommitTimeout: -1, // disable lazy trigger
		LogLimit:      -1, // unlimited log
	})
	defer fs.Close()
	fs.Run(func(ctx *cxfs.Ctx) {
		for j := 0; j < 5; j++ {
			ctx.Create(cxfs.Root, fmt.Sprintf("k-%d", j))
		}
		ctx.Sleep(30 * time.Second) // no trigger must fire
	})
	// Quiesce inside Run settles everything regardless; just confirm the
	// deployment behaves and stays consistent with the knobs applied.
	if bad := fs.CheckConsistency(); len(bad) != 0 {
		t.Errorf("inconsistent: %v", bad)
	}
}

func TestDeterministicAcrossIdenticalDeployments(t *testing.T) {
	run := func() (time.Duration, uint64) {
		fs := cxfs.New(cxfs.Options{Servers: 4, Protocol: cxfs.Cx, Seed: 42})
		defer fs.Close()
		fs.RunN(4, func(ctx *cxfs.Ctx, i int) {
			for j := 0; j < 8; j++ {
				ctx.Create(cxfs.Root, fmt.Sprintf("d-%d-%d", i, j))
			}
		})
		return fs.Elapsed(), fs.Messages()
	}
	e1, m1 := run()
	e2, m2 := run()
	if e1 != e2 || m1 != m2 {
		t.Errorf("nondeterministic: (%v,%d) vs (%v,%d)", e1, m1, e2, m2)
	}
}

func TestFacadeRenameAndReaddir(t *testing.T) {
	fs := cxfs.New(cxfs.Options{Servers: 4, Protocol: cxfs.Cx})
	defer fs.Close()
	fs.Run(func(ctx *cxfs.Ctx) {
		src, err := ctx.Mkdir(cxfs.Root, "src")
		if err != nil {
			t.Fatal(err)
		}
		dst, err := ctx.Mkdir(cxfs.Root, "dst")
		if err != nil {
			t.Fatal(err)
		}
		var inos []cxfs.InodeID
		for j := 0; j < 6; j++ {
			ino, err := ctx.Create(src, fmt.Sprintf("doc-%d", j))
			if err != nil {
				t.Fatal(err)
			}
			inos = append(inos, ino)
		}
		if err := ctx.Rename(src, "doc-0", inos[0], dst, "moved-doc"); err != nil {
			t.Fatalf("rename: %v", err)
		}
		srcEntries, err := ctx.Readdir(src)
		if err != nil || len(srcEntries) != 5 {
			t.Errorf("src listing: %d entries, err=%v", len(srcEntries), err)
		}
		dstEntries, err := ctx.Readdir(dst)
		if err != nil || len(dstEntries) != 1 || dstEntries[0].Name != "moved-doc" || dstEntries[0].Ino != inos[0] {
			t.Errorf("dst listing: %+v err=%v", dstEntries, err)
		}
	})
	if bad := fs.CheckConsistency(); len(bad) != 0 {
		t.Errorf("inconsistent: %v", bad)
	}
}

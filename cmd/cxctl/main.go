// Command cxctl is the client for cxd: it sends one command to a running
// daemon and prints the result.
//
// Usage:
//
//	cxctl -addr 127.0.0.1:7070 ping
//	cxctl run table2
//	cxctl -scale 0.01 run fig5
//	cxctl -trace s3d -protocol cx replay
//	cxctl -mix update-dominated -servers 8 metarates
//	cxctl report                    # latency histograms of the last run
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"time"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7070", "cxd address")
		scale    = flag.Float64("scale", 0.002, "trace scale")
		servers  = flag.Int("servers", 4, "metadata servers")
		seed     = flag.Int64("seed", 1, "simulation seed")
		traceN   = flag.String("trace", "s3d", "trace name for replay")
		protocol = flag.String("protocol", "cx", "protocol for replay/metarates")
		mix      = flag.String("mix", "update-dominated", "metarates mix")
		ops      = flag.Int("ops", 40, "metarates ops per process")
		timeout  = flag.Duration("timeout", 10*time.Minute, "request timeout")
	)
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: cxctl [flags] <ping|experiments|run EXP|replay|metarates|report>")
		os.Exit(2)
	}

	req := map[string]any{
		"cmd": args[0], "scale": *scale, "servers": *servers, "seed": *seed,
	}
	switch args[0] {
	case "run":
		if len(args) < 2 {
			fmt.Fprintln(os.Stderr, "cxctl: run needs an experiment id")
			os.Exit(2)
		}
		req["exp"] = args[1]
	case "replay":
		req["trace"] = *traceN
		req["protocol"] = *protocol
	case "metarates":
		req["mix"] = *mix
		req["protocol"] = *protocol
		req["ops"] = *ops
	}

	conn, err := net.DialTimeout("tcp", *addr, 5*time.Second)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cxctl: %v\n", err)
		os.Exit(1)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(*timeout))

	enc := json.NewEncoder(conn)
	if err := enc.Encode(req); err != nil {
		fmt.Fprintf(os.Stderr, "cxctl: send: %v\n", err)
		os.Exit(1)
	}
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	if !sc.Scan() {
		fmt.Fprintln(os.Stderr, "cxctl: connection closed without response")
		os.Exit(1)
	}
	var resp struct {
		OK     bool   `json:"ok"`
		Error  string `json:"error"`
		Output string `json:"output"`
		Millis int64  `json:"wall_ms"`
	}
	if err := json.Unmarshal(sc.Bytes(), &resp); err != nil {
		fmt.Fprintf(os.Stderr, "cxctl: bad response: %v\n", err)
		os.Exit(1)
	}
	if !resp.OK {
		fmt.Fprintf(os.Stderr, "cxctl: server error: %s\n", resp.Error)
		os.Exit(1)
	}
	fmt.Println(resp.Output)
	fmt.Fprintf(os.Stderr, "(wall time %dms)\n", resp.Millis)
}

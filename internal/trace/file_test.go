package trace

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	p, _ := ProfileByName("s3d")
	tr := Generate(p, scaleFor(p, 2000), 9)
	path := filepath.Join(t.TempDir(), "s3d.cxtr")
	if err := tr.Save(path); err != nil {
		t.Fatalf("save: %v", err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if got.Total != tr.Total || got.Dirs != tr.Dirs || got.Scale != tr.Scale {
		t.Errorf("metadata mismatch: %+v vs %+v", got.Total, tr.Total)
	}
	if got.Profile.Name != "s3d" {
		t.Errorf("profile=%s", got.Profile.Name)
	}
	if len(got.PerProc) != len(tr.PerProc) {
		t.Fatalf("procs %d vs %d", len(got.PerProc), len(tr.PerProc))
	}
	for pi := range tr.PerProc {
		if len(got.PerProc[pi]) != len(tr.PerProc[pi]) {
			t.Fatalf("proc %d: %d vs %d records", pi, len(got.PerProc[pi]), len(tr.PerProc[pi]))
		}
		for i := range tr.PerProc[pi] {
			if got.PerProc[pi][i] != tr.PerProc[pi][i] {
				t.Fatalf("proc %d rec %d: %+v vs %+v", pi, i, got.PerProc[pi][i], tr.PerProc[pi][i])
			}
		}
	}
}

func TestLoadRejectsCorruption(t *testing.T) {
	p, _ := ProfileByName("CTH")
	tr := Generate(p, scaleFor(p, 500), 1)
	dir := t.TempDir()
	path := filepath.Join(dir, "t.cxtr")
	if err := tr.Save(path); err != nil {
		t.Fatal(err)
	}
	raw, _ := os.ReadFile(path)

	// Flip a byte in the middle: checksum must catch it.
	bad := append([]byte(nil), raw...)
	bad[len(bad)/2] ^= 0xFF
	badPath := filepath.Join(dir, "bad.cxtr")
	os.WriteFile(badPath, bad, 0o644)
	if _, err := Load(badPath); err == nil {
		t.Error("corrupted file loaded")
	}

	// Truncate: must fail cleanly.
	os.WriteFile(badPath, raw[:len(raw)/3], 0o644)
	if _, err := Load(badPath); err == nil {
		t.Error("truncated file loaded")
	}

	// Wrong magic.
	os.WriteFile(badPath, append([]byte("NOPE!"), raw[5:]...), 0o644)
	if _, err := Load(badPath); err == nil {
		t.Error("bad magic accepted")
	}

	// Missing file.
	if _, err := Load(filepath.Join(dir, "absent.cxtr")); err == nil {
		t.Error("absent file loaded")
	}
}

func TestLoadedTraceReplaysIdentically(t *testing.T) {
	p, _ := ProfileByName("CTH")
	tr := Generate(p, scaleFor(p, 800), 3)
	path := filepath.Join(t.TempDir(), "r.cxtr")
	if err := tr.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}

	run := func(tt *Trace) (int, uint64) {
		c := testCluster("cx")
		defer c.Shutdown()
		res := (&Replayer{Trace: tt, C: c}).Run()
		return res.Ops, res.Messages
	}
	ops1, msgs1 := run(tr)
	ops2, msgs2 := run(loaded)
	if ops1 != ops2 || msgs1 != msgs2 {
		t.Errorf("replay diverged: (%d,%d) vs (%d,%d)", ops1, msgs1, ops2, msgs2)
	}
}

func TestTextRoundTrip(t *testing.T) {
	p, _ := ProfileByName("CTH")
	tr := Generate(p, scaleFor(p, 1200), 4)
	var buf bytes.Buffer
	if err := tr.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ParseText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Total != tr.Total || got.Dirs != tr.Dirs {
		t.Errorf("meta: %d/%d vs %d/%d", got.Total, got.Dirs, tr.Total, tr.Dirs)
	}
	for pi := range tr.PerProc {
		if len(got.PerProc[pi]) != len(tr.PerProc[pi]) {
			t.Fatalf("proc %d length", pi)
		}
		for i := range tr.PerProc[pi] {
			if got.PerProc[pi][i] != tr.PerProc[pi][i] {
				t.Fatalf("proc %d rec %d: %+v vs %+v", pi, i, got.PerProc[pi][i], tr.PerProc[pi][i])
			}
		}
	}
}

func TestParseTextHandWritten(t *testing.T) {
	src := `#cxtrace v1 workload=CTH procs=64 dirs=2
# a tiny hand-written workload
0 create 0 0
0 stat 0 0
1 create 1 1
# trailing comment
0 remove 0 0
`
	tr, err := ParseText(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Total != 4 {
		t.Errorf("total=%d", tr.Total)
	}
	if len(tr.PerProc[0]) != 3 || len(tr.PerProc[1]) != 1 {
		t.Errorf("per-proc: %d/%d", len(tr.PerProc[0]), len(tr.PerProc[1]))
	}
	if tr.PerProc[0][2].Kind != RemoveOwn {
		t.Errorf("kind=%v", tr.PerProc[0][2].Kind)
	}
	// And it replays.
	c := testCluster("cx")
	defer c.Shutdown()
	res := (&Replayer{Trace: tr, C: c}).Run()
	if res.HardErrors != 0 {
		t.Errorf("hand-written trace replay: %d hard errors", res.HardErrors)
	}
}

func TestParseTextRejectsGarbage(t *testing.T) {
	bad := []string{
		"",
		"not a header\n0 create 0 0\n",
		"#cxtrace v1 workload=NOPE procs=4 dirs=1\n",
		"#cxtrace v1 workload=CTH procs=0 dirs=1\n",
		"#cxtrace v1 workload=CTH procs=99 dirs=1\n", // profile mismatch
		"#cxtrace v1 workload=CTH procs=64 dirs=1\n0 teleport 0 0\n",
		"#cxtrace v1 workload=CTH procs=64 dirs=1\n99 create 0 0\n",
		"#cxtrace v1 workload=CTH procs=64 dirs=1\nnot numbers here\n",
	}
	for i, src := range bad {
		if _, err := ParseText(strings.NewReader(src)); err == nil {
			t.Errorf("case %d parsed", i)
		}
	}
}

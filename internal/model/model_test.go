package model

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"cxfs/internal/types"
)

func create(w int, name string, ino types.InodeID, out Outcome) Op {
	return Op{Worker: w, Kind: types.OpCreate, Name: name, Ino: ino, Outcome: out}
}

func remove(w int, name string, ino types.InodeID, out Outcome) Op {
	return Op{Worker: w, Kind: types.OpRemove, Name: name, Ino: ino, Outcome: out}
}

func lookup(w int, name string, ino types.InodeID, out Outcome, found bool, saw types.InodeID) Op {
	return Op{Worker: w, Kind: types.OpLookup, Name: name, Ino: ino, Outcome: out, Found: found, SawIno: saw}
}

func wantClean(t *testing.T, hist []Op, final map[string]types.InodeID) {
	t.Helper()
	if bad := Check(hist, final); len(bad) != 0 {
		t.Errorf("clean history flagged: %v", bad)
	}
}

func wantViolation(t *testing.T, hist []Op, final map[string]types.InodeID, substr string) {
	t.Helper()
	bad := Check(hist, final)
	if len(bad) == 0 {
		t.Fatalf("violation %q not detected", substr)
	}
	for _, v := range bad {
		if strings.Contains(v, substr) {
			return
		}
	}
	t.Errorf("violations %v do not mention %q", bad, substr)
}

func TestCleanSequentialHistory(t *testing.T) {
	hist := []Op{
		create(0, "a", 10, OK),
		lookup(0, "a", 10, OK, true, 10),
		remove(0, "a", 10, OK),
		lookup(0, "a", 10, OK, false, 0),
		create(0, "b", 11, OK),
	}
	wantClean(t, hist, map[string]types.InodeID{"b": 11})
}

func TestCommittedEntryGoneIsViolation(t *testing.T) {
	hist := []Op{create(0, "a", 10, OK)}
	wantViolation(t, hist, map[string]types.InodeID{}, "is gone")
}

func TestRemovedEntryResidueIsViolation(t *testing.T) {
	hist := []Op{create(0, "a", 10, OK), remove(0, "a", 10, OK)}
	wantViolation(t, hist, map[string]types.InodeID{"a": 10}, "residue")
}

func TestAbortedCreateResidueIsViolation(t *testing.T) {
	hist := []Op{create(0, "a", 10, Failed)}
	wantViolation(t, hist, map[string]types.InodeID{"a": 10}, "residue")
}

func TestUnknownOutcomeAllowsBothFinalStates(t *testing.T) {
	hist := []Op{create(0, "a", 10, Unknown)}
	wantClean(t, hist, map[string]types.InodeID{})        // never applied
	wantClean(t, hist, map[string]types.InodeID{"a": 10}) // applied
	wantViolation(t, hist, map[string]types.InodeID{"a": 99}, "foreign ino")
}

func TestLookupOnRemovedEntryMustMiss(t *testing.T) {
	hist := []Op{
		create(0, "a", 10, OK),
		remove(0, "a", 10, OK),
		lookup(0, "a", 10, OK, true, 10),
	}
	wantViolation(t, hist, map[string]types.InodeID{}, "absent")
}

func TestLookupLosingCommittedEntryIsViolation(t *testing.T) {
	hist := []Op{
		create(0, "a", 10, OK),
		lookup(0, "a", 10, OK, false, 0),
	}
	wantViolation(t, hist, map[string]types.InodeID{"a": 10}, "lost a committed entry")
}

func TestLookupForeignInoIsViolation(t *testing.T) {
	hist := []Op{
		create(0, "a", 10, OK),
		lookup(0, "a", 10, OK, true, 77),
	}
	wantViolation(t, hist, map[string]types.InodeID{"a": 10}, "foreign ino")
}

func TestCreateExistsOnFreshNameIsViolation(t *testing.T) {
	hist := []Op{create(0, "a", 10, FailedExists)}
	wantViolation(t, hist, map[string]types.InodeID{}, "fresh name")
}

func TestRemoveNotFoundOnCommittedEntryIsViolation(t *testing.T) {
	hist := []Op{
		create(0, "a", 10, OK),
		remove(0, "a", 10, FailedNotFound),
	}
	wantViolation(t, hist, map[string]types.InodeID{}, "committed entry")
}

func TestAbortedRemoveKeepsEntryAlive(t *testing.T) {
	hist := []Op{
		create(0, "a", 10, OK),
		remove(0, "a", 10, Failed),
		lookup(0, "a", 10, OK, true, 10),
	}
	wantClean(t, hist, map[string]types.InodeID{"a": 10})
	wantViolation(t, hist, map[string]types.InodeID{}, "is gone")
}

func TestWorkersAreIndependentNamespacesPerName(t *testing.T) {
	// Two workers on distinct names; an interleaved history replays clean.
	hist := []Op{
		create(0, "w0 a", 10, OK),
		create(1, "w1 a", 20, OK),
		remove(1, "w1 a", 20, OK),
		lookup(0, "w0 a", 10, OK, true, 10),
	}
	wantClean(t, hist, map[string]types.InodeID{"w0 a": 10})
}

func TestNameReuseIsFlaggedAsMalformedHistory(t *testing.T) {
	hist := []Op{
		create(0, "a", 10, OK),
		create(0, "a", 11, OK),
	}
	wantViolation(t, hist, map[string]types.InodeID{"a": 10}, "name reused")
}

func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		want Outcome
	}{
		{nil, OK},
		{types.ErrTimeout, Unknown},
		{fmt.Errorf("wrapped: %w", types.ErrTimeout), Unknown},
		{types.ErrExists, FailedExists},
		{types.ErrNotFound, FailedNotFound},
		{errors.New("aborted"), Failed},
	}
	for _, c := range cases {
		if got := Classify(c.err); got != c.want {
			t.Errorf("Classify(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestHistoryHashIsOrderAndFieldSensitive(t *testing.T) {
	a := []Op{create(0, "a", 10, OK), remove(0, "a", 10, OK)}
	b := []Op{remove(0, "a", 10, OK), create(0, "a", 10, OK)}
	if HistoryHash(a) == HistoryHash(b) {
		t.Error("hash ignores order")
	}
	c := []Op{create(0, "a", 10, OK), remove(0, "a", 10, Unknown)}
	if HistoryHash(a) == HistoryHash(c) {
		t.Error("hash ignores outcome")
	}
	if HistoryHash(a) != HistoryHash([]Op{a[0], a[1]}) {
		t.Error("hash not deterministic")
	}
}

// Package obs is the observability layer threaded through the protocol
// engines: per-operation latency histograms keyed by op kind x protocol x
// outcome, a protocol-phase event trace on virtual time, and periodic
// time-series sampling of cluster resources.
//
// The paper's evaluation is entirely about where time goes — sub-op
// execution vs. synchronous log appends vs. deferred commitment (§IV) —
// and this package makes that visible per run instead of only as
// end-of-run counters.
//
// Every recording method is nil-safe: a nil *Observer is the disabled
// default, and the hot path pays exactly one nil check. The simulation is
// single-threaded (one runnable Proc at a time, with happens-before through
// the scheduler handshake), so the Observer needs no locking; readers
// consume it after the run completes.
package obs

import (
	"math/bits"
	"time"

	"cxfs/internal/stats"
	"cxfs/internal/types"
)

// Phase labels one protocol step in the event trace.
type Phase uint8

// The protocol phases of §III, as they appear in the trace.
const (
	PhaseOp                 Phase = iota // whole client operation (span)
	PhaseIssue                           // client hands sub-ops to the network
	PhaseExec                            // server executes a sub-op
	PhaseAppend                          // synchronous Result-Record append
	PhaseReply                           // server answers the client
	PhaseConflictOrdered                 // sub-op blocked behind an active object
	PhaseConflictDisordered              // enforce-rule fired: execution order reversed
	PhaseInvalidate                      // executed-but-uncommitted op rolled back
	PhaseLCom                            // client demanded an immediate commitment
	PhaseCommitLazy                      // trigger-launched commitment batch
	PhaseCommitImmediate                 // conflict/L-COM-launched commitment batch
	PhasePrune                           // log records of a finished op discarded
	numPhases
)

var phaseNames = [...]string{
	PhaseOp:                 "op",
	PhaseIssue:              "issue",
	PhaseExec:               "exec",
	PhaseAppend:             "append",
	PhaseReply:              "reply",
	PhaseConflictOrdered:    "conflict-ordered",
	PhaseConflictDisordered: "conflict-disordered",
	PhaseInvalidate:         "invalidate",
	PhaseLCom:               "l-com",
	PhaseCommitLazy:         "commit-lazy",
	PhaseCommitImmediate:    "commit-immediate",
	PhasePrune:              "prune",
}

// String renders a Phase.
func (ph Phase) String() string {
	if int(ph) < len(phaseNames) {
		return phaseNames[ph]
	}
	return "phase?"
}

// Outcome classifies a completed client operation.
type Outcome uint8

// The three outcomes the histogram keys on.
const (
	OutcomeComplete   Outcome = iota // completed cleanly
	OutcomeConflicted                // completed, but saw conflict machinery
	OutcomeAborted                   // failed (protocol abort or namespace error)
	numOutcomes
)

var outcomeNames = [...]string{
	OutcomeComplete:   "complete",
	OutcomeConflicted: "conflicted",
	OutcomeAborted:    "aborted",
}

// String renders an Outcome.
func (o Outcome) String() string {
	if int(o) < len(outcomeNames) {
		return outcomeNames[o]
	}
	return "outcome?"
}

// Key identifies one latency histogram.
type Key struct {
	Kind     types.OpKind
	Protocol string
	Outcome  Outcome
}

// histBuckets is the log-scaled bucket count: bucket i covers
// [2^(i-1), 2^i) microseconds (bucket 0 is <1µs), topping out above an hour.
const histBuckets = 40

// Histogram is a log-scaled latency histogram.
type Histogram struct {
	Count   uint64
	Sum     time.Duration
	Min     time.Duration
	Max     time.Duration
	Buckets [histBuckets]uint64
}

// bucketOf maps a latency to its bucket index.
func bucketOf(d time.Duration) int {
	us := d.Microseconds()
	if us < 0 {
		us = 0
	}
	b := bits.Len64(uint64(us)) // 0 for <1µs, 1 for 1µs, ...
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// bucketMid returns a representative latency for bucket i (geometric
// midpoint of its range).
func bucketMid(i int) time.Duration {
	if i == 0 {
		return 500 * time.Nanosecond
	}
	lo := int64(1) << (i - 1) // µs
	return time.Duration(lo+lo/2) * time.Microsecond
}

// Observe records one latency.
func (h *Histogram) Observe(d time.Duration) {
	if h.Count == 0 || d < h.Min {
		h.Min = d
	}
	if d > h.Max {
		h.Max = d
	}
	h.Count++
	h.Sum += d
	h.Buckets[bucketOf(d)]++
}

// Mean returns the average latency.
func (h *Histogram) Mean() time.Duration {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / time.Duration(h.Count)
}

// Quantile estimates the q-th quantile (0..1) from the buckets. Exact
// extremes are returned from Min/Max; interior quantiles are accurate to a
// bucket (a factor of two on the log scale).
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.Count == 0 {
		return 0
	}
	if q <= 0 {
		return h.Min
	}
	if q >= 1 {
		return h.Max
	}
	rank := uint64(q * float64(h.Count))
	if rank >= h.Count {
		rank = h.Count - 1
	}
	var seen uint64
	for i, n := range h.Buckets {
		seen += n
		if seen > rank {
			return bucketMid(i)
		}
	}
	return h.Max
}

// Event is one trace entry on virtual time. Dur is zero for instants.
type Event struct {
	T      time.Duration
	Dur    time.Duration
	Run    int
	Node   int
	Op     types.OpID
	Phase  Phase
	Detail string
}

// Options configures an Observer.
type Options struct {
	// Hist enables the per-op latency histograms.
	Hist bool
	// Trace enables the protocol-phase event trace.
	Trace bool
	// SampleEvery enables resource time-series sampling at this interval
	// (0 = off). The cluster's sampler proc reads it.
	SampleEvery time.Duration
	// TraceCap bounds the event ring buffer (0 = default 1<<18). When full,
	// the oldest events are dropped and counted.
	TraceCap int
}

// Observer accumulates histograms, trace events, and samples for one
// benchmarking session (possibly spanning several sequential cluster runs).
type Observer struct {
	opts  Options
	hists map[Key]*Histogram

	ring    []Event
	head    int // next write position once the ring is full
	full    bool
	dropped uint64

	phaseCount [numPhases]uint64
	flush      FlushStats

	series   map[string]*stats.Series
	counters map[string]uint64

	run       int
	runLabels []string
}

// New builds an Observer.
func New(o Options) *Observer {
	if o.TraceCap <= 0 {
		o.TraceCap = 1 << 18
	}
	return &Observer{
		opts:     o,
		hists:    make(map[Key]*Histogram),
		series:   make(map[string]*stats.Series),
		counters: make(map[string]uint64),
	}
}

// HistOn reports whether latency histograms are enabled. Nil-safe.
func (o *Observer) HistOn() bool { return o != nil && o.opts.Hist }

// TraceOn reports whether the event trace is enabled. Nil-safe.
func (o *Observer) TraceOn() bool { return o != nil && o.opts.Trace }

// SamplingOn reports whether resource sampling is enabled. Nil-safe.
func (o *Observer) SamplingOn() bool { return o != nil && o.opts.SampleEvery > 0 }

// SampleInterval returns the sampling period (0 when disabled). Nil-safe.
func (o *Observer) SampleInterval() time.Duration {
	if o == nil {
		return 0
	}
	return o.opts.SampleEvery
}

// BeginRun opens a new run scope (one cluster build); subsequent events
// carry its index as their trace process id. Returns the run index. Nil-safe.
func (o *Observer) BeginRun(label string) int {
	if o == nil {
		return 0
	}
	o.runLabels = append(o.runLabels, label)
	o.run = len(o.runLabels)
	return o.run
}

// RecordOp records one client-observed operation latency and, when tracing,
// an operation span. Nil-safe.
func (o *Observer) RecordOp(kind types.OpKind, proto string, out Outcome, op types.OpID, node int, start, dur time.Duration) {
	if o == nil {
		return
	}
	if o.opts.Hist {
		k := Key{Kind: kind, Protocol: proto, Outcome: out}
		h := o.hists[k]
		if h == nil {
			h = &Histogram{}
			o.hists[k] = h
		}
		h.Observe(dur)
	}
	if o.opts.Trace {
		o.push(Event{T: start, Dur: dur, Run: o.run, Node: node, Op: op,
			Phase: PhaseOp, Detail: kind.String() + "/" + out.String()})
	}
}

// Emit records one instant event. Nil-safe; no-op unless tracing.
func (o *Observer) Emit(t time.Duration, node int, op types.OpID, ph Phase, detail string) {
	if o == nil || !o.opts.Trace {
		return
	}
	o.push(Event{T: t, Run: o.run, Node: node, Op: op, Phase: ph, Detail: detail})
}

// Span records one duration event. Nil-safe; no-op unless tracing.
func (o *Observer) Span(start, dur time.Duration, node int, op types.OpID, ph Phase, detail string) {
	if o == nil || !o.opts.Trace {
		return
	}
	o.push(Event{T: start, Dur: dur, Run: o.run, Node: node, Op: op, Phase: ph, Detail: detail})
}

func (o *Observer) push(ev Event) {
	o.phaseCount[ev.Phase]++
	if len(o.ring) < o.opts.TraceCap {
		o.ring = append(o.ring, ev)
		return
	}
	// Ring full: overwrite the oldest.
	o.full = true
	o.dropped++
	o.ring[o.head] = ev
	o.head = (o.head + 1) % len(o.ring)
}

// Sample appends one point to the named resource series. Nil-safe.
func (o *Observer) Sample(name string, t time.Duration, v float64) {
	if o == nil {
		return
	}
	s := o.series[name]
	if s == nil {
		s = &stats.Series{Name: name}
		o.series[name] = s
	}
	s.Add(t, v)
}

// Inc adds delta to the named monotonic counter (cache hits, lease
// revocations, ...). Nil-safe.
func (o *Observer) Inc(name string, delta uint64) {
	if o == nil {
		return
	}
	o.counters[name] += delta
}

// Counter returns the named counter's value (0 if absent). Nil-safe.
func (o *Observer) Counter(name string) uint64 {
	if o == nil {
		return 0
	}
	return o.counters[name]
}

// CounterNames lists the recorded counters, sorted. Nil-safe.
func (o *Observer) CounterNames() []string {
	if o == nil {
		return nil
	}
	names := make([]string, 0, len(o.counters))
	for n := range o.counters {
		names = append(names, n)
	}
	sortStrings(names)
	return names
}

// Series returns the named sample series (nil if absent). Nil-safe.
func (o *Observer) Series(name string) *stats.Series {
	if o == nil {
		return nil
	}
	return o.series[name]
}

// SeriesNames lists the recorded series, sorted.
func (o *Observer) SeriesNames() []string {
	if o == nil {
		return nil
	}
	names := make([]string, 0, len(o.series))
	for n := range o.series {
		names = append(names, n)
	}
	sortStrings(names)
	return names
}

// Events returns the retained trace events in chronological (retention)
// order. Nil-safe.
func (o *Observer) Events() []Event {
	if o == nil {
		return nil
	}
	if !o.full {
		return o.ring
	}
	out := make([]Event, 0, len(o.ring))
	out = append(out, o.ring[o.head:]...)
	out = append(out, o.ring[:o.head]...)
	return out
}

// Dropped returns how many events the ring buffer evicted. Nil-safe.
func (o *Observer) Dropped() uint64 {
	if o == nil {
		return 0
	}
	return o.dropped
}

// PhaseCount returns how many events of one phase were emitted (including
// any later evicted from the ring). Nil-safe.
func (o *Observer) PhaseCount(ph Phase) uint64 {
	if o == nil || int(ph) >= int(numPhases) {
		return 0
	}
	return o.phaseCount[ph]
}

// Histogram returns the histogram for one key (nil if never observed).
func (o *Observer) Histogram(k Key) *Histogram {
	if o == nil {
		return nil
	}
	return o.hists[k]
}

// Keys returns the recorded histogram keys sorted by protocol, kind,
// outcome.
func (o *Observer) Keys() []Key {
	if o == nil {
		return nil
	}
	keys := make([]Key, 0, len(o.hists))
	for k := range o.hists {
		keys = append(keys, k)
	}
	sortKeys(keys)
	return keys
}

// HistTable renders every histogram as one aligned table with the paper's
// percentile presentation.
func (o *Observer) HistTable() *stats.Table {
	tbl := stats.NewTable("Per-operation latency (virtual time)",
		"protocol", "op", "outcome", "count", "mean", "p50", "p95", "p99", "max")
	for _, k := range o.Keys() {
		h := o.hists[k]
		tbl.Add(k.Protocol, k.Kind.String(), k.Outcome.String(), h.Count,
			h.Mean(), h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99), h.Max)
	}
	return tbl
}

// PhaseTable renders per-phase event counts.
func (o *Observer) PhaseTable() *stats.Table {
	tbl := stats.NewTable("Protocol-phase event counts", "phase", "events")
	if o == nil {
		return tbl
	}
	for ph := Phase(0); ph < numPhases; ph++ {
		if n := o.phaseCount[ph]; n > 0 {
			tbl.Add(ph.String(), n)
		}
	}
	return tbl
}

// small local sorts (avoiding a sort import elsewhere) ---------------------

func sortStrings(xs []string) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func sortKeys(ks []Key) {
	less := func(a, b Key) bool {
		if a.Protocol != b.Protocol {
			return a.Protocol < b.Protocol
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.Outcome < b.Outcome
	}
	for i := 1; i < len(ks); i++ {
		for j := i; j > 0 && less(ks[j], ks[j-1]); j-- {
			ks[j], ks[j-1] = ks[j-1], ks[j]
		}
	}
}

// Package stats provides the small numeric and formatting helpers the
// experiment harness uses: summary statistics, time series, and aligned
// text tables that mirror the paper's presentation.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Percentile returns the p-th percentile (0 <= p <= 100) using
// nearest-rank on a sorted copy.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	if p <= 0 {
		return cp[0]
	}
	if p >= 100 {
		return cp[len(cp)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(cp)))) - 1
	if rank < 0 {
		rank = 0
	}
	return cp[rank]
}

// Max returns the maximum (0 for empty input).
func Max(xs []float64) float64 {
	m := 0.0
	for i, x := range xs {
		if i == 0 || x > m {
			m = x
		}
	}
	return m
}

// Improvement returns how much faster b is than a, as the paper states it:
// (a-b)/a, e.g. 0.38 = "38% improvement".
func Improvement(a, b time.Duration) float64 {
	if a <= 0 {
		return 0
	}
	return float64(a-b) / float64(a)
}

// Ratio returns b/a - 1 (throughput gain).
func Ratio(a, b float64) float64 {
	if a == 0 {
		return 0
	}
	return b/a - 1
}

// Point is one sample of a time series.
type Point struct {
	T time.Duration
	V float64
}

// Series is an append-only time series.
type Series struct {
	Name   string
	Points []Point
}

// Add appends a sample.
func (s *Series) Add(t time.Duration, v float64) {
	s.Points = append(s.Points, Point{T: t, V: v})
}

// Peak returns the maximum sample value.
func (s *Series) Peak() float64 {
	m := 0.0
	for _, p := range s.Points {
		if p.V > m {
			m = p.V
		}
	}
	return m
}

// Drops counts downward transitions larger than frac of the peak —
// the harness uses it to verify Figure 7b's periodic pruning drops.
func (s *Series) Drops(frac float64) int {
	peak := s.Peak()
	if peak == 0 {
		return 0
	}
	n := 0
	for i := 1; i < len(s.Points); i++ {
		if s.Points[i-1].V-s.Points[i].V > frac*peak {
			n++
		}
	}
	return n
}

// Table renders aligned rows, paper-style.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// NewTable creates a table with a title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// Add appends one row; values are stringified with %v.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case time.Duration:
			row[i] = v.Round(time.Millisecond).String()
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	total := len(t.Header)*2 - 2
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

// Pct formats a fraction as a percentage string.
func Pct(f float64) string { return fmt.Sprintf("%.2f%%", f*100) }

// KB formats bytes as kilobytes.
func KB(b int64) string { return fmt.Sprintf("%.0fKB", float64(b)/1024) }

package cluster

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"cxfs/internal/simrt"
	"cxfs/internal/types"
	"cxfs/internal/wire"
)

// classify renders one tapped message as "TYPE role->role" with roles
// resolved against the scenario's cast (client, coordinator, participant).
func classify(m wire.Msg, client, coord, part types.NodeID) string {
	who := func(n types.NodeID) string {
		switch n {
		case client:
			return "cli"
		case coord:
			return "coor"
		case part:
			return "part"
		}
		return "other"
	}
	return fmt.Sprintf("%v %s->%s", m.Type, who(m.From), who(m.To))
}

// runSequence executes one cross-server create under proto with the tap
// armed and returns the classified message sequence (messages among the
// scenario's cast only).
func runSequence(t *testing.T, proto Protocol, quiesce bool) []string {
	t.Helper()
	o := DefaultOptions(4, proto)
	o.ClientHosts = 1
	o.ProcsPerHost = 1
	o.Cx.Timeout = 100 * time.Millisecond
	c := MustNew(o)
	defer c.Shutdown()

	var seq []string
	var client, coord, part types.NodeID
	done := false
	c.Sim.Spawn("t", func(p *simrt.Proc) {
		pr := c.Proc(0)
		client = pr.ID.Client
		// Pick a guaranteed cross-server create.
		var name string
		var ino types.InodeID
		for try := 0; ; try++ {
			name = fmt.Sprintf("seq-%d", try)
			ino = pr.AllocInode()
			coord = c.Placement.CoordinatorFor(types.RootInode, name)
			part = c.Placement.ParticipantFor(ino)
			if coord != part {
				break
			}
		}
		c.Net.SetTap(func(m wire.Msg) {
			if m.Type == wire.MsgPing || m.Type == wire.MsgPong {
				return
			}
			s := classify(m, client, coord, part)
			if !strings.Contains(s, "other") {
				seq = append(seq, s)
			}
		})
		if _, err := pr.Do(p, types.Op{ID: pr.NextID(), Kind: types.OpCreate,
			Parent: types.RootInode, Name: name, Ino: ino, Type: types.FileRegular}); err != nil {
			t.Errorf("%v create: %v", proto, err)
		}
		if quiesce {
			c.Quiesce(p)
		}
		c.Net.SetTap(nil)
		done = true
		c.Sim.Stop()
	})
	c.Sim.RunUntil(time.Hour)
	if !done {
		t.Fatalf("%v sequence scenario hung", proto)
	}
	return seq
}

func TestFig1bSerialExecutionSequence(t *testing.T) {
	// Figure 1(b): the client instructs the participant first, then the
	// coordinator; two request/response pairs, no server-server traffic.
	seq := runSequence(t, ProtoSE, false)
	want := []string{
		"SUBOP-REQ cli->part",
		"YES/NO part->cli",
		"SUBOP-REQ cli->coor",
		"YES/NO coor->cli",
	}
	assertSeq(t, seq, want)
}

func TestFig1a2PCSequence(t *testing.T) {
	// Figure 1(a): REQ, VOTE, vote reply, COMMIT-REQ, ACK, RESP — the
	// client answer comes only after the full two-phase round.
	seq := runSequence(t, Proto2PC, false)
	want := []string{
		"REQ cli->coor",
		"VOTE coor->part",
		"VOTE-RESP part->coor",
		"COMMIT/ABORT-REQ coor->part",
		"ACK part->coor",
		"RESP coor->cli",
	}
	assertSeq(t, seq, want)
}

func TestFig1cCentralExecutionSequence(t *testing.T) {
	// Figure 1(c): REQ, object migration in, local execution, migration
	// back, RESP.
	seq := runSequence(t, ProtoCE, false)
	want := []string{
		"REQ cli->coor",
		"MIGRATE-REQ coor->part",
		"MIGRATE-RESP part->coor",
		"MIGRATE-BACK coor->part",
		"MIGRATE-ACK part->coor",
		"RESP coor->cli",
	}
	assertSeq(t, seq, want)
}

func TestFig2aCxGraciousSequence(t *testing.T) {
	// Figure 2(a): both sub-ops assigned concurrently, both YES answers
	// complete the client, and the commitment round (VOTE, vote reply,
	// COMMIT-REQ, ACK) runs lazily afterwards with no client messages.
	seq := runSequence(t, ProtoCx, true)
	if len(seq) < 8 {
		t.Fatalf("sequence too short: %v", seq)
	}
	execution, commitment := seq[:4], seq[4:]
	wantExec := map[string]bool{
		"SUBOP-REQ cli->coor": true,
		"SUBOP-REQ cli->part": true,
		"YES/NO coor->cli":    true,
		"YES/NO part->cli":    true,
	}
	for _, s := range execution {
		if !wantExec[s] {
			t.Errorf("unexpected execution-phase message %q in %v", s, seq)
		}
		delete(wantExec, s)
	}
	if len(wantExec) != 0 {
		t.Errorf("missing execution messages: %v (seq %v)", wantExec, seq)
	}
	// Requests must precede their responses, but the two assignments are
	// concurrent: both requests before both responses.
	if !(strings.HasPrefix(execution[0], "SUBOP-REQ") && strings.HasPrefix(execution[1], "SUBOP-REQ")) {
		t.Errorf("sub-ops not assigned concurrently: %v", execution)
	}
	wantCommit := []string{
		"VOTE coor->part",
		"VOTE-RESP part->coor",
		"COMMIT/ABORT-REQ coor->part",
		"ACK part->coor",
	}
	assertSeq(t, commitment, wantCommit)
	for _, s := range commitment {
		if strings.Contains(s, "cli") {
			t.Errorf("lazy commitment touched the client: %q", s)
		}
	}
}

func TestFig2bCxDisagreementSequence(t *testing.T) {
	// Figure 2(b): a disagreement triggers L-COM from the process and an
	// immediate commitment ending in ALL-NO back to the process.
	o := DefaultOptions(4, ProtoCx)
	o.ClientHosts = 1
	o.ProcsPerHost = 1
	o.Cx.Timeout = time.Hour
	c := MustNew(o)
	defer c.Shutdown()
	var seq []string
	done := false
	c.Sim.Spawn("t", func(p *simrt.Proc) {
		pr := c.Proc(0)
		client := pr.ID.Client
		var name string
		var ino types.InodeID
		var coord, part types.NodeID
		for try := 0; ; try++ {
			name = fmt.Sprintf("dis-%d", try)
			ino = pr.AllocInode()
			coord = c.Placement.CoordinatorFor(types.RootInode, name)
			part = c.Placement.ParticipantFor(ino)
			if coord != part {
				c.Bases[coord].Shard.SeedDentry(types.RootInode, name, 99999)
				break
			}
		}
		c.Net.SetTap(func(m wire.Msg) {
			if m.Type == wire.MsgPing || m.Type == wire.MsgPong {
				return
			}
			seq = append(seq, classify(m, client, coord, part))
		})
		pr.Do(p, types.Op{ID: pr.NextID(), Kind: types.OpCreate,
			Parent: types.RootInode, Name: name, Ino: ino, Type: types.FileRegular})
		c.Net.SetTap(nil)
		done = true
		c.Sim.Stop()
	})
	c.Sim.RunUntil(time.Hour)
	if !done {
		t.Fatal("hung")
	}
	joined := strings.Join(seq, " | ")
	for _, must := range []string{"L-COM cli->coor", "VOTE coor->part", "COMMIT/ABORT-REQ coor->part", "ALL-NO coor->cli"} {
		if !strings.Contains(joined, must) {
			t.Errorf("missing %q in disagreement sequence: %v", must, seq)
		}
	}
	if !strings.HasSuffix(seq[len(seq)-1], "ALL-NO coor->cli") {
		t.Errorf("ALL-NO is not the final message: %v", seq)
	}
}

func assertSeq(t *testing.T, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("sequence length %d, want %d:\n got: %v\nwant: %v", len(got), len(want), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("step %d = %q, want %q (full: %v)", i, got[i], want[i], got)
		}
	}
}

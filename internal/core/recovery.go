package core

import (
	"sort"
	"time"

	"cxfs/internal/simrt"
	"cxfs/internal/types"
	"cxfs/internal/wal"
	"cxfs/internal/wire"
)

// Recover implements the paper's §V recovery protocol on a rebooted server:
// read the log, and resume every half-completed commitment it records. The
// Result-Record tells the server its role for each operation:
//
//   - Complete-Record present (coordinator): the operation finished; prune.
//   - Commit/Abort-Record but no Complete (coordinator): the decision is
//     durable — redo/undo locally from row images, re-send the decision to
//     the participant until acknowledged, write the Complete-Record, prune.
//   - Commit/Abort-Record (participant): the operation is finished here;
//     redo/undo from images and prune.
//   - Result-Record only (coordinator): redo the execution from images,
//     rebuild the pending entry, and run an immediate commitment.
//   - Result-Record only (participant): redo from images, rebuild the
//     pending entry, and nudge the coordinator with C-NOTIFY; its
//     commitment (fresh or resumed) finishes the operation.
//
// A Result-Record followed by an Invalidate-Record with no newer Result
// means the execution was rolled back before the crash: the operation is
// treated as never executed here.
//
// After log-driven redo, a local fsck recomputes directory entry counts
// (the commutative parent counter is not image-protected), and the restored
// rows are flushed. Recover returns the virtual time the whole procedure
// took — the quantity Table V reports.
//
// The paper freezes the file system during recovery; the Table V harness
// quiesces the workload before crashing, so no new requests interleave.
func (s *Server) Recover(p *simrt.Proc) time.Duration {
	start := s.Sim.Now()
	boot := s.Boot()
	s.recovering = true
	defer func() { s.recovering = false }()

	// Discard volatile protocol state from before the crash: the rebuilt
	// truth comes from the log. Blocked requests and signal waiters from
	// the previous incarnation are dead (their clients must reissue).
	s.pendingCoord = make(map[types.OpID]*coordOp)
	s.pendingPart = make(map[types.OpID]*partOp)
	s.active = make(map[types.ObjKey]types.OpID)
	s.waiters = make(map[types.OpID][]*blockedReq)
	s.blockedOf = make(map[types.OpID]*blockedReq)
	s.arrivalSig = make(map[types.OpID][]*simrt.Chan[struct{}])
	s.flushQ = nil
	s.wantCommit = make(map[types.OpID]wantEntry)
	s.localInflight = make(map[types.OpID]bool)
	// Leases granted by the previous incarnation are dead: the rebuilt
	// table starts empty, and this incarnation's grants carry a higher
	// lease epoch, so clients fence out anything stamped before the crash.
	s.leases.Reset()

	// Fixed phase: confirm the crash and freeze the file system (§V: "it
	// informs all other collaborating servers to go into the recovery
	// state, [...] the whole file system stops responding new requests").
	if s.cfg.RecoveryFreeze > 0 {
		p.Sleep(s.cfg.RecoveryFreeze)
	}

	recs := s.WAL.RecoverScan(p)

	type result struct {
		role    types.Role
		ok      bool
		sub     types.SubOp
		before  []types.RowImage
		after   []types.RowImage
		valid   bool // not invalidated by a later Invalidate-Record
		peer    types.NodeID
		hasPeer bool
	}
	type opState struct {
		id        types.OpID
		results   []result
		decided   bool
		committed bool
		completed bool
	}
	states := make(map[types.OpID]*opState)
	var order []types.OpID
	get := func(id types.OpID) *opState {
		st := states[id]
		if st == nil {
			st = &opState{id: id}
			states[id] = st
			order = append(order, id)
		}
		return st
	}
	for _, r := range recs {
		st := get(r.Op)
		switch r.Type {
		case wal.RecResult:
			st.results = append(st.results, result{
				role: r.Role, ok: r.OK, sub: r.Sub,
				before: r.Before, after: r.After, valid: true,
				peer: r.Peer, hasPeer: r.HasPeer,
			})
		case wal.RecInvalidate:
			// Invalidation voids the most recent result of that role.
			for i := len(st.results) - 1; i >= 0; i-- {
				if st.results[i].role == r.Role && st.results[i].valid {
					st.results[i].valid = false
					break
				}
			}
		case wal.RecCommit:
			st.decided, st.committed = true, true
		case wal.RecAbort:
			st.decided = true
		case wal.RecComplete:
			st.completed = true
		}
	}
	sort.Slice(order, func(i, j int) bool { return opLess(order[i], order[j]) })

	type resumeDecided struct {
		id          types.OpID
		committed   bool
		participant types.NodeID
	}
	var resume []resumeDecided
	var undecidedCoord, undecidedPart []types.OpID

	for _, id := range order {
		st := states[id]
		if st.completed {
			// The records are still in the log, which means the operation's
			// database write-back had not drained when the server died (the
			// flush queue is volatile; prune follows flush). Redo from the
			// images before pruning, or the committed rows are lost.
			for _, r := range st.results {
				if !r.valid || !r.ok {
					continue
				}
				if st.committed {
					s.Shard.InstallImages(r.after)
				} else {
					s.Shard.InstallImages(r.before)
				}
			}
			// Retried requests for this op must see its sealed outcome, not
			// a fresh execution.
			s.cacheReply(id, finalReply(id, wire.Msg{}, st.committed, id.Proc.Client))
			s.WAL.Prune(id)
			continue
		}
		roles := make(map[types.Role]bool)
		for _, r := range st.results {
			roles[r.role] = true
		}
		local := roles[types.RoleCoordinator] && roles[types.RoleParticipant]

		if st.decided {
			// Redo (commit) or undo (abort) from images; idempotent.
			for _, r := range st.results {
				if !r.valid || !r.ok {
					continue
				}
				if st.committed {
					s.Shard.InstallImages(r.after)
				} else {
					s.Shard.InstallImages(r.before)
				}
			}
			s.cacheReply(id, finalReply(id, wire.Msg{}, st.committed, id.Proc.Client))
			switch {
			case local:
				s.WAL.Prune(id) // single-server transaction: decision is final
			case roles[types.RoleCoordinator]:
				var csub types.SubOp
				part := types.NodeID(-1)
				for _, r := range st.results {
					if r.role == types.RoleCoordinator {
						csub = r.sub
						if r.hasPeer {
							part = r.peer
						}
					}
				}
				if part < 0 {
					part = s.pl.ParticipantFor(csub.Ino)
				}
				resume = append(resume, resumeDecided{id: id, committed: st.committed, participant: part})
			default:
				s.WAL.Prune(id) // participant with durable decision: finished
			}
			continue
		}

		// Undecided: rebuild pending state from the last valid result.
		var last *result
		for i := len(st.results) - 1; i >= 0; i-- {
			if st.results[i].valid {
				last = &st.results[i]
				break
			}
		}
		if last == nil {
			// Executed then invalidated, never re-executed: nothing pending
			// here; the re-queued request died with the crash and the
			// client will see the operation aborted by the coordinator's
			// vote timeout. Poison locally.
			s.tombstone(id)
			s.WAL.Prune(id)
			continue
		}
		if last.ok {
			s.Shard.InstallImages(last.after) // redo the provisional execution
		}
		client := id.Proc.Client
		switch last.role {
		case types.RoleCoordinator:
			part := s.pl.ParticipantFor(last.sub.Ino)
			if last.hasPeer {
				part = last.peer
			}
			req := wire.Msg{Type: wire.MsgSubOpReq, From: client, To: s.ID, Op: id,
				Sub: last.sub, Peer: part, ReplyProc: id.Proc}
			co := &coordOp{id: id, sub: last.sub, ok: last.ok,
				beforeImgs: last.before, rows: imageKeys(last.after),
				participant: part, client: client, epoch: 1, reqMsg: req}
			s.pendingCoord[id] = co
			if last.ok {
				s.hold(last.sub)
			}
			undecidedCoord = append(undecidedCoord, id)
		case types.RoleParticipant:
			coordID := s.pl.CoordinatorFor(last.sub.Parent, last.sub.Name)
			if last.hasPeer {
				coordID = last.peer
			}
			req := wire.Msg{Type: wire.MsgSubOpReq, From: client, To: s.ID, Op: id,
				Sub: last.sub, Peer: coordID, ReplyProc: id.Proc}
			po := &partOp{id: id, sub: last.sub, ok: last.ok,
				beforeImgs: last.before, rows: imageKeys(last.after),
				coordinator: coordID, client: client, epoch: 1, reqMsg: req,
				since: s.Sim.Now()}
			s.pendingPart[id] = po
			if last.ok {
				s.hold(last.sub)
			}
			undecidedPart = append(undecidedPart, id)
		}
	}

	// Rebuild complete: the server may answer the recovery dialogue
	// (votes, decisions) again; client traffic stays gated until the end.
	s.RecoveryDone()

	// Local consistency pass: directory entry counts are commutative and
	// not image-protected; recompute them from the rows actually present.
	s.Shard.Fsck()
	// Persist everything redo installed.
	s.KV.FlushDirty(p)

	// Resume decided coordinator operations: re-send the decision until the
	// participant acknowledges, then complete.
	for _, r := range resume {
		decisions := []wire.Decision{{Op: r.id, Commit: r.committed}}
		s.rpcAck(p, boot, r.participant, []types.OpID{r.id}, decisions)
		s.WAL.AppendBatchPriority(p, []wal.Record{{Type: wal.RecComplete, Op: r.id, Role: types.RoleCoordinator}})
		s.WAL.Prune(r.id)
		if r.committed {
			s.stats.OpsCommitted++
		} else {
			s.stats.OpsAborted++
			s.tombstone(r.id)
		}
	}

	// Undecided coordinator operations: run an immediate commitment batch.
	if len(undecidedCoord) > 0 {
		s.stats.ImmediateCommits++
		s.kick.Send(kickReq{ops: undecidedCoord})
	}
	// Undecided participant operations: nudge their coordinators.
	for _, id := range undecidedPart {
		if po := s.pendingPart[id]; po != nil {
			s.Send(wire.Msg{Type: wire.MsgConflictNotify, To: po.coordinator, Op: id})
		}
	}
	// Wait until every undecided operation's fate is sealed here. The commit
	// daemon runs concurrently and may finish a rebuilt operation while this
	// proc is still in the resume loop above — before a one-shot completion
	// signal could be registered — so poll the pending tables and use the
	// signal only as a wakeup, re-nudging a participant op whose C-NOTIFY
	// (or its answer) was lost to link faults.
	for _, id := range append(append([]types.OpID{}, undecidedCoord...), undecidedPart...) {
		for s.pendingCoord[id] != nil || s.pendingPart[id] != nil {
			ch := s.waitChan(s.completeSig, id)
			if _, ok := ch.RecvTimeout(p, s.lazyPeriod()); !ok {
				if po := s.pendingPart[id]; po != nil && !po.committing {
					s.Send(wire.Msg{Type: wire.MsgConflictNotify, To: po.coordinator, Op: id})
				}
			}
		}
	}
	// Flush whatever the resumed commitments dirtied.
	s.KV.FlushDirty(p)

	return s.Sim.Now() - start
}

// opLess is a deterministic total order on OpIDs for recovery iteration.
func opLess(a, b types.OpID) bool {
	if a.Proc.Client != b.Proc.Client {
		return a.Proc.Client < b.Proc.Client
	}
	if a.Proc.Index != b.Proc.Index {
		return a.Proc.Index < b.Proc.Index
	}
	return a.Seq < b.Seq
}

// imageKeys extracts the row keys of an image set.
func imageKeys(imgs []types.RowImage) []string {
	out := make([]string, 0, len(imgs))
	for _, img := range imgs {
		if img.Key != "" {
			out = append(out, img.Key)
		}
	}
	return out
}

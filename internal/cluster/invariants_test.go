package cluster

import (
	"fmt"
	"testing"

	"cxfs/internal/types"
)

// TestCheckInvariantsParsesSpaceContainingNames is the regression test for
// the dentry-row parser: the old fmt.Sscanf("d/%d/%s") parse stopped at the
// first space, so a name like "w1 f23" (the chaos workload's format) was
// truncated and violations on such entries were reported with the wrong
// name — or masked entirely. The oracle must see the full name.
func TestCheckInvariantsParsesSpaceContainingNames(t *testing.T) {
	c := MustNew(smallOptions(ProtoCx))
	defer c.Shutdown()

	// A consistent entry whose name contains spaces must not be flagged.
	const good = "name with spaces"
	ino := types.InodeID(12345)
	c.Bases[c.Placement.CoordinatorFor(types.RootInode, good)].Shard.SeedDentry(types.RootInode, good, ino)
	c.Bases[c.Placement.ParticipantFor(ino)].Shard.SeedInode(types.Inode{Ino: ino, Type: types.FileRegular, Nlink: 1})
	if bad := c.CheckInvariants(); len(bad) != 0 {
		t.Fatalf("consistent space-named entry flagged: %v", bad)
	}

	// A dangling entry with spaces in its name must be reported, and the
	// report must carry the full name, not a whitespace-truncated prefix.
	const dangling = "w1 f23"
	missing := types.InodeID(54321)
	c.Bases[c.Placement.CoordinatorFor(types.RootInode, dangling)].Shard.SeedDentry(types.RootInode, dangling, missing)
	bad := c.CheckInvariants()
	want := fmt.Sprintf("dentry (%d,%q) -> missing inode %d", types.RootInode, dangling, missing)
	if len(bad) != 1 || bad[0] != want {
		t.Errorf("violations = %q, want exactly [%q]", bad, want)
	}
}

package cluster

import (
	"testing"
	"time"

	"cxfs/internal/simrt"
	"cxfs/internal/types"
)

func TestDetectorSuspectsCrashedServerWithinBound(t *testing.T) {
	c := MustNew(smallOptions(ProtoCx))
	defer c.Shutdown()
	d := NewFailureDetector(c, 50*time.Millisecond, 150*time.Millisecond)
	var suspectedAt time.Duration
	var who types.NodeID = -1
	d.OnSuspect = func(srv types.NodeID, at time.Duration) {
		who, suspectedAt = srv, at
	}
	var crashAt time.Duration
	c.Sim.Spawn("t", func(p *simrt.Proc) {
		p.Sleep(300 * time.Millisecond) // steady state first
		crashAt = p.Now()
		c.Bases[2].Crash()
		p.Sleep(500 * time.Millisecond)
		c.Sim.Stop()
	})
	c.Sim.RunUntil(time.Hour)
	if who != 2 {
		t.Fatalf("suspected %v, want server 2", who)
	}
	latency := suspectedAt - crashAt
	if latency < d.Timeout || latency > d.Timeout+2*d.Interval {
		t.Errorf("detection latency %v outside [%v, %v]", latency, d.Timeout, d.Timeout+2*d.Interval)
	}
}

func TestDetectorClearsAfterReboot(t *testing.T) {
	c := MustNew(smallOptions(ProtoCx))
	defer c.Shutdown()
	d := NewFailureDetector(c, 40*time.Millisecond, 120*time.Millisecond)
	var recoveredAt time.Duration
	d.OnRecover = func(srv types.NodeID, at time.Duration) { recoveredAt = at }
	c.Sim.Spawn("t", func(p *simrt.Proc) {
		p.Sleep(200 * time.Millisecond)
		c.Bases[1].Crash()
		p.Sleep(400 * time.Millisecond)
		if !d.Suspected(1) {
			t.Error("server 1 not suspected while down")
		}
		c.Bases[1].Reboot()
		c.CxSrv[1].Recover(p)
		p.Sleep(300 * time.Millisecond)
		if d.Suspected(1) {
			t.Error("suspicion not cleared after reboot")
		}
		c.Sim.Stop()
	})
	c.Sim.RunUntil(time.Hour)
	if recoveredAt == 0 {
		t.Error("OnRecover never fired")
	}
}

func TestDetectorQuietOnHealthyCluster(t *testing.T) {
	c := MustNew(smallOptions(ProtoCx))
	defer c.Shutdown()
	d := NewFailureDetector(c, 30*time.Millisecond, 90*time.Millisecond)
	d.OnSuspect = func(srv types.NodeID, at time.Duration) {
		t.Errorf("false suspicion of %v at %v", srv, at)
	}
	c.Sim.Spawn("t", func(p *simrt.Proc) {
		pr := c.Proc(0)
		for j := 0; j < 20; j++ {
			pr.Create(p, types.RootInode, "h"+string(rune('a'+j)))
			p.Sleep(30 * time.Millisecond)
		}
		c.Sim.Stop()
	})
	c.Sim.RunUntil(time.Hour)
}

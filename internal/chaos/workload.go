package chaos

import (
	"errors"
	"fmt"
	"math/rand"

	"cxfs/internal/simrt"
	"cxfs/internal/types"
)

// entry is one name in the per-worker oracle. Names are worker-private and
// never reused, so every operation's effect on its name is unambiguous:
// after a definite success or failure the expected state is known exactly,
// and after a timeout the name is frozen in stUnknown — the final
// verification then accepts exactly the two states the unfinished operation
// could legally have left behind.
type entry struct {
	name  string
	ino   types.InodeID
	dir   bool
	state uint8
}

const (
	stAbsent  uint8 = iota // definitely not in the namespace
	stExists               // definitely present, pointing at entry.ino
	stUnknown              // a timed-out operation's outcome is undecided
)

// worker returns the proc body of one workload process: a randomized
// create/remove/lookup mix over private names (some containing spaces, to
// exercise the invariant checker's name parsing), with every outcome folded
// into the oracle.
func (h *harness) worker(w int) func(*simrt.Proc) {
	return func(p *simrt.Proc) {
		defer h.group.Done()
		pr := h.c.Proc(w)
		rng := rand.New(rand.NewSource(h.cfg.Seed*1000003 + int64(w)))
		var live []*entry // entries currently in stExists

		for i := 0; i < h.cfg.OpsPerWorker; i++ {
			r := rng.Float64()
			switch {
			case r < 0.55 || len(live) == 0:
				// Create a fresh file or directory under root. The space in
				// the name is deliberate.
				e := &entry{name: fmt.Sprintf("w%d f%d", w, i), dir: rng.Float64() < 0.25}
				h.entries[w] = append(h.entries[w], e)
				var err error
				if e.dir {
					e.ino, err = pr.Mkdir(p, types.RootInode, e.name)
				} else {
					e.ino, err = pr.Create(p, types.RootInode, e.name)
				}
				h.rep.Ops++
				switch {
				case err == nil:
					e.state = stExists
					live = append(live, e)
					h.rep.OK++
				case errors.Is(err, types.ErrTimeout):
					e.state = stUnknown
					h.rep.Unknown++
				case errors.Is(err, types.ErrExists):
					// The name was never used before: nothing may already
					// hold it.
					h.violate("worker %d: create %q reported exists on a fresh name", w, e.name)
					e.state = stUnknown
					h.rep.Failed++
				default:
					// A definite abort must leave no residue.
					e.state = stAbsent
					h.rep.Failed++
				}
			case r < 0.85:
				// Remove an entry the oracle knows exists.
				k := rng.Intn(len(live))
				e := live[k]
				live = append(live[:k], live[k+1:]...)
				var err error
				if e.dir {
					err = pr.Rmdir(p, types.RootInode, e.name, e.ino)
				} else {
					err = pr.Remove(p, types.RootInode, e.name, e.ino)
				}
				h.rep.Ops++
				switch {
				case err == nil:
					e.state = stAbsent
					h.rep.OK++
				case errors.Is(err, types.ErrTimeout):
					e.state = stUnknown
					h.rep.Unknown++
				case errors.Is(err, types.ErrNotFound):
					// The previous operation on this name definitely
					// succeeded, so the entry must be there.
					h.violate("worker %d: remove %q reported not-found on a committed entry", w, e.name)
					e.state = stUnknown
					h.rep.Failed++
				default:
					// Aborted: the entry survives.
					live = append(live, e)
					h.rep.Failed++
				}
			default:
				// Live read-your-writes check on a name with a known state.
				var known []*entry
				for _, e := range h.entries[w] {
					if e.state != stUnknown {
						known = append(known, e)
					}
				}
				if len(known) == 0 {
					continue
				}
				e := known[rng.Intn(len(known))]
				in, err := pr.Lookup(p, types.RootInode, e.name)
				h.rep.Ops++
				switch {
				case errors.Is(err, types.ErrTimeout):
					// No information; the name's oracle state is untouched.
					h.rep.Unknown++
				case err == nil:
					h.rep.OK++
					if e.state == stAbsent {
						h.violate("worker %d: lookup %q found a removed entry (ino %d)", w, e.name, in.Ino)
					} else if in.Ino != e.ino {
						h.violate("worker %d: lookup %q -> ino %d, want %d", w, e.name, in.Ino, e.ino)
					}
				case errors.Is(err, types.ErrNotFound):
					h.rep.OK++
					if e.state == stExists {
						h.violate("worker %d: lookup %q lost a committed entry", w, e.name)
					}
				default:
					h.rep.Failed++
				}
			}
		}
	}
}

// verify runs after heal+recover+quiesce: every oracle name is resolved on
// the settled namespace and compared against its expected state, then the
// cluster-wide invariants are checked.
func (h *harness) verify(p *simrt.Proc) {
	for w := range h.entries {
		pr := h.c.Proc(w)
		for _, e := range h.entries[w] {
			in, err := pr.Lookup(p, types.RootInode, e.name)
			found := err == nil
			switch {
			case err != nil && !errors.Is(err, types.ErrNotFound):
				h.violate("verify: lookup %q failed on the healed cluster: %v", e.name, err)
			case e.state == stExists && !found:
				h.violate("verify: committed entry %q is gone", e.name)
			case e.state == stExists && in.Ino != e.ino:
				h.violate("verify: entry %q -> ino %d, want %d", e.name, in.Ino, e.ino)
			case e.state == stAbsent && found:
				h.violate("verify: aborted/removed entry %q left residue (ino %d)", e.name, in.Ino)
			case e.state == stUnknown && found && in.Ino != e.ino:
				h.violate("verify: unknown-outcome entry %q -> foreign ino %d", e.name, in.Ino)
			}
		}
	}
	h.rep.Violations = append(h.rep.Violations, h.c.CheckInvariants()...)
}

package harness

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestReplayBenchSmoke runs the trajectory bench at a tiny scale and checks
// the artifact is complete: every seed measured, means computed, and the
// JSON round-trips (the committed BENCH_*.json files and benchdiff both
// depend on the field set).
func TestReplayBenchSmoke(t *testing.T) {
	cfg := Config{Scale: 0.002, Servers: 4, Seed: 1}
	res := ReplayBench(cfg, "s3d", []int64{1, 2})
	if len(res.Seeds) != 2 {
		t.Fatalf("got %d seed rows, want 2", len(res.Seeds))
	}
	for _, s := range res.Seeds {
		if s.Ops <= 0 || s.OpsPerSec <= 0 || s.AllocsPerOp <= 0 || s.WallMS <= 0 {
			t.Errorf("seed %d row has non-positive metrics: %+v", s.Seed, s)
		}
		if s.VirtualTime <= 0 || s.Messages == 0 {
			t.Errorf("seed %d missing simulation results: %+v", s.Seed, s)
		}
	}
	if res.MeanOpsPerSec <= 0 || res.MeanAllocsPerOp <= 0 {
		t.Errorf("means not computed: %+v", res)
	}
	if res.Workload != "s3d" || res.Protocol != "cx" {
		t.Errorf("artifact header wrong: %+v", res)
	}

	raw, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var back BenchResult
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.MeanAllocsPerOp != res.MeanAllocsPerOp || len(back.Seeds) != 2 {
		t.Errorf("JSON round-trip lost data: %+v", back)
	}
	if tbl := res.Table().String(); !strings.Contains(tbl, "mean") {
		t.Errorf("table missing mean row:\n%s", tbl)
	}
}

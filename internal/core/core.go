// Package core implements Cx, the paper's primary contribution: concurrent
// execution of cross-server operation sub-ops with lazy, batched
// commitment.
//
// # Protocol summary (§III)
//
// A client process sends the two sub-operations of a cross-server operation
// to the coordinator and participant *concurrently*. Each server executes
// provisionally, synchronously appends a Result-Record, and answers YES/NO
// immediately. If both answers agree the process considers the operation
// complete; the commitment — VOTE, COMMIT-REQ/ABORT-REQ, ACK, then a
// Complete-Record — is deferred and batched with other pending commitments,
// launched by a timeout or threshold trigger (§IV.A) or when the log fills.
// If the answers disagree, the process sends L-COM and the coordinator runs
// an immediate commitment that aborts the successful side and replies
// ALL-NO.
//
// Objects touched by an executed-but-uncommitted operation are *active*.
// A sub-op from a different process touching an active object raises a
// conflict: it blocks, and the pending operation is committed immediately
// (the coordinator is notified with C-NOTIFY when the participant detects
// the conflict). Ordered conflicts simply wait. Disordered conflicts —
// where the participant executed the later arrival first — are resolved by
// enforcing the coordinator's order: the VOTE carries the coordinator's
// blocked-follower set (Enforce), and the participant *invalidates* any
// executed operation in that set (undo + Invalidate-Record + re-queue with
// a bumped execution epoch), then executes the voted operation.
//
// # Departures from the paper's text (documented in DESIGN.md)
//
//   - Conflict hints are carried exactly as described, but operation
//     completion is driven by explicit invalidation notices plus execution
//     epochs rather than hint equality alone: hint equality as the sole
//     rule deadlocks when two operations conflict on only one of their two
//     servers (the paper's figures only cover the both-server overlap).
//   - A participant voting on an operation it has not yet executed (the
//     sub-op is in flight or blocked) resolves the vote by waiting for
//     arrival, waiting for the blocking operation's commitment, or applying
//     the Enforce rule; a bounded wait (Config.VoteWait) backstops the rare
//     wait-cycle, aborting an operation whose client cannot yet have
//     considered it complete.
//   - Aborted operations leave a bounded tombstone set so a late-arriving
//     or re-queued sub-op of an aborted operation cannot execute after the
//     fact.
package core

import (
	"fmt"
	"sort"
	"time"

	"cxfs/internal/namespace"
	"cxfs/internal/node"
	"cxfs/internal/obs"
	"cxfs/internal/simrt"
	"cxfs/internal/types"
	"cxfs/internal/wire"
)

// Config tunes the Cx server.
type Config struct {
	// Timeout is the lazy-commitment timeout trigger (paper default 10s);
	// 0 disables it.
	Timeout time.Duration
	// Threshold launches a batch when this many operations are pending;
	// 0 disables it.
	Threshold int
	// IdleTrigger launches a batch when the server has received no sub-op
	// requests for this long while work is pending — the alternative
	// trigger the paper's §IV.A leaves as future work ("such as system
	// idle time"). 0 disables it. Idle commitments cost nothing the
	// workload would notice: the disk and network are quiet by definition.
	IdleTrigger time.Duration
	// VoteWait bounds how long a participant vote waits for a sub-op to
	// arrive or a blocking commitment to finish before voting NO.
	VoteWait time.Duration
	// RetryInterval paces VOTE/COMMIT-REQ retransmission to a crashed or
	// slow peer.
	RetryInterval time.Duration
	// TombstoneCap bounds the aborted-operation tombstone set.
	TombstoneCap int
	// NoPiggyback disables carrying other same-participant pending
	// operations on an immediate commitment's round — an ablation knob for
	// benchmarks; production keeps it off (piggybacking on).
	NoPiggyback bool
	// AdaptiveLazy makes the commit daemon's lazy period track log
	// pressure: the wait shrinks toward an eager cadence as the log nears
	// its prune threshold (so pruning starts before appends stall on a full
	// log) and stretches when the server is idle with nothing pending (so a
	// quiet server burns no batches). Off by default; Timeout stays the
	// fixed period of the paper's §IV.A trigger.
	AdaptiveLazy bool
	// RecoveryFreeze models the fixed phase of §V recovery: the failure
	// detection subsystem confirms the crash, the rebooted node informs
	// every collaborating server to enter the recovery state, and the file
	// system stops responding to new requests. In the paper this fixed
	// cost dominates small backlogs (5KB of valid records still takes 3s),
	// which is what makes Table V sublinear.
	RecoveryFreeze time.Duration
	// LeaseTTL is the validity window stamped on read leases granted to
	// client lookup requests. 0 disables the leased read path: LookupReq is
	// still answered, but without a lease, so clients cannot cache.
	LeaseTTL time.Duration
	// Obs receives protocol-phase trace events and latency samples. Nil
	// (the default) disables all recording at the cost of one pointer
	// check per site — the hot path is unaffected.
	Obs *obs.Observer
}

// DefaultConfig mirrors the paper's experimental defaults.
func DefaultConfig() Config {
	return Config{
		Timeout:        10 * time.Second,
		Threshold:      0,
		VoteWait:       2 * time.Second,
		RetryInterval:  3 * time.Second,
		TombstoneCap:   8192,
		RecoveryFreeze: 500 * time.Millisecond,
	}
}

// Stats counts protocol events for the harness.
type Stats struct {
	Conflicts         uint64 // sub-ops blocked on an active object
	ImmediateCommits  uint64 // commitment batches launched by conflict/L-COM/log-full
	LazyBatches       uint64 // commitment batches launched by a trigger
	OpsCommitted      uint64
	OpsAborted        uint64
	Invalidations     uint64
	VoteTimeouts      uint64
	LateInvalidations uint64 // invalidation notices for ops a client completed (must stay 0)
	Renames           uint64 // committed rename transactions (extension)
	AdaptiveShrinks   uint64 // lazy periods shortened by log pressure
	AdaptiveStretches uint64 // lazy periods stretched by idleness
	Lookups           uint64 // LookupReq served (leased read path)
	LeasesGranted     uint64 // read leases stamped on lookup replies
	LeaseRevocations  uint64 // revocation notices sent to lease holders
}

// coordOp is a pending cross-server operation on its coordinator.
type coordOp struct {
	id          types.OpID
	sub         types.SubOp
	ok          bool
	undo        *namespace.Undo
	beforeImgs  []types.RowImage // recovery-rebuilt ops roll back via images
	rows        []string
	participant types.NodeID
	client      types.NodeID
	epoch       uint32
	committing  bool
	lcom        bool     // client asked for ALL-NO
	reqMsg      wire.Msg // original request, for re-queue after invalidation
	lastResp    wire.Msg // recorded response, for duplicate suppression
}

// partOp is a pending cross-server operation on its participant.
type partOp struct {
	id          types.OpID
	sub         types.SubOp
	ok          bool
	undo        *namespace.Undo
	beforeImgs  []types.RowImage
	rows        []string
	coordinator types.NodeID
	client      types.NodeID
	epoch       uint32
	committing  bool
	reqMsg      wire.Msg
	lastResp    wire.Msg
	since       time.Duration // execution time, for staleness nudges
}

// flushEntry is an operation whose outcome is durable in the log but whose
// database pages have not been written back yet. Entries drain at the next
// lazy batch: one merged flush, then the log records prune. Immediate
// commitments only queue here — per §IV.C.2, they cost messages and
// individual log writes, never an individual database flush.
type flushEntry struct {
	id   types.OpID
	rows []string
}

// blockedReq is a sub-op parked behind an active object.
type blockedReq struct {
	msg    wire.Msg
	holder types.OpID // pending op whose commitment it awaits
	epoch  uint32
	hint   types.OpID // set when released
}

// wantEntry is one remembered commitment request for a not-yet-seen op.
type wantEntry struct {
	lcom bool
	from types.NodeID // who asked (participant for C-NOTIFY, client for L-COM)
	at   time.Duration
}

// kickReq asks the commit daemon to run.
type kickReq struct {
	ops  []types.OpID // immediate targets; nil = lazy batch of everything
	lazy bool
}

// Server is one Cx metadata server.
type Server struct {
	*node.Base
	cfg Config
	pl  namespace.Placement

	pendingCoord map[types.OpID]*coordOp
	pendingPart  map[types.OpID]*partOp
	flushQ       []flushEntry

	active     map[types.ObjKey]types.OpID // executed-pending op holding each object
	waiters    map[types.OpID][]*blockedReq
	blockedOf  map[types.OpID]*blockedReq // cross-server sub-op blocked here, by its op
	tombstones map[types.OpID]bool

	arrivalSig  map[types.OpID][]*simrt.Chan[struct{}]
	completeSig map[types.OpID][]*simrt.Chan[struct{}]

	kick *simrt.Chan[kickReq]
	// voteResp/ackResp route batched VOTE and ACK replies back to the
	// rpcVotes/rpcAck round that sent the request, keyed by the batch's
	// first operation. Keying by participant instead would cross-wire two
	// concurrent rounds for the same participant — recovery's resume loop
	// runs while the commit daemon drives rebuilt operations — leaving one
	// round retrying forever against a deregistered channel.
	voteResp map[types.OpID]*simrt.Chan[wire.Msg]
	ackResp  map[types.OpID]*simrt.Chan[wire.Msg]

	// Per-operation reply routes for rename transactions (lazily built).
	renameVote map[types.OpID]*simrt.Chan[wire.Msg]
	renameAck  map[types.OpID]*simrt.Chan[wire.Msg]

	// wantCommit remembers commitment requests (C-NOTIFY/L-COM) for ops
	// whose coordinator sub-op has not executed here yet. If the sub-op
	// never materializes (it died with a coordinator crash), the entry
	// expires into a presumed abort — safe, because without a coordinator
	// execution the client cannot have completed the operation.
	wantCommit map[types.OpID]wantEntry

	recovering bool
	lastArrive time.Duration // most recent sub-op arrival, for the idle trigger

	// replyCache retains the final response of recently completed
	// operations so a duplicate (retried) sub-op request is answered
	// instead of re-executed — at-most-once execution for retrying
	// clients. Bounded FIFO.
	replyCache map[types.OpID]wire.Msg
	replyOrder []types.OpID
	// localInflight marks OpReq operations currently executing on the
	// local (colocated/rename) path, so a retried duplicate is dropped
	// instead of re-executed.
	localInflight map[types.OpID]bool

	// leases tracks which clients hold read leases on this server's
	// directory entries; mutations revoke through it (piggybacked on
	// C-NOTIFY). Wiped on recovery — a rebooted server's grants carry a
	// higher lease epoch, and clients fence out the old incarnation's.
	leases *LeaseTable

	stats Stats
}

// NewServer builds a Cx server on the given chassis.
func NewServer(base *node.Base, pl namespace.Placement, cfg Config) *Server {
	if cfg.VoteWait <= 0 {
		cfg.VoteWait = 2 * time.Second
	}
	if cfg.RetryInterval <= 0 {
		cfg.RetryInterval = 3 * time.Second
	}
	if cfg.TombstoneCap <= 0 {
		cfg.TombstoneCap = 8192
	}
	s := &Server{
		Base:          base,
		cfg:           cfg,
		pl:            pl,
		pendingCoord:  make(map[types.OpID]*coordOp),
		pendingPart:   make(map[types.OpID]*partOp),
		active:        make(map[types.ObjKey]types.OpID),
		waiters:       make(map[types.OpID][]*blockedReq),
		blockedOf:     make(map[types.OpID]*blockedReq),
		tombstones:    make(map[types.OpID]bool),
		arrivalSig:    make(map[types.OpID][]*simrt.Chan[struct{}]),
		completeSig:   make(map[types.OpID][]*simrt.Chan[struct{}]),
		kick:          simrt.NewChan[kickReq](base.Sim),
		voteResp:      make(map[types.OpID]*simrt.Chan[wire.Msg]),
		ackResp:       make(map[types.OpID]*simrt.Chan[wire.Msg]),
		wantCommit:    make(map[types.OpID]wantEntry),
		replyCache:    make(map[types.OpID]wire.Msg),
		localInflight: make(map[types.OpID]bool),
		leases:        NewLeaseTable(leaseTableCap),
	}
	return s
}

// Stats returns a snapshot of protocol counters.
func (s *Server) Stats() Stats { return s.stats }

// PendingOps returns how many cross-server operations await commitment here
// as coordinator (the paper's threshold-trigger quantity).
func (s *Server) PendingOps() int { return len(s.pendingCoord) }

// ValidBytes returns the log bytes held by operations still awaiting
// commitment — the paper's "valid-records size" (Figure 7b, Table V).
func (s *Server) ValidBytes() int64 { return s.WAL.LiveBytes() }

// ActiveObjects returns how many objects are currently active (held by
// executed-but-uncommitted operations); zero after quiescence.
func (s *Server) ActiveObjects() int { return len(s.active) }

// BlockedReqs counts sub-ops currently parked behind active objects
// (diagnostics).
func (s *Server) BlockedReqs() int {
	n := 0
	for _, ws := range s.waiters {
		n += len(ws)
	}
	return n
}

// DebugOp reports an op's state on this server (diagnostics).
func (s *Server) DebugOp(op types.OpID) string {
	if co := s.pendingCoord[op]; co != nil {
		return fmt.Sprintf("pendingCoord committing=%v participant=%v lcom=%v", co.committing, co.participant, co.lcom)
	}
	if po := s.pendingPart[op]; po != nil {
		return fmt.Sprintf("pendingPart committing=%v coordinator=%v", po.committing, po.coordinator)
	}
	if s.tombstones[op] {
		return "tombstoned"
	}
	if we, ok := s.wantCommit[op]; ok {
		return fmt.Sprintf("wantCommit lcom=%v from=%v at=%v", we.lcom, we.from, we.at)
	}
	return "absent"
}

// DebugPending lists every pending operation and its protocol state here
// (diagnostics).
func (s *Server) DebugPending() []string {
	var out []string
	for id, co := range s.pendingCoord {
		out = append(out, fmt.Sprintf("coord op=%v committing=%v lcom=%v participant=%v", id, co.committing, co.lcom, co.participant))
	}
	for id, po := range s.pendingPart {
		out = append(out, fmt.Sprintf("part op=%v committing=%v coordinator=%v since=%v", id, po.committing, po.coordinator, po.since))
	}
	sort.Strings(out)
	return out
}

// DebugBlocked describes each parked request and its holder's state
// (diagnostics).
func (s *Server) DebugBlocked() []string {
	var out []string
	for holder, ws := range s.waiters {
		for _, br := range ws {
			state := "unknown"
			if co := s.pendingCoord[holder]; co != nil {
				state = fmt.Sprintf("coord committing=%v", co.committing)
			} else if po := s.pendingPart[holder]; po != nil {
				state = fmt.Sprintf("part committing=%v coord=%v", po.committing, po.coordinator)
			} else if s.tombstones[holder] {
				state = "tombstoned"
			}
			out = append(out, fmt.Sprintf("blocked op=%v kind=%v behind holder=%v (%s)", br.msg.Sub.Op, br.msg.Sub.Kind, holder, state))
		}
	}
	return out
}

// nudgeStaleParts sends C-NOTIFY to the coordinator of every
// not-yet-committing participant execution matched by pred, in a
// deterministic operation order (map iteration order must not leak into
// the message sequence).
func (s *Server) nudgeStaleParts(pred func(*partOp) bool) {
	var ids []types.OpID
	for _, po := range s.pendingPart {
		if !po.committing && pred(po) {
			ids = append(ids, po.id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return opLess(ids[i], ids[j]) })
	for _, id := range ids {
		po := s.pendingPart[id]
		s.Send(wire.Msg{Type: wire.MsgConflictNotify, To: po.coordinator, Op: po.id})
	}
}

// KickCommit launches a lazy commitment batch immediately, as the harness's
// quiesce step and the log-full handler do.
func (s *Server) KickCommit() {
	s.kick.Send(kickReq{lazy: true})
}

// Start launches the inbox loop and the commitment trigger daemon.
func (s *Server) Start() {
	s.Base.Start(s.handle)
	s.WAL.SetFullHandler(func() {
		// The log is full: force commitments so pruning can free space —
		// both the operations this server coordinates and, via C-NOTIFY,
		// the participant-role backlog whose coordinators are idle.
		s.stats.ImmediateCommits++
		s.kick.Send(kickReq{lazy: true})
		s.nudgeStaleParts(func(po *partOp) bool { return true })
	})
	s.Sim.Spawn("cx/commitd", s.commitDaemon)
	if s.cfg.IdleTrigger > 0 {
		s.Sim.Spawn("cx/idled", s.idleDaemon)
	}
}

// idleDaemon fires a lazy batch whenever the server has seen no new sub-op
// for IdleTrigger while commitments are pending — the paper's future-work
// idle-time trigger.
func (s *Server) idleDaemon(p *simrt.Proc) {
	period := s.cfg.IdleTrigger
	for {
		p.Sleep(period / 2)
		if s.Crashed() || s.recovering {
			continue
		}
		if len(s.pendingCoord) == 0 && len(s.flushQ) == 0 {
			continue
		}
		if s.Sim.Now()-s.lastArrive < period {
			continue
		}
		s.stats.LazyBatches++
		s.kick.Send(kickReq{lazy: true})
	}
}

// handle dispatches one inbound message (runs in its own Proc). A rebooted
// server drops *everything* until its log rebuild completes — critically,
// a pre-rebuild participant must never blind-ACK a decision it has not
// persisted — and keeps dropping *client* traffic until the whole §V
// recovery finishes ("the whole file system stops responding new
// requests"). Peers retry VOTE and COMMIT-REQ, so nothing is lost.
func (s *Server) handle(p *simrt.Proc, m wire.Msg) {
	if s.NeedsRecovery() {
		return
	}
	if s.recovering {
		switch m.Type {
		case wire.MsgSubOpReq, wire.MsgOpReq, wire.MsgLCom, wire.MsgLookupReq:
			return
		}
	}
	switch m.Type {
	case wire.MsgSubOpReq:
		s.handleSubOp(p, m)
	case wire.MsgLookupReq:
		s.handleLookup(p, m)
	case wire.MsgOpReq:
		s.handleLocalOp(p, m)
	case wire.MsgLCom:
		if s.cfg.Obs.TraceOn() {
			s.cfg.Obs.Emit(s.Sim.Now(), int(s.ID), m.Op, obs.PhaseLCom, "")
		}
		s.requestCommitFrom(m.Op, true, m.From)
	case wire.MsgConflictNotify:
		s.requestCommitFrom(m.Op, false, m.From)
	case wire.MsgVote:
		if len(m.Ops) == 0 && m.Sub.Action != types.ActNone {
			s.handleRenameVote(p, m) // per-op 2PC vote (rename extension)
			return
		}
		s.handleVote(p, m)
	case wire.MsgVoteResp:
		if len(m.Ops) > 0 { // batched reply: echoes the round's op set
			if ch := s.voteResp[m.Ops[0]]; ch != nil {
				ch.Send(m)
			}
			return
		}
		if s.renameVote != nil {
			if ch := s.renameVote[m.Op]; ch != nil {
				ch.Send(m)
			}
		}
	case wire.MsgCommitReq:
		s.handleCommitReq(p, m)
	case wire.MsgAck:
		if len(m.Ops) > 0 { // batched reply: echoes the round's op set
			if ch := s.ackResp[m.Ops[0]]; ch != nil {
				ch.Send(m)
			}
			return
		}
		if s.renameAck != nil {
			if ch := s.renameAck[m.Op]; ch != nil {
				ch.Send(m)
			}
		}
	}
}

// conflictKey returns the single object key a sub-op conflicts on.
func conflictKey(sub types.SubOp) (types.ObjKey, bool) {
	keys := sub.Keys()
	if len(keys) == 0 {
		return types.ObjKey{}, false
	}
	return keys[0], true
}

// signal helpers ------------------------------------------------------------

func (s *Server) waitChan(m map[types.OpID][]*simrt.Chan[struct{}], op types.OpID) *simrt.Chan[struct{}] {
	ch := simrt.NewChan[struct{}](s.Sim)
	m[op] = append(m[op], ch)
	return ch
}

func (s *Server) fire(m map[types.OpID][]*simrt.Chan[struct{}], op types.OpID) {
	for _, ch := range m[op] {
		ch.Send(struct{}{})
	}
	delete(m, op)
}

// cacheReply retains a completed operation's response for duplicate
// suppression (bounded FIFO).
func (s *Server) cacheReply(op types.OpID, m wire.Msg) {
	const cap = 8192
	if _, exists := s.replyCache[op]; !exists {
		if len(s.replyOrder) >= cap {
			drop := s.replyOrder[0]
			s.replyOrder = s.replyOrder[1:]
			delete(s.replyCache, drop)
		}
		s.replyOrder = append(s.replyOrder, op)
	}
	s.replyCache[op] = m
}

// tombstone records an aborted op so late sub-ops cannot execute.
func (s *Server) tombstone(op types.OpID) {
	if len(s.tombstones) >= s.cfg.TombstoneCap {
		// Bounded memory: drop the whole generation. A lost tombstone can
		// only matter for a message still in flight, which the cap keeps
		// wildly improbable; correctness degradation is an orphaned row,
		// the same exposure SE has by design.
		s.tombstones = make(map[types.OpID]bool)
	}
	s.tombstones[op] = true
}

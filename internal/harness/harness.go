// Package harness regenerates every table and figure of the paper's
// evaluation (§IV). Each experiment builds the clusters it needs, drives
// the workload, and returns both structured results and a formatted table
// whose rows mirror what the paper reports. EXPERIMENTS.md records the
// paper-vs-measured comparison for each.
//
// Absolute numbers differ from the paper — the substrate is a calibrated
// simulator, not the authors' 32-node testbed — but each experiment
// preserves the published shape: who wins, by roughly what factor, and
// where crossovers fall.
package harness

import (
	"fmt"
	"time"

	"cxfs/internal/cluster"
	"cxfs/internal/metarates"
	"cxfs/internal/obs"
	"cxfs/internal/simrt"
	"cxfs/internal/stats"
	"cxfs/internal/trace"
	"cxfs/internal/types"
)

// Config scales the experiments. Scale is the fraction of each paper
// trace's operation count to replay (1.0 = full size; the default keeps a
// laptop run under a minute per experiment).
type Config struct {
	Scale   float64
	Servers int   // trace-driven experiments (paper: 8)
	Seed    int64 //
	// Obs attaches an observability session to every cluster the
	// experiment builds; nil disables recording.
	Obs *obs.Observer
}

// DefaultConfig is the quick-run configuration.
func DefaultConfig() Config {
	return Config{Scale: 0.004, Servers: 8, Seed: 1}
}

// clusterFor builds a trace-capable cluster for the given protocol.
func (cfg Config) clusterFor(proto cluster.Protocol, mutate func(*cluster.Options)) *cluster.Cluster {
	o := cluster.DefaultOptions(cfg.Servers, proto)
	// Enough processes for the largest profile (lair62b: 128).
	o.ClientHosts = 16
	o.ProcsPerHost = 8
	o.Seed = cfg.Seed
	o.Obs = cfg.Obs
	if mutate != nil {
		mutate(&o)
	}
	return cluster.MustNew(o)
}

// replay generates and replays one workload on one protocol.
func (cfg Config) replay(name string, proto cluster.Protocol, mutate func(*cluster.Options), extraReads float64, background []func(*simrt.Proc)) (trace.Result, *cluster.Cluster) {
	p, err := trace.ProfileByName(name)
	if err != nil {
		panic(err)
	}
	tr := trace.Generate(p, cfg.Scale, cfg.Seed)
	c := cfg.clusterFor(proto, mutate)
	r := &trace.Replayer{Trace: tr, C: c, ExtraSharedReads: extraReads, Background: background}
	res := r.Run()
	return res, c
}

// Table2Row is one workload's conflict measurement.
type Table2Row struct {
	Workload      string
	TotalOps      int
	PaperOps      int
	ConflictRatio float64
	PaperRatio    float64
}

// paperConflictRatios holds Table II's published values.
var paperConflictRatios = map[string]float64{
	"CTH": 0.00112, "s3d": 0.00322, "alegra": 0.00623,
	"home2": 0.00669, "deasna2": 0.02972, "lair62b": 0.01571,
}

// paperTotalOps holds Table II's published operation counts.
var paperTotalOps = map[string]int{
	"CTH": 505247, "s3d": 724818, "alegra": 404812,
	"home2": 2720599, "deasna2": 3888022, "lair62b": 11057516,
}

// Table2 measures the conflict ratio of each workload under Cx — the
// paper's Table II.
func Table2(cfg Config) ([]Table2Row, *stats.Table) {
	var rows []Table2Row
	tbl := stats.NewTable("Table II: conflict ratio in various workloads",
		"Trace", "Total Ops", "Conflict", "Paper Ops", "Paper Conflict")
	for _, p := range trace.Profiles() {
		res, c := cfg.replay(p.Name, cluster.ProtoCx, nil, 0, nil)
		c.Shutdown()
		row := Table2Row{
			Workload: p.Name, TotalOps: res.Ops, PaperOps: paperTotalOps[p.Name],
			ConflictRatio: res.ConflictRatio(), PaperRatio: paperConflictRatios[p.Name],
		}
		rows = append(rows, row)
		tbl.Add(row.Workload, row.TotalOps, stats.Pct(row.ConflictRatio),
			row.PaperOps, stats.Pct(row.PaperRatio))
	}
	return rows, tbl
}

// Table4Row is one workload's message-overhead measurement.
type Table4Row struct {
	Workload string
	MsgsOFS  uint64
	MsgsCx   uint64
	Overhead float64 // (Cx-OFS)/OFS; paper: 1.0%-3.1%
}

// Table4 compares message counts of OFS and OFS-Cx across the six traces —
// the paper's Table IV.
func Table4(cfg Config) ([]Table4Row, *stats.Table) {
	var rows []Table4Row
	tbl := stats.NewTable("Table IV: messages generated in the trace replays",
		"Trace", "OFS", "OFS+Cx", "Overhead", "Paper")
	paper := map[string]float64{
		"CTH": 0.022, "s3d": 0.030, "alegra": 0.010,
		"home2": 0.031, "deasna2": 0.024, "lair62b": 0.023,
	}
	for _, p := range trace.Profiles() {
		resOFS, cA := cfg.replay(p.Name, cluster.ProtoSE, nil, 0, nil)
		cA.Shutdown()
		resCx, cB := cfg.replay(p.Name, cluster.ProtoCx, nil, 0, nil)
		cB.Shutdown()
		row := Table4Row{
			Workload: p.Name, MsgsOFS: resOFS.Messages, MsgsCx: resCx.Messages,
			Overhead: float64(resCx.Messages)/float64(resOFS.Messages) - 1,
		}
		rows = append(rows, row)
		tbl.Add(row.Workload, row.MsgsOFS, row.MsgsCx, stats.Pct(row.Overhead), stats.Pct(paper[p.Name]))
	}
	return rows, tbl
}

// Table5Row is one recovery measurement.
type Table5Row struct {
	ValidKB      int64
	RecoveryTime time.Duration
	PaperSeconds int
}

// Table5 measures recovery time as a function of the crashed server's
// valid-record size — the paper's Table V (5KB->3s ... 1000KB->17s, growing
// ~3x while the backlog grows 100x).
func Table5(cfg Config) ([]Table5Row, *stats.Table) {
	paper := map[int64]int{5: 3, 10: 6, 50: 8, 100: 10, 500: 12, 1000: 17}
	targets := []int64{5, 10, 50, 100, 500, 1000}
	var rows []Table5Row
	tbl := stats.NewTable("Table V: recovery time vs valid-records size",
		"Valid-Records", "Recovery", "Paper")
	for _, kb := range targets {
		d := recoveryRun(cfg, kb<<10)
		row := Table5Row{ValidKB: kb, RecoveryTime: d, PaperSeconds: paper[kb]}
		rows = append(rows, row)
		tbl.Add(stats.KB(kb<<10), d, fmt.Sprintf("%ds", paper[kb]))
	}
	return rows, tbl
}

// recoveryRun builds a pending backlog of the target size on server 0,
// crashes it, reboots it, and measures the §V recovery procedure.
func recoveryRun(cfg Config, targetBytes int64) time.Duration {
	o := cluster.DefaultOptions(cfg.Servers, cluster.ProtoCx)
	o.ClientHosts = 8
	o.ProcsPerHost = 4
	o.Seed = cfg.Seed
	o.Cx.Timeout = 0           // no lazy trigger: the backlog stays pending
	o.Hardware.LogMaxBytes = 0 // unlimited, we control the size
	c := cluster.MustNew(o)
	defer c.Shutdown()

	var recovery time.Duration
	c.Sim.Spawn("recovery-exp", func(p *simrt.Proc) {
		// Build backlog: cross-server creates coordinated by server 0.
		pr := c.Proc(0)
		srv := c.CxSrv[0]
		for i := 0; srv.ValidBytes() < targetBytes; i++ {
			name := fmt.Sprintf("r%06d", i)
			ino := pr.AllocInode()
			// Only issue creates whose coordinator is server 0 and whose
			// participant is remote, so the backlog lands where we crash.
			if c.Placement.CoordinatorFor(types.RootInode, name) != 0 ||
				c.Placement.ParticipantFor(ino) == 0 {
				continue
			}
			if _, err := pr.Do(p, types.Op{ID: pr.NextID(), Kind: types.OpCreate,
				Parent: types.RootInode, Name: name, Ino: ino, Type: types.FileRegular}); err != nil {
				panic(err)
			}
		}
		p.Sleep(50 * time.Millisecond) // let responses drain
		c.Bases[0].Crash()
		p.Sleep(100 * time.Millisecond) // failure detection window
		c.Bases[0].Reboot()
		recovery = c.CxSrv[0].Recover(p)
		c.Sim.Stop()
	})
	c.Sim.Run()
	return recovery
}

// Fig4 returns the operation-mix distribution of each workload.
func Fig4(cfg Config) *stats.Table {
	kinds := []types.OpKind{types.OpCreate, types.OpRemove, types.OpMkdir, types.OpRmdir,
		types.OpLink, types.OpUnlink, types.OpStat, types.OpLookup, types.OpSetAttr}
	header := []string{"Trace", "Ops"}
	for _, k := range kinds {
		header = append(header, k.String())
	}
	tbl := stats.NewTable("Figure 4: metadata operation distribution", header...)
	for _, p := range trace.Profiles() {
		tr := trace.Generate(p, cfg.Scale, cfg.Seed)
		dist := tr.Distribution()
		cells := []any{p.Name, tr.Total}
		for _, k := range kinds {
			cells = append(cells, stats.Pct(float64(dist[k])/float64(tr.Total)))
		}
		tbl.Add(cells...)
	}
	return tbl
}

// Fig5Row is one workload's replay-time comparison.
type Fig5Row struct {
	Workload    string
	OFS         time.Duration
	OFSBatched  time.Duration
	OFSCx       time.Duration
	CxOverOFS   float64 // paper: >=0.38 everywhere, >0.50 on s3d
	CxOverBatch float64 // paper: >=0.16
}

// Fig5 runs the trace-driven evaluation: replay time of OFS, OFS-batched,
// and OFS-Cx on each workload (8 servers) — the paper's Figure 5.
func Fig5(cfg Config, workloads []string) ([]Fig5Row, *stats.Table) {
	if workloads == nil {
		for _, p := range trace.Profiles() {
			workloads = append(workloads, p.Name)
		}
	}
	var rows []Fig5Row
	tbl := stats.NewTable("Figure 5: trace-driven evaluation (replay time)",
		"Trace", "OFS", "OFS-batched", "OFS-Cx", "Cx vs OFS", "Cx vs batched")
	for _, name := range workloads {
		resSE, cA := cfg.replay(name, cluster.ProtoSE, nil, 0, nil)
		cA.Shutdown()
		resB, cB := cfg.replay(name, cluster.ProtoSEBatched, nil, 0, nil)
		cB.Shutdown()
		resCx, cC := cfg.replay(name, cluster.ProtoCx, nil, 0, nil)
		cC.Shutdown()
		row := Fig5Row{
			Workload: name, OFS: resSE.ReplayTime, OFSBatched: resB.ReplayTime, OFSCx: resCx.ReplayTime,
			CxOverOFS:   stats.Improvement(resSE.ReplayTime, resCx.ReplayTime),
			CxOverBatch: stats.Improvement(resB.ReplayTime, resCx.ReplayTime),
		}
		rows = append(rows, row)
		tbl.Add(name, row.OFS, row.OFSBatched, row.OFSCx,
			stats.Pct(row.CxOverOFS), stats.Pct(row.CxOverBatch))
	}
	return rows, tbl
}

// Fig6Row is one cluster size's throughput comparison for one mix.
type Fig6Row struct {
	Mix        string
	Servers    int
	OFS        float64
	OFSBatched float64
	OFSCx      float64
	CxGain     float64 // throughput gain over OFS; paper: >=0.70 update, >=0.40 read
}

// Fig6 runs the Metarates benchmark across cluster sizes for both mixes —
// the paper's Figure 6. opsPerProc controls run length.
func Fig6(cfg Config, serverCounts []int, opsPerProc int) ([]Fig6Row, *stats.Table) {
	if serverCounts == nil {
		serverCounts = []int{4, 8, 16, 32}
	}
	if opsPerProc == 0 {
		opsPerProc = 40
	}
	var rows []Fig6Row
	tbl := stats.NewTable("Figure 6: Metarates aggregated throughput (ops/s)",
		"Mix", "Servers", "OFS", "OFS-batched", "OFS-Cx", "Cx vs OFS")
	for _, mix := range []metarates.Mix{metarates.UpdateDominated, metarates.ReadDominated} {
		for _, n := range serverCounts {
			tput := map[cluster.Protocol]float64{}
			for _, proto := range []cluster.Protocol{cluster.ProtoSE, cluster.ProtoSEBatched, cluster.ProtoCx} {
				o := cluster.DefaultOptions(n, proto)
				o.Seed = cfg.Seed
				c := cluster.MustNew(o)
				res := metarates.Run(c, metarates.Config{Mix: mix, OpsPerProc: opsPerProc})
				tput[proto] = res.Throughput
				c.Shutdown()
			}
			row := Fig6Row{
				Mix: mix.Name, Servers: n,
				OFS: tput[cluster.ProtoSE], OFSBatched: tput[cluster.ProtoSEBatched], OFSCx: tput[cluster.ProtoCx],
				CxGain: stats.Ratio(tput[cluster.ProtoSE], tput[cluster.ProtoCx]),
			}
			rows = append(rows, row)
			tbl.Add(mix.Name, n, fmt.Sprintf("%.0f", row.OFS), fmt.Sprintf("%.0f", row.OFSBatched),
				fmt.Sprintf("%.0f", row.OFSCx), stats.Pct(row.CxGain))
		}
	}
	return rows, tbl
}

// Fig7aRow is one log-size limit's replay time.
type Fig7aRow struct {
	LimitBytes int64 // 0 = unlimited
	ReplayTime time.Duration
}

// Fig7a sweeps the log-size upper limit on home2 — the paper's Figure 7a
// (larger logs -> fewer forced commitments -> faster).
func Fig7a(cfg Config, limits []int64) ([]Fig7aRow, *stats.Table) {
	if limits == nil {
		limits = []int64{16 << 10, 32 << 10, 64 << 10, 256 << 10, 1 << 20, 0}
	}
	var rows []Fig7aRow
	tbl := stats.NewTable("Figure 7a: impact of the log-size upper limit (home2)",
		"Limit", "Replay time")
	for _, lim := range limits {
		lim := lim
		res, c := cfg.replay("home2", cluster.ProtoCx, func(o *cluster.Options) {
			o.Hardware.LogMaxBytes = lim
		}, 0, nil)
		c.Shutdown()
		label := "unlimited"
		if lim > 0 {
			label = stats.KB(lim)
		}
		rows = append(rows, Fig7aRow{LimitBytes: lim, ReplayTime: res.ReplayTime})
		tbl.Add(label, res.ReplayTime)
	}
	return rows, tbl
}

// Fig7b samples the valid-records size during a home2 replay with an
// unlimited log — the paper's Figure 7b (rise to a peak, then periodic
// drops at every timeout-triggered batch commitment). The sampling runs
// through the generic observability layer: a dedicated observer with
// SampleEvery set, whose "wal-live-bytes" series is exactly the paper's
// valid-records quantity (the replayer spawns the cluster sampler
// automatically).
func Fig7b(cfg Config, interval time.Duration) (*stats.Series, *stats.Table) {
	if interval <= 0 {
		interval = 200 * time.Millisecond
	}
	// A local observer, not cfg.Obs: this figure needs its own clean series
	// regardless of what session-wide recording is attached.
	obsv := obs.New(obs.Options{SampleEvery: interval})
	_, c := cfg.replay("home2", cluster.ProtoCx, func(o *cluster.Options) {
		o.Hardware.LogMaxBytes = 0
		o.Cx.Timeout = 2 * time.Second // scaled-down 10s trigger
		o.Obs = obsv
	}, 0, nil)
	c.Shutdown()

	series := obsv.Series("wal-live-bytes")
	if series == nil {
		series = &stats.Series{Name: "wal-live-bytes"}
	}
	tbl := stats.NewTable("Figure 7b: valid-records size over time (home2, unlimited log)",
		"t", "bytes")
	for _, pt := range series.Points {
		tbl.Add(pt.T, fmt.Sprintf("%.0f", pt.V))
	}
	return series, tbl
}

// Fig8Row is one injected-conflict level.
type Fig8Row struct {
	InjectRate    float64
	ConflictRatio float64
	CxReplay      time.Duration
	MsgOverhead   float64 // vs the OFS baseline at the same injection
}

// Fig8 sweeps injected conflict ratios on home2 and reports Cx replay time
// and message overhead against the OFS baseline — the paper's Figure 8
// (Cx wins until the conflict ratio approaches ~20%).
func Fig8(cfg Config, rates []float64) ([]Fig8Row, time.Duration, *stats.Table) {
	if rates == nil {
		rates = []float64{0, 0.05, 0.12, 0.25, 0.5, 0.9}
	}
	resOFS, cO := cfg.replay("home2", cluster.ProtoSE, nil, 0, nil)
	cO.Shutdown()
	var rows []Fig8Row
	tbl := stats.NewTable(
		fmt.Sprintf("Figure 8: impact of conflict ratios (home2; OFS baseline %v)", resOFS.ReplayTime.Round(time.Millisecond)),
		"Injected", "Conflict ratio", "Cx replay", "Msg overhead", "Beats OFS")
	for _, rate := range rates {
		res, c := cfg.replay("home2", cluster.ProtoCx, nil, rate, nil)
		c.Shutdown()
		row := Fig8Row{
			InjectRate:    rate,
			ConflictRatio: res.ConflictRatio(),
			CxReplay:      res.ReplayTime,
			MsgOverhead:   float64(res.Messages)/float64(resOFS.Messages) - 1,
		}
		rows = append(rows, row)
		tbl.Add(fmt.Sprintf("%.2f", rate), stats.Pct(row.ConflictRatio), row.CxReplay,
			stats.Pct(row.MsgOverhead), fmt.Sprintf("%v", row.CxReplay < resOFS.ReplayTime))
	}
	return rows, resOFS.ReplayTime, tbl
}

// Fig9Row is one trigger setting's replay time.
type Fig9Row struct {
	Setting    string
	ReplayTime time.Duration
}

// Fig9a sweeps the timeout trigger on home2 with an unlimited log — the
// paper's Figure 9a (longer timeouts batch more and run faster, optimal
// when no lazy commitment fires during the replay at all).
func Fig9a(cfg Config, timeouts []time.Duration) ([]Fig9Row, *stats.Table) {
	if timeouts == nil {
		timeouts = []time.Duration{50 * time.Millisecond, 200 * time.Millisecond,
			800 * time.Millisecond, 3200 * time.Millisecond, 12800 * time.Millisecond}
	}
	var rows []Fig9Row
	tbl := stats.NewTable("Figure 9a: timeout-trigger sensitivity (home2, unlimited log)",
		"Timeout", "Replay time")
	for _, to := range timeouts {
		to := to
		res, c := cfg.replay("home2", cluster.ProtoCx, func(o *cluster.Options) {
			o.Hardware.LogMaxBytes = 0
			o.Cx.Timeout = to
		}, 0, nil)
		c.Shutdown()
		rows = append(rows, Fig9Row{Setting: to.String(), ReplayTime: res.ReplayTime})
		tbl.Add(to, res.ReplayTime)
	}
	return rows, tbl
}

// Fig9b sweeps the threshold trigger — the paper's Figure 9b.
func Fig9b(cfg Config, thresholds []int) ([]Fig9Row, *stats.Table) {
	if thresholds == nil {
		thresholds = []int{4, 16, 64, 256, 1024}
	}
	var rows []Fig9Row
	tbl := stats.NewTable("Figure 9b: threshold-trigger sensitivity (home2, unlimited log)",
		"Threshold", "Replay time")
	for _, th := range thresholds {
		th := th
		res, c := cfg.replay("home2", cluster.ProtoCx, func(o *cluster.Options) {
			o.Hardware.LogMaxBytes = 0
			o.Cx.Timeout = 0
			o.Cx.Threshold = th
		}, 0, nil)
		c.Shutdown()
		rows = append(rows, Fig9Row{Setting: fmt.Sprintf("%d", th), ReplayTime: res.ReplayTime})
		tbl.Add(th, res.ReplayTime)
	}
	return rows, tbl
}

package core

import (
	"fmt"
	"testing"
	"time"

	"cxfs/internal/types"
	"cxfs/internal/wire"
)

// grantMsg builds the MsgLookupResp a server would send for (dir, name):
// found carries attr, a miss is a leased negative entry.
func grantMsg(server types.NodeID, dir types.InodeID, name string, ino types.InodeID,
	found bool, epoch uint64, ttl time.Duration) wire.Msg {
	return wire.Msg{Type: wire.MsgLookupResp, From: server, OK: found,
		Dir: dir, Path: name, Attr: types.Inode{Ino: ino, Nlink: 1},
		LeaseEpoch: epoch, LeaseTTL: ttl}
}

func TestCacheTTLExpiry(t *testing.T) {
	c := NewCache(8)
	ttl := 40 * time.Millisecond
	c.Put(1*time.Millisecond, 2*time.Millisecond, grantMsg(0, types.RootInode, "f", 7, true, 1, ttl))

	if _, found, grant, ok := c.Get(10*time.Millisecond, types.RootInode, "f"); !ok || !found {
		t.Fatalf("fresh entry not served: found=%v ok=%v", found, ok)
	} else if grant != 1*time.Millisecond {
		t.Errorf("grant stamp %v, want the request's issue time 1ms", grant)
	}
	// The TTL anchors at receive time (2ms), so 42ms is the first dead instant.
	if _, _, _, ok := c.Get(2*time.Millisecond+ttl, types.RootInode, "f"); ok {
		t.Error("entry served at its expiry instant")
	}
	st := c.Stats()
	if st.Expirations != 1 || st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats hits=%d misses=%d expirations=%d, want 1/1/1", st.Hits, st.Misses, st.Expirations)
	}
	if c.Len() != 0 {
		t.Errorf("expired entry still resident: len=%d", c.Len())
	}
}

func TestCacheCapacityEviction(t *testing.T) {
	c := NewCache(2)
	ttl := time.Second
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("f%d", i)
		c.Put(0, 0, grantMsg(0, types.RootInode, name, types.InodeID(10+i), true, 1, ttl))
	}
	if c.Len() != 2 {
		t.Fatalf("len=%d after 3 puts at cap 2", c.Len())
	}
	if _, _, _, ok := c.Get(1, types.RootInode, "f0"); ok {
		t.Error("oldest entry survived past the capacity bound")
	}
	for _, name := range []string{"f1", "f2"} {
		if _, _, _, ok := c.Get(1, types.RootInode, name); !ok {
			t.Errorf("recent entry %q evicted", name)
		}
	}
	if got := c.Stats().Evictions; got != 1 {
		t.Errorf("Evictions=%d, want 1", got)
	}
	// Refreshing a resident key must update in place, not consume a slot.
	c.Put(0, 0, grantMsg(0, types.RootInode, "f2", 99, true, 1, ttl))
	if got := c.Stats().Evictions; got != 1 {
		t.Errorf("refresh evicted: Evictions=%d, want still 1", got)
	}
	if attr, _, _, ok := c.Get(1, types.RootInode, "f2"); !ok || attr.Ino != 99 {
		t.Errorf("refreshed entry: ino=%v ok=%v, want 99", attr.Ino, ok)
	}
}

func TestCacheInvalidateOwnMutation(t *testing.T) {
	c := NewCache(8)
	c.Put(0, 0, grantMsg(0, types.RootInode, "f", 7, true, 1, time.Second))
	c.Invalidate(types.RootInode, "f")
	if _, _, _, ok := c.Get(1, types.RootInode, "f"); ok {
		t.Error("invalidated entry still served")
	}
	c.Invalidate(types.RootInode, "absent")
	if got := c.Stats().Invalidations; got != 1 {
		t.Errorf("Invalidations=%d, want 1 (absent key must not count)", got)
	}
}

func TestCacheRevokeOnHint(t *testing.T) {
	c := NewCache(8)
	c.Put(0, 0, grantMsg(3, types.RootInode, "f", 7, true, 1, time.Second))
	c.Revoke(types.RootInode, "f", 3, 1)
	if _, _, _, ok := c.Get(1, types.RootInode, "f"); ok {
		t.Error("revoked entry still served")
	}
	if got := c.Stats().Revocations; got != 1 {
		t.Errorf("Revocations=%d, want 1", got)
	}
}

func TestCacheNegativeEntry(t *testing.T) {
	c := NewCache(8)
	c.Put(0, 0, grantMsg(0, types.RootInode, "ghost", 0, false, 1, time.Second))
	_, found, _, ok := c.Get(1, types.RootInode, "ghost")
	if !ok {
		t.Fatal("leased negative entry not served")
	}
	if found {
		t.Error("negative entry reported as found")
	}
	if st := c.Stats(); st.Hits != 1 {
		t.Errorf("Hits=%d, want 1 (a served negative entry is a hit)", st.Hits)
	}
}

func TestCacheEpochFence(t *testing.T) {
	c := NewCache(8)
	c.Put(0, 0, grantMsg(3, types.RootInode, "f", 7, true, 1, time.Hour))
	// A revocation for an unrelated name carries the post-reboot epoch.
	c.Revoke(types.RootInode, "unrelated", 3, 2)
	if _, _, _, ok := c.Get(1, types.RootInode, "f"); ok {
		t.Error("entry from the dead incarnation served after the epoch moved")
	}
	if got := c.Stats().EpochFences; got != 1 {
		t.Errorf("EpochFences=%d, want 1", got)
	}
	// A grant stamped below the known epoch must not enter the cache at all.
	c.Put(0, 0, grantMsg(3, types.RootInode, "g", 8, true, 1, time.Hour))
	if _, _, _, ok := c.Get(1, types.RootInode, "g"); ok {
		t.Error("stale-epoch grant was cached")
	}
	// NoteEpoch alone fences too (epoch observed out of band).
	c.Put(0, 0, grantMsg(3, types.RootInode, "h", 9, true, 2, time.Hour))
	c.NoteEpoch(3, 5)
	if _, _, _, ok := c.Get(1, types.RootInode, "h"); ok {
		t.Error("entry served after NoteEpoch advanced the incarnation")
	}
}

func TestCacheUnleasedResponseNotCached(t *testing.T) {
	c := NewCache(8)
	c.Put(0, 0, grantMsg(0, types.RootInode, "f", 7, true, 0, time.Second))
	if c.Len() != 0 {
		t.Error("response without a lease (epoch 0) was cached")
	}
}

// TestCacheGetHitZeroAllocs pins the lookup fast path at zero allocations
// per hit — the whole point of serving stats locally.
func TestCacheGetHitZeroAllocs(t *testing.T) {
	c := NewCache(8)
	c.Put(0, 0, grantMsg(0, types.RootInode, "f", 7, true, 1, time.Hour))
	allocs := testing.AllocsPerRun(1000, func() {
		if _, _, _, ok := c.Get(1, types.RootInode, "f"); !ok {
			t.Fatal("warm entry missed")
		}
	})
	if allocs != 0 {
		t.Errorf("Get hit allocates %.1f times per op, want 0", allocs)
	}
}

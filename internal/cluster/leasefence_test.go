package cluster

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"cxfs/internal/core"
	"cxfs/internal/simrt"
	"cxfs/internal/types"
)

// TestLeaseEpochFenceAcrossRecovery locks in the crash-safety rule of the
// leased cache: a lease granted before a server crash must not validate
// reads against post-recovery state. The recovering server wipes its lease
// table, so a mutation after recovery sends no revocation to the old
// holder; what protects the holder is the lease epoch (boot count + 1)
// stamped on every grant. Once the client observes the new incarnation's
// epoch on ANY response from that server, every cached entry stamped by the
// dead incarnation is fenced out and the next read goes back to the server.
func TestLeaseEpochFenceAcrossRecovery(t *testing.T) {
	o := DefaultOptions(3, ProtoCx)
	o.ClientHosts = 2
	o.ProcsPerHost = 1
	o.CacheTTL = 10 * time.Second // far beyond the test's virtual time: TTL never saves us
	c := MustNew(o)
	defer c.Shutdown()

	c.Sim.Spawn("t", func(p *simrt.Proc) {
		defer c.Sim.Stop()
		prA, prB := c.Proc(0), c.Proc(1)
		drvA, _ := prA.Driver().(*core.Driver)
		if drvA == nil || drvA.Cache() == nil {
			t.Error("proc 0 has no leased cache under CacheTTL")
			return
		}

		// A creates and caches a name; remember its coordinator.
		const name = "fenced"
		srv := c.Placement.CoordinatorFor(types.RootInode, name)
		ino, err := prA.Create(p, types.RootInode, name)
		if err != nil {
			t.Errorf("create %q: %v", name, err)
			return
		}
		if _, err := prA.Lookup(p, types.RootInode, name); err != nil {
			t.Errorf("warming lookup: %v", err)
			return
		}
		if in, err := prA.Lookup(p, types.RootInode, name); err != nil || in.Ino != ino {
			t.Errorf("cached lookup: ino=%v err=%v, want %v", in.Ino, err, ino)
			return
		}
		if cached, _ := drvA.LastLookup(); !cached {
			t.Error("second lookup did not hit the cache")
			return
		}
		if c.LeasesOutstanding(int(srv)) == 0 {
			t.Errorf("s%d granted a lease but reports none outstanding", srv)
		}

		// Crash the grantor with A's lease live; recovery wipes the lease
		// table, so nobody remembers A when the name changes afterwards.
		c.Quiesce(p)
		base := c.Bases[srv]
		base.Crash()
		p.Sleep(10 * time.Millisecond)
		base.Reboot()
		c.CxSrv[srv].Recover(p)
		if got := c.LeasesOutstanding(int(srv)); got != 0 {
			t.Errorf("recovered s%d still reports %d leases", srv, got)
		}

		// B removes the name. No revocation can reach A.
		if err := prB.Remove(p, types.RootInode, name, ino); err != nil {
			t.Errorf("post-recovery remove: %v", err)
			return
		}
		c.Quiesce(p)

		// A reads some OTHER name coordinated by the same server and thereby
		// observes the new incarnation's lease epoch.
		other := ""
		for try := 0; ; try++ {
			cand := fmt.Sprintf("other-%d", try)
			if c.Placement.CoordinatorFor(types.RootInode, cand) == srv {
				other = cand
				break
			}
		}
		if _, err := prA.Lookup(p, types.RootInode, other); !errors.Is(err, types.ErrNotFound) {
			t.Errorf("lookup %q: err=%v, want ErrNotFound", other, err)
		}

		// A's lease on the removed name is still within TTL but stamped by
		// the dead incarnation: the fence must force a server round-trip,
		// which sees the remove.
		in, err := prA.Lookup(p, types.RootInode, name)
		if cached, _ := drvA.LastLookup(); cached {
			t.Errorf("stale read served from a pre-crash lease: ino=%v err=%v", in.Ino, err)
		}
		if !errors.Is(err, types.ErrNotFound) {
			t.Errorf("post-fence lookup: ino=%v err=%v, want ErrNotFound", in.Ino, err)
		}
		if fences := drvA.Cache().Stats().EpochFences; fences == 0 {
			t.Error("no epoch fence recorded; the stale entry was not fenced out")
		}
	})
	deadline := time.Hour
	if end := c.Sim.RunUntil(deadline); end >= deadline {
		t.Fatal("scenario did not finish within the virtual deadline")
	}
	checkClean(t, c)
}

// Command cxbench regenerates the paper's evaluation tables and figures
// against the simulated cluster.
//
// Usage:
//
//	cxbench -exp all                # every experiment at the default scale
//	cxbench -exp fig5 -scale 0.01   # one experiment, bigger replay
//	cxbench -exp table5 -servers 8
//
// Experiments: table2, table4, table5, fig4, fig5, fig6, fig7a, fig7b,
// fig8, fig9a, fig9b, protocols (extension: 2PC and CE in the comparison).
// Each prints a table whose rows mirror the paper's; EXPERIMENTS.md records
// the paper-vs-measured comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"cxfs/internal/cluster"
	"cxfs/internal/harness"
	"cxfs/internal/stats"
	"cxfs/internal/trace"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment id (table2|table4|table5|fig4|fig5|fig6|fig7a|fig7b|fig8|fig9a|fig9b|protocols|latency|triggers|all)")
		scale   = flag.Float64("scale", 0.004, "fraction of each paper trace's op count to replay")
		servers = flag.Int("servers", 8, "metadata servers for trace-driven experiments")
		seed    = flag.Int64("seed", 1, "simulation seed")
	)
	flag.Parse()

	cfg := harness.Config{Scale: *scale, Servers: *servers, Seed: *seed}
	ids := strings.Split(*exp, ",")
	if *exp == "all" {
		ids = []string{"table2", "table4", "table5", "fig4", "fig5", "fig6", "fig7a", "fig7b", "fig8", "fig9a", "fig9b", "protocols", "latency", "triggers"}
	}
	for _, id := range ids {
		start := time.Now()
		if err := run(id, cfg); err != nil {
			fmt.Fprintf(os.Stderr, "cxbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("[%s completed in %v wall time]\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}

func run(id string, cfg harness.Config) error {
	switch id {
	case "table2":
		_, tbl := harness.Table2(cfg)
		fmt.Println(tbl)
	case "table4":
		_, tbl := harness.Table4(cfg)
		fmt.Println(tbl)
	case "table5":
		_, tbl := harness.Table5(cfg)
		fmt.Println(tbl)
	case "fig4":
		fmt.Println(harness.Fig4(cfg))
	case "fig5":
		_, tbl := harness.Fig5(cfg, nil)
		fmt.Println(tbl)
	case "fig6":
		_, tbl := harness.Fig6(cfg, nil, 0)
		fmt.Println(tbl)
	case "fig7a":
		_, tbl := harness.Fig7a(cfg, nil)
		fmt.Println(tbl)
	case "fig7b":
		series, tbl := harness.Fig7b(cfg, 0)
		fmt.Println(tbl)
		fmt.Printf("peak=%.0f bytes, pruning drops=%d\n\n", series.Peak(), series.Drops(0.3))
	case "fig8":
		_, base, tbl := harness.Fig8(cfg, nil)
		fmt.Println(tbl)
		fmt.Printf("OFS baseline replay: %v\n\n", base.Round(time.Millisecond))
	case "fig9a":
		_, tbl := harness.Fig9a(cfg, nil)
		fmt.Println(tbl)
	case "fig9b":
		_, tbl := harness.Fig9b(cfg, nil)
		fmt.Println(tbl)
	case "protocols":
		fmt.Println(protocolsExtension(cfg))
	case "latency":
		_, tbl := harness.Latency(cfg, "s3d")
		fmt.Println(tbl)
	case "triggers":
		_, tbl := harness.Triggers(cfg)
		fmt.Println(tbl)
	default:
		return fmt.Errorf("unknown experiment %q", id)
	}
	return nil
}

// protocolsExtension compares all five protocols on one trace — beyond the
// paper, which describes 2PC and CE (§II.B, Fig 1) but only evaluates the
// OFS variants.
func protocolsExtension(cfg harness.Config) *stats.Table {
	tbl := stats.NewTable("Extension: all five protocols on s3d (replay time)",
		"Protocol", "Replay", "Messages", "vs OFS")
	p, _ := trace.ProfileByName("s3d")
	var base time.Duration
	for _, proto := range cluster.Protocols {
		tr := trace.Generate(p, cfg.Scale, cfg.Seed)
		o := cluster.DefaultOptions(cfg.Servers, proto)
		o.ClientHosts = 16
		o.ProcsPerHost = 8
		o.Seed = cfg.Seed
		c := cluster.New(o)
		res := (&trace.Replayer{Trace: tr, C: c}).Run()
		c.Shutdown()
		if proto == cluster.ProtoSE {
			base = res.ReplayTime
		}
		tbl.Add(string(proto), res.ReplayTime, res.Messages, stats.Pct(stats.Improvement(base, res.ReplayTime)))
	}
	return tbl
}

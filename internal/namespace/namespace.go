// Package namespace implements one metadata server's shard of the file
// system namespace: directory entries and inodes stored as rows in the
// server's kvstore, plus the placement policy that decides which server
// coordinates and which participates in a cross-server operation.
//
// Placement follows OrangeFS as described in §IV.A of the paper: "a
// directory entry is assigned to a server based on its name hash value, and
// the file's metadata object (inode) is randomly created on one server in
// the cluster". Large directories are therefore striped across all servers
// (the paper's Metarates setup exploits exactly this), and an operation is
// cross-server whenever the two placements land on different servers.
//
// Execution produces a before-image undo for every mutation, which is what
// the Cx abort path and the SE CLEAR path replay to roll a provisional
// sub-operation back.
package namespace

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"

	"cxfs/internal/kvstore"
	"cxfs/internal/types"
)

// Placement maps metadata objects to servers.
type Placement struct {
	Servers int
}

// CoordinatorFor returns the server holding the directory-entry partition
// for (parent, name) — the coordinator of any operation on that entry.
func (pl Placement) CoordinatorFor(parent types.InodeID, name string) types.NodeID {
	h := fnv.New32a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(parent))
	h.Write(b[:])
	h.Write([]byte(name))
	return types.NodeID(h.Sum32() % uint32(pl.Servers))
}

// ParticipantFor returns the server holding inode ino. Inode numbers are
// allocated with a server-selecting low field (see InodeAlloc), emulating
// OrangeFS's random inode placement while keeping the mapping derivable
// from the ID alone.
func (pl Placement) ParticipantFor(ino types.InodeID) types.NodeID {
	return types.NodeID(uint64(ino) % uint64(pl.Servers))
}

// InodeAlloc hands out inode numbers that place on a chosen server.
// Clients keep one; the cluster seeds each with a disjoint range.
type InodeAlloc struct {
	pl   Placement
	next uint64
}

// NewInodeAlloc creates an allocator whose IDs start at base (base must be
// unique per client to avoid collisions).
func NewInodeAlloc(pl Placement, base uint64) *InodeAlloc {
	return &InodeAlloc{pl: pl, next: base}
}

// Next returns a fresh inode ID that ParticipantFor maps to server.
func (a *InodeAlloc) Next(server types.NodeID) types.InodeID {
	n := a.next
	a.next++
	// Shift the counter into the high bits and use the low field to select
	// the server deterministically.
	return types.InodeID(n*uint64(a.pl.Servers) + uint64(server))
}

// Inode is the attribute block stored per file or directory; it is an alias
// of types.Inode so wire payloads and shard rows share one definition.
type Inode = types.Inode

// encodeInode serializes an inode row.
func encodeInode(in Inode) []byte {
	buf := make([]byte, 0, 8+1+4+8+8+8)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(in.Ino))
	buf = append(buf, byte(in.Type))
	buf = binary.LittleEndian.AppendUint32(buf, in.Nlink)
	buf = binary.LittleEndian.AppendUint64(buf, in.Size)
	buf = binary.LittleEndian.AppendUint64(buf, in.Ctime)
	buf = binary.LittleEndian.AppendUint64(buf, in.Mtime)
	return buf
}

// decodeInode parses an inode row.
func decodeInode(b []byte) (Inode, error) {
	var in Inode
	if len(b) != 37 {
		return in, fmt.Errorf("namespace: bad inode row length %d", len(b))
	}
	in.Ino = types.InodeID(binary.LittleEndian.Uint64(b[0:8]))
	in.Type = types.FileType(b[8])
	in.Nlink = binary.LittleEndian.Uint32(b[9:13])
	in.Size = binary.LittleEndian.Uint64(b[13:21])
	in.Ctime = binary.LittleEndian.Uint64(b[21:29])
	in.Mtime = binary.LittleEndian.Uint64(b[29:37])
	return in, nil
}

// Row keys. Dentries and inodes share the store with distinct prefixes.
// Built with strconv appends rather than fmt.Sprintf: key construction runs
// on every sub-op execution and lookup, and Sprintf's interface boxing plus
// format parsing dominated the namespace profile at replay scale.
func dentryRow(dir types.InodeID, name string) string {
	b := make([]byte, 0, 2+20+1+len(name))
	b = append(b, 'd', '/')
	b = strconv.AppendUint(b, uint64(dir), 10)
	b = append(b, '/')
	b = append(b, name...)
	return string(b)
}

func inodeRow(ino types.InodeID) string {
	b := make([]byte, 0, 2+20)
	b = append(b, 'i', '/')
	b = strconv.AppendUint(b, uint64(ino), 10)
	return string(b)
}

// RowKey returns the kvstore row key for an object key; the protocols use
// it to flush exactly the objects a commitment batch touched.
func RowKey(k types.ObjKey) string {
	switch k.Kind {
	case types.ObjDentry:
		return dentryRow(k.Dir, k.Name)
	case types.ObjInode:
		return inodeRow(k.Ino)
	}
	panic("namespace: RowKey on invalid ObjKey")
}

// Undo rolls back one sub-operation. Primary objects (the dentry or inode
// the sub-op targets) are restored from before-images; the parent-inode
// attribute bump that rides along with entry insertion/removal is undone by
// a *compensating* adjustment instead, because concurrent operations on the
// same directory update it commutatively and a before-image would clobber
// their effects.
type Undo struct {
	rows    map[string][]byte // before-images; nil value = row did not exist
	adjusts []parentAdjust
}

// parentAdjust compensates the "update parent inode" piggyback.
type parentAdjust struct {
	dir       types.InodeID
	sizeDelta int64
}

// Empty reports whether the undo has nothing to restore (read-only sub-op).
func (u *Undo) Empty() bool { return u == nil || (len(u.rows) == 0 && len(u.adjusts) == 0) }

// Keys returns the row keys the undo touches (for flushing after an abort).
func (u *Undo) Keys() []string {
	if u == nil {
		return nil
	}
	out := make([]string, 0, len(u.rows)+len(u.adjusts))
	for k := range u.rows {
		out = append(out, k)
	}
	for _, a := range u.adjusts {
		out = append(out, inodeRow(a.dir))
	}
	return out
}

// Result is the outcome of executing a sub-operation.
type Result struct {
	OK    bool
	Err   error    // why the sub-op failed (nil when OK)
	Inode Inode    // stat/lookup payload
	Rows  []string // row keys written (for persistence)
	Undo  *Undo    // runtime rollback (nil for reads)
	Freed bool     // DecLink dropped nlink to zero and freed the inode

	// Before and After are images of the *primary* rows the sub-op wrote
	// (the targeted dentry or inode; not the commutative parent counter).
	// They travel in the Result-Record so crash recovery can redo a commit
	// or undo an abort idempotently by installing images.
	Before []types.RowImage
	After  []types.RowImage
}

// Shard is one server's namespace partition.
type Shard struct {
	kv *kvstore.Store
}

// NewShard wraps a store.
func NewShard(kv *kvstore.Store) *Shard { return &Shard{kv: kv} }

// Store exposes the underlying kvstore (the protocols drive persistence).
func (sh *Shard) Store() *kvstore.Store { return sh.kv }

// InitRoot installs the root directory inode on the shard that owns it.
func (sh *Shard) InitRoot() {
	sh.kv.Put(inodeRow(types.RootInode), encodeInode(Inode{
		Ino: types.RootInode, Type: types.FileDir, Nlink: 2,
	}))
}

// SeedInode force-installs an inode row (test and trace-bootstrap helper).
func (sh *Shard) SeedInode(in Inode) {
	sh.kv.Put(inodeRow(in.Ino), encodeInode(in))
}

// SeedDentry force-installs a directory entry (test and bootstrap helper).
func (sh *Shard) SeedDentry(dir types.InodeID, name string, ino types.InodeID) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(ino))
	sh.kv.Put(dentryRow(dir, name), b[:])
}

// GetInode reads an inode row.
func (sh *Shard) GetInode(ino types.InodeID) (Inode, bool) {
	raw, ok := sh.kv.Get(inodeRow(ino))
	if !ok {
		return Inode{}, false
	}
	in, err := decodeInode(raw)
	if err != nil {
		panic(err) // corruption is a bug, not a runtime condition
	}
	return in, true
}

// LookupEntry resolves (dir, name) to an inode number.
func (sh *Shard) LookupEntry(dir types.InodeID, name string) (types.InodeID, bool) {
	raw, ok := sh.kv.Get(dentryRow(dir, name))
	if !ok {
		return 0, false
	}
	return types.InodeID(binary.LittleEndian.Uint64(raw)), true
}

// ResolveEntry resolves (dir, name) to the full inode for the leased read
// path. The dentry is authoritative here by placement (the coordinator for
// (dir, name) owns it); the inode row may live on another server, in which
// case the binding is still a valid lease payload and only the attributes
// are zero.
func (sh *Shard) ResolveEntry(dir types.InodeID, name string) (Inode, bool) {
	ino, ok := sh.LookupEntry(dir, name)
	if !ok {
		return Inode{}, false
	}
	if in, ok := sh.GetInode(ino); ok {
		return in, true
	}
	return Inode{Ino: ino}, true
}

// Exec applies one sub-operation to the volatile image, returning its
// result and undo. now is the virtual timestamp for ctime/mtime fields.
// Exec never touches the disk; persistence (sync or batched) is the
// caller's protocol decision.
func (sh *Shard) Exec(sub types.SubOp, now uint64) Result {
	primary := sh.primaryRow(sub)
	before := sh.imageOf(primary)
	res := sh.exec(sub, now)
	if res.OK && res.Undo != nil && primary != "" {
		res.Before = []types.RowImage{before}
		res.After = []types.RowImage{sh.imageOf(primary)}
	}
	return res
}

// primaryRow names the row a sub-op targets (excluding the parent counter).
func (sh *Shard) primaryRow(sub types.SubOp) string {
	switch sub.Action {
	case types.ActInsertEntry, types.ActRemoveEntry:
		return dentryRow(sub.Parent, sub.Name)
	case types.ActAddInode, types.ActDecLink, types.ActIncLink, types.ActTouchInode:
		return inodeRow(sub.Ino)
	}
	return ""
}

// imageOf snapshots one row.
func (sh *Shard) imageOf(row string) types.RowImage {
	if row == "" {
		return types.RowImage{}
	}
	img := types.RowImage{Key: row}
	if v, ok := sh.kv.Get(row); ok {
		cp := make([]byte, len(v))
		copy(cp, v)
		img.Val = cp
	}
	return img
}

// DirEntry is one readdir result.
type DirEntry struct {
	Name string
	Ino  types.InodeID
}

// ListDir scans this shard's partition of directory dir. Directories are
// striped across servers by entry hash, so a full readdir unions the
// ListDir of every server (the OrangeFS model).
func (sh *Shard) ListDir(dir types.InodeID) []DirEntry {
	prefix := dentryRow(dir, "")
	var out []DirEntry
	sh.kv.Range(func(key string, val []byte) bool {
		if len(key) > len(prefix) && key[:len(prefix)] == prefix && len(val) == 8 {
			out = append(out, DirEntry{
				Name: key[len(prefix):],
				Ino:  types.InodeID(binary.LittleEndian.Uint64(val)),
			})
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Fsck recomputes every directory inode's entry count from the dentry rows
// actually present — the local consistency pass a rebooted server runs after
// log-driven redo/undo, because the commutative parent counter is not
// protected by row images. It returns the number of corrected inodes.
func (sh *Shard) Fsck() int {
	counts := make(map[types.InodeID]uint64)
	var dirs []types.InodeID
	sh.kv.Range(func(key string, _ []byte) bool {
		// "d/<dir>/<name>": split on the first two slashes only, so names
		// containing spaces (which Sscanf's %s would truncate) still count.
		if rest, ok := strings.CutPrefix(key, "d/"); ok {
			dirStr, _, found := strings.Cut(rest, "/")
			if dir, err := strconv.ParseUint(dirStr, 10, 64); found && err == nil {
				counts[types.InodeID(dir)]++
			}
		}
		return true
	})
	sh.kv.Range(func(key string, _ []byte) bool {
		if inoStr, ok := strings.CutPrefix(key, "i/"); ok {
			if ino, err := strconv.ParseUint(inoStr, 10, 64); err == nil {
				dirs = append(dirs, types.InodeID(ino))
			}
		}
		return true
	})
	fixed := 0
	for _, ino := range dirs {
		in, ok := sh.GetInode(ino)
		if !ok || in.Type != types.FileDir {
			continue
		}
		if want := counts[ino]; in.Size != want {
			in.Size = want
			sh.kv.Put(inodeRow(ino), encodeInode(in))
			fixed++
		}
	}
	return fixed
}

// InstallImages force-installs row images; recovery redo/undo path.
func (sh *Shard) InstallImages(imgs []types.RowImage) {
	for _, img := range imgs {
		if img.Key == "" {
			continue
		}
		if img.Val == nil {
			sh.kv.Delete(img.Key)
		} else {
			sh.kv.Put(img.Key, img.Val)
		}
	}
}

func (sh *Shard) exec(sub types.SubOp, now uint64) Result {
	switch sub.Action {
	case types.ActInsertEntry:
		return sh.insertEntry(sub, now)
	case types.ActRemoveEntry:
		return sh.removeEntry(sub, now)
	case types.ActAddInode:
		return sh.addInode(sub, now)
	case types.ActDecLink:
		return sh.decLink(sub, now)
	case types.ActIncLink:
		return sh.incLink(sub, now)
	case types.ActReadInode:
		return sh.readInode(sub)
	case types.ActReadEntry:
		return sh.readEntry(sub)
	case types.ActTouchInode:
		return sh.touchInode(sub, now)
	}
	return Result{OK: false, Err: fmt.Errorf("namespace: unknown action %v", sub.Action)}
}

// ApplyUndo restores the before-images captured by a prior Exec and applies
// the compensating parent adjustments.
func (sh *Shard) ApplyUndo(u *Undo) {
	if u == nil {
		return
	}
	for row, img := range u.rows {
		if img == nil {
			sh.kv.Delete(row)
		} else {
			sh.kv.Put(row, img)
		}
	}
	for _, a := range u.adjusts {
		parent, ok := sh.GetInode(a.dir)
		if !ok {
			continue
		}
		if a.sizeDelta < 0 && parent.Size < uint64(-a.sizeDelta) {
			parent.Size = 0
		} else {
			parent.Size = uint64(int64(parent.Size) + a.sizeDelta)
		}
		sh.kv.Put(inodeRow(a.dir), encodeInode(parent))
	}
}

// capture records row's current image into u before it is overwritten.
func (sh *Shard) capture(u *Undo, row string) {
	if _, done := u.rows[row]; done {
		return
	}
	if v, ok := sh.kv.Get(row); ok {
		cp := make([]byte, len(v))
		copy(cp, v)
		u.rows[row] = cp
	} else {
		u.rows[row] = nil
	}
}

func newUndo() *Undo { return &Undo{rows: make(map[string][]byte)} }

func (sh *Shard) insertEntry(sub types.SubOp, now uint64) Result {
	row := dentryRow(sub.Parent, sub.Name)
	if _, exists := sh.kv.Get(row); exists {
		return Result{Err: fmt.Errorf("insert %s: %w", sub.Name, types.ErrExists)}
	}
	u := newUndo()
	sh.capture(u, row)
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(sub.Ino))
	sh.kv.Put(row, b[:])
	rows := []string{row}
	// "and update parent inode": bump mtime/size when we hold the parent
	// inode row (large striped directories keep it on another server; the
	// paper folds that update into the coordinator sub-op, so we only apply
	// it when present). Undone by compensation, not before-image.
	if parent, ok := sh.GetInode(sub.Parent); ok {
		prow := inodeRow(sub.Parent)
		parent.Mtime = now
		parent.Size++
		sh.kv.Put(prow, encodeInode(parent))
		rows = append(rows, prow)
		u.adjusts = append(u.adjusts, parentAdjust{dir: sub.Parent, sizeDelta: -1})
	}
	return Result{OK: true, Rows: rows, Undo: u}
}

func (sh *Shard) removeEntry(sub types.SubOp, now uint64) Result {
	row := dentryRow(sub.Parent, sub.Name)
	if _, exists := sh.kv.Get(row); !exists {
		return Result{Err: fmt.Errorf("remove %s: %w", sub.Name, types.ErrNotFound)}
	}
	u := newUndo()
	sh.capture(u, row)
	sh.kv.Delete(row)
	rows := []string{row}
	if parent, ok := sh.GetInode(sub.Parent); ok {
		prow := inodeRow(sub.Parent)
		parent.Mtime = now
		if parent.Size > 0 {
			parent.Size--
		}
		sh.kv.Put(prow, encodeInode(parent))
		rows = append(rows, prow)
		u.adjusts = append(u.adjusts, parentAdjust{dir: sub.Parent, sizeDelta: +1})
	}
	return Result{OK: true, Rows: rows, Undo: u}
}

func (sh *Shard) addInode(sub types.SubOp, now uint64) Result {
	row := inodeRow(sub.Ino)
	if _, exists := sh.kv.Get(row); exists {
		return Result{Err: fmt.Errorf("add inode %d: %w", sub.Ino, types.ErrExists)}
	}
	u := newUndo()
	sh.capture(u, row)
	nlink := uint32(1)
	if sub.Type == types.FileDir {
		nlink = 2
	}
	sh.kv.Put(row, encodeInode(Inode{
		Ino: sub.Ino, Type: sub.Type, Nlink: nlink, Ctime: now, Mtime: now,
	}))
	return Result{OK: true, Rows: []string{row}, Undo: u}
}

func (sh *Shard) decLink(sub types.SubOp, now uint64) Result {
	in, ok := sh.GetInode(sub.Ino)
	if !ok {
		return Result{Err: fmt.Errorf("declink %d: %w", sub.Ino, types.ErrNotFound)}
	}
	if sub.Kind == types.OpRmdir && in.Type == types.FileDir && in.Size > 0 {
		return Result{Err: fmt.Errorf("rmdir %d: %w", sub.Ino, types.ErrNotEmpty)}
	}
	row := inodeRow(sub.Ino)
	u := newUndo()
	sh.capture(u, row)
	dec := uint32(1)
	if in.Type == types.FileDir {
		dec = 2 // dropping "." and the parent link together
	}
	if in.Nlink <= dec {
		sh.kv.Delete(row)
		return Result{OK: true, Rows: []string{row}, Undo: u, Freed: true}
	}
	in.Nlink -= dec
	in.Mtime = now
	sh.kv.Put(row, encodeInode(in))
	return Result{OK: true, Rows: []string{row}, Undo: u}
}

func (sh *Shard) incLink(sub types.SubOp, now uint64) Result {
	in, ok := sh.GetInode(sub.Ino)
	if !ok {
		return Result{Err: fmt.Errorf("inclink %d: %w", sub.Ino, types.ErrNotFound)}
	}
	if in.Type == types.FileDir {
		return Result{Err: fmt.Errorf("inclink %d: %w", sub.Ino, types.ErrIsDir)}
	}
	row := inodeRow(sub.Ino)
	u := newUndo()
	sh.capture(u, row)
	in.Nlink++
	in.Ctime = now
	sh.kv.Put(row, encodeInode(in))
	return Result{OK: true, Rows: []string{row}, Undo: u}
}

func (sh *Shard) readInode(sub types.SubOp) Result {
	in, ok := sh.GetInode(sub.Ino)
	if !ok {
		return Result{Err: fmt.Errorf("stat %d: %w", sub.Ino, types.ErrNotFound)}
	}
	return Result{OK: true, Inode: in}
}

func (sh *Shard) readEntry(sub types.SubOp) Result {
	ino, ok := sh.LookupEntry(sub.Parent, sub.Name)
	if !ok {
		return Result{Err: fmt.Errorf("lookup %s: %w", sub.Name, types.ErrNotFound)}
	}
	return Result{OK: true, Inode: Inode{Ino: ino}}
}

func (sh *Shard) touchInode(sub types.SubOp, now uint64) Result {
	in, ok := sh.GetInode(sub.Ino)
	if !ok {
		return Result{Err: fmt.Errorf("setattr %d: %w", sub.Ino, types.ErrNotFound)}
	}
	row := inodeRow(sub.Ino)
	u := newUndo()
	sh.capture(u, row)
	in.Mtime = now
	sh.kv.Put(row, encodeInode(in))
	return Result{OK: true, Rows: []string{row}, Undo: u}
}

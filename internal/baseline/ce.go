package baseline

import (
	"time"

	"cxfs/internal/namespace"
	"cxfs/internal/node"
	"cxfs/internal/simrt"
	"cxfs/internal/types"
	"cxfs/internal/wal"
	"cxfs/internal/wire"
)

// CEServer implements Central Execution, the Ursa Minor approach (§II.B,
// Fig 1c): when a cross-server operation arrives, the coordinator migrates
// the participant's objects to itself, executes the whole operation locally
// under journaling, migrates the updated objects back, and only then
// answers the client. The previously cited cost — §II.B quotes a 7.5%
// overall slowdown at just 1% cross-server operations — comes from the two
// extra migration round trips and the synchronous writes on both ends.
type CEServer struct {
	*node.Base
	pl    namespace.Placement
	locks *lockTable

	migrateCh map[types.OpID]*simrt.Chan[wire.Msg] // coordinator awaiting rows/acks
	migrated  map[types.OpID][]types.ObjKey        // participant: keys lent out

	// guard suppresses duplicate (retried) client operations.
	guard *dupGuard
}

// NewCEServer builds a CE server.
func NewCEServer(base *node.Base, pl namespace.Placement) *CEServer {
	return &CEServer{
		Base: base, pl: pl,
		locks:     newLockTable(base.Sim),
		migrateCh: make(map[types.OpID]*simrt.Chan[wire.Msg]),
		migrated:  make(map[types.OpID][]types.ObjKey),
		guard:     newDupGuard(),
	}
}

// Start launches the inbox loop and the database checkpointer (CE applies
// synchronously through the journal).
func (s *CEServer) Start() {
	s.Base.Start(s.handle)
	s.KV.StartCheckpointer(10 * time.Second)
}

func (s *CEServer) handle(p *simrt.Proc, m wire.Msg) {
	switch m.Type {
	case wire.MsgOpReq:
		s.coordinate(p, m)
	case wire.MsgMigrateReq:
		s.lendRows(p, m)
	case wire.MsgMigrateResp, wire.MsgMigrateAck:
		if ch := s.migrateCh[m.Op]; ch != nil {
			ch.Send(m)
		}
	case wire.MsgMigrateBack:
		s.reinstallRows(p, m)
	}
}

// coordinate migrates, executes locally, migrates back, responds.
func (s *CEServer) coordinate(p *simrt.Proc, m wire.Msg) {
	op := m.FullOp
	if op.Kind == types.OpReaddir {
		s.ServeReaddir(m)
		return
	}
	if op.Kind.Mutating() {
		if cached, ok := s.guard.cached(op.ID); ok {
			cached.To = m.From
			s.Send(cached)
			return
		}
		if !s.guard.begin(op.ID) {
			return // duplicate of an operation still executing
		}
		defer s.guard.abandon(op.ID)
	}
	reply := wire.Msg{Type: wire.MsgOpResp, To: m.From, Op: op.ID, OK: true}

	if !op.Kind.CrossServer() {
		sub := types.SingleSubOp(op)
		s.ExecCPU(p)
		res := s.Shard.Exec(sub, s.NowNanos())
		reply.OK, reply.Attr = res.OK, res.Inode
		if res.Err != nil {
			reply.Err = res.Err.Error()
		}
		if res.OK && sub.Action.Mutating() {
			s.KV.SyncKeys(p, res.Rows)
		}
		if s.CrashPoint("ce:after-exec", op.ID) {
			return
		}
		if op.Kind.Mutating() {
			s.guard.finish(op.ID, reply)
		}
		s.Send(reply)
		return
	}

	cSub, pSub := types.Split(op)
	part := s.pl.ParticipantFor(op.Ino)
	local := part == s.ID

	keys := cSub.Keys()
	if local {
		keys = append(keys, pSub.Keys()...)
	}
	s.locks.acquire(p, keys)
	defer s.locks.release(keys)

	// Migrate the participant's rows here.
	var migratedRows []wire.Row
	partRows := subRowKeys(pSub)
	if !local {
		ch := simrt.NewChan[wire.Msg](s.Sim)
		s.migrateCh[op.ID] = ch
		s.Send(wire.Msg{Type: wire.MsgMigrateReq, To: part, Op: op.ID, Keys: partRows})
		mr := ch.Recv(p)
		delete(s.migrateCh, op.ID)
		if s.Crashed() {
			return
		}
		migratedRows = mr.Rows
		for _, r := range migratedRows {
			if r.Val != nil {
				s.KV.Put(r.Key, r.Val)
			}
		}
	}

	// Execute the whole operation locally, journaled like a single-server
	// transaction.
	s.ExecCPU(p)
	resP := s.Shard.Exec(pSub, s.NowNanos())
	var resC namespace.Result
	if resP.OK {
		resC = s.Shard.Exec(cSub, s.NowNanos())
		if !resC.OK {
			s.Shard.ApplyUndo(resP.Undo)
		}
	}
	ok := resP.OK && resC.OK
	if ok {
		s.WAL.AppendBatch(p, []wal.Record{
			{Type: wal.RecResult, Op: op.ID, Role: types.RoleCoordinator, OK: true, Sub: cSub, Before: resC.Before, After: resC.After},
			{Type: wal.RecResult, Op: op.ID, Role: types.RoleParticipant, OK: true, Sub: pSub, Before: resP.Before, After: resP.After},
			{Type: wal.RecCommit, Op: op.ID, Role: types.RoleCoordinator},
		})
		if s.Crashed() {
			return
		}
		// The coordinator's own rows persist synchronously.
		s.KV.SyncKeys(p, resC.Rows)
		if s.Crashed() {
			return
		}
	}

	// Migrate the (possibly updated) rows back.
	if !local {
		back := make([]wire.Row, 0, len(partRows))
		for _, key := range partRows {
			if v, okRow := s.KV.Get(key); okRow {
				cp := make([]byte, len(v))
				copy(cp, v)
				back = append(back, wire.Row{Key: key, Val: cp})
			} else {
				back = append(back, wire.Row{Key: key, Val: nil})
			}
			s.KV.Forget(key) // the row goes home; drop the local copy
		}
		ch := simrt.NewChan[wire.Msg](s.Sim)
		s.migrateCh[op.ID] = ch
		s.Send(wire.Msg{Type: wire.MsgMigrateBack, To: part, Op: op.ID, Rows: back})
		ch.Recv(p)
		delete(s.migrateCh, op.ID)
		if s.Crashed() {
			return
		}
	}
	if ok {
		s.WAL.Prune(op.ID)
	}

	if !ok {
		reply.OK = false
		if resP.Err != nil {
			reply.Err = resP.Err.Error()
		} else if resC.Err != nil {
			reply.Err = resC.Err.Error()
		}
	} else {
		reply.Attr = resC.Inode
	}
	s.guard.finish(op.ID, reply)
	s.Send(reply)
}

// lendRows ships the requested rows to the coordinator and locks them here
// until they come back.
func (s *CEServer) lendRows(p *simrt.Proc, m wire.Msg) {
	if _, lent := s.migrated[m.Op]; lent {
		// Retransmitted MigrateReq: the rows are already lent out; resend the
		// current copies without re-acquiring the locks the loan holds.
		rows := make([]wire.Row, 0, len(m.Keys))
		for _, key := range m.Keys {
			if v, ok := s.KV.Get(key); ok {
				cp := make([]byte, len(v))
				copy(cp, v)
				rows = append(rows, wire.Row{Key: key, Val: cp})
			} else {
				rows = append(rows, wire.Row{Key: key, Val: nil})
			}
		}
		s.Send(wire.Msg{Type: wire.MsgMigrateResp, To: m.From, Op: m.Op, Rows: rows})
		return
	}
	// Row-key strings are what travel; the lock table works on ObjKeys, so
	// lock a synthetic per-row key derived from each string.
	objKeys := rowLockKeys(m.Keys)
	s.locks.acquire(p, objKeys)
	s.migrated[m.Op] = objKeys
	rows := make([]wire.Row, 0, len(m.Keys))
	for _, key := range m.Keys {
		if v, ok := s.KV.Get(key); ok {
			cp := make([]byte, len(v))
			copy(cp, v)
			rows = append(rows, wire.Row{Key: key, Val: cp})
		} else {
			rows = append(rows, wire.Row{Key: key, Val: nil})
		}
	}
	s.Send(wire.Msg{Type: wire.MsgMigrateResp, To: m.From, Op: m.Op, Rows: rows})
}

// reinstallRows takes the updated rows back, persists them synchronously,
// and unlocks.
func (s *CEServer) reinstallRows(p *simrt.Proc, m wire.Msg) {
	var dirty []string
	for _, r := range m.Rows {
		if r.Val == nil {
			s.KV.Delete(r.Key)
		} else {
			s.KV.Put(r.Key, r.Val)
		}
		dirty = append(dirty, r.Key)
	}
	s.KV.SyncKeys(p, dirty)
	if s.Crashed() {
		return
	}
	if keys, ok := s.migrated[m.Op]; ok {
		delete(s.migrated, m.Op)
		s.locks.release(keys)
	}
	s.Send(wire.Msg{Type: wire.MsgMigrateAck, To: m.From, Op: m.Op})
}

// subRowKeys returns the kvstore row keys a sub-op touches.
func subRowKeys(sub types.SubOp) []string {
	keys := sub.Keys()
	rows := make([]string, 0, len(keys))
	for _, k := range keys {
		rows = append(rows, namespace.RowKey(k))
	}
	return rows
}

// rowLockKeys adapts row-key strings to lock-table keys.
func rowLockKeys(rows []string) []types.ObjKey {
	out := make([]types.ObjKey, 0, len(rows))
	for _, r := range rows {
		out = append(out, types.ObjKey{Kind: types.ObjInode, Name: r})
	}
	return out
}

// CEDriver is the CE client: like 2PC, one round trip to the coordinator.
type CEDriver struct {
	host  *node.Host
	pl    namespace.Placement
	retry types.RetryPolicy
	observed
}

// NewCEDriver builds a CE driver.
func NewCEDriver(host *node.Host, pl namespace.Placement) *CEDriver {
	return &CEDriver{host: host, pl: pl}
}

// SetRetry installs the per-RPC timeout/retry policy (zero disables).
func (d *CEDriver) SetRetry(rp types.RetryPolicy) { d.retry = rp }

// Do executes one metadata operation through the coordinator.
func (d *CEDriver) Do(p *simrt.Proc, op types.Op) (types.Inode, error) {
	return d.record(d.host, op, func() (types.Inode, error) {
		if !op.Kind.CrossServer() {
			return singleServerOp(p, d.host, d.pl, d.retry, op)
		}
		return localOpCall(p, d.host, op, d.pl.CoordinatorFor(op.Parent, op.Name), d.retry)
	})
}

package core

import (
	"cxfs/internal/simrt"
	"cxfs/internal/types"
)

// Doer is any client-side protocol driver: the Cx Driver or a baseline
// (SE/CE/2PC). Pipelining sits above this interface, so every protocol gets
// the same dispatch mode and the comparison stays fair.
type Doer interface {
	Do(p *simrt.Proc, op types.Op) (types.Inode, error)
}

// Pending is one pipelined operation: its request, and — once Done reports
// true — its outcome. The per-op retry/timeout policy of the underlying
// driver applies unchanged; a Pending can therefore complete with
// types.ErrTimeout like a synchronous call would.
type Pending struct {
	Op   types.Op
	Attr types.Inode
	Err  error
	done bool
}

// Done reports whether the operation has completed. The outcome fields are
// only meaningful afterwards.
func (pe *Pending) Done() bool { return pe.done }

// Pipeline issues up to depth operations concurrently on behalf of one
// client process — the pipelined dispatch mode. Each submitted operation
// runs the driver's full Do path (retries and timeouts intact) in its own
// Proc; Submit applies backpressure once depth operations are in flight.
//
// A Pipeline belongs to a single submitting Proc: Submit, Poll, and Drain
// must all be called from that Proc. Completions are harvested in
// completion order, which is deterministic under the simulation's seed.
type Pipeline struct {
	sim      *simrt.Sim
	d        Doer
	depth    int
	inflight int
	compc    *simrt.Chan[*Pending]
	ready    []*Pending
}

// NewPipeline builds a pipeline of the given depth over a driver. Depth
// values below 1 are clamped to 1 (synchronous dispatch, one op in flight).
func NewPipeline(sim *simrt.Sim, d Doer, depth int) *Pipeline {
	if depth < 1 {
		depth = 1
	}
	return &Pipeline{sim: sim, d: d, depth: depth, compc: simrt.NewChan[*Pending](sim)}
}

// Depth returns the configured in-flight limit.
func (pl *Pipeline) Depth() int { return pl.depth }

// InFlight returns how many submitted operations have not completed yet.
func (pl *Pipeline) InFlight() int { return pl.inflight }

// Submit issues op down the pipeline, blocking only while the pipeline is
// at depth (harvesting completions while it waits). The returned Pending is
// live: poll Done, or collect it later via Poll/Drain.
func (pl *Pipeline) Submit(p *simrt.Proc, op types.Op) *Pending {
	for pl.inflight >= pl.depth {
		pl.harvest(pl.compc.Recv(p))
	}
	pe := &Pending{Op: op}
	pl.inflight++
	pl.sim.Spawn("pipeline-op", func(wp *simrt.Proc) {
		pe.Attr, pe.Err = pl.d.Do(wp, op)
		pe.done = true
		pl.compc.Send(pe)
	})
	return pe
}

func (pl *Pipeline) harvest(pe *Pending) {
	pl.inflight--
	pl.ready = append(pl.ready, pe)
}

// Poll returns every operation that completed since the last Poll/Drain,
// in completion order, without blocking.
func (pl *Pipeline) Poll() []*Pending {
	for {
		pe, ok := pl.compc.TryRecv()
		if !ok {
			break
		}
		pl.harvest(pe)
	}
	return pl.take()
}

// Drain blocks until every in-flight operation completes and returns the
// accumulated completions in completion order.
func (pl *Pipeline) Drain(p *simrt.Proc) []*Pending {
	for pl.inflight > 0 {
		pl.harvest(pl.compc.Recv(p))
	}
	return pl.take()
}

func (pl *Pipeline) take() []*Pending {
	out := pl.ready
	pl.ready = nil
	return out
}

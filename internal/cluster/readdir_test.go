package cluster

import (
	"fmt"
	"testing"

	"cxfs/internal/simrt"
	"cxfs/internal/types"
)

func TestReaddirUnionsStripedPartitions(t *testing.T) {
	for _, proto := range Protocols {
		proto := proto
		t.Run(string(proto), func(t *testing.T) {
			c := MustNew(smallOptions(proto))
			defer c.Shutdown()
			runWorkload(t, c, func(p *simrt.Proc, pr *Process, idx int) {
				if idx != 0 {
					return
				}
				dir, err := pr.Mkdir(p, types.RootInode, "listing")
				if err != nil {
					t.Fatalf("mkdir: %v", err)
				}
				want := map[string]types.InodeID{}
				for j := 0; j < 24; j++ {
					name := fmt.Sprintf("entry-%02d", j)
					ino, err := pr.Create(p, dir, name)
					if err != nil {
						t.Fatalf("create: %v", err)
					}
					want[name] = ino
				}
				// Remove a few so the listing reflects deletions.
				for j := 0; j < 24; j += 6 {
					name := fmt.Sprintf("entry-%02d", j)
					if err := pr.Remove(p, dir, name, want[name]); err != nil {
						t.Fatalf("remove: %v", err)
					}
					delete(want, name)
				}
				entries, err := pr.Readdir(p, dir)
				if err != nil {
					t.Fatalf("readdir: %v", err)
				}
				if len(entries) != len(want) {
					t.Fatalf("%v: %d entries, want %d", proto, len(entries), len(want))
				}
				prev := ""
				for _, e := range entries {
					if e.Name <= prev {
						t.Errorf("entries not sorted: %q after %q", e.Name, prev)
					}
					prev = e.Name
					if want[e.Name] != e.Ino {
						t.Errorf("entry %s -> %d, want %d", e.Name, e.Ino, want[e.Name])
					}
				}
			})
		})
	}
}

func TestReaddirEmptyAndRootDirectories(t *testing.T) {
	c := MustNew(smallOptions(ProtoCx))
	defer c.Shutdown()
	runWorkload(t, c, func(p *simrt.Proc, pr *Process, idx int) {
		if idx != 0 {
			return
		}
		dir, err := pr.Mkdir(p, types.RootInode, "empty")
		if err != nil {
			t.Fatal(err)
		}
		entries, err := pr.Readdir(p, dir)
		if err != nil || len(entries) != 0 {
			t.Errorf("empty dir: %d entries, err=%v", len(entries), err)
		}
		rootEntries, err := pr.Readdir(p, types.RootInode)
		if err != nil || len(rootEntries) != 1 || rootEntries[0].Name != "empty" {
			t.Errorf("root listing: %+v err=%v", rootEntries, err)
		}
	})
}

func TestReportCountsActivity(t *testing.T) {
	c := MustNew(smallOptions(ProtoCx))
	defer c.Shutdown()
	runWorkload(t, c, func(p *simrt.Proc, pr *Process, idx int) {
		for j := 0; j < 10; j++ {
			pr.Create(p, types.RootInode, fmt.Sprintf("rep-%d-%d", idx, j))
		}
	})
	reports := c.Report()
	if len(reports) != c.Opts.Servers {
		t.Fatalf("reports=%d", len(reports))
	}
	var totalMsgs, totalCommits uint64
	for _, r := range reports {
		totalMsgs += r.MsgsHandled
		totalCommits += r.Committed
		if r.Pending != 0 {
			t.Errorf("server %d: %d pending after quiesce", r.Server, r.Pending)
		}
	}
	if totalMsgs == 0 || totalCommits == 0 {
		t.Errorf("empty report: msgs=%d commits=%d", totalMsgs, totalCommits)
	}
	if out := c.ReportTable().String(); len(out) < 100 {
		t.Errorf("report table too short:\n%s", out)
	}
}

package core

import (
	"time"

	"cxfs/internal/simrt"
	"cxfs/internal/types"
	"cxfs/internal/wire"
)

// The leased read path (ROADMAP item 5). A client resolves (dir, name) with
// MsgLookupReq; the dentry's coordinator answers from its shard and stamps a
// read lease: an epoch tying the grant to this server incarnation and a TTL
// bounding how long the client may serve the entry from cache. The server
// remembers the grant in a LeaseTable and, whenever a mutation makes the
// entry active (provisional execution, rename, colocated transaction),
// piggybacks a revocation on the MsgConflictNotify vocabulary — the same
// message the conflict machinery already uses, distinguished by a non-empty
// Path. Correctness does not depend on revocation delivery: a lost
// revocation only lets a client serve the entry until the TTL lapses, and
// the model oracle's staleness bound (internal/model.CheckStalenessBound)
// permits exactly that window. Recovery wipes the table; a rebooted
// server's grants carry a higher lease epoch (Boot()+1), so clients fence
// out entries granted by the previous incarnation.

// leaseTableCap bounds the lease table. Eviction is silent (no revocation):
// a client holding an evicted lease just loses revocation coverage and
// falls back to the TTL bound, the same exposure as a lost message.
const leaseTableCap = 8192

type leaseKey struct {
	dir  types.InodeID
	name string
}

type leaseEntry struct {
	// holders is insertion-ordered so revocation fan-out is deterministic
	// (map iteration order must never leak into the message sequence).
	holders []types.NodeID
	expire  time.Duration // sim time the newest grant lapses
}

// LeaseTable tracks which clients hold read leases on this server's
// directory entries. It is exported so the SE baseline server reuses it for
// the cache-on comparison rows.
type LeaseTable struct {
	cap     int
	entries map[leaseKey]*leaseEntry
	order   []leaseKey // FIFO for capacity eviction
}

// NewLeaseTable builds a lease table bounded at capacity entries.
func NewLeaseTable(capacity int) *LeaseTable {
	return &LeaseTable{cap: capacity, entries: make(map[leaseKey]*leaseEntry)}
}

// Grant records that client holds a lease on (dir, name) until now+ttl.
func (t *LeaseTable) Grant(dir types.InodeID, name string, client types.NodeID, now time.Duration, ttl time.Duration) {
	k := leaseKey{dir: dir, name: name}
	e := t.entries[k]
	if e == nil {
		if len(t.order) >= t.cap {
			drop := t.order[0]
			t.order = t.order[1:]
			delete(t.entries, drop)
		}
		e = &leaseEntry{}
		t.entries[k] = e
		t.order = append(t.order, k)
	}
	held := false
	for _, h := range e.holders {
		if h == client {
			held = true
			break
		}
	}
	if !held {
		e.holders = append(e.holders, client)
	}
	if exp := now + ttl; exp > e.expire {
		e.expire = exp
	}
}

// Revoke forgets every lease on (dir, name) and returns the holders that
// need a revocation notice. Expired grants are returned too — notifying a
// client whose lease already lapsed is harmless.
func (t *LeaseTable) Revoke(dir types.InodeID, name string) []types.NodeID {
	k := leaseKey{dir: dir, name: name}
	e := t.entries[k]
	if e == nil {
		return nil
	}
	delete(t.entries, k)
	for i, ok := range t.order {
		if ok == k {
			t.order = append(t.order[:i:i], t.order[i+1:]...)
			break
		}
	}
	return e.holders
}

// Outstanding returns how many entries currently carry unexpired leases.
func (t *LeaseTable) Outstanding(now time.Duration) int {
	n := 0
	for _, e := range t.entries {
		if e.expire > now {
			n++
		}
	}
	return n
}

// Reset wipes the table (crash recovery: the new incarnation grants with a
// higher lease epoch, and old grants die by epoch fence or TTL).
func (t *LeaseTable) Reset() {
	t.entries = make(map[leaseKey]*leaseEntry)
	t.order = nil
}

// leaseEpoch is the epoch stamped on this incarnation's grants and
// revocations. Boot()+1 keeps epoch 0 meaning "no lease" on the wire.
func (s *Server) leaseEpoch() uint64 { return s.Boot() + 1 }

// lookupSub is the read sub-op a LookupReq conflicts on: the same dentry
// key the mutation path holds active, so a lookup racing an uncommitted
// create/remove blocks behind it (and forces its commitment) instead of
// leasing a provisional value.
func lookupSub(m wire.Msg) types.SubOp {
	return types.SubOp{
		Op: m.Op, Kind: types.OpLookup, Role: types.RoleCoordinator,
		Action: types.ActReadEntry, Parent: m.Dir, Name: m.Path,
	}
}

// handleLookup serves the leased read path: resolve (Dir, Path) against the
// local shard and answer with the inode plus a lease. Negative results are
// leased too (the client may cache the absence). A lookup touching an
// active object parks behind the holder exactly like a sub-op would —
// redispatch re-enters here once the holder commits.
func (s *Server) handleLookup(p *simrt.Proc, m wire.Msg) {
	sub := lookupSub(m)
	if key, ok := conflictKey(sub); ok {
		if holder, held := s.active[key]; held && holder.Proc != sub.Op.Proc {
			lm := m
			lm.Sub = sub
			s.block(lm, holder, 1)
			return
		}
	}
	boot := s.Boot()
	s.ExecCPU(p)
	if s.Gone(boot) {
		return
	}
	s.stats.Lookups++
	in, found := s.Shard.ResolveEntry(m.Dir, m.Path)
	reply := wire.Msg{Type: wire.MsgLookupResp, To: m.From, Op: m.Op,
		OK: found, Dir: m.Dir, Path: m.Path, Attr: in}
	if !found {
		reply.Err = types.ErrNotFound.Error()
	}
	if s.cfg.LeaseTTL > 0 {
		reply.LeaseEpoch = s.leaseEpoch()
		reply.LeaseTTL = s.cfg.LeaseTTL
		s.leases.Grant(m.Dir, m.Path, m.From, s.Sim.Now(), s.cfg.LeaseTTL)
		s.stats.LeasesGranted++
	}
	s.Send(reply)
}

// revokeLeases notifies every lease holder of (dir, name) that the entry is
// changing. Piggybacked on the MsgConflictNotify vocabulary; the client host
// recognizes the revocation by its non-empty Path. Called the moment a
// mutation's provisional execution lands (hold) — before commitment —
// because the old value may be unservable the instant the mutation becomes
// visible to anyone.
func (s *Server) revokeLeases(dir types.InodeID, name string, op types.OpID) {
	holders := s.leases.Revoke(dir, name)
	for _, h := range holders {
		s.stats.LeaseRevocations++
		s.Send(wire.Msg{Type: wire.MsgConflictNotify, To: h, Op: op,
			Dir: dir, Path: name, LeaseEpoch: s.leaseEpoch()})
	}
}

// LeasesOutstanding reports unexpired leased entries (the chaos nemesis
// targets the server holding the most).
func (s *Server) LeasesOutstanding() int {
	return s.leases.Outstanding(s.Sim.Now())
}

package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"cxfs/internal/obs"
	"cxfs/internal/wire"
)

// Real-network transport for the wire codec: the same frames the simulated
// network accounts for, written to actual TCP sockets. The simulation
// remains the substrate for all protocol experiments (virtual time cannot
// span real sockets); this transport is the deployment-facing half — it is
// what a non-simulated metadata service would speak, and the tests prove
// the codec round-trips over real connections with partial reads, large
// batches, and concurrent senders.

// ErrCorruptFrame marks a frame the peer sent that cannot be decoded — a
// length prefix over the limit or a body the codec rejects. It is
// distinguishable (errors.Is) from a clean EOF or a mid-frame disconnect so
// callers can attribute why a connection was dropped.
var ErrCorruptFrame = errors.New("transport: corrupt frame")

// MsgConn frames wire messages over a byte stream. Safe for one concurrent
// reader and one concurrent writer; WriteMsg serializes multiple writers.
type MsgConn struct {
	conn io.ReadWriteCloser
	r    *bufio.Reader
	rbuf []byte // frame body scratch, reused across ReadMsg calls
	wmu  sync.Mutex
	w    *bufio.Writer
}

// NewMsgConn wraps a stream (normally a *net.TCPConn).
func NewMsgConn(c io.ReadWriteCloser) *MsgConn {
	return &MsgConn{conn: c, r: bufio.NewReaderSize(c, 64<<10), w: bufio.NewWriterSize(c, 64<<10)}
}

// WriteMsg encodes and sends one message, flushing the frame. Encoding uses
// a pooled buffer, so the steady-state send path does not allocate; a
// message over the codec's wire limits is rejected here before any bytes
// reach the stream.
func (mc *MsgConn) WriteMsg(m *wire.Msg) error {
	fb := wire.GetBuffer()
	buf, err := wire.EncodeTo(fb.B, m)
	if err != nil {
		wire.PutBuffer(fb)
		return fmt.Errorf("transport: encode: %w", err)
	}
	fb.B = buf
	mc.wmu.Lock()
	_, werr := mc.w.Write(buf)
	if werr == nil {
		werr = mc.w.Flush()
	}
	mc.wmu.Unlock()
	wire.PutBuffer(fb)
	if werr != nil {
		return fmt.Errorf("transport: write: %w", werr)
	}
	return nil
}

// maxFrame bounds a frame so a corrupt length prefix cannot allocate
// unboundedly (CE migrations are the largest legitimate payloads).
const maxFrame = 16 << 20

// ReadMsg reads and decodes one message. A clean connection shutdown
// surfaces as io.EOF; an undecodable frame wraps ErrCorruptFrame; anything
// else is an I/O failure (peer vanished mid-frame, socket error).
//
// The frame body is read into a buffer owned by the connection and reused
// across calls — safe because wire.DecodeBody copies all variable-length
// data out of its input.
func (mc *MsgConn) ReadMsg() (wire.Msg, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(mc.r, hdr[:]); err != nil {
		return wire.Msg{}, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > maxFrame {
		return wire.Msg{}, fmt.Errorf("%w: frame of %d bytes exceeds limit", ErrCorruptFrame, n)
	}
	if uint32(cap(mc.rbuf)) < n {
		mc.rbuf = make([]byte, n)
	}
	buf := mc.rbuf[:n]
	if _, err := io.ReadFull(mc.r, buf); err != nil {
		return wire.Msg{}, fmt.Errorf("transport: short frame: %w", err)
	}
	m, err := wire.DecodeBody(buf)
	if err != nil {
		return wire.Msg{}, fmt.Errorf("%w: %v", ErrCorruptFrame, err)
	}
	return m, nil
}

// Close closes the underlying stream.
func (mc *MsgConn) Close() error { return mc.conn.Close() }

// MsgHandler processes one inbound message and may return a reply to send
// back on the same connection (nil = no reply).
type MsgHandler func(m wire.Msg) *wire.Msg

// MsgServer accepts connections and dispatches frames to a handler — the
// skeleton a real (non-simulated) metadata server would hang its protocol
// logic on.
type MsgServer struct {
	ln      net.Listener
	handler MsgHandler
	nc      *obs.NetCounters // nil = disabled
	wg      sync.WaitGroup

	mu     sync.Mutex
	closed bool
	conns  map[*MsgConn]struct{}
}

// ListenMsg starts a message server on addr (e.g. "127.0.0.1:0").
func ListenMsg(addr string, h MsgHandler) (*MsgServer, error) {
	return ListenMsgObs(addr, h, nil)
}

// ListenMsgObs is ListenMsg with connection-level counters: accepted
// connections and, per close, whether the peer finished cleanly, sent a
// corrupt frame, or vanished mid-stream.
func ListenMsgObs(addr string, h MsgHandler, nc *obs.NetCounters) (*MsgServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen: %w", err)
	}
	s := &MsgServer{ln: ln, handler: h, nc: nc, conns: make(map[*MsgConn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound address.
func (s *MsgServer) Addr() string { return s.ln.Addr().String() }

func (s *MsgServer) acceptLoop() {
	defer s.wg.Done()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		mc := NewMsgConn(c)
		s.nc.ConnAccepted()
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			mc.Close()
			return
		}
		s.conns[mc] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serve(mc)
	}
}

func (s *MsgServer) serve(mc *MsgConn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, mc)
		s.mu.Unlock()
		mc.Close()
	}()
	for {
		m, err := mc.ReadMsg()
		if err != nil {
			// Attribute the close: a clean EOF is the peer hanging up
			// between frames; a corrupt frame is a protocol violation worth
			// alerting on; everything else is the peer (or our own Close)
			// tearing the socket down mid-stream.
			switch {
			case err == io.EOF:
				s.nc.CleanClose()
			case errors.Is(err, ErrCorruptFrame):
				s.nc.CorruptFrame()
			case errors.Is(err, net.ErrClosed):
				// our own Close() tore the socket down; not the peer's fault
			default:
				s.nc.AbruptClose()
			}
			return
		}
		if reply := s.handler(m); reply != nil {
			if err := mc.WriteMsg(reply); err != nil {
				s.nc.WriteError()
				return
			}
		}
	}
}

// Close stops accepting, closes every connection, and waits for the
// handler goroutines to drain.
func (s *MsgServer) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	conns := make([]*MsgConn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	s.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
}

// DialMsg connects to a message server.
func DialMsg(addr string) (*MsgConn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial: %w", err)
	}
	return NewMsgConn(c), nil
}

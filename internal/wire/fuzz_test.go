package wire

import (
	"reflect"
	"testing"
	"time"

	"cxfs/internal/types"
)

// seedMsgs returns one representative message per MsgType, so the fuzz
// corpus starts from every frame layout the protocols actually produce.
func seedMsgs() []Msg {
	id := func(seq uint64) types.OpID {
		return types.OpID{Proc: types.ProcID{Client: 101, Index: 2}, Seq: seq}
	}
	sub := types.SubOp{
		Op: id(7), Kind: types.OpCreate, Role: types.RoleCoordinator,
		Action: types.ActInsertEntry, Parent: 1, Name: "f0001", Ino: 42,
		Type: types.FileRegular,
	}
	full := types.Op{
		ID: id(7), Kind: types.OpRename, Parent: 1, Name: "old", Ino: 42,
		Type: types.FileRegular, NewParent: 2, NewName: "new",
	}
	return []Msg{
		{Type: MsgInvalid},
		{Type: MsgSubOpReq, From: 101, To: 0, Op: id(1), ReplyProc: id(1).Proc, Sub: sub, Peer: 3},
		{Type: MsgSubOpResp, From: 0, To: 101, Op: id(1), OK: true, Hint: id(9), Epoch: 3,
			Attr: types.Inode{Ino: 42, Type: types.FileRegular, Nlink: 1, Mtime: 5}},
		{Type: MsgOpReq, From: 101, To: 0, Op: id(2), FullOp: full, Peer: 1},
		{Type: MsgOpResp, From: 0, To: 101, Op: id(2), Err: "exists"},
		{Type: MsgLCom, From: 101, To: 0, Op: id(3)},
		{Type: MsgAllNo, From: 0, To: 101, Op: id(3)},
		{Type: MsgClear, From: 0, To: 1, Op: id(4), Sub: sub},
		{Type: MsgVote, From: 0, To: 1, Ops: []types.OpID{id(1), id(2)}, Enforce: []types.OpID{id(3)}},
		{Type: MsgVoteResp, From: 1, To: 0, Votes: []Vote{{Op: id(1), OK: true}, {Op: id(2)}}},
		{Type: MsgCommitReq, From: 0, To: 1, Decisions: []Decision{{Op: id(1), Commit: true}, {Op: id(2)}}},
		{Type: MsgAck, From: 1, To: 0, Ops: []types.OpID{id(1)}},
		{Type: MsgConflictNotify, From: 1, To: 0, Op: id(5), Hint: id(6)},
		{Type: MsgMigrateReq, From: 0, To: 1, Keys: []string{"i/42", "d/1/f0001"}},
		{Type: MsgMigrateResp, From: 1, To: 0, Rows: []Row{{Key: "i/42", Val: []byte{1, 2, 3}}}},
		{Type: MsgMigrateBack, From: 0, To: 1, Rows: []Row{{Key: "i/42", Val: []byte{4}}}},
		{Type: MsgMigrateAck, From: 1, To: 0},
		{Type: MsgPing, From: 0, To: 1},
		{Type: MsgPong, From: 1, To: 0},
		{Type: MsgLookupReq, From: 101, To: 0, Op: id(8), ReplyProc: id(8).Proc, Dir: 1, Path: "f0001"},
		{Type: MsgLookupResp, From: 0, To: 101, Op: id(8), OK: true, Dir: 1, Path: "f0001",
			Attr:       types.Inode{Ino: 42, Type: types.FileRegular, Nlink: 1, Mtime: 5},
			LeaseEpoch: 2, LeaseTTL: 50 * time.Millisecond},
	}
}

// FuzzDecodeBody hammers the payload decoder with mutated frames. The
// invariants: never panic; an accepted body re-encodes (decode is total
// over accepted frames, so the message must pass Validate); Size agrees
// with the re-encoded length; and one decode/encode round normalizes —
// decoding the re-encoding yields the identical message. Byte-exact
// re-encoding is NOT required because booleans are non-canonical on the
// wire (any non-zero byte decodes as true).
func FuzzDecodeBody(f *testing.F) {
	for _, m := range seedMsgs() {
		m := m
		buf, err := Encode(&m)
		if err != nil {
			f.Fatalf("seed %v: %v", m.Type, err)
		}
		f.Add(buf[4:])
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		m, err := DecodeBody(body)
		if err != nil {
			return
		}
		re, err := Encode(&m)
		if err != nil {
			t.Fatalf("decoded message fails re-encode: %v", err)
		}
		if int64(len(re)) != Size(&m) {
			t.Fatalf("Size=%d disagrees with encoded length %d", Size(&m), len(re))
		}
		m2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-encoded frame fails decode: %v", err)
		}
		if !reflect.DeepEqual(m, m2) {
			t.Fatalf("decode/encode does not normalize:\n first  %+v\n second %+v", m, m2)
		}
	})
}

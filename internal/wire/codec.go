package wire

import (
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"cxfs/internal/types"
)

// Frame format (little endian):
//
//	u32 payload length
//	payload: tagged fields as laid out by appendBody
//
// The codec is total over the Msg struct: it encodes every field that can
// be non-zero for the message's type, and Size(m) == len(Encode(m)) for
// every message that passes Validate. Decode(Encode(m)) == m for all valid
// messages (tested with testing/quick). The simulated network charges
// transfer time using Size; the TCP transport writes these exact bytes.
//
// Strings carry a u16 length prefix and batches a u16 count, so a name of
// 64KiB or a batch of 65536 entries cannot be represented. Validate (run
// by Encode and EncodeTo) rejects such messages instead of silently
// wrapping the prefix around.

// Codec limits implied by the u16 length/count prefixes.
const (
	// MaxString bounds every length-prefixed string field (names, row
	// keys, error text).
	MaxString = 1<<16 - 1
	// MaxBatch bounds every batched repeated field (Ops, Enforce, Votes,
	// Decisions, Rows, Keys).
	MaxBatch = 1<<16 - 1
)

// Validate reports whether m fits the codec's length prefixes. Encode and
// EncodeTo call it; protocol layers can call it early to reject oversized
// requests at the edge instead of at serialization time.
func Validate(m *Msg) error {
	if len(m.Sub.Name) > MaxString {
		return fmt.Errorf("wire: sub-op name of %d bytes exceeds %d", len(m.Sub.Name), MaxString)
	}
	if len(m.FullOp.Name) > MaxString {
		return fmt.Errorf("wire: op name of %d bytes exceeds %d", len(m.FullOp.Name), MaxString)
	}
	if len(m.FullOp.NewName) > MaxString {
		return fmt.Errorf("wire: op new-name of %d bytes exceeds %d", len(m.FullOp.NewName), MaxString)
	}
	if len(m.Err) > MaxString {
		return fmt.Errorf("wire: error text of %d bytes exceeds %d", len(m.Err), MaxString)
	}
	if len(m.Path) > MaxString {
		return fmt.Errorf("wire: lookup path of %d bytes exceeds %d", len(m.Path), MaxString)
	}
	if len(m.Ops) > MaxBatch {
		return fmt.Errorf("wire: %d ops exceed batch limit %d", len(m.Ops), MaxBatch)
	}
	if len(m.Enforce) > MaxBatch {
		return fmt.Errorf("wire: %d enforce entries exceed batch limit %d", len(m.Enforce), MaxBatch)
	}
	if len(m.Votes) > MaxBatch {
		return fmt.Errorf("wire: %d votes exceed batch limit %d", len(m.Votes), MaxBatch)
	}
	if len(m.Decisions) > MaxBatch {
		return fmt.Errorf("wire: %d decisions exceed batch limit %d", len(m.Decisions), MaxBatch)
	}
	if len(m.Rows) > MaxBatch {
		return fmt.Errorf("wire: %d rows exceed batch limit %d", len(m.Rows), MaxBatch)
	}
	if len(m.Keys) > MaxBatch {
		return fmt.Errorf("wire: %d keys exceed batch limit %d", len(m.Keys), MaxBatch)
	}
	for i := range m.Rows {
		if len(m.Rows[i].Key) > MaxString {
			return fmt.Errorf("wire: row key of %d bytes exceeds %d", len(m.Rows[i].Key), MaxString)
		}
	}
	for i := range m.Keys {
		if len(m.Keys[i]) > MaxString {
			return fmt.Errorf("wire: key of %d bytes exceeds %d", len(m.Keys[i]), MaxString)
		}
	}
	return nil
}

type encoder struct{ b []byte }

func (e *encoder) u8(v uint8) { e.b = append(e.b, v) }
func (e *encoder) boolean(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}
func (e *encoder) u16(v uint16) { e.b = binary.LittleEndian.AppendUint16(e.b, v) }
func (e *encoder) u32(v uint32) { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *encoder) u64(v uint64) { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *encoder) str(s string) {
	e.u16(uint16(len(s)))
	e.b = append(e.b, s...)
}
func (e *encoder) bytes(v []byte) {
	e.u32(uint32(len(v)))
	e.b = append(e.b, v...)
}
func (e *encoder) opID(id types.OpID) {
	e.u32(uint32(id.Proc.Client))
	e.u32(uint32(id.Proc.Index))
	e.u64(id.Seq)
}
func (e *encoder) procID(id types.ProcID) {
	e.u32(uint32(id.Client))
	e.u32(uint32(id.Index))
}
func (e *encoder) subOp(s types.SubOp) {
	e.opID(s.Op)
	e.u8(uint8(s.Kind))
	e.u8(uint8(s.Role))
	e.u8(uint8(s.Action))
	e.u64(uint64(s.Parent))
	e.str(s.Name)
	e.u64(uint64(s.Ino))
	e.u8(uint8(s.Type))
}
func (e *encoder) op(o types.Op) {
	e.opID(o.ID)
	e.u8(uint8(o.Kind))
	e.u64(uint64(o.Parent))
	e.str(o.Name)
	e.u64(uint64(o.Ino))
	e.u8(uint8(o.Type))
	e.u64(uint64(o.NewParent))
	e.str(o.NewName)
}
func (e *encoder) inode(in types.Inode) {
	e.u64(uint64(in.Ino))
	e.u8(uint8(in.Type))
	e.u32(in.Nlink)
	e.u64(in.Size)
	e.u64(in.Ctime)
	e.u64(in.Mtime)
}

// zeroField backs the error-path reads of a failed decoder: once the first
// field fails, every later fixed-width read returns a view of this shared
// zero buffer instead of allocating. Callers only ever read from it.
var zeroField [8]byte

type decoder struct {
	b   []byte
	pos int
	err error
}

func (d *decoder) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("wire: truncated %s at %d", what, d.pos)
	}
}
func (d *decoder) take(n int) []byte {
	if d.err == nil && d.pos+n <= len(d.b) {
		v := d.b[d.pos : d.pos+n]
		d.pos += n
		return v
	}
	d.fail("field")
	if n <= len(zeroField) {
		return zeroField[:n]
	}
	return nil
}
func (d *decoder) u8() uint8     { return d.take(1)[0] }
func (d *decoder) boolean() bool { return d.u8() != 0 }
func (d *decoder) u16() uint16   { return binary.LittleEndian.Uint16(d.take(2)) }
func (d *decoder) u32() uint32   { return binary.LittleEndian.Uint32(d.take(4)) }
func (d *decoder) u64() uint64   { return binary.LittleEndian.Uint64(d.take(8)) }
func (d *decoder) str() string {
	n := int(d.u16())
	if d.err != nil || d.pos+n > len(d.b) {
		d.fail("string")
		return ""
	}
	s := string(d.b[d.pos : d.pos+n])
	d.pos += n
	return s
}
func (d *decoder) bytes() []byte {
	n := int(d.u32())
	if d.err != nil || d.pos+n > len(d.b) {
		d.fail("bytes")
		return nil
	}
	v := make([]byte, n)
	copy(v, d.b[d.pos:d.pos+n])
	d.pos += n
	return v
}

// count reads a batch count and sanity-checks it against the bytes left:
// each element encodes to at least elemMin bytes, so a count that cannot
// fit is a corrupt frame. Failing here keeps a flipped count byte from
// allocating a 65535-element slice before the per-element reads fail.
func (d *decoder) count(elemMin int) int {
	n := int(d.u16())
	if d.err != nil {
		return 0
	}
	if n*elemMin > len(d.b)-d.pos {
		d.fail("batch count")
		return 0
	}
	return n
}

func (d *decoder) opID() types.OpID {
	var id types.OpID
	id.Proc.Client = types.NodeID(d.u32())
	id.Proc.Index = int32(d.u32())
	id.Seq = d.u64()
	return id
}
func (d *decoder) procID() types.ProcID {
	var id types.ProcID
	id.Client = types.NodeID(d.u32())
	id.Index = int32(d.u32())
	return id
}
func (d *decoder) subOp() types.SubOp {
	var s types.SubOp
	s.Op = d.opID()
	s.Kind = types.OpKind(d.u8())
	s.Role = types.Role(d.u8())
	s.Action = types.SubOpAction(d.u8())
	s.Parent = types.InodeID(d.u64())
	s.Name = d.str()
	s.Ino = types.InodeID(d.u64())
	s.Type = types.FileType(d.u8())
	return s
}
func (d *decoder) op() types.Op {
	var o types.Op
	o.ID = d.opID()
	o.Kind = types.OpKind(d.u8())
	o.Parent = types.InodeID(d.u64())
	o.Name = d.str()
	o.Ino = types.InodeID(d.u64())
	o.Type = types.FileType(d.u8())
	o.NewParent = types.InodeID(d.u64())
	o.NewName = d.str()
	return o
}
func (d *decoder) inode() types.Inode {
	var in types.Inode
	in.Ino = types.InodeID(d.u64())
	in.Type = types.FileType(d.u8())
	in.Nlink = d.u32()
	in.Size = d.u64()
	in.Ctime = d.u64()
	in.Mtime = d.u64()
	return in
}

// appendMsg appends m's framed encoding to buf. Callers have validated m.
func appendMsg(buf []byte, m *Msg) []byte {
	start := len(buf)
	e := encoder{b: append(buf, 0, 0, 0, 0)}
	e.u8(uint8(m.Type))
	e.u32(uint32(m.From))
	e.u32(uint32(m.To))
	e.opID(m.Op)
	e.procID(m.ReplyProc)
	e.subOp(m.Sub)
	e.op(m.FullOp)
	e.u32(uint32(m.Peer))
	e.boolean(m.OK)
	e.str(m.Err)
	e.opID(m.Hint)
	e.u32(m.Epoch)
	e.inode(m.Attr)
	e.u64(uint64(m.Dir))
	e.str(m.Path)
	e.u64(m.LeaseEpoch)
	e.u64(uint64(m.LeaseTTL))
	e.u16(uint16(len(m.Ops)))
	for _, op := range m.Ops {
		e.opID(op)
	}
	e.u16(uint16(len(m.Enforce)))
	for _, op := range m.Enforce {
		e.opID(op)
	}
	e.u16(uint16(len(m.Votes)))
	for _, v := range m.Votes {
		e.opID(v.Op)
		e.boolean(v.OK)
	}
	e.u16(uint16(len(m.Decisions)))
	for _, dc := range m.Decisions {
		e.opID(dc.Op)
		e.boolean(dc.Commit)
	}
	e.u16(uint16(len(m.Rows)))
	for _, r := range m.Rows {
		e.str(r.Key)
		e.bytes(r.Val)
	}
	e.u16(uint16(len(m.Keys)))
	for _, k := range m.Keys {
		e.str(k)
	}
	binary.LittleEndian.PutUint32(e.b[start:start+4], uint32(len(e.b)-start-4))
	return e.b
}

// Encode serializes m with its length frame into a fresh buffer. It fails
// if any string or batch field exceeds the codec's u16 prefixes.
func Encode(m *Msg) ([]byte, error) {
	if err := Validate(m); err != nil {
		return nil, err
	}
	return appendMsg(make([]byte, 0, Size(m)), m), nil
}

// EncodeTo appends m's framed encoding to buf and returns the extended
// slice, allocating only if buf lacks capacity. Combined with the Buffer
// pool this makes the send path allocation-free in steady state.
func EncodeTo(buf []byte, m *Msg) ([]byte, error) {
	if err := Validate(m); err != nil {
		return buf, err
	}
	return appendMsg(buf, m), nil
}

// Buffer is a pooled frame-encoding scratch buffer.
type Buffer struct{ B []byte }

// bufferPool recycles frame buffers across WriteMsg calls; 512 bytes covers
// the common single-op messages without a regrow.
var bufferPool = sync.Pool{New: func() any { return &Buffer{B: make([]byte, 0, 512)} }}

// GetBuffer takes a scratch buffer from the pool (length 0).
func GetBuffer() *Buffer {
	b := bufferPool.Get().(*Buffer)
	b.B = b.B[:0]
	return b
}

// PutBuffer returns a buffer to the pool. Oversized buffers (a huge CE
// migration frame) are dropped instead of pinning their backing arrays.
func PutBuffer(b *Buffer) {
	if cap(b.B) > 1<<20 {
		return
	}
	bufferPool.Put(b)
}

// Decode parses one framed message.
func Decode(buf []byte) (Msg, error) {
	if len(buf) < 4 {
		return Msg{}, fmt.Errorf("wire: frame too short")
	}
	if int(binary.LittleEndian.Uint32(buf[0:4])) != len(buf)-4 {
		return Msg{}, fmt.Errorf("wire: frame length mismatch")
	}
	return DecodeBody(buf[4:])
}

// DecodeBody parses a message payload without its 4-byte length frame.
// Stream transports that have already consumed the frame header decode
// the payload in place instead of re-assembling the full frame. The
// returned Msg shares no memory with body: strings and byte fields are
// copied out, so callers may reuse the buffer for the next frame.
func DecodeBody(body []byte) (Msg, error) {
	var m Msg
	d := decoder{b: body}
	m.Type = MsgType(d.u8())
	m.From = types.NodeID(d.u32())
	m.To = types.NodeID(d.u32())
	m.Op = d.opID()
	m.ReplyProc = d.procID()
	m.Sub = d.subOp()
	m.FullOp = d.op()
	m.Peer = types.NodeID(d.u32())
	m.OK = d.boolean()
	m.Err = d.str()
	m.Hint = d.opID()
	m.Epoch = d.u32()
	m.Attr = d.inode()
	m.Dir = types.InodeID(d.u64())
	m.Path = d.str()
	m.LeaseEpoch = d.u64()
	m.LeaseTTL = time.Duration(d.u64())
	if n := d.count(16); n > 0 {
		m.Ops = make([]types.OpID, n)
		for i := range m.Ops {
			m.Ops[i] = d.opID()
		}
	}
	if n := d.count(16); n > 0 {
		m.Enforce = make([]types.OpID, n)
		for i := range m.Enforce {
			m.Enforce[i] = d.opID()
		}
	}
	if n := d.count(17); n > 0 {
		m.Votes = make([]Vote, n)
		for i := range m.Votes {
			m.Votes[i].Op = d.opID()
			m.Votes[i].OK = d.boolean()
		}
	}
	if n := d.count(17); n > 0 {
		m.Decisions = make([]Decision, n)
		for i := range m.Decisions {
			m.Decisions[i].Op = d.opID()
			m.Decisions[i].Commit = d.boolean()
		}
	}
	if n := d.count(6); n > 0 { // min row: empty key (2) + empty val (4)
		m.Rows = make([]Row, n)
		for i := range m.Rows {
			m.Rows[i].Key = d.str()
			m.Rows[i].Val = d.bytes()
		}
	}
	if n := d.count(2); n > 0 { // min key: empty string (2)
		m.Keys = make([]string, n)
		for i := range m.Keys {
			m.Keys[i] = d.str()
		}
	}
	if d.err != nil {
		return m, d.err
	}
	if d.pos != len(body) {
		return m, fmt.Errorf("wire: %d trailing bytes", len(body)-d.pos)
	}
	return m, nil
}

// Size returns the encoded length of m including the frame header. The
// simulated network charges transfer time against this.
func Size(m *Msg) int64 {
	// Fixed part.
	n := 4 + // frame
		1 + 4 + 4 + // type, from, to
		16 + // op id
		8 + // reply proc
		(16 + 1 + 1 + 1 + 8 + 2 + len(m.Sub.Name) + 8 + 1) + // sub-op
		(16 + 1 + 8 + 2 + len(m.FullOp.Name) + 8 + 1 + 8 + 2 + len(m.FullOp.NewName)) + // full op
		4 + 1 + // peer, ok
		2 + len(m.Err) +
		16 + 4 + // hint, epoch
		37 + // inode
		8 + 2 + len(m.Path) + 8 + 8 + // dir, path, lease epoch, lease ttl
		2 + len(m.Ops)*16 +
		2 + len(m.Enforce)*16 +
		2 + len(m.Votes)*17 +
		2 + len(m.Decisions)*17 +
		2 + 2 // rows, keys counts
	for _, r := range m.Rows {
		n += 2 + len(r.Key) + 4 + len(r.Val)
	}
	for _, k := range m.Keys {
		n += 2 + len(k)
	}
	return int64(n)
}

package wire

import (
	"encoding/binary"
	"fmt"

	"cxfs/internal/types"
)

// Frame format (little endian):
//
//	u32 payload length
//	payload: tagged fields as laid out by encodeBody
//
// The codec is total over the Msg struct: it encodes every field that can
// be non-zero for the message's type, and Size(m) == len(Encode(m)).
// Decode(Encode(m)) == m for all valid messages (tested with
// testing/quick). The simulated network charges transfer time using Size;
// the TCP transport writes these exact bytes.

type encoder struct{ b []byte }

func (e *encoder) u8(v uint8) { e.b = append(e.b, v) }
func (e *encoder) boolean(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}
func (e *encoder) u16(v uint16) { e.b = binary.LittleEndian.AppendUint16(e.b, v) }
func (e *encoder) u32(v uint32) { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *encoder) u64(v uint64) { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *encoder) str(s string) {
	e.u16(uint16(len(s)))
	e.b = append(e.b, s...)
}
func (e *encoder) bytes(v []byte) {
	e.u32(uint32(len(v)))
	e.b = append(e.b, v...)
}
func (e *encoder) opID(id types.OpID) {
	e.u32(uint32(id.Proc.Client))
	e.u32(uint32(id.Proc.Index))
	e.u64(id.Seq)
}
func (e *encoder) procID(id types.ProcID) {
	e.u32(uint32(id.Client))
	e.u32(uint32(id.Index))
}
func (e *encoder) subOp(s types.SubOp) {
	e.opID(s.Op)
	e.u8(uint8(s.Kind))
	e.u8(uint8(s.Role))
	e.u8(uint8(s.Action))
	e.u64(uint64(s.Parent))
	e.str(s.Name)
	e.u64(uint64(s.Ino))
	e.u8(uint8(s.Type))
}
func (e *encoder) op(o types.Op) {
	e.opID(o.ID)
	e.u8(uint8(o.Kind))
	e.u64(uint64(o.Parent))
	e.str(o.Name)
	e.u64(uint64(o.Ino))
	e.u8(uint8(o.Type))
	e.u64(uint64(o.NewParent))
	e.str(o.NewName)
}
func (e *encoder) inode(in types.Inode) {
	e.u64(uint64(in.Ino))
	e.u8(uint8(in.Type))
	e.u32(in.Nlink)
	e.u64(in.Size)
	e.u64(in.Ctime)
	e.u64(in.Mtime)
}

type decoder struct {
	b   []byte
	pos int
	err error
}

func (d *decoder) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("wire: truncated %s at %d", what, d.pos)
	}
}
func (d *decoder) take(n int) []byte {
	if d.err != nil || d.pos+n > len(d.b) {
		d.fail("field")
		return make([]byte, n)
	}
	v := d.b[d.pos : d.pos+n]
	d.pos += n
	return v
}
func (d *decoder) u8() uint8     { return d.take(1)[0] }
func (d *decoder) boolean() bool { return d.u8() != 0 }
func (d *decoder) u16() uint16   { return binary.LittleEndian.Uint16(d.take(2)) }
func (d *decoder) u32() uint32   { return binary.LittleEndian.Uint32(d.take(4)) }
func (d *decoder) u64() uint64   { return binary.LittleEndian.Uint64(d.take(8)) }
func (d *decoder) str() string   { n := int(d.u16()); return string(d.take(n)) }
func (d *decoder) bytes() []byte {
	n := int(d.u32())
	if d.err != nil || d.pos+n > len(d.b) {
		d.fail("bytes")
		return nil
	}
	v := make([]byte, n)
	copy(v, d.b[d.pos:d.pos+n])
	d.pos += n
	return v
}
func (d *decoder) opID() types.OpID {
	var id types.OpID
	id.Proc.Client = types.NodeID(d.u32())
	id.Proc.Index = int32(d.u32())
	id.Seq = d.u64()
	return id
}
func (d *decoder) procID() types.ProcID {
	var id types.ProcID
	id.Client = types.NodeID(d.u32())
	id.Index = int32(d.u32())
	return id
}
func (d *decoder) subOp() types.SubOp {
	var s types.SubOp
	s.Op = d.opID()
	s.Kind = types.OpKind(d.u8())
	s.Role = types.Role(d.u8())
	s.Action = types.SubOpAction(d.u8())
	s.Parent = types.InodeID(d.u64())
	s.Name = d.str()
	s.Ino = types.InodeID(d.u64())
	s.Type = types.FileType(d.u8())
	return s
}
func (d *decoder) op() types.Op {
	var o types.Op
	o.ID = d.opID()
	o.Kind = types.OpKind(d.u8())
	o.Parent = types.InodeID(d.u64())
	o.Name = d.str()
	o.Ino = types.InodeID(d.u64())
	o.Type = types.FileType(d.u8())
	o.NewParent = types.InodeID(d.u64())
	o.NewName = d.str()
	return o
}
func (d *decoder) inode() types.Inode {
	var in types.Inode
	in.Ino = types.InodeID(d.u64())
	in.Type = types.FileType(d.u8())
	in.Nlink = d.u32()
	in.Size = d.u64()
	in.Ctime = d.u64()
	in.Mtime = d.u64()
	return in
}

// Encode serializes m with its length frame.
func Encode(m *Msg) []byte {
	e := encoder{b: make([]byte, 4, 64)}
	e.u8(uint8(m.Type))
	e.u32(uint32(m.From))
	e.u32(uint32(m.To))
	e.opID(m.Op)
	e.procID(m.ReplyProc)
	e.subOp(m.Sub)
	e.op(m.FullOp)
	e.u32(uint32(m.Peer))
	e.boolean(m.OK)
	e.str(m.Err)
	e.opID(m.Hint)
	e.u32(m.Epoch)
	e.inode(m.Attr)
	e.u16(uint16(len(m.Ops)))
	for _, op := range m.Ops {
		e.opID(op)
	}
	e.u16(uint16(len(m.Enforce)))
	for _, op := range m.Enforce {
		e.opID(op)
	}
	e.u16(uint16(len(m.Votes)))
	for _, v := range m.Votes {
		e.opID(v.Op)
		e.boolean(v.OK)
	}
	e.u16(uint16(len(m.Decisions)))
	for _, dc := range m.Decisions {
		e.opID(dc.Op)
		e.boolean(dc.Commit)
	}
	e.u16(uint16(len(m.Rows)))
	for _, r := range m.Rows {
		e.str(r.Key)
		e.bytes(r.Val)
	}
	e.u16(uint16(len(m.Keys)))
	for _, k := range m.Keys {
		e.str(k)
	}
	binary.LittleEndian.PutUint32(e.b[0:4], uint32(len(e.b)-4))
	return e.b
}

// Decode parses one framed message.
func Decode(buf []byte) (Msg, error) {
	if len(buf) < 4 {
		return Msg{}, fmt.Errorf("wire: frame too short")
	}
	if int(binary.LittleEndian.Uint32(buf[0:4])) != len(buf)-4 {
		return Msg{}, fmt.Errorf("wire: frame length mismatch")
	}
	return DecodeBody(buf[4:])
}

// DecodeBody parses a message payload without its 4-byte length frame.
// Stream transports that have already consumed the frame header decode
// the payload in place instead of re-assembling the full frame.
func DecodeBody(body []byte) (Msg, error) {
	var m Msg
	d := decoder{b: body}
	m.Type = MsgType(d.u8())
	m.From = types.NodeID(d.u32())
	m.To = types.NodeID(d.u32())
	m.Op = d.opID()
	m.ReplyProc = d.procID()
	m.Sub = d.subOp()
	m.FullOp = d.op()
	m.Peer = types.NodeID(d.u32())
	m.OK = d.boolean()
	m.Err = d.str()
	m.Hint = d.opID()
	m.Epoch = d.u32()
	m.Attr = d.inode()
	if n := int(d.u16()); n > 0 {
		m.Ops = make([]types.OpID, n)
		for i := range m.Ops {
			m.Ops[i] = d.opID()
		}
	}
	if n := int(d.u16()); n > 0 {
		m.Enforce = make([]types.OpID, n)
		for i := range m.Enforce {
			m.Enforce[i] = d.opID()
		}
	}
	if n := int(d.u16()); n > 0 {
		m.Votes = make([]Vote, n)
		for i := range m.Votes {
			m.Votes[i].Op = d.opID()
			m.Votes[i].OK = d.boolean()
		}
	}
	if n := int(d.u16()); n > 0 {
		m.Decisions = make([]Decision, n)
		for i := range m.Decisions {
			m.Decisions[i].Op = d.opID()
			m.Decisions[i].Commit = d.boolean()
		}
	}
	if n := int(d.u16()); n > 0 {
		m.Rows = make([]Row, n)
		for i := range m.Rows {
			m.Rows[i].Key = d.str()
			m.Rows[i].Val = d.bytes()
		}
	}
	if n := int(d.u16()); n > 0 {
		m.Keys = make([]string, n)
		for i := range m.Keys {
			m.Keys[i] = d.str()
		}
	}
	if d.err != nil {
		return m, d.err
	}
	if d.pos != len(body) {
		return m, fmt.Errorf("wire: %d trailing bytes", len(body)-d.pos)
	}
	return m, nil
}

// Size returns the encoded length of m including the frame header. The
// simulated network charges transfer time against this.
func Size(m *Msg) int64 {
	// Fixed part.
	n := 4 + // frame
		1 + 4 + 4 + // type, from, to
		16 + // op id
		8 + // reply proc
		(16 + 1 + 1 + 1 + 8 + 2 + len(m.Sub.Name) + 8 + 1) + // sub-op
		(16 + 1 + 8 + 2 + len(m.FullOp.Name) + 8 + 1 + 8 + 2 + len(m.FullOp.NewName)) + // full op
		4 + 1 + // peer, ok
		2 + len(m.Err) +
		16 + 4 + // hint, epoch
		37 + // inode
		2 + len(m.Ops)*16 +
		2 + len(m.Enforce)*16 +
		2 + len(m.Votes)*17 +
		2 + len(m.Decisions)*17 +
		2 + 2 // rows, keys counts
	for _, r := range m.Rows {
		n += 2 + len(r.Key) + 4 + len(r.Val)
	}
	for _, k := range m.Keys {
		n += 2 + len(k)
	}
	return int64(n)
}

package model

import (
	"strings"
	"testing"
	"time"

	"cxfs/internal/types"
)

// Shorthand builders for staleness histories. Times are plain millisecond
// counts; the bound only compares them, never interprets them.
func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

func sbCreate(name string, ino types.InodeID, issued, at int, out Outcome) Op {
	return Op{Worker: 0, Kind: types.OpCreate, Name: name, Ino: ino,
		Outcome: out, Issued: ms(issued), At: ms(at)}
}

func sbRemove(name string, issued, at int, out Outcome) Op {
	return Op{Worker: 0, Kind: types.OpRemove, Name: name,
		Outcome: out, Issued: ms(issued), At: ms(at)}
}

func cachedHit(name string, saw types.InodeID, grant, at int) Op {
	return Op{Worker: 1, Kind: types.OpLookup, Name: name, Outcome: OK,
		Found: true, SawIno: saw, Cached: true, Grant: ms(grant),
		Issued: ms(at), At: ms(at)}
}

func cachedMiss(name string, grant, at int) Op {
	return Op{Worker: 1, Kind: types.OpLookup, Name: name,
		Outcome: FailedNotFound, Cached: true, Grant: ms(grant),
		Issued: ms(at), At: ms(at)}
}

func sbWantClean(t *testing.T, hist []Op) {
	t.Helper()
	if bad := CheckStalenessBound(hist); len(bad) != 0 {
		t.Errorf("violations on a legal history: %v", bad)
	}
}

func sbWantViolation(t *testing.T, hist []Op, substr string) {
	t.Helper()
	bad := CheckStalenessBound(hist)
	if len(bad) != 1 {
		t.Fatalf("got %d violations, want exactly 1 (%q): %v", len(bad), substr, bad)
	}
	if !strings.Contains(bad[0], substr) {
		t.Errorf("violation %q does not mention %q", bad[0], substr)
	}
}

func TestStalenessCleanHistory(t *testing.T) {
	sbWantClean(t, []Op{
		sbCreate("a", 7, 0, 10, OK),
		cachedHit("a", 7, 20, 30), // granted after the create committed: fine
		sbRemove("a", 40, 50, OK),
		cachedMiss("a", 60, 70), // granted after the remove committed: fine
	})
}

// The bound deliberately permits TTL-window staleness: a remove committing
// AFTER the grant may stay invisible until the lease lapses.
func TestStalenessPermitsTTLWindow(t *testing.T) {
	sbWantClean(t, []Op{
		sbCreate("a", 7, 0, 10, OK),
		sbRemove("a", 40, 50, OK),
		cachedHit("a", 7, 20, 60), // lease granted at 20ms, before the remove
	})
}

func TestStalenessPositiveReadAfterRemove(t *testing.T) {
	sbWantViolation(t, []Op{
		sbCreate("a", 7, 0, 10, OK),
		sbRemove("a", 20, 30, OK),
		cachedHit("a", 7, 40, 50), // grant postdates the committed remove
	}, "removal committed before the lease grant")
}

func TestStalenessForeignInode(t *testing.T) {
	sbWantViolation(t, []Op{
		sbCreate("a", 7, 0, 10, OK),
		cachedHit("a", 9, 20, 30), // name is bound to 7, read saw 9
	}, "foreign ino")
}

func TestStalenessNegativeReadAfterCreate(t *testing.T) {
	sbWantViolation(t, []Op{
		sbCreate("a", 7, 0, 10, OK),
		cachedMiss("a", 20, 30), // grant postdates the committed create
	}, "missed an entry committed before the lease grant")
}

// A negative read is excused when a remove was already issued by the time
// of the read — the miss may reflect the remove's provisional effect.
func TestStalenessNegativeReadExcusedByIssuedRemove(t *testing.T) {
	sbWantClean(t, []Op{
		sbCreate("a", 7, 0, 10, OK),
		sbRemove("a", 25, 100, Unknown), // in flight at read time
		cachedMiss("a", 20, 30),
	})
}

// Uncached lookups, non-lookup ops, and informationless outcomes are out of
// the bound's scope no matter what they claim to have seen.
func TestStalenessIgnoresOutOfScopeOps(t *testing.T) {
	uncached := cachedHit("a", 9, 40, 50)
	uncached.Cached = false
	timedOut := cachedMiss("a", 20, 30)
	timedOut.Outcome = Unknown
	sbWantClean(t, []Op{
		sbCreate("a", 7, 0, 10, OK),
		sbRemove("a", 20, 30, OK),
		uncached, // foreign ino AND post-remove, but not served from cache
		timedOut, // cached but the outcome carries no information
		{Worker: 1, Kind: types.OpStat, Name: "a", Outcome: OK, Cached: true},
	})
}

// A create that never definitely committed (timeout) binds nothing: a
// cached miss after it is legal, and a cached hit can't be foreign-ino
// checked against it.
func TestStalenessUnknownCreateBindsNothing(t *testing.T) {
	sbWantClean(t, []Op{
		sbCreate("a", 7, 0, 10, Unknown),
		cachedMiss("a", 20, 30),
		cachedHit("a", 9, 20, 40),
	})
}

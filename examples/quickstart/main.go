// Quickstart: bring up a simulated 4-server metadata cluster running the Cx
// protocol, perform a handful of file operations, and inspect what the
// protocol did underneath — all in deterministic virtual time.
package main

import (
	"fmt"
	"log"

	cxfs "cxfs"
)

func main() {
	fs := cxfs.New(cxfs.Options{Servers: 4, Protocol: cxfs.Cx, Seed: 1})
	defer fs.Close()

	fs.Run(func(ctx *cxfs.Ctx) {
		// A cross-server create: the directory entry lands on one server,
		// the inode on another; Cx executes both sub-operations
		// concurrently and defers the commitment.
		dir, err := ctx.Mkdir(cxfs.Root, "demo")
		if err != nil {
			log.Fatalf("mkdir: %v", err)
		}
		ino, err := ctx.Create(dir, "hello.txt")
		if err != nil {
			log.Fatalf("create: %v", err)
		}
		attr, err := ctx.Stat(ino)
		if err != nil {
			log.Fatalf("stat: %v", err)
		}
		fmt.Printf("created demo/hello.txt: ino=%d nlink=%d (at virtual t=%v)\n",
			attr.Ino, attr.Nlink, ctx.Now())

		// Hard links exercise the link/unlink cross-server pair.
		if err := ctx.Link(dir, "hello-link.txt", ino); err != nil {
			log.Fatalf("link: %v", err)
		}
		attr, _ = ctx.Stat(ino)
		fmt.Printf("after link: nlink=%d\n", attr.Nlink)
		if err := ctx.Unlink(dir, "hello-link.txt", ino); err != nil {
			log.Fatalf("unlink: %v", err)
		}
		// Rename runs as an eager cross-server transaction (the operation
		// the paper excludes from Cx's lazy path).
		if err := ctx.Rename(dir, "hello.txt", ino, cxfs.Root, "promoted.txt"); err != nil {
			log.Fatalf("rename: %v", err)
		}
		entries, err := ctx.Readdir(cxfs.Root)
		if err != nil {
			log.Fatalf("readdir: %v", err)
		}
		fmt.Printf("root now holds %d entries:", len(entries))
		for _, e := range entries {
			fmt.Printf(" %s", e.Name)
		}
		fmt.Println()
		if err := ctx.Remove(cxfs.Root, "promoted.txt", ino); err != nil {
			log.Fatalf("remove: %v", err)
		}
		fmt.Printf("cleaned up (at virtual t=%v)\n", ctx.Now())
	})

	st := fs.CxStats()
	fmt.Printf("\nprotocol activity: committed=%d aborted=%d lazy-batches=%d conflicts=%d\n",
		st.OpsCommitted, st.OpsAborted, st.LazyBatches, st.Conflicts)
	fmt.Printf("virtual workload time: %v, total messages: %d\n", fs.Elapsed(), fs.Messages())
	if bad := fs.CheckConsistency(); len(bad) == 0 {
		fmt.Println("cross-server consistency check: OK")
	} else {
		fmt.Println("INCONSISTENT:", bad)
	}
}

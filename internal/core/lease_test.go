package core

import (
	"testing"
	"time"

	"cxfs/internal/obs"
	"cxfs/internal/types"
)

func TestLeaseTableGrantRevoke(t *testing.T) {
	lt := NewLeaseTable(8)
	now := 10 * time.Millisecond
	ttl := 40 * time.Millisecond
	lt.Grant(types.RootInode, "f", 3, now, ttl)
	lt.Grant(types.RootInode, "f", 4, now, ttl)
	lt.Grant(types.RootInode, "f", 3, now+time.Millisecond, ttl) // repeat holder

	holders := lt.Revoke(types.RootInode, "f")
	if len(holders) != 2 || holders[0] != 3 || holders[1] != 4 {
		t.Errorf("holders=%v, want [3 4] in grant order (no duplicate for the repeat grant)", holders)
	}
	if again := lt.Revoke(types.RootInode, "f"); again != nil {
		t.Errorf("second revoke returned %v, want nil", again)
	}
	if got := lt.Revoke(types.RootInode, "never-leased"); got != nil {
		t.Errorf("revoking an unleased name returned %v", got)
	}
}

func TestLeaseTableOutstanding(t *testing.T) {
	lt := NewLeaseTable(8)
	ttl := 40 * time.Millisecond
	lt.Grant(types.RootInode, "a", 3, 0, ttl)
	lt.Grant(types.RootInode, "b", 3, 20*time.Millisecond, ttl)
	if got := lt.Outstanding(30 * time.Millisecond); got != 2 {
		t.Errorf("Outstanding=%d before any expiry, want 2", got)
	}
	// "a" lapsed at 40ms; a repeat grant must have extended "b".
	lt.Grant(types.RootInode, "b", 4, 50*time.Millisecond, ttl)
	if got := lt.Outstanding(70 * time.Millisecond); got != 1 {
		t.Errorf("Outstanding=%d at 70ms, want 1 (only the re-granted entry)", got)
	}
	lt.Reset()
	if got := lt.Outstanding(0); got != 0 {
		t.Errorf("Outstanding=%d after Reset, want 0", got)
	}
	if holders := lt.Revoke(types.RootInode, "b"); holders != nil {
		t.Errorf("Reset left holders behind: %v", holders)
	}
}

func TestLeaseTableCapacityEviction(t *testing.T) {
	lt := NewLeaseTable(2)
	ttl := time.Second
	lt.Grant(types.RootInode, "a", 3, 0, ttl)
	lt.Grant(types.RootInode, "b", 3, 0, ttl)
	lt.Grant(types.RootInode, "c", 3, 0, ttl) // evicts "a" silently
	if got := lt.Outstanding(0); got != 2 {
		t.Errorf("Outstanding=%d at cap 2, want 2", got)
	}
	if holders := lt.Revoke(types.RootInode, "a"); holders != nil {
		t.Errorf("evicted entry still has holders: %v", holders)
	}
	if holders := lt.Revoke(types.RootInode, "c"); len(holders) != 1 {
		t.Errorf("surviving entry lost its holder: %v", holders)
	}
}

func TestCacheFlushAndObserver(t *testing.T) {
	c := NewCache(8)
	o := obs.New(obs.Options{})
	c.SetObserver(o)
	c.Put(0, 0, grantMsg(0, types.RootInode, "f", 7, true, 1, time.Second))
	if _, _, _, ok := c.Get(1, types.RootInode, "f"); !ok {
		t.Fatal("warm entry missed")
	}
	c.Flush()
	if c.Len() != 0 {
		t.Errorf("len=%d after Flush, want 0", c.Len())
	}
	if _, _, _, ok := c.Get(1, types.RootInode, "f"); ok {
		t.Error("flushed entry still served")
	}
	// Flush keeps counters and mirrors events into the observer.
	if st := c.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats hits=%d misses=%d after Flush, want 1/1", st.Hits, st.Misses)
	}
	if got := o.Counter("cache.hit"); got != 1 {
		t.Errorf("observer cache.hit=%d, want 1", got)
	}
	if got := o.Counter("cache.miss"); got != 1 {
		t.Errorf("observer cache.miss=%d, want 1", got)
	}
}

package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// chromeEvent is one entry of the Chrome trace_event format
// (chrome://tracing, Perfetto). Timestamps and durations are microseconds
// of virtual time; pid is the run index, tid the node.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level trace_event JSON object.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace writes the retained events in Chrome trace_event JSON:
// spans as complete ("X") events, instants as "i" events, with one
// process-name metadata entry per run so multi-cluster sessions stay
// legible side by side. Nil-safe (writes an empty trace).
func (o *Observer) WriteChromeTrace(w io.Writer) error {
	out := chromeTrace{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}
	if o != nil {
		for i, label := range o.runLabels {
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: "process_name", Phase: "M", PID: i + 1,
				Args: map[string]any{"name": fmt.Sprintf("run %d (%s)", i+1, label)},
			})
		}
		for _, ev := range o.Events() {
			ce := chromeEvent{
				Name: ev.Phase.String(),
				TS:   float64(ev.T.Nanoseconds()) / 1e3,
				PID:  ev.Run,
				TID:  ev.Node,
			}
			args := map[string]any{}
			if !ev.Op.IsNil() {
				args["op"] = ev.Op.String()
			}
			if ev.Detail != "" {
				args["detail"] = ev.Detail
			}
			if len(args) > 0 {
				ce.Args = args
			}
			if ev.Dur > 0 {
				ce.Phase = "X"
				ce.Dur = float64(ev.Dur.Nanoseconds()) / 1e3
			} else {
				ce.Phase = "i"
				ce.Scope = "t" // thread-scoped instant
			}
			out.TraceEvents = append(out.TraceEvents, ce)
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// jsonEvent is the line format of WriteJSON.
type jsonEvent struct {
	TNanos   int64  `json:"t_ns"`
	DurNanos int64  `json:"dur_ns,omitempty"`
	Run      int    `json:"run"`
	Node     int    `json:"node"`
	Op       string `json:"op,omitempty"`
	Phase    string `json:"phase"`
	Detail   string `json:"detail,omitempty"`
}

// WriteJSON writes the retained events as JSON lines (one event object per
// line), the grep-friendly raw form. Nil-safe (writes nothing).
func (o *Observer) WriteJSON(w io.Writer) error {
	if o == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, ev := range o.Events() {
		je := jsonEvent{
			TNanos: ev.T.Nanoseconds(), DurNanos: ev.Dur.Nanoseconds(),
			Run: ev.Run, Node: ev.Node, Phase: ev.Phase.String(), Detail: ev.Detail,
		}
		if !ev.Op.IsNil() {
			je.Op = ev.Op.String()
		}
		if err := enc.Encode(je); err != nil {
			return err
		}
	}
	return bw.Flush()
}

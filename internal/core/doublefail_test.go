// Double-failure recovery: the coordinator crashes mid-commitment with its
// decision durable but the COMMIT-REQ fan-out unsent, and the participant
// crashes before the coordinator's recovery can retry that COMMIT-REQ — so
// the retries pour into a dead node. Once both reboot and run §V recovery,
// the decision must still reach the participant, every pending table must
// drain, and the operation the client saw complete must be durable.
package core_test

import (
	"testing"
	"time"

	"cxfs/internal/cluster"
	"cxfs/internal/core"
	"cxfs/internal/simrt"
	"cxfs/internal/types"
)

func TestDoubleFailureCoordinatorThenParticipant(t *testing.T) {
	o := cluster.DefaultOptions(4, cluster.ProtoCx)
	o.ClientHosts = 4
	o.ProcsPerHost = 2
	o.Cx.Timeout = 30 * time.Millisecond // commitment fires promptly
	o.Cx.VoteWait = 20 * time.Millisecond
	o.Cx.RetryInterval = 10 * time.Millisecond
	o.Cx.RecoveryFreeze = 2 * time.Millisecond
	o.Retry = types.RetryPolicy{Timeout: 50 * time.Millisecond, Attempts: 6}
	c := cluster.MustNew(o)
	defer c.Shutdown()

	c.Sim.Spawn("t", func(p *simrt.Proc) {
		pr := c.Proc(0)

		// Arm the coordinator-side crash before issuing the operation: the
		// point only fires inside a commitment, after the Commit-Record is
		// durable and before the COMMIT-REQ leaves.
		for _, b := range c.Bases {
			b.SetCrashPoint(func(point string, _ types.OpID) bool {
				return point == core.CPCommitAfterDecision
			})
		}
		ino, name := crossCreate(t, p, c, pr, types.RootInode, "dbl")
		coord := c.Placement.CoordinatorFor(types.RootInode, name)
		part := c.Placement.ParticipantFor(ino)

		// The lazy commitment decides within ~Timeout and the armed point
		// takes the coordinator down at exactly the partial state we want.
		deadline := p.Now() + 500*time.Millisecond
		for !c.Bases[coord].Crashed() {
			if p.Now() > deadline {
				t.Fatal("coordinator never hit commit:after-decision")
			}
			p.Sleep(time.Millisecond)
		}
		for _, b := range c.Bases {
			b.SetCrashPoint(nil)
		}

		// Second failure: the participant dies while the coordinator is
		// down, so it cannot answer the recovery's retried COMMIT-REQ.
		c.Bases[part].Crash()

		// Coordinator recovers first; its resume loop retries the durable
		// decision against the dead participant.
		g := simrt.NewGroup(c.Sim)
		g.Add(2)
		c.Bases[coord].Reboot()
		c.Sim.Spawn("recover-coord", func(rp *simrt.Proc) {
			defer g.Done()
			c.CxSrv[coord].Recover(rp)
		})
		// Let several COMMIT-REQ retries drain into the dead node before
		// the participant comes back.
		p.Sleep(60 * time.Millisecond)
		c.Bases[part].Reboot()
		c.Sim.Spawn("recover-part", func(rp *simrt.Proc) {
			defer g.Done()
			c.CxSrv[part].Recover(rp)
		})
		g.Wait(p)

		p.Sleep(100 * time.Millisecond)
		c.Quiesce(p)

		// Pending tables must have drained on every server.
		for i, srv := range c.CxSrv {
			if n := srv.PendingOps(); n != 0 {
				t.Errorf("server %d still holds %d pending ops after double-failure recovery", i, n)
			}
		}
		// The client-completed create must be durable.
		verifier := c.Proc(2)
		got, err := verifier.Lookup(p, types.RootInode, name)
		if err != nil || got.Ino != ino {
			t.Errorf("completed create %q lost after double failure (ino=%d err=%v)", name, got.Ino, err)
		}
		if bad := c.CheckInvariants(); len(bad) != 0 {
			for _, b := range bad {
				t.Errorf("invariant: %s", b)
			}
		}
		c.Sim.Stop()
	})
	c.Sim.RunUntil(time.Hour)
	if !c.Sim.Stopped() {
		t.Fatal("double-failure recovery hung")
	}
}

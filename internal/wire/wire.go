// Package wire defines the message vocabulary of the cxfs protocols and a
// binary codec for it.
//
// The Cx-specific messages follow Table III of the paper:
//
//	VOTE          coordinator -> participant   query the sub-ops' results
//	YES/NO        server -> process/coordinator execution result
//	COMMIT-REQ    coordinator -> participant    commit the executions
//	ABORT-REQ     coordinator -> participant    abort the executions
//	ACK           participant -> coordinator    operation complete
//	L-COM         process -> coordinator        launch an immediate commitment
//	ALL-NO        coordinator -> process        all executions aborted
//
// The YES/NO result travels as SubOpResp with the conflict hint of §III.C
// and an execution epoch, so a process can recognize that an earlier
// response was superseded by a disordered-conflict invalidation. VOTE,
// COMMIT-REQ, ABORT-REQ, and ACK are batch messages: lazy commitment packs
// many operations into each, which is where Cx's message overhead stays
// under 4% (Table IV).
//
// The remaining messages serve the baselines: OpReq/OpResp drive 2PC and CE
// through the coordinator, Clear is SE's compensation message, and the
// Migrate family implements CE's object migration. ConflictNotify is an
// implementation detail the paper leaves implicit: when the *participant*
// detects a conflict on an active object, it must ask that operation's
// coordinator to launch the immediate commitment.
//
// Every message has a deterministic encoded size; the simulated network
// charges transfer time by that size, and the TCP transport frames exactly
// these bytes.
package wire

import (
	"fmt"
	"time"

	"cxfs/internal/types"
)

// MsgType enumerates message kinds.
type MsgType uint8

const (
	MsgInvalid MsgType = iota
	// Client <-> server.
	MsgSubOpReq  // process assigns a sub-op to a server (Cx, SE)
	MsgSubOpResp // YES/NO with conflict hint and epoch
	MsgOpReq     // whole-op request to the coordinator (2PC, CE)
	MsgOpResp    // whole-op response (2PC, CE)
	MsgLCom      // L-COM: launch immediate commitment (Cx)
	MsgAllNo     // ALL-NO: all executions aborted (Cx)
	MsgClear     // SE compensation: roll back participant sub-op
	// Server <-> server.
	MsgVote           // VOTE (batched for Cx lazy commitment; carries sub-op for 2PC)
	MsgVoteResp       // YES/NO votes for a batch
	MsgCommitReq      // COMMIT-REQ / ABORT-REQ carried as one batch message
	MsgAck            // ACK for a batch
	MsgConflictNotify // participant-detected conflict: ask coordinator to commit
	MsgMigrateReq     // CE: request object rows
	MsgMigrateResp    // CE: object rows
	MsgMigrateBack    // CE: return updated rows
	MsgMigrateAck     // CE: rows reinstalled
	// Chassis-level liveness (answered by node.Base, not the protocol).
	MsgPing
	MsgPong
	// Client read path with leases (extension; ROADMAP item 5).
	MsgLookupReq  // resolve (Dir, Path) -> inode, requesting a lease
	MsgLookupResp // resolution result plus the granted lease (epoch/TTL)
	msgTypeCount
)

var msgTypeNames = [...]string{
	MsgInvalid:        "invalid",
	MsgSubOpReq:       "SUBOP-REQ",
	MsgSubOpResp:      "YES/NO",
	MsgOpReq:          "REQ",
	MsgOpResp:         "RESP",
	MsgLCom:           "L-COM",
	MsgAllNo:          "ALL-NO",
	MsgClear:          "CLEAR",
	MsgVote:           "VOTE",
	MsgVoteResp:       "VOTE-RESP",
	MsgCommitReq:      "COMMIT/ABORT-REQ",
	MsgAck:            "ACK",
	MsgConflictNotify: "C-NOTIFY",
	MsgMigrateReq:     "MIGRATE-REQ",
	MsgMigrateResp:    "MIGRATE-RESP",
	MsgMigrateBack:    "MIGRATE-BACK",
	MsgMigrateAck:     "MIGRATE-ACK",
	MsgPing:           "PING",
	MsgPong:           "PONG",
	MsgLookupReq:      "LOOKUP-REQ",
	MsgLookupResp:     "LOOKUP-RESP",
}

// String renders a MsgType using the paper's names where they exist.
func (t MsgType) String() string {
	if int(t) < len(msgTypeNames) {
		return msgTypeNames[t]
	}
	return fmt.Sprintf("msgtype(%d)", uint8(t))
}

// NumMsgTypes is the count of valid message types.
const NumMsgTypes = int(msgTypeCount)

// Vote is one operation's YES/NO inside a batched VOTE-RESP.
type Vote struct {
	Op types.OpID
	OK bool
}

// Decision is one operation's commit-or-abort inside a batched COMMIT-REQ.
type Decision struct {
	Op     types.OpID
	Commit bool
}

// Row is one migrated kvstore row (CE).
type Row struct {
	Key string
	Val []byte
}

// Msg is one message. A single flat struct (rather than one type per
// message) keeps the codec total and the simulated network allocation-free;
// only the fields relevant to Type are populated.
type Msg struct {
	Type MsgType
	From types.NodeID
	To   types.NodeID

	// Op identifies the operation for single-op messages; ReplyProc is the
	// issuing process for messages a server must answer to a client.
	Op        types.OpID
	ReplyProc types.ProcID

	// Sub is the sub-op payload of SubOpReq (and of Vote in 2PC, where the
	// coordinator tells the participant what to execute).
	Sub types.SubOp
	// FullOp carries the whole operation for OpReq (2PC, CE).
	FullOp types.Op
	// Peer names the other server of the operation, so the receiving
	// server knows who to run the commitment with.
	Peer types.NodeID

	// OK carries YES (true) / NO (false); Err the failure description.
	OK  bool
	Err string
	// Hint is the conflict hint of a SubOpResp ([null] = zero OpID), and
	// Epoch its execution epoch: re-executions after invalidation bump it.
	Hint  types.OpID
	Epoch uint32
	// Attr is the inode payload of stat/lookup responses.
	Attr types.Inode

	// Dir and Path name the directory entry of the leased read path: a
	// LookupReq resolves (Dir, Path); the LookupResp and lease revocations
	// (ConflictNotify with Path set) echo them so the client cache knows
	// which entry the message is about.
	Dir  types.InodeID
	Path string
	// LeaseEpoch fences a lease to the granting server's boot incarnation:
	// grants and revocations from a rebooted server carry a higher epoch,
	// and the client cache drops entries from older epochs. Zero = no
	// lease. LeaseTTL is the grant's validity window.
	LeaseEpoch uint64
	LeaseTTL   time.Duration

	// Batch payloads.
	Ops []types.OpID // VOTE, ACK
	// Enforce carries, for an immediate-commitment VOTE, the operations the
	// coordinator has blocked *behind* the voted operations — its execution
	// order. A participant holding one of these executed-but-uncommitted
	// must invalidate it (disordered conflict, §III.C); conflicting ops NOT
	// listed here are unrelated at the coordinator and are resolved by
	// committing them first (ordered conflict).
	Enforce   []types.OpID
	Votes     []Vote     // VOTE-RESP
	Decisions []Decision // COMMIT/ABORT-REQ
	Rows      []Row      // MIGRATE-RESP, MIGRATE-BACK
	Keys      []string   // MIGRATE-REQ
}

// String renders a message compactly for debugging.
func (m Msg) String() string {
	return fmt.Sprintf("%s %v->%v op=%s ok=%v batch=%d", m.Type, m.From, m.To, m.Op, m.OK, len(m.Ops)+len(m.Votes)+len(m.Decisions))
}

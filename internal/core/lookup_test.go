package core_test

import (
	"errors"
	"testing"
	"time"

	"cxfs/internal/cluster"
	"cxfs/internal/core"
	"cxfs/internal/simrt"
	"cxfs/internal/types"
)

// TestLeasedLookupPath drives the whole read path in one scenario: a miss
// resolves at the coordinator and grants a lease, the repeat lookup serves
// from the client cache, a foreign mutation revokes the lease via the
// piggybacked conflict notice, and the next lookup goes back to the server
// and sees the new truth.
// leasedCluster builds a cluster with the leased cache on and one process
// per client host, so distinct procs hold distinct caches (a co-hosted
// mutation would invalidate instead of exercising revocation).
func leasedCluster(servers, hosts int) *cluster.Cluster {
	o := cluster.DefaultOptions(servers, cluster.ProtoCx)
	o.ClientHosts = hosts
	o.ProcsPerHost = 1
	o.CacheTTL = 10 * time.Second
	return cluster.MustNew(o)
}

func TestLeasedLookupPath(t *testing.T) {
	c := leasedCluster(3, 2)
	defer c.Shutdown()

	c.Sim.Spawn("t", func(p *simrt.Proc) {
		defer c.Sim.Stop()
		prA, prB := c.Proc(0), c.Proc(1)
		drvA, _ := prA.Driver().(*core.Driver)
		if drvA == nil || drvA.Cache() == nil {
			t.Error("no leased cache attached under CacheTTL")
			return
		}
		drvA.TrackLookups()

		const name = "leased"
		srv := c.Placement.CoordinatorFor(types.RootInode, name)
		ino, err := prA.Create(p, types.RootInode, name)
		if err != nil {
			t.Errorf("create: %v", err)
			return
		}
		// A's own create invalidated any cached entry, so this is a miss…
		if in, err := prA.Lookup(p, types.RootInode, name); err != nil || in.Ino != ino {
			t.Errorf("miss lookup: ino=%v err=%v, want %v", in.Ino, err, ino)
			return
		}
		if cached, _ := drvA.LastLookup(); cached {
			t.Error("first lookup claimed a cache hit")
		}
		// …and this one a hit served under the lease.
		if in, err := prA.Lookup(p, types.RootInode, name); err != nil || in.Ino != ino {
			t.Errorf("hit lookup: ino=%v err=%v, want %v", in.Ino, err, ino)
			return
		}
		if cached, grant := drvA.LastLookup(); !cached || grant == 0 {
			t.Errorf("repeat lookup not served from cache (cached=%v grant=%v)", cached, grant)
		}
		if c.LeasesOutstanding(int(srv)) == 0 {
			t.Errorf("s%d holds no lease after granting one", srv)
		}

		// B removes the name; the coordinator revokes A's lease on commit, so
		// A's next read must miss and see the removal despite the live TTL.
		if err := prB.Remove(p, types.RootInode, name, ino); err != nil {
			t.Errorf("remove: %v", err)
			return
		}
		c.Quiesce(p)
		in, err := prA.Lookup(p, types.RootInode, name)
		if cached, _ := drvA.LastLookup(); cached {
			t.Errorf("post-revocation lookup served stale from cache: ino=%v err=%v", in.Ino, err)
		}
		if !errors.Is(err, types.ErrNotFound) {
			t.Errorf("post-remove lookup: ino=%v err=%v, want ErrNotFound", in.Ino, err)
		}
		// The negative result is leased too.
		if _, err := prA.Lookup(p, types.RootInode, name); !errors.Is(err, types.ErrNotFound) {
			t.Errorf("cached negative lookup: err=%v, want ErrNotFound", err)
		}
		if cached, _ := drvA.LastLookup(); !cached {
			t.Error("negative repeat lookup not served from cache")
		}

		st := drvA.Cache().Stats()
		if st.Hits < 2 || st.Misses < 2 || st.Revocations == 0 {
			t.Errorf("cache stats hits=%d misses=%d revocations=%d, want >=2/>=2/>0",
				st.Hits, st.Misses, st.Revocations)
		}
		if ds := drvA.Stats(); ds.Ops == 0 {
			t.Error("driver counted no ops")
		}
		drvA.FlushCache()
		if drvA.Cache().Len() != 0 {
			t.Error("FlushCache left entries behind")
		}
		c.Quiesce(p)
	})
	deadline := time.Hour
	if end := c.Sim.RunUntil(deadline); end >= deadline {
		t.Fatal("scenario did not finish within the virtual deadline")
	}
	if bad := c.CheckInvariants(); len(bad) != 0 {
		t.Errorf("invariants: %v", bad)
	}
}

// TestTrackedLookupDispositions covers the per-op disposition log used by
// pipelined harnesses, where LastLookup would race between in-flight ops.
func TestTrackedLookupDispositions(t *testing.T) {
	c := leasedCluster(2, 1)
	defer c.Shutdown()

	c.Sim.Spawn("t", func(p *simrt.Proc) {
		defer c.Sim.Stop()
		pr := c.Proc(0)
		drv, _ := pr.Driver().(*core.Driver)
		drv.TrackLookups()

		if _, err := pr.Create(p, types.RootInode, "tracked"); err != nil {
			t.Errorf("create: %v", err)
			return
		}
		lookup := func(id types.OpID) error {
			_, err := pr.Do(p, types.Op{ID: id, Kind: types.OpLookup,
				Parent: types.RootInode, Name: "tracked"})
			return err
		}
		missID, hitID := pr.NextID(), pr.NextID()
		if err := lookup(missID); err != nil {
			t.Errorf("miss lookup: %v", err)
			return
		}
		if err := lookup(hitID); err != nil {
			t.Errorf("hit lookup: %v", err)
			return
		}

		if cached, _, ok := drv.TakeLookup(missID); !ok || cached {
			t.Errorf("miss disposition: cached=%v ok=%v, want false/true", cached, ok)
		}
		if cached, grant, ok := drv.TakeLookup(hitID); !ok || !cached || grant == 0 {
			t.Errorf("hit disposition: cached=%v grant=%v ok=%v, want true/>0/true", cached, grant, ok)
		}
		// Taking an entry pops it; a second take must miss.
		if _, _, ok := drv.TakeLookup(hitID); ok {
			t.Error("TakeLookup served the same op twice")
		}
		c.Quiesce(p)
	})
	deadline := time.Hour
	if end := c.Sim.RunUntil(deadline); end >= deadline {
		t.Fatal("scenario did not finish within the virtual deadline")
	}
	if bad := c.CheckInvariants(); len(bad) != 0 {
		t.Errorf("invariants: %v", bad)
	}
}

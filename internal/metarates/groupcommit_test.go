package metarates

import (
	"testing"
	"time"

	"cxfs/internal/cluster"
	"cxfs/internal/obs"
)

// acceptanceCluster sizes a run at the acceptance geometry: 4 servers with
// 4+ concurrent client processes per server.
func acceptanceCluster(linger time.Duration, o2 func(*cluster.Options)) *cluster.Cluster {
	o := cluster.DefaultOptions(4, cluster.ProtoCx)
	o.ClientHosts = 8
	o.ProcsPerHost = 2 // 16 procs -> 4 concurrent clients per server
	o.GroupLinger = linger
	if o2 != nil {
		o2(&o)
	}
	return cluster.MustNew(o)
}

// walAppends sums the disk requests every server's WAL issued.
func walAppends(c *cluster.Cluster) (appends, records uint64) {
	for _, b := range c.Bases {
		ws := b.WAL.Stats()
		appends += ws.Appends
		records += ws.Records
	}
	return
}

// TestGroupCommitCutsServerDiskRequests is the PR's acceptance criterion:
// on Metarates with at least 4 concurrent clients per server, enabling
// group commit must cut the WALs' issued disk requests (Stats.Appends) by
// at least 2x at equal op count, without losing operations.
func TestGroupCommitCutsServerDiskRequests(t *testing.T) {
	cfg := Config{Mix: UpdateDominated, OpsPerProc: 40}

	cDirect := acceptanceCluster(0, nil)
	resDirect := Run(cDirect, cfg)
	directAppends, directRecords := walAppends(cDirect)
	cDirect.Shutdown()

	cGroup := acceptanceCluster(time.Millisecond, nil)
	resGroup := Run(cGroup, cfg)
	groupAppends, groupRecords := walAppends(cGroup)
	cGroup.Shutdown()

	if resDirect.Ops != resGroup.Ops {
		t.Fatalf("op counts differ: %d vs %d", resDirect.Ops, resGroup.Ops)
	}
	if resDirect.Errors != 0 || resGroup.Errors != 0 {
		t.Fatalf("errors: direct=%d group=%d", resDirect.Errors, resGroup.Errors)
	}
	if groupRecords == 0 || directRecords == 0 {
		t.Fatal("no WAL records written")
	}
	if groupAppends*2 > directAppends {
		t.Errorf("group commit cut appends %d -> %d; need at least 2x (records %d vs %d)",
			directAppends, groupAppends, directRecords, groupRecords)
	}
}

// TestGroupCommitObservabilityReportsCoalescing wires an observer through
// the cluster and checks the flush-window histogram shows real coalescing
// under concurrent load.
func TestGroupCommitObservabilityReportsCoalescing(t *testing.T) {
	o := obs.New(obs.Options{})
	c := acceptanceCluster(time.Millisecond, func(opts *cluster.Options) { opts.Obs = o })
	defer c.Shutdown()
	res := Run(c, Config{Mix: UpdateDominated, OpsPerProc: 30})
	if res.Errors != 0 {
		t.Fatalf("errors: %d", res.Errors)
	}
	fs := o.FlushStats()
	if fs.Flushes == 0 {
		t.Fatal("observer saw no group-commit flushes")
	}
	if fs.CoalesceRatio() <= 1.0 {
		t.Errorf("coalesce ratio %.2f; need > 1 under 4 clients/server", fs.CoalesceRatio())
	}
	multi := uint64(0)
	for i := 1; i < len(fs.Window); i++ {
		multi += fs.Window[i]
	}
	if multi == 0 {
		t.Error("window histogram shows no multi-batch flushes")
	}
}

// TestPipelinedDispatchImprovesThroughput checks the client half of the
// tentpole: N-deep pipelined dispatch must beat the classic closed loop on
// ops/s at equal op count, stay error-free, and keep the namespace
// invariant-clean.
func TestPipelinedDispatchImprovesThroughput(t *testing.T) {
	run := func(pipeline int) Result {
		c := acceptanceCluster(0, nil)
		defer c.Shutdown()
		res := Run(c, Config{Mix: UpdateDominated, OpsPerProc: 40, Pipeline: pipeline})
		if res.Errors != 0 {
			t.Fatalf("pipeline=%d errors: %d", pipeline, res.Errors)
		}
		if bad := c.CheckInvariants(); len(bad) != 0 {
			t.Fatalf("pipeline=%d invariants: %v", pipeline, bad)
		}
		return res
	}
	seq := run(1)
	pipe := run(8)
	if pipe.Ops != seq.Ops {
		t.Fatalf("op counts differ: %d vs %d", pipe.Ops, seq.Ops)
	}
	if pipe.Throughput <= seq.Throughput {
		t.Errorf("pipelined %.0f ops/s did not beat sequential %.0f ops/s",
			pipe.Throughput, seq.Throughput)
	}
}

// TestPipelinePlusGroupCommitComposes runs the full tentpole configuration:
// pipelined clients over group-committing servers. Both effects must hold
// at once — fewer WAL disk requests than the direct baseline and higher
// throughput than the sequential closed loop.
func TestPipelinePlusGroupCommitComposes(t *testing.T) {
	base := func() (Result, uint64) {
		c := acceptanceCluster(0, nil)
		defer c.Shutdown()
		res := Run(c, Config{Mix: UpdateDominated, OpsPerProc: 30})
		a, _ := walAppends(c)
		return res, a
	}
	full := func() (Result, uint64) {
		c := acceptanceCluster(time.Millisecond, nil)
		defer c.Shutdown()
		res := Run(c, Config{Mix: UpdateDominated, OpsPerProc: 30, Pipeline: 8})
		a, _ := walAppends(c)
		if bad := c.CheckInvariants(); len(bad) != 0 {
			t.Fatalf("invariants: %v", bad)
		}
		return res, a
	}
	resBase, appendsBase := base()
	resFull, appendsFull := full()
	if resFull.Errors != 0 {
		t.Fatalf("errors: %d", resFull.Errors)
	}
	if resFull.Throughput <= resBase.Throughput {
		t.Errorf("tentpole config %.0f ops/s did not beat baseline %.0f ops/s",
			resFull.Throughput, resBase.Throughput)
	}
	if appendsFull >= appendsBase {
		t.Errorf("tentpole config issued %d WAL disk requests, baseline %d",
			appendsFull, appendsBase)
	}
}

// TestGroupCommitAppliesToEveryProtocol guards benchmark fairness: the
// linger is a WAL-level knob, so SE-batched, 2PC, and CE must coalesce
// exactly like Cx — a comparison where only Cx group-commits would be
// rigged. Plain SE is exempt: OFS writes rows synchronously through the
// database and never appends to the log.
func TestGroupCommitAppliesToEveryProtocol(t *testing.T) {
	for _, proto := range cluster.Protocols {
		if proto == cluster.ProtoSE {
			continue
		}
		o := cluster.DefaultOptions(2, proto)
		o.ClientHosts = 4
		o.ProcsPerHost = 2
		o.GroupLinger = time.Millisecond
		c := cluster.MustNew(o)
		res := Run(c, Config{Mix: UpdateDominated, OpsPerProc: 20})
		var flushes, grouped uint64
		for _, b := range c.Bases {
			ws := b.WAL.Stats()
			flushes += ws.GroupFlushes
			grouped += ws.GroupedReqs
		}
		c.Shutdown()
		if res.Errors != 0 {
			t.Errorf("%s: errors: %d", proto, res.Errors)
		}
		if flushes == 0 {
			t.Errorf("%s: WAL never group-flushed under GroupLinger", proto)
		}
		if grouped < flushes {
			t.Errorf("%s: grouped reqs %d < flushes %d", proto, grouped, flushes)
		}
	}
}

// TestPipelinedRunIsDeterministic: same seed and flags, identical
// throughput and WAL stats.
func TestPipelinedRunIsDeterministic(t *testing.T) {
	run := func() (Result, uint64) {
		c := acceptanceCluster(500*time.Microsecond, nil)
		defer c.Shutdown()
		res := Run(c, Config{Mix: UpdateDominated, OpsPerProc: 25, Pipeline: 6})
		a, _ := walAppends(c)
		return res, a
	}
	resA, apA := run()
	resB, apB := run()
	if resA.Elapsed != resB.Elapsed || resA.Errors != resB.Errors || apA != apB {
		t.Errorf("diverged: elapsed %v/%v errors %d/%d appends %d/%d",
			resA.Elapsed, resB.Elapsed, resA.Errors, resB.Errors, apA, apB)
	}
}

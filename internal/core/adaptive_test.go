// In-package test of the commit daemon's adaptive lazy period: the
// threshold arithmetic of adaptivePeriod is exercised directly against a
// real WAL at controlled fill levels.
package core

import (
	"testing"
	"time"

	"cxfs/internal/namespace"
	"cxfs/internal/node"
	"cxfs/internal/simrt"
	"cxfs/internal/transport"
	"cxfs/internal/types"
	"cxfs/internal/wal"
)

// adaptiveRec builds one Result record of a fixed encoded size.
func adaptiveRec(seq uint64) wal.Record {
	id := types.OpID{Proc: types.ProcID{Client: 50, Index: 0}, Seq: seq}
	return wal.Record{
		Type: wal.RecResult, Op: id, Role: types.RoleCoordinator, OK: true,
		Sub: types.SubOp{Op: id, Kind: types.OpCreate, Role: types.RoleCoordinator,
			Action: types.ActInsertEntry, Parent: 7, Name: "adaptv", Ino: 42,
			Type: types.FileRegular},
	}
}

// withAdaptiveServer builds a bare (not started) Cx server whose WAL caps
// at exactly 4 records, so tests can dial precise fill fractions.
func withAdaptiveServer(t *testing.T, cfg Config, fn func(p *simrt.Proc, s *Server)) {
	t.Helper()
	sim := simrt.New(1)
	net := transport.New(sim, transport.DefaultParams())
	hw := node.DefaultHardware()
	hw.LogMaxBytes = 4 * wal.EncodedSize(adaptiveRec(1))
	base := node.NewBase(sim, net, 0, hw)
	srv := NewServer(base, namespace.Placement{Servers: 1}, cfg)
	sim.Spawn("t", func(p *simrt.Proc) {
		fn(p, srv)
		sim.Stop()
	})
	sim.RunUntil(time.Hour)
	if !sim.Stopped() {
		t.Fatal("hung")
	}
	sim.Shutdown()
}

func TestAdaptivePeriodOffIsFixedTimeout(t *testing.T) {
	base := 800 * time.Millisecond
	withAdaptiveServer(t, Config{Timeout: base}, func(p *simrt.Proc, s *Server) {
		if got := s.adaptivePeriod(); got != base {
			t.Errorf("adaptive off: period %v, want %v", got, base)
		}
		if s.stats.AdaptiveShrinks+s.stats.AdaptiveStretches != 0 {
			t.Error("adaptive counters moved with the feature off")
		}
	})
}

func TestAdaptivePeriodStretchesWhenIdle(t *testing.T) {
	base := 800 * time.Millisecond
	withAdaptiveServer(t, Config{Timeout: base, AdaptiveLazy: true}, func(p *simrt.Proc, s *Server) {
		if got := s.adaptivePeriod(); got != base*2 {
			t.Errorf("idle: period %v, want %v", got, base*2)
		}
		if s.stats.AdaptiveStretches == 0 {
			t.Error("stretch not counted")
		}
	})
}

func TestAdaptivePeriodShrinksUnderLogPressure(t *testing.T) {
	base := 800 * time.Millisecond
	withAdaptiveServer(t, Config{Timeout: base, AdaptiveLazy: true}, func(p *simrt.Proc, s *Server) {
		// Capacity is 4 records. 2 records = 50% -> base/2.
		s.WAL.Append(p, adaptiveRec(1))
		s.WAL.Append(p, adaptiveRec(2))
		if got := s.adaptivePeriod(); got != base/2 {
			t.Errorf("at 50%%: period %v, want %v", got, base/2)
		}
		// 3 records = 75% -> base/8.
		s.WAL.Append(p, adaptiveRec(3))
		if got := s.adaptivePeriod(); got != base/8 {
			t.Errorf("at 75%%: period %v, want %v", got, base/8)
		}
		if s.stats.AdaptiveShrinks != 2 {
			t.Errorf("shrinks=%d, want 2", s.stats.AdaptiveShrinks)
		}
	})
}

func TestAdaptivePeriodBaseWithWorkPendingAndLogQuiet(t *testing.T) {
	base := 800 * time.Millisecond
	withAdaptiveServer(t, Config{Timeout: base, AdaptiveLazy: true}, func(p *simrt.Proc, s *Server) {
		// One record = 25% of capacity: below both pressure thresholds. A
		// pending coordinator op suppresses the idle stretch, so the period
		// is the plain base.
		s.WAL.Append(p, adaptiveRec(1))
		id := types.OpID{Proc: types.ProcID{Client: 51}, Seq: 1}
		s.pendingCoord[id] = &coordOp{id: id}
		if got := s.adaptivePeriod(); got != base {
			t.Errorf("busy, quiet log: period %v, want %v", got, base)
		}
	})
}

func TestAdaptivePeriodUnlimitedLogStillStretches(t *testing.T) {
	// With no log cap there is no pressure signal; only the idle stretch
	// applies.
	base := 400 * time.Millisecond
	sim := simrt.New(1)
	net := transport.New(sim, transport.DefaultParams())
	hw := node.DefaultHardware()
	hw.LogMaxBytes = 0
	b := node.NewBase(sim, net, 0, hw)
	srv := NewServer(b, namespace.Placement{Servers: 1}, Config{Timeout: base, AdaptiveLazy: true})
	sim.Spawn("t", func(p *simrt.Proc) {
		for i := uint64(1); i <= 50; i++ {
			srv.WAL.Append(p, adaptiveRec(i))
		}
		if got := srv.adaptivePeriod(); got != base*2 {
			t.Errorf("unlimited log: period %v, want %v", got, base*2)
		}
		sim.Stop()
	})
	sim.RunUntil(time.Hour)
	sim.Shutdown()
}

package wal

import (
	"encoding/binary"
	"fmt"
)

// Encode serializes rec exactly as it is laid out on disk. Exported together
// with ScanBytes so durability tests can build byte-accurate log images,
// tear or corrupt them, and check what a recovery scan would salvage.
func Encode(rec Record) []byte { return encode(&rec) }

// EncodeAll concatenates the on-disk encodings of recs — the byte stream a
// single coalesced group-commit write would put on the platter.
func EncodeAll(recs []Record) []byte {
	var buf []byte
	for i := range recs {
		buf = append(buf, encode(&recs[i])...)
	}
	return buf
}

// ScanBytes decodes a concatenated record stream the way recovery reads it
// off the platter: records are taken in order until the stream ends cleanly
// or a record fails its length or checksum validation. The intact prefix is
// returned along with the error that stopped the scan (nil on a clean end).
//
// This is the all-or-nothing-per-record guarantee of a coalesced batch: a
// torn tail or a corrupted record costs exactly the records from the damage
// onward, never the intact records before it.
func ScanBytes(buf []byte) ([]Record, error) {
	var out []Record
	for len(buf) > 0 {
		if len(buf) < 2 {
			return out, fmt.Errorf("wal: torn length prefix (%d trailing bytes)", len(buf))
		}
		total := int(binary.LittleEndian.Uint16(buf[0:2])) + 2
		if total > len(buf) {
			return out, fmt.Errorf("wal: torn record: header says %d bytes, %d remain", total, len(buf))
		}
		rec, err := decode(buf[:total])
		if err != nil {
			return out, err
		}
		out = append(out, rec)
		buf = buf[total:]
	}
	return out, nil
}

package metarates

import (
	"testing"
	"time"

	"cxfs/internal/cluster"
)

func stormCluster(proto cluster.Protocol, ttl time.Duration) *cluster.Cluster {
	o := cluster.DefaultOptions(3, proto)
	o.ClientHosts = 2
	o.ProcsPerHost = 2
	o.CacheTTL = ttl
	return cluster.MustNew(o)
}

var stormCfg = StormConfig{Depth: 3, Files: 4, Walks: 10}

func TestStatStormCountsWalks(t *testing.T) {
	c := stormCluster(cluster.ProtoCx, 0)
	defer c.Shutdown()
	res := RunStorm(c, stormCfg)
	// Per walk: the storm root, then per level Files files + 1 spine dir.
	perWalk := uint64(1 + stormCfg.Depth*(stormCfg.Files+1))
	want := perWalk * uint64(stormCfg.Walks) * uint64(c.NumProcs())
	if res.Lookups != want {
		t.Errorf("Lookups=%d, want %d", res.Lookups, want)
	}
	if res.Errors != 0 {
		t.Errorf("errors: %d", res.Errors)
	}
	if res.CacheHits != 0 {
		t.Errorf("cache hits without a cache: %d", res.CacheHits)
	}
	if res.MsgsPerLookup < 2 {
		t.Errorf("uncached MsgsPerLookup=%.2f, want >= 2 (request+response per lookup)", res.MsgsPerLookup)
	}
	if bad := c.CheckInvariants(); len(bad) != 0 {
		t.Errorf("invariants: %v", bad)
	}
}

// TestStatStormCacheRoundTripReduction is the headline acceptance property:
// with the leased cache on, a stat-storm costs at least 5x fewer network
// messages per lookup than the same walk pattern without it, on both the Cx
// servers and the SE baseline (the lease path is protocol-independent).
func TestStatStormCacheRoundTripReduction(t *testing.T) {
	for _, proto := range []cluster.Protocol{cluster.ProtoCx, cluster.ProtoSE} {
		proto := proto
		t.Run(string(proto), func(t *testing.T) {
			run := func(ttl time.Duration) StormResult {
				c := stormCluster(proto, ttl)
				defer c.Shutdown()
				res := RunStorm(c, stormCfg)
				if res.Errors != 0 {
					t.Fatalf("ttl=%v: %d walk errors", ttl, res.Errors)
				}
				if bad := c.CheckInvariants(); len(bad) != 0 {
					t.Fatalf("ttl=%v: invariants: %v", ttl, bad)
				}
				return res
			}
			off := run(0)
			on := run(30 * time.Second)
			if on.CacheHits == 0 {
				t.Fatal("cache on but no hits during the storm")
			}
			ratio := float64(off.Messages) / float64(on.Messages)
			if ratio < 5 {
				t.Errorf("messages off=%d on=%d: reduction %.1fx, want >= 5x",
					off.Messages, on.Messages, ratio)
			}
			if on.MsgsPerLookup*5 > off.MsgsPerLookup {
				t.Errorf("MsgsPerLookup off=%.2f on=%.2f: reduction below 5x",
					off.MsgsPerLookup, on.MsgsPerLookup)
			}
		})
	}
}

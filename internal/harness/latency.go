package harness

import (
	"fmt"
	"time"

	"cxfs/internal/cluster"
	"cxfs/internal/stats"
	"cxfs/internal/trace"
)

// LatencyRow summarizes one protocol's per-operation latency distribution.
type LatencyRow struct {
	Protocol cluster.Protocol
	Mean     time.Duration
	P50      time.Duration
	P99      time.Duration
	Max      time.Duration
}

// Latency is an extension experiment the paper's evaluation implies but
// never plots: the client-observed response-time distribution per protocol
// on one trace. Cx's concurrent execution should cut the median roughly in
// half against serial execution, while its conflict handling shows up in
// the tail.
func Latency(cfg Config, workload string) ([]LatencyRow, *stats.Table) {
	if workload == "" {
		workload = "s3d"
	}
	p, err := trace.ProfileByName(workload)
	if err != nil {
		panic(err)
	}
	var rows []LatencyRow
	tbl := stats.NewTable(
		fmt.Sprintf("Extension: operation latency distribution (%s)", workload),
		"Protocol", "mean", "p50", "p99", "max")
	for _, proto := range []cluster.Protocol{cluster.ProtoSE, cluster.ProtoSEBatched, cluster.ProtoCx} {
		tr := trace.Generate(p, cfg.Scale, cfg.Seed)
		c := cfg.clusterFor(proto, nil)
		r := &trace.Replayer{Trace: tr, C: c, KindLat: make(map[trace.Kind][]time.Duration)}
		r.Run()
		c.Shutdown()
		var all []float64
		for _, ls := range r.KindLat {
			for _, l := range ls {
				all = append(all, float64(l))
			}
		}
		row := LatencyRow{
			Protocol: proto,
			Mean:     time.Duration(stats.Mean(all)),
			P50:      time.Duration(stats.Percentile(all, 50)),
			P99:      time.Duration(stats.Percentile(all, 99)),
			Max:      time.Duration(stats.Max(all)),
		}
		rows = append(rows, row)
		tbl.Add(string(proto), row.Mean, row.P50, row.P99, row.Max)
	}
	return rows, tbl
}

// TriggerRow is one commitment-trigger configuration's outcome.
type TriggerRow struct {
	Name       string
	ReplayTime time.Duration
	Batches    uint64
}

// Triggers compares the paper's two batched-commitment triggers with the
// idle-time trigger it names as future work (§IV.A), all on home2 with an
// unlimited log. The idle trigger matches the long-timeout optimum while
// never leaving work pending across quiet periods.
func Triggers(cfg Config) ([]TriggerRow, *stats.Table) {
	type setting struct {
		name   string
		mutate func(*cluster.Options)
	}
	settings := []setting{
		{"timeout-100ms", func(o *cluster.Options) { o.Cx.Timeout = 100 * time.Millisecond }},
		{"timeout-10s", func(o *cluster.Options) { o.Cx.Timeout = 10 * time.Second }},
		{"threshold-64", func(o *cluster.Options) { o.Cx.Timeout = 0; o.Cx.Threshold = 64 }},
		{"idle-20ms", func(o *cluster.Options) { o.Cx.Timeout = 0; o.Cx.IdleTrigger = 20 * time.Millisecond }},
		{"idle-200ms", func(o *cluster.Options) { o.Cx.Timeout = 0; o.Cx.IdleTrigger = 200 * time.Millisecond }},
	}
	var rows []TriggerRow
	tbl := stats.NewTable("Extension: commitment trigger comparison (home2, unlimited log)",
		"Trigger", "Replay time", "Lazy batches")
	for _, st := range settings {
		st := st
		res, c := cfg.replay("home2", cluster.ProtoCx, func(o *cluster.Options) {
			o.Hardware.LogMaxBytes = 0
			st.mutate(o)
		}, 0, nil)
		var batches uint64
		for _, srv := range c.CxSrv {
			batches += srv.Stats().LazyBatches
		}
		c.Shutdown()
		rows = append(rows, TriggerRow{Name: st.name, ReplayTime: res.ReplayTime, Batches: batches})
		tbl.Add(st.name, res.ReplayTime, batches)
	}
	return rows, tbl
}

// Tests for the rename extension (internal/core/rename.go): an eager
// two-server transaction for the operation the paper excludes from Cx.
package core_test

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"cxfs/internal/cluster"
	"cxfs/internal/simrt"
	"cxfs/internal/types"
)

func TestRenameBasic(t *testing.T) {
	c := build(4, nil)
	defer c.Shutdown()
	c.Sim.Spawn("t", func(p *simrt.Proc) {
		pr := c.Proc(0)
		dirA, err := pr.Mkdir(p, types.RootInode, "src")
		if err != nil {
			t.Fatalf("mkdir: %v", err)
		}
		dirB, err := pr.Mkdir(p, types.RootInode, "dst")
		if err != nil {
			t.Fatalf("mkdir: %v", err)
		}
		ino, err := pr.Create(p, dirA, "file")
		if err != nil {
			t.Fatalf("create: %v", err)
		}
		if err := pr.Rename(p, dirA, "file", ino, dirB, "renamed"); err != nil {
			t.Fatalf("rename: %v", err)
		}
		if _, err := pr.Lookup(p, dirA, "file"); !errors.Is(err, types.ErrNotFound) {
			t.Errorf("source entry still resolves: %v", err)
		}
		got, err := pr.Lookup(p, dirB, "renamed")
		if err != nil || got.Ino != ino {
			t.Errorf("destination lookup: ino=%d err=%v", got.Ino, err)
		}
		if in, err := pr.Stat(p, ino); err != nil || in.Nlink != 1 {
			t.Errorf("inode after rename: %+v %v", in, err)
		}
		c.Quiesce(p)
		c.Sim.Stop()
	})
	c.Sim.RunUntil(time.Hour)
	if !c.Sim.Stopped() {
		t.Fatal("rename hung")
	}
	if bad := c.CheckInvariants(); len(bad) != 0 {
		t.Errorf("invariants: %v", bad)
	}
}

func TestRenameToExistingNameFailsAtomically(t *testing.T) {
	c := build(4, nil)
	defer c.Shutdown()
	c.Sim.Spawn("t", func(p *simrt.Proc) {
		pr := c.Proc(0)
		ino1, err := pr.Create(p, types.RootInode, "a")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := pr.Create(p, types.RootInode, "b"); err != nil {
			t.Fatal(err)
		}
		err = pr.Rename(p, types.RootInode, "a", ino1, types.RootInode, "b")
		if err == nil {
			t.Fatal("rename onto existing name succeeded")
		}
		// Atomicity: the source entry must have been restored.
		got, err := pr.Lookup(p, types.RootInode, "a")
		if err != nil || got.Ino != ino1 {
			t.Errorf("source entry lost after aborted rename: %v %v", got.Ino, err)
		}
		c.Quiesce(p)
		c.Sim.Stop()
	})
	c.Sim.RunUntil(time.Hour)
	if !c.Sim.Stopped() {
		t.Fatal("hung")
	}
	if bad := c.CheckInvariants(); len(bad) != 0 {
		t.Errorf("invariants: %v", bad)
	}
}

func TestRenameOfMissingSourceFails(t *testing.T) {
	c := build(4, nil)
	defer c.Shutdown()
	c.Sim.Spawn("t", func(p *simrt.Proc) {
		pr := c.Proc(0)
		err := pr.Rename(p, types.RootInode, "ghost", 424242, types.RootInode, "whatever")
		if !errors.Is(err, types.ErrNotFound) {
			t.Errorf("rename of missing source: %v", err)
		}
		c.Sim.Stop()
	})
	c.Sim.RunUntil(time.Hour)
	if !c.Sim.Stopped() {
		t.Fatal("hung")
	}
}

func TestRenameConflictsWithPendingCreate(t *testing.T) {
	// A rename whose destination entry is active (another process's
	// uncommitted create) must wait for that commitment, then fail with
	// EEXIST — never clobber or interleave.
	c := build(4, nil)
	defer c.Shutdown()
	c.Sim.Spawn("t", func(p *simrt.Proc) {
		prA, prB := c.Proc(0), c.Proc(c.NumProcs()-1)
		inoB, err := prB.Create(p, types.RootInode, "dst-name")
		if err != nil {
			t.Fatal(err)
		}
		_ = inoB // dst-name now active (pending commitment) under prB
		inoA, err := prA.Create(p, types.RootInode, "src-name")
		if err != nil {
			t.Fatal(err)
		}
		err = prA.Rename(p, types.RootInode, "src-name", inoA, types.RootInode, "dst-name")
		if err == nil {
			t.Error("rename onto a (pending) existing name succeeded")
		}
		// Source restored, both files intact.
		if got, err := prA.Lookup(p, types.RootInode, "src-name"); err != nil || got.Ino != inoA {
			t.Errorf("src after aborted rename: %v %v", got.Ino, err)
		}
		c.Quiesce(p)
		c.Sim.Stop()
	})
	c.Sim.RunUntil(time.Hour)
	if !c.Sim.Stopped() {
		t.Fatal("hung")
	}
	if bad := c.CheckInvariants(); len(bad) != 0 {
		t.Errorf("invariants: %v", bad)
	}
}

func TestRenameStormAcrossDirectories(t *testing.T) {
	// Many processes shuffle their files between two directories; all
	// renames are eager transactions and the namespace must stay coherent.
	c := build(4, nil)
	defer c.Shutdown()
	g := simrt.NewGroup(c.Sim)
	workers := 6
	g.Add(workers)
	var dirA, dirB types.InodeID
	gate := simrt.NewChan[struct{}](c.Sim)
	c.Sim.Spawn("setup", func(p *simrt.Proc) {
		pr := c.Proc(0)
		var err error
		if dirA, err = pr.Mkdir(p, types.RootInode, "A"); err != nil {
			t.Fatal(err)
		}
		if dirB, err = pr.Mkdir(p, types.RootInode, "B"); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < workers; i++ {
			gate.Send(struct{}{})
		}
	})
	for w := 0; w < workers; w++ {
		w := w
		pr := c.Proc(w)
		c.Sim.Spawn("worker", func(p *simrt.Proc) {
			defer g.Done()
			gate.Recv(p)
			name := fmt.Sprintf("w%d", w)
			ino, err := pr.Create(p, dirA, name)
			if err != nil {
				t.Errorf("create: %v", err)
				return
			}
			from, fromName, to := dirA, name, dirB
			for i := 0; i < 6; i++ {
				toName := fmt.Sprintf("w%d-r%d", w, i)
				if err := pr.Rename(p, from, fromName, ino, to, toName); err != nil {
					t.Errorf("worker %d rename %d: %v", w, i, err)
					return
				}
				from, to = to, from
				fromName = toName
			}
		})
	}
	c.Sim.Spawn("ctl", func(p *simrt.Proc) {
		g.Wait(p)
		c.Quiesce(p)
		c.Sim.Stop()
	})
	c.Sim.RunUntil(time.Hour)
	if !c.Sim.Stopped() {
		t.Fatal("rename storm hung")
	}
	if bad := c.CheckInvariants(); len(bad) != 0 {
		t.Errorf("invariants: %v", bad)
	}
	var renames uint64
	for _, srv := range c.CxSrv {
		renames += srv.Stats().Renames
	}
	if renames == 0 {
		t.Error("no committed renames counted")
	}
}

func TestRenameSurvivesDestinationCrash(t *testing.T) {
	c := build(4, func(o *cluster.Options) {
		o.Cx.RetryInterval = 100 * time.Millisecond
		o.Cx.VoteWait = 100 * time.Millisecond
		o.Hardware.LogMaxBytes = 0
	})
	defer c.Shutdown()
	c.Sim.Spawn("t", func(p *simrt.Proc) {
		pr := c.Proc(0)
		// Find a rename whose src owner != dst owner so the vote is remote.
		var srcName, dstName string
		var ino types.InodeID
		var src, dst types.NodeID
		for try := 0; ; try++ {
			srcName = fmt.Sprintf("s-%d", try)
			dstName = fmt.Sprintf("d-%d", try)
			src = c.Placement.CoordinatorFor(types.RootInode, srcName)
			dst = c.Placement.CoordinatorFor(types.RootInode, dstName)
			if src != dst {
				break
			}
		}
		var err error
		ino, err = pr.Create(p, types.RootInode, srcName)
		if err != nil {
			t.Fatal(err)
		}
		c.Quiesce(p)
		// Crash the destination, then issue the rename in the background;
		// the coordinator must retry until the destination recovers.
		c.Bases[dst].Crash()
		done := simrt.NewChan[error](c.Sim)
		c.Sim.Spawn("renamer", func(rp *simrt.Proc) {
			done.Send(pr.Rename(rp, types.RootInode, srcName, ino, types.RootInode, dstName))
		})
		p.Sleep(250 * time.Millisecond)
		c.Bases[dst].Reboot()
		c.CxSrv[dst].Recover(p)
		err = done.Recv(p)
		if err != nil {
			t.Errorf("rename across destination crash: %v", err)
		}
		if got, lerr := pr.Lookup(p, types.RootInode, dstName); lerr != nil || got.Ino != ino {
			t.Errorf("dst lookup after crash-rename: %v %v", got.Ino, lerr)
		}
		c.Quiesce(p)
		c.Sim.Stop()
	})
	c.Sim.RunUntil(time.Hour)
	if !c.Sim.Stopped() {
		t.Fatal("crash-rename hung")
	}
	if bad := c.CheckInvariants(); len(bad) != 0 {
		t.Errorf("invariants: %v", bad)
	}
}

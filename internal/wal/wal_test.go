package wal

import (
	"testing"
	"testing/quick"
	"time"

	"cxfs/internal/disk"
	"cxfs/internal/simrt"
	"cxfs/internal/types"
)

func opID(seq uint64) types.OpID {
	return types.OpID{Proc: types.ProcID{Client: 100, Index: 1}, Seq: seq}
}

func resultRec(seq uint64, name string) Record {
	return Record{
		Type: RecResult,
		Op:   opID(seq),
		Role: types.RoleCoordinator,
		OK:   true,
		Sub: types.SubOp{
			Op: opID(seq), Kind: types.OpCreate, Role: types.RoleCoordinator,
			Action: types.ActInsertEntry, Parent: 7, Name: name, Ino: 42, Type: types.FileRegular,
		},
	}
}

// withWAL runs fn in a simulation with one WAL on a default disk.
func withWAL(t *testing.T, maxBytes int64, fn func(p *simrt.Proc, w *WAL)) time.Duration {
	t.Helper()
	s := simrt.New(1)
	d := disk.New(s, "d", disk.DefaultParams())
	w := New(s, d, 0, maxBytes)
	s.Spawn("driver", func(p *simrt.Proc) {
		fn(p, w)
		s.Stop()
	})
	end := s.Run()
	s.Shutdown()
	return end
}

func TestAppendIndexesRecord(t *testing.T) {
	withWAL(t, 0, func(p *simrt.Proc, w *WAL) {
		rec := resultRec(1, "f1")
		w.Append(p, rec)
		if !w.Has(opID(1), RecResult) {
			t.Error("Result record not indexed")
		}
		if w.Has(opID(1), RecCommit) {
			t.Error("phantom Commit record")
		}
		if w.LiveBytes() != EncodedSize(rec) {
			t.Errorf("live=%d, want %d", w.LiveBytes(), EncodedSize(rec))
		}
	})
}

func TestAppendBatchCheaperThanIndividual(t *testing.T) {
	recs := make([]Record, 50)
	for i := range recs {
		recs[i] = resultRec(uint64(i), "file")
	}
	batched := withWAL(t, 0, func(p *simrt.Proc, w *WAL) {
		w.AppendBatch(p, recs)
	})
	individual := withWAL(t, 0, func(p *simrt.Proc, w *WAL) {
		for _, r := range recs {
			w.Append(p, r)
		}
	})
	if batched*5 > individual {
		t.Errorf("batched append %v should be >5x cheaper than %v", batched, individual)
	}
}

func TestPruneFreesSpace(t *testing.T) {
	withWAL(t, 0, func(p *simrt.Proc, w *WAL) {
		w.Append(p, resultRec(1, "a"))
		w.Append(p, Record{Type: RecComplete, Op: opID(1), Role: types.RoleCoordinator})
		w.Append(p, resultRec(2, "b"))
		before := w.LiveBytes()
		w.Prune(opID(1))
		if w.LiveBytes() >= before {
			t.Error("prune did not free space")
		}
		if w.OpBytes(opID(1)) != 0 {
			t.Error("pruned op still has bytes")
		}
		if w.OpBytes(opID(2)) == 0 {
			t.Error("unrelated op lost its bytes")
		}
	})
}

func TestFullLogBlocksUntilPrune(t *testing.T) {
	rec := resultRec(1, "xxxx")
	limit := EncodedSize(rec) + 10 // room for exactly one result record
	s := simrt.New(1)
	d := disk.New(s, "d", disk.DefaultParams())
	w := New(s, d, 0, limit)
	var stalled bool
	w.SetFullHandler(func() { stalled = true })
	var secondDone time.Duration
	s.Spawn("writer", func(p *simrt.Proc) {
		w.Append(p, rec)
		w.Append(p, resultRec(2, "yyyy")) // must stall
		secondDone = p.Now()
	})
	s.Spawn("pruner", func(p *simrt.Proc) {
		p.Sleep(5 * time.Second)
		w.Prune(opID(1))
	})
	s.Run()
	s.Shutdown()
	if !stalled {
		t.Error("full handler never invoked")
	}
	if secondDone < 5*time.Second {
		t.Errorf("second append finished at %v, before prune at 5s", secondDone)
	}
	if st := w.Stats(); st.FullStalls == 0 {
		t.Error("FullStalls not counted")
	}
}

func TestUnlimitedLogNeverStalls(t *testing.T) {
	withWAL(t, 0, func(p *simrt.Proc, w *WAL) {
		for i := 0; i < 1000; i++ {
			w.Append(p, resultRec(uint64(i), "f"))
		}
		if w.Stats().FullStalls != 0 {
			t.Error("unlimited log stalled")
		}
	})
}

func TestRecoverScanReturnsLiveRecordsInOrder(t *testing.T) {
	withWAL(t, 0, func(p *simrt.Proc, w *WAL) {
		w.Append(p, resultRec(1, "a"))
		w.Append(p, resultRec(2, "b"))
		w.Append(p, Record{Type: RecCommit, Op: opID(2), Role: types.RoleParticipant})
		w.Prune(opID(1))
		recs := w.RecoverScan(p)
		if len(recs) != 2 {
			t.Fatalf("got %d records, want 2 (op1 pruned)", len(recs))
		}
		if recs[0].Op != opID(2) || recs[0].Type != RecResult {
			t.Errorf("recs[0]=%v", recs[0])
		}
		if recs[1].Type != RecCommit {
			t.Errorf("recs[1]=%v", recs[1])
		}
	})
}

func TestRecoverScanPaysReadCost(t *testing.T) {
	var scanTime time.Duration
	withWAL(t, 0, func(p *simrt.Proc, w *WAL) {
		for i := 0; i < 100; i++ {
			w.Append(p, resultRec(uint64(i), "somefilename"))
		}
		start := p.Now()
		w.RecoverScan(p)
		scanTime = p.Now() - start
	})
	if scanTime == 0 {
		t.Error("recovery scan was free; it must read the log")
	}
}

func TestLiveOps(t *testing.T) {
	withWAL(t, 0, func(p *simrt.Proc, w *WAL) {
		w.Append(p, resultRec(1, "a"))
		w.Append(p, resultRec(2, "b"))
		w.Prune(opID(1))
		ops := w.LiveOps()
		if len(ops) != 1 || ops[0] != opID(2) {
			t.Errorf("LiveOps=%v", ops)
		}
	})
}

func TestEncodeDecodeRoundTripAllTypes(t *testing.T) {
	recs := []Record{
		resultRec(9, "some-file-name.dat"),
		{Type: RecCommit, Op: opID(2), Role: types.RoleParticipant},
		{Type: RecAbort, Op: opID(3), Role: types.RoleCoordinator},
		{Type: RecComplete, Op: opID(4), Role: types.RoleCoordinator},
		{Type: RecInvalidate, Op: opID(5), Role: types.RoleParticipant},
	}
	for _, rec := range recs {
		got, err := RoundTrip(rec)
		if err != nil {
			t.Fatalf("%v: %v", rec, err)
		}
		if rec.Type == RecResult {
			if got.Sub.Name != rec.Sub.Name || got.Sub.Action != rec.Sub.Action ||
				got.Sub.Parent != rec.Sub.Parent || got.Sub.Ino != rec.Sub.Ino {
				t.Errorf("sub-op mangled: got %+v want %+v", got.Sub, rec.Sub)
			}
		}
		if got.Type != rec.Type || got.Op != rec.Op || got.Role != rec.Role || got.OK != rec.OK {
			t.Errorf("got %+v want %+v", got, rec)
		}
	}
}

func TestEncodeDecodeQuick(t *testing.T) {
	f := func(seq uint64, client int32, idx int32, name string, ok bool, parent, ino uint64) bool {
		if len(name) > 60000 {
			name = name[:60000]
		}
		rec := Record{
			Type: RecResult,
			Op:   types.OpID{Proc: types.ProcID{Client: types.NodeID(client), Index: idx}, Seq: seq},
			Role: types.RoleParticipant,
			OK:   ok,
			Sub: types.SubOp{
				Kind: types.OpMkdir, Action: types.ActAddInode,
				Parent: types.InodeID(parent), Ino: types.InodeID(ino),
				Name: name, Type: types.FileDir,
			},
		}
		got, err := RoundTrip(rec)
		if err != nil {
			return false
		}
		return got.Op == rec.Op && got.OK == rec.OK && got.Sub.Name == rec.Sub.Name &&
			got.Sub.Parent == rec.Sub.Parent && got.Sub.Ino == rec.Sub.Ino
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDecodeDetectsCorruption(t *testing.T) {
	rec := resultRec(1, "abc")
	buf := encode(&rec)
	buf[6] ^= 0xFF // flip a byte in the op ID
	if _, err := decode(buf); err == nil {
		t.Error("corrupted record decoded without error")
	}
	short := buf[:4]
	if _, err := decode(short); err == nil {
		t.Error("truncated record decoded without error")
	}
}

func TestEncodedSizeMatchesEncodeLen(t *testing.T) {
	for _, rec := range []Record{
		resultRec(1, ""),
		resultRec(2, "a-rather-long-file-name-for-size-check"),
		{Type: RecCommit, Op: opID(3), Role: types.RoleParticipant},
	} {
		if got, want := int64(len(encode(&rec))), EncodedSize(rec); got != want {
			t.Errorf("%v: len(encode)=%d, EncodedSize=%d", rec, got, want)
		}
	}
}

func TestAppendBatchPriorityIgnoresLimit(t *testing.T) {
	rec := resultRec(1, "pppp")
	limit := EncodedSize(rec) + 4
	s := simrt.New(1)
	d := disk.New(s, "d", disk.DefaultParams())
	w := New(s, d, 0, limit)
	var done bool
	s.Spawn("writer", func(p *simrt.Proc) {
		w.Append(p, rec) // fills the log
		// A priority append (commitment record) must not stall.
		w.AppendBatchPriority(p, []Record{{Type: RecCommit, Op: opID(1), Role: types.RoleParticipant}})
		done = true
		s.Stop()
	})
	s.RunUntil(time.Minute)
	s.Shutdown()
	if !done {
		t.Fatal("priority append stalled on a full log")
	}
	if w.Stats().FullStalls != 0 {
		t.Errorf("priority append counted a stall")
	}
}

func TestCrashDiscardsInFlightAppends(t *testing.T) {
	s := simrt.New(1)
	d := disk.New(s, "d", disk.DefaultParams())
	w := New(s, d, 0, 0)
	s.Spawn("writer", func(p *simrt.Proc) {
		go func() {}() // keep vet quiet about empty bodies? no-op
		w.Append(p, resultRec(1, "pre-crash"))
	})
	s.Spawn("crasher", func(p *simrt.Proc) {
		p.Sleep(time.Millisecond)
		w.Crash()
		// Appends while crashed vanish.
		w.Append(p, resultRec(2, "during-crash"))
		w.Reboot()
		w.Append(p, resultRec(3, "post-reboot"))
		s.Stop()
	})
	s.RunUntil(time.Minute)
	s.Shutdown()
	if w.Has(opID(2), RecResult) {
		t.Error("crashed-period append became durable")
	}
	if !w.Has(opID(3), RecResult) {
		t.Error("post-reboot append lost")
	}
}

func TestPeerFieldRoundTrips(t *testing.T) {
	rec := resultRec(5, "withpeer")
	rec.Peer, rec.HasPeer = 3, true
	got, err := RoundTrip(rec)
	if err != nil {
		t.Fatal(err)
	}
	if !got.HasPeer || got.Peer != 3 {
		t.Errorf("peer lost: %+v", got)
	}
	noPeer := Record{Type: RecCommit, Op: opID(6), Role: types.RoleCoordinator}
	got, err = RoundTrip(noPeer)
	if err != nil || got.HasPeer {
		t.Errorf("phantom peer: %+v err=%v", got, err)
	}
}

func TestImagesRoundTripInRecords(t *testing.T) {
	rec := resultRec(7, "imgs")
	rec.Before = []types.RowImage{{Key: "d/1/x", Val: nil}, {Key: "i/9", Val: []byte{1, 2}}}
	rec.After = []types.RowImage{{Key: "d/1/x", Val: []byte{9, 9, 9}}}
	got, err := RoundTrip(rec)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Before) != 2 || len(got.After) != 1 {
		t.Fatalf("image counts: %+v", got)
	}
	if got.Before[0].Val != nil || string(got.Before[1].Val) != "\x01\x02" {
		t.Errorf("before images mangled: %+v", got.Before)
	}
	if string(got.After[0].Val) != "\t\t\t" {
		t.Errorf("after image mangled: %+v", got.After)
	}
	if EncodedSize(rec) != int64(len(encode(&rec))) {
		t.Error("size mismatch with images")
	}
}

func TestStringersAndSyncDelay(t *testing.T) {
	s := simrt.New(1)
	d := disk.New(s, "d", disk.DefaultParams())
	w := New(s, d, 0, 0)
	if SyncDelay(d) <= 0 {
		t.Error("SyncDelay not positive")
	}
	_ = w.String()
	_ = RecInvalidate.String()
	_ = RecType(99).String()
	_ = resultRec(1, "x").String()
	s.Shutdown()
}

package baseline

import (
	"fmt"
	"sort"
	"time"

	"cxfs/internal/core"
	"cxfs/internal/namespace"
	"cxfs/internal/node"
	"cxfs/internal/simrt"
	"cxfs/internal/types"
	"cxfs/internal/wal"
	"cxfs/internal/wire"
)

// SEServer is the Serial Execution server (PVFS2/OrangeFS, §II.B). It has
// no cross-server commitment at all: each sub-op persists independently and
// the client sequences the two executions, compensating with CLEAR when the
// second fails. Batched mode is the paper's OFS-batched: updates are logged
// synchronously and flushed to the database lazily.
type SEServer struct {
	*node.Base
	pl      namespace.Placement
	batched bool
	flushT  time.Duration

	// pendingUndo retains the rollback for participant sub-ops until the
	// client's CLEAR can no longer come. SE has no protocol completion
	// signal, so the set is bounded: oldest entries are discarded — exactly
	// the window in which a crashed client leaves orphans (§II.B's
	// acknowledged weakness of SE).
	pendingUndo map[types.OpID]*namespace.Undo
	undoOrder   []types.OpID

	// localOps await the batched flush (batched mode only).
	localOps []localFlush

	// guard suppresses duplicate (retried) mutating requests.
	guard *dupGuard

	// Leased read path (optional; mirrors core's so the stat-storm
	// experiment can compare cache on/off across protocols).
	leases       *core.LeaseTable
	leaseTTL     time.Duration
	leaseGrants  uint64
	leaseRevokes uint64
}

type localFlush struct {
	id   types.OpID
	rows []string
}

const seUndoCap = 4096

// NewSEServer builds an SE server; batched selects OFS-batched behavior.
// flushTimeout paces the batched flush daemon (ignored in sync mode).
func NewSEServer(base *node.Base, pl namespace.Placement, batched bool, flushTimeout time.Duration) *SEServer {
	if flushTimeout <= 0 {
		flushTimeout = 10 * time.Second
	}
	return &SEServer{
		Base: base, pl: pl, batched: batched, flushT: flushTimeout,
		pendingUndo: make(map[types.OpID]*namespace.Undo),
		guard:       newDupGuard(),
		leases:      core.NewLeaseTable(4096),
	}
}

// SetLeaseTTL enables the leased read path: lookup replies carry a lease of
// this duration and mutations revoke. 0 (the default) answers lookups
// without a lease.
func (s *SEServer) SetLeaseTTL(ttl time.Duration) { s.leaseTTL = ttl }

// Start launches the inbox loop plus the write-back daemon: the batched
// flush daemon in OFS-batched mode, or the database checkpointer in plain
// sync mode (BDB journal appends defer the in-place page writes to it).
func (s *SEServer) Start() {
	s.Base.Start(s.handle)
	if s.batched {
		s.Sim.Spawn(fmt.Sprintf("se%d/flushd", s.ID), s.flushDaemon)
	} else {
		s.KV.StartCheckpointer(s.flushT)
	}
}

func (s *SEServer) flushDaemon(p *simrt.Proc) {
	for {
		p.Sleep(s.flushT)
		if s.Crashed() {
			continue
		}
		s.flushLocal(p)
	}
}

func (s *SEServer) flushLocal(p *simrt.Proc) {
	if len(s.localOps) == 0 {
		return
	}
	ops := s.localOps
	s.localOps = nil
	var rows []string
	for _, lo := range ops {
		rows = append(rows, lo.rows...)
	}
	s.KV.FlushKeys(p, rows)
	if s.Crashed() {
		return
	}
	for _, lo := range ops {
		s.WAL.Prune(lo.id)
	}
}

func (s *SEServer) handle(p *simrt.Proc, m wire.Msg) {
	switch m.Type {
	case wire.MsgSubOpReq:
		s.handleSubOp(p, m)
	case wire.MsgOpReq:
		s.handleLocalOp(p, m)
	case wire.MsgClear:
		s.handleClear(p, m)
	case wire.MsgLookupReq:
		s.handleLookup(p, m)
	}
}

// handleLookup serves the leased read path. SE executes serially and
// persists before replying, so resolving straight from the shard is safe;
// there is no active-object table to park behind.
func (s *SEServer) handleLookup(p *simrt.Proc, m wire.Msg) {
	s.ExecCPU(p)
	if s.Crashed() {
		return
	}
	in, found := s.Shard.ResolveEntry(m.Dir, m.Path)
	reply := wire.Msg{Type: wire.MsgLookupResp, To: m.From, Op: m.Op,
		OK: found, Dir: m.Dir, Path: m.Path, Attr: in}
	if !found {
		reply.Err = types.ErrNotFound.Error()
	}
	if s.leaseTTL > 0 {
		reply.LeaseEpoch = s.Boot() + 1
		reply.LeaseTTL = s.leaseTTL
		s.leases.Grant(m.Dir, m.Path, m.From, s.Sim.Now(), s.leaseTTL)
		s.leaseGrants++
	}
	s.Send(reply)
}

// revokeLeases notifies lease holders that (dir, name) is changing.
func (s *SEServer) revokeLeases(dir types.InodeID, name string, op types.OpID) {
	for _, h := range s.leases.Revoke(dir, name) {
		s.Send(wire.Msg{Type: wire.MsgConflictNotify, To: h, Op: op,
			Dir: dir, Path: name, LeaseEpoch: s.Boot() + 1})
		s.leaseRevokes++
	}
}

// LeasesOutstanding reports unexpired leased entries on this server.
func (s *SEServer) LeasesOutstanding() int { return s.leases.Outstanding(s.Sim.Now()) }

// LeaseStats returns cumulative grant and revocation counts.
func (s *SEServer) LeaseStats() (granted, revoked uint64) {
	return s.leaseGrants, s.leaseRevokes
}

// maybeRevoke fires the lease revocation when an executed sub-op mutated a
// directory entry.
func (s *SEServer) maybeRevoke(sub types.SubOp) {
	switch sub.Action {
	case types.ActInsertEntry, types.ActRemoveEntry:
		s.revokeLeases(sub.Parent, sub.Name, sub.Op)
	}
}

// persist makes an execution durable per the server's mode: plain OFS
// writes the rows synchronously into the database; OFS-batched appends a
// log record and defers the database write to the flush daemon.
func (s *SEServer) persist(p *simrt.Proc, id types.OpID, sub types.SubOp, res namespace.Result) {
	if !s.batched {
		s.KV.SyncKeys(p, res.Rows)
		return
	}
	s.WAL.Append(p, wal.Record{Type: wal.RecResult, Op: id, Role: sub.Role,
		OK: true, Sub: sub, Before: res.Before, After: res.After})
	if s.Crashed() {
		return
	}
	s.localOps = append(s.localOps, localFlush{id: id, rows: res.Rows})
}

func (s *SEServer) handleSubOp(p *simrt.Proc, m wire.Msg) {
	sub := m.Sub
	mutating := sub.Action.Mutating()
	if mutating {
		if cached, ok := s.guard.cached(sub.Op); ok {
			cached.To = m.From
			s.Send(cached)
			return
		}
		if !s.guard.begin(sub.Op) {
			return // duplicate of an execution still in flight
		}
		defer s.guard.abandon(sub.Op)
	}
	s.ExecCPU(p)
	res := s.Shard.Exec(sub, s.NowNanos())
	if res.OK && mutating {
		s.maybeRevoke(sub)
		s.persist(p, sub.Op, sub, res)
		if s.CrashPoint("se:after-persist", sub.Op) {
			return
		}
		if sub.Kind.CrossServer() && sub.Role == types.RoleParticipant {
			s.retainUndo(sub.Op, res.Undo)
		}
	}
	reply := wire.Msg{Type: wire.MsgSubOpResp, To: m.From, Op: sub.Op, OK: res.OK, Attr: res.Inode, Epoch: 1}
	if res.Err != nil {
		reply.Err = res.Err.Error()
	}
	if mutating {
		s.guard.finish(sub.Op, reply)
	}
	s.Send(reply)
}

func (s *SEServer) retainUndo(id types.OpID, u *namespace.Undo) {
	if len(s.undoOrder) >= seUndoCap {
		drop := s.undoOrder[0]
		s.undoOrder = s.undoOrder[1:]
		delete(s.pendingUndo, drop)
	}
	s.pendingUndo[id] = u
	s.undoOrder = append(s.undoOrder, id)
}

// handleClear compensates a participant sub-op whose coordinator-side
// failed (§II.B: "the process withdraws the former sub-ops by sending a
// CLEAR message").
func (s *SEServer) handleClear(p *simrt.Proc, m wire.Msg) {
	if u, ok := s.pendingUndo[m.Op]; ok {
		delete(s.pendingUndo, m.Op)
		s.Shard.ApplyUndo(u)
		if !s.batched {
			s.KV.SyncKeys(p, u.Keys())
		} else {
			s.localOps = append(s.localOps, localFlush{id: m.Op, rows: u.Keys()})
		}
		if s.Crashed() {
			return
		}
	}
	s.Send(wire.Msg{Type: wire.MsgOpResp, To: m.From, Op: m.Op, OK: true})
}

// handleLocalOp executes a colocated cross-server op or a single-server
// update locally.
func (s *SEServer) handleLocalOp(p *simrt.Proc, m wire.Msg) {
	op := m.FullOp
	if op.Kind == types.OpReaddir {
		s.ServeReaddir(m)
		return
	}
	if op.Kind.Mutating() {
		if cached, ok := s.guard.cached(op.ID); ok {
			cached.To = m.From
			s.Send(cached)
			return
		}
		if !s.guard.begin(op.ID) {
			return
		}
		defer s.guard.abandon(op.ID)
	}
	reply := wire.Msg{Type: wire.MsgOpResp, To: m.From, Op: op.ID, OK: true}
	s.ExecCPU(p)
	if op.Kind.CrossServer() {
		cSub, pSub := types.Split(op)
		resP := s.Shard.Exec(pSub, s.NowNanos())
		if !resP.OK {
			reply.OK, reply.Err = false, resP.Err.Error()
			s.Send(reply)
			return
		}
		resC := s.Shard.Exec(cSub, s.NowNanos())
		if !resC.OK {
			s.Shard.ApplyUndo(resP.Undo)
			reply.OK, reply.Err = false, resC.Err.Error()
			s.Send(reply)
			return
		}
		s.maybeRevoke(cSub)
		s.persist(p, op.ID, pSub, resP)
		if s.Crashed() {
			return
		}
		s.persist(p, op.ID, cSub, resC)
	} else {
		sub := types.SingleSubOp(op)
		res := s.Shard.Exec(sub, s.NowNanos())
		reply.OK, reply.Attr = res.OK, res.Inode
		if res.Err != nil {
			reply.Err = res.Err.Error()
		}
		if res.OK && sub.Action.Mutating() {
			s.maybeRevoke(sub)
			s.persist(p, op.ID, sub, res)
		}
	}
	if s.Crashed() {
		return
	}
	if op.Kind.Mutating() {
		s.guard.finish(op.ID, reply)
	}
	s.Send(reply)
}

// SEDriver is the client side of Serial Execution: participant first, then
// coordinator, compensating with CLEAR on a late failure (§II.B, Fig 1b).
type SEDriver struct {
	host  *node.Host
	pl    namespace.Placement
	retry types.RetryPolicy
	cache *core.Cache
	observed
}

// NewSEDriver builds an SE driver bound to a client host.
func NewSEDriver(host *node.Host, pl namespace.Placement) *SEDriver {
	return &SEDriver{host: host, pl: pl}
}

// SetRetry installs the per-RPC timeout/retry policy (zero = block forever).
func (d *SEDriver) SetRetry(rp types.RetryPolicy) { d.retry = rp }

// SetCache attaches a leased metadata cache (shared Cache implementation
// from core) and installs the host's revocation hook.
func (d *SEDriver) SetCache(c *core.Cache) {
	d.cache = c
	if c == nil {
		return
	}
	d.host.SetNotify(func(m wire.Msg) bool {
		if m.Type == wire.MsgConflictNotify && m.Path != "" {
			c.Revoke(m.Dir, m.Path, m.From, m.LeaseEpoch)
			return true
		}
		return false
	})
}

// FlushCache drops every cached entry.
func (d *SEDriver) FlushCache() {
	if d.cache != nil {
		d.cache.Flush()
	}
}

// doLookup serves a lookup from the cache under lease, or round-trips a
// LookupReq and installs the granted lease.
func (d *SEDriver) doLookup(p *simrt.Proc, op types.Op) (types.Inode, error) {
	if attr, found, _, ok := d.cache.Get(d.host.Sim.Now(), op.Parent, op.Name); ok {
		if !found {
			return types.Inode{}, types.ErrNotFound
		}
		return attr, nil
	}
	route := d.host.Open(op.ID)
	defer d.host.Done(op.ID)
	issued := d.host.Sim.Now()
	m, ok := rpcCall(p, d.host, d.retry, route, wire.Msg{Type: wire.MsgLookupReq,
		To: d.pl.CoordinatorFor(op.Parent, op.Name), Op: op.ID,
		Dir: op.Parent, Path: op.Name, ReplyProc: op.ID.Proc})
	if !ok {
		return types.Inode{}, types.ErrTimeout
	}
	d.cache.Put(issued, d.host.Sim.Now(), m)
	if m.OK {
		return m.Attr, nil
	}
	return types.Inode{}, errString(m.Err)
}

// Do executes one metadata operation serially.
func (d *SEDriver) Do(p *simrt.Proc, op types.Op) (types.Inode, error) {
	return d.record(d.host, op, func() (types.Inode, error) { return d.do(p, op) })
}

func (d *SEDriver) do(p *simrt.Proc, op types.Op) (types.Inode, error) {
	if d.cache != nil {
		if op.Kind == types.OpLookup {
			return d.doLookup(p, op)
		}
		if op.Kind.Mutating() {
			d.cache.Invalidate(op.Parent, op.Name)
			if op.Kind == types.OpRename {
				d.cache.Invalidate(op.NewParent, op.NewName)
			}
		}
	}
	if !op.Kind.CrossServer() {
		return singleServerOp(p, d.host, d.pl, d.retry, op)
	}
	coord := d.pl.CoordinatorFor(op.Parent, op.Name)
	part := d.pl.ParticipantFor(op.Ino)
	if coord == part {
		return localOpCall(p, d.host, op, coord, d.retry)
	}
	cSub, pSub := types.Split(op)
	route := d.host.Open(op.ID)
	defer d.host.Done(op.ID)

	// Step 1: participant executes first.
	m, ok := seCall(p, d.host, d.retry, route, wire.Msg{Type: wire.MsgSubOpReq, To: part, Op: op.ID, Sub: pSub, Peer: coord, ReplyProc: op.ID.Proc})
	if !ok {
		return types.Inode{}, types.ErrTimeout
	}
	if !m.OK {
		return types.Inode{}, errString(m.Err)
	}
	// Step 2: then the coordinator.
	m, ok = seCall(p, d.host, d.retry, route, wire.Msg{Type: wire.MsgSubOpReq, To: coord, Op: op.ID, Sub: cSub, Peer: part, ReplyProc: op.ID.Proc})
	if !ok {
		// The participant's half may be durable with no withdrawal possible:
		// exactly SE's documented orphan window. Best-effort CLEAR.
		seCall(p, d.host, d.retry, route, wire.Msg{Type: wire.MsgClear, To: part, Op: op.ID, ReplyProc: op.ID.Proc})
		return types.Inode{}, types.ErrTimeout
	}
	if m.OK {
		return m.Attr, nil
	}
	// Compensate: CLEAR the participant's execution.
	err := errString(m.Err)
	seCall(p, d.host, d.retry, route, wire.Msg{Type: wire.MsgClear, To: part, Op: op.ID, ReplyProc: op.ID.Proc})
	return types.Inode{}, err
}

// seCall sends req and awaits the reply from the addressed server,
// retransmitting per the policy and discarding stray responses from the
// operation's other leg (late duplicates under faults).
func seCall(p *simrt.Proc, host *node.Host, rp types.RetryPolicy, route *simrt.Chan[wire.Msg], req wire.Msg) (wire.Msg, bool) {
	if !rp.Enabled() {
		host.Send(req)
		for {
			m := route.Recv(p)
			if m.From == req.To {
				return m, true
			}
		}
	}
	for attempt := 0; attempt < rp.MaxAttempts(); attempt++ {
		host.Send(req)
		deadline := p.Now() + rp.WaitFor(attempt)
		for {
			remaining := deadline - p.Now()
			if remaining <= 0 {
				break
			}
			m, ok := route.RecvTimeout(p, remaining)
			if !ok {
				break
			}
			if m.From == req.To {
				return m, true
			}
		}
	}
	return wire.Msg{}, false
}

// Shared client helpers -----------------------------------------------------

// singleServerOp routes a read or single-server update to its owner server
// as an OpReq (SE, 2PC, and CE all use the plain local path for these).
func singleServerOp(p *simrt.Proc, host *node.Host, pl namespace.Placement, rp types.RetryPolicy, op types.Op) (types.Inode, error) {
	var target types.NodeID
	switch op.Kind {
	case types.OpLookup:
		target = pl.CoordinatorFor(op.Parent, op.Name)
	default:
		target = pl.ParticipantFor(op.Ino)
	}
	return localOpCall(p, host, op, target, rp)
}

// localOpCall sends a whole op to one server and awaits the response,
// retransmitting per the retry policy.
func localOpCall(p *simrt.Proc, host *node.Host, op types.Op, server types.NodeID, rp types.RetryPolicy) (types.Inode, error) {
	route := host.Open(op.ID)
	defer host.Done(op.ID)
	m, ok := rpcCall(p, host, rp, route, wire.Msg{Type: wire.MsgOpReq, To: server, Op: op.ID, FullOp: op, ReplyProc: op.ID.Proc})
	if !ok {
		return types.Inode{}, types.ErrTimeout
	}
	if m.OK {
		return m.Attr, nil
	}
	return types.Inode{}, errString(m.Err)
}

// Readdir fans the listing out to every server and unions the partitions;
// shared by every protocol driver.
func Readdir(p *simrt.Proc, host *node.Host, servers int, id types.OpID, dir types.InodeID) ([]namespace.DirEntry, error) {
	route := host.Open(id)
	defer host.Done(id)
	op := types.Op{ID: id, Kind: types.OpReaddir, Parent: dir}
	for srv := 0; srv < servers; srv++ {
		host.Send(wire.Msg{Type: wire.MsgOpReq, To: types.NodeID(srv), Op: id, FullOp: op, ReplyProc: id.Proc})
	}
	var out []namespace.DirEntry
	for got := 0; got < servers; got++ {
		m := route.Recv(p)
		if !m.OK {
			return nil, errString(m.Err)
		}
		for _, r := range m.Rows {
			if len(r.Val) == 8 {
				out = append(out, namespace.DirEntry{Name: r.Key, Ino: decodeIno(r.Val)})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

func decodeIno(v []byte) types.InodeID {
	var x uint64
	for i := 7; i >= 0; i-- {
		x = x<<8 | uint64(v[i])
	}
	return types.InodeID(x)
}

// errString maps a response error back to the shared sentinel errors.
func errString(msg string) error {
	if msg == "" {
		return types.ErrAborted
	}
	for _, known := range []error{
		types.ErrExists, types.ErrNotFound, types.ErrNotEmpty,
		types.ErrNotDir, types.ErrIsDir, types.ErrAborted,
	} {
		if msg == known.Error() || len(msg) > len(known.Error()) &&
			msg[len(msg)-len(known.Error()):] == known.Error() {
			return fmt.Errorf("%s: %w", msg, known)
		}
	}
	return fmt.Errorf("%s", msg)
}

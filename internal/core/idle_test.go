// Tests for the idle-time commitment trigger — the paper's §IV.A
// future-work extension.
package core_test

import (
	"fmt"
	"testing"
	"time"

	"cxfs/internal/cluster"
	"cxfs/internal/simrt"
	"cxfs/internal/types"
)

func TestIdleTriggerCommitsDuringQuietPeriods(t *testing.T) {
	o := cluster.DefaultOptions(4, cluster.ProtoCx)
	o.ClientHosts = 2
	o.ProcsPerHost = 1
	o.Cx.Timeout = time.Hour // the timeout trigger stays out of the way
	o.Cx.IdleTrigger = 50 * time.Millisecond
	c := cluster.MustNew(o)
	defer c.Shutdown()
	c.Sim.Spawn("t", func(p *simrt.Proc) {
		pr := c.Proc(0)
		for j := 0; j < 8; j++ {
			if _, err := pr.Create(p, types.RootInode, fmt.Sprintf("idle-%d", j)); err != nil {
				t.Errorf("create: %v", err)
			}
		}
		pendingBefore := 0
		for _, srv := range c.CxSrv {
			pendingBefore += srv.PendingOps()
		}
		if pendingBefore == 0 {
			t.Fatal("nothing pending; scenario broken")
		}
		// Go idle: the trigger must drain everything without any other
		// trigger or client involvement.
		p.Sleep(400 * time.Millisecond)
		pendingAfter := 0
		for _, srv := range c.CxSrv {
			pendingAfter += srv.PendingOps()
		}
		if pendingAfter != 0 {
			t.Errorf("%d ops still pending after idle period", pendingAfter)
		}
		c.Sim.Stop()
	})
	c.Sim.RunUntil(time.Hour)
	if !c.Sim.Stopped() {
		t.Fatal("hung")
	}
}

func TestIdleTriggerHoldsOffWhileBusy(t *testing.T) {
	// While requests keep arriving faster than the idle window, the idle
	// trigger must not fire (the timeout trigger owns busy periods).
	o := cluster.DefaultOptions(4, cluster.ProtoCx)
	o.ClientHosts = 2
	o.ProcsPerHost = 1
	o.Cx.Timeout = time.Hour
	o.Cx.IdleTrigger = 80 * time.Millisecond
	c := cluster.MustNew(o)
	defer c.Shutdown()
	c.Sim.Spawn("t", func(p *simrt.Proc) {
		pr := c.Proc(0)
		for j := 0; j < 12; j++ {
			if _, err := pr.Create(p, types.RootInode, fmt.Sprintf("busy-%d", j)); err != nil {
				t.Errorf("create: %v", err)
			}
			p.Sleep(20 * time.Millisecond) // arrivals keep the servers busy
		}
		var idleBatches uint64
		for _, srv := range c.CxSrv {
			idleBatches += srv.Stats().LazyBatches
		}
		if idleBatches > 3 {
			t.Errorf("idle trigger fired %d times during a busy stream", idleBatches)
		}
		c.Sim.Stop()
	})
	c.Sim.RunUntil(time.Hour)
	if !c.Sim.Stopped() {
		t.Fatal("hung")
	}
}

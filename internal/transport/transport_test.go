package transport

import (
	"testing"
	"time"

	"cxfs/internal/simrt"
	"cxfs/internal/types"
	"cxfs/internal/wire"
)

func TestSendDeliversAfterModelDelay(t *testing.T) {
	s := simrt.New(1)
	n := New(s, DefaultParams())
	box := n.Register(1)
	n.Register(0)
	var at time.Duration
	s.Spawn("recv", func(p *simrt.Proc) {
		box.Recv(p)
		at = p.Now()
		s.Stop()
	})
	s.Spawn("send", func(p *simrt.Proc) {
		n.Send(wire.Msg{Type: wire.MsgAck, From: 0, To: 1})
	})
	s.Run()
	s.Shutdown()
	m := wire.Msg{Type: wire.MsgAck, From: 0, To: 1}
	pp := DefaultParams()
	want := pp.CPUOverhead + pp.Latency + time.Duration(wire.Size(&m)*int64(time.Second)/pp.Bandwidth)
	if at != want {
		t.Errorf("delivered at %v, want %v", at, want)
	}
}

func TestFIFOBetweenPair(t *testing.T) {
	s := simrt.New(1)
	n := New(s, DefaultParams())
	box := n.Register(1)
	n.Register(0)
	var seqs []uint64
	s.Spawn("recv", func(p *simrt.Proc) {
		for i := 0; i < 10; i++ {
			m := box.Recv(p)
			seqs = append(seqs, m.Op.Seq)
		}
		s.Stop()
	})
	s.Spawn("send", func(p *simrt.Proc) {
		for i := 0; i < 10; i++ {
			n.Send(wire.Msg{Type: wire.MsgAck, From: 0, To: 1, Op: types.OpID{Seq: uint64(i)}})
		}
	})
	s.Run()
	s.Shutdown()
	for i, v := range seqs {
		if v != uint64(i) {
			t.Fatalf("out of order: %v", seqs)
		}
	}
}

func TestStatsCountByType(t *testing.T) {
	s := simrt.New(1)
	n := New(s, DefaultParams())
	n.Register(0)
	n.Register(1)
	s.Spawn("send", func(p *simrt.Proc) {
		n.Send(wire.Msg{Type: wire.MsgVote, From: 0, To: 1})
		n.Send(wire.Msg{Type: wire.MsgVote, From: 0, To: 1})
		n.Send(wire.Msg{Type: wire.MsgAck, From: 1, To: 0})
	})
	s.Run()
	s.Shutdown()
	st := n.Stats()
	if st.Messages != 3 || st.ByType[wire.MsgVote] != 2 || st.ByType[wire.MsgAck] != 1 {
		t.Errorf("stats=%+v", st)
	}
	if st.Bytes == 0 {
		t.Error("no bytes counted")
	}
}

func TestStatsSub(t *testing.T) {
	a := Stats{Messages: 10, Bytes: 100, DroppedDown: 5, DroppedUnroutable: 3}
	a.ByType[wire.MsgVote] = 4
	b := Stats{Messages: 3, Bytes: 30, DroppedDown: 2, DroppedUnroutable: 1}
	b.ByType[wire.MsgVote] = 1
	d := a.Sub(b)
	if d.Messages != 7 || d.Bytes != 70 || d.ByType[wire.MsgVote] != 3 {
		t.Errorf("diff=%+v", d)
	}
	if d.DroppedDown != 3 || d.DroppedUnroutable != 2 {
		t.Errorf("drop counters not subtracted: %+v", d)
	}
}

func TestDownNodeDropsMessages(t *testing.T) {
	s := simrt.New(1)
	n := New(s, DefaultParams())
	box := n.Register(1)
	n.Register(0)
	got := 0
	s.Spawn("recv", func(p *simrt.Proc) {
		for {
			if _, ok := box.RecvTimeout(p, time.Second); !ok {
				s.Stop()
				return
			}
			got++
		}
	})
	s.Spawn("send", func(p *simrt.Proc) {
		n.SetDown(1, true)
		n.Send(wire.Msg{Type: wire.MsgAck, From: 0, To: 1})
		p.Sleep(10 * time.Millisecond)
		n.SetDown(1, false)
		n.Send(wire.Msg{Type: wire.MsgAck, From: 0, To: 1})
	})
	s.Run()
	s.Shutdown()
	if got != 1 {
		t.Errorf("delivered %d messages, want 1 (first dropped)", got)
	}
	if d := n.Stats().DroppedDown; d != 1 {
		t.Errorf("DroppedDown=%d, want 1", d)
	}
}

func TestSendToUnregisteredCountsDrop(t *testing.T) {
	s := simrt.New(1)
	n := New(s, DefaultParams())
	n.Register(0)
	defer s.Shutdown()
	// A route can go stale while a message is in flight (the destination
	// was never started in this configuration, or a test tore it down);
	// that is a lost message in the failure model, not a program error.
	n.Send(wire.Msg{Type: wire.MsgAck, From: 0, To: 99})
	n.Send(wire.Msg{Type: wire.MsgAck, From: 0, To: 100})
	st := n.Stats()
	if st.DroppedUnroutable != 2 {
		t.Errorf("DroppedUnroutable=%d, want 2", st.DroppedUnroutable)
	}
	if st.Messages != 0 {
		t.Errorf("unroutable sends counted as delivered: %+v", st)
	}
}

// TestMidFlightCrashAccounting covers the race the panic used to hide: the
// destination goes down while messages are already in flight. Every copy
// must be accounted as dropped, none delivered, and the network must stay
// usable for the survivors.
func TestMidFlightCrashAccounting(t *testing.T) {
	s := simrt.New(1)
	n := New(s, DefaultParams())
	box1 := n.Register(1)
	box2 := n.Register(2)
	n.Register(0)
	got1, got2 := 0, 0
	s.Spawn("recv1", func(p *simrt.Proc) {
		for {
			if _, ok := box1.RecvTimeout(p, time.Second); !ok {
				return
			}
			got1++
		}
	})
	s.Spawn("recv2", func(p *simrt.Proc) {
		for {
			if _, ok := box2.RecvTimeout(p, time.Second); !ok {
				s.Stop()
				return
			}
			got2++
		}
	})
	s.Spawn("send", func(p *simrt.Proc) {
		const inFlight = 5
		for i := 0; i < inFlight; i++ {
			n.Send(wire.Msg{Type: wire.MsgAck, From: 0, To: 1})
		}
		// Crash node 1 before its delivery time arrives: all five copies
		// are mid-flight and must be dropped at delivery, not delivered
		// and not panicked over.
		n.SetDown(1, true)
		p.Sleep(10 * time.Millisecond)
		// The surviving node still gets traffic.
		n.Send(wire.Msg{Type: wire.MsgAck, From: 0, To: 2})
	})
	s.Run()
	s.Shutdown()
	if got1 != 0 {
		t.Errorf("crashed node received %d messages, want 0", got1)
	}
	if got2 != 1 {
		t.Errorf("survivor received %d messages, want 1", got2)
	}
	if d := n.Stats().DroppedDown; d != 5 {
		t.Errorf("DroppedDown=%d, want 5 (all in-flight copies)", d)
	}
}

func TestRegisterIdempotent(t *testing.T) {
	s := simrt.New(1)
	n := New(s, DefaultParams())
	a := n.Register(5)
	b := n.Register(5)
	if a != b {
		t.Error("Register returned different inboxes for the same node")
	}
	s.Shutdown()
}

func TestBigMessagePaysTransferTime(t *testing.T) {
	s := simrt.New(1)
	n := New(s, DefaultParams())
	box := n.Register(1)
	n.Register(0)
	var small, big time.Duration
	s.Spawn("recv", func(p *simrt.Proc) {
		start := p.Now()
		box.Recv(p)
		small = p.Now() - start
		start = p.Now()
		box.Recv(p)
		big = p.Now() - start
		s.Stop()
	})
	s.Spawn("send", func(p *simrt.Proc) {
		n.Send(wire.Msg{Type: wire.MsgAck, From: 0, To: 1})
		p.Sleep(time.Second)
		rows := []wire.Row{{Key: "k", Val: make([]byte, 10<<20)}}
		n.Send(wire.Msg{Type: wire.MsgMigrateResp, From: 0, To: 1, Rows: rows})
	})
	s.Run()
	s.Shutdown()
	if big <= small {
		t.Errorf("10MB message (%v) not slower than small (%v)", big, small)
	}
}

// TestSendDropsUnencodableMessage proves the sim network enforces the same
// wire limits the codec does: a message a real NIC could not frame is
// counted in DroppedInvalid and never delivered.
func TestSendDropsUnencodableMessage(t *testing.T) {
	s := simrt.New(1)
	n := New(s, DefaultParams())
	box := n.Register(1)
	n.Register(0)
	delivered := 0
	s.Spawn("recv", func(p *simrt.Proc) {
		for {
			box.Recv(p)
			delivered++
		}
	})
	s.Spawn("send", func(p *simrt.Proc) {
		bad := wire.Msg{Type: wire.MsgVote, From: 0, To: 1,
			Ops: make([]types.OpID, wire.MaxBatch+1)}
		n.Send(bad)
		n.Send(wire.Msg{Type: wire.MsgPing, From: 0, To: 1})
		p.Sleep(time.Second)
		s.Stop()
	})
	s.Run()
	s.Shutdown()
	st := n.Stats()
	if st.DroppedInvalid != 1 {
		t.Errorf("DroppedInvalid = %d, want 1", st.DroppedInvalid)
	}
	if delivered != 1 {
		t.Errorf("delivered %d messages, want only the valid ping", delivered)
	}
	if st.Messages != 1 {
		t.Errorf("Messages = %d; invalid sends must not be counted as traffic", st.Messages)
	}
}

package metarates

import (
	"testing"

	"cxfs/internal/cluster"
)

// smallCluster keeps benchmark tests fast: paper ratios of clients to
// servers, few processes.
func smallCluster(servers int, proto cluster.Protocol) *cluster.Cluster {
	o := cluster.DefaultOptions(servers, proto)
	o.ClientHosts = servers * 2
	o.ProcsPerHost = 2
	return o2cluster(o)
}

func o2cluster(o cluster.Options) *cluster.Cluster { return cluster.MustNew(o) }

func TestRunProducesThroughput(t *testing.T) {
	c := smallCluster(4, cluster.ProtoCx)
	defer c.Shutdown()
	res := Run(c, Config{Mix: UpdateDominated, OpsPerProc: 30})
	if res.Throughput <= 0 {
		t.Fatalf("no throughput: %+v", res)
	}
	if res.Errors != 0 {
		t.Errorf("errors: %d", res.Errors)
	}
	if res.Ops != c.NumProcs()*30 {
		t.Errorf("ops=%d", res.Ops)
	}
	if bad := c.CheckInvariants(); len(bad) != 0 {
		t.Errorf("invariants: %v", bad)
	}
}

func TestUpdateDominatedFavorsCxMore(t *testing.T) {
	// Figure 6: the update-dominated gain (>=70%) exceeds the
	// read-dominated gain (>=40%) because updates are cross-server. The
	// property is stated for the paper's load proportions (4 client hosts
	// per server, 8 processes each), so test at those proportions.
	gain := func(mix Mix) float64 {
		tput := map[cluster.Protocol]float64{}
		for _, proto := range []cluster.Protocol{cluster.ProtoSE, cluster.ProtoCx} {
			c := cluster.MustNew(cluster.DefaultOptions(2, proto))
			res := Run(c, Config{Mix: mix, OpsPerProc: 20})
			tput[proto] = res.Throughput
			c.Shutdown()
		}
		return tput[cluster.ProtoCx]/tput[cluster.ProtoSE] - 1
	}
	up := gain(UpdateDominated)
	rd := gain(ReadDominated)
	if up <= 0 || rd <= 0 {
		t.Fatalf("Cx not ahead: update=%+.2f read=%+.2f", up, rd)
	}
	if up <= rd {
		t.Errorf("update-dominated gain (%.2f) should exceed read-dominated (%.2f)", up, rd)
	}
}

func TestThroughputScalesWithServers(t *testing.T) {
	// Figure 6: aggregated throughput grows with the server count.
	var prev float64
	for _, n := range []int{2, 4, 8} {
		c := smallCluster(n, cluster.ProtoCx)
		res := Run(c, Config{Mix: UpdateDominated, OpsPerProc: 30})
		c.Shutdown()
		if res.Throughput <= prev {
			t.Errorf("throughput did not scale: %d servers -> %.0f ops/s (prev %.0f)",
				n, res.Throughput, prev)
		}
		prev = res.Throughput
	}
}

func TestPrepopulateRunsOutsideMeasuredWindow(t *testing.T) {
	cA := smallCluster(2, cluster.ProtoCx)
	resA := Run(cA, Config{Mix: ReadDominated, OpsPerProc: 20})
	cA.Shutdown()
	cB := smallCluster(2, cluster.ProtoCx)
	resB := Run(cB, Config{Mix: ReadDominated, OpsPerProc: 20, Prepopulate: 10})
	cB.Shutdown()
	// Throughput with prepopulation should be in the same ballpark — the
	// prefill must not count into the measured window.
	if resB.Throughput < resA.Throughput/3 {
		t.Errorf("prepopulation leaked into measurement: %.0f vs %.0f", resB.Throughput, resA.Throughput)
	}
}

func TestMixesDifferInMessageVolume(t *testing.T) {
	cU := smallCluster(2, cluster.ProtoCx)
	resU := Run(cU, Config{Mix: UpdateDominated, OpsPerProc: 30})
	cU.Shutdown()
	cR := smallCluster(2, cluster.ProtoCx)
	resR := Run(cR, Config{Mix: ReadDominated, OpsPerProc: 30})
	cR.Shutdown()
	if resU.Messages <= resR.Messages {
		t.Errorf("update-dominated (%d msgs) should out-message read-dominated (%d)",
			resU.Messages, resR.Messages)
	}
}

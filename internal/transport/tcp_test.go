package transport

import (
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"cxfs/internal/obs"
	"cxfs/internal/types"
	"cxfs/internal/wire"
)

func TestMsgConnRoundTripOverPipe(t *testing.T) {
	a, b := net.Pipe()
	ca, cb := NewMsgConn(a), NewMsgConn(b)
	defer ca.Close()
	defer cb.Close()

	sent := wire.Msg{
		Type: wire.MsgSubOpReq, From: 100, To: 2,
		Op:  types.OpID{Proc: types.ProcID{Client: 100, Index: 3}, Seq: 42},
		Sub: types.SubOp{Kind: types.OpCreate, Action: types.ActInsertEntry, Parent: 1, Name: "over-the-wire", Ino: 77},
	}
	done := make(chan error, 1)
	go func() { done <- ca.WriteMsg(&sent) }()
	got, err := cb.ReadMsg()
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("write: %v", err)
	}
	if got.Op != sent.Op || got.Sub.Name != sent.Sub.Name || got.Type != sent.Type {
		t.Errorf("got %+v", got)
	}
}

func TestMsgServerEcho(t *testing.T) {
	srv, err := ListenMsg("127.0.0.1:0", func(m wire.Msg) *wire.Msg {
		reply := wire.Msg{Type: wire.MsgOpResp, Op: m.Op, OK: true, Err: "echo:" + m.Err}
		return &reply
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := DialMsg(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for i := 0; i < 20; i++ {
		m := wire.Msg{Type: wire.MsgOpReq, Op: types.OpID{Seq: uint64(i)}, Err: fmt.Sprintf("m%d", i)}
		if err := conn.WriteMsg(&m); err != nil {
			t.Fatal(err)
		}
		r, err := conn.ReadMsg()
		if err != nil {
			t.Fatal(err)
		}
		if r.Op.Seq != uint64(i) || r.Err != fmt.Sprintf("echo:m%d", i) {
			t.Errorf("reply %d: %+v", i, r)
		}
	}
}

func TestMsgServerConcurrentClients(t *testing.T) {
	srv, err := ListenMsg("127.0.0.1:0", func(m wire.Msg) *wire.Msg {
		reply := wire.Msg{Type: wire.MsgOpResp, Op: m.Op, OK: true}
		return &reply
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for c := 0; c < 8; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn, err := DialMsg(srv.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			for i := 0; i < 50; i++ {
				seq := uint64(c*1000 + i)
				if err := conn.WriteMsg(&wire.Msg{Type: wire.MsgOpReq, Op: types.OpID{Seq: seq}}); err != nil {
					errs <- err
					return
				}
				r, err := conn.ReadMsg()
				if err != nil {
					errs <- err
					return
				}
				if r.Op.Seq != seq {
					errs <- fmt.Errorf("client %d: got seq %d want %d", c, r.Op.Seq, seq)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestMsgConnLargePayload(t *testing.T) {
	srv, err := ListenMsg("127.0.0.1:0", func(m wire.Msg) *wire.Msg {
		reply := wire.Msg{Type: wire.MsgMigrateAck, Op: m.Op, OK: true, Epoch: uint32(len(m.Rows))}
		return &reply
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, err := DialMsg(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	rows := make([]wire.Row, 500)
	for i := range rows {
		rows[i] = wire.Row{Key: fmt.Sprintf("k%04d", i), Val: make([]byte, 2048)}
	}
	if err := conn.WriteMsg(&wire.Msg{Type: wire.MsgMigrateResp, Op: types.OpID{Seq: 1}, Rows: rows}); err != nil {
		t.Fatal(err)
	}
	r, err := conn.ReadMsg()
	if err != nil {
		t.Fatal(err)
	}
	if r.Epoch != 500 {
		t.Errorf("server saw %d rows, want 500", r.Epoch)
	}
}

func TestReadMsgRejectsOversizedFrame(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	mc := NewMsgConn(b)
	defer mc.Close()
	go a.Write([]byte{0xFF, 0xFF, 0xFF, 0x7F}) // 2GB frame header
	if _, err := mc.ReadMsg(); err == nil {
		t.Error("oversized frame accepted")
	}
}

func TestMsgServerCloseUnblocksClients(t *testing.T) {
	srv, err := ListenMsg("127.0.0.1:0", func(m wire.Msg) *wire.Msg { return nil })
	if err != nil {
		t.Fatal(err)
	}
	conn, err := DialMsg(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	readDone := make(chan error, 1)
	go func() {
		_, err := conn.ReadMsg()
		readDone <- err
	}()
	srv.Close()
	if err := <-readDone; err == nil {
		t.Error("read returned nil error after server close")
	}
}

// TestMsgServerCloseLeaksNoGoroutines opens a server, hammers it from
// several clients, closes it, and checks the goroutine count settles back
// to where it started: Close must reap the accept loop and every per-client
// handler, even ones blocked mid-read.
func TestMsgServerCloseLeaksNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()

	srv, err := ListenMsg("127.0.0.1:0", func(m wire.Msg) *wire.Msg {
		reply := wire.Msg{Type: wire.MsgOpResp, Op: m.Op, OK: true}
		return &reply
	})
	if err != nil {
		t.Fatal(err)
	}
	conns := make([]*MsgConn, 0, 4)
	for c := 0; c < 4; c++ {
		conn, err := DialMsg(srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		conns = append(conns, conn)
		if err := conn.WriteMsg(&wire.Msg{Type: wire.MsgOpReq, Op: types.OpID{Seq: uint64(c)}}); err != nil {
			t.Fatal(err)
		}
		if _, err := conn.ReadMsg(); err != nil {
			t.Fatal(err)
		}
	}
	// Leave the connections open so the handlers are blocked in ReadMsg
	// when Close runs — the leak-prone state.
	srv.Close()
	for _, c := range conns {
		c.Close()
	}

	// The runtime needs a moment to unwind the reaped goroutines; poll
	// rather than sleep a fixed (flaky) amount.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines: %d before, %d after close", before, runtime.NumGoroutine())
}

// TestWriteMsgRejectsOverlimitMessage proves the encode-limit bugfix is
// threaded through the transport: a message the codec cannot frame is
// rejected by WriteMsg before any bytes hit the stream.
func TestWriteMsgRejectsOverlimitMessage(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	mc := NewMsgConn(a)
	long := make([]byte, wire.MaxString+1)
	for i := range long {
		long[i] = 'x'
	}
	m := wire.Msg{Type: wire.MsgSubOpReq, Sub: types.SubOp{Name: string(long)}}
	errc := make(chan error, 1)
	go func() { errc <- mc.WriteMsg(&m) }()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("WriteMsg accepted a message over the wire limits")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("WriteMsg blocked on the pipe instead of failing the encode")
	}
}

// TestServeCountsCloseReasons drives three clients into a counted server:
// one hangs up cleanly, one sends a corrupt frame, one vanishes mid-frame.
// Each must land in its own counter.
func TestServeCountsCloseReasons(t *testing.T) {
	var nc obs.NetCounters
	srv, err := ListenMsgObs("127.0.0.1:0", func(m wire.Msg) *wire.Msg { return nil }, &nc)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	dialRaw := func() net.Conn {
		c, err := net.Dial("tcp", srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	wait := func(get func(obs.NetSnapshot) uint64, what string) {
		deadline := time.Now().Add(5 * time.Second)
		for get(nc.Snapshot()) == 0 {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s; snapshot %+v", what, nc.Snapshot())
			}
			time.Sleep(time.Millisecond)
		}
	}

	// Clean close: a valid frame, then an orderly shutdown.
	clean, err := DialMsg(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := clean.WriteMsg(&wire.Msg{Type: wire.MsgPing}); err != nil {
		t.Fatal(err)
	}
	clean.Close()
	wait(func(s obs.NetSnapshot) uint64 { return s.CleanCloses }, "clean close")

	// Corrupt frame: plausible length, garbage body.
	corrupt := dialRaw()
	corrupt.Write([]byte{4, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0xFF})
	wait(func(s obs.NetSnapshot) uint64 { return s.CorruptFrames }, "corrupt frame")
	corrupt.Close()

	// Abrupt close: header promises 100 bytes, connection dies after 2.
	abrupt := dialRaw()
	abrupt.Write([]byte{100, 0, 0, 0, 1, 2})
	abrupt.Close()
	wait(func(s obs.NetSnapshot) uint64 { return s.AbruptCloses }, "abrupt close")

	snap := nc.Snapshot()
	if snap.Accepted < 3 {
		t.Errorf("accepted %d connections, want >= 3", snap.Accepted)
	}
	if snap.CleanCloses != 1 || snap.CorruptFrames != 1 || snap.AbruptCloses != 1 {
		t.Errorf("close attribution wrong: %+v", snap)
	}
}

// TestOversizedFrameIsCorrupt checks the 16MiB frame bound surfaces as a
// corrupt-frame error, not a generic one, so serve attributes it correctly.
func TestOversizedFrameIsCorrupt(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	mc := NewMsgConn(b)
	defer mc.Close()
	go a.Write([]byte{0xFF, 0xFF, 0xFF, 0x7F})
	_, err := mc.ReadMsg()
	if !errors.Is(err, ErrCorruptFrame) {
		t.Errorf("oversized frame error = %v, want ErrCorruptFrame", err)
	}
}

package cluster

import (
	"fmt"
	"time"

	"cxfs/internal/stats"
)

// ServerReport is one server's resource and protocol summary.
type ServerReport struct {
	Server       int
	MsgsHandled  uint64
	SubOpsRun    uint64
	DiskBusy     time.Duration
	DiskPasses   uint64
	DiskMerged   uint64
	WALAppends   uint64
	WALRecords   uint64
	WALLiveBytes int64
	KVRows       int
	KVDirty      int
	// Cx-only protocol counters (zero under baselines).
	Conflicts   uint64
	Immediate   uint64
	LazyBatches uint64
	Committed   uint64
	Aborted     uint64
	Pending     int
}

// Report snapshots every server's counters — the operational view an
// operator of the real system would watch.
func (c *Cluster) Report() []ServerReport {
	out := make([]ServerReport, 0, len(c.Bases))
	for i, b := range c.Bases {
		ds := b.Disk.Stats()
		ws := b.WAL.Stats()
		r := ServerReport{
			Server:       i,
			MsgsHandled:  b.Stats().MsgsHandled,
			SubOpsRun:    b.Stats().SubOpsRun,
			DiskBusy:     ds.BusyTime,
			DiskPasses:   ds.MechOps,
			DiskMerged:   ds.Merged,
			WALAppends:   ws.Appends,
			WALRecords:   ws.Records,
			WALLiveBytes: b.WAL.LiveBytes(),
			KVRows:       b.KV.Len(),
			KVDirty:      b.KV.DirtyCount(),
		}
		if i < len(c.CxSrv) && c.Opts.Protocol == ProtoCx {
			st := c.CxSrv[i].Stats()
			r.Conflicts = st.Conflicts
			r.Immediate = st.ImmediateCommits
			r.LazyBatches = st.LazyBatches
			r.Committed = st.OpsCommitted
			r.Aborted = st.OpsAborted
			r.Pending = c.CxSrv[i].PendingOps()
		}
		out = append(out, r)
	}
	return out
}

// ReportTable renders the per-server report.
func (c *Cluster) ReportTable() *stats.Table {
	tbl := stats.NewTable(fmt.Sprintf("Per-server report (%s, %d servers)", c.Opts.Protocol, c.Opts.Servers),
		"srv", "msgs", "subops", "disk-busy", "passes", "merged", "wal-app", "wal-rec", "live", "kv-rows", "dirty", "conf", "imm", "lazy", "commit", "abort", "pend")
	for _, r := range c.Report() {
		tbl.Add(r.Server, r.MsgsHandled, r.SubOpsRun, r.DiskBusy, r.DiskPasses, r.DiskMerged,
			r.WALAppends, r.WALRecords, r.WALLiveBytes, r.KVRows, r.KVDirty,
			r.Conflicts, r.Immediate, r.LazyBatches, r.Committed, r.Aborted, r.Pending)
	}
	return tbl
}

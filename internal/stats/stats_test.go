package stats

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("mean of empty != 0")
	}
	if m := Mean([]float64{1, 2, 3}); m != 2 {
		t.Errorf("mean=%v", m)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if p := Percentile(xs, 0); p != 1 {
		t.Errorf("p0=%v", p)
	}
	if p := Percentile(xs, 100); p != 5 {
		t.Errorf("p100=%v", p)
	}
	if p := Percentile(xs, 50); p != 3 {
		t.Errorf("p50=%v", p)
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile != 0")
	}
	// Input must not be mutated.
	if xs[0] != 5 {
		t.Error("Percentile sorted the caller's slice")
	}
}

func TestPercentileWithinRangeQuick(t *testing.T) {
	f := func(xs []float64, p float64) bool {
		if len(xs) == 0 {
			return Percentile(xs, p) == 0
		}
		v := Percentile(xs, p)
		lo, hi := Percentile(xs, 0), Percentile(xs, 100)
		return v >= lo && v <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestImprovement(t *testing.T) {
	if imp := Improvement(100*time.Second, 62*time.Second); imp < 0.379 || imp > 0.381 {
		t.Errorf("improvement=%v, want 0.38", imp)
	}
	if Improvement(0, time.Second) != 0 {
		t.Error("zero baseline should yield 0")
	}
}

func TestRatio(t *testing.T) {
	if r := Ratio(100, 182); r < 0.819 || r > 0.821 {
		t.Errorf("ratio=%v, want 0.82", r)
	}
	if Ratio(0, 5) != 0 {
		t.Error("zero baseline should yield 0")
	}
}

func TestSeriesPeakAndDrops(t *testing.T) {
	s := &Series{}
	// Rise to 600, drop, rise, drop — Figure 7b shaped.
	vals := []float64{0, 100, 300, 600, 50, 200, 550, 40}
	for i, v := range vals {
		s.Add(time.Duration(i)*time.Second, v)
	}
	if s.Peak() != 600 {
		t.Errorf("peak=%v", s.Peak())
	}
	if d := s.Drops(0.5); d != 2 {
		t.Errorf("drops=%d, want 2", d)
	}
	if d := s.Drops(0.95); d != 0 {
		t.Errorf("drops(0.95)=%d, want 0", d)
	}
}

func TestTableRendering(t *testing.T) {
	tbl := NewTable("Demo", "A", "BB")
	tbl.Add("x", 1)
	tbl.Add("long-cell", 2.5)
	out := tbl.String()
	if !strings.Contains(out, "Demo") || !strings.Contains(out, "long-cell") {
		t.Errorf("render:\n%s", out)
	}
	if !strings.Contains(out, "2.500") {
		t.Errorf("float formatting missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Errorf("got %d lines:\n%s", len(lines), out)
	}
}

func TestFormatters(t *testing.T) {
	if Pct(0.385) != "38.50%" {
		t.Errorf("Pct=%s", Pct(0.385))
	}
	if KB(5<<10) != "5KB" {
		t.Errorf("KB=%s", KB(5<<10))
	}
}

func TestMax(t *testing.T) {
	if Max(nil) != 0 {
		t.Error("Max(nil) != 0")
	}
	if Max([]float64{-5, -2, -9}) != -2 {
		t.Error("Max of negatives wrong")
	}
}

// Recovery: crash a metadata server while cross-server operations are still
// awaiting their lazy commitments, reboot it, and watch the §V recovery
// protocol resume every half-completed commitment from the operation log —
// then prove the namespace converged to exactly the state the clients
// observed.
//
// This example drives the simulation below the cxfs facade (it needs crash
// and reboot control), showing how the library's layers compose.
package main

import (
	"fmt"
	"log"
	"time"

	"cxfs/internal/cluster"
	"cxfs/internal/simrt"
	"cxfs/internal/types"
)

func main() {
	o := cluster.DefaultOptions(4, cluster.ProtoCx)
	o.ClientHosts = 4
	o.ProcsPerHost = 2
	o.Cx.Timeout = time.Hour // hold commitments pending so the crash bites
	o.Cx.RecoveryFreeze = 200 * time.Millisecond
	o.Hardware.LogMaxBytes = 0
	c := cluster.MustNew(o)
	defer c.Shutdown()

	// The failure-detection subsystem of §V: heartbeats every 20ms,
	// suspicion after 60ms of silence.
	det := cluster.NewFailureDetector(c, 20*time.Millisecond, 60*time.Millisecond)
	det.OnSuspect = func(srv types.NodeID, at time.Duration) {
		fmt.Printf("  [detector] server %v suspected at t=%v\n", srv, at.Round(time.Millisecond))
	}
	det.OnRecover = func(srv types.NodeID, at time.Duration) {
		fmt.Printf("  [detector] server %v healthy again at t=%v\n", srv, at.Round(time.Millisecond))
	}

	type created struct {
		name string
		ino  types.InodeID
	}
	var files []created

	c.Sim.Spawn("scenario", func(p *simrt.Proc) {
		pr := c.Proc(0)

		fmt.Println("phase 1: create 20 files (commitments stay pending)")
		for i := 0; i < 20; i++ {
			name := fmt.Sprintf("file-%02d", i)
			ino, err := pr.Create(p, types.RootInode, name)
			if err != nil {
				log.Fatalf("create: %v", err)
			}
			files = append(files, created{name, ino})
		}
		pending := 0
		victim := 0
		for i, srv := range c.CxSrv {
			n := srv.PendingOps()
			pending += n
			if n > c.CxSrv[victim].PendingOps() {
				victim = i
			}
		}
		fmt.Printf("  %d commitments pending cluster-wide; server %d holds the most "+
			"(%d ops, %d bytes of valid records)\n",
			pending, victim, c.CxSrv[victim].PendingOps(), c.CxSrv[victim].ValidBytes())

		fmt.Printf("\nphase 2: CRASH server %d at t=%v\n", victim, p.Now().Round(time.Millisecond))
		c.Bases[victim].Crash()
		// Wait for the failure detector to confirm the crash, as §V
		// prescribes, before rebooting.
		for !det.Suspected(types.NodeID(victim)) {
			p.Sleep(10 * time.Millisecond)
		}

		fmt.Printf("phase 3: reboot and run the recovery protocol\n")
		c.Bases[victim].Reboot()
		d := c.CxSrv[victim].Recover(p)
		fmt.Printf("  recovery completed in %v (virtual): log scanned, row images "+
			"redone, commitments resumed, directory counters fsck'd\n", d.Round(time.Millisecond))

		c.Quiesce(p)

		fmt.Println("\nphase 4: verify every file the clients saw created still resolves")
		ok := 0
		for _, f := range files {
			got, err := pr.Lookup(p, types.RootInode, f.name)
			if err != nil || got.Ino != f.ino {
				fmt.Printf("  LOST: %s (err=%v)\n", f.name, err)
				continue
			}
			ok++
		}
		fmt.Printf("  %d/%d files intact\n", ok, len(files))
		c.Sim.Stop()
	})
	c.Sim.Run()

	if bad := c.CheckInvariants(); len(bad) == 0 {
		fmt.Println("\ncross-server atomicity invariant: OK after crash + recovery")
	} else {
		fmt.Println("\nINCONSISTENT:", bad)
	}
}

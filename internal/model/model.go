// Package model is the sequential oracle for client-observed histories: a
// replay of what every client process saw — operation kind, target name,
// and observed outcome — against a simple in-memory namespace model that
// has no concurrency, no caching, and no failure handling. If the
// distributed run's observable outcomes cannot be explained by the
// sequential model, the run violated the paper's atomicity goal (§III.C:
// a cross-server operation either happens entirely or not at all, and a
// client that saw it succeed must keep seeing it).
//
// The oracle relies on the workload discipline every harness in this repo
// follows: names are process-private and never reused, and a process never
// issues a second operation on a name before the first one's outcome is
// known. Under that discipline each name carries an unambiguous sequential
// history even when the process pipelines operations on different names.
package model

import (
	"errors"
	"fmt"
	"hash/fnv"
	"time"

	"cxfs/internal/types"
)

// Outcome classifies what the client observed for one operation.
type Outcome uint8

const (
	// OK: the operation definitely succeeded.
	OK Outcome = iota
	// Failed: the operation definitely failed and must have left no trace.
	Failed
	// FailedExists: a create reported the name already taken.
	FailedExists
	// FailedNotFound: a remove/lookup reported the name absent.
	FailedNotFound
	// Unknown: the operation timed out; it may or may not have applied.
	Unknown
)

// String names the outcome for reports.
func (o Outcome) String() string {
	switch o {
	case OK:
		return "ok"
	case Failed:
		return "failed"
	case FailedExists:
		return "exists"
	case FailedNotFound:
		return "notfound"
	case Unknown:
		return "unknown"
	}
	return "?"
}

// Classify maps a driver error to the outcome the oracle distinguishes.
func Classify(err error) Outcome {
	switch {
	case err == nil:
		return OK
	case errors.Is(err, types.ErrTimeout):
		return Unknown
	case errors.Is(err, types.ErrExists):
		return FailedExists
	case errors.Is(err, types.ErrNotFound):
		return FailedNotFound
	default:
		return Failed
	}
}

// Op is one client-observed operation in a history. Create/Mkdir and
// Remove/Rmdir are the namespace-mutating kinds; Lookup carries what the
// client saw (Found/SawIno). Other kinds (Stat, SetAttr) have no
// name-level effect and are ignored by the replay.
type Op struct {
	Worker  int
	Kind    types.OpKind
	Name    string
	Ino     types.InodeID
	Outcome Outcome
	// Lookup observations: Found says the lookup resolved, SawIno is the
	// inode it resolved to.
	Found  bool
	SawIno types.InodeID

	// Timing, for the leased-cache staleness bound. Issued is the virtual
	// time the client dispatched the operation, At the time it observed the
	// outcome. For lookups served from the client cache, Cached is true and
	// Grant is the lease's timestamp — stamped at the *issue* of the
	// request that filled the cache entry, a sound lower bound on the
	// server-side grant instant (the server resolved strictly after the
	// request left the client).
	Issued time.Duration
	At     time.Duration
	Cached bool
	Grant  time.Duration
}

// String renders one op compactly (used by the history hash, so the format
// is part of the fingerprint).
func (o Op) String() string {
	return fmt.Sprintf("w%d %s %q ino=%d %s found=%v saw=%d iss=%d at=%d cached=%v grant=%d",
		o.Worker, o.Kind, o.Name, o.Ino, o.Outcome, o.Found, o.SawIno,
		int64(o.Issued), int64(o.At), o.Cached, int64(o.Grant))
}

// name-state of the sequential model.
const (
	stFresh   uint8 = iota // never targeted by a create
	stAbsent               // definitely not in the namespace
	stExists               // definitely present, bound to its ino
	stUnknown              // a timed-out operation's outcome is undecided
)

type nameState struct {
	state uint8
	ino   types.InodeID
}

type nameKey struct {
	worker int
	name   string
}

// Check replays hist against the sequential model and then compares the
// model's reachable final states against final — the settled namespace
// after heal/recover/quiesce, as a name → inode map. It returns the list
// of violations (empty = the distributed run is explainable by the
// sequential model).
//
// hist must be in per-name causal order; interleaving between names is
// irrelevant because names are process-private. final must cover exactly
// the names the history targeted (extra names are not checked).
func Check(hist []Op, final map[string]types.InodeID) []string {
	var bad []string
	violate := func(format string, args ...any) {
		bad = append(bad, fmt.Sprintf(format, args...))
	}
	states := make(map[nameKey]*nameState)
	at := func(o Op) *nameState {
		k := nameKey{o.Worker, o.Name}
		ns, ok := states[k]
		if !ok {
			ns = &nameState{state: stFresh}
			states[k] = ns
		}
		return ns
	}

	for i, o := range hist {
		ns := at(o)
		switch o.Kind {
		case types.OpCreate, types.OpMkdir:
			if ns.state != stFresh {
				violate("history[%d]: name reused: %s", i, o)
				continue
			}
			ns.ino = o.Ino
			switch o.Outcome {
			case OK:
				ns.state = stExists
			case Unknown:
				ns.state = stUnknown
			case FailedExists:
				// Names are never reused, so nothing can already hold one.
				violate("history[%d]: create on a fresh name observed 'exists': %s", i, o)
				ns.state = stUnknown
			default:
				// Definite failure: all-or-nothing demands no residue.
				ns.state = stAbsent
			}
		case types.OpRemove, types.OpRmdir:
			if ns.state != stExists {
				violate("history[%d]: remove issued on a name not known to exist (state %d): %s", i, ns.state, o)
				continue
			}
			switch o.Outcome {
			case OK:
				ns.state = stAbsent
			case Unknown:
				ns.state = stUnknown
			case FailedNotFound:
				// The create definitely succeeded; the entry must be there.
				violate("history[%d]: remove observed 'not found' on a committed entry: %s", i, o)
				ns.state = stUnknown
			default:
				// Definite abort: the entry survives untouched.
			}
		case types.OpLookup:
			switch o.Outcome {
			case Unknown, Failed:
				// No information.
			case OK:
				if o.Found {
					if ns.state == stAbsent {
						violate("history[%d]: lookup found a name the model says is absent: %s", i, o)
					} else if o.SawIno != ns.ino && ns.state != stFresh {
						violate("history[%d]: lookup resolved to foreign ino (want %d): %s", i, ns.ino, o)
					}
				} else {
					if ns.state == stExists {
						violate("history[%d]: lookup lost a committed entry: %s", i, o)
					}
				}
			case FailedNotFound:
				if ns.state == stExists {
					violate("history[%d]: lookup lost a committed entry: %s", i, o)
				}
			}
		default:
			// Stat/SetAttr and friends: no name-level effect.
		}
	}

	// Final-state equivalence: every name must have settled into a state
	// the sequential model can reach.
	for k, ns := range states {
		ino, found := final[k.name]
		switch ns.state {
		case stExists:
			if !found {
				bad = append(bad, fmt.Sprintf("final: committed entry %q (worker %d) is gone", k.name, k.worker))
			} else if ino != ns.ino {
				bad = append(bad, fmt.Sprintf("final: entry %q -> ino %d, model says %d", k.name, ino, ns.ino))
			}
		case stAbsent:
			if found {
				bad = append(bad, fmt.Sprintf("final: absent entry %q left residue (ino %d)", k.name, ino))
			}
		case stUnknown:
			if found && ino != ns.ino {
				bad = append(bad, fmt.Sprintf("final: unknown-outcome entry %q -> foreign ino %d (model allows absent or %d)", k.name, ino, ns.ino))
			}
		}
	}
	return bad
}

// CheckStalenessBound verifies the leased-cache guarantee over a history:
// a cached read may return a value no older than its lease grant, and never
// a name whose invalidation (remove) committed before the grant. Unlike
// Check, it keys names globally — every harness generates globally unique
// names ("w<id> ..."), so cross-worker cached reads are checkable against
// the owning worker's mutations.
//
// The bound deliberately permits TTL-window staleness: a remove that
// commits *after* the grant may stay invisible to cached reads until the
// lease lapses or the revocation lands. What it forbids is a lease
// reflecting state older than its own grant:
//
//   - a cached positive read whose name was definitely removed (outcome OK,
//     observed at or before the grant timestamp);
//   - a cached negative read whose name was definitely created before the
//     grant, with no remove even issued by the time of the read;
//   - a cached positive read resolving to a foreign inode (names are bound
//     exactly once).
//
// Timestamps are client-side: a mutation's At is when the client observed
// the outcome, which the server-side commit precedes; a lookup's Grant is
// the cache-filling request's issue time, which the server-side grant
// follows. Both inequalities point the safe direction, so the check is
// sound under arbitrary message delays.
func CheckStalenessBound(hist []Op) []string {
	type mut struct {
		issued  time.Duration
		at      time.Duration
		remove  bool
		outcome Outcome
		ino     types.InodeID
	}
	muts := make(map[string][]mut)
	for _, o := range hist {
		switch o.Kind {
		case types.OpCreate, types.OpMkdir, types.OpRemove, types.OpRmdir:
			muts[o.Name] = append(muts[o.Name], mut{
				issued: o.Issued, at: o.At,
				remove:  o.Kind == types.OpRemove || o.Kind == types.OpRmdir,
				outcome: o.Outcome, ino: o.Ino,
			})
		}
	}
	var bad []string
	for i, o := range hist {
		if o.Kind != types.OpLookup || !o.Cached {
			continue
		}
		if o.Outcome != OK && o.Outcome != FailedNotFound {
			continue
		}
		found := o.Outcome == OK && o.Found
		var createdBefore, removedBefore bool // definitely committed by Grant
		var removeIssuedByRead bool
		var boundIno types.InodeID
		var haveBound bool
		for _, m := range muts[o.Name] {
			if m.remove {
				if m.issued <= o.At {
					removeIssuedByRead = true
				}
				if m.outcome == OK && m.at <= o.Grant {
					removedBefore = true
				}
			} else {
				if m.outcome == OK {
					boundIno, haveBound = m.ino, true
					if m.at <= o.Grant {
						createdBefore = true
					}
				}
			}
		}
		switch {
		case found && removedBefore:
			bad = append(bad, fmt.Sprintf(
				"staleness[%d]: cached read returned a name whose removal committed before the lease grant: %s", i, o))
		case found && haveBound && o.SawIno != boundIno:
			bad = append(bad, fmt.Sprintf(
				"staleness[%d]: cached read resolved to foreign ino (name bound to %d): %s", i, boundIno, o))
		case !found && createdBefore && !removeIssuedByRead:
			bad = append(bad, fmt.Sprintf(
				"staleness[%d]: cached read missed an entry committed before the lease grant: %s", i, o))
		}
	}
	return bad
}

// HistoryHash digests a history into a compact deterministic value; two
// runs with the same seed and flags must produce identical hashes. The
// hash covers every field of every op via Op.String.
func HistoryHash(hist []Op) uint64 {
	h := fnv.New64a()
	for _, o := range hist {
		fmt.Fprintln(h, o.String())
	}
	return h.Sum64()
}

package trace

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Human-editable text trace format, so workloads can be hand-written,
// diffed, or converted from a site's own trace data:
//
//	#cxtrace v1 workload=<profile> procs=<n> dirs=<n>
//	# comment
//	<proc> <op> <file> <dir>
//
// where <op> is one of create remove mkdir rmdir link unlink stat lookup
// setattr statshared lookupshared. Field meanings match Rec; records must
// be grouped per process in issue order (the parser preserves order and
// only requires proc ids in [0, procs)).

var kindNames = map[Kind]string{
	CreateOwn: "create", RemoveOwn: "remove", MkdirOwn: "mkdir", RmdirOwn: "rmdir",
	LinkOwn: "link", UnlinkOwn: "unlink", StatOwn: "stat", LookupOwn: "lookup",
	SetAttrOwn: "setattr", StatShared: "statshared", LookupShared: "lookupshared",
}

var kindByName = func() map[string]Kind {
	m := make(map[string]Kind, len(kindNames))
	for k, n := range kindNames {
		m[n] = k
	}
	return m
}()

// WriteText renders the trace in the text format.
func (t *Trace) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "#cxtrace v1 workload=%s procs=%d dirs=%d\n",
		t.Profile.Name, len(t.PerProc), t.Dirs)
	for pi, recs := range t.PerProc {
		for _, r := range recs {
			fmt.Fprintf(bw, "%d %s %d %d\n", pi, kindNames[r.Kind], r.File, r.Dir)
		}
	}
	return bw.Flush()
}

// ParseText reads a text trace. The workload name must match a known
// profile (its process count and directory layout parameterize replay).
func ParseText(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0

	if !sc.Scan() {
		return nil, fmt.Errorf("trace: empty input")
	}
	lineNo++
	header := sc.Text()
	if !strings.HasPrefix(header, "#cxtrace v1 ") {
		return nil, fmt.Errorf("trace: missing #cxtrace v1 header")
	}
	fields := map[string]string{}
	for _, tok := range strings.Fields(header)[2:] {
		kv := strings.SplitN(tok, "=", 2)
		if len(kv) == 2 {
			fields[kv[0]] = kv[1]
		}
	}
	profile, err := ProfileByName(fields["workload"])
	if err != nil {
		return nil, err
	}
	var procs, dirs int
	if _, err := fmt.Sscanf(fields["procs"], "%d", &procs); err != nil || procs <= 0 {
		return nil, fmt.Errorf("trace: bad procs %q", fields["procs"])
	}
	if _, err := fmt.Sscanf(fields["dirs"], "%d", &dirs); err != nil || dirs < 0 {
		return nil, fmt.Errorf("trace: bad dirs %q", fields["dirs"])
	}
	if procs != profile.Procs {
		return nil, fmt.Errorf("trace: %d procs but profile %s has %d",
			procs, profile.Name, profile.Procs)
	}

	perProc := make([][]Rec, procs)
	total := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var pi, file, dir int
		var opName string
		if _, err := fmt.Sscanf(line, "%d %s %d %d", &pi, &opName, &file, &dir); err != nil {
			return nil, fmt.Errorf("trace: line %d: %v", lineNo, err)
		}
		kind, ok := kindByName[opName]
		if !ok {
			return nil, fmt.Errorf("trace: line %d: unknown op %q", lineNo, opName)
		}
		if pi < 0 || pi >= procs {
			return nil, fmt.Errorf("trace: line %d: proc %d out of range", lineNo, pi)
		}
		perProc[pi] = append(perProc[pi], Rec{Proc: pi, Kind: kind, File: file, Dir: dir})
		total++
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	return &Trace{Profile: profile, Scale: 0, PerProc: perProc, Total: total, Dirs: dirs}, nil
}

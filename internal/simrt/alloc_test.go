package simrt

import (
	"testing"
	"time"
)

// TestEventFreelistRecycles proves dispatched events return to the freelist
// and get reused: a chain of sequential timers must not leave the freelist
// empty, and the heap must not retain popped events.
func TestEventFreelistRecycles(t *testing.T) {
	s := New(1)
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < 100 {
			s.After(time.Microsecond, tick)
		}
	}
	s.After(0, tick)
	s.Run()
	if n != 100 {
		t.Fatalf("ran %d ticks, want 100", n)
	}
	if len(s.free) == 0 {
		t.Error("freelist empty after run; events are not being recycled")
	}
	if len(s.free) > maxFreeEvents {
		t.Errorf("freelist %d exceeds bound %d", len(s.free), maxFreeEvents)
	}
}

// TestScheduleSteadyStateNoAlloc measures the schedule+dispatch cycle with a
// pre-built closure: after warm-up, the event machinery itself must be
// allocation-free (the freelist supplies the struct, the heap reuses its
// backing array, and boxing a pointer into an interface does not allocate).
func TestScheduleSteadyStateNoAlloc(t *testing.T) {
	s := New(1)
	fn := func() {}
	for i := 0; i < 64; i++ { // warm the freelist and heap capacity
		s.After(0, fn)
	}
	s.Run()
	allocs := testing.AllocsPerRun(1000, func() {
		s.After(0, fn)
		s.Run()
	})
	if allocs > 0 {
		t.Errorf("schedule+run allocates %.1f objects/op, want 0", allocs)
	}
}

// TestChanDrainRefillReusesBuffer checks the mailbox rhythm — burst of
// sends, drain to empty, repeat — reuses the buffer's backing array instead
// of reallocating per cycle.
func TestChanDrainRefillReusesBuffer(t *testing.T) {
	s := New(1)
	c := NewChan[int](s)
	for i := 0; i < 16; i++ { // establish capacity
		c.Send(i)
	}
	for {
		if _, ok := c.TryRecv(); !ok {
			break
		}
	}
	allocs := testing.AllocsPerRun(1000, func() {
		for i := 0; i < 8; i++ {
			c.Send(i)
		}
		for i := 0; i < 8; i++ {
			if _, ok := c.TryRecv(); !ok {
				panic("queue underflow")
			}
		}
	})
	if allocs > 0 {
		t.Errorf("drain/refill cycle allocates %.1f objects/op, want 0", allocs)
	}
}

// TestChanLongLivedQueueCompacts drives a queue that never fully drains past
// the compaction threshold and checks FIFO order plus bounded head growth.
func TestChanLongLivedQueueCompacts(t *testing.T) {
	s := New(1)
	c := NewChan[int](s)
	next := 0
	want := 0
	// Keep ~16 in flight across many thousands of cycles.
	for i := 0; i < 16; i++ {
		c.Send(next)
		next++
	}
	for cycle := 0; cycle < 5000; cycle++ {
		c.Send(next)
		next++
		v, ok := c.TryRecv()
		if !ok || v != want {
			t.Fatalf("cycle %d: got %d,%v want %d,true", cycle, v, ok, want)
		}
		want++
	}
	if c.head > 2*1024+32 {
		t.Errorf("head index %d grew without compaction", c.head)
	}
	if c.Len() != 16 {
		t.Errorf("Len = %d, want 16", c.Len())
	}
}

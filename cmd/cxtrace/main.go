// Command cxtrace inspects the synthetic workloads that stand in for the
// paper's six traces: operation mixes (Figure 4), cross-server shares, and
// per-process record dumps.
//
// Usage:
//
//	cxtrace -dist                  # Figure 4 distribution for all traces
//	cxtrace -trace s3d -dump 20    # first records of each process
//	cxtrace -trace home2 -scale 0.01 -stats
package main

import (
	"flag"
	"fmt"
	"os"

	"cxfs/internal/stats"
	"cxfs/internal/trace"
	"cxfs/internal/types"
)

func main() {
	var (
		name  = flag.String("trace", "", "workload name (CTH|s3d|alegra|home2|deasna2|lair62b); empty = all")
		scale = flag.Float64("scale", 0.01, "fraction of the paper's op count to generate")
		seed  = flag.Int64("seed", 1, "generation seed")
		dist  = flag.Bool("dist", false, "print the Figure 4 operation distribution")
		stat  = flag.Bool("stats", false, "print summary statistics")
		dump  = flag.Int("dump", 0, "dump the first N records of each process")
		save  = flag.String("save", "", "write the generated trace(s) to this file (single -trace) or directory")
		load  = flag.String("load", "", "load a saved trace file instead of generating")
		text  = flag.Bool("text", false, "with -save: write the human-editable text format; with -load: parse it")
	)
	flag.Parse()
	if !*dist && !*stat && *dump == 0 {
		*dist = true
	}

	var loaded *trace.Trace
	if *load != "" {
		var tr *trace.Trace
		var err error
		if *text {
			var f *os.File
			if f, err = os.Open(*load); err == nil {
				tr, err = trace.ParseText(f)
				f.Close()
			}
		} else {
			tr, err = trace.Load(*load)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "cxtrace:", err)
			os.Exit(1)
		}
		loaded = tr
		*name = tr.Profile.Name
		fmt.Printf("loaded %s: workload=%s ops=%d procs=%d dirs=%d scale=%g\n",
			*load, tr.Profile.Name, tr.Total, len(tr.PerProc), tr.Dirs, tr.Scale)
	}

	profiles := trace.Profiles()
	if *name != "" {
		p, err := trace.ProfileByName(*name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cxtrace:", err)
			os.Exit(1)
		}
		profiles = []trace.Profile{p}
	}

	if *dist {
		kinds := []types.OpKind{types.OpCreate, types.OpRemove, types.OpMkdir, types.OpRmdir,
			types.OpLink, types.OpUnlink, types.OpStat, types.OpLookup, types.OpSetAttr}
		header := []string{"Trace", "Ops"}
		for _, k := range kinds {
			header = append(header, k.String())
		}
		tbl := stats.NewTable("Figure 4: metadata operation distribution", header...)
		for _, p := range profiles {
			tr := loaded
			if tr == nil {
				tr = trace.Generate(p, *scale, *seed)
			}
			d := tr.Distribution()
			cells := []any{p.Name, tr.Total}
			for _, k := range kinds {
				cells = append(cells, stats.Pct(float64(d[k])/float64(tr.Total)))
			}
			tbl.Add(cells...)
		}
		fmt.Println(tbl)
	}

	if *stat {
		tbl := stats.NewTable("Workload statistics", "Trace", "PaperOps", "Generated", "Procs", "Dirs", "CrossServer")
		for _, p := range profiles {
			tr := trace.Generate(p, *scale, *seed)
			tbl.Add(p.Name, p.TotalOps, tr.Total, p.Procs, tr.Dirs, stats.Pct(tr.CrossServerShare()))
		}
		fmt.Println(tbl)
	}

	if *save != "" {
		for _, p := range profiles {
			tr := loaded
			if tr == nil {
				tr = trace.Generate(p, *scale, *seed)
			}
			path := *save
			if len(profiles) > 1 {
				path = fmt.Sprintf("%s/%s.cxtr", *save, p.Name)
			}
			var err error
			if *text {
				var f *os.File
				if f, err = os.Create(path); err == nil {
					err = tr.WriteText(f)
					f.Close()
				}
			} else {
				err = tr.Save(path)
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "cxtrace:", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s (%d ops)\n", path, tr.Total)
		}
	}

	if *dump > 0 {
		for _, p := range profiles {
			tr := trace.Generate(p, *scale, *seed)
			fmt.Printf("# %s (first %d records per process)\n", p.Name, *dump)
			for pi, recs := range tr.PerProc {
				n := *dump
				if n > len(recs) {
					n = len(recs)
				}
				for _, r := range recs[:n] {
					fmt.Printf("p%03d %-12s file=%d dir=%d\n", pi, trace.OpKindOf(r.Kind), r.File, r.Dir)
				}
			}
		}
	}
}

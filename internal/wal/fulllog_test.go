package wal

import (
	"testing"
	"time"

	"cxfs/internal/disk"
	"cxfs/internal/simrt"
	"cxfs/internal/types"
)

// TestOversizedBatchDoesNotDeadlock pins the full-handler liveness fix: a
// batch larger than the whole log can never fit, no matter how much the
// full-handler prunes, so the gate must admit it with a transient overshoot
// instead of parking the appender forever.
func TestOversizedBatchDoesNotDeadlock(t *testing.T) {
	rec := resultRec(1, "oversized-name-making-the-record-big")
	max := EncodedSize(rec) / 2 // log smaller than one record
	s := simrt.New(1)
	d := disk.New(s, "d", disk.DefaultParams())
	w := New(s, d, 0, max)
	w.SetFullHandler(func() {
		// Prune everything — still not enough room for the batch.
		for _, op := range w.LiveOps() {
			w.Prune(op)
		}
	})
	done := false
	s.Spawn("writer", func(p *simrt.Proc) {
		w.Append(p, rec)
		done = true
		s.Stop()
	})
	s.RunUntil(time.Minute)
	s.Shutdown()
	if !done {
		t.Fatal("oversized batch deadlocked the appender")
	}
	if !w.Has(opID(1), RecResult) {
		t.Error("oversized batch not admitted")
	}
}

// burstNoDeadlock fills the log with ops awaiting commitment and stalls a
// new arrival; the full-handler then runs a commitment burst — priority
// Commit records (which bypass the gate but still count toward live bytes,
// overshooting the limit) followed by pruning. The stalled append must
// complete. Exercised with and without group commit.
func burstNoDeadlock(t *testing.T, linger time.Duration) {
	t.Helper()
	fill := []Record{resultRec(1, "fill-a"), resultRec(2, "fill-b")}
	max := EncodedSize(fill[0]) + EncodedSize(fill[1]) + 4
	s := simrt.New(1)
	d := disk.New(s, "d", disk.DefaultParams())
	w := New(s, d, 0, max)
	w.SetGroupCommit(linger)
	bursts := 0
	w.SetFullHandler(func() {
		bursts++
		if bursts > 1 {
			return // one commitment burst is in flight; it will free space
		}
		s.Spawn("commit-burst", func(p *simrt.Proc) {
			w.AppendBatchPriority(p, []Record{
				{Type: RecCommit, Op: opID(1), Role: types.RoleParticipant},
				{Type: RecCommit, Op: opID(2), Role: types.RoleParticipant},
			})
			if w.LiveBytes() <= max {
				t.Error("priority burst did not overshoot: scenario lost its bite")
			}
			w.Prune(opID(1))
			w.Prune(opID(2))
		})
	})
	done := false
	s.Spawn("writer", func(p *simrt.Proc) {
		w.AppendBatch(p, fill[:1])
		w.AppendBatch(p, fill[1:])
		w.Append(p, resultRec(3, "newcomer")) // must stall, then complete
		done = true
		s.Stop()
	})
	s.RunUntil(time.Minute)
	s.Shutdown()
	if !done {
		t.Fatal("commitment burst at a full log deadlocked the appender")
	}
	if !w.Has(opID(3), RecResult) {
		t.Error("stalled append never admitted")
	}
	if w.Has(opID(1), RecResult) {
		t.Error("committed op not pruned")
	}
}

func TestFullLogCommitmentBurstNoDeadlock(t *testing.T) {
	burstNoDeadlock(t, 0)
}

func TestFullLogCommitmentBurstNoDeadlockGroupCommit(t *testing.T) {
	burstNoDeadlock(t, 200*time.Microsecond)
}

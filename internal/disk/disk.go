// Package disk models a mechanical disk with an elevator (merging) request
// queue, substituting for the paper's 7200rpm SATA disks behind the Linux IO
// scheduler.
//
// The model is a timing model only: data durability is tracked by the layers
// above (the write-ahead log and the KV store). What disk provides is the
// service time of each access, with the three effects the paper's evaluation
// depends on:
//
//  1. a synchronous random write pays a seek plus rotational latency,
//  2. sequential appends to the log region pay almost nothing beyond
//     transfer, and
//  3. queued requests whose byte ranges are close together are merged by the
//     elevator into one mechanical pass — "submitting batched modifications
//     into BDB increases the possibility of merging disk requests in
//     kernel's IO scheduler, decreasing the number of disk accesses" (§6.3).
//
// The disk runs as one simulated process draining a request queue: it takes
// everything queued at the instant it becomes idle, sorts by offset, merges
// runs with small gaps, then services each merged run for its mechanical
// cost while repliers wait.
package disk

import (
	"fmt"
	"sort"
	"time"

	"cxfs/internal/simrt"
)

// Params is the mechanical cost model.
type Params struct {
	// Capacity is the addressable byte range. Seek distance is scaled
	// against it.
	Capacity int64
	// MinSeek is the track-to-track seek time; MaxSeek the full-stroke
	// seek. Actual seek interpolates linearly with distance.
	MinSeek time.Duration
	MaxSeek time.Duration
	// RotLatency is the average rotational latency added to every
	// non-sequential access (half a revolution: 4.17ms at 7200rpm).
	RotLatency time.Duration
	// SettleTime is the per-access overhead of a sequential synchronous
	// access: even with the head on track, a sync write completes only
	// when the platter reaches the target sector, a sizeable fraction of a
	// rotation (8.3ms at 7200rpm). Group commits amortize it: one merged
	// pass pays it once.
	SettleTime time.Duration
	// TransferBps is the media transfer rate in bytes per second.
	TransferBps int64
	// MergeWindow is the maximum gap, in bytes, between sorted requests
	// that the elevator coalesces into one mechanical pass.
	MergeWindow int64
	// SeqWindow is how far past the current head position an access may
	// start and still count as sequential (track cache hit).
	SeqWindow int64
}

// DefaultParams models the paper's 7200rpm SATA disk.
func DefaultParams() Params {
	return Params{
		Capacity:    500 << 30, // 500 GB
		MinSeek:     500 * time.Microsecond,
		MaxSeek:     14 * time.Millisecond,
		RotLatency:  4170 * time.Microsecond,
		SettleTime:  2 * time.Millisecond,
		TransferBps: 100 << 20, // 100 MB/s
		MergeWindow: 256 << 10, // 256 KB elevator merge window
		SeqWindow:   64 << 10,
	}
}

// Request is one disk access.
type Request struct {
	Offset int64
	Size   int64
	Write  bool
	done   *simrt.Chan[struct{}]
}

// Stats aggregates disk activity for the harness.
type Stats struct {
	Requests    uint64        // logical requests issued by callers
	MechOps     uint64        // mechanical passes after merging
	Merged      uint64        // requests absorbed into another pass
	BytesMoved  int64         // total bytes transferred
	BusyTime    time.Duration // time the arm/platter was busy
	SeqAccesses uint64        // requests serviced without a seek
}

// Disk is one simulated drive.
type Disk struct {
	sim    *simrt.Sim
	name   string
	params Params

	queue   []*Request
	pending *simrt.Chan[struct{}] // kicked when work arrives
	head    int64                 // current head byte position

	stats Stats
}

// New creates a disk and starts its service process on s.
func New(s *simrt.Sim, name string, p Params) *Disk {
	if p.Capacity <= 0 || p.TransferBps <= 0 {
		panic("disk: invalid params")
	}
	d := &Disk{sim: s, name: name, params: p, pending: simrt.NewChan[struct{}](s)}
	s.Spawn("disk/"+name, d.serve)
	return d
}

// Params returns the disk's cost model.
func (d *Disk) Params() Params { return d.params }

// Stats returns a snapshot of accumulated statistics.
func (d *Disk) Stats() Stats { return d.stats }

// Access performs one blocking disk access of size bytes at offset. The
// calling Proc parks until the elevator has serviced the request. Zero-size
// accesses complete immediately.
func (d *Disk) Access(p *simrt.Proc, offset, size int64, write bool) {
	if size <= 0 {
		return
	}
	req := &Request{Offset: offset, Size: size, Write: write, done: simrt.NewChan[struct{}](d.sim)}
	d.enqueue(req)
	req.done.Recv(p)
}

// Submit enqueues a request without waiting. The returned channel receives
// one value when the access completes. Used by batched writers that issue
// several requests and then wait for all of them.
func (d *Disk) Submit(offset, size int64, write bool) *simrt.Chan[struct{}] {
	done := simrt.NewChan[struct{}](d.sim)
	if size <= 0 {
		done.Send(struct{}{})
		return done
	}
	d.enqueue(&Request{Offset: offset, Size: size, Write: write, done: done})
	return done
}

func (d *Disk) enqueue(req *Request) {
	d.stats.Requests++
	d.queue = append(d.queue, req)
	if d.pending.Len() == 0 {
		d.pending.Send(struct{}{})
	}
}

// serve is the disk process: drain the queue, sort, merge, service.
func (d *Disk) serve(p *simrt.Proc) {
	for {
		if len(d.queue) == 0 {
			d.pending.Recv(p)
			continue
		}
		batch := d.queue
		d.queue = nil
		sort.SliceStable(batch, func(i, j int) bool { return batch[i].Offset < batch[j].Offset })
		for i := 0; i < len(batch); {
			// Grow a merged run while gaps stay within the window.
			run := batch[i : i+1]
			end := batch[i].Offset + batch[i].Size
			j := i + 1
			for j < len(batch) && batch[j].Offset-end <= d.params.MergeWindow {
				if e := batch[j].Offset + batch[j].Size; e > end {
					end = e
				}
				j++
			}
			run = batch[i:j]
			d.serviceRun(p, run, end)
			i = j
		}
	}
}

// serviceRun sleeps for the mechanical cost of one merged run and releases
// its waiters.
func (d *Disk) serviceRun(p *simrt.Proc, run []*Request, end int64) {
	start := run[0].Offset
	span := end - start
	cost := d.accessCost(start, span)
	d.stats.MechOps++
	d.stats.Merged += uint64(len(run) - 1)
	d.stats.BytesMoved += span
	d.stats.BusyTime += cost
	d.head = end
	p.Sleep(cost)
	for _, r := range run {
		r.done.Send(struct{}{})
	}
}

// accessCost returns the mechanical time for one pass starting at offset and
// covering span bytes.
func (d *Disk) accessCost(offset, span int64) time.Duration {
	pp := d.params
	transfer := time.Duration(span * int64(time.Second) / pp.TransferBps)
	dist := offset - d.head
	if dist < 0 {
		dist = -dist
	}
	if offset >= d.head && dist <= pp.SeqWindow {
		d.stats.SeqAccesses++
		return pp.SettleTime + transfer
	}
	frac := float64(dist) / float64(pp.Capacity)
	if frac > 1 {
		frac = 1
	}
	seek := pp.MinSeek + time.Duration(frac*float64(pp.MaxSeek-pp.MinSeek))
	return seek + pp.RotLatency + transfer
}

// String renders the disk state for debugging.
func (d *Disk) String() string {
	return fmt.Sprintf("disk{%s head=%d queued=%d mech=%d merged=%d}",
		d.name, d.head, len(d.queue), d.stats.MechOps, d.stats.Merged)
}

package chaos

import (
	"testing"
	"time"

	"cxfs/internal/model"
)

// matrixSeeds is the fixed 8-seed chaos matrix shared by every suite here.
var matrixSeeds = []int64{1, 2, 3, 5, 8, 13, 21, 34}

// TestOracleSeedMatrix replays every chaos run's client history against the
// sequential namespace model (internal/model) — an oracle independent of
// the harness's own inline checks — across the seed matrix, with pipelined
// dispatch both off and on. Observable-outcome equivalence must hold in
// every cell.
func TestOracleSeedMatrix(t *testing.T) {
	for _, pipeline := range []int{0, 4} {
		for _, seed := range matrixSeeds {
			rep := Run(Config{Seed: seed, Pipeline: pipeline})
			if !rep.Consistent() {
				t.Errorf("pipeline=%d seed %d inconsistent:\n%s", pipeline, seed, rep)
				continue
			}
			if len(rep.History) == 0 {
				t.Errorf("pipeline=%d seed %d: no history recorded", pipeline, seed)
				continue
			}
			if bad := model.Check(rep.History, rep.Final); len(bad) != 0 {
				t.Errorf("pipeline=%d seed %d: model oracle rejects the run:\n  %v\nreport:\n%s",
					pipeline, seed, bad, rep)
			}
		}
	}
}

// TestOracleHistoryMatchesReportCounts cross-checks the recorded history
// against the report's own outcome counters: every operation the workload
// issued must appear in the history exactly once.
func TestOracleHistoryMatchesReportCounts(t *testing.T) {
	rep := Run(Config{Seed: 3})
	if got, want := uint64(len(rep.History)), rep.Ops; got != want {
		t.Errorf("history holds %d ops, report counted %d", got, want)
	}
	var ok, failed, unknown uint64
	for _, o := range rep.History {
		switch o.Outcome {
		case model.OK:
			ok++
		case model.Unknown:
			unknown++
		default:
			failed++
		}
	}
	// Lookups that definitely missed count as OK in the report but carry a
	// FailedNotFound observation in the history, so OK in the report is at
	// least the history's OK and the totals must still agree.
	if ok > rep.OK {
		t.Errorf("history ok=%d exceeds report ok=%d", ok, rep.OK)
	}
	if unknown != rep.Unknown {
		t.Errorf("history unknown=%d, report unknown=%d", unknown, rep.Unknown)
	}
	if ok+failed+unknown != rep.Ops {
		t.Errorf("history outcome sum %d != ops %d", ok+failed+unknown, rep.Ops)
	}
}

// TestPipelinedChaosMatrix is the chaos matrix with pipelined client
// dispatch and group commit enabled together — the tentpole configuration.
// Every run must still drain, recover, and verify clean.
func TestPipelinedChaosMatrix(t *testing.T) {
	for _, seed := range matrixSeeds {
		rep := Run(Config{Seed: seed, Pipeline: 4, GroupLinger: 200 * time.Microsecond})
		if !rep.Consistent() {
			t.Errorf("seed %d inconsistent under pipeline+group-commit:\n%s", seed, rep)
		}
		if rep.Ops == 0 {
			t.Errorf("seed %d: workload issued no operations", seed)
		}
	}
}

// TestDeterminismRegression locks in the reproducibility contract of the
// whole stack with the new machinery enabled: the same seed and flags must
// yield an identical chaos fingerprint (which covers the history hash) and
// identical WAL append counts with group commit on.
func TestDeterminismRegression(t *testing.T) {
	cfg := Config{Seed: 11, Pipeline: 4, GroupLinger: 200 * time.Microsecond}
	a := Run(cfg)
	b := Run(cfg)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("same seed+flags diverged:\n--- run 1 ---\n%s--- run 2 ---\n%s", a, b)
	}
	if a.WALAppends != b.WALAppends {
		t.Errorf("WAL appends diverged: %d vs %d", a.WALAppends, b.WALAppends)
	}
	if a.WALAppends == 0 {
		t.Error("no WAL appends recorded")
	}
	if model.HistoryHash(a.History) != model.HistoryHash(b.History) {
		t.Errorf("history hash diverged")
	}
	if a.WALGroupFlushes == 0 {
		t.Error("group commit enabled but no coalesced flushes recorded")
	}
}

// Package wal implements each metadata server's operation log for the Cx
// protocol and its baselines: a log-structured, synchronously written record
// stream with an in-memory index, as described in §III.A and §III.D of the
// paper.
//
// Record types follow the paper exactly:
//
//   - Result-Record: the outcome of one sub-operation on this server, with
//     enough of the sub-op to resume a commitment after a crash.
//   - Commit-Record / Abort-Record: the whole cross-server operation's
//     executions succeeded / were rolled back. On the participant this also
//     marks the operation finished.
//   - Complete-Record: coordinator only — the whole operation is finished.
//   - Invalidate-Record: a previously logged Result-Record was invalidated
//     during disordered-conflict handling (§III.C).
//
// Appends are synchronous: the calling Proc parks until the disk confirms
// the sequential write. Batched appends serialize several records into one
// disk request, which is where lazy commitment wins back log bandwidth.
//
// When the log reaches its upper limit, appends block until pruning frees
// space (§III.D: "a server must block the new-arrival sub-op requests and
// perform pruning"); a registered full-handler lets the protocol launch the
// commitments that make pruning possible. Pruning drops all records of an
// operation once its terminal record is durable.
package wal

import (
	"fmt"
	"time"

	"cxfs/internal/disk"
	"cxfs/internal/simrt"
	"cxfs/internal/types"
)

// RecType enumerates log record types.
type RecType uint8

const (
	RecInvalid RecType = iota
	RecResult
	RecCommit
	RecAbort
	RecComplete
	RecInvalidate
)

var recTypeNames = [...]string{
	RecInvalid:    "invalid",
	RecResult:     "result",
	RecCommit:     "commit",
	RecAbort:      "abort",
	RecComplete:   "complete",
	RecInvalidate: "invalidate",
}

// String renders a RecType.
func (t RecType) String() string {
	if int(t) < len(recTypeNames) {
		return recTypeNames[t]
	}
	return fmt.Sprintf("rectype(%d)", uint8(t))
}

// Record is one log record. Only Result records carry a sub-op payload and
// row images; the images let recovery redo a committed operation (install
// After) or undo an aborted one (install Before) idempotently.
type Record struct {
	Type   RecType
	Op     types.OpID
	Role   types.Role
	OK     bool             // Result: whether the sub-op succeeded
	Sub    types.SubOp      // Result: the sub-op, for crash resumption
	Before []types.RowImage // Result: primary-row images pre-execution
	After  []types.RowImage // Result: primary-row images post-execution
	// Peer is the other server of the operation (participant on the
	// coordinator's records and vice versa), so recovery resumes the
	// commitment with the right node without re-deriving placement —
	// which is impossible for rename, whose destination entry server is
	// not a function of the recorded sub-op.
	Peer    types.NodeID
	HasPeer bool
}

// String renders a Record compactly.
func (r Record) String() string {
	return fmt.Sprintf("%s %s %s ok=%v", r.Type, r.Op, r.Role, r.OK)
}

// opEntry is the per-operation index entry.
type opEntry struct {
	bytes    int64 // live bytes this op holds in the log
	types    uint8 // bitmask of record types present
	invalids int   // count of invalidate records
}

func bit(t RecType) uint8 { return 1 << uint(t) }

// fullWaiter is an appender blocked on log space.
type fullWaiter struct {
	need int64
	ch   *simrt.Chan[struct{}]
}

// Stats aggregates WAL activity.
type Stats struct {
	Appends      uint64 // disk write operations (batches count once)
	Records      uint64 // records appended
	BytesWritten int64
	Pruned       uint64 // records removed by pruning
	FullStalls   uint64 // times an append had to wait for space
	GroupFlushes uint64 // group-commit disk writes (subset of Appends)
	GroupedReqs  uint64 // caller append requests coalesced by group commit
}

// flushReq is one caller batch parked in the group-commit flush window.
type flushReq struct {
	recs  []Record
	total int64
	done  *simrt.Chan[struct{}]
}

// WAL is one server's operation log.
type WAL struct {
	sim  *simrt.Sim
	dsk  *disk.Disk
	base int64 // disk offset of the log region
	max  int64 // upper limit on live bytes (0 = unlimited)

	head    int64 // next append offset relative to base
	live    int64 // bytes of un-pruned records
	index   map[types.OpID]*opEntry
	ordered []Record // durable records in append order, minus pruned ops

	waiters     []fullWaiter
	fullHandler func()
	pruneHook   func(op types.OpID, bytes int64)
	crashed     bool
	gen         uint64 // incarnation; bumped by Crash so in-flight writes from
	// a dead incarnation stay discarded even after Reboot re-enables the log

	// Group commit: when linger > 0, appends from concurrent Procs enqueue
	// into window and a single flusher Proc writes them as one sequential
	// disk request after the linger expires, waking every parked caller.
	linger    time.Duration
	window    []flushReq
	winBytes  int64 // bytes parked in the window, counted by the space gate
	flusherOn bool
	flushHook func(batches, records int, bytes int64)

	stats Stats
}

// New creates a WAL writing sequentially at disk offset base. maxBytes
// limits live (un-pruned) record bytes; 0 means unlimited.
func New(s *simrt.Sim, d *disk.Disk, base, maxBytes int64) *WAL {
	return &WAL{sim: s, dsk: d, base: base, max: maxBytes, index: make(map[types.OpID]*opEntry)}
}

// SetFullHandler registers fn to be invoked (in simulation context, without
// blocking) whenever an append must wait for space. The Cx core uses it to
// kick an immediate batch commitment so pruning can proceed.
func (w *WAL) SetFullHandler(fn func()) { w.fullHandler = fn }

// SetPruneHook registers fn to be invoked after each successful prune with
// the op and the bytes it released. The cluster wires the observability
// trace through it so the WAL stays free of higher-layer imports.
func (w *WAL) SetPruneHook(fn func(op types.OpID, bytes int64)) { w.pruneHook = fn }

// SetGroupCommit enables the cross-proc group-commit scheduler: concurrent
// appenders park in a flush window for up to linger of virtual time and a
// single flusher writes the coalesced window as one sequential disk request.
// linger = 0 restores the direct per-batch write path. Must be set while the
// log is quiescent (no appends in flight).
func (w *WAL) SetGroupCommit(linger time.Duration) { w.linger = linger }

// GroupLinger returns the configured group-commit linger (0 = disabled).
func (w *WAL) GroupLinger() time.Duration { return w.linger }

// SetFlushHook registers fn to be invoked after each successful group-commit
// flush with the number of caller batches coalesced, the records written,
// and the bytes of the single disk request. Observability wiring.
func (w *WAL) SetFlushHook(fn func(batches, records int, bytes int64)) { w.flushHook = fn }

// MaxBytes returns the log's live-byte limit (0 = unlimited); the commit
// daemon's adaptive lazy period reads it to gauge log pressure.
func (w *WAL) MaxBytes() int64 { return w.max }

// Stats returns a snapshot of accumulated statistics.
func (w *WAL) Stats() Stats { return w.stats }

// LiveBytes returns the bytes held by un-pruned records — the paper's
// "valid-records size" when the caller prunes eagerly after commitment.
func (w *WAL) LiveBytes() int64 { return w.live }

// OpBytes returns the live bytes attributed to one operation.
func (w *WAL) OpBytes(op types.OpID) int64 {
	if e := w.index[op]; e != nil {
		return e.bytes
	}
	return 0
}

// Has reports whether the log holds a record of type t for op.
func (w *WAL) Has(op types.OpID, t RecType) bool {
	e := w.index[op]
	return e != nil && e.types&bit(t) != 0
}

// Append synchronously writes one record, blocking until durable. If the
// log is at its limit the call stalls until pruning frees space.
func (w *WAL) Append(p *simrt.Proc, rec Record) {
	w.AppendBatch(p, []Record{rec})
}

// AppendBatch synchronously writes several records as one sequential disk
// request — the batched commitment path. Appends on a crashed log are
// silently discarded: the in-flight handler that issued them died with the
// server and its records must not appear durable.
func (w *WAL) AppendBatch(p *simrt.Proc, recs []Record) {
	w.appendBatch(p, recs, false)
}

// AppendBatchPriority is AppendBatch without the log-size gate. Commitment
// and recovery records use it: they are the very records whose durability
// lets pruning free space, so blocking them on a full log would deadlock.
// Only new-arrival sub-op requests are subject to the limit, per §III.D
// ("a server must block the new-arrival sub-op requests").
func (w *WAL) AppendBatchPriority(p *simrt.Proc, recs []Record) {
	w.appendBatch(p, recs, true)
}

func (w *WAL) appendBatch(p *simrt.Proc, recs []Record, priority bool) {
	if len(recs) == 0 || w.crashed {
		return
	}
	gen := w.gen
	var total int64
	for i := range recs {
		total += encodedSize(&recs[i])
	}
	if !priority {
		w.waitForSpace(p, total)
		if w.crashed || gen != w.gen {
			return
		}
	}
	if w.linger > 0 {
		w.groupAppend(p, recs, total)
		return
	}
	// Reserve the offset range before blocking on the disk so concurrent
	// appenders write disjoint, in-order regions.
	off := w.head
	w.head += total
	w.dsk.Access(p, w.base+off, total, true)
	if w.crashed || gen != w.gen {
		// Crashed while the write was in flight: not durable. The gen check
		// holds even when the server already rebooted — a record from the
		// dead incarnation must not materialize in the post-reboot log after
		// recovery has scanned it.
		return
	}
	for i := range recs {
		w.admit(recs[i], encodedSize(&recs[i]))
	}
	w.stats.Appends++
	w.stats.Records += uint64(len(recs))
	w.stats.BytesWritten += total
}

// groupAppend parks the caller's batch in the flush window and blocks until
// the flusher has written it (or the server crashed with it in flight). The
// first batch into an empty window spawns the flusher.
func (w *WAL) groupAppend(p *simrt.Proc, recs []Record, total int64) {
	done := simrt.NewChan[struct{}](w.sim)
	w.window = append(w.window, flushReq{recs: recs, total: total, done: done})
	w.winBytes += total
	if !w.flusherOn {
		w.flusherOn = true
		w.sim.Spawn("wal-flusher", w.flusher)
	}
	done.Recv(p)
}

// flusher is the single group-commit writer: sleep out the linger, then
// drain the window in coalesced sequential writes. Batches that arrive while
// a write is on the platter are picked up by the next loop iteration without
// a fresh linger — they already waited their share. Exits when the window
// drains; the next enqueue respawns it.
func (w *WAL) flusher(p *simrt.Proc) {
	p.Sleep(w.linger)
	for len(w.window) > 0 {
		batch := w.window
		w.window = nil
		var total int64
		records := 0
		for _, fr := range batch {
			total += fr.total
			records += len(fr.recs)
		}
		w.winBytes -= total
		off := w.head
		w.head += total
		gen := w.gen
		w.dsk.Access(p, w.base+off, total, true)
		if !w.crashed && gen == w.gen {
			for _, fr := range batch {
				for i := range fr.recs {
					w.admit(fr.recs[i], encodedSize(&fr.recs[i]))
				}
			}
			w.stats.Appends++
			w.stats.Records += uint64(records)
			w.stats.BytesWritten += total
			w.stats.GroupFlushes++
			w.stats.GroupedReqs += uint64(len(batch))
			if w.flushHook != nil {
				w.flushHook(len(batch), records, total)
			}
		}
		for _, fr := range batch {
			fr.done.Send(struct{}{})
		}
	}
	w.flusherOn = false
}

// waitForSpace blocks until live + windowed + need fits under the limit.
// A batch larger than the whole log can never fit no matter how much
// pruning frees, so gating it would wedge the appender (and its server)
// forever; such a batch is admitted with a transient overshoot instead —
// the same overshoot priority appends are already allowed.
func (w *WAL) waitForSpace(p *simrt.Proc, need int64) {
	if w.max <= 0 || need > w.max {
		return
	}
	for w.live+w.winBytes+need > w.max {
		w.stats.FullStalls++
		ch := simrt.NewChan[struct{}](w.sim)
		w.waiters = append(w.waiters, fullWaiter{need: need, ch: ch})
		if w.fullHandler != nil {
			h := w.fullHandler
			w.sim.After(0, h)
		}
		ch.Recv(p)
	}
}

// admit updates the index for a durable record.
func (w *WAL) admit(rec Record, size int64) {
	e := w.index[rec.Op]
	if e == nil {
		e = &opEntry{}
		w.index[rec.Op] = e
	}
	e.bytes += size
	e.types |= bit(rec.Type)
	if rec.Type == RecInvalidate {
		e.invalids++
	}
	w.live += size
	w.ordered = append(w.ordered, rec)
}

// Prune removes all records of op from the log, freeing space and waking
// stalled appenders whose need now fits. The caller must only prune an op
// whose terminal record (Complete on the coordinator, Commit/Abort on the
// participant) is durable; that discipline lives in the protocol layer.
func (w *WAL) Prune(op types.OpID) {
	e := w.index[op]
	if e == nil {
		return
	}
	w.live -= e.bytes
	delete(w.index, op)
	w.stats.Pruned++
	if w.pruneHook != nil {
		w.pruneHook(op, e.bytes)
	}
	// Compact the ordered view lazily: drop records whose op left the index.
	if len(w.ordered) > 0 && len(w.index)*4 < len(w.ordered) {
		kept := w.ordered[:0]
		for _, r := range w.ordered {
			if _, ok := w.index[r.Op]; ok {
				kept = append(kept, r)
			}
		}
		w.ordered = kept
	}
	w.wakeWaiters()
}

func (w *WAL) wakeWaiters() {
	if w.max <= 0 {
		return
	}
	remaining := w.waiters[:0]
	for _, fw := range w.waiters {
		if w.live+w.winBytes+fw.need <= w.max {
			fw.ch.Send(struct{}{})
		} else {
			remaining = append(remaining, fw)
		}
	}
	w.waiters = remaining
}

// Crash marks the log's server down: in-flight and future appends are
// discarded (not durable) and stalled appenders are released into the void.
// Batches parked in the group-commit window die with the server: their
// callers are released and the records never admitted. The flusher itself
// wakes from its disk write, sees the crash, and exits without admitting.
func (w *WAL) Crash() {
	w.crashed = true
	w.gen++
	for _, fw := range w.waiters {
		fw.ch.Send(struct{}{})
	}
	w.waiters = nil
	for _, fr := range w.window {
		fr.done.Send(struct{}{})
	}
	w.window = nil
	w.winBytes = 0
}

// Reboot re-enables the log after Crash. The index still holds every record
// that was durable at crash time.
func (w *WAL) Reboot() { w.crashed = false }

// LiveOps returns the OpIDs with live records, in no particular order.
func (w *WAL) LiveOps() []types.OpID {
	ops := make([]types.OpID, 0, len(w.index))
	for op := range w.index {
		ops = append(ops, op)
	}
	return ops
}

// RecoverScan reads the whole live log sequentially from disk (paying the
// read cost) and returns the surviving records in append order. Called by a
// rebooted server to rebuild protocol state.
func (w *WAL) RecoverScan(p *simrt.Proc) []Record {
	// Drop records of pruned ops before returning.
	kept := make([]Record, 0, len(w.ordered))
	var liveBytes int64
	for _, r := range w.ordered {
		if _, ok := w.index[r.Op]; ok {
			kept = append(kept, r)
			liveBytes += encodedSize(&r)
		}
	}
	w.ordered = kept
	if liveBytes > 0 {
		w.dsk.Access(p, w.base, liveBytes, false)
	}
	out := make([]Record, len(kept))
	copy(out, kept)
	return out
}

// EncodedSize reports the on-disk size of a record; exported for the
// harness's valid-record accounting.
func EncodedSize(rec Record) int64 { return encodedSize(&rec) }

// RoundTrip encodes and decodes a record, verifying the codec; used by
// tests and by the recovery path's integrity check.
func RoundTrip(rec Record) (Record, error) {
	buf := encode(&rec)
	return decode(buf)
}

// String renders WAL state for debugging.
func (w *WAL) String() string {
	return fmt.Sprintf("wal{head=%d live=%d ops=%d}", w.head, w.live, len(w.index))
}

// SyncDelay estimates the cost of one small sequential append under the
// disk's parameters; exported so cost-model tests can sanity-check the
// calibration.
func SyncDelay(d *disk.Disk) time.Duration {
	p := d.Params()
	return p.SettleTime + time.Duration(128*int64(time.Second)/p.TransferBps)
}

package metarates

import (
	"fmt"
	"time"

	"cxfs/internal/cluster"
	"cxfs/internal/core"
	"cxfs/internal/simrt"
	"cxfs/internal/types"
)

// StormConfig sizes a stat-storm run: a read-only walk workload over a deep
// directory tree, the access pattern the leased client cache exists for
// (repeated `ls -R` / `stat` sweeps over a mostly-static namespace).
type StormConfig struct {
	Depth int // nesting depth of the directory spine under the storm root
	Files int // files per directory level
	Walks int // full recursive walks per process in the measured window
}

// StormResult is one stat-storm run's outcome. MsgsPerLookup is the figure
// of merit: network messages per client lookup call. Without a cache every
// lookup costs one request/response pair (≈2 messages); with leases, walks
// after the first resolve from the client cache and the ratio collapses.
type StormResult struct {
	Protocol      cluster.Protocol
	Servers       int
	Procs         int
	CacheTTL      time.Duration
	Lookups       uint64 // client lookup calls in the measured window
	Errors        int
	Elapsed       time.Duration
	Messages      uint64 // network messages in the measured window
	MsgsPerLookup float64
	CacheHits     uint64
	CacheMisses   uint64
}

// RunStorm builds the tree, quiesces, then measures cfg.Walks full
// recursive walks per process: every directory component is resolved by
// name and every file in every level is looked up, exactly the round-trip
// pattern of a recursive stat sweep. The cluster must be freshly built.
func RunStorm(c *cluster.Cluster, cfg StormConfig) StormResult {
	nProcs := c.NumProcs()
	res := StormResult{
		Protocol: c.Opts.Protocol, Servers: c.Opts.Servers, Procs: nProcs,
		CacheTTL: c.Opts.CacheTTL,
	}

	// names[level] lists the entries of the level's directory; level 0 is
	// the storm root's content. dirs[level] is the spine directory name at
	// that level.
	dirName := func(lvl int) string { return fmt.Sprintf("d%d", lvl) }
	fileName := func(lvl, i int) string { return fmt.Sprintf("s%d.f%d", lvl, i) }

	var start, end time.Duration
	var msgs0 uint64
	var cs0 core.CacheStats
	var errs []int

	gate := simrt.NewChan[struct{}](c.Sim)
	g := simrt.NewGroup(c.Sim)
	g.Add(nProcs)
	errs = make([]int, nProcs)

	c.Sim.Spawn("storm/setup", func(p *simrt.Proc) {
		pr := c.Proc(0)
		dir, err := pr.Mkdir(p, types.RootInode, "storm")
		if err != nil {
			panic(fmt.Sprintf("statstorm: mkdir storm: %v", err))
		}
		for lvl := 0; lvl < cfg.Depth; lvl++ {
			for i := 0; i < cfg.Files; i++ {
				if _, err := pr.Create(p, dir, fileName(lvl, i)); err != nil {
					panic(fmt.Sprintf("statstorm: create: %v", err))
				}
			}
			next, err := pr.Mkdir(p, dir, dirName(lvl+1))
			if err != nil {
				panic(fmt.Sprintf("statstorm: mkdir spine: %v", err))
			}
			dir = next
		}
		// The builder's own cache must not subsidize the measured walks.
		c.FlushCaches()
		c.Quiesce(p)
		start = p.Now()
		msgs0 = c.Net.Stats().Messages
		cs0 = c.CacheStats()
		for i := 0; i < nProcs; i++ {
			gate.Send(struct{}{})
		}
	})

	for i := 0; i < nProcs; i++ {
		i := i
		pr := c.Proc(i)
		c.Sim.Spawn(fmt.Sprintf("storm/p%d", i), func(p *simrt.Proc) {
			gate.Recv(p)
			for w := 0; w < cfg.Walks; w++ {
				dir := types.RootInode
				in, err := pr.Lookup(p, dir, "storm")
				res.Lookups++
				if err != nil {
					errs[i]++
					continue
				}
				dir = in.Ino
				for lvl := 0; lvl < cfg.Depth; lvl++ {
					for j := 0; j < cfg.Files; j++ {
						res.Lookups++
						if _, err := pr.Lookup(p, dir, fileName(lvl, j)); err != nil {
							errs[i]++
						}
					}
					res.Lookups++
					next, err := pr.Lookup(p, dir, dirName(lvl+1))
					if err != nil {
						errs[i]++
						break
					}
					dir = next.Ino
				}
			}
			g.Done()
		})
	}
	c.Sim.Spawn("storm/controller", func(p *simrt.Proc) {
		g.Wait(p)
		end = p.Now()
		c.Quiesce(p)
		c.Sim.Stop()
	})
	c.Sim.Run()

	res.Elapsed = end - start
	res.Messages = c.Net.Stats().Messages - msgs0
	cs := c.CacheStats()
	res.CacheHits = cs.Hits - cs0.Hits
	res.CacheMisses = cs.Misses - cs0.Misses
	for _, e := range errs {
		res.Errors += e
	}
	if res.Lookups > 0 {
		res.MsgsPerLookup = float64(res.Messages) / float64(res.Lookups)
	}
	return res
}

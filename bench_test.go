// Benchmarks regenerating every table and figure of the paper's evaluation
// (§IV). Each benchmark runs the corresponding harness experiment and
// reports the paper's headline quantities as custom metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the whole evaluation and prints, per experiment, the measured
// shape next to nothing-up-my-sleeve custom metrics (improvement fractions,
// conflict ratios, ops/s). EXPERIMENTS.md records the paper-vs-measured
// comparison produced by these runs at the default scale.
//
// The "virtual" cost of each experiment is fixed by its scale; wall time
// per iteration is a few hundred milliseconds to a few seconds.
package cxfs_test

import (
	"testing"
	"time"

	"cxfs/internal/cluster"
	"cxfs/internal/harness"
	"cxfs/internal/metarates"
	"cxfs/internal/trace"
)

// benchCfg is the shared scale for benchmark runs: big enough for stable
// shapes, small enough to iterate.
func benchCfg() harness.Config {
	return harness.Config{Scale: 0.002, Servers: 8, Seed: 1}
}

// BenchmarkTable2ConflictRatio measures the conflict ratio of all six
// workloads (paper Table II: 0.112% .. 2.972%).
func BenchmarkTable2ConflictRatio(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _ := harness.Table2(benchCfg())
		for _, r := range rows {
			b.ReportMetric(r.ConflictRatio*100, "conflict%/"+r.Workload)
		}
	}
}

// BenchmarkTable4MessageOverhead measures OFS-Cx's message overhead over
// OFS (paper Table IV: 1.0% .. 3.1%).
func BenchmarkTable4MessageOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _ := harness.Table4(benchCfg())
		for _, r := range rows {
			b.ReportMetric(r.Overhead*100, "msg-ovh%/"+r.Workload)
		}
	}
}

// BenchmarkTable5Recovery measures recovery time against the valid-record
// backlog (paper Table V: 3s@5KB .. 17s@1000KB, sublinear).
func BenchmarkTable5Recovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _ := harness.Table5(benchCfg())
		for _, r := range rows {
			b.ReportMetric(r.RecoveryTime.Seconds()*1000, "recovery-ms/"+time.Duration(r.ValidKB<<10).String())
		}
		if len(rows) == 6 && rows[1].RecoveryTime > 0 {
			b.ReportMetric(float64(rows[5].RecoveryTime)/float64(rows[1].RecoveryTime), "growth-100x")
		}
	}
}

// BenchmarkFig4OpMix regenerates the operation-mix distribution.
func BenchmarkFig4OpMix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl := harness.Fig4(benchCfg())
		if len(tbl.Rows) != 6 {
			b.Fatal("missing workloads")
		}
	}
}

// BenchmarkFig5TraceReplay regenerates the trace-driven comparison (paper
// Figure 5: Cx >=38% over OFS on every trace, >=16% over OFS-batched).
func BenchmarkFig5TraceReplay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _ := harness.Fig5(benchCfg(), nil)
		for _, r := range rows {
			b.ReportMetric(r.CxOverOFS*100, "cx-vs-ofs%/"+r.Workload)
			b.ReportMetric(r.CxOverBatch*100, "cx-vs-batched%/"+r.Workload)
			if r.CxOverOFS < 0.38 {
				b.Errorf("%s: Cx improvement over OFS %.0f%% below the paper's 38%% floor",
					r.Workload, r.CxOverOFS*100)
			}
			if r.CxOverBatch < 0.10 {
				b.Errorf("%s: Cx improvement over OFS-batched %.0f%% below the paper's ~16%%",
					r.Workload, r.CxOverBatch*100)
			}
		}
	}
}

// BenchmarkFig6Metarates regenerates the benchmark-driven scaling runs
// (paper Figure 6: Cx gains >=70% update-dominated, >=40% read-dominated,
// scaling to 32 servers).
func BenchmarkFig6Metarates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _ := harness.Fig6(benchCfg(), []int{4, 8, 16, 32}, 30)
		byMix := map[string][]harness.Fig6Row{}
		for _, r := range rows {
			b.ReportMetric(r.OFSCx, "cx-ops/s/"+r.Mix[:4]+"-"+itoa(r.Servers))
			b.ReportMetric(r.CxGain*100, "cx-gain%/"+r.Mix[:4]+"-"+itoa(r.Servers))
			byMix[r.Mix] = append(byMix[r.Mix], r)
		}
		for mix, rs := range byMix {
			for j := 1; j < len(rs); j++ {
				if rs[j].OFSCx <= rs[j-1].OFSCx {
					b.Errorf("%s: Cx throughput did not scale %d->%d servers", mix, rs[j-1].Servers, rs[j].Servers)
				}
			}
		}
	}
}

// BenchmarkFig7aLogSize regenerates the log-size sensitivity sweep.
func BenchmarkFig7aLogSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _ := harness.Fig7a(benchCfg(), nil)
		for _, r := range rows {
			label := "unlimited"
			if r.LimitBytes > 0 {
				label = itoa(int(r.LimitBytes>>10)) + "KB"
			}
			b.ReportMetric(r.ReplayTime.Seconds()*1000, "replay-ms/"+label)
		}
		if rows[0].ReplayTime <= rows[len(rows)-1].ReplayTime {
			b.Error("smallest log should be slowest")
		}
	}
}

// BenchmarkFig7bValidRecords regenerates the valid-record time series
// (paper Figure 7b: rise to a peak, periodic drops at each lazy batch).
func BenchmarkFig7bValidRecords(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, _ := harness.Fig7b(benchCfg(), 100*time.Millisecond)
		b.ReportMetric(series.Peak(), "peak-bytes")
		b.ReportMetric(float64(series.Drops(0.3)), "pruning-drops")
		if series.Drops(0.3) == 0 {
			b.Error("no periodic pruning drops")
		}
	}
}

// BenchmarkFig8ConflictRatio regenerates the conflict sweep (paper Figure
// 8: Cx degrades with injected conflicts but beats OFS until ~20%).
func BenchmarkFig8ConflictRatio(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, ofs, _ := harness.Fig8(benchCfg(), nil)
		crossover := -1.0
		for _, r := range rows {
			b.ReportMetric(r.CxReplay.Seconds()*1000, "cx-ms/inject-"+ftoa(r.InjectRate))
			if r.CxReplay >= ofs && crossover < 0 {
				crossover = r.ConflictRatio
			}
		}
		if crossover >= 0 {
			b.ReportMetric(crossover*100, "crossover-conflict%")
		} else {
			b.ReportMetric(100, "crossover-conflict%") // never crossed in sweep
		}
		if rows[0].CxReplay >= ofs {
			b.Error("Cx lost to OFS at base conflict ratio")
		}
	}
}

// BenchmarkFig9aTimeout regenerates the timeout-trigger sweep (paper
// Figure 9a: longer timeouts replay faster).
func BenchmarkFig9aTimeout(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _ := harness.Fig9a(benchCfg(), nil)
		for _, r := range rows {
			b.ReportMetric(r.ReplayTime.Seconds()*1000, "replay-ms/"+r.Setting)
		}
		if rows[len(rows)-1].ReplayTime >= rows[0].ReplayTime {
			b.Error("longest timeout should be fastest")
		}
	}
}

// BenchmarkFig9bThreshold regenerates the threshold-trigger sweep.
func BenchmarkFig9bThreshold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _ := harness.Fig9b(benchCfg(), nil)
		for _, r := range rows {
			b.ReportMetric(r.ReplayTime.Seconds()*1000, "replay-ms/th-"+r.Setting)
		}
		if rows[len(rows)-1].ReplayTime >= rows[0].ReplayTime {
			b.Error("largest threshold should be fastest")
		}
	}
}

// BenchmarkProtocolsAblation compares all five protocols on one trace —
// the extension experiment (the paper describes 2PC and CE but does not
// run them).
func BenchmarkProtocolsAblation(b *testing.B) {
	p, _ := trace.ProfileByName("s3d")
	for i := 0; i < b.N; i++ {
		for _, proto := range cluster.Protocols {
			tr := trace.Generate(p, 0.002, 1)
			o := cluster.DefaultOptions(8, proto)
			o.ClientHosts = 16
			o.ProcsPerHost = 8
			c := cluster.MustNew(o)
			res := (&trace.Replayer{Trace: tr, C: c}).Run()
			c.Shutdown()
			b.ReportMetric(res.ReplayTime.Seconds()*1000, "replay-ms/"+string(proto))
		}
	}
}

// BenchmarkMetaratesSingleRun is a plain throughput microbench of the Cx
// cluster (useful for profiling the simulator itself).
func BenchmarkMetaratesSingleRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := cluster.DefaultOptions(8, cluster.ProtoCx)
		c := cluster.MustNew(o)
		res := metarates.Run(c, metarates.Config{Mix: metarates.UpdateDominated, OpsPerProc: 20})
		c.Shutdown()
		b.ReportMetric(res.Throughput, "vops/s")
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

func ftoa(f float64) string {
	return itoa(int(f*100 + 0.5))
}

// BenchmarkCxAblations quantifies the design choices DESIGN.md calls out,
// on the conflict-heavy home2 workload: full Cx, Cx without piggybacking
// other pending operations onto immediate commitments, and eager Cx
// (threshold 1: commit every operation individually — concurrency without
// batching).
func BenchmarkCxAblations(b *testing.B) {
	p, _ := trace.ProfileByName("home2")
	run := func(mutate func(*cluster.Options)) float64 {
		tr := trace.Generate(p, 0.002, 1)
		o := cluster.DefaultOptions(8, cluster.ProtoCx)
		o.ClientHosts = 16
		o.ProcsPerHost = 8
		if mutate != nil {
			mutate(&o)
		}
		c := cluster.MustNew(o)
		res := (&trace.Replayer{Trace: tr, C: c, ExtraSharedReads: 0.10}).Run()
		c.Shutdown()
		return res.ReplayTime.Seconds() * 1000
	}
	for i := 0; i < b.N; i++ {
		full := run(nil)
		noPiggy := run(func(o *cluster.Options) { o.Cx.NoPiggyback = true })
		eager := run(func(o *cluster.Options) { o.Cx.Timeout = 0; o.Cx.Threshold = 1 })
		b.ReportMetric(full, "replay-ms/full")
		b.ReportMetric(noPiggy, "replay-ms/no-piggyback")
		b.ReportMetric(eager, "replay-ms/eager-commit")
		if full > noPiggy {
			b.Logf("note: piggybacking did not pay off this run (%.1f vs %.1f)", full, noPiggy)
		}
		if full >= eager {
			b.Errorf("batched Cx (%.1fms) should beat eager per-op commitment (%.1fms)", full, eager)
		}
	}
}

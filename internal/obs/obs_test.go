package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"cxfs/internal/types"
)

func TestNilObserverIsSafe(t *testing.T) {
	var o *Observer
	// Every method on the nil default must be a harmless no-op — this is
	// the contract that lets the engines call unconditionally.
	if o.HistOn() || o.TraceOn() || o.SamplingOn() {
		t.Error("nil observer reports something enabled")
	}
	o.BeginRun("x")
	o.RecordOp(types.OpCreate, "cx", OutcomeComplete, types.OpID{}, 0, 0, time.Millisecond)
	o.Emit(0, 0, types.OpID{}, PhaseExec, "")
	o.Span(0, time.Millisecond, 0, types.OpID{}, PhaseExec, "")
	o.Sample("s", 0, 1)
	if o.Events() != nil || o.Dropped() != 0 || o.PhaseCount(PhaseExec) != 0 {
		t.Error("nil observer retained data")
	}
	if o.Series("s") != nil || o.SeriesNames() != nil || o.Keys() != nil {
		t.Error("nil observer returned series/keys")
	}
	var buf bytes.Buffer
	if err := o.WriteChromeTrace(&buf); err != nil {
		t.Errorf("nil WriteChromeTrace: %v", err)
	}
	if err := o.WriteJSON(&buf); err != nil {
		t.Errorf("nil WriteJSON: %v", err)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := &Histogram{}
	// 100 observations: 90 at ~1ms, 10 at ~100ms. p50 must land in the
	// 1ms bucket, p95/p99 in the 100ms bucket; extremes are exact.
	for i := 0; i < 90; i++ {
		h.Observe(time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(100 * time.Millisecond)
	}
	if h.Count != 100 {
		t.Fatalf("count=%d", h.Count)
	}
	if h.Min != time.Millisecond || h.Max != 100*time.Millisecond {
		t.Errorf("min=%v max=%v", h.Min, h.Max)
	}
	p50, p95 := h.Quantile(0.50), h.Quantile(0.95)
	if p50 < 500*time.Microsecond || p50 > 2*time.Millisecond {
		t.Errorf("p50=%v, want ~1ms", p50)
	}
	if p95 < 50*time.Millisecond || p95 > 200*time.Millisecond {
		t.Errorf("p95=%v, want ~100ms", p95)
	}
	if h.Quantile(0) != h.Min || h.Quantile(1) != h.Max {
		t.Error("extreme quantiles not exact")
	}
	if got := h.Mean(); got < 10*time.Millisecond || got > 12*time.Millisecond {
		t.Errorf("mean=%v, want ~10.9ms", got)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	// Sub-microsecond must not panic or go negative; absurdly large must
	// clamp into the top bucket.
	h := &Histogram{}
	h.Observe(0)
	h.Observe(-time.Second) // defensive: virtual-time math should never go negative, but the bucket must not explode
	h.Observe(365 * 24 * time.Hour)
	if h.Count != 3 {
		t.Fatalf("count=%d", h.Count)
	}
	if h.Buckets[0] != 2 || h.Buckets[histBuckets-1] != 1 {
		t.Errorf("buckets=%v", h.Buckets)
	}
}

func TestRingEvictionAndDropped(t *testing.T) {
	o := New(Options{Trace: true, TraceCap: 4})
	o.BeginRun("r")
	for i := 0; i < 10; i++ {
		o.Emit(time.Duration(i), 0, types.OpID{}, PhaseExec, "")
	}
	evs := o.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	// Oldest evicted: events 6..9 remain, in order.
	for i, ev := range evs {
		if want := time.Duration(6 + i); ev.T != want {
			t.Errorf("event %d at t=%v, want %v", i, ev.T, want)
		}
	}
	if o.Dropped() != 6 {
		t.Errorf("dropped=%d, want 6", o.Dropped())
	}
	// Phase counts survive eviction.
	if o.PhaseCount(PhaseExec) != 10 {
		t.Errorf("phase count=%d, want 10", o.PhaseCount(PhaseExec))
	}
}

func TestRecordOpFeedsHistAndTrace(t *testing.T) {
	o := New(Options{Hist: true, Trace: true})
	o.BeginRun("cx")
	op := types.OpID{Seq: 7}
	o.RecordOp(types.OpCreate, "cx", OutcomeConflicted, op, 3, time.Second, 5*time.Millisecond)
	k := Key{Kind: types.OpCreate, Protocol: "cx", Outcome: OutcomeConflicted}
	h := o.Histogram(k)
	if h == nil || h.Count != 1 {
		t.Fatalf("histogram missing: %+v", h)
	}
	evs := o.Events()
	if len(evs) != 1 || evs[0].Phase != PhaseOp || evs[0].Dur != 5*time.Millisecond || evs[0].Run != 1 {
		t.Errorf("trace event: %+v", evs)
	}
	if !strings.Contains(evs[0].Detail, "conflicted") {
		t.Errorf("detail %q lacks outcome", evs[0].Detail)
	}
	if got := o.HistTable().String(); !strings.Contains(got, "p99") || !strings.Contains(got, "conflicted") {
		t.Errorf("hist table:\n%s", got)
	}
}

func TestSampling(t *testing.T) {
	o := New(Options{SampleEvery: time.Second})
	if !o.SamplingOn() || o.SampleInterval() != time.Second {
		t.Fatal("sampling not on")
	}
	o.Sample("wal-live-bytes", 0, 10)
	o.Sample("wal-live-bytes", time.Second, 20)
	o.Sample("pending-ops", 0, 1)
	s := o.Series("wal-live-bytes")
	if s == nil || s.Peak() != 20 {
		t.Errorf("series: %+v", s)
	}
	names := o.SeriesNames()
	if len(names) != 2 || names[0] != "pending-ops" {
		t.Errorf("names=%v", names)
	}
}

func TestWriteChromeTraceShape(t *testing.T) {
	o := New(Options{Trace: true})
	o.BeginRun("cx")
	op := types.OpID{Seq: 1}
	o.Span(time.Millisecond, 2*time.Millisecond, 4, op, PhaseExec, "create/coordinator")
	o.Emit(3*time.Millisecond, 5, op, PhaseInvalidate, "link")
	var buf bytes.Buffer
	if err := o.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var tr struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
	if len(tr.TraceEvents) != 3 { // process_name + span + instant
		t.Fatalf("%d events, want 3", len(tr.TraceEvents))
	}
	span, inst := tr.TraceEvents[1], tr.TraceEvents[2]
	if span["ph"] != "X" || span["dur"] != 2000.0 || span["ts"] != 1000.0 || span["tid"] != 4.0 {
		t.Errorf("span: %v", span)
	}
	if inst["ph"] != "i" || inst["name"] != "invalidate" {
		t.Errorf("instant: %v", inst)
	}
}

func TestWriteJSONLines(t *testing.T) {
	o := New(Options{Trace: true})
	o.BeginRun("cx")
	o.Emit(time.Millisecond, 1, types.OpID{Seq: 2}, PhaseLCom, "")
	o.Emit(2*time.Millisecond, 2, types.OpID{Seq: 3}, PhasePrune, "64B")
	var buf bytes.Buffer
	if err := o.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("%d lines, want 2", len(lines))
	}
	var ev struct {
		Phase string `json:"phase"`
		TNS   int64  `json:"t_ns"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Phase != "l-com" || ev.TNS != int64(time.Millisecond) {
		t.Errorf("first line: %+v", ev)
	}
}

func TestBeginRunScopesEvents(t *testing.T) {
	o := New(Options{Trace: true})
	r1 := o.BeginRun("cx")
	o.Emit(0, 0, types.OpID{}, PhaseExec, "")
	r2 := o.BeginRun("se")
	o.Emit(0, 0, types.OpID{}, PhaseExec, "")
	if r1 != 1 || r2 != 2 {
		t.Errorf("run indices %d,%d", r1, r2)
	}
	evs := o.Events()
	if evs[0].Run != 1 || evs[1].Run != 2 {
		t.Errorf("events not run-scoped: %+v", evs)
	}
}

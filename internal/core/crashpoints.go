package core

// Named crash-points: the protocol steps at which a test (or the chaos
// nemesis) can crash a server via node.Base.SetCrashPoint. Each constant
// marks the instant *after* the named action has taken effect but before
// the next one, so crashing there leaves exactly the partial state the §V
// recovery protocol must repair.
const (
	// CPExecProvisional: the sub-op executed in memory and its object went
	// active, but the Result-Record has not been appended. Recovery sees
	// nothing; the execution evaporates with the volatile image.
	CPExecProvisional = "exec:after-provisional"
	// CPExecAppend: the Result-Record is durable but no reply was sent.
	// Recovery rebuilds the pending op; the client is still waiting.
	CPExecAppend = "exec:after-append"
	// CPExecBeforeReply: pending state registered, reply built but dropped.
	CPExecBeforeReply = "exec:before-reply"
	// CPExecAfterReply: the reply left the server; the client may complete
	// the operation while this server is down.
	CPExecAfterReply = "exec:after-reply"
	// CPCommitAfterVote: the coordinator holds the participant's votes but
	// no decision is durable yet.
	CPCommitAfterVote = "commit:after-vote"
	// CPCommitAfterDecision: Commit/Abort-Records are durable on the
	// coordinator, but the COMMIT-REQ fan-out has not happened.
	CPCommitAfterDecision = "commit:after-decision"
	// CPCommitMidFanout: the COMMIT-REQ was sent but the ACK has not been
	// received — the decision is in flight.
	CPCommitMidFanout = "commit:mid-fanout"
	// CPCommitBeforeComplete: the participant acknowledged, but the
	// Complete-Record is not yet durable.
	CPCommitBeforeComplete = "commit:before-complete"
	// CPPartBeforeAck: the participant persisted the decision but has not
	// ACKed; the coordinator will retransmit.
	CPPartBeforeAck = "part:before-ack"
	// CPInvalidateMid: the Invalidate-Record is durable but the victim's
	// invalidation notice and re-queue never happened.
	CPInvalidateMid = "invalidate:mid"
)

// CrashPoints lists every named crash-point in the Cx core, for harnesses
// that pick one at random.
var CrashPoints = []string{
	CPExecProvisional,
	CPExecAppend,
	CPExecBeforeReply,
	CPExecAfterReply,
	CPCommitAfterVote,
	CPCommitAfterDecision,
	CPCommitMidFanout,
	CPCommitBeforeComplete,
	CPPartBeforeAck,
	CPInvalidateMid,
}

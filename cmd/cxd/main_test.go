package main

import (
	"bufio"
	"encoding/json"
	"net"
	"strings"
	"testing"
	"time"
)

func TestDispatchCommands(t *testing.T) {
	s := &server{}
	if out, err := s.dispatch(Request{Cmd: "ping"}); err != nil || out != "pong" {
		t.Errorf("ping: %q %v", out, err)
	}
	if out, err := s.dispatch(Request{Cmd: "experiments"}); err != nil || !strings.Contains(out, "fig5") {
		t.Errorf("experiments: %q %v", out, err)
	}
	if _, err := s.dispatch(Request{Cmd: "nope"}); err == nil {
		t.Error("unknown command accepted")
	}
	if _, err := s.dispatch(Request{Cmd: "run", Exp: "nope"}); err == nil {
		t.Error("unknown experiment accepted")
	}
	if _, err := s.dispatch(Request{Cmd: "replay", Trace: "nope"}); err == nil {
		t.Error("unknown trace accepted")
	}
}

func TestDispatchReplayAndMetarates(t *testing.T) {
	s := &server{}
	out, err := s.dispatch(Request{Cmd: "replay", Trace: "CTH", Protocol: "cx", Scale: 0.001, Servers: 2, Seed: 1})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if !strings.Contains(out, "workload=CTH") || !strings.Contains(out, "protocol=cx") {
		t.Errorf("replay output: %s", out)
	}
	out, err = s.dispatch(Request{Cmd: "metarates", Mix: "read-dominated", Servers: 2, Ops: 10, Seed: 1})
	if err != nil {
		t.Fatalf("metarates: %v", err)
	}
	if !strings.Contains(out, "mix=read-dominated") || !strings.Contains(out, "throughput=") {
		t.Errorf("metarates output: %s", out)
	}
}

func TestServeOverRealSocket(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	srv := &server{}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go srv.serve(c)
		}
	}()
	conn, err := net.DialTimeout("tcp", ln.Addr().String(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(30 * time.Second))
	enc := json.NewEncoder(conn)
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 64<<10), 1<<20)

	send := func(req Request) Response {
		t.Helper()
		if err := enc.Encode(req); err != nil {
			t.Fatal(err)
		}
		if !sc.Scan() {
			t.Fatal("no response")
		}
		var resp Response
		if err := json.Unmarshal(sc.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		return resp
	}

	if r := send(Request{Cmd: "ping"}); !r.OK || r.Output != "pong" {
		t.Errorf("ping: %+v", r)
	}
	if r := send(Request{Cmd: "bogus"}); r.OK || r.Error == "" {
		t.Errorf("bogus: %+v", r)
	}
	if r := send(Request{Cmd: "replay", Trace: "CTH", Scale: 0.0005, Servers: 2}); !r.OK {
		t.Errorf("replay over socket: %+v", r)
	}
}

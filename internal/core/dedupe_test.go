// At-most-once execution: duplicate (retried) sub-op requests are answered
// from recorded responses, never re-executed.
package core_test

import (
	"fmt"
	"testing"
	"time"

	"cxfs/internal/cluster"
	"cxfs/internal/simrt"
	"cxfs/internal/types"
	"cxfs/internal/wire"
)

func TestDuplicateSubOpWhilePendingIsSuppressed(t *testing.T) {
	c := build(4, nil)
	defer c.Shutdown()
	c.Sim.Spawn("t", func(p *simrt.Proc) {
		pr := c.Proc(0)
		ino, name := crossCreate(t, p, c, pr, types.RootInode, "dup")
		part := c.Placement.ParticipantFor(ino)
		coord := c.Placement.CoordinatorFor(types.RootInode, name)
		// Replay the participant sub-op of the pending (uncommitted) op.
		op := types.Op{ID: types.OpID{Proc: pr.ID, Seq: 1}, Kind: types.OpCreate,
			Parent: types.RootInode, Name: name, Ino: ino, Type: types.FileRegular}
		// Reconstruct the op id actually used: the create was pr's first op.
		_, pSub := types.Split(op)
		host := c.Hosts[0]
		route := host.Open(op.ID)
		defer host.Done(op.ID)
		host.Send(wire.Msg{Type: wire.MsgSubOpReq, To: part, Op: op.ID, Sub: pSub, Peer: coord, ReplyProc: op.ID.Proc})
		m, ok := route.RecvTimeout(p, 5*time.Second)
		if !ok {
			t.Fatal("no duplicate response")
		}
		if !m.OK {
			t.Errorf("duplicate answered NO: %s", m.Err)
		}
		// The inode must not have been double-created: nlink still 1.
		if in, okk := c.Bases[part].Shard.GetInode(ino); !okk || in.Nlink != 1 {
			t.Errorf("inode after duplicate: %+v %v", in, okk)
		}
		c.Quiesce(p)
		c.Sim.Stop()
	})
	c.Sim.RunUntil(time.Hour)
	if !c.Sim.Stopped() {
		t.Fatal("hung")
	}
	if bad := c.CheckInvariants(); len(bad) != 0 {
		t.Errorf("invariants: %v", bad)
	}
}

func TestDuplicateAfterCommitAnsweredFromCache(t *testing.T) {
	c := build(4, nil)
	defer c.Shutdown()
	c.Sim.Spawn("t", func(p *simrt.Proc) {
		pr := c.Proc(0)
		ino, name := crossCreate(t, p, c, pr, types.RootInode, "dupc")
		c.Quiesce(p) // commit everything; pending entries pruned
		part := c.Placement.ParticipantFor(ino)
		coord := c.Placement.CoordinatorFor(types.RootInode, name)
		op := types.Op{ID: types.OpID{Proc: pr.ID, Seq: 1}, Kind: types.OpCreate,
			Parent: types.RootInode, Name: name, Ino: ino, Type: types.FileRegular}
		_, pSub := types.Split(op)
		host := c.Hosts[0]
		route := host.Open(op.ID)
		defer host.Done(op.ID)
		host.Send(wire.Msg{Type: wire.MsgSubOpReq, To: part, Op: op.ID, Sub: pSub, Peer: coord, ReplyProc: op.ID.Proc})
		m, ok := route.RecvTimeout(p, 5*time.Second)
		if !ok {
			t.Fatal("no response to post-commit duplicate")
		}
		if !m.OK {
			t.Errorf("post-commit duplicate answered NO: %s", m.Err)
		}
		if in, okk := c.Bases[part].Shard.GetInode(ino); !okk || in.Nlink != 1 {
			t.Errorf("inode mutated by duplicate: %+v %v", in, okk)
		}
		c.Sim.Stop()
	})
	c.Sim.RunUntil(time.Hour)
	if !c.Sim.Stopped() {
		t.Fatal("hung")
	}
}

func TestDuplicateOfAbortedOpAnsweredAborted(t *testing.T) {
	c := build(4, nil)
	defer c.Shutdown()
	c.Sim.Spawn("t", func(p *simrt.Proc) {
		pr := c.Proc(0)
		var name string
		var ino types.InodeID
		var coord, part types.NodeID
		for try := 0; ; try++ {
			name = "dupa-" + string(rune('a'+try))
			ino = pr.AllocInode()
			coord = c.Placement.CoordinatorFor(types.RootInode, name)
			part = c.Placement.ParticipantFor(ino)
			if coord != part {
				c.Bases[coord].Shard.SeedDentry(types.RootInode, name, 99999)
				break
			}
		}
		id := pr.NextID()
		op := types.Op{ID: id, Kind: types.OpCreate, Parent: types.RootInode,
			Name: name, Ino: ino, Type: types.FileRegular}
		if _, err := pr.Do(p, op); err == nil {
			t.Fatal("sabotaged create succeeded")
		}
		// Retry the participant sub-op of the aborted op.
		_, pSub := types.Split(op)
		host := c.Hosts[0]
		route := host.Open(id)
		defer host.Done(id)
		host.Send(wire.Msg{Type: wire.MsgSubOpReq, To: part, Op: id, Sub: pSub, Peer: coord, ReplyProc: id.Proc})
		m, ok := route.RecvTimeout(p, 5*time.Second)
		if !ok {
			t.Fatal("no response")
		}
		if m.OK {
			t.Error("aborted op's duplicate answered YES")
		}
		if _, okk := c.Bases[part].Shard.GetInode(ino); okk {
			t.Error("aborted op's inode re-created by duplicate")
		}
		c.Sim.Stop()
	})
	c.Sim.RunUntil(time.Hour)
	if !c.Sim.Stopped() {
		t.Fatal("hung")
	}
}

func TestClientRetryAfterServerCrashSucceeds(t *testing.T) {
	// A server crashes after executing a sub-op but before the client could
	// rely on it; the client retries the whole operation (same op ID) after
	// the server recovers. Duplicate suppression plus recovery must yield
	// exactly-once-visible semantics.
	c := build(4, func(o *cluster.Options) {
		o.Cx.RetryInterval = 100 * time.Millisecond
		o.Cx.VoteWait = 100 * time.Millisecond
		o.Cx.RecoveryFreeze = 10 * time.Millisecond
		o.Hardware.LogMaxBytes = 0
	})
	defer c.Shutdown()
	c.Sim.Spawn("t", func(p *simrt.Proc) {
		pr := c.Proc(0)
		// Pick a cross-server placement up front.
		var name string
		var ino types.InodeID
		var coord, part types.NodeID
		for try := 0; ; try++ {
			name = "retry-" + string(rune('a'+try))
			ino = pr.AllocInode()
			coord = c.Placement.CoordinatorFor(types.RootInode, name)
			part = c.Placement.ParticipantFor(ino)
			if coord != part {
				break
			}
		}
		id := pr.NextID()
		op := types.Op{ID: id, Kind: types.OpCreate, Parent: types.RootInode,
			Name: name, Ino: ino, Type: types.FileRegular}
		cSub, pSub := types.Split(op)
		host := c.Hosts[0]
		route := host.Open(id)
		defer host.Done(id)
		// First attempt: participant crashes immediately after receiving.
		host.Send(wire.Msg{Type: wire.MsgSubOpReq, To: coord, Op: id, Sub: cSub, Peer: part, ReplyProc: id.Proc})
		host.Send(wire.Msg{Type: wire.MsgSubOpReq, To: part, Op: id, Sub: pSub, Peer: coord, ReplyProc: id.Proc})
		p.Sleep(200 * time.Microsecond)
		c.Bases[part].Crash()
		p.Sleep(50 * time.Millisecond)
		c.Bases[part].Reboot()
		c.CxSrv[part].Recover(p)
		// Retry both sub-ops with the same operation ID.
		host.Send(wire.Msg{Type: wire.MsgSubOpReq, To: coord, Op: id, Sub: cSub, Peer: part, ReplyProc: id.Proc})
		host.Send(wire.Msg{Type: wire.MsgSubOpReq, To: part, Op: id, Sub: pSub, Peer: coord, ReplyProc: id.Proc})
		// Collect until both servers answered OK (dedupe may answer from
		// records or fresh execution depending on what survived).
		var okC, okP bool
		deadline := p.Now() + 10*time.Second
		for (!okC || !okP) && p.Now() < deadline {
			m, got := route.RecvTimeout(p, time.Second)
			if !got {
				continue
			}
			if m.Type != wire.MsgSubOpResp || !m.OK {
				continue
			}
			if m.From == coord {
				okC = true
			}
			if m.From == part {
				okP = true
			}
		}
		if !okC || !okP {
			t.Errorf("retry incomplete: coord=%v part=%v", okC, okP)
		}
		c.Quiesce(p)
		if got, err := pr.Lookup(p, types.RootInode, name); err != nil || got.Ino != ino {
			t.Errorf("file after crash+retry: %v %v", got.Ino, err)
		}
		if in, okk := c.Bases[part].Shard.GetInode(ino); !okk || in.Nlink != 1 {
			t.Errorf("inode after crash+retry: %+v %v", in, okk)
		}
		c.Sim.Stop()
	})
	c.Sim.RunUntil(time.Hour)
	if !c.Sim.Stopped() {
		t.Fatal("hung")
	}
	if bad := c.CheckInvariants(); len(bad) != 0 {
		t.Errorf("invariants: %v", bad)
	}
}

func TestConflictDuringResultAppendWindow(t *testing.T) {
	// Regression: a conflicting access that arrives while the holder's
	// Result-Record append is still in flight (the object is active but
	// the pending entry not yet registered) must still elicit the
	// immediate commitment — even when no lazy trigger would ever fire.
	// Before the fix, the commitment demand parked in wantCommit and was
	// replayed only on the coordinator's registration, so a conflict
	// landing in the PARTICIPANT's append window wedged forever.
	o := cluster.DefaultOptions(8, cluster.ProtoCx)
	o.ClientHosts = 4
	o.ProcsPerHost = 2
	o.Cx.Timeout = 0 // no trigger: only conflict-driven commitment can save us
	o.Cx.Threshold = 0
	o.Hardware.LogMaxBytes = 0
	c := cluster.MustNew(o)
	defer c.Shutdown()
	done := false
	c.Sim.Spawn("t", func(p *simrt.Proc) {
		prA, prB := c.Proc(0), c.Proc(c.NumProcs()-1)
		// A cross-server create from A...
		var name string
		var ino types.InodeID
		for try := 0; ; try++ {
			name = fmt.Sprintf("win-%d", try)
			ino = prA.AllocInode()
			if c.Placement.CoordinatorFor(types.RootInode, name) != c.Placement.ParticipantFor(ino) {
				break
			}
		}
		id := prA.NextID()
		op := types.Op{ID: id, Kind: types.OpCreate, Parent: types.RootInode,
			Name: name, Ino: ino, Type: types.FileRegular}
		cSub, pSub := types.Split(op)
		hostA := c.Hosts[0]
		routeA := hostA.Open(id)
		defer hostA.Done(id)
		coord := c.Placement.CoordinatorFor(types.RootInode, name)
		part := c.Placement.ParticipantFor(ino)
		hostA.Send(wire.Msg{Type: wire.MsgSubOpReq, To: coord, Op: id, Sub: cSub, Peer: part, ReplyProc: id.Proc})
		hostA.Send(wire.Msg{Type: wire.MsgSubOpReq, To: part, Op: id, Sub: pSub, Peer: coord, ReplyProc: id.Proc})
		// ...and a stat from B timed to land inside the participant's
		// Result-Record append window (the append takes ~2ms; the sub-op
		// reaches the server after ~130µs).
		gotStat := simrt.NewChan[error](c.Sim)
		c.Sim.Spawn("b", func(bp *simrt.Proc) {
			bp.Sleep(500 * time.Microsecond)
			_, err := prB.Stat(bp, ino)
			gotStat.Send(err)
		})
		if err, ok := gotStat.RecvTimeout(p, 30*time.Second); !ok {
			t.Error("conflicting stat wedged: append-window commitment demand lost")
		} else if err != nil {
			t.Errorf("stat: %v", err)
		}
		routeA.Recv(p) // drain A's responses
		routeA.Recv(p)
		c.Quiesce(p)
		done = true
		c.Sim.Stop()
	})
	c.Sim.RunUntil(time.Hour)
	if !done {
		t.Fatal("hung")
	}
	if bad := c.CheckInvariants(); len(bad) != 0 {
		t.Errorf("invariants: %v", bad)
	}
}

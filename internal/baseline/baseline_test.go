package baseline

import (
	"testing"
	"time"

	"cxfs/internal/simrt"
	"cxfs/internal/types"
)

func TestLockTableExcludes(t *testing.T) {
	s := simrt.New(1)
	lt := newLockTable(s)
	key := []types.ObjKey{types.InodeKey(1)}
	inside, maxInside := 0, 0
	g := simrt.NewGroup(s)
	g.Add(5)
	for i := 0; i < 5; i++ {
		s.Spawn("w", func(p *simrt.Proc) {
			lt.acquire(p, key)
			inside++
			if inside > maxInside {
				maxInside = inside
			}
			p.Sleep(time.Millisecond)
			inside--
			lt.release(key)
			g.Done()
		})
	}
	s.Spawn("ctl", func(p *simrt.Proc) { g.Wait(p); s.Stop() })
	s.RunUntil(time.Minute)
	s.Shutdown()
	if maxInside != 1 {
		t.Errorf("max holders=%d, want 1", maxInside)
	}
}

func TestLockTableMultiKeyNoDeadlock(t *testing.T) {
	// Two procs acquiring overlapping key sets in opposite order must not
	// deadlock thanks to the canonical ordering.
	s := simrt.New(1)
	lt := newLockTable(s)
	a, b := types.InodeKey(1), types.InodeKey(2)
	g := simrt.NewGroup(s)
	g.Add(2)
	s.Spawn("p1", func(p *simrt.Proc) {
		for i := 0; i < 50; i++ {
			lt.acquire(p, []types.ObjKey{a, b})
			p.Sleep(10 * time.Microsecond)
			lt.release([]types.ObjKey{a, b})
		}
		g.Done()
	})
	s.Spawn("p2", func(p *simrt.Proc) {
		for i := 0; i < 50; i++ {
			lt.acquire(p, []types.ObjKey{b, a})
			p.Sleep(10 * time.Microsecond)
			lt.release([]types.ObjKey{b, a})
		}
		g.Done()
	})
	done := false
	s.Spawn("ctl", func(p *simrt.Proc) { g.Wait(p); done = true; s.Stop() })
	s.RunUntil(time.Minute)
	s.Shutdown()
	if !done {
		t.Fatal("deadlock in opposite-order multi-key acquisition")
	}
}

func TestLockTableReleaseWakesOne(t *testing.T) {
	s := simrt.New(1)
	lt := newLockTable(s)
	key := []types.ObjKey{types.DentryKey(1, "x")}
	order := []int{}
	s.Spawn("holder", func(p *simrt.Proc) {
		lt.acquire(p, key)
		p.Sleep(time.Millisecond)
		lt.release(key)
	})
	for i := 1; i <= 3; i++ {
		i := i
		s.SpawnAfter(time.Duration(i)*time.Microsecond, "waiter", func(p *simrt.Proc) {
			lt.acquire(p, key)
			order = append(order, i)
			lt.release(key)
		})
	}
	s.RunUntil(time.Minute)
	s.Shutdown()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("wake order=%v, want FIFO [1 2 3]", order)
	}
}

func TestErrStringMapping(t *testing.T) {
	for _, known := range []error{types.ErrExists, types.ErrNotFound, types.ErrNotEmpty} {
		err := errString("insert x: " + known.Error())
		if err == nil {
			t.Fatalf("nil for %v", known)
		}
	}
	if errString("") == nil {
		t.Error("empty message should map to an error")
	}
	if errString("weird failure") == nil {
		t.Error("unknown message should map to an error")
	}
}

func TestObjKeyLessTotalOrder(t *testing.T) {
	keys := []types.ObjKey{
		types.InodeKey(5), types.InodeKey(2),
		types.DentryKey(1, "b"), types.DentryKey(1, "a"), types.DentryKey(2, "a"),
	}
	for _, a := range keys {
		if objKeyLess(a, a) {
			t.Errorf("%v < itself", a)
		}
		for _, b := range keys {
			if a != b && objKeyLess(a, b) == objKeyLess(b, a) {
				t.Errorf("ordering not antisymmetric for %v, %v", a, b)
			}
		}
	}
}

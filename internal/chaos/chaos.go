// Package chaos is the fault-injection harness: it drives a randomized
// workload against a Cx cluster while a nemesis process injects crashes,
// reboots, protocol crash-points, directed partitions, and lossy-link
// windows — all drawn from seeded RNGs inside the deterministic simulation,
// so a failing run replays exactly from its seed.
//
// After the workload drains, the harness heals the network, recovers every
// crashed server, quiesces, and verifies two things:
//
//  1. client-visible outcome consistency — an operation the client saw
//     succeed is durable, one the client saw definitely fail left no
//     residue, and one that timed out (outcome unknown) settled to exactly
//     one of the two states it could legally be in; and
//  2. the cluster invariants of Cluster.CheckInvariants (dentry/inode
//     referential integrity, nlink counts, no leaked active objects).
//
// A Report carries the seed, the full nemesis schedule, the failure
// detector's suspect/recover timeline, and any violations; Report.String
// prints everything needed to replay the run.
package chaos

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"strings"
	"time"

	"cxfs/internal/cluster"
	"cxfs/internal/core"
	"cxfs/internal/model"
	"cxfs/internal/simrt"
	"cxfs/internal/transport"
	"cxfs/internal/types"
)

// Config sizes one chaos run. Zero fields take the defaults noted inline.
type Config struct {
	Servers      int           // metadata servers (default 4)
	Workers      int           // concurrent client processes (default 6)
	OpsPerWorker int           // operations each worker issues (default 30)
	Seed         int64         // simulation + nemesis + workload seed
	Duration     time.Duration // nemesis active window (default 1.5s)
	FaultRate    float64       // scales link-fault probabilities (default 1.0)
	// Pipeline > 1 switches every worker to pipelined dispatch: up to that
	// many operations in flight per process, with per-name sequencing
	// preserved so the oracle stays valid. <= 1 keeps the classic
	// one-op-at-a-time loop.
	Pipeline int
	// GroupLinger > 0 enables cross-proc WAL group commit on every server
	// (see cluster.Options.GroupLinger).
	GroupLinger time.Duration
	// CacheTTL > 0 enables the leased client metadata cache on every driver
	// (see cluster.Options.CacheTTL). Every lookup in the history is then
	// stamped with its cache disposition and lease grant time, and the
	// staleness-bound oracle (model.CheckStalenessBound) becomes meaningful.
	CacheTTL time.Duration
	// StatStorm switches every worker to the read-dominant stat-storm mix:
	// a trickle of creates/removes under a storm of own-name and cross-worker
	// lookups, while the nemesis preferentially kills the server holding the
	// most leases. Implies the one-op-at-a-time loop (Pipeline is ignored).
	StatStorm bool
}

func (c Config) withDefaults() Config {
	if c.Servers <= 0 {
		c.Servers = 4
	}
	if c.Workers <= 0 {
		c.Workers = 6
	}
	if c.OpsPerWorker <= 0 {
		c.OpsPerWorker = 30
		// Pipelined workers drain a fixed op budget several times faster
		// than the closed loop, which would end the run before the nemesis
		// (first event ~25ms in) gets a real window. Scale the default
		// budget by the depth so fault exposure stays comparable; an
		// explicit OpsPerWorker is always honored as given.
		if c.Pipeline > 1 {
			c.OpsPerWorker *= c.Pipeline
		}
	}
	if c.Duration <= 0 {
		c.Duration = 1500 * time.Millisecond
	}
	if c.FaultRate <= 0 {
		c.FaultRate = 1.0
	}
	return c
}

// Event is one timestamped entry in the nemesis schedule or the failure
// detector timeline.
type Event struct {
	At   time.Duration
	What string
}

// Report is the full outcome of one chaos run.
type Report struct {
	Seed int64

	// Client-visible operation outcomes.
	Ops, OK, Failed, Unknown uint64

	// Nemesis activity.
	Crashes          int // direct crash/reboot cycles
	CrashPointsFired int // crashes triggered through an armed crash-point
	Reboots          int // reboot+recover cycles (including final repair)
	Partitions       int // directed partition windows
	FaultWindows     int // lossy-link windows

	Schedule       []Event // everything the nemesis did, in order
	DetectorEvents []Event // failure-detector suspect/recover timeline

	Violations []string // empty = consistent
	Hung       bool     // the run never reached verification
	Elapsed    time.Duration
	Net        transport.Stats

	// History is every client observation in completion order; the model
	// oracle (internal/model) replays it against the sequential namespace
	// model. Final is the settled namespace after heal+recover+quiesce.
	History []model.Op
	Final   map[string]types.InodeID

	// WAL activity summed over every server: Appends counts disk requests
	// the WALs issued, GroupFlushes the subset that coalesced a group-commit
	// window. With GroupLinger set, Appends dropping at equal op count is
	// the group-commit win.
	WALAppends      uint64
	WALGroupFlushes uint64

	// Leased-cache activity (all zero when CacheTTL is 0): client cache
	// hits/misses summed over every driver, and lease grants/revocations
	// summed over every server.
	CacheHits        uint64
	CacheMisses      uint64
	LeaseGrants      uint64
	LeaseRevocations uint64
}

// Consistent reports whether the run completed with no violations.
func (r *Report) Consistent() bool { return !r.Hung && len(r.Violations) == 0 }

// Fingerprint is a compact deterministic digest of the whole report —
// two runs with the same seed and config must produce identical values.
func (r *Report) Fingerprint() string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s", r.String())
	return fmt.Sprintf("%016x", h.Sum64())
}

// String renders the report with everything needed to replay the run.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos seed=%d elapsed=%v ops=%d ok=%d failed=%d unknown=%d\n",
		r.Seed, r.Elapsed, r.Ops, r.OK, r.Failed, r.Unknown)
	fmt.Fprintf(&b, "  nemesis: crashes=%d crash-points=%d reboots=%d partitions=%d fault-windows=%d\n",
		r.Crashes, r.CrashPointsFired, r.Reboots, r.Partitions, r.FaultWindows)
	fmt.Fprintf(&b, "  net: msgs=%d dropped-fault=%d dropped-partition=%d dropped-down=%d dup=%d delayed=%d\n",
		r.Net.Messages, r.Net.DroppedFault, r.Net.DroppedPartition,
		r.Net.DroppedDown, r.Net.Duplicated, r.Net.Delayed)
	fmt.Fprintf(&b, "  history: ops=%d hash=%016x wal-appends=%d group-flushes=%d\n",
		len(r.History), model.HistoryHash(r.History), r.WALAppends, r.WALGroupFlushes)
	fmt.Fprintf(&b, "  cache: hits=%d misses=%d lease-grants=%d lease-revocations=%d\n",
		r.CacheHits, r.CacheMisses, r.LeaseGrants, r.LeaseRevocations)
	fmt.Fprintf(&b, "  schedule (%d events):\n", len(r.Schedule))
	for _, e := range r.Schedule {
		fmt.Fprintf(&b, "    %9v %s\n", e.At, e.What)
	}
	fmt.Fprintf(&b, "  detector (%d events):\n", len(r.DetectorEvents))
	for _, e := range r.DetectorEvents {
		fmt.Fprintf(&b, "    %9v %s\n", e.At, e.What)
	}
	if r.Hung {
		fmt.Fprintf(&b, "  HUNG: the run never reached verification\n")
	}
	if len(r.Violations) > 0 {
		fmt.Fprintf(&b, "  VIOLATIONS (%d):\n", len(r.Violations))
		for _, v := range r.Violations {
			fmt.Fprintf(&b, "    %s\n", v)
		}
		fmt.Fprintf(&b, "  replay: go run ./cmd/cxbench -exp chaos -seed %d\n", r.Seed)
	}
	return b.String()
}

// harness carries the shared state of one run. The simulation is
// single-threaded, so no locking is needed anywhere.
type harness struct {
	cfg     Config
	c       *cluster.Cluster
	rep     *Report
	group   *simrt.Group
	busy    []bool     // per-server: the nemesis is mid-cycle on it
	entries [][]*entry // per-worker name oracle
}

func (h *harness) event(what string) {
	h.rep.Schedule = append(h.rep.Schedule, Event{At: h.c.Sim.Now(), What: what})
}

func (h *harness) violate(format string, args ...any) {
	h.rep.Violations = append(h.rep.Violations, fmt.Sprintf(format, args...))
}

// Run executes one chaos run to completion and returns its report.
func Run(cfg Config) *Report {
	cfg = cfg.withDefaults()
	rep := &Report{Seed: cfg.Seed}

	opts := cluster.DefaultOptions(cfg.Servers, cluster.ProtoCx)
	opts.Seed = cfg.Seed
	opts.ClientHosts = cfg.Workers
	opts.ProcsPerHost = 1
	// Aggressive protocol timing so crashes, retries, and recovery all cycle
	// many times inside the nemesis window.
	opts.Cx.Timeout = 25 * time.Millisecond
	opts.Cx.VoteWait = 15 * time.Millisecond
	opts.Cx.RetryInterval = 10 * time.Millisecond
	opts.Cx.RecoveryFreeze = 2 * time.Millisecond
	// Client-side retry is mandatory here: without it a single dropped reply
	// wedges a worker forever and the run can never drain.
	opts.Retry = types.RetryPolicy{Timeout: 50 * time.Millisecond, Attempts: 6}
	opts.GroupLinger = cfg.GroupLinger
	opts.CacheTTL = cfg.CacheTTL
	c := cluster.MustNew(opts)
	if cfg.CacheTTL > 0 && cfg.Pipeline > 1 {
		// Pipelined lookups need the per-op disposition log; the serial
		// workers read LastLookup immediately after each call instead.
		for w := 0; w < cfg.Workers; w++ {
			if d, ok := c.Proc(w).Driver().(*core.Driver); ok {
				d.TrackLookups()
			}
		}
	}

	h := &harness{
		cfg: cfg, c: c, rep: rep,
		group:   simrt.NewGroup(c.Sim),
		busy:    make([]bool, cfg.Servers),
		entries: make([][]*entry, cfg.Workers),
	}

	det := cluster.NewFailureDetector(c, 10*time.Millisecond, 30*time.Millisecond)
	det.OnSuspect = func(srv types.NodeID, at time.Duration) {
		rep.DetectorEvents = append(rep.DetectorEvents, Event{At: at, What: fmt.Sprintf("suspect s%d", srv)})
	}
	det.OnRecover = func(srv types.NodeID, at time.Duration) {
		rep.DetectorEvents = append(rep.DetectorEvents, Event{At: at, What: fmt.Sprintf("recover s%d", srv)})
	}

	h.group.Add(cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		body := h.worker(w)
		switch {
		case cfg.StatStorm:
			body = h.stormWorker(w)
		case cfg.Pipeline > 1:
			body = h.pipelinedWorker(w)
		}
		c.Sim.Spawn(fmt.Sprintf("chaos/worker%d", w), body)
	}

	nem := &nemesis{h: h, rng: rand.New(rand.NewSource(cfg.Seed ^ 0x6e656d6573697321))}
	c.Sim.SpawnAfter(20*time.Millisecond, "chaos/nemesis", nem.run)

	c.Sim.Spawn("chaos/main", func(p *simrt.Proc) {
		h.group.Wait(p)
		nem.halt = true
		for !nem.done {
			p.Sleep(5 * time.Millisecond)
		}
		// Repair the world: heal every cut and fault window, disarm crash
		// points, and bring every crashed server back through recovery.
		c.Net.HealAll()
		c.Net.ClearFaults()
		for i, b := range c.Bases {
			b.SetCrashPoint(nil)
			if b.Crashed() {
				b.Reboot()
				c.CxSrv[i].Recover(p)
				rep.Reboots++
				h.event(fmt.Sprintf("final reboot+recover s%d", i))
			}
		}
		p.Sleep(100 * time.Millisecond)
		c.Quiesce(p)
		h.verify(p)
		rep.Elapsed = p.Now()
		c.Sim.Stop()
	})

	c.Sim.RunUntil(time.Hour)
	if !c.Sim.Stopped() {
		rep.Hung = true
		rep.Violations = append(rep.Violations,
			"run did not complete within the simulated horizon (hang)")
		rep.Elapsed = c.Sim.Now()
	}
	rep.Net = c.Net.Stats()
	for _, b := range c.Bases {
		ws := b.WAL.Stats()
		rep.WALAppends += ws.Appends
		rep.WALGroupFlushes += ws.GroupFlushes
	}
	cs := c.CacheStats()
	rep.CacheHits, rep.CacheMisses = cs.Hits, cs.Misses
	rep.LeaseGrants, rep.LeaseRevocations = c.LeaseStats()
	c.Shutdown()
	return rep
}

// Package cxfs is the public face of the Cx reproduction — the protocol
// from "Cx: Concurrent Execution for the Cross-Server Operations in a
// Distributed File System" (IEEE CLUSTER 2012), together with the simulated
// distributed-file-system substrate it runs on and the baselines it is
// evaluated against.
//
// The library is organized in three layers:
//
//   - a deterministic process-model simulation runtime (virtual clock,
//     simulated disks with an elevator scheduler, a latency/bandwidth
//     network), standing in for the paper's 32-node testbed;
//   - a distributed metadata service: namespace shards over an embedded
//     key-value store, a write-ahead operation log, and four cross-server
//     operation protocols — Cx plus the SE (OrangeFS), SE-batched
//     (OFS-batched), 2PC, and CE (Ursa Minor) baselines; and
//   - workloads and experiments: the six paper traces, the Metarates
//     benchmark, and a harness regenerating every table and figure of the
//     paper's evaluation.
//
// # Quick start
//
//	fs := cxfs.New(cxfs.Options{Servers: 4, Protocol: cxfs.Cx})
//	defer fs.Close()
//	fs.Run(func(ctx *cxfs.Ctx) {
//	    ino, err := ctx.Create(cxfs.Root, "hello.txt")
//	    if err != nil { ... }
//	    attr, _ := ctx.Stat(ino)
//	    fmt.Println(attr.Nlink)
//	})
//
// Everything inside Run executes in virtual time on a deterministic
// simulated cluster; fs.Elapsed() reports how much virtual time the
// workload consumed, and fs.CheckConsistency() verifies the paper's
// atomicity invariant across servers.
package cxfs

import (
	"time"

	"cxfs/internal/cluster"
	"cxfs/internal/core"
	"cxfs/internal/namespace"
	"cxfs/internal/simrt"
	"cxfs/internal/types"
)

// Protocol selects the cross-server operation protocol.
type Protocol = cluster.Protocol

// The five protocols: the paper's contribution and its baselines.
const (
	Cx        = cluster.ProtoCx
	SE        = cluster.ProtoSE
	SEBatched = cluster.ProtoSEBatched
	TwoPC     = cluster.Proto2PC
	CE        = cluster.ProtoCE
)

// Root is the root directory's inode number.
const Root = types.RootInode

// InodeID identifies a file or directory.
type InodeID = types.InodeID

// Inode is the attribute block returned by Stat and Lookup.
type Inode = types.Inode

// Options configures a simulated deployment. Zero values take the paper's
// defaults (4 client hosts per server, 8 processes per host, 10s lazy
// commitment timeout, 1MB operation log).
type Options struct {
	Servers      int
	ClientHosts  int
	ProcsPerHost int
	Protocol     Protocol
	Seed         int64

	// CommitTimeout is Cx's lazy-commitment timeout trigger (0 keeps the
	// paper's 10s default; negative disables the trigger).
	CommitTimeout time.Duration
	// CommitThreshold is Cx's pending-count trigger (0 = disabled).
	CommitThreshold int
	// LogLimit caps each server's operation log in bytes (0 keeps the
	// paper's 1MB; negative means unlimited).
	LogLimit int64
}

// FS is one simulated deployment of the metadata service.
type FS struct {
	c       *cluster.Cluster
	elapsed time.Duration
}

// New builds and starts a deployment.
func New(o Options) *FS {
	if o.Servers == 0 {
		o.Servers = 4
	}
	if o.Protocol == "" {
		o.Protocol = Cx
	}
	co := cluster.DefaultOptions(o.Servers, o.Protocol)
	if o.ClientHosts > 0 {
		co.ClientHosts = o.ClientHosts
	}
	if o.ProcsPerHost > 0 {
		co.ProcsPerHost = o.ProcsPerHost
	}
	if o.Seed != 0 {
		co.Seed = o.Seed
	}
	switch {
	case o.CommitTimeout > 0:
		co.Cx.Timeout = o.CommitTimeout
	case o.CommitTimeout < 0:
		co.Cx.Timeout = 0
	}
	if o.CommitThreshold > 0 {
		co.Cx.Threshold = o.CommitThreshold
	}
	switch {
	case o.LogLimit > 0:
		co.Hardware.LogMaxBytes = o.LogLimit
	case o.LogLimit < 0:
		co.Hardware.LogMaxBytes = 0
	}
	return &FS{c: cluster.MustNew(co)}
}

// Cluster exposes the underlying assembly for advanced use (experiment
// harnesses, invariant checks, protocol statistics).
func (fs *FS) Cluster() *cluster.Cluster { return fs.c }

// Ctx is a file-system session bound to one application process inside the
// simulation. All calls are blocking in virtual time.
type Ctx struct {
	p  *simrt.Proc
	pr *cluster.Process
	fs *FS
}

// Run executes body as application process 0 and drives the simulation
// until the body and all background protocol activity (lazy commitments,
// write-back) settle. It may be called repeatedly.
func (fs *FS) Run(body func(*Ctx)) {
	fs.RunN(1, func(ctx *Ctx, _ int) { body(ctx) })
}

// RunN executes body on n concurrent application processes (i = 0..n-1) and
// settles the system afterwards.
func (fs *FS) RunN(n int, body func(ctx *Ctx, i int)) {
	if n > fs.c.NumProcs() {
		n = fs.c.NumProcs()
	}
	g := simrt.NewGroup(fs.c.Sim)
	g.Add(n)
	for i := 0; i < n; i++ {
		i := i
		pr := fs.c.Proc(i)
		fs.c.Sim.Spawn("cxfs/app", func(p *simrt.Proc) {
			body(&Ctx{p: p, pr: pr, fs: fs}, i)
			g.Done()
		})
	}
	fs.c.Sim.Spawn("cxfs/controller", func(p *simrt.Proc) {
		g.Wait(p)
		fs.elapsed = p.Now()
		fs.c.Quiesce(p)
		fs.c.Sim.Stop()
	})
	fs.c.Sim.Run()
	// Re-arm the stop latch so Run can be called again.
	fs.rearm()
}

func (fs *FS) rearm() {
	// The simulation's Stop flag is one-shot per Run; cluster.Cluster owns
	// a Sim whose Stopped state resets on the next dispatch loop entry.
	fs.c.Sim.Rearm()
}

// Elapsed returns the virtual time consumed by the last Run's workload
// (excluding the settling phase).
func (fs *FS) Elapsed() time.Duration { return fs.elapsed }

// Messages returns the total messages the deployment has sent.
func (fs *FS) Messages() uint64 { return fs.c.MsgStats().Messages }

// CxStats aggregates the Cx protocol counters across servers (zero values
// under other protocols).
func (fs *FS) CxStats() core.Stats {
	var total core.Stats
	for _, srv := range fs.c.CxSrv {
		st := srv.Stats()
		total.Conflicts += st.Conflicts
		total.ImmediateCommits += st.ImmediateCommits
		total.LazyBatches += st.LazyBatches
		total.OpsCommitted += st.OpsCommitted
		total.OpsAborted += st.OpsAborted
		total.Invalidations += st.Invalidations
		total.VoteTimeouts += st.VoteTimeouts
	}
	return total
}

// CheckConsistency verifies the paper's correctness goal after a Run:
// cross-server atomicity and namespace coherence. It returns a list of
// violations (empty = consistent).
func (fs *FS) CheckConsistency() []string { return fs.c.CheckInvariants() }

// Close tears down the deployment's goroutines.
func (fs *FS) Close() { fs.c.Shutdown() }

// --- Ctx operations --------------------------------------------------------

// Create makes a regular file in dir and returns its inode number.
func (c *Ctx) Create(dir InodeID, name string) (InodeID, error) {
	return c.pr.Create(c.p, dir, name)
}

// Mkdir makes a directory.
func (c *Ctx) Mkdir(dir InodeID, name string) (InodeID, error) {
	return c.pr.Mkdir(c.p, dir, name)
}

// Remove unlinks a file.
func (c *Ctx) Remove(dir InodeID, name string, ino InodeID) error {
	return c.pr.Remove(c.p, dir, name, ino)
}

// Rmdir removes an empty directory.
func (c *Ctx) Rmdir(dir InodeID, name string, ino InodeID) error {
	return c.pr.Rmdir(c.p, dir, name, ino)
}

// Link adds a hard link to ino.
func (c *Ctx) Link(dir InodeID, name string, ino InodeID) error {
	return c.pr.Link(c.p, dir, name, ino)
}

// Unlink removes a hard link.
func (c *Ctx) Unlink(dir InodeID, name string, ino InodeID) error {
	return c.pr.Unlink(c.p, dir, name, ino)
}

// Rename moves a file to a new directory and/or name (Cx protocol only;
// runs as an eager cross-server transaction per the rename extension).
func (c *Ctx) Rename(dir InodeID, name string, ino InodeID, newDir InodeID, newName string) error {
	return c.pr.Rename(c.p, dir, name, ino, newDir, newName)
}

// DirEntry is one readdir result.
type DirEntry = namespace.DirEntry

// Readdir lists a directory (weakly consistent: a striped union of every
// server's partition, as in OrangeFS).
func (c *Ctx) Readdir(dir InodeID) ([]DirEntry, error) {
	return c.pr.Readdir(c.p, dir)
}

// Stat reads inode attributes.
func (c *Ctx) Stat(ino InodeID) (Inode, error) {
	return c.pr.Stat(c.p, ino)
}

// Lookup resolves (dir, name) to an inode.
func (c *Ctx) Lookup(dir InodeID, name string) (Inode, error) {
	return c.pr.Lookup(c.p, dir, name)
}

// SetAttr touches inode attributes.
func (c *Ctx) SetAttr(ino InodeID) error {
	return c.pr.SetAttr(c.p, ino)
}

// Sleep advances virtual time for this process.
func (c *Ctx) Sleep(d time.Duration) { c.p.Sleep(d) }

// Now returns the current virtual time.
func (c *Ctx) Now() time.Duration { return c.p.Now() }

package cluster

import (
	"fmt"
	"time"

	"cxfs/internal/simrt"
	"cxfs/internal/types"
	"cxfs/internal/wire"
)

// FailureDetector is the heartbeat-based failure detection subsystem the
// paper's recovery section presupposes ("The recovery process for node
// starts when the failure detection subsystem confirms a crash", §V). It
// runs as one monitoring process with its own node identity: every
// Interval it pings each metadata server, and a server that misses pings
// for longer than Timeout is suspected. Suspicion clears as soon as a pong
// arrives again (after reboot), so the detector also notices recoveries.
//
// The detector observes only messages — it has no backdoor into the
// simulation's ground truth — so its detection latency is a real quantity:
// between Timeout and Timeout+Interval after the crash instant.
type FailureDetector struct {
	c        *Cluster
	id       types.NodeID
	Interval time.Duration
	Timeout  time.Duration

	// OnSuspect/OnRecover fire (in simulation context) on state changes.
	OnSuspect func(srv types.NodeID, at time.Duration)
	OnRecover func(srv types.NodeID, at time.Duration)

	lastPong  map[types.NodeID]time.Duration
	suspected map[types.NodeID]bool
	seq       uint64
}

// NewFailureDetector attaches a detector to the cluster and starts it.
// Interval defaults to 100ms and Timeout to 3*Interval when zero.
func NewFailureDetector(c *Cluster, interval, timeout time.Duration) *FailureDetector {
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	if timeout <= 0 {
		timeout = 3 * interval
	}
	d := &FailureDetector{
		c: c, Interval: interval, Timeout: timeout,
		lastPong:  make(map[types.NodeID]time.Duration),
		suspected: make(map[types.NodeID]bool),
	}
	// The detector node sits after every server and client host.
	d.id = types.NodeID(c.Opts.Servers + c.Opts.ClientHosts + 1)
	inbox := c.Net.Register(d.id)
	now := c.Sim.Now()
	for srv := 0; srv < c.Opts.Servers; srv++ {
		d.lastPong[types.NodeID(srv)] = now
	}
	c.Sim.Spawn("failure-detector/recv", func(p *simrt.Proc) {
		for {
			m, ok := inbox.RecvOK(p)
			if !ok {
				return
			}
			if m.Type != wire.MsgPong {
				continue
			}
			d.lastPong[m.From] = p.Now()
			if d.suspected[m.From] {
				d.suspected[m.From] = false
				if d.OnRecover != nil {
					d.OnRecover(m.From, p.Now())
				}
			}
		}
	})
	c.Sim.Spawn("failure-detector/ping", func(p *simrt.Proc) {
		for {
			for srv := 0; srv < c.Opts.Servers; srv++ {
				d.seq++
				c.Net.Send(wire.Msg{Type: wire.MsgPing, From: d.id, To: types.NodeID(srv),
					Op: types.OpID{Proc: types.ProcID{Client: d.id}, Seq: d.seq}})
			}
			p.Sleep(d.Interval)
			for srv := 0; srv < c.Opts.Servers; srv++ {
				id := types.NodeID(srv)
				if d.suspected[id] {
					continue
				}
				if p.Now()-d.lastPong[id] > d.Timeout {
					d.suspected[id] = true
					if d.OnSuspect != nil {
						d.OnSuspect(id, p.Now())
					}
				}
			}
		}
	})
	return d
}

// Suspected reports whether the detector currently believes srv is down.
func (d *FailureDetector) Suspected(srv types.NodeID) bool { return d.suspected[srv] }

// String summarizes the detector state.
func (d *FailureDetector) String() string {
	n := 0
	for _, s := range d.suspected {
		if s {
			n++
		}
	}
	return fmt.Sprintf("detector{interval=%v timeout=%v suspected=%d}", d.Interval, d.Timeout, n)
}

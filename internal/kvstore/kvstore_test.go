package kvstore

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"cxfs/internal/disk"
	"cxfs/internal/simrt"
)

// withStore runs fn in a simulation with one store and returns the virtual
// end time.
func withStore(t *testing.T, fn func(p *simrt.Proc, st *Store)) time.Duration {
	t.Helper()
	s := simrt.New(1)
	d := disk.New(s, "d", disk.DefaultParams())
	st := New(s, d, 1<<30)
	s.Spawn("driver", func(p *simrt.Proc) {
		fn(p, st)
		s.Stop()
	})
	end := s.Run()
	s.Shutdown()
	return end
}

func TestPutGetDelete(t *testing.T) {
	withStore(t, func(p *simrt.Proc, st *Store) {
		st.Put("a", []byte("1"))
		if v, ok := st.Get("a"); !ok || string(v) != "1" {
			t.Errorf("Get(a)=%q,%v", v, ok)
		}
		st.Delete("a")
		if _, ok := st.Get("a"); ok {
			t.Error("deleted key still present")
		}
	})
}

func TestPutCopiesValue(t *testing.T) {
	withStore(t, func(p *simrt.Proc, st *Store) {
		buf := []byte("abc")
		st.Put("k", buf)
		buf[0] = 'X'
		if v, _ := st.Get("k"); string(v) != "abc" {
			t.Errorf("store aliased caller buffer: %q", v)
		}
	})
}

func TestSyncWriteAdvancesDurableImage(t *testing.T) {
	withStore(t, func(p *simrt.Proc, st *Store) {
		st.Put("k", []byte("v"))
		if d := st.DurableSnapshot(); len(d) != 0 {
			t.Error("durable image advanced before any write")
		}
		st.SyncKeys(p, []string{"k"})
		d := st.DurableSnapshot()
		if string(d["k"]) != "v" {
			t.Errorf("durable image = %v", d)
		}
		if st.DirtyCount() != 0 {
			t.Error("dirty mark survived sync write")
		}
	})
}

func TestCrashRevertsToDurable(t *testing.T) {
	withStore(t, func(p *simrt.Proc, st *Store) {
		st.Put("stable", []byte("s"))
		st.SyncKeys(p, []string{"stable"})
		st.Put("volatile", []byte("v"))
		st.Crash()
		st.Recover()
		if _, ok := st.Get("volatile"); ok {
			t.Error("unsynced key survived crash")
		}
		if v, ok := st.Get("stable"); !ok || string(v) != "s" {
			t.Errorf("synced key lost: %q %v", v, ok)
		}
	})
}

func TestCrashRevertsDeletes(t *testing.T) {
	withStore(t, func(p *simrt.Proc, st *Store) {
		st.Put("k", []byte("v"))
		st.SyncKeys(p, []string{"k"})
		st.Delete("k") // not flushed
		st.Crash()
		st.Recover()
		if v, ok := st.Get("k"); !ok || string(v) != "v" {
			t.Error("unsynced delete should revert on crash")
		}
	})
}

func TestFlushDirtyWritesAllAndSettles(t *testing.T) {
	withStore(t, func(p *simrt.Proc, st *Store) {
		for i := 0; i < 20; i++ {
			st.Put(fmt.Sprintf("k%02d", i), []byte{byte(i)})
		}
		n := st.FlushDirty(p)
		if n != 20 {
			t.Errorf("flushed %d, want 20", n)
		}
		if st.DirtyCount() != 0 {
			t.Errorf("dirty=%d after flush", st.DirtyCount())
		}
		if len(st.DurableSnapshot()) != 20 {
			t.Error("durable image incomplete after flush")
		}
		if st.FlushDirty(p) != 0 {
			t.Error("second flush found dirty pages")
		}
	})
}

func TestBatchedFlushFasterThanSyncWrites(t *testing.T) {
	const n = 64
	var keys []string
	for i := 0; i < n; i++ {
		keys = append(keys, fmt.Sprintf("dir1/file%03d", i))
	}
	batched := withStore(t, func(p *simrt.Proc, st *Store) {
		for _, k := range keys {
			st.Put(k, []byte("x"))
		}
		st.FlushDirty(p)
	})
	sync := withStore(t, func(p *simrt.Proc, st *Store) {
		for _, k := range keys {
			st.Put(k, []byte("x"))
			st.SyncKeys(p, []string{k})
		}
	})
	// Sequential slot allocation means even sync writes are sequential here;
	// batched must still win by saving per-request settle overhead and, more
	// importantly, must never lose.
	if batched > sync {
		t.Errorf("batched flush (%v) slower than sync writes (%v)", batched, sync)
	}
}

func TestFlushMergesAdjacentPages(t *testing.T) {
	s := simrt.New(1)
	d := disk.New(s, "d", disk.DefaultParams())
	st := New(s, d, 1<<30)
	s.Spawn("driver", func(p *simrt.Proc) {
		for i := 0; i < 32; i++ {
			st.Put(fmt.Sprintf("k%02d", i), []byte("x"))
		}
		st.FlushDirty(p)
		s.Stop()
	})
	s.Run()
	s.Shutdown()
	if d.Stats().Merged == 0 {
		t.Errorf("flush of sequentially allocated pages did not merge: %+v", d.Stats())
	}
}

func TestFlushKeysSubset(t *testing.T) {
	withStore(t, func(p *simrt.Proc, st *Store) {
		st.Put("a", []byte("1"))
		st.Put("b", []byte("2"))
		st.FlushKeys(p, []string{"a", "never-written"})
		if st.DirtyCount() != 1 {
			t.Errorf("dirty=%d, want 1 (only b left)", st.DirtyCount())
		}
		d := st.DurableSnapshot()
		if string(d["a"]) != "1" {
			t.Error("a not durable")
		}
		if _, ok := d["b"]; ok {
			t.Error("b became durable without flush")
		}
	})
}

func TestSlotAllocationStableAcrossRewrites(t *testing.T) {
	withStore(t, func(p *simrt.Proc, st *Store) {
		st.Put("k", []byte("1"))
		first := st.slot("k")
		st.Put("k", []byte("2"))
		st.Delete("k")
		st.Put("k", []byte("3"))
		if st.slot("k") != first {
			t.Error("key changed page slot across rewrites")
		}
	})
}

func TestSnapshotIsDeepCopy(t *testing.T) {
	withStore(t, func(p *simrt.Proc, st *Store) {
		st.Put("k", []byte("abc"))
		snap := st.Snapshot()
		snap["k"][0] = 'Z'
		if v, _ := st.Get("k"); string(v) != "abc" {
			t.Error("snapshot aliases store memory")
		}
	})
}

func TestQuickVolatileSemantics(t *testing.T) {
	// Property: a sequence of Put/Delete applied to the store matches a
	// plain map, and after FlushDirty the durable image matches too.
	type step struct {
		Key    uint8
		Val    uint8
		Delete bool
	}
	f := func(steps []step) bool {
		ok := true
		withStore(t, func(p *simrt.Proc, st *Store) {
			model := map[string][]byte{}
			for _, sp := range steps {
				k := fmt.Sprintf("k%d", sp.Key%16)
				if sp.Delete {
					st.Delete(k)
					delete(model, k)
				} else {
					v := []byte{sp.Val}
					st.Put(k, v)
					model[k] = v
				}
			}
			st.FlushDirty(p)
			snap := st.Snapshot()
			dur := st.DurableSnapshot()
			if len(snap) != len(model) || len(dur) != len(model) {
				ok = false
				return
			}
			for k, v := range model {
				if !bytes.Equal(snap[k], v) || !bytes.Equal(dur[k], v) {
					ok = false
					return
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCheckpointWritesJournaledPages(t *testing.T) {
	s := simrt.New(1)
	d := disk.New(s, "d", disk.DefaultParams())
	st := New(s, d, 1<<30)
	var wrote int
	s.Spawn("driver", func(p *simrt.Proc) {
		st.Put("a", []byte("1"))
		st.Put("b", []byte("2"))
		st.SyncKeys(p, []string{"a", "b"}) // journal append; pages pending
		wrote = st.Checkpoint(p)
		if st.Checkpoint(p) != 0 {
			t.Error("second checkpoint found pending pages")
		}
		s.Stop()
	})
	s.Run()
	s.Shutdown()
	if wrote != 2 {
		t.Errorf("checkpoint wrote %d pages, want 2", wrote)
	}
	if d.Stats().Requests < 3 { // journal + 2 pages (maybe merged)
		t.Errorf("disk requests=%d", d.Stats().Requests)
	}
}

func TestStartCheckpointerDrainsPeriodically(t *testing.T) {
	s := simrt.New(1)
	d := disk.New(s, "d", disk.DefaultParams())
	st := New(s, d, 1<<30)
	st.StartCheckpointer(10 * time.Millisecond)
	s.Spawn("driver", func(p *simrt.Proc) {
		st.Put("x", []byte("1"))
		st.SyncKeys(p, []string{"x"})
		p.Sleep(50 * time.Millisecond)
		if n := st.Checkpoint(p); n != 0 {
			t.Errorf("checkpointer left %d pages", n)
		}
		s.Stop()
	})
	s.RunUntil(time.Minute)
	s.Shutdown()
}

func TestSyncKeysSerializesThroughDBThread(t *testing.T) {
	// Two concurrent SyncKeys callers must serialize their commit-path CPU
	// (the Trove single DB thread), so the total is at least 2x the
	// per-commit overhead.
	s := simrt.New(1)
	d := disk.New(s, "d", disk.DefaultParams())
	st := New(s, d, 1<<30)
	g := simrt.NewGroup(s)
	g.Add(2)
	for i := 0; i < 2; i++ {
		i := i
		s.Spawn("w", func(p *simrt.Proc) {
			k := fmt.Sprintf("k%d", i)
			st.Put(k, []byte("v"))
			st.SyncKeys(p, []string{k})
			g.Done()
		})
	}
	var end time.Duration
	s.Spawn("ctl", func(p *simrt.Proc) { g.Wait(p); end = p.Now(); s.Stop() })
	s.RunUntil(time.Minute)
	s.Shutdown()
	if end < 2*SyncCommitCPU {
		t.Errorf("two sync commits finished in %v; DB thread did not serialize (min %v)", end, 2*SyncCommitCPU)
	}
}

func TestForgetRemovesAllImages(t *testing.T) {
	withStore(t, func(p *simrt.Proc, st *Store) {
		st.Put("k", []byte("v"))
		st.FlushDirty(p)
		st.Forget("k")
		if _, ok := st.Get("k"); ok {
			t.Error("volatile survived Forget")
		}
		if _, ok := st.DurableSnapshot()["k"]; ok {
			t.Error("durable survived Forget")
		}
		if st.DirtyCount() != 0 {
			t.Error("dirty mark survived Forget")
		}
	})
}

func TestRangeVisitsAllRows(t *testing.T) {
	withStore(t, func(p *simrt.Proc, st *Store) {
		for i := 0; i < 5; i++ {
			st.Put(fmt.Sprintf("r%d", i), []byte{byte(i)})
		}
		seen := 0
		st.Range(func(k string, v []byte) bool { seen++; return true })
		if seen != 5 {
			t.Errorf("visited %d", seen)
		}
		seen = 0
		st.Range(func(k string, v []byte) bool { seen++; return false })
		if seen != 1 {
			t.Errorf("early stop visited %d", seen)
		}
		if st.Len() != 5 {
			t.Errorf("Len=%d", st.Len())
		}
		_ = st.String()
		_ = st.Stats()
	})
}

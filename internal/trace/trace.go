// Package trace models the six workloads of the paper's evaluation and
// replays them against a cluster.
//
// The original traces are not redistributable (Sandia Red Storm traces for
// CTH, s3d fortIO, and Alegra; Harvard NFS traces for home2, deasna2, and
// lair62b), so this package generates synthetic traces parameterized to
// match the statistics the paper publishes about them:
//
//   - total operation count (Table II), scaled by a configurable factor so
//     tests and benchmarks stay tractable;
//   - conflict ratio (Table II): the fraction of operations that touch an
//     object recently modified by a *different* process's cross-server
//     operation;
//   - the operation mix (Figure 4): checkpoint-style supercomputing traces
//     are create-dominated with per-process private files; network-server
//     traces are read-heavy with per-user home directories; and
//   - the cross-server proportion (§IV.C.1 quotes ~48% for s3d and ~35%
//     for CTH), which emerges from the create/remove/link share of the mix.
//
// A trace is a per-process list of operations over a symbolic file
// namespace; the Replayer binds symbols to real inodes at run time and
// drives one closed-loop simulated process per trace process, exactly like
// the paper's trace replays.
package trace

import (
	"fmt"
	"math/rand"

	"cxfs/internal/types"
)

// Kind is a symbolic trace operation kind.
type Kind uint8

// Symbolic operations. CreateOwn..UnlinkOwn act on the process's private
// files; StatShared/LookupShared read another process's recently created
// file — the accesses that can raise Cx conflicts.
const (
	CreateOwn Kind = iota + 1
	RemoveOwn
	MkdirOwn
	RmdirOwn
	LinkOwn
	UnlinkOwn
	StatOwn
	LookupOwn
	SetAttrOwn
	StatShared
	LookupShared
)

// Rec is one trace record.
type Rec struct {
	Proc int  // issuing process index
	Kind Kind //
	// File is the symbolic file id the op targets. For CreateOwn it is a
	// fresh id; for *Own ops an existing id of the same process; for
	// *Shared ops an id owned by another process.
	File int
	// Dir is the symbolic directory id (processes may use private or
	// common directories per the profile).
	Dir int
}

// Profile parameterizes one workload.
type Profile struct {
	Name string
	// TotalOps is the paper's operation count for this trace.
	TotalOps int
	// Procs is the number of concurrent processes replaying it.
	Procs int
	// CommonDirs is the number of shared directories; supercomputing
	// checkpoint workloads funnel every process into a few common
	// directories (high cross-server rate), network-server workloads give
	// each user their own (lower).
	CommonDirs int
	// PrivateDirPerProc adds a home directory per process.
	PrivateDirPerProc bool
	// Mix is the operation distribution (weights, normalized internally)
	// over the symbolic kinds. StatShared/LookupShared weight drives the
	// conflict ratio.
	Mix map[Kind]float64
	// SharedRecency is how many of another process's most recent creates a
	// shared read targets; small values land inside the pending-commitment
	// window and conflict.
	SharedRecency int
}

// Profiles returns the six paper workloads, in the paper's order.
// The shared-read weights are calibrated so the measured conflict ratios
// land near Table II (CTH 0.112% ... deasna2 2.972%).
func Profiles() []Profile {
	return []Profile{
		{
			Name: "CTH", TotalOps: 505247, Procs: 64, CommonDirs: 2,
			Mix: map[Kind]float64{
				CreateOwn: 0.22, RemoveOwn: 0.12, StatOwn: 0.38, LookupOwn: 0.20,
				SetAttrOwn: 0.055, MkdirOwn: 0.01, RmdirOwn: 0.008, LinkOwn: 0.004, UnlinkOwn: 0.003,
				StatShared: 0.0011, LookupShared: 0.0009,
			},
			SharedRecency: 4,
		},
		{
			Name: "s3d", TotalOps: 724818, Procs: 64, CommonDirs: 2,
			Mix: map[Kind]float64{
				CreateOwn: 0.30, RemoveOwn: 0.17, StatOwn: 0.27, LookupOwn: 0.17,
				SetAttrOwn: 0.05, MkdirOwn: 0.008, RmdirOwn: 0.006, LinkOwn: 0.006, UnlinkOwn: 0.004,
				StatShared: 0.0033, LookupShared: 0.0027,
			},
			SharedRecency: 4,
		},
		{
			Name: "alegra", TotalOps: 404812, Procs: 64, CommonDirs: 2,
			Mix: map[Kind]float64{
				CreateOwn: 0.26, RemoveOwn: 0.14, StatOwn: 0.30, LookupOwn: 0.21,
				SetAttrOwn: 0.06, MkdirOwn: 0.009, RmdirOwn: 0.007, LinkOwn: 0.005, UnlinkOwn: 0.004,
				StatShared: 0.0065, LookupShared: 0.0055,
			},
			SharedRecency: 4,
		},
		{
			Name: "home2", TotalOps: 2720599, Procs: 96, CommonDirs: 4, PrivateDirPerProc: true,
			Mix: map[Kind]float64{
				CreateOwn: 0.13, RemoveOwn: 0.09, StatOwn: 0.42, LookupOwn: 0.26,
				SetAttrOwn: 0.07, MkdirOwn: 0.006, RmdirOwn: 0.005, LinkOwn: 0.004, UnlinkOwn: 0.003,
				StatShared: 0.0070, LookupShared: 0.0060,
			},
			SharedRecency: 6,
		},
		{
			Name: "deasna2", TotalOps: 3888022, Procs: 96, CommonDirs: 4, PrivateDirPerProc: true,
			Mix: map[Kind]float64{
				CreateOwn: 0.15, RemoveOwn: 0.10, StatOwn: 0.37, LookupOwn: 0.24,
				SetAttrOwn: 0.08, MkdirOwn: 0.007, RmdirOwn: 0.005, LinkOwn: 0.005, UnlinkOwn: 0.004,
				StatShared: 0.031, LookupShared: 0.026,
			},
			SharedRecency: 6,
		},
		{
			Name: "lair62b", TotalOps: 11057516, Procs: 128, CommonDirs: 6, PrivateDirPerProc: true,
			Mix: map[Kind]float64{
				CreateOwn: 0.12, RemoveOwn: 0.08, StatOwn: 0.44, LookupOwn: 0.27,
				SetAttrOwn: 0.055, MkdirOwn: 0.005, RmdirOwn: 0.004, LinkOwn: 0.003, UnlinkOwn: 0.003,
				StatShared: 0.017, LookupShared: 0.014,
			},
			SharedRecency: 6,
		},
	}
}

// ProfileByName finds a profile.
func ProfileByName(name string) (Profile, error) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("trace: unknown workload %q", name)
}

// Trace is a generated workload: per-process op lists plus metadata.
type Trace struct {
	Profile Profile
	Scale   float64
	PerProc [][]Rec
	Total   int
	// Dirs is the number of symbolic directories referenced.
	Dirs int
}

// Generate builds a synthetic trace at the given scale (1.0 = the paper's
// full op count). Generation is deterministic for a given seed.
func Generate(p Profile, scale float64, seed int64) *Trace {
	if scale <= 0 {
		scale = 1
	}
	total := int(float64(p.TotalOps) * scale)
	if total < p.Procs {
		total = p.Procs
	}
	rng := rand.New(rand.NewSource(seed))

	kinds := make([]Kind, 0, len(p.Mix))
	weights := make([]float64, 0, len(p.Mix))
	var sum float64
	for k := CreateOwn; k <= LookupShared; k++ {
		if w := p.Mix[k]; w > 0 {
			kinds = append(kinds, k)
			weights = append(weights, w)
			sum += w
		}
	}
	pick := func() Kind {
		x := rng.Float64() * sum
		for i, w := range weights {
			if x < w {
				return kinds[i]
			}
			x -= w
		}
		return kinds[len(kinds)-1]
	}

	dirs := p.CommonDirs
	procDir := make([]int, p.Procs)
	for i := range procDir {
		if p.PrivateDirPerProc {
			procDir[i] = dirs
			dirs++
		} else {
			procDir[i] = i % p.CommonDirs
		}
	}

	type procState struct {
		live      []int // live own files (symbolic ids)
		dirs      []int // live own subdirectories
		recent    []int // most recent creations, for shared reads
		nlinked   []int // own files with an extra link
		linkedSet map[int]bool
	}
	states := make([]*procState, p.Procs)
	for i := range states {
		states[i] = &procState{linkedSet: make(map[int]bool)}
	}
	perProc := make([][]Rec, p.Procs)
	nextFile := 0
	nextDir := dirs

	// Round-robin interleave so "recent" files of other processes align in
	// replay time with the issuing op.
	for n := 0; n < total; n++ {
		pi := n % p.Procs
		st := states[pi]
		k := pick()
		// Degrade gracefully when state is missing for the drawn kind.
		switch k {
		case RemoveOwn, StatOwn, LookupOwn, SetAttrOwn, LinkOwn:
			if len(st.live) == 0 {
				k = CreateOwn
			}
		case UnlinkOwn:
			if len(st.nlinked) == 0 {
				k = CreateOwn
			}
		case RmdirOwn:
			if len(st.dirs) == 0 {
				k = MkdirOwn
			}
		case StatShared, LookupShared:
			other := (pi + 1 + rng.Intn(p.Procs-1)) % p.Procs
			if len(states[other].recent) == 0 {
				k = CreateOwn
			} else {
				rs := states[other].recent
				idx := len(rs) - 1 - rng.Intn(min(p.SharedRecency, len(rs)))
				perProc[pi] = append(perProc[pi], Rec{Proc: pi, Kind: k, File: rs[idx], Dir: procDir[other]})
				continue
			}
		}
		rec := Rec{Proc: pi, Kind: k, Dir: procDir[pi]}
		switch k {
		case CreateOwn:
			rec.File = nextFile
			nextFile++
			st.live = append(st.live, rec.File)
			st.recent = append(st.recent, rec.File)
			if len(st.recent) > 32 {
				st.recent = st.recent[1:]
			}
		case RemoveOwn:
			i := rng.Intn(len(st.live))
			rec.File = st.live[i]
			st.live = append(st.live[:i], st.live[i+1:]...)
		case MkdirOwn:
			rec.File = nextDir
			nextDir++
			st.dirs = append(st.dirs, rec.File)
		case RmdirOwn:
			i := rng.Intn(len(st.dirs))
			rec.File = st.dirs[i]
			st.dirs = append(st.dirs[:i], st.dirs[i+1:]...)
		case LinkOwn:
			// Avoid double-linking (the extra-link name would collide).
			cand := st.live[rng.Intn(len(st.live))]
			if st.linkedSet[cand] {
				rec.Kind = StatOwn
				rec.File = cand
				perProc[pi] = append(perProc[pi], rec)
				continue
			}
			rec.File = cand
			st.linkedSet[cand] = true
			st.nlinked = append(st.nlinked, rec.File)
		case UnlinkOwn:
			i := rng.Intn(len(st.nlinked))
			rec.File = st.nlinked[i]
			st.nlinked = append(st.nlinked[:i], st.nlinked[i+1:]...)
			delete(st.linkedSet, rec.File)
		case StatOwn, LookupOwn, SetAttrOwn:
			rec.File = st.live[rng.Intn(len(st.live))]
		}
		perProc[pi] = append(perProc[pi], rec)
	}

	tr := &Trace{Profile: p, Scale: scale, PerProc: perProc, Total: total, Dirs: nextDir}
	return tr
}

// OpKindOf maps a symbolic kind to the metadata operation it issues.
func OpKindOf(k Kind) types.OpKind {
	switch k {
	case CreateOwn:
		return types.OpCreate
	case RemoveOwn:
		return types.OpRemove
	case MkdirOwn:
		return types.OpMkdir
	case RmdirOwn:
		return types.OpRmdir
	case LinkOwn:
		return types.OpLink
	case UnlinkOwn:
		return types.OpUnlink
	case StatOwn, StatShared:
		return types.OpStat
	case LookupOwn, LookupShared:
		return types.OpLookup
	case SetAttrOwn:
		return types.OpSetAttr
	}
	return types.OpInvalid
}

// Distribution returns the trace's op-kind histogram — the data behind
// Figure 4.
func (t *Trace) Distribution() map[types.OpKind]int {
	out := make(map[types.OpKind]int)
	for _, recs := range t.PerProc {
		for _, r := range recs {
			out[OpKindOf(r.Kind)]++
		}
	}
	return out
}

// CrossServerShare estimates the fraction of operations that are
// cross-server kinds (create/remove/mkdir/rmdir/link/unlink); §IV.C.1
// quotes ~48% for s3d and ~35% for CTH.
func (t *Trace) CrossServerShare() float64 {
	cross := 0
	for _, recs := range t.PerProc {
		for _, r := range recs {
			if OpKindOf(r.Kind).CrossServer() {
				cross++
			}
		}
	}
	if t.Total == 0 {
		return 0
	}
	return float64(cross) / float64(t.Total)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

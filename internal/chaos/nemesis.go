package chaos

import (
	"fmt"
	"math/rand"
	"time"

	"cxfs/internal/core"
	"cxfs/internal/simrt"
	"cxfs/internal/transport"
	"cxfs/internal/types"
)

// nemesis injects faults for the configured window. It runs as one proc and
// executes crash cycles inline (crash → sleep → reboot → recover), so at
// most one server is down from a direct action at a time; partitions and
// lossy-link windows overlap freely via timers, and the double-failure case
// is exercised separately by a scripted test.
type nemesis struct {
	h       *harness
	rng     *rand.Rand
	faultOn bool
	halt    bool
	done    bool
}

func (n *nemesis) run(p *simrt.Proc) {
	defer func() { n.done = true }()
	h := n.h
	end := p.Now() + h.cfg.Duration
	for p.Now() < end && !n.halt {
		p.Sleep(time.Duration(5+n.rng.Intn(20)) * time.Millisecond)
		if n.halt {
			return
		}
		switch n.rng.Intn(10) {
		case 0, 1:
			if h.cfg.CacheTTL > 0 {
				// Leases are live: aim the crash at the server with the most
				// outstanding grants, killing its lease table mid-grant.
				n.crashLeaseHolder(p)
			} else {
				n.crashCycle(p, false)
			}
		case 2, 3:
			n.crashCycle(p, true)
		case 4, 5, 6:
			n.partition()
		default:
			n.faultWindow()
		}
	}
}

// pickServer returns a server not currently in a crash cycle, or -1.
func (n *nemesis) pickServer() int {
	var free []int
	for i, b := range n.h.busy {
		if !b {
			free = append(free, i)
		}
	}
	if len(free) == 0 {
		return -1
	}
	return free[n.rng.Intn(len(free))]
}

// crashLeaseHolder crashes the free server with the most outstanding leases
// (ties break to the lowest id, deterministically), killing its lease table
// mid-grant; clients keep serving from leases the dead incarnation stamped.
// Falls back to a random crash when nobody holds any.
func (n *nemesis) crashLeaseHolder(p *simrt.Proc) {
	h := n.h
	srv, held := -1, 0
	for i, busy := range h.busy {
		if busy {
			continue
		}
		if l := h.c.LeasesOutstanding(i); l > held {
			srv, held = i, l
		}
	}
	if srv < 0 {
		n.crashCycle(p, false)
		return
	}
	n.cycleOn(p, srv, false, fmt.Sprintf(" holding %d leases", held))
}

// crashCycle crashes one random server — directly, or by arming a protocol
// crash-point and waiting for live traffic to trip it — then reboots it and
// runs §V recovery.
func (n *nemesis) crashCycle(p *simrt.Proc, viaPoint bool) {
	srv := n.pickServer()
	if srv < 0 {
		return
	}
	n.cycleOn(p, srv, viaPoint, "")
}

// cycleOn runs one crash → reboot → recover cycle on server srv.
func (n *nemesis) cycleOn(p *simrt.Proc, srv int, viaPoint bool, note string) {
	h := n.h
	h.busy[srv] = true
	defer func() { h.busy[srv] = false }()
	base := h.c.Bases[srv]

	if viaPoint {
		point := core.CrashPoints[n.rng.Intn(len(core.CrashPoints))]
		armed := p.Now()
		base.SetCrashPoint(func(pt string, _ types.OpID) bool { return pt == point })
		for p.Now()-armed < 150*time.Millisecond && !base.Crashed() {
			p.Sleep(5 * time.Millisecond)
		}
		base.SetCrashPoint(nil)
		if !base.Crashed() {
			return // no operation reached the armed point; nothing happened
		}
		h.rep.CrashPointsFired++
		h.event(fmt.Sprintf("crash-point %s fired on s%d", point, srv))
	} else {
		base.Crash()
		h.rep.Crashes++
		h.event(fmt.Sprintf("crash s%d%s", srv, note))
	}

	p.Sleep(time.Duration(5+n.rng.Intn(25)) * time.Millisecond)
	base.Reboot()
	h.c.CxSrv[srv].Recover(p)
	h.rep.Reboots++
	h.event(fmt.Sprintf("reboot+recover s%d", srv))
}

// partition cuts both directions between two servers for a bounded window.
func (n *nemesis) partition() {
	h := n.h
	if h.cfg.Servers < 2 {
		return
	}
	a := n.rng.Intn(h.cfg.Servers)
	b := n.rng.Intn(h.cfg.Servers)
	if a == b {
		return
	}
	na, nb := types.NodeID(a), types.NodeID(b)
	h.c.Net.Partition(na, nb)
	h.c.Net.Partition(nb, na)
	h.rep.Partitions++
	h.event(fmt.Sprintf("partition s%d<->s%d", a, b))
	window := time.Duration(10+n.rng.Intn(40)) * time.Millisecond
	h.c.Sim.After(window, func() {
		h.c.Net.Heal(na, nb)
		h.c.Net.Heal(nb, na)
		h.event(fmt.Sprintf("heal s%d<->s%d", a, b))
	})
}

// faultWindow turns on cluster-wide probabilistic drop/dup/delay for a
// bounded window.
func (n *nemesis) faultWindow() {
	if n.faultOn {
		return
	}
	h := n.h
	n.faultOn = true
	fr := h.cfg.FaultRate
	h.c.Net.SetDefaultFaults(transport.Faults{
		DropProb:  0.08 * fr,
		DupProb:   0.05 * fr,
		DelayProb: 0.25 * fr,
		DelayMax:  2 * time.Millisecond,
	})
	h.rep.FaultWindows++
	h.event(fmt.Sprintf("link faults on (rate %.2f)", fr))
	window := time.Duration(20+n.rng.Intn(60)) * time.Millisecond
	h.c.Sim.After(window, func() {
		h.c.Net.ClearFaults()
		n.faultOn = false
		h.event("link faults off")
	})
}

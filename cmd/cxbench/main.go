// Command cxbench regenerates the paper's evaluation tables and figures
// against the simulated cluster.
//
// Usage:
//
//	cxbench -exp all                # every experiment at the default scale
//	cxbench -exp fig5 -scale 0.01   # one experiment, bigger replay
//	cxbench -exp table5 -servers 8
//	cxbench -exp fig5 -hist -trace /tmp/fig5.trace
//	cxbench -exp chaos -seed 7 -duration 2s -faultrate 1.5
//
// Experiments: table2, table4, table5, fig4, fig5, fig6, fig7a, fig7b,
// fig8, fig9a, fig9b, protocols (extension: 2PC and CE in the comparison),
// metarates (extension: eager vs lazy commitment vs WAL group commit vs
// pipelined dispatch on the update-dominated mix; -pipeline/-linger/-adaptive
// size it and -json FILE dumps the rows for CI artifacts),
// chaos (fault-injection run: crashes, crash-points, partitions, lossy
// links; prints the nemesis schedule and a deterministic fingerprint —
// the same seed and flags always reproduce the identical report; -pipeline
// and -linger carry into the chaos workload and WALs too).
// Each prints a table whose rows mirror the paper's; EXPERIMENTS.md records
// the paper-vs-measured comparison.
//
// With -hist, every operation's virtual-time latency is recorded and a
// per-kind/protocol/outcome quantile table (p50/p95/p99) is printed after
// the experiments. With -trace FILE, protocol-phase events are retained and
// written as Chrome trace_event JSON (load in chrome://tracing or Perfetto);
// a deterministic disordered-conflict probe runs last so the file always
// contains the invalidation and lazy-commitment paths.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"cxfs/internal/chaos"
	"cxfs/internal/cluster"
	"cxfs/internal/harness"
	"cxfs/internal/obs"
	"cxfs/internal/simrt"
	"cxfs/internal/stats"
	"cxfs/internal/trace"
	"cxfs/internal/types"
	"cxfs/internal/wire"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment id (table2|table4|table5|fig4|fig5|fig6|fig7a|fig7b|fig8|fig9a|fig9b|protocols|metarates|statstorm|latency|triggers|chaos|replay|all)")
		scale    = flag.Float64("scale", 0.004, "fraction of each paper trace's op count to replay")
		servers  = flag.Int("servers", 8, "metadata servers for trace-driven experiments")
		seed     = flag.Int64("seed", 1, "simulation seed")
		hist     = flag.Bool("hist", false, "print per-operation latency quantiles (p50/p95/p99) after the experiments")
		traceOut = flag.String("trace", "", "write protocol-phase events as Chrome trace_event JSON to this file")
		duration = flag.Duration("duration", 1500*time.Millisecond, "chaos: nemesis active window")
		fltRate  = flag.Float64("faultrate", 1.0, "chaos: scale factor on the lossy-link probabilities")
		pipeline = flag.Int("pipeline", 0, "client dispatch depth for metarates/chaos (0 or 1 = classic closed loop)")
		linger   = flag.Duration("linger", 0, "WAL group-commit linger window (0 = flush each append directly)")
		adaptive = flag.Bool("adaptive", false, "metarates: add the adaptive-lazy-period row")
		jsonOut  = flag.String("json", "", "metarates/replay: also write the rows as JSON to this file")
		workload = flag.String("workload", "s3d", "replay: trace profile to bench")
		seeds    = flag.String("seeds", "", "replay: comma-separated seed matrix (default the fixed trajectory matrix)")
		minratio = flag.Float64("minratio", 0, "statstorm: fail unless the cache's message reduction is at least this factor (0 = no gate)")
	)
	flag.Parse()

	var obsv *obs.Observer
	if *hist || *traceOut != "" {
		obsv = obs.New(obs.Options{Hist: *hist, Trace: *traceOut != ""})
	}

	cfg := harness.Config{Scale: *scale, Servers: *servers, Seed: *seed, Obs: obsv}
	ccfg := chaos.Config{Seed: *seed, Duration: *duration, FaultRate: *fltRate,
		Pipeline: *pipeline, GroupLinger: *linger}
	bo := benchOpts{pipeline: *pipeline, linger: *linger, adaptive: *adaptive, jsonOut: *jsonOut,
		workload: *workload, minRatio: *minratio}
	if *seeds != "" {
		for _, s := range strings.Split(*seeds, ",") {
			v, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "cxbench: bad -seeds entry %q: %v\n", s, err)
				os.Exit(1)
			}
			bo.seeds = append(bo.seeds, v)
		}
	}
	ids := strings.Split(*exp, ",")
	if *exp == "all" {
		ids = []string{"table2", "table4", "table5", "fig4", "fig5", "fig6", "fig7a", "fig7b", "fig8", "fig9a", "fig9b", "protocols", "metarates", "statstorm", "latency", "triggers"}
	}
	for _, id := range ids {
		start := time.Now()
		if err := run(id, cfg, ccfg, bo); err != nil {
			fmt.Fprintf(os.Stderr, "cxbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("[%s completed in %v wall time]\n\n", id, time.Since(start).Round(time.Millisecond))
	}

	if *hist {
		fmt.Println(obsv.HistTable())
	}
	if *traceOut != "" {
		if err := writeTrace(obsv, *traceOut, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "cxbench: %v\n", err)
			os.Exit(1)
		}
	}
}

// benchOpts carries the group-commit/pipelining knobs into experiments
// that understand them.
type benchOpts struct {
	pipeline int
	linger   time.Duration
	adaptive bool
	jsonOut  string
	workload string
	seeds    []int64
	minRatio float64
}

func run(id string, cfg harness.Config, ccfg chaos.Config, bo benchOpts) error {
	switch id {
	case "replay":
		seeds := bo.seeds
		if len(seeds) == 0 {
			seeds = harness.DefaultBenchSeeds
		}
		res := harness.ReplayBench(cfg, bo.workload, seeds)
		fmt.Println(res.Table())
		fmt.Printf("replay: mean %.0f ops/s, %.1f allocs/op over %d seeds\n",
			res.MeanOpsPerSec, res.MeanAllocsPerOp, len(res.Seeds))
		if bo.jsonOut != "" {
			if err := writeRowsJSON(bo.jsonOut, res); err != nil {
				return err
			}
			fmt.Printf("replay: bench artifact -> %s\n", bo.jsonOut)
		}
	case "metarates":
		rows, tbl := harness.MetaratesGroupCommit(cfg, harness.MetaratesGCOpts{
			Pipeline: bo.pipeline, Linger: bo.linger, Adaptive: bo.adaptive})
		fmt.Println(tbl)
		if bo.jsonOut != "" {
			if err := writeRowsJSON(bo.jsonOut, rows); err != nil {
				return err
			}
			fmt.Printf("metarates: %d rows -> %s\n", len(rows), bo.jsonOut)
		}
	case "chaos":
		rep := chaos.Run(ccfg)
		fmt.Print(rep.String())
		fmt.Printf("fingerprint=%s\n", rep.Fingerprint())
		if !rep.Consistent() {
			return fmt.Errorf("chaos run with seed %d is inconsistent (schedule above)", ccfg.Seed)
		}
	case "table2":
		_, tbl := harness.Table2(cfg)
		fmt.Println(tbl)
	case "table4":
		_, tbl := harness.Table4(cfg)
		fmt.Println(tbl)
	case "table5":
		_, tbl := harness.Table5(cfg)
		fmt.Println(tbl)
	case "fig4":
		fmt.Println(harness.Fig4(cfg))
	case "fig5":
		_, tbl := harness.Fig5(cfg, nil)
		fmt.Println(tbl)
	case "fig6":
		_, tbl := harness.Fig6(cfg, nil, 0)
		fmt.Println(tbl)
	case "fig7a":
		_, tbl := harness.Fig7a(cfg, nil)
		fmt.Println(tbl)
	case "fig7b":
		series, tbl := harness.Fig7b(cfg, 0)
		fmt.Println(tbl)
		fmt.Printf("peak=%.0f bytes, pruning drops=%d\n\n", series.Peak(), series.Drops(0.3))
	case "fig8":
		_, base, tbl := harness.Fig8(cfg, nil)
		fmt.Println(tbl)
		fmt.Printf("OFS baseline replay: %v\n\n", base.Round(time.Millisecond))
	case "fig9a":
		_, tbl := harness.Fig9a(cfg, nil)
		fmt.Println(tbl)
	case "fig9b":
		_, tbl := harness.Fig9b(cfg, nil)
		fmt.Println(tbl)
	case "protocols":
		fmt.Println(protocolsExtension(cfg))
	case "latency":
		_, tbl := harness.Latency(cfg, "s3d")
		fmt.Println(tbl)
	case "triggers":
		_, tbl := harness.Triggers(cfg)
		fmt.Println(tbl)
	case "statstorm":
		_, tbl, worst := harness.StatStorm(cfg)
		fmt.Println(tbl)
		fmt.Printf("statstorm: worst cache message reduction %.1fx\n", worst)
		if bo.minRatio > 0 && worst < bo.minRatio {
			return fmt.Errorf("statstorm: cache reduction %.1fx below the -minratio gate %.1fx", worst, bo.minRatio)
		}
	default:
		return fmt.Errorf("unknown experiment %q", id)
	}
	return nil
}

// protocolsExtension compares all five protocols on one trace — beyond the
// paper, which describes 2PC and CE (§II.B, Fig 1) but only evaluates the
// OFS variants.
func protocolsExtension(cfg harness.Config) *stats.Table {
	tbl := stats.NewTable("Extension: all five protocols on s3d (replay time)",
		"Protocol", "Replay", "Messages", "vs OFS")
	p, _ := trace.ProfileByName("s3d")
	var base time.Duration
	for _, proto := range cluster.Protocols {
		tr := trace.Generate(p, cfg.Scale, cfg.Seed)
		o := cluster.DefaultOptions(cfg.Servers, proto)
		o.ClientHosts = 16
		o.ProcsPerHost = 8
		o.Seed = cfg.Seed
		o.Obs = cfg.Obs
		c := cluster.MustNew(o)
		res := (&trace.Replayer{Trace: tr, C: c}).Run()
		c.Shutdown()
		if proto == cluster.ProtoSE {
			base = res.ReplayTime
		}
		tbl.Add(string(proto), res.ReplayTime, res.Messages, stats.Pct(stats.Improvement(base, res.ReplayTime)))
	}
	return tbl
}

// writeRowsJSON dumps an experiment's rows or artifact for CI.
func writeRowsJSON(path string, rows any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rows); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeTrace runs the disorder probe (so the trace is guaranteed to contain
// the rare paths), writes the Chrome trace, and prints a summary.
func writeTrace(obsv *obs.Observer, path string, seed int64) error {
	if err := disorderProbe(obsv, seed); err != nil {
		return fmt.Errorf("disorder probe: %v", err)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obsv.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("trace: %d events retained (%d evicted) -> %s\n",
		len(obsv.Events()), obsv.Dropped(), path)
	fmt.Printf("trace: commit-lazy=%d commit-immediate=%d conflict-ordered=%d conflict-disordered=%d invalidate=%d l-com=%d prune=%d\n",
		obsv.PhaseCount(obs.PhaseCommitLazy), obsv.PhaseCount(obs.PhaseCommitImmediate),
		obsv.PhaseCount(obs.PhaseConflictOrdered), obsv.PhaseCount(obs.PhaseConflictDisordered),
		obsv.PhaseCount(obs.PhaseInvalidate), obsv.PhaseCount(obs.PhaseLCom),
		obsv.PhaseCount(obs.PhasePrune))
	return nil
}

// disorderProbe forces one Figure 3b disordered conflict on a dedicated
// 4-server Cx cluster: an unlink and a link of the same (dentry, inode)
// arrive in opposite orders at the coordinator and participant, so the
// participant must invalidate its premature execution and re-execute after
// the enforced predecessor commits. It runs after the experiments so its
// events are never evicted from the bounded ring.
func disorderProbe(obsv *obs.Observer, seed int64) error {
	o := cluster.DefaultOptions(4, cluster.ProtoCx)
	o.ClientHosts = 4
	o.ProcsPerHost = 2
	o.Seed = seed
	o.Cx.Timeout = time.Hour // never let a retry mask the disorder
	o.Obs = obsv
	c, err := cluster.New(o)
	if err != nil {
		return err
	}
	defer c.Shutdown()

	c.Sim.Spawn("probe", func(p *simrt.Proc) {
		prSetup := c.Proc(1)
		prA, prB := c.Proc(0), c.Proc(c.NumProcs()-1)
		hostA, hostB := c.Hosts[0], c.Hosts[len(c.Hosts)-1]

		// Seed a file reachable by two names (nlink 2) so the unlink and
		// the re-link both succeed in isolation.
		name, ino, coord, part := findSharedPlacement(c, prSetup)
		c.Bases[coord].Shard.SeedDentry(types.RootInode, name, ino)
		second := name + ".alt"
		c.Bases[c.Placement.CoordinatorFor(types.RootInode, second)].Shard.SeedDentry(types.RootInode, second, ino)
		c.Bases[part].Shard.SeedInode(types.Inode{Ino: ino, Type: types.FileRegular, Nlink: 2})

		idA, idB := prA.NextID(), prB.NextID()
		opA := types.Op{ID: idA, Kind: types.OpUnlink, Parent: types.RootInode, Name: name, Ino: ino}
		opB := types.Op{ID: idB, Kind: types.OpLink, Parent: types.RootInode, Name: name, Ino: ino}
		cA, pA := types.Split(opA)
		cB, pB := types.Split(opB)

		routeA := hostA.Open(idA)
		routeB := hostB.Open(idB)
		defer hostA.Done(idA)
		defer hostB.Done(idB)

		// Force the disorder: coordinator sees A then B; participant sees
		// B then A. Equal network latency preserves send order.
		hostA.Send(wire.Msg{Type: wire.MsgSubOpReq, To: coord, Op: idA, Sub: cA, Peer: part, ReplyProc: idA.Proc})
		hostB.Send(wire.Msg{Type: wire.MsgSubOpReq, To: part, Op: idB, Sub: pB, Peer: coord, ReplyProc: idB.Proc})
		p.Sleep(time.Millisecond)
		hostB.Send(wire.Msg{Type: wire.MsgSubOpReq, To: coord, Op: idB, Sub: cB, Peer: part, ReplyProc: idB.Proc})
		hostA.Send(wire.Msg{Type: wire.MsgSubOpReq, To: part, Op: idA, Sub: pA, Peer: coord, ReplyProc: idA.Proc})

		// Drain both clients until their responses settle, then quiesce so
		// the lazy commitment and WAL pruning run too.
		g := simrt.NewGroup(c.Sim)
		g.Add(2)
		drain := func(route *simrt.Chan[wire.Msg]) func(*simrt.Proc) {
			return func(dp *simrt.Proc) {
				defer g.Done()
				(&probeCollector{route: route, coord: coord}).run(dp, 30*time.Second)
			}
		}
		c.Sim.Spawn("probe/clientA", drain(routeA))
		c.Sim.Spawn("probe/clientB", drain(routeB))
		g.Wait(p)
		c.Quiesce(p)
		c.Sim.Stop()
	})
	c.Sim.RunUntil(time.Hour)
	if !c.Sim.Stopped() {
		return fmt.Errorf("probe did not converge")
	}
	if bad := c.CheckInvariants(); len(bad) != 0 {
		return fmt.Errorf("probe left bad invariants: %v", bad)
	}
	return nil
}

// findSharedPlacement hunts for a (name, ino) whose unlink and link share
// BOTH servers: the dentry partition (coordinator) and the inode home
// (participant), with coordinator != participant.
func findSharedPlacement(c *cluster.Cluster, pr *cluster.Process) (name string, ino types.InodeID, coord, part types.NodeID) {
	for try := 0; ; try++ {
		name = fmt.Sprintf("disordered-%d", try)
		ino = pr.AllocInode()
		coord = c.Placement.CoordinatorFor(types.RootInode, name)
		part = c.Placement.ParticipantFor(ino)
		if coord != part {
			return
		}
	}
}

// probeCollector drains one raw client's response route until the op
// settles (both sub-op replies present and not voided) or the deadline.
type probeCollector struct {
	route    *simrt.Chan[wire.Msg]
	coord    types.NodeID
	haveC    bool
	haveP    bool
	okC, okP bool
	voidP    bool
	epochP   uint32
}

func (cl *probeCollector) run(p *simrt.Proc, deadline time.Duration) {
	for {
		m, got := cl.route.RecvTimeout(p, deadline)
		if !got {
			return
		}
		if m.Type == wire.MsgAllNo {
			return
		}
		if m.Type != wire.MsgSubOpResp {
			continue
		}
		invalid := m.Err == types.ErrInvalidated.Error()
		if m.From == cl.coord {
			cl.haveC, cl.okC = true, m.OK
		} else {
			if m.Epoch < cl.epochP {
				continue
			}
			cl.epochP = m.Epoch
			if invalid {
				cl.voidP = true
				continue
			}
			cl.haveP, cl.okP = true, m.OK
			cl.voidP = false
		}
		if cl.haveC && cl.haveP && !cl.voidP {
			return
		}
	}
}

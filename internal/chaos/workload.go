package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"cxfs/internal/core"
	"cxfs/internal/model"
	"cxfs/internal/simrt"
	"cxfs/internal/types"
)

// entry is one name in the per-worker oracle. Names are worker-private and
// never reused, so every operation's effect on its name is unambiguous:
// after a definite success or failure the expected state is known exactly,
// and after a timeout the name is frozen in stUnknown — the final
// verification then accepts exactly the two states the unfinished operation
// could legally be in.
type entry struct {
	name  string
	ino   types.InodeID
	dir   bool
	state uint8
}

const (
	stFresh   uint8 = iota // create not yet resolved (pipelined in-flight)
	stAbsent               // definitely not in the namespace
	stExists               // definitely present, pointing at entry.ino
	stUnknown              // a timed-out operation's outcome is undecided
)

// recordOp appends one client observation to the report's history, which
// the model oracle replays after the run. in matters only for lookups.
// issued is the virtual time the operation was dispatched; the observation
// time is now. Lookups served from the client cache additionally carry their
// lease grant stamp for the staleness-bound oracle.
func (h *harness) recordOp(w int, kind types.OpKind, e *entry, err error, in types.Inode,
	issued time.Duration, cached bool, grant time.Duration) {
	o := model.Op{Worker: w, Kind: kind, Name: e.name, Ino: e.ino,
		Outcome: model.Classify(err),
		Issued:  issued, At: h.c.Sim.Now(), Cached: cached, Grant: grant}
	if kind == types.OpLookup && err == nil {
		o.Found = true
		o.SawIno = in.Ino
	}
	h.rep.History = append(h.rep.History, o)
}

// foldCreate folds one create/mkdir outcome into the oracle, counters, and
// history. It reports whether the entry is now live (definitely exists).
func (h *harness) foldCreate(w int, e *entry, err error, issued time.Duration) bool {
	kind := types.OpCreate
	if e.dir {
		kind = types.OpMkdir
	}
	h.rep.Ops++
	h.recordOp(w, kind, e, err, types.Inode{}, issued, false, 0)
	switch {
	case err == nil:
		e.state = stExists
		h.rep.OK++
		return true
	case errors.Is(err, types.ErrTimeout):
		e.state = stUnknown
		h.rep.Unknown++
	case errors.Is(err, types.ErrExists):
		// The name was never used before: nothing may already hold it.
		h.violate("worker %d: create %q reported exists on a fresh name", w, e.name)
		e.state = stUnknown
		h.rep.Failed++
	default:
		// A definite abort must leave no residue.
		e.state = stAbsent
		h.rep.Failed++
	}
	return false
}

// foldRemove folds one remove/rmdir outcome. It reports whether the entry
// survives (a definite abort leaves it in the namespace).
func (h *harness) foldRemove(w int, e *entry, err error, issued time.Duration) bool {
	kind := types.OpRemove
	if e.dir {
		kind = types.OpRmdir
	}
	h.rep.Ops++
	h.recordOp(w, kind, e, err, types.Inode{}, issued, false, 0)
	switch {
	case err == nil:
		e.state = stAbsent
		h.rep.OK++
	case errors.Is(err, types.ErrTimeout):
		e.state = stUnknown
		h.rep.Unknown++
	case errors.Is(err, types.ErrNotFound):
		// The previous operation on this name definitely succeeded, so the
		// entry must be there.
		h.violate("worker %d: remove %q reported not-found on a committed entry", w, e.name)
		e.state = stUnknown
		h.rep.Failed++
	default:
		// Aborted: the entry survives.
		h.rep.Failed++
		return true
	}
	return false
}

// foldLookup folds one read-your-writes check on a name with a known state.
// cached/grant describe the cache disposition of the lookup (false/0 when
// the cache is off or the lookup went to the server).
func (h *harness) foldLookup(w int, e *entry, in types.Inode, err error,
	issued time.Duration, cached bool, grant time.Duration) {
	h.rep.Ops++
	h.recordOp(w, types.OpLookup, e, err, in, issued, cached, grant)
	switch {
	case errors.Is(err, types.ErrTimeout):
		// No information; the name's oracle state is untouched.
		h.rep.Unknown++
	case err == nil:
		h.rep.OK++
		if e.state == stAbsent {
			h.violate("worker %d: lookup %q found a removed entry (ino %d)", w, e.name, in.Ino)
		} else if in.Ino != e.ino {
			h.violate("worker %d: lookup %q -> ino %d, want %d", w, e.name, in.Ino, e.ino)
		}
	case errors.Is(err, types.ErrNotFound):
		h.rep.OK++
		if e.state == stExists {
			h.violate("worker %d: lookup %q lost a committed entry", w, e.name)
		}
	default:
		h.rep.Failed++
	}
}

// worker returns the proc body of one workload process: a randomized
// create/remove/lookup mix over private names (some containing spaces, to
// exercise the invariant checker's name parsing), with every outcome folded
// into the oracle. One op at a time — the paper's process-centric model.
func (h *harness) worker(w int) func(*simrt.Proc) {
	return func(p *simrt.Proc) {
		defer h.group.Done()
		pr := h.c.Proc(w)
		drv, _ := pr.Driver().(*core.Driver)
		rng := rand.New(rand.NewSource(h.cfg.Seed*1000003 + int64(w)))
		var live []*entry // entries currently in stExists

		for i := 0; i < h.cfg.OpsPerWorker; i++ {
			r := rng.Float64()
			issued := p.Now()
			switch {
			case r < 0.55 || len(live) == 0:
				// Create a fresh file or directory under root. The space in
				// the name is deliberate.
				e := &entry{name: fmt.Sprintf("w%d f%d", w, i), dir: rng.Float64() < 0.25}
				h.entries[w] = append(h.entries[w], e)
				var err error
				if e.dir {
					e.ino, err = pr.Mkdir(p, types.RootInode, e.name)
				} else {
					e.ino, err = pr.Create(p, types.RootInode, e.name)
				}
				if h.foldCreate(w, e, err, issued) {
					live = append(live, e)
				}
			case r < 0.85:
				// Remove an entry the oracle knows exists.
				k := rng.Intn(len(live))
				e := live[k]
				live = append(live[:k], live[k+1:]...)
				var err error
				if e.dir {
					err = pr.Rmdir(p, types.RootInode, e.name, e.ino)
				} else {
					err = pr.Remove(p, types.RootInode, e.name, e.ino)
				}
				if h.foldRemove(w, e, err, issued) {
					live = append(live, e)
				}
			default:
				// Live read-your-writes check on a name with a known state.
				var known []*entry
				for _, e := range h.entries[w] {
					if e.state == stExists || e.state == stAbsent {
						known = append(known, e)
					}
				}
				if len(known) == 0 {
					continue
				}
				e := known[rng.Intn(len(known))]
				in, err := pr.Lookup(p, types.RootInode, e.name)
				cached, grant := drv.LastLookup()
				h.foldLookup(w, e, in, err, issued, cached, grant)
			}
		}
	}
}

// recordForeignLookup folds a cross-worker read: the reader has no oracle
// state for someone else's name, so only the history (for the staleness
// oracle, which keys names globally) and the counters are updated.
func (h *harness) recordForeignLookup(w int, name string, in types.Inode, err error,
	issued time.Duration, cached bool, grant time.Duration) {
	h.rep.Ops++
	o := model.Op{Worker: w, Kind: types.OpLookup, Name: name,
		Outcome: model.Classify(err),
		Issued:  issued, At: h.c.Sim.Now(), Cached: cached, Grant: grant}
	switch o.Outcome {
	case model.OK:
		o.Found, o.SawIno = true, in.Ino
		h.rep.OK++
	case model.FailedNotFound:
		h.rep.OK++
	case model.Unknown:
		h.rep.Unknown++
	default:
		h.rep.Failed++
	}
	h.rep.History = append(h.rep.History, o)
}

// stormWorker is the stat-storm workload: a small mutating stream under a
// dominant read mix — repeated lookups of the worker's own names plus
// cross-worker stat traffic on everyone else's. With leases on, most reads
// are served from the cache while the nemesis kills the lease-granting
// servers mid-grant; the staleness-bound oracle then audits every cached
// observation in the history.
func (h *harness) stormWorker(w int) func(*simrt.Proc) {
	return func(p *simrt.Proc) {
		defer h.group.Done()
		pr := h.c.Proc(w)
		drv, _ := pr.Driver().(*core.Driver)
		rng := rand.New(rand.NewSource(h.cfg.Seed*1000003 + int64(w)))
		var live []*entry

		for i := 0; i < h.cfg.OpsPerWorker; i++ {
			r := rng.Float64()
			issued := p.Now()
			switch {
			case r < 0.12 || len(h.entries[w]) == 0:
				// Keep a trickle of creates so there is something to read and
				// leases keep getting granted on fresh names.
				e := &entry{name: fmt.Sprintf("w%d f%d", w, i), dir: rng.Float64() < 0.15}
				h.entries[w] = append(h.entries[w], e)
				var err error
				if e.dir {
					e.ino, err = pr.Mkdir(p, types.RootInode, e.name)
				} else {
					e.ino, err = pr.Create(p, types.RootInode, e.name)
				}
				if h.foldCreate(w, e, err, issued) {
					live = append(live, e)
				}
			case r < 0.20 && len(live) > 0:
				// ... and of removes, so revocations fire against held leases.
				k := rng.Intn(len(live))
				e := live[k]
				live = append(live[:k], live[k+1:]...)
				var err error
				if e.dir {
					err = pr.Rmdir(p, types.RootInode, e.name, e.ino)
				} else {
					err = pr.Remove(p, types.RootInode, e.name, e.ino)
				}
				if h.foldRemove(w, e, err, issued) {
					live = append(live, e)
				}
			case r < 0.55:
				// Stat-storm on a foreign worker's namespace: cached reads of
				// names someone else is concurrently mutating.
				w2 := rng.Intn(len(h.entries))
				if w2 == w || len(h.entries[w2]) == 0 {
					continue
				}
				e := h.entries[w2][rng.Intn(len(h.entries[w2]))]
				in, err := pr.Lookup(p, types.RootInode, e.name)
				cached, grant := drv.LastLookup()
				h.recordForeignLookup(w, e.name, in, err, issued, cached, grant)
			default:
				// Stat-storm on the worker's own names, read-your-writes
				// checked against the oracle.
				var known []*entry
				for _, e := range h.entries[w] {
					if e.state == stExists || e.state == stAbsent {
						known = append(known, e)
					}
				}
				if len(known) == 0 {
					continue
				}
				e := known[rng.Intn(len(known))]
				in, err := pr.Lookup(p, types.RootInode, e.name)
				cached, grant := drv.LastLookup()
				h.foldLookup(w, e, in, err, issued, cached, grant)
			}
		}
	}
}

// pipelinedWorker is the worker body when cfg.Pipeline > 1: up to Pipeline
// operations in flight through core.Pipeline. Oracle validity is preserved
// by per-name sequencing — a name with an operation in flight is never
// targeted again until that operation's outcome has been folded, so each
// name still sees a strictly sequential history. Creates always use fresh
// names and are therefore always safe to pipeline.
func (h *harness) pipelinedWorker(w int) func(*simrt.Proc) {
	return func(p *simrt.Proc) {
		defer h.group.Done()
		pr := h.c.Proc(w)
		drv, _ := pr.Driver().(*core.Driver)
		pipe := pr.NewPipeline(h.cfg.Pipeline)
		rng := rand.New(rand.NewSource(h.cfg.Seed*1000003 + int64(w)))
		var live []*entry             // entries currently in stExists
		busy := make(map[string]bool) // names with an op in flight
		owner := make(map[*core.Pending]*entry)
		issuedAt := make(map[*core.Pending]time.Duration)

		harvest := func(done []*core.Pending) {
			for _, pe := range done {
				e := owner[pe]
				issued := issuedAt[pe]
				delete(owner, pe)
				delete(issuedAt, pe)
				delete(busy, e.name)
				switch pe.Op.Kind {
				case types.OpCreate, types.OpMkdir:
					if h.foldCreate(w, e, pe.Err, issued) {
						live = append(live, e)
					}
				case types.OpRemove, types.OpRmdir:
					if h.foldRemove(w, e, pe.Err, issued) {
						live = append(live, e)
					}
				case types.OpLookup:
					// LastLookup is racy under pipelining; the per-op log
					// (TrackLookups) carries the cache disposition instead.
					cached, grant, _ := drv.TakeLookup(pe.Op.ID)
					h.foldLookup(w, e, pe.Attr, pe.Err, issued, cached, grant)
				}
			}
		}
		submitCreate := func(i int) {
			e := &entry{name: fmt.Sprintf("w%d f%d", w, i), dir: rng.Float64() < 0.25,
				state: stFresh}
			h.entries[w] = append(h.entries[w], e)
			e.ino = pr.AllocInode()
			kind, ft := types.OpCreate, types.FileRegular
			if e.dir {
				kind, ft = types.OpMkdir, types.FileDir
			}
			busy[e.name] = true
			pe := pipe.Submit(p, types.Op{ID: pr.NextID(), Kind: kind,
				Parent: types.RootInode, Name: e.name, Ino: e.ino, Type: ft})
			owner[pe], issuedAt[pe] = e, p.Now()
		}
		// idle returns the entries of es with no op in flight on them.
		idle := func(es []*entry) []*entry {
			var out []*entry
			for _, e := range es {
				if !busy[e.name] {
					out = append(out, e)
				}
			}
			return out
		}

		for i := 0; i < h.cfg.OpsPerWorker; i++ {
			harvest(pipe.Poll())
			r := rng.Float64()
			switch {
			case r < 0.55 || len(idle(live)) == 0:
				submitCreate(i)
			case r < 0.85:
				cand := idle(live)
				e := cand[rng.Intn(len(cand))]
				for k := range live {
					if live[k] == e {
						live = append(live[:k], live[k+1:]...)
						break
					}
				}
				kind := types.OpRemove
				if e.dir {
					kind = types.OpRmdir
				}
				busy[e.name] = true
				pe := pipe.Submit(p, types.Op{ID: pr.NextID(), Kind: kind,
					Parent: types.RootInode, Name: e.name, Ino: e.ino})
				owner[pe], issuedAt[pe] = e, p.Now()
			default:
				var known []*entry
				for _, e := range h.entries[w] {
					if (e.state == stExists || e.state == stAbsent) && !busy[e.name] {
						known = append(known, e)
					}
				}
				if len(known) == 0 {
					submitCreate(i) // keep the op count
					continue
				}
				e := known[rng.Intn(len(known))]
				busy[e.name] = true
				pe := pipe.Submit(p, types.Op{ID: pr.NextID(), Kind: types.OpLookup,
					Parent: types.RootInode, Name: e.name})
				owner[pe], issuedAt[pe] = e, p.Now()
			}
		}
		harvest(pipe.Drain(p))
	}
}

// verify runs after heal+recover+quiesce: every oracle name is resolved on
// the settled namespace and compared against its expected state, then the
// cluster-wide invariants are checked. The settled namespace is also
// captured into Report.Final for the model oracle's independent replay.
func (h *harness) verify(p *simrt.Proc) {
	// Drop every cached lease first: verification must read the settled
	// server state, not a client's leased view of it.
	h.c.FlushCaches()
	h.rep.Final = make(map[string]types.InodeID)
	for w := range h.entries {
		pr := h.c.Proc(w)
		for _, e := range h.entries[w] {
			in, err := pr.Lookup(p, types.RootInode, e.name)
			found := err == nil
			if found {
				h.rep.Final[e.name] = in.Ino
			}
			switch {
			case err != nil && !errors.Is(err, types.ErrNotFound):
				h.violate("verify: lookup %q failed on the healed cluster: %v", e.name, err)
			case e.state == stExists && !found:
				h.violate("verify: committed entry %q is gone", e.name)
			case e.state == stExists && in.Ino != e.ino:
				h.violate("verify: entry %q -> ino %d, want %d", e.name, in.Ino, e.ino)
			case e.state == stAbsent && found:
				h.violate("verify: aborted/removed entry %q left residue (ino %d)", e.name, in.Ino)
			case e.state == stUnknown && found && in.Ino != e.ino:
				h.violate("verify: unknown-outcome entry %q -> foreign ino %d", e.name, in.Ino)
			}
		}
	}
	h.rep.Violations = append(h.rep.Violations, h.c.CheckInvariants()...)
}

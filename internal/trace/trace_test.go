package trace

import (
	"testing"
	"time"

	"cxfs/internal/cluster"
	"cxfs/internal/types"
)

// testCluster builds a cluster large enough for any profile's process count.
func testCluster(proto cluster.Protocol) *cluster.Cluster {
	o := cluster.DefaultOptions(4, proto)
	o.ClientHosts = 16
	o.ProcsPerHost = 8 // 128 processes, enough for lair62b
	return cluster.MustNew(o)
}

// scaleFor caps a profile at roughly n operations.
func scaleFor(p Profile, n int) float64 {
	return float64(n) / float64(p.TotalOps)
}

func TestGenerateDeterministic(t *testing.T) {
	p, _ := ProfileByName("CTH")
	a := Generate(p, scaleFor(p, 2000), 7)
	b := Generate(p, scaleFor(p, 2000), 7)
	if a.Total != b.Total {
		t.Fatalf("totals differ: %d vs %d", a.Total, b.Total)
	}
	for pi := range a.PerProc {
		if len(a.PerProc[pi]) != len(b.PerProc[pi]) {
			t.Fatalf("proc %d lengths differ", pi)
		}
		for i := range a.PerProc[pi] {
			if a.PerProc[pi][i] != b.PerProc[pi][i] {
				t.Fatalf("proc %d rec %d differs", pi, i)
			}
		}
	}
	c := Generate(p, scaleFor(p, 2000), 8)
	same := true
	for pi := range a.PerProc {
		if len(a.PerProc[pi]) != len(c.PerProc[pi]) {
			same = false
			break
		}
		for i := range a.PerProc[pi] {
			if a.PerProc[pi][i] != c.PerProc[pi][i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
}

func TestAllProfilesGenerate(t *testing.T) {
	for _, p := range Profiles() {
		tr := Generate(p, scaleFor(p, 1000), 1)
		if tr.Total < 900 {
			t.Errorf("%s: total=%d, want ~1000", p.Name, tr.Total)
		}
		sum := 0
		for _, recs := range tr.PerProc {
			sum += len(recs)
		}
		if sum != tr.Total {
			t.Errorf("%s: per-proc sum %d != total %d", p.Name, sum, tr.Total)
		}
	}
}

func TestDistributionMatchesProfileShape(t *testing.T) {
	p, _ := ProfileByName("home2")
	tr := Generate(p, scaleFor(p, 20000), 1)
	dist := tr.Distribution()
	total := 0
	for _, n := range dist {
		total += n
	}
	// home2 is read-dominated: stat+lookup must exceed half.
	reads := dist[types.OpStat] + dist[types.OpLookup]
	if float64(reads)/float64(total) < 0.5 {
		t.Errorf("home2 reads=%d/%d; profile should be read-dominated", reads, total)
	}
	if dist[types.OpCreate] == 0 || dist[types.OpRemove] == 0 {
		t.Error("missing create/remove ops")
	}
}

func TestCrossServerShareOrdering(t *testing.T) {
	// §IV.C.1: s3d has a larger cross-server share (~48%) than CTH (~35%),
	// and both exceed the network-server traces.
	share := map[string]float64{}
	for _, name := range []string{"CTH", "s3d", "home2"} {
		p, _ := ProfileByName(name)
		share[name] = Generate(p, scaleFor(p, 20000), 1).CrossServerShare()
	}
	if share["s3d"] <= share["CTH"] {
		t.Errorf("s3d share %.3f <= CTH %.3f", share["s3d"], share["CTH"])
	}
	if share["home2"] >= share["CTH"] {
		t.Errorf("home2 share %.3f >= CTH %.3f", share["home2"], share["CTH"])
	}
	if share["s3d"] < 0.35 || share["s3d"] > 0.60 {
		t.Errorf("s3d cross-server share %.3f outside the paper's ~48%% ballpark", share["s3d"])
	}
	if share["CTH"] < 0.25 || share["CTH"] > 0.48 {
		t.Errorf("CTH cross-server share %.3f outside the paper's ~35%% ballpark", share["CTH"])
	}
}

func TestReplayCTHOnCxCompletesCleanly(t *testing.T) {
	p, _ := ProfileByName("CTH")
	tr := Generate(p, scaleFor(p, 1500), 1)
	c := testCluster(cluster.ProtoCx)
	defer c.Shutdown()
	res := (&Replayer{Trace: tr, C: c}).Run()
	if res.HardErrors != 0 {
		t.Errorf("hard errors: %d", res.HardErrors)
	}
	if res.ReplayTime <= 0 {
		t.Error("no replay time measured")
	}
	if res.Messages == 0 {
		t.Error("no messages counted")
	}
	if bad := c.CheckInvariants(); len(bad) != 0 {
		t.Errorf("invariants: %v", bad)
	}
}

func TestReplayAllProtocolsAgreeOnOutcome(t *testing.T) {
	p, _ := ProfileByName("s3d")
	for _, proto := range []cluster.Protocol{cluster.ProtoSE, cluster.ProtoSEBatched, cluster.ProtoCx} {
		tr := Generate(p, scaleFor(p, 800), 3)
		c := testCluster(proto)
		res := (&Replayer{Trace: tr, C: c}).Run()
		if res.HardErrors != 0 {
			t.Errorf("%v: hard errors %d", proto, res.HardErrors)
		}
		if bad := c.CheckInvariants(); len(bad) != 0 {
			t.Errorf("%v invariants: %v", proto, bad)
		}
		c.Shutdown()
	}
}

func TestReplayCxBeatsOFSOnTrace(t *testing.T) {
	// The Figure 5 effect in miniature.
	p, _ := ProfileByName("s3d")
	times := map[cluster.Protocol]time.Duration{}
	for _, proto := range []cluster.Protocol{cluster.ProtoSE, cluster.ProtoSEBatched, cluster.ProtoCx} {
		tr := Generate(p, scaleFor(p, 1200), 5)
		c := testCluster(proto)
		times[proto] = (&Replayer{Trace: tr, C: c}).Run().ReplayTime
		c.Shutdown()
	}
	if times[cluster.ProtoCx] >= times[cluster.ProtoSE] {
		t.Errorf("Cx replay (%v) not faster than OFS (%v)", times[cluster.ProtoCx], times[cluster.ProtoSE])
	}
	if times[cluster.ProtoCx] >= times[cluster.ProtoSEBatched] {
		t.Errorf("Cx replay (%v) not faster than OFS-batched (%v)", times[cluster.ProtoCx], times[cluster.ProtoSEBatched])
	}
}

func TestConflictRatioOrderingAcrossTraces(t *testing.T) {
	// Table II: deasna2 conflicts most, CTH least.
	ratios := map[string]float64{}
	for _, name := range []string{"CTH", "deasna2"} {
		p, _ := ProfileByName(name)
		tr := Generate(p, scaleFor(p, 3000), 2)
		c := testCluster(cluster.ProtoCx)
		res := (&Replayer{Trace: tr, C: c}).Run()
		ratios[name] = res.ConflictRatio()
		c.Shutdown()
	}
	if ratios["deasna2"] <= ratios["CTH"] {
		t.Errorf("deasna2 conflict ratio %.4f <= CTH %.4f; Table II ordering violated",
			ratios["deasna2"], ratios["CTH"])
	}
}

func TestInjectedConflictsIncreaseRatio(t *testing.T) {
	// The Figure 8 knob must actually move the measured conflict ratio.
	p, _ := ProfileByName("home2")
	run := func(extra float64) float64 {
		tr := Generate(p, scaleFor(p, 1500), 4)
		c := testCluster(cluster.ProtoCx)
		defer c.Shutdown()
		res := (&Replayer{Trace: tr, C: c, ExtraSharedReads: extra}).Run()
		return res.ConflictRatio()
	}
	base := run(0)
	boosted := run(0.3)
	if boosted <= base {
		t.Errorf("injection did not raise conflicts: base=%.4f boosted=%.4f", base, boosted)
	}
}

module cxfs

go 1.24

package baseline

import (
	"time"

	"cxfs/internal/namespace"
	"cxfs/internal/node"
	"cxfs/internal/simrt"
	"cxfs/internal/types"
	"cxfs/internal/wal"
	"cxfs/internal/wire"
)

// TwoPCServer implements the two-phase-commit protocol of Slice, IFS,
// Farsite, and DCFS (§II.B, Fig 1a): the client sends the whole operation
// to the coordinator; the coordinator VOTEs the participant, both sides
// execute and log synchronously, the coordinator decides and logs, the
// participant applies the decision to its database synchronously and ACKs,
// and only then does the client get its response.
type TwoPCServer struct {
	*node.Base
	pl    namespace.Placement
	locks *lockTable

	// Per-operation reply routing for the coordinator's blocking RPCs.
	voteCh map[types.OpID]*simrt.Chan[wire.Msg]
	ackCh  map[types.OpID]*simrt.Chan[wire.Msg]

	// Participant-side pending executions awaiting the decision.
	pendingPart map[types.OpID]*pendingExec

	// guard suppresses duplicate (retried) client transactions.
	guard *dupGuard
}

type pendingExec struct {
	sub  types.SubOp
	ok   bool
	undo *namespace.Undo
	rows []string
	keys []types.ObjKey
}

// NewTwoPCServer builds a 2PC server.
func NewTwoPCServer(base *node.Base, pl namespace.Placement) *TwoPCServer {
	return &TwoPCServer{
		Base: base, pl: pl,
		locks:       newLockTable(base.Sim),
		voteCh:      make(map[types.OpID]*simrt.Chan[wire.Msg]),
		ackCh:       make(map[types.OpID]*simrt.Chan[wire.Msg]),
		pendingPart: make(map[types.OpID]*pendingExec),
		guard:       newDupGuard(),
	}
}

// Start launches the inbox loop and the database checkpointer (2PC applies
// synchronously through the journal).
func (s *TwoPCServer) Start() {
	s.Base.Start(s.handle)
	s.KV.StartCheckpointer(10 * time.Second)
}

func (s *TwoPCServer) handle(p *simrt.Proc, m wire.Msg) {
	switch m.Type {
	case wire.MsgOpReq:
		s.coordinate(p, m)
	case wire.MsgVote:
		s.participantVote(p, m)
	case wire.MsgVoteResp:
		if ch := s.voteCh[m.Op]; ch != nil {
			ch.Send(m)
		}
	case wire.MsgCommitReq:
		s.participantDecide(p, m)
	case wire.MsgAck:
		if ch := s.ackCh[m.Op]; ch != nil {
			ch.Send(m)
		}
	}
}

// coordinate runs the whole transaction for one client operation.
func (s *TwoPCServer) coordinate(p *simrt.Proc, m wire.Msg) {
	op := m.FullOp
	if op.Kind == types.OpReaddir {
		s.ServeReaddir(m)
		return
	}
	if op.Kind.Mutating() {
		if cached, ok := s.guard.cached(op.ID); ok {
			cached.To = m.From
			s.Send(cached)
			return
		}
		if !s.guard.begin(op.ID) {
			return // duplicate of a transaction still running (or queued on locks)
		}
		defer s.guard.abandon(op.ID)
	}
	reply := wire.Msg{Type: wire.MsgOpResp, To: m.From, Op: op.ID, OK: true}

	if !op.Kind.CrossServer() {
		sub := types.SingleSubOp(op)
		s.ExecCPU(p)
		res := s.Shard.Exec(sub, s.NowNanos())
		reply.OK, reply.Attr = res.OK, res.Inode
		if res.Err != nil {
			reply.Err = res.Err.Error()
		}
		if res.OK && sub.Action.Mutating() {
			s.KV.SyncKeys(p, res.Rows)
		}
		if s.CrashPoint("2pc:after-exec", op.ID) {
			return
		}
		if op.Kind.Mutating() {
			s.guard.finish(op.ID, reply)
		}
		s.Send(reply)
		return
	}

	cSub, pSub := types.Split(op)
	part := s.pl.ParticipantFor(op.Ino)
	local := part == s.ID

	keys := cSub.Keys()
	if local {
		keys = append(keys, pSub.Keys()...)
	}
	s.locks.acquire(p, keys)
	defer s.locks.release(keys)

	// Phase 1: VOTE the participant (remote) or execute its sub-op here.
	var partOK bool
	if local {
		s.ExecCPU(p)
		resP := s.Shard.Exec(pSub, s.NowNanos())
		partOK = resP.OK
		if resP.OK {
			s.pendingPart[op.ID] = &pendingExec{sub: pSub, ok: true, undo: resP.Undo, rows: resP.Rows}
			s.WAL.Append(p, wal.Record{Type: wal.RecResult, Op: op.ID, Role: types.RoleParticipant,
				OK: true, Sub: pSub, Before: resP.Before, After: resP.After})
		}
	} else {
		ch := simrt.NewChan[wire.Msg](s.Sim)
		s.voteCh[op.ID] = ch
		s.Send(wire.Msg{Type: wire.MsgVote, To: part, Op: op.ID, Sub: pSub, ReplyProc: m.ReplyProc})
		vm := ch.Recv(p)
		delete(s.voteCh, op.ID)
		partOK = vm.OK
	}
	if s.Crashed() {
		return
	}

	// Coordinator executes its own sub-op and logs the result.
	s.ExecCPU(p)
	resC := s.Shard.Exec(cSub, s.NowNanos())
	s.WAL.Append(p, wal.Record{Type: wal.RecResult, Op: op.ID, Role: types.RoleCoordinator,
		OK: resC.OK, Sub: cSub, Before: resC.Before, After: resC.After})
	if s.Crashed() {
		return
	}

	commit := partOK && resC.OK

	// Phase 2: log the decision, instruct the participant, apply locally.
	decType := wal.RecAbort
	if commit {
		decType = wal.RecCommit
	}
	s.WAL.Append(p, wal.Record{Type: decType, Op: op.ID, Role: types.RoleCoordinator})
	if s.CrashPoint("2pc:after-decision", op.ID) {
		return
	}

	if local {
		s.applyDecision(p, op.ID, commit)
	} else if partOK {
		ch := simrt.NewChan[wire.Msg](s.Sim)
		s.ackCh[op.ID] = ch
		s.Send(wire.Msg{Type: wire.MsgCommitReq, To: part, Op: op.ID,
			Decisions: []wire.Decision{{Op: op.ID, Commit: commit}}})
		ch.Recv(p)
		delete(s.ackCh, op.ID)
	}
	if s.Crashed() {
		return
	}

	// Apply the coordinator's side synchronously.
	if resC.OK {
		if commit {
			s.KV.SyncKeys(p, resC.Rows)
		} else {
			s.Shard.ApplyUndo(resC.Undo)
			s.KV.SyncKeys(p, resC.Undo.Keys())
		}
	}
	s.WAL.Append(p, wal.Record{Type: wal.RecComplete, Op: op.ID, Role: types.RoleCoordinator})
	if s.Crashed() {
		return
	}
	s.WAL.Prune(op.ID)

	if !commit {
		reply.OK = false
		if resC.Err != nil {
			reply.Err = resC.Err.Error()
		} else {
			reply.Err = types.ErrAborted.Error()
		}
	} else {
		reply.Attr = resC.Inode
	}
	s.guard.finish(op.ID, reply)
	s.Send(reply)
}

// participantVote executes the assigned sub-op, logs, and votes (phase 1).
func (s *TwoPCServer) participantVote(p *simrt.Proc, m wire.Msg) {
	if pe := s.pendingPart[m.Op]; pe != nil {
		// Retransmitted VOTE: answer from the pending execution instead of
		// re-acquiring locks it already holds.
		s.Send(wire.Msg{Type: wire.MsgVoteResp, To: m.From, Op: m.Op, OK: pe.ok})
		return
	}
	sub := m.Sub
	keys := sub.Keys()
	s.locks.acquire(p, keys)
	s.ExecCPU(p)
	res := s.Shard.Exec(sub, s.NowNanos())
	if res.OK {
		s.pendingPart[m.Op] = &pendingExec{sub: sub, ok: true, undo: res.Undo, rows: res.Rows, keys: keys}
		s.WAL.Append(p, wal.Record{Type: wal.RecResult, Op: m.Op, Role: types.RoleParticipant,
			OK: true, Sub: sub, Before: res.Before, After: res.After})
	} else {
		s.locks.release(keys)
	}
	if s.Crashed() {
		return
	}
	reply := wire.Msg{Type: wire.MsgVoteResp, To: m.From, Op: m.Op, OK: res.OK}
	if res.Err != nil {
		reply.Err = res.Err.Error()
	}
	s.Send(reply)
}

// participantDecide applies the coordinator's decision (phase 2).
func (s *TwoPCServer) participantDecide(p *simrt.Proc, m wire.Msg) {
	commit := len(m.Decisions) > 0 && m.Decisions[0].Commit
	s.applyDecision(p, m.Op, commit)
	if s.CrashPoint("2pc:before-ack", m.Op) {
		return
	}
	s.Send(wire.Msg{Type: wire.MsgAck, To: m.From, Op: m.Op})
}

func (s *TwoPCServer) applyDecision(p *simrt.Proc, id types.OpID, commit bool) {
	pe := s.pendingPart[id]
	if pe == nil {
		return
	}
	delete(s.pendingPart, id)
	decType := wal.RecAbort
	if commit {
		decType = wal.RecCommit
		s.KV.SyncKeys(p, pe.rows)
	} else {
		s.Shard.ApplyUndo(pe.undo)
		s.KV.SyncKeys(p, pe.undo.Keys())
	}
	if s.Crashed() {
		return
	}
	s.WAL.Append(p, wal.Record{Type: decType, Op: id, Role: types.RoleParticipant})
	s.WAL.Prune(id)
	s.locks.release(pe.keys)
}

// TwoPCDriver is the 2PC client: one request to the coordinator, one
// response when the transaction has fully committed or aborted.
type TwoPCDriver struct {
	host  *node.Host
	pl    namespace.Placement
	retry types.RetryPolicy
	observed
}

// NewTwoPCDriver builds a 2PC driver.
func NewTwoPCDriver(host *node.Host, pl namespace.Placement) *TwoPCDriver {
	return &TwoPCDriver{host: host, pl: pl}
}

// SetRetry installs the per-RPC timeout/retry policy (zero disables).
func (d *TwoPCDriver) SetRetry(rp types.RetryPolicy) { d.retry = rp }

// Do executes one metadata operation through the coordinator.
func (d *TwoPCDriver) Do(p *simrt.Proc, op types.Op) (types.Inode, error) {
	return d.record(d.host, op, func() (types.Inode, error) {
		if !op.Kind.CrossServer() {
			return singleServerOp(p, d.host, d.pl, d.retry, op)
		}
		return localOpCall(p, d.host, op, d.pl.CoordinatorFor(op.Parent, op.Name), d.retry)
	})
}

package core

import (
	"errors"
	"fmt"
	"time"

	"cxfs/internal/namespace"
	"cxfs/internal/node"
	"cxfs/internal/obs"
	"cxfs/internal/simrt"
	"cxfs/internal/types"
	"cxfs/internal/wire"
)

// Driver is the Cx client-side protocol: it assigns the sub-operations of a
// cross-server operation to both servers concurrently (§III.B step 1),
// collects YES/NO responses with conflict hints and execution epochs, and
// launches an immediate commitment with L-COM when the responses disagree.
type Driver struct {
	host *node.Host
	pl   namespace.Placement

	obsv  *obs.Observer
	proto string
	retry types.RetryPolicy

	// cache, when attached, serves lookups locally under lease (the leased
	// read path). lastCached/lastGrant describe the most recent lookup —
	// read by harnesses immediately after Do returns, which is safe because
	// the cooperative scheduler cannot interleave another process between
	// doLookup's return and the caller's next statement.
	cache      *Cache
	lastCached bool
	lastGrant  time.Duration
	lookupLog  map[types.OpID]lookupRec // per-op dispositions (TrackLookups)

	stats DriverStats
}

// DriverStats counts client-side protocol events.
type DriverStats struct {
	Ops           uint64
	CrossServer   uint64
	Colocated     uint64
	SingleServer  uint64
	Disagreements uint64 // L-COM rounds
	Failures      uint64
	Supersedes    uint64 // responses replaced by a higher epoch
	Retries       uint64 // request retransmissions after a reply timeout
	Timeouts      uint64 // operations abandoned with ErrTimeout
}

// NewDriver builds a Cx driver bound to a client host.
func NewDriver(host *node.Host, pl namespace.Placement) *Driver {
	return &Driver{host: host, pl: pl}
}

// Stats returns a snapshot of driver counters.
func (d *Driver) Stats() DriverStats { return d.stats }

// SetObserver attaches the observability layer; client-observed latencies
// are recorded under proto. Nil (the default) records nothing.
func (d *Driver) SetObserver(o *obs.Observer, proto string) {
	d.obsv, d.proto = o, proto
}

// SetRetry installs the per-RPC timeout/retry policy. The zero policy (the
// default) blocks forever on a lost reply, which is only acceptable on a
// fault-free network; under faults, a policy bounds every wait and the
// server-side duplicate suppression keeps retransmissions at-most-once.
func (d *Driver) SetRetry(rp types.RetryPolicy) { d.retry = rp }

// SetCache attaches the leased metadata cache and installs the host's
// revocation hook: MsgConflictNotify with a Path is a lease revocation for
// this client, consumed before the per-op reply routes (it must never leak
// into an op's reply channel when its ID collides with an open route).
func (d *Driver) SetCache(c *Cache) {
	d.cache = c
	if c == nil {
		return
	}
	d.host.SetNotify(func(m wire.Msg) bool {
		if m.Type == wire.MsgConflictNotify && m.Path != "" {
			c.Revoke(m.Dir, m.Path, m.From, m.LeaseEpoch)
			return true
		}
		return false
	})
}

// Cache returns the attached cache (nil when caching is off).
func (d *Driver) Cache() *Cache { return d.cache }

// FlushCache drops every cached entry; verification reads then hit servers.
func (d *Driver) FlushCache() {
	if d.cache != nil {
		d.cache.Flush()
	}
}

// LastLookup reports whether this driver's most recent lookup was served
// from the cache, and the lease grant timestamp backing it. Only meaningful
// when read immediately after the Lookup returns (see the field comment).
func (d *Driver) LastLookup() (cached bool, grant time.Duration) {
	return d.lastCached, d.lastGrant
}

// lookupRec is one completed lookup's cache disposition, kept per-op for
// pipelined harnesses (where LastLookup races between in-flight lookups).
type lookupRec struct {
	cached bool
	grant  time.Duration
}

// TrackLookups starts recording each completed lookup's cache disposition
// keyed by operation ID, for harvesting with TakeLookup. Only harnesses that
// drain every entry should enable it (the log grows until taken).
func (d *Driver) TrackLookups() {
	if d.lookupLog == nil {
		d.lookupLog = make(map[types.OpID]lookupRec)
	}
}

// TakeLookup pops the recorded cache disposition of lookup id. ok is false
// when the lookup never resolved (timeout) or tracking is off.
func (d *Driver) TakeLookup(id types.OpID) (cached bool, grant time.Duration, ok bool) {
	r, ok := d.lookupLog[id]
	if ok {
		delete(d.lookupLog, id)
	}
	return r.cached, r.grant, ok
}

// call sends req and waits for a reply on route, retransmitting per the
// retry policy. The second return is false when the attempt budget is
// exhausted: the operation's outcome is unknown.
func (d *Driver) call(p *simrt.Proc, route *simrt.Chan[wire.Msg], req wire.Msg) (wire.Msg, bool) {
	if !d.retry.Enabled() {
		d.host.Send(req)
		return route.Recv(p), true
	}
	for attempt := 0; attempt < d.retry.MaxAttempts(); attempt++ {
		if attempt > 0 {
			d.stats.Retries++
		}
		d.host.Send(req)
		if m, ok := route.RecvTimeout(p, d.retry.WaitFor(attempt)); ok {
			return m, true
		}
	}
	d.stats.Timeouts++
	return wire.Msg{}, false
}

// errFrom converts a response's error string back into a typed error.
func errFrom(m wire.Msg) error {
	if m.OK {
		return nil
	}
	if m.Err == "" {
		return types.ErrAborted
	}
	for _, known := range []error{
		types.ErrExists, types.ErrNotFound, types.ErrNotEmpty,
		types.ErrNotDir, types.ErrIsDir, types.ErrAborted, types.ErrInvalidated,
	} {
		if m.Err == known.Error() || len(m.Err) > len(known.Error()) &&
			m.Err[len(m.Err)-len(known.Error()):] == known.Error() {
			return fmt.Errorf("%s: %w", m.Err, known)
		}
	}
	return errors.New(m.Err)
}

// Do executes one metadata operation and blocks until it is complete from
// the process's perspective. The returned inode carries stat/lookup
// payloads.
func (d *Driver) Do(p *simrt.Proc, op types.Op) (types.Inode, error) {
	if d.obsv == nil {
		return d.do(p, op, nil)
	}
	start := d.host.Sim.Now()
	if d.obsv.TraceOn() {
		d.obsv.Emit(start, int(d.host.ID), op.ID, obs.PhaseIssue, op.Kind.String())
	}
	var conflicted bool
	ino, err := d.do(p, op, &conflicted)
	out := obs.OutcomeComplete
	switch {
	case err != nil:
		out = obs.OutcomeAborted
	case conflicted:
		out = obs.OutcomeConflicted
	}
	d.obsv.RecordOp(op.Kind, d.proto, out, op.ID, int(d.host.ID),
		start, d.host.Sim.Now()-start)
	return ino, err
}

func (d *Driver) do(p *simrt.Proc, op types.Op, conflicted *bool) (types.Inode, error) {
	d.stats.Ops++
	if d.cache != nil {
		if op.Kind == types.OpLookup {
			return d.doLookup(p, op)
		}
		if op.Kind.Mutating() {
			// Read-your-writes: drop this client's cached view of every
			// entry the mutation names BEFORE dispatching it. Done
			// unconditionally (even if the op later fails or times out) —
			// over-invalidation only costs a miss.
			d.cache.Invalidate(op.Parent, op.Name)
			if op.Kind == types.OpRename {
				d.cache.Invalidate(op.NewParent, op.NewName)
			}
		}
	}
	if op.Kind == types.OpRename {
		// Rename runs as an eager transaction coordinated by the source
		// entry's owner (extension; see internal/core/rename.go).
		return d.doLocal(p, op, d.pl.CoordinatorFor(op.Parent, op.Name))
	}
	if !op.Kind.CrossServer() {
		return d.doSingle(p, op)
	}
	coord := d.pl.CoordinatorFor(op.Parent, op.Name)
	part := d.pl.ParticipantFor(op.Ino)
	if coord == part {
		d.stats.Colocated++
		return d.doLocal(p, op, coord)
	}
	d.stats.CrossServer++
	return d.doCross(p, op, coord, part, conflicted)
}

// doSingle routes a read or single-server update to its owner.
func (d *Driver) doSingle(p *simrt.Proc, op types.Op) (types.Inode, error) {
	d.stats.SingleServer++
	var target types.NodeID
	switch op.Kind {
	case types.OpLookup:
		target = d.pl.CoordinatorFor(op.Parent, op.Name)
	default: // stat, setattr live with the inode
		target = d.pl.ParticipantFor(op.Ino)
	}
	route := d.host.Open(op.ID)
	defer d.host.Done(op.ID)
	m, ok := d.call(p, route, wire.Msg{Type: wire.MsgSubOpReq, To: target, Op: op.ID,
		Sub: types.SingleSubOp(op), ReplyProc: op.ID.Proc})
	if !ok {
		d.stats.Failures++
		return types.Inode{}, types.ErrTimeout
	}
	if !m.OK {
		d.stats.Failures++
	}
	return m.Attr, errFrom(m)
}

// doLookup is the leased read path: serve (Parent, Name) from the cache
// when a valid lease covers it, otherwise round-trip a MsgLookupReq to the
// dentry's coordinator and install the granted lease.
func (d *Driver) doLookup(p *simrt.Proc, op types.Op) (types.Inode, error) {
	now := d.host.Sim.Now()
	if attr, found, grant, ok := d.cache.Get(now, op.Parent, op.Name); ok {
		d.lastCached, d.lastGrant = true, grant
		if d.lookupLog != nil {
			d.lookupLog[op.ID] = lookupRec{cached: true, grant: grant}
		}
		if !found {
			return types.Inode{}, types.ErrNotFound
		}
		return attr, nil
	}
	d.lastCached, d.lastGrant = false, 0
	d.stats.SingleServer++
	target := d.pl.CoordinatorFor(op.Parent, op.Name)
	route := d.host.Open(op.ID)
	defer d.host.Done(op.ID)
	issued := d.host.Sim.Now()
	m, ok := d.call(p, route, wire.Msg{Type: wire.MsgLookupReq, To: target, Op: op.ID,
		Dir: op.Parent, Path: op.Name, ReplyProc: op.ID.Proc})
	if !ok {
		d.stats.Failures++
		return types.Inode{}, types.ErrTimeout
	}
	d.cache.Put(issued, d.host.Sim.Now(), m)
	d.lastGrant = issued
	if d.lookupLog != nil {
		d.lookupLog[op.ID] = lookupRec{cached: false, grant: issued}
	}
	if !m.OK {
		d.stats.Failures++
	}
	return m.Attr, errFrom(m)
}

// doLocal routes a colocated cross-server operation as one local
// transaction.
func (d *Driver) doLocal(p *simrt.Proc, op types.Op, server types.NodeID) (types.Inode, error) {
	route := d.host.Open(op.ID)
	defer d.host.Done(op.ID)
	m, ok := d.call(p, route, wire.Msg{Type: wire.MsgOpReq, To: server, Op: op.ID, FullOp: op, ReplyProc: op.ID.Proc})
	if !ok {
		d.stats.Failures++
		return types.Inode{}, types.ErrTimeout
	}
	if !m.OK {
		d.stats.Failures++
	}
	return m.Attr, errFrom(m)
}

// respState tracks the freshest response from one server.
type respState struct {
	have   bool
	ok     bool
	hint   types.OpID
	epoch  uint32
	err    string
	attr   types.Inode
	voided bool // invalidation notice received for this epoch; await re-exec
}

// doCross is the concurrent-execution path (§III.B): both sub-ops ship at
// once; the operation completes when the freshest response from each server
// is in hand (no invalidation outstanding) and the answers agree — or after
// an L-COM/ALL-NO round when they do not.
func (d *Driver) doCross(p *simrt.Proc, op types.Op, coord, part types.NodeID, conflicted *bool) (types.Inode, error) {
	cSub, pSub := types.Split(op)
	route := d.host.Open(op.ID)
	defer d.host.Done(op.ID)

	sendCoord := func() {
		d.host.Send(wire.Msg{Type: wire.MsgSubOpReq, To: coord, Op: op.ID, Sub: cSub, Peer: part, ReplyProc: op.ID.Proc})
	}
	sendPart := func() {
		d.host.Send(wire.Msg{Type: wire.MsgSubOpReq, To: part, Op: op.ID, Sub: pSub, Peer: coord, ReplyProc: op.ID.Proc})
	}
	sendCoord()
	sendPart()

	var rc, rp respState
	lcomSent := false
	attempt := 0
	for {
		var m wire.Msg
		if d.retry.Enabled() {
			var got bool
			m, got = route.RecvTimeout(p, d.retry.WaitFor(attempt))
			if !got {
				attempt++
				if attempt >= d.retry.MaxAttempts() {
					d.stats.Timeouts++
					d.stats.Failures++
					return types.Inode{}, types.ErrTimeout
				}
				d.stats.Retries++
				// Retransmit whatever is still outstanding; servers answer
				// duplicates from their pending state or reply cache.
				if !rc.have || rc.voided {
					sendCoord()
				}
				if !rp.have || rp.voided {
					sendPart()
				}
				if lcomSent {
					d.host.Send(wire.Msg{Type: wire.MsgLCom, To: coord, Op: op.ID, ReplyProc: op.ID.Proc})
				}
				continue
			}
			attempt = 0 // any received message counts as progress
		} else {
			m = route.Recv(p)
		}
		switch m.Type {
		case wire.MsgAllNo:
			// 7b: every successful execution was aborted.
			d.stats.Failures++
			if rc.have && !rc.ok && rc.err != "" && rc.err != types.ErrInvalidated.Error() {
				return types.Inode{}, errFrom(wire.Msg{Err: rc.err})
			}
			if rp.have && !rp.ok && rp.err != "" && rp.err != types.ErrInvalidated.Error() {
				return types.Inode{}, errFrom(wire.Msg{Err: rp.err})
			}
			return types.Inode{}, types.ErrAborted
		case wire.MsgSubOpResp:
			st := &rc
			if m.From == part {
				st = &rp
			}
			d.absorb(st, m)
			// Any invalidation notice or re-executed (epoch > 1) response
			// means this operation went through conflict machinery.
			if conflicted != nil && (st.voided || st.epoch > 1) {
				*conflicted = true
			}
		}
		if !rc.have || !rp.have || rc.voided || rp.voided || lcomSent {
			continue
		}
		switch {
		case rc.ok && rp.ok:
			return rc.attr, nil
		case !rc.ok && !rp.ok:
			// Agreement on failure: complete, commitment happens lazily.
			d.stats.Failures++
			if rc.err != "" {
				return types.Inode{}, errFrom(wire.Msg{Err: rc.err})
			}
			return types.Inode{}, errFrom(wire.Msg{Err: rp.err})
		default:
			// Disagreement: ask the coordinator for an immediate
			// commitment; ALL-NO completes the operation (§III.B step 2b).
			d.stats.Disagreements++
			lcomSent = true
			if conflicted != nil {
				*conflicted = true
			}
			d.host.Send(wire.Msg{Type: wire.MsgLCom, To: coord, Op: op.ID, ReplyProc: op.ID.Proc})
		}
	}
}

// absorb folds a response into the per-server state, honoring epochs: an
// invalidation notice voids the state until the re-execution response (same
// or higher epoch) arrives; stale lower-epoch responses are dropped.
func (d *Driver) absorb(st *respState, m wire.Msg) {
	invalid := m.Err == types.ErrInvalidated.Error()
	if st.have && m.Epoch < st.epoch {
		return // stale
	}
	if st.have && m.Epoch > st.epoch {
		d.stats.Supersedes++
	}
	if invalid {
		st.have = true
		st.epoch = m.Epoch
		st.voided = true
		return
	}
	if st.voided && m.Epoch < st.epoch {
		return
	}
	st.have = true
	st.ok = m.OK
	st.hint = m.Hint
	st.epoch = m.Epoch
	st.err = m.Err
	st.attr = m.Attr
	st.voided = false
}

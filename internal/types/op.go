package types

import "fmt"

// Op is one metadata operation as issued by an application process, before
// placement. The cluster layer resolves it to a coordinator and participant
// server and splits it into SubOps per Table I of the paper.
type Op struct {
	ID   OpID
	Kind OpKind

	// Parent and Name locate the directory entry the operation manipulates.
	Parent InodeID
	Name   string

	// Ino is the inode the operation targets: the new inode for
	// create/mkdir (assigned by the client from its inode allocator, as
	// OrangeFS clients pick a random metadata server for the new object),
	// or the existing inode for remove/link/unlink/stat/setattr.
	Ino InodeID

	// Type is the inode type for create/mkdir.
	Type FileType

	// NewParent/NewName are the destination for rename.
	NewParent InodeID
	NewName   string
}

// String renders an Op compactly for logs.
func (o Op) String() string {
	return fmt.Sprintf("%s %s dir=%d name=%q ino=%d", o.ID, o.Kind, o.Parent, o.Name, o.Ino)
}

// SubOpAction enumerates the primitive metadata mutations a sub-operation
// performs on one server, mirroring the "Sub-op on Coordinator / Participant"
// columns of Table I.
type SubOpAction uint8

const (
	ActNone SubOpAction = iota
	// ActInsertEntry inserts (Parent, Name) -> Ino and bumps the parent
	// inode's mtime/size (coordinator side of create/mkdir/link).
	ActInsertEntry
	// ActRemoveEntry deletes (Parent, Name) and bumps the parent inode
	// (coordinator side of remove/rmdir/unlink).
	ActRemoveEntry
	// ActAddInode creates inode Ino with type Type and nlink 1
	// (participant side of create/mkdir).
	ActAddInode
	// ActDecLink decrements nlink of Ino and frees it at zero
	// (participant side of remove/rmdir/unlink).
	ActDecLink
	// ActIncLink increments nlink of Ino (participant side of link).
	ActIncLink
	// ActReadInode reads inode attributes (stat).
	ActReadInode
	// ActReadEntry resolves (Parent, Name) -> Ino (lookup).
	ActReadEntry
	// ActTouchInode updates inode attributes in place (setattr).
	ActTouchInode
)

var subOpActionNames = [...]string{
	ActNone:        "none",
	ActInsertEntry: "insert-entry",
	ActRemoveEntry: "remove-entry",
	ActAddInode:    "add-inode",
	ActDecLink:     "dec-link",
	ActIncLink:     "inc-link",
	ActReadInode:   "read-inode",
	ActReadEntry:   "read-entry",
	ActTouchInode:  "touch-inode",
}

// String renders a SubOpAction.
func (a SubOpAction) String() string {
	if int(a) < len(subOpActionNames) {
		return subOpActionNames[a]
	}
	return fmt.Sprintf("action(%d)", uint8(a))
}

// Mutating reports whether the action changes metadata state.
func (a SubOpAction) Mutating() bool {
	switch a {
	case ActInsertEntry, ActRemoveEntry, ActAddInode, ActDecLink, ActIncLink, ActTouchInode:
		return true
	}
	return false
}

// SubOp is the unit of execution on one server: the action, the operation it
// belongs to, and the object parameters. A server executes a SubOp against
// its namespace shard and reports success or failure.
type SubOp struct {
	Op     OpID
	Kind   OpKind // kind of the whole operation, for accounting
	Role   Role
	Action SubOpAction

	Parent InodeID
	Name   string
	Ino    InodeID
	Type   FileType
}

// String renders a SubOp compactly.
func (s SubOp) String() string {
	return fmt.Sprintf("%s/%s %s dir=%d name=%q ino=%d", s.Op, s.Role, s.Action, s.Parent, s.Name, s.Ino)
}

// Keys returns the metadata object keys the sub-op conflicts on. These feed
// the Cx active-object table: a pending cross-server operation marks exactly
// these keys active on the executing server, and another process touching an
// active key raises a conflict (§III.C).
//
// The parent-inode attribute update that rides along with entry insertion
// and removal (Table I: "and update parent inode") is deliberately NOT a
// conflict key: it is a commutative counter/mtime bump, and treating it as a
// conflict object would make every pair of creates into a shared directory
// conflict — contradicting the paper's measured conflict ratios (Table II),
// where checkpoint workloads creating into one common directory conflict on
// well under 1% of operations. Its rollback is compensating (namespace.Undo)
// rather than before-image for the same reason.
func (s SubOp) Keys() []ObjKey {
	switch s.Action {
	case ActInsertEntry, ActRemoveEntry, ActReadEntry:
		return []ObjKey{DentryKey(s.Parent, s.Name)}
	case ActAddInode, ActDecLink, ActIncLink, ActReadInode, ActTouchInode:
		return []ObjKey{InodeKey(s.Ino)}
	}
	return nil
}

// Split decomposes a cross-server operation into its coordinator and
// participant sub-operations per Table I. It panics on non-cross-server
// kinds; callers route those through SingleSubOp.
func Split(op Op) (coord, part SubOp) {
	coord = SubOp{Op: op.ID, Kind: op.Kind, Role: RoleCoordinator, Parent: op.Parent, Name: op.Name, Ino: op.Ino, Type: op.Type}
	part = SubOp{Op: op.ID, Kind: op.Kind, Role: RoleParticipant, Parent: op.Parent, Name: op.Name, Ino: op.Ino, Type: op.Type}
	switch op.Kind {
	case OpCreate:
		coord.Action = ActInsertEntry
		part.Action = ActAddInode
		part.Type = FileRegular
	case OpMkdir:
		coord.Action = ActInsertEntry
		part.Action = ActAddInode
		part.Type = FileDir
	case OpRemove, OpRmdir, OpUnlink:
		coord.Action = ActRemoveEntry
		part.Action = ActDecLink
	case OpLink:
		coord.Action = ActInsertEntry
		part.Action = ActIncLink
	default:
		panic(fmt.Sprintf("types: Split on non-cross-server op %v", op.Kind))
	}
	return coord, part
}

// SingleSubOp builds the sub-operation for a single-server read or update
// (stat, lookup, setattr). The Role is RoleCoordinator by convention.
func SingleSubOp(op Op) SubOp {
	s := SubOp{Op: op.ID, Kind: op.Kind, Role: RoleCoordinator, Parent: op.Parent, Name: op.Name, Ino: op.Ino}
	switch op.Kind {
	case OpStat:
		s.Action = ActReadInode
	case OpLookup:
		s.Action = ActReadEntry
	case OpSetAttr:
		s.Action = ActTouchInode
	default:
		panic(fmt.Sprintf("types: SingleSubOp on %v", op.Kind))
	}
	return s
}

package wire

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"cxfs/internal/types"
)

func sampleMsg() Msg {
	return Msg{
		Type:      MsgSubOpResp,
		From:      3,
		To:        101,
		Op:        types.OpID{Proc: types.ProcID{Client: 101, Index: 4}, Seq: 77},
		ReplyProc: types.ProcID{Client: 101, Index: 4},
		Sub: types.SubOp{
			Op:     types.OpID{Proc: types.ProcID{Client: 101, Index: 4}, Seq: 77},
			Kind:   types.OpCreate,
			Role:   types.RoleParticipant,
			Action: types.ActAddInode,
			Parent: 9, Name: "checkpoint.000123", Ino: 5001, Type: types.FileRegular,
		},
		Peer:  2,
		OK:    true,
		Hint:  types.OpID{Proc: types.ProcID{Client: 100, Index: 1}, Seq: 3},
		Epoch: 2,
		Attr:  types.Inode{Ino: 5001, Type: types.FileRegular, Nlink: 1, Size: 0, Mtime: 88},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	msgs := []Msg{
		sampleMsg(),
		{Type: MsgLCom, From: 101, To: 0, Op: types.OpID{Seq: 1}},
		{Type: MsgVote, From: 0, To: 1, Ops: []types.OpID{{Seq: 1}, {Seq: 2}, {Seq: 3}}, Enforce: []types.OpID{{Seq: 9}}},
		{Type: MsgVoteResp, From: 1, To: 0, Votes: []Vote{{Op: types.OpID{Seq: 1}, OK: true}, {Op: types.OpID{Seq: 2}}}},
		{Type: MsgCommitReq, From: 0, To: 1, Decisions: []Decision{{Op: types.OpID{Seq: 9}, Commit: true}}},
		{Type: MsgMigrateResp, From: 1, To: 0, Rows: []Row{{Key: "i/42", Val: []byte{1, 2, 3}}, {Key: "d/1/f", Val: nil}}},
		{Type: MsgMigrateReq, From: 0, To: 1, Keys: []string{"i/42", "d/1/f"}},
		{Type: MsgOpResp, From: 0, To: 101, Err: "entry exists"},
	}
	for _, m := range msgs {
		buf := Encode(&m)
		got, err := Decode(buf)
		if err != nil {
			t.Fatalf("%v: decode: %v", m.Type, err)
		}
		// Normalize empty-vs-nil rows payload.
		if len(got.Rows) == len(m.Rows) {
			for i := range got.Rows {
				if len(got.Rows[i].Val) == 0 && len(m.Rows[i].Val) == 0 {
					got.Rows[i].Val, m.Rows[i].Val = nil, nil
				}
			}
		}
		if !reflect.DeepEqual(m, got) {
			t.Errorf("%v round trip mismatch:\n got %+v\nwant %+v", m.Type, got, m)
		}
	}
}

func TestSizeMatchesEncodedLength(t *testing.T) {
	for _, m := range []Msg{
		sampleMsg(),
		{Type: MsgVote, Ops: make([]types.OpID, 100)},
		{Type: MsgMigrateResp, Rows: []Row{{Key: "abc", Val: make([]byte, 37)}}},
		{},
	} {
		if got, want := Size(&m), int64(len(Encode(&m))); got != want {
			t.Errorf("%v: Size=%d, len(Encode)=%d", m.Type, got, want)
		}
	}
}

func TestSizeMatchesEncodedLengthQuick(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 200,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			m := Msg{
				Type: MsgType(r.Intn(NumMsgTypes)),
				From: types.NodeID(r.Int31()),
				To:   types.NodeID(r.Int31()),
				Op:   types.OpID{Proc: types.ProcID{Client: types.NodeID(r.Int31()), Index: r.Int31()}, Seq: r.Uint64()},
				OK:   r.Intn(2) == 0,
				Err:  randStr(r, 20),
				Sub:  types.SubOp{Name: randStr(r, 40)},
				FullOp: types.Op{
					Name:    randStr(r, 30),
					NewName: randStr(r, 30),
				},
				Epoch: r.Uint32(),
			}
			for i := 0; i < r.Intn(5); i++ {
				m.Ops = append(m.Ops, types.OpID{Seq: r.Uint64()})
				m.Votes = append(m.Votes, Vote{Op: types.OpID{Seq: r.Uint64()}, OK: r.Intn(2) == 0})
				m.Decisions = append(m.Decisions, Decision{Op: types.OpID{Seq: r.Uint64()}, Commit: r.Intn(2) == 0})
				m.Rows = append(m.Rows, Row{Key: randStr(r, 10), Val: []byte(randStr(r, 50))})
				m.Keys = append(m.Keys, randStr(r, 10))
			}
			vals[0] = reflect.ValueOf(m)
		},
	}
	f := func(m Msg) bool {
		buf := Encode(&m)
		if int64(len(buf)) != Size(&m) {
			return false
		}
		got, err := Decode(buf)
		if err != nil {
			return false
		}
		return got.Op == m.Op && got.Type == m.Type && got.Err == m.Err &&
			len(got.Ops) == len(m.Ops) && len(got.Rows) == len(m.Rows)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func randStr(r *rand.Rand, max int) string {
	n := r.Intn(max + 1)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + r.Intn(26))
	}
	return string(b)
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode(nil); err == nil {
		t.Error("nil frame accepted")
	}
	if _, err := Decode([]byte{1, 2, 3}); err == nil {
		t.Error("short frame accepted")
	}
	m := sampleMsg()
	buf := Encode(&m)
	if _, err := Decode(buf[:len(buf)-3]); err == nil {
		t.Error("truncated frame accepted")
	}
	if _, err := Decode(append(buf, 0)); err == nil {
		t.Error("oversized frame accepted")
	}
}

func TestMsgTypeNamesMatchPaper(t *testing.T) {
	// Table III vocabulary must be visible in the type names.
	for ty, want := range map[MsgType]string{
		MsgVote:      "VOTE",
		MsgSubOpResp: "YES/NO",
		MsgCommitReq: "COMMIT/ABORT-REQ",
		MsgAck:       "ACK",
		MsgLCom:      "L-COM",
		MsgAllNo:     "ALL-NO",
	} {
		if ty.String() != want {
			t.Errorf("%d.String()=%q, want %q", ty, ty.String(), want)
		}
	}
}

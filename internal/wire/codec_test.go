package wire

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"cxfs/internal/types"
)

func sampleMsg() Msg {
	return Msg{
		Type:      MsgSubOpResp,
		From:      3,
		To:        101,
		Op:        types.OpID{Proc: types.ProcID{Client: 101, Index: 4}, Seq: 77},
		ReplyProc: types.ProcID{Client: 101, Index: 4},
		Sub: types.SubOp{
			Op:     types.OpID{Proc: types.ProcID{Client: 101, Index: 4}, Seq: 77},
			Kind:   types.OpCreate,
			Role:   types.RoleParticipant,
			Action: types.ActAddInode,
			Parent: 9, Name: "checkpoint.000123", Ino: 5001, Type: types.FileRegular,
		},
		Peer:  2,
		OK:    true,
		Hint:  types.OpID{Proc: types.ProcID{Client: 100, Index: 1}, Seq: 3},
		Epoch: 2,
		Attr:  types.Inode{Ino: 5001, Type: types.FileRegular, Nlink: 1, Size: 0, Mtime: 88},
	}
}

func mustEncode(t testing.TB, m *Msg) []byte {
	t.Helper()
	buf, err := Encode(m)
	if err != nil {
		t.Fatalf("%v: encode: %v", m.Type, err)
	}
	return buf
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	msgs := []Msg{
		sampleMsg(),
		{Type: MsgLCom, From: 101, To: 0, Op: types.OpID{Seq: 1}},
		{Type: MsgVote, From: 0, To: 1, Ops: []types.OpID{{Seq: 1}, {Seq: 2}, {Seq: 3}}, Enforce: []types.OpID{{Seq: 9}}},
		{Type: MsgVoteResp, From: 1, To: 0, Votes: []Vote{{Op: types.OpID{Seq: 1}, OK: true}, {Op: types.OpID{Seq: 2}}}},
		{Type: MsgCommitReq, From: 0, To: 1, Decisions: []Decision{{Op: types.OpID{Seq: 9}, Commit: true}}},
		{Type: MsgMigrateResp, From: 1, To: 0, Rows: []Row{{Key: "i/42", Val: []byte{1, 2, 3}}, {Key: "d/1/f", Val: nil}}},
		{Type: MsgMigrateReq, From: 0, To: 1, Keys: []string{"i/42", "d/1/f"}},
		{Type: MsgOpResp, From: 0, To: 101, Err: "entry exists"},
		{Type: MsgLookupReq, From: 101, To: 0, Op: types.OpID{Seq: 5}, Dir: 9, Path: "checkpoint.000123"},
		{Type: MsgLookupResp, From: 0, To: 101, Op: types.OpID{Seq: 5}, OK: true, Dir: 9,
			Path: "checkpoint.000123", Attr: types.Inode{Ino: 5001, Type: types.FileRegular, Nlink: 1},
			LeaseEpoch: 3, LeaseTTL: 25 * time.Millisecond},
		{Type: MsgConflictNotify, From: 0, To: 101, Op: types.OpID{Seq: 6}, Dir: 9,
			Path: "checkpoint.000123", LeaseEpoch: 3},
	}
	for _, m := range msgs {
		buf := mustEncode(t, &m)
		got, err := Decode(buf)
		if err != nil {
			t.Fatalf("%v: decode: %v", m.Type, err)
		}
		// Normalize empty-vs-nil rows payload.
		if len(got.Rows) == len(m.Rows) {
			for i := range got.Rows {
				if len(got.Rows[i].Val) == 0 && len(m.Rows[i].Val) == 0 {
					got.Rows[i].Val, m.Rows[i].Val = nil, nil
				}
			}
		}
		if !reflect.DeepEqual(m, got) {
			t.Errorf("%v round trip mismatch:\n got %+v\nwant %+v", m.Type, got, m)
		}
	}
}

func TestSizeMatchesEncodedLength(t *testing.T) {
	for _, m := range []Msg{
		sampleMsg(),
		{Type: MsgVote, Ops: make([]types.OpID, 100)},
		{Type: MsgMigrateResp, Rows: []Row{{Key: "abc", Val: make([]byte, 37)}}},
		{},
	} {
		if got, want := Size(&m), int64(len(mustEncode(t, &m))); got != want {
			t.Errorf("%v: Size=%d, len(Encode)=%d", m.Type, got, want)
		}
	}
}

func quickMsgValues(vals []reflect.Value, r *rand.Rand) {
	m := Msg{
		Type: MsgType(r.Intn(NumMsgTypes)),
		From: types.NodeID(r.Int31()),
		To:   types.NodeID(r.Int31()),
		Op:   types.OpID{Proc: types.ProcID{Client: types.NodeID(r.Int31()), Index: r.Int31()}, Seq: r.Uint64()},
		OK:   r.Intn(2) == 0,
		Err:  randStr(r, 20),
		Sub:  types.SubOp{Name: randStr(r, 40)},
		FullOp: types.Op{
			Name:    randStr(r, 30),
			NewName: randStr(r, 30),
		},
		Epoch:      r.Uint32(),
		Dir:        types.InodeID(r.Uint64()),
		Path:       randStr(r, 30),
		LeaseEpoch: r.Uint64(),
		LeaseTTL:   time.Duration(r.Int63()),
	}
	for i := 0; i < r.Intn(5); i++ {
		m.Ops = append(m.Ops, types.OpID{Seq: r.Uint64()})
		m.Votes = append(m.Votes, Vote{Op: types.OpID{Seq: r.Uint64()}, OK: r.Intn(2) == 0})
		m.Decisions = append(m.Decisions, Decision{Op: types.OpID{Seq: r.Uint64()}, Commit: r.Intn(2) == 0})
		m.Rows = append(m.Rows, Row{Key: randStr(r, 10), Val: []byte(randStr(r, 50))})
		m.Keys = append(m.Keys, randStr(r, 10))
	}
	vals[0] = reflect.ValueOf(m)
}

func TestSizeMatchesEncodedLengthQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200, Values: quickMsgValues}
	f := func(m Msg) bool {
		buf, err := Encode(&m)
		if err != nil {
			return false
		}
		if int64(len(buf)) != Size(&m) {
			return false
		}
		got, err := Decode(buf)
		if err != nil {
			return false
		}
		return got.Op == m.Op && got.Type == m.Type && got.Err == m.Err &&
			len(got.Ops) == len(m.Ops) && len(got.Rows) == len(m.Rows)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestEncodeToMatchesEncodeQuick asserts the append-style path produces the
// exact bytes of Encode for all valid messages, including when appending
// after existing content.
func TestEncodeToMatchesEncodeQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200, Values: quickMsgValues}
	scratch := make([]byte, 0, 4096)
	f := func(m Msg) bool {
		want, err := Encode(&m)
		if err != nil {
			return false
		}
		got, err := EncodeTo(scratch[:0], &m)
		if err != nil || !reflect.DeepEqual(want, got) {
			return false
		}
		// Appending after a prefix must leave the prefix intact.
		withPrefix, err := EncodeTo(append(scratch[:0], 0xAA, 0xBB), &m)
		if err != nil || len(withPrefix) != len(want)+2 {
			return false
		}
		return withPrefix[0] == 0xAA && withPrefix[1] == 0xBB &&
			reflect.DeepEqual(withPrefix[2:], want)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func randStr(r *rand.Rand, max int) string {
	n := r.Intn(max + 1)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + r.Intn(26))
	}
	return string(b)
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode(nil); err == nil {
		t.Error("nil frame accepted")
	}
	if _, err := Decode([]byte{1, 2, 3}); err == nil {
		t.Error("short frame accepted")
	}
	m := sampleMsg()
	buf := mustEncode(t, &m)
	if _, err := Decode(buf[:len(buf)-3]); err == nil {
		t.Error("truncated frame accepted")
	}
	if _, err := Decode(append(buf, 0)); err == nil {
		t.Error("oversized frame accepted")
	}
}

// TestEncodeLimitBoundaries pins the u16 prefix boundaries: 65535 of
// anything round-trips, 65536 is rejected with an error instead of being
// silently truncated to a wrapped count (the pre-fix behavior emitted a
// frame that misdecoded or failed with trailing bytes).
func TestEncodeLimitBoundaries(t *testing.T) {
	atLimitName := strings.Repeat("n", MaxString)
	m := Msg{Type: MsgSubOpReq, Sub: types.SubOp{Name: atLimitName}}
	buf := mustEncode(t, &m)
	got, err := Decode(buf)
	if err != nil {
		t.Fatalf("decode at-limit name: %v", err)
	}
	if got.Sub.Name != atLimitName {
		t.Fatal("at-limit name mangled in round trip")
	}

	atLimitPath := Msg{Type: MsgLookupReq, Dir: 1, Path: strings.Repeat("p", MaxString)}
	buf = mustEncode(t, &atLimitPath)
	got, err = Decode(buf)
	if err != nil {
		t.Fatalf("decode at-limit path: %v", err)
	}
	if got.Path != atLimitPath.Path {
		t.Fatal("at-limit path mangled in round trip")
	}

	over := Msg{Type: MsgSubOpReq, Sub: types.SubOp{Name: strings.Repeat("n", MaxString+1)}}
	if _, err := Encode(&over); err == nil {
		t.Error("64KiB name accepted")
	}
	if _, err := EncodeTo(nil, &over); err == nil {
		t.Error("EncodeTo accepted 64KiB name")
	}

	atLimit := Msg{Type: MsgVote, Ops: make([]types.OpID, MaxBatch)}
	for i := range atLimit.Ops {
		atLimit.Ops[i] = types.OpID{Seq: uint64(i)}
	}
	buf = mustEncode(t, &atLimit)
	got, err = Decode(buf)
	if err != nil {
		t.Fatalf("decode 65535-op batch: %v", err)
	}
	if len(got.Ops) != MaxBatch || got.Ops[MaxBatch-1].Seq != MaxBatch-1 {
		t.Fatal("65535-op batch mangled in round trip")
	}

	for name, m := range map[string]Msg{
		"ops":       {Type: MsgVote, Ops: make([]types.OpID, MaxBatch+1)},
		"enforce":   {Type: MsgVote, Enforce: make([]types.OpID, MaxBatch+1)},
		"votes":     {Type: MsgVoteResp, Votes: make([]Vote, MaxBatch+1)},
		"decisions": {Type: MsgCommitReq, Decisions: make([]Decision, MaxBatch+1)},
		"rows":      {Type: MsgMigrateResp, Rows: make([]Row, MaxBatch+1)},
		"keys":      {Type: MsgMigrateReq, Keys: make([]string, MaxBatch+1)},
		"err-text":  {Type: MsgOpResp, Err: strings.Repeat("e", MaxString+1)},
		"path":      {Type: MsgLookupReq, Path: strings.Repeat("p", MaxString+1)},
		"row-key":   {Type: MsgMigrateResp, Rows: []Row{{Key: strings.Repeat("k", MaxString+1)}}},
	} {
		m := m
		if _, err := Encode(&m); err == nil {
			t.Errorf("%s: over-limit message accepted", name)
		}
	}
}

// TestDecoderErrorSticky asserts a corrupt frame fails once and stays
// failed without per-field allocation: decoding a truncated body must not
// allocate proportionally to the number of fields after the failure point.
func TestDecoderErrorSticky(t *testing.T) {
	m := sampleMsg()
	buf := mustEncode(t, &m)
	body := buf[4:10] // cut deep inside the fixed header
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := DecodeBody(body); err == nil {
			t.Fatal("truncated body accepted")
		}
	})
	// A handful of allocs for the error value is fine; the pre-fix decoder
	// paid one make([]byte, n) per remaining field (~40 of them).
	if allocs > 6 {
		t.Errorf("decode of corrupt frame allocates %.0f times per run; want <=6", allocs)
	}
}

// TestDecodeCorruptCountNoAllocStorm flips a batch-count byte high and
// checks the decoder rejects it before allocating the phantom batch.
func TestDecodeCorruptCountNoAllocStorm(t *testing.T) {
	m := Msg{Type: MsgVote, Ops: []types.OpID{{Seq: 1}}}
	buf := mustEncode(t, &m)
	// The Ops count is the first u16 after the fixed part; find it by
	// re-encoding with a recognizable count. Easier: corrupt every u16-
	// aligned pair to 0xFFFF and require an error each time, never a
	// 65535-element allocation visible as a huge alloc count.
	for off := 4; off+2 <= len(buf); off++ {
		cp := make([]byte, len(buf))
		copy(cp, buf)
		cp[off], cp[off+1] = 0xFF, 0xFF
		allocs := testing.AllocsPerRun(20, func() {
			_, _ = Decode(cp)
		})
		if allocs > 8 {
			t.Fatalf("corrupting offset %d: decode allocates %.0f times per run", off, allocs)
		}
	}
}

func TestMsgTypeNamesMatchPaper(t *testing.T) {
	// Table III vocabulary must be visible in the type names.
	for ty, want := range map[MsgType]string{
		MsgVote:      "VOTE",
		MsgSubOpResp: "YES/NO",
		MsgCommitReq: "COMMIT/ABORT-REQ",
		MsgAck:       "ACK",
		MsgLCom:      "L-COM",
		MsgAllNo:     "ALL-NO",
	} {
		if ty.String() != want {
			t.Errorf("%d.String()=%q, want %q", ty, ty.String(), want)
		}
	}
}

// TestEncodeToZeroAlloc pins the zero-alloc claim: encoding into a
// buffer with capacity must not allocate at all.
func TestEncodeToZeroAlloc(t *testing.T) {
	m := sampleMsg()
	buf := make([]byte, 0, 1024)
	allocs := testing.AllocsPerRun(100, func() {
		out, err := EncodeTo(buf[:0], &m)
		if err != nil || len(out) == 0 {
			t.Fatal("encode failed")
		}
	})
	if allocs != 0 {
		t.Errorf("EncodeTo into capacity allocates %.0f times per run; want 0", allocs)
	}
}
